/**
 * @file
 * Tests for the pluggable SIMD kernel layer: dispatch/override plumbing,
 * op-level differential equivalence of every supported backend against
 * the scalar reference, and codec-level byte-identity of the compressed
 * output across backends, densities, odd sizes, sub-word tails and lane
 * counts — the property that makes runtime dispatch safe.
 */

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cdma/engine.hh"

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/compressor.hh"
#include "compress/kernels/kernels.hh"
#include "compress/parallel.hh"

namespace cdma {
namespace {

/** Activation-like fp32 words at the given density, any byte length. */
std::vector<uint8_t>
makeWords(double density, size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> input(bytes, 0);
    const size_t words = bytes / 4;
    for (size_t i = 0; i < words; ++i) {
        if (density > 0.0 && rng.bernoulli(density)) {
            const float value =
                0.5f + static_cast<float>(std::abs(rng.normal()));
            std::memcpy(input.data() + i * 4, &value, 4);
        }
    }
    for (size_t i = words * 4; i < bytes; ++i)
        input[i] = static_cast<uint8_t>(rng.uniformInt(256));
    return input;
}

TEST(KernelDispatch, ScalarAlwaysAvailableAndNamed)
{
    EXPECT_STREQ(scalarKernels().name, "scalar");
    EXPECT_EQ(kernelsByName("scalar"), &scalarKernels());
    EXPECT_EQ(kernelsByName("mmx"), nullptr);
    const auto backends = supportedKernels();
    ASSERT_GE(backends.size(), 1u);
    EXPECT_EQ(backends.front(), &scalarKernels());
    if (const KernelOps *avx2 = avx2Kernels()) {
        EXPECT_STREQ(avx2->name, "avx2");
        EXPECT_EQ(kernelsByName("avx2"), avx2);
    }
    if (const KernelOps *avx512 = avx512Kernels()) {
        EXPECT_STREQ(avx512->name, "avx512");
        EXPECT_EQ(kernelsByName("avx512"), avx512);
        // AVX-512 implies AVX2 (its CRC32C rides the AVX2 table), and
        // the sweep order is narrowest to widest.
        EXPECT_NE(avx2Kernels(), nullptr);
        EXPECT_EQ(backends.back(), avx512);
    } else if (const KernelOps *avx2 = avx2Kernels()) {
        EXPECT_EQ(backends.back(), avx2);
    }
}

TEST(KernelDispatch, Avx512NeverSelectedOnIncapableHosts)
{
    // The acceptance property for incapable hosts: when the CPU lacks
    // AVX-512, the backend is unreachable through every selection path —
    // by name, in the sweep, and via the startup dispatch.
    if (avx512Kernels() != nullptr) {
        // Capable host: the unforced dispatch must pick it (the widest
        // backend), and only an explicit narrower override may not.
        const char *forced = std::getenv("CDMA_KERNEL_BACKEND");
        if (forced == nullptr || *forced == '\0')
            EXPECT_STREQ(activeKernels().name, "avx512");
        return;
    }
    EXPECT_EQ(kernelsByName("avx512"), nullptr);
    for (const KernelOps *ops : supportedKernels())
        EXPECT_STRNE(ops->name, "avx512");
    EXPECT_STRNE(activeKernels().name, "avx512");
}

TEST(KernelDispatch, OverrideResolutionAcceptsAndRejectsInProcess)
{
    // The selection logic behind CDMA_KERNEL_BACKEND, covered without
    // forking: every supported backend resolves to itself, and an
    // unknown or unsupported name is rejected with a message that names
    // the bad value and lists exactly the backends this host supports.
    for (const KernelOps *ops : supportedKernels()) {
        std::string error = "unset";
        EXPECT_EQ(resolveKernelBackendOverride(ops->name, &error), ops);
        EXPECT_EQ(error, "unset") << "error set on successful resolve";
    }

    const std::string valid = supportedKernelNames();
    EXPECT_NE(valid.find("scalar"), std::string::npos);
    for (const char *bad : {"mmx", "sse2", "neon", "AVX2", ""}) {
        std::string error;
        EXPECT_EQ(resolveKernelBackendOverride(bad, &error), nullptr)
            << bad;
        EXPECT_NE(error.find("CDMA_KERNEL_BACKEND='" + std::string(bad) +
                             "'"),
                  std::string::npos)
            << error;
        EXPECT_NE(error.find(valid), std::string::npos)
            << "'" << error << "' does not list supported backends '"
            << valid << "'";
    }

    // A real backend name the host cannot run is rejected the same way
    // (null error pointer must also be safe).
    if (avx512Kernels() == nullptr) {
        EXPECT_EQ(resolveKernelBackendOverride("avx512"), nullptr);
        std::string error;
        resolveKernelBackendOverride("avx512", &error);
        EXPECT_EQ(error.find("avx512, "), std::string::npos)
            << "unsupported backend listed as valid: " << error;
    }
}

TEST(KernelDispatch, ActiveBackendHonoursEnvOverride)
{
    // Dispatch happens once at startup; this test validates the decision
    // that was actually made in this process against the environment it
    // was made in (the CI forced-scalar leg runs the whole suite with
    // CDMA_KERNEL_BACKEND=scalar).
    const KernelOps &active = activeKernels();
    const auto backends = supportedKernels();
    EXPECT_NE(std::find(backends.begin(), backends.end(), &active),
              backends.end());
    if (const char *forced = std::getenv("CDMA_KERNEL_BACKEND")) {
        EXPECT_STREQ(active.name, forced);
    } else {
        // Unforced: the widest supported backend wins.
        EXPECT_EQ(&active, backends.back());
    }
}

class KernelOpEquivalence : public ::testing::Test
{
  protected:
    /** Every non-scalar backend, paired with the scalar reference. */
    std::vector<const KernelOps *> others() const
    {
        std::vector<const KernelOps *> result;
        for (const KernelOps *ops : supportedKernels()) {
            if (ops != &scalarKernels())
                result.push_back(ops);
        }
        return result;
    }
};

TEST_F(KernelOpEquivalence, ZvcCompactGroup)
{
    const KernelOps &ref = scalarKernels();
    for (const KernelOps *ops : others()) {
        for (const double density : {0.0, 0.1, 0.5, 0.9, 1.0}) {
            for (const uint32_t words :
                 {1u, 2u, 7u, 8u, 9u, 15u, 16u, 24u, 31u, 32u}) {
                const auto input =
                    makeWords(density, words * 4, 91 + words);
                // Headroom: backends may store whole sub-blocks
                // unconditionally.
                std::vector<uint8_t> a(words * 4 + 32, 0xAA);
                std::vector<uint8_t> b(words * 4 + 32, 0xAA);
                const uint32_t mask_a = ref.zvcCompactGroup(
                    input.data(), words, a.data());
                const uint32_t mask_b = ops->zvcCompactGroup(
                    input.data(), words, b.data());
                ASSERT_EQ(mask_a, mask_b)
                    << ops->name << " words=" << words
                    << " density=" << density;
                const size_t live = 4u * static_cast<size_t>(
                    std::popcount(mask_a));
                ASSERT_EQ(0, std::memcmp(a.data(), b.data(), live))
                    << ops->name << " words=" << words
                    << " density=" << density;
            }
        }
    }
}

TEST_F(KernelOpEquivalence, RunScans)
{
    const KernelOps &ref = scalarKernels();
    Rng rng(23);
    for (const KernelOps *ops : others()) {
        for (int trial = 0; trial < 200; ++trial) {
            const double density =
                static_cast<double>(rng.uniformInt(101)) / 100.0;
            const uint64_t limit = 1 + rng.uniformInt(160);
            const auto input = makeWords(
                density, static_cast<size_t>(limit) * 4,
                1000 + static_cast<uint64_t>(trial));
            EXPECT_EQ(ref.zeroRunWords(input.data(), limit),
                      ops->zeroRunWords(input.data(), limit))
                << ops->name << " trial " << trial;
            EXPECT_EQ(ref.literalRunWords(input.data(), limit),
                      ops->literalRunWords(input.data(), limit))
                << ops->name << " trial " << trial;
        }
        // Degenerate runs: all zero / all non-zero over block edges.
        for (const uint64_t limit : {1u, 7u, 8u, 9u, 64u, 128u}) {
            const std::vector<uint8_t> zeros(limit * 4, 0);
            const std::vector<uint8_t> ones(limit * 4, 1);
            EXPECT_EQ(ops->zeroRunWords(zeros.data(), limit), limit);
            EXPECT_EQ(ops->literalRunWords(zeros.data(), limit), 0u);
            EXPECT_EQ(ops->zeroRunWords(ones.data(), limit), 0u);
            EXPECT_EQ(ops->literalRunWords(ones.data(), limit), limit);
        }
    }
}

TEST_F(KernelOpEquivalence, MatchLength)
{
    const KernelOps &ref = scalarKernels();
    Rng rng(29);
    for (const KernelOps *ops : others()) {
        for (int trial = 0; trial < 200; ++trial) {
            const size_t max = 1 + rng.uniformInt(300);
            std::vector<uint8_t> a(max), b(max);
            for (size_t i = 0; i < max; ++i)
                a[i] = b[i] = static_cast<uint8_t>(rng.uniformInt(4));
            // Flip one byte somewhere (or nowhere) to set the prefix.
            if (rng.bernoulli(0.8)) {
                const size_t flip = rng.uniformInt(max);
                b[flip] = static_cast<uint8_t>(b[flip] + 1);
            }
            const size_t expect = ref.matchLength(a.data(), b.data(), max);
            EXPECT_EQ(ops->matchLength(a.data(), b.data(), max), expect)
                << ops->name << " trial " << trial << " max=" << max;
        }
    }
}

TEST_F(KernelOpEquivalence, CopyBytes)
{
    for (const KernelOps *ops : supportedKernels()) {
        for (const size_t n : {0u, 1u, 3u, 31u, 32u, 63u, 64u, 65u,
                               127u, 513u}) {
            const auto src = makeWords(1.0, n, 7 + n);
            std::vector<uint8_t> dst(n + 8, 0xEE);
            ops->copyBytes(dst.data(), src.data(), n);
            if (n != 0) {
                EXPECT_EQ(0, std::memcmp(dst.data(), src.data(), n))
                    << ops->name << " n=" << n;
            }
            // No overwrite past n.
            for (size_t i = n; i < dst.size(); ++i)
                ASSERT_EQ(dst[i], 0xEE) << ops->name << " n=" << n;
        }
    }
}

TEST_F(KernelOpEquivalence, Crc32)
{
    // CRC-32C standard vector: crc32c("123456789") == 0xE3069283. Every
    // backend (slice-by-8 table walk, SSE4.2 instruction) must produce
    // the standard value — the integrity framing is only end-to-end if
    // the compress-side and verify-side backends are interchangeable.
    const uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    for (const KernelOps *ops : supportedKernels()) {
        EXPECT_EQ(ops->crc32(0, check, sizeof(check)), 0xE3069283u)
            << ops->name;
        EXPECT_EQ(ops->crc32(0, check, 0), 0u) << ops->name;
    }

    // Differential sweep across sizes/alignments, plus the chaining
    // property crc(crc(0, a), b) == crc(0, a+b) at every split.
    const KernelOps &ref = scalarKernels();
    Rng rng(37);
    for (const KernelOps *ops : others()) {
        for (const size_t n : {1u, 2u, 7u, 8u, 9u, 15u, 16u, 17u, 63u,
                               64u, 65u, 255u, 1024u, 4096u, 65537u}) {
            const auto data = makeWords(0.6, n, 1000 + n);
            const uint32_t expect = ref.crc32(0, data.data(), n);
            EXPECT_EQ(ops->crc32(0, data.data(), n), expect)
                << ops->name << " n=" << n;
            // Unaligned start (the payload cursor is byte-granular).
            if (n > 3) {
                EXPECT_EQ(ops->crc32(0, data.data() + 3, n - 3),
                          ref.crc32(0, data.data() + 3, n - 3))
                    << ops->name << " n=" << n << " unaligned";
            }
            const size_t split = rng.uniformInt(n + 1);
            const uint32_t seed = ops->crc32(0, data.data(), split);
            EXPECT_EQ(ops->crc32(seed, data.data() + split, n - split),
                      expect)
                << ops->name << " n=" << n << " split=" << split;
        }
    }
}

TEST(KernelCodecEquivalence, CompressedOutputIsByteIdenticalPerBackend)
{
    // The acceptance property: for all three codecs, every supported
    // backend produces byte-for-byte the compressed stream the scalar
    // reference produces — across densities, odd sizes and sub-word
    // tails — and the stream round-trips.
    const std::vector<size_t> sizes = {0,    1,    3,    4,     5,
                                       127,  128,  4095, 4096,  4097,
                                       8195, 12288, (1u << 16) + 5};
    for (const Algorithm algorithm : kAllAlgorithms) {
        const auto reference =
            makeCompressor(algorithm, 4096, &scalarKernels());
        for (const KernelOps *ops : supportedKernels()) {
            const auto codec = makeCompressor(algorithm, 4096, ops);
            EXPECT_EQ(&codec->kernels(), ops);
            for (const double density : {0.0, 0.1, 0.5, 0.9, 1.0}) {
                for (const size_t bytes : sizes) {
                    // DEFLATE is slow; cap its sweep to keep the suite
                    // quick (coverage of tails/odd sizes is preserved).
                    if (algorithm == Algorithm::Zlib && bytes > 8195)
                        continue;
                    const auto input = makeWords(
                        density, bytes, 555 + bytes);
                    const CompressedBuffer expect =
                        reference->compress(input);
                    const CompressedBuffer got = codec->compress(input);
                    ASSERT_EQ(expect.window_sizes, got.window_sizes)
                        << codec->name() << " " << ops->name
                        << " bytes=" << bytes << " density=" << density;
                    ASSERT_EQ(expect.payload, got.payload)
                        << codec->name() << " " << ops->name
                        << " bytes=" << bytes << " density=" << density;
                    ASSERT_EQ(codec->decompress(got).value(), input)
                        << codec->name() << " " << ops->name
                        << " bytes=" << bytes << " density=" << density;
                }
            }
        }
    }
}

TEST(KernelCodecEquivalence, LaneFanOutSharesTheBackendDecision)
{
    // 1/2/8 lanes with an explicitly forced backend: the parallel
    // fan-out must inherit the codec's single dispatch decision and
    // still be byte-identical to the serial scalar reference.
    const auto input = makeWords(0.5, (1 << 18) + 37, 77);
    for (const Algorithm algorithm : {Algorithm::Zvc, Algorithm::Rle}) {
        const auto reference =
            makeCompressor(algorithm, 4096, &scalarKernels());
        const CompressedBuffer expect = reference->compress(input);
        for (const KernelOps *ops : supportedKernels()) {
            for (const unsigned lanes : {1u, 2u, 8u}) {
                const ParallelCompressor parallel(algorithm, 4096, lanes,
                                                  ops);
                EXPECT_STREQ(parallel.backendName(), ops->name);
                const CompressedBuffer got = parallel.compress(input);
                ASSERT_EQ(expect.window_sizes, got.window_sizes)
                    << algorithmName(algorithm) << " " << ops->name
                    << " lanes=" << lanes;
                ASSERT_EQ(expect.payload, got.payload)
                    << algorithmName(algorithm) << " " << ops->name
                    << " lanes=" << lanes;
                ASSERT_EQ(parallel.decompress(got).value(), input);
            }
        }
    }
}

TEST(KernelCodecEquivalence, EngineThreadsTheBackendThrough)
{
    // CdmaConfig::kernels reaches the engine's lanes; plans built with
    // an explicit scalar backend match the default dispatch bit for bit.
    const auto input = makeWords(0.4, (1 << 17) + 3, 99);
    CdmaConfig scalar_config;
    scalar_config.compression.lanes = 2;
    scalar_config.compression.kernels = &scalarKernels();
    const CdmaEngine scalar_engine(scalar_config);
    EXPECT_STREQ(scalar_engine.backendName(), "scalar");

    CdmaConfig active_config;
    active_config.compression.lanes = 2;
    const CdmaEngine active_engine(active_config);
    EXPECT_STREQ(active_engine.backendName(), activeKernels().name);

    const TransferPlan a = scalar_engine.planTransfer("map", input);
    const TransferPlan b = active_engine.planTransfer("map", input);
    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
    EXPECT_DOUBLE_EQ(a.ratio, b.ratio);
}

} // namespace
} // namespace cdma
