/** @file Unit tests for the logging/termination helpers. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"

namespace cdma {
namespace {

/** Captures the log stream and restores level + sink on destruction. */
class ScopedLogCapture
{
  public:
    ScopedLogCapture() : saved_level_(logLevel())
    {
        setLogSink([this](LogLevel level, const std::string &body) {
            lines_.emplace_back(level, body);
        });
    }
    ~ScopedLogCapture()
    {
        setLogSink({});
        setLogLevel(saved_level_);
    }

    const std::vector<std::pair<LogLevel, std::string>> &lines() const
    {
        return lines_;
    }

  private:
    LogLevel saved_level_;
    std::vector<std::pair<LogLevel, std::string>> lines_;
};

TEST(Logging, LevelFilterRoundTrips)
{
    const LogLevel original = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(original);
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("test warning %d", 42);
    inform("test info %s", "message");
    SUCCEED();
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("intentional panic"), "intentional panic");
}

TEST(LoggingDeathTest, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("intentional fatal"),
                ::testing::ExitedWithCode(1), "intentional fatal");
}

TEST(LoggingDeathTest, AssertMacroFiresOnFalse)
{
    EXPECT_DEATH(CDMA_ASSERT(1 == 2, "math broke: %d", 7), "math broke");
}

TEST(Logging, AssertMacroPassesOnTrue)
{
    CDMA_ASSERT(2 + 2 == 4, "should not fire");
    SUCCEED();
}

TEST(Logging, LevelThresholdFiltersTheStream)
{
    ScopedLogCapture capture;
    setLogLevel(LogLevel::Warn);
    debug("suppressed debug");
    inform("suppressed info");
    warn("visible warning");
    logMessage(LogLevel::Error, "visible error");
    ASSERT_EQ(capture.lines().size(), 2u);
    EXPECT_EQ(capture.lines()[0].first, LogLevel::Warn);
    EXPECT_EQ(capture.lines()[0].second, "visible warning");
    EXPECT_EQ(capture.lines()[1].first, LogLevel::Error);
    EXPECT_EQ(capture.lines()[1].second, "visible error");
}

TEST(Logging, DebugPassesOnlyAtDebugLevel)
{
    ScopedLogCapture capture;
    setLogLevel(LogLevel::Info);
    debug("hidden %d", 1);
    EXPECT_TRUE(capture.lines().empty());
    setLogLevel(LogLevel::Debug);
    debug("shown %d", 2);
    ASSERT_EQ(capture.lines().size(), 1u);
    EXPECT_EQ(capture.lines()[0].second, "shown 2");
}

TEST(Logging, ParseLogLevelAcceptsKnownNamesCaseInsensitively)
{
    LogLevel level = LogLevel::Error;
    EXPECT_TRUE(parseLogLevel("debug", level));
    EXPECT_EQ(level, LogLevel::Debug);
    EXPECT_TRUE(parseLogLevel("Info", level));
    EXPECT_EQ(level, LogLevel::Info);
    EXPECT_TRUE(parseLogLevel("WARN", level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("warning", level));
    EXPECT_EQ(level, LogLevel::Warn);
    EXPECT_TRUE(parseLogLevel("error", level));
    EXPECT_EQ(level, LogLevel::Error);

    level = LogLevel::Info;
    EXPECT_FALSE(parseLogLevel("verbose", level));
    EXPECT_EQ(level, LogLevel::Info) << "failed parse must not clobber";
    EXPECT_FALSE(parseLogLevel("", level));
}

TEST(Logging, LogLevelFromEnvParsesAndFallsBack)
{
    ScopedLogCapture capture;
    unsetenv("CDMA_LOG_LEVEL");
    EXPECT_EQ(logLevelFromEnv(), LogLevel::Info);
    setenv("CDMA_LOG_LEVEL", "debug", 1);
    EXPECT_EQ(logLevelFromEnv(), LogLevel::Debug);
    setenv("CDMA_LOG_LEVEL", "error", 1);
    EXPECT_EQ(logLevelFromEnv(), LogLevel::Error);
    // Unknown values warn (past any filter) and fall back to Info.
    const size_t before = capture.lines().size();
    setenv("CDMA_LOG_LEVEL", "shouting", 1);
    EXPECT_EQ(logLevelFromEnv(), LogLevel::Info);
    EXPECT_GT(capture.lines().size(), before);
    unsetenv("CDMA_LOG_LEVEL");
}

TEST(Logging, WarnRateLimitedStopsAtTheBudget)
{
    ScopedLogCapture capture;
    setLogLevel(LogLevel::Warn);
    WarnRateLimit limit;
    limit.max_emitted = 3;
    int emitted = 0;
    for (int i = 0; i < 10; ++i) {
        if (warnRateLimited(limit, "hot-path warning %d", i))
            ++emitted;
    }
    EXPECT_EQ(emitted, 3);
    // Three warning bodies plus the one budget-crossing notice.
    ASSERT_EQ(capture.lines().size(), 4u);
    EXPECT_EQ(limit.seen, 10u);
    EXPECT_EQ(capture.lines()[2].second, "hot-path warning 2");
    EXPECT_NE(capture.lines()[3].second.find("suppressed"),
              std::string::npos);
    EXPECT_EQ(capture.lines()[0].second.find("suppressed"),
              std::string::npos);
}

} // namespace
} // namespace cdma
