/**
 * @file
 * Analytic model of per-layer activation density across training,
 * calibrated to the paper's measurements (Section IV, Figures 4/6/7):
 *
 *  - the first convolutional layer stays within a few percent of 50%
 *    density for the whole run;
 *  - every other ReLU layer follows a U-shaped curve: density plunges in
 *    the first ~20-40% of training, then recovers partially as accuracy
 *    improves, flattening in the fine-tuning phase;
 *  - deeper layers are sparser than earlier ones (class-specific feature
 *    detectors fire rarely);
 *  - pooling increases density (a max window is zero only if all inputs
 *    are); FC layers are the sparsest of all;
 *  - the six-network average sparsity is ~62% (AlexNet alone ~49.4%),
 *    with per-layer maxima above 90%.
 *
 * The schedule supplies the target density used by the synthetic
 * activation generator when full-size network data is required, and is
 * validated against the measured dynamics of the scaled training runs.
 */

#ifndef CDMA_SPARSITY_SCHEDULE_HH
#define CDMA_SPARSITY_SCHEDULE_HH

#include "models/desc.hh"

namespace cdma {

/** Parameters of one layer's U-shaped density trajectory. */
struct DensityCurve {
    double initial = 0.55; ///< density at randomly initialized weights
    double trough = 0.25;  ///< minimum density, reached at trough_at
    double final = 0.40;   ///< density of the fully trained model
    double trough_at = 0.3; ///< training fraction where the trough sits

    /** Density at training progress @p t in [0, 1]. */
    double at(double t) const;
};

/**
 * Density schedule for a whole network: derives a DensityCurve per layer
 * from its descriptor row (kind + depth), following the paper's observed
 * structure.
 */
class DensitySchedule
{
  public:
    explicit DensitySchedule(const NetworkDesc &network);

    /** Curve assigned to layer @p index of the descriptor. */
    const DensityCurve &curve(size_t index) const
    {
        return curves_.at(index);
    }

    /** Density of layer @p index at training progress @p t. */
    double density(size_t index, double t) const;

    /**
     * Network-wide average density at progress @p t, weighted by each
     * layer's activation bytes — the reduction behind the paper's
     * "network-wide average sparsity" numbers.
     */
    double networkDensity(double t) const;

    /** The underlying descriptor. */
    const NetworkDesc &network() const { return network_; }

    /** Build the curve the model assigns to one descriptor row. */
    static DensityCurve curveFor(const NetworkDesc &network,
                                 const LayerDesc &layer);

  private:
    NetworkDesc network_;
    std::vector<DensityCurve> curves_;
};

} // namespace cdma

#endif // CDMA_SPARSITY_SCHEDULE_HH
