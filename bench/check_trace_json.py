#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file exported by TraceRecorder.

Four layers, all exercised by the CI trace-smoke job:

**Schema.** The file must be a trace-event object with a non-empty
``traceEvents`` array; every event needs a known phase (``M`` metadata,
``X`` complete span, ``i``/``I`` instant, ``C`` counter), integer
pid/tid, and — for non-metadata phases — a numeric ``ts >= 0`` (``X``
additionally ``dur >= 0``). Every pid referenced by an event must carry
a ``process_name`` metadata record, and every (pid, tid) a
``thread_name`` record (counter events are keyed by name and ride
tid 0). This is what keeps the export loadable in Perfetto /
chrome://tracing with self-describing track labels.

**Monotonic timestamps.** Events are serialized stable-sorted by begin
time, so within any span/instant track — and within any (pid, counter
name) series — file order must carry non-decreasing ``ts``. A violation
means the recorder's sort (or a simulator's event times) broke.

**Span nesting.** On one track, two ``X`` spans must be disjoint or
properly nested (Perfetto renders partial overlap as garbage). The DES
guarantees this structurally — per-edge-per-direction channel service
is FIFO — so a violation is a real modeling bug, not a rendering nit.

**Conservation.** When the trace carries a ``wire_bytes.<track>``
ledger in ``otherData`` (written by LinkNetwork::recordTraceTotals from
the channels' own byte accounting), the ``bytes`` args of that track's
``wire`` spans must sum to exactly the ledger value: every byte the
link layer accounted must appear in the timeline, and none may be
invented.

``--self-test`` proves the checker actually trips: it validates a
synthetic well-formed trace clean, then requires both an injected
out-of-order timestamp and a corrupted wire-byte count to fail.

Usage:
  bench/check_trace_json.py trace.json
  bench/check_trace_json.py --self-test
"""

import copy
import json
import sys

KNOWN_PHASES = ("M", "X", "i", "I", "C")
# Serialized timestamps carry 3 fractional digits (of a microsecond);
# tolerate one count of rounding when judging span containment.
ROUNDING_EPS_US = 2e-3


def fail(message: str) -> None:
    print(f"check_trace_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate(trace: dict) -> list:
    """Return a list of human-readable problems (empty when valid)."""
    problems = []
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["no (or empty) traceEvents array"]

    # ---- Schema + track metadata ----
    process_names = {}
    thread_names = {}
    for index, event in enumerate(events):
        where = f"event #{index}"
        if not isinstance(event, dict):
            problems.append(f"{where} is not an object")
            continue
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            problems.append(f"{where} has unknown phase {phase!r}")
            continue
        pid, tid = event.get("pid"), event.get("tid")
        if not isinstance(pid, int) or not isinstance(tid, int):
            problems.append(f"{where} lacks integer pid/tid")
            continue
        if phase == "M":
            kind = event.get("name")
            label = event.get("args", {}).get("name")
            if not isinstance(label, str) or not label:
                problems.append(f"{where}: metadata without args.name")
            elif kind == "process_name":
                process_names[pid] = label
            elif kind == "thread_name":
                thread_names[(pid, tid)] = label
            else:
                problems.append(f"{where}: unknown metadata kind {kind!r}")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where} ({phase}) has no numeric ts >= 0 "
                            f"(got {ts!r})")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where} (X '{event.get('name')}') has "
                                f"no numeric dur >= 0 (got {dur!r})")
        if phase == "C":
            value = event.get("args", {}).get("value")
            if not isinstance(value, (int, float)):
                problems.append(f"{where} (C '{event.get('name')}') has "
                                f"no numeric args.value")
        if not event.get("name"):
            problems.append(f"{where} ({phase}) has no name")

    if problems:
        return problems  # later passes assume the schema held

    for event in events:
        if event["ph"] == "M":
            continue
        pid, tid = event["pid"], event["tid"]
        if pid not in process_names:
            problems.append(f"pid {pid} has no process_name metadata")
        # Counter tracks are labeled by the event name itself.
        if event["ph"] != "C" and (pid, tid) not in thread_names:
            problems.append(f"(pid {pid}, tid {tid}) has no thread_name "
                            "metadata")
    if problems:
        return sorted(set(problems))

    # ---- Monotonic timestamps in file order ----
    last_ts = {}
    for index, event in enumerate(events):
        if event["ph"] == "M":
            continue
        # Counter series share tid 0; they are distinct tracks per name.
        if event["ph"] == "C":
            key = (event["pid"], "C", event["name"])
        else:
            key = (event["pid"], event["tid"])
        ts = event["ts"]
        if key in last_ts and ts < last_ts[key] - ROUNDING_EPS_US:
            problems.append(
                f"event #{index} ('{event['name']}') runs backwards on "
                f"track {key}: ts {ts} after {last_ts[key]}")
        last_ts[key] = max(ts, last_ts.get(key, ts))

    # ---- Span nesting per track ----
    spans_by_track = {}
    for event in events:
        if event["ph"] == "X":
            spans_by_track.setdefault(
                (event["pid"], event["tid"]), []).append(event)
    for key, spans in sorted(spans_by_track.items()):
        stack = []  # open span end times, outermost first
        for span in spans:
            begin, end = span["ts"], span["ts"] + span["dur"]
            while stack and begin >= stack[-1] - ROUNDING_EPS_US:
                stack.pop()
            if stack and end > stack[-1] + ROUNDING_EPS_US:
                name = thread_names.get(key, key)
                problems.append(
                    f"span '{span['name']}' [{begin}, {end}] on track "
                    f"'{name}' partially overlaps an enclosing span "
                    f"ending at {stack[-1]}")
            stack.append(end)

    # ---- Byte conservation against the link layer's ledger ----
    track_bytes = {}
    for event in events:
        if event["ph"] != "X" or event["name"] != "wire":
            continue
        track = thread_names[(event["pid"], event["tid"])]
        got = event.get("args", {}).get("bytes")
        if not isinstance(got, int):
            problems.append(f"wire span on '{track}' has no integer "
                            "bytes arg")
            continue
        track_bytes[track] = track_bytes.get(track, 0) + got
    for key, expected in sorted(trace.get("otherData", {}).items()):
        if not key.startswith("wire_bytes."):
            continue
        track = key[len("wire_bytes."):]
        traced = track_bytes.get(track, 0)
        if traced != expected:
            problems.append(
                f"conservation: traced wire bytes on '{track}' sum to "
                f"{traced} but the link layer accounted {expected}")

    return problems


def synthetic_trace() -> dict:
    """A minimal well-formed trace exercising every checked feature."""
    return {
        "traceEvents": [
            {"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
             "args": {"name": "edges"}},
            {"ph": "M", "pid": 2, "tid": 0, "name": "process_name",
             "args": {"name": "gpu0"}},
            {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name",
             "args": {"name": "link0:out"}},
            {"ph": "M", "pid": 2, "tid": 1, "name": "thread_name",
             "args": {"name": "compress"}},
            {"ph": "X", "pid": 2, "tid": 1, "name": "compress",
             "ts": 0.0, "dur": 50.0, "args": {"shard": 0}},
            {"ph": "X", "pid": 1, "tid": 1, "name": "wire",
             "ts": 50.0, "dur": 100.0, "args": {"bytes": 1000}},
            {"ph": "i", "pid": 2, "tid": 1, "name": "landed", "s": "t",
             "ts": 150.0, "args": {"shard": 0}},
            {"ph": "X", "pid": 1, "tid": 1, "name": "wire",
             "ts": 150.0, "dur": 50.0, "args": {"bytes": 500}},
            {"ph": "C", "pid": 1, "tid": 0, "name": "link0 utilization",
             "ts": 200.0, "args": {"value": 0.75}},
        ],
        "displayTimeUnit": "ms",
        "otherData": {"wire_bytes.link0:out": 1500},
    }


def self_test() -> None:
    clean = synthetic_trace()
    problems = validate(clean)
    if problems:
        fail("self-test: a well-formed synthetic trace failed: "
             + "; ".join(problems))

    backwards = copy.deepcopy(clean)
    # Second wire span jumps before the first: same track, earlier ts.
    backwards["traceEvents"][7]["ts"] = 10.0
    if not validate(backwards):
        fail("self-test: checker MISSED an out-of-order timestamp")

    corrupted = copy.deepcopy(clean)
    corrupted["traceEvents"][5]["args"]["bytes"] = 999
    if not any("conservation" in p for p in validate(corrupted)):
        fail("self-test: checker MISSED a wire-byte conservation break")

    print("check_trace_json: self-test OK (clean trace passes; "
          "out-of-order ts and byte-conservation breaks both trip)")


def main() -> None:
    if "--self-test" in sys.argv[1:]:
        self_test()
        return
    if len(sys.argv) != 2:
        fail("usage: check_trace_json.py trace.json | --self-test")
    path = sys.argv[1]
    try:
        with open(path, encoding="utf-8") as handle:
            trace = json.load(handle)
    except FileNotFoundError:
        fail(f"{path} is missing (did the traced binary run?)")
    except json.JSONDecodeError as error:
        fail(f"{path} is not valid JSON: {error}")
    problems = validate(trace)
    if problems:
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        fail(f"{path}: {len(problems)} problem(s)")
    events = trace["traceEvents"]
    spans = sum(1 for e in events if e["ph"] == "X")
    counters = sum(1 for e in events if e["ph"] == "C")
    instants = sum(1 for e in events if e["ph"] in ("i", "I"))
    ledger = sum(1 for k in trace.get("otherData", {})
                 if k.startswith("wire_bytes."))
    print(f"check_trace_json: OK ({len(events)} events: {spans} spans, "
          f"{instants} instants, {counters} counters; "
          f"{ledger} conservation ledger entries verified)")


if __name__ == "__main__":
    main()
