#include "sparsity/schedule.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/stats.hh"

namespace cdma {

double
DensityCurve::at(double t) const
{
    t = std::clamp(t, 0.0, 1.0);
    if (t <= trough_at) {
        // Plunge phase: quadratic ease from the initial density into the
        // trough, matching the rapid early drop in Figure 7.
        const double x = trough_at > 0.0 ? t / trough_at : 1.0;
        const double w = (1.0 - x) * (1.0 - x);
        return trough + (initial - trough) * w;
    }
    // Recovery phase: fast-then-slow rise toward the trained density
    // ("increases, first somewhat rapidly and then more slowly").
    const double x = (t - trough_at) / (1.0 - trough_at);
    const double s = 1.0 - (1.0 - x) * (1.0 - x);
    return trough + (final - trough) * s;
}

DensityCurve
DensitySchedule::curveFor(const NetworkDesc &network,
                          const LayerDesc &layer)
{
    const double dep = layer.depth_fraction;

    if (!layer.relu_follows) {
        // Dense output (e.g. the final classifier): density pinned at 1.
        return {1.0, 1.0, 1.0, 0.3};
    }

    if (layer.kind == "fc") {
        // FC layers are the sparsest in every network (Section IV-A); at
        // the trough their density approaches a few percent, which is
        // where the 13.8x per-layer maximum ratio comes from.
        return {0.50, 0.04, 0.09, 0.35};
    }

    // Base conv-like curve: deeper layers respond to class-specific
    // features and are sparser.
    DensityCurve conv;
    conv.initial = 0.62 - 0.10 * dep;
    conv.final = 0.58 - 0.42 * std::pow(dep, 0.8);
    conv.trough = conv.final * 0.45 + 0.02;
    conv.trough_at = 0.25 + 0.15 * dep;

    // The very first layer sees raw pixels and is class-invariant: ~50%
    // density within +/-2% for the entire run (Figure 4, conv0).
    const bool first = &layer == &network.layers.front();
    if (first)
        return {0.52, 0.48, 0.50, 0.3};

    if (layer.kind == "pool") {
        // Pooling densifies: a window is zero only when every input is.
        // Apply the window transform to each phase of the conv curve.
        auto densify = [](double d) {
            return 1.0 - std::pow(1.0 - d, 2.2);
        };
        return {densify(conv.initial), densify(conv.trough),
                densify(conv.final), conv.trough_at};
    }
    return conv;
}

DensitySchedule::DensitySchedule(const NetworkDesc &network)
    : network_(network)
{
    curves_.reserve(network_.layers.size());
    for (const auto &layer : network_.layers)
        curves_.push_back(curveFor(network_, layer));
}

double
DensitySchedule::density(size_t index, double t) const
{
    return curves_.at(index).at(t);
}

double
DensitySchedule::networkDensity(double t) const
{
    WeightedMean mean;
    for (size_t i = 0; i < network_.layers.size(); ++i) {
        mean.add(density(i, t),
                 static_cast<double>(network_.layers[i].bytesPerImage()));
    }
    return mean.mean();
}

} // namespace cdma
