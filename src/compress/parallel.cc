#include "compress/parallel.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <mutex>
#include <utility>

#include "common/bits.hh"
#include "common/logging.hh"
#include "compress/kernels/kernels.hh"
#include "obs/metrics.hh"

namespace cdma {

uint64_t
CompressedShard::effectiveBytes(uint64_t window_bytes) const
{
    return storeRawFlooredBytes(window_sizes, raw_bytes, window_bytes);
}

ParallelCompressor::ParallelCompressor(Algorithm algorithm,
                                       uint64_t window_bytes,
                                       unsigned lanes,
                                       const KernelOps *kernels)
    : ParallelCompressor(makeCompressor(algorithm, window_bytes, kernels),
                         lanes)
{
}

const char *
ParallelCompressor::backendName() const
{
    return codec_->kernels().name;
}

void
ParallelCompressor::setMetrics(obs::MetricsRegistry *metrics)
{
    if (metrics == nullptr) {
        compress_hist_ = nullptr;
        expand_hist_ = nullptr;
        return;
    }
    const std::string backend = backendName();
    compress_hist_ =
        &metrics->histogram("kernel.compress.wall_seconds." + backend);
    expand_hist_ =
        &metrics->histogram("kernel.expand.wall_seconds." + backend);
}

ParallelCompressor::ParallelCompressor(std::unique_ptr<Compressor> codec,
                                       unsigned lanes)
    : codec_(std::move(codec))
{
    CDMA_ASSERT(codec_ != nullptr, "ParallelCompressor needs a codec");
    codec_tag_ = codecFromName(codec_->name());
    if (lanes != 1)
        pool_ = std::make_unique<ThreadPool>(lanes);
}

CompressedBuffer
ParallelCompressor::compress(std::span<const uint8_t> input) const
{
    const uint64_t window_bytes = codec_->windowBytes();
    const uint64_t windows = ceilDiv(input.size(), window_bytes);
    // Fan-out only pays when there is enough work per lane; small buffers
    // (and the lanes == 1 configuration) take the serial path directly.
    if (!pool_ || windows < 2) {
        const obs::ScopedTimer timer(compress_hist_);
        return codec_->compress(input);
    }

    const uint64_t per_shard =
        ceilDiv(windows, std::min<uint64_t>(pool_->lanes(), windows));
    // Rounding per_shard up can make trailing shards redundant; recompute
    // the count so every shard owns at least one window.
    const uint64_t shards = ceilDiv(windows, per_shard);

    std::vector<CompressedShard> results(shards);

    pool_->parallelFor(shards, [&](uint64_t s) {
        const uint64_t first = s * per_shard;
        const uint64_t last = std::min(windows, first + per_shard);
        compressShardInto(input, first, last, results[s]);
    });

    // Stitch: sizes are known, so the shared buffers are sized exactly
    // once and shard payloads land with bulk copies.
    CompressedBuffer out;
    out.original_bytes = input.size();
    out.window_bytes = window_bytes;
    out.codec = codec_tag_;
    uint64_t payload_total = 0;
    for (const CompressedShard &shard : results)
        payload_total += shard.payload.size();
    out.payload.resize(payload_total);
    out.window_sizes.reserve(windows);
    uint64_t cursor = 0;
    for (const CompressedShard &shard : results) {
        std::memcpy(out.payload.data() + cursor, shard.payload.data(),
                    shard.payload.size());
        cursor += shard.payload.size();
        out.window_sizes.insert(out.window_sizes.end(),
                                shard.window_sizes.begin(),
                                shard.window_sizes.end());
    }
    return out;
}

void
ParallelCompressor::compressShardInto(std::span<const uint8_t> input,
                                      uint64_t first, uint64_t last,
                                      CompressedShard &shard) const
{
    // Wall-clock kernel timing (real elapsed time, also on worker
    // lanes); a null histogram disarms the timer.
    const obs::ScopedTimer timer(compress_hist_);
    const uint64_t window_bytes = codec_->windowBytes();
    shard.codec = codec_tag_;
    shard.first_window = first;
    shard.window_sizes.reserve(last - first);
    // Reserve the shard's worst case once; every window then streams
    // in with zero further allocation.
    uint64_t bound = 0;
    for (uint64_t w = first; w < last; ++w) {
        const uint64_t offset = w * window_bytes;
        bound += codec_->compressedBound(
            std::min<uint64_t>(window_bytes, input.size() - offset));
    }
    shard.payload.reserve(bound);
    for (uint64_t w = first; w < last; ++w) {
        const uint64_t offset = w * window_bytes;
        const uint64_t len =
            std::min<uint64_t>(window_bytes, input.size() - offset);
        const size_t before = shard.payload.size();
        codec_->compressWindowInto(input.subspan(offset, len),
                                   shard.payload);
        shard.window_sizes.push_back(
            static_cast<uint32_t>(shard.payload.size() - before));
        shard.raw_bytes += len;
    }
    // Integrity frame: one CRC-32C over the whole shard payload, here in
    // the worker lane (shard granularity, off the per-window hot loops),
    // so the prefetch side can verify the wire bytes before expanding.
    shard.crc32c = codec_->kernels().crc32(0, shard.payload.data(),
                                           shard.payload.size());
}

void
ParallelCompressor::runOrderedShardFanOut(
    uint64_t shards, const std::function<void(uint64_t)> &work,
    const std::function<void(uint64_t)> &drain) const
{
    // Workers pull shards dynamically and flag each as it completes; the
    // calling thread is the drain stage, consuming shards strictly in
    // shard order while later shards are still being worked.
    std::atomic<uint64_t> next{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<bool> done(shards, false);
    uint64_t helpers_exited = 0;
    std::exception_ptr first_error;

    const uint64_t helpers =
        std::min<uint64_t>(pool_->lanes() - 1, shards);
    for (uint64_t h = 0; h < helpers; ++h) {
        pool_->submitDetached([&] {
            for (;;) {
                const uint64_t s =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (s >= shards)
                    break;
                try {
                    work(s);
                } catch (...) {
                    // First worker exception wins; abandon the
                    // remaining shards so every lane exits promptly,
                    // and wake the drain thread (which stops consuming
                    // and rethrows after the join).
                    std::lock_guard<std::mutex> lock(mutex);
                    if (!first_error)
                        first_error = std::current_exception();
                    next.store(shards, std::memory_order_relaxed);
                }
                {
                    std::lock_guard<std::mutex> lock(mutex);
                    done[s] = true;
                }
                cv.notify_all();
            }
            {
                // Notify while holding the mutex: once helpers_exited
                // reaches the target the caller may return and destroy
                // this frame's cv, so an unlocked notify could touch a
                // dead condition variable.
                std::lock_guard<std::mutex> lock(mutex);
                ++helpers_exited;
                cv.notify_all();
            }
        });
    }

    {
        // Helpers capture this frame's locals by reference, so every
        // exit path — including a throwing drain — must wait for all of
        // them to leave their pull loop before the frame unwinds.
        struct JoinGuard {
            std::mutex &mutex;
            std::condition_variable &cv;
            uint64_t &exited;
            const uint64_t target;
            ~JoinGuard()
            {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock, [&] { return exited == target; });
            }
        } join{mutex, cv, helpers_exited, helpers};

        for (uint64_t s = 0; s < shards; ++s) {
            {
                std::unique_lock<std::mutex> lock(mutex);
                cv.wait(lock,
                        [&] { return done[s] || first_error != nullptr; });
                if (first_error)
                    break;
            }
            drain(s);
        }
    }
    // All helpers have left their pull loops (the guard joined them), so
    // the captured exception can be rethrown without racing the frame.
    if (first_error)
        std::rethrow_exception(first_error);
}

void
ParallelCompressor::compressShards(std::span<const uint8_t> input,
                                   uint64_t windows_per_shard,
                                   const ShardConsumer &consumer) const
{
    CDMA_ASSERT(windows_per_shard > 0, "shards need at least one window");
    const uint64_t window_bytes = codec_->windowBytes();
    const uint64_t windows = ceilDiv(input.size(), window_bytes);
    const uint64_t shards = ceilDiv(windows, windows_per_shard);

    auto bounds = [&](uint64_t s) {
        const uint64_t first = s * windows_per_shard;
        return std::pair{first,
                         std::min(windows, first + windows_per_shard)};
    };

    if (!pool_ || !pool_->hasWorkers() || shards < 2) {
        // Serial: compress and drain shards alternately on this thread.
        for (uint64_t s = 0; s < shards; ++s) {
            CompressedShard shard;
            shard.index = s;
            const auto [first, last] = bounds(s);
            compressShardInto(input, first, last, shard);
            consumer(std::move(shard));
        }
        return;
    }

    std::vector<CompressedShard> results(shards);
    runOrderedShardFanOut(
        shards,
        [&](uint64_t s) {
            results[s].index = s;
            const auto [first, last] = bounds(s);
            compressShardInto(input, first, last, results[s]);
        },
        [&](uint64_t s) { consumer(std::move(results[s])); });
}

Status
ParallelCompressor::decompressShards(
    const CompressedBuffer &buffer, uint64_t windows_per_shard,
    uint8_t *out, const DecompressedShardConsumer &consumer) const
{
    CDMA_ASSERT(windows_per_shard > 0, "shards need at least one window");
    const uint64_t windows = buffer.window_sizes.size();
    if (windows == 0) {
        if (buffer.original_bytes != 0) {
            return Status::corrupt(
                "windowless buffer claims %llu original bytes",
                static_cast<unsigned long long>(buffer.original_bytes));
        }
        return Status();
    }
    // Framing consistency is a data property (the framing crossed the
    // wire with the payload), so inconsistencies report rather than
    // panic.
    const uint64_t window_bytes = buffer.window_bytes;
    CDMA_ASSERT(window_bytes > 0, "compressed buffer lacks a window size");
    if (windows != ceilDiv(buffer.original_bytes, window_bytes)) {
        return Status::corrupt(
            "window count %llu inconsistent with original size %llu",
            static_cast<unsigned long long>(windows),
            static_cast<unsigned long long>(buffer.original_bytes));
    }

    // Per-window payload offsets (prefix sum), so every shard can be
    // reconstructed independently straight into its output slot.
    std::vector<uint64_t> offsets(windows + 1, 0);
    for (uint64_t w = 0; w < windows; ++w)
        offsets[w + 1] = offsets[w] + buffer.window_sizes[w];
    if (offsets[windows] != buffer.payload.size()) {
        return Status::truncated(
            "window sizes cover %llu bytes but the payload has %zu",
            static_cast<unsigned long long>(offsets[windows]),
            buffer.payload.size());
    }

    const uint64_t shards = ceilDiv(windows, windows_per_shard);
    auto bounds = [&](uint64_t s) {
        const uint64_t first = s * windows_per_shard;
        return std::pair{first,
                         std::min(windows, first + windows_per_shard)};
    };
    auto expandShard = [&](uint64_t s,
                           DecompressedShard &shard) -> Status {
        const obs::ScopedTimer timer(expand_hist_);
        const auto [first, last] = bounds(s);
        shard.index = s;
        shard.first_window = first;
        shard.raw_offset = first * window_bytes;
        for (uint64_t w = first; w < last; ++w) {
            const uint64_t out_offset = w * window_bytes;
            const uint64_t raw = std::min<uint64_t>(
                window_bytes, buffer.original_bytes - out_offset);
            const Status status = codec_->decompressWindowInto(
                std::span<const uint8_t>(
                    buffer.payload.data() + offsets[w],
                    buffer.window_sizes[w]),
                raw, out + out_offset);
            if (!status.ok()) {
                return status.withContext(
                    "shard %llu window %llu",
                    static_cast<unsigned long long>(s),
                    static_cast<unsigned long long>(w));
            }
            shard.raw_bytes += raw;
            shard.wire_bytes +=
                std::min<uint64_t>(buffer.window_sizes[w], raw);
        }
        return Status();
    };

    if (!pool_ || !pool_->hasWorkers() || shards < 2) {
        // Serial: reconstruct and drain shards alternately on this
        // thread.
        for (uint64_t s = 0; s < shards; ++s) {
            DecompressedShard shard;
            const Status status = expandShard(s, shard);
            if (!status.ok())
                return status;
            consumer(shard);
        }
        return Status();
    }

    // Each worker writes a disjoint output slot; the shared rendezvous
    // hands the notifications to the consumer strictly in shard order
    // while later shards are still expanding. A shard's decode error
    // travels with its result: the drain stage stops consuming at the
    // first failed shard (in shard order), later successful shards are
    // silently discarded, and the first error is returned.
    std::vector<DecompressedShard> results(shards);
    std::vector<Status> statuses(shards);
    Status first_error;
    runOrderedShardFanOut(
        shards,
        [&](uint64_t s) { statuses[s] = expandShard(s, results[s]); },
        [&](uint64_t s) {
            if (!first_error.ok())
                return;
            if (!statuses[s].ok()) {
                first_error = statuses[s];
                return;
            }
            consumer(results[s]);
        });
    return first_error;
}

StatusOr<ByteVec>
ParallelCompressor::decompress(const CompressedBuffer &buffer) const
{
    const uint64_t windows = buffer.window_sizes.size();
    if (!pool_ || windows < 2) {
        const obs::ScopedTimer timer(expand_hist_);
        return codec_->decompress(buffer);
    }

    if (windows != ceilDiv(buffer.original_bytes, buffer.window_bytes)) {
        return Status::corrupt(
            "window count %llu inconsistent with original size %llu",
            static_cast<unsigned long long>(windows),
            static_cast<unsigned long long>(buffer.original_bytes));
    }

    // Per-window payload offsets (prefix sum), so every window can be
    // decompressed independently straight into its output slot.
    std::vector<uint64_t> offsets(windows + 1, 0);
    for (uint64_t w = 0; w < windows; ++w)
        offsets[w + 1] = offsets[w] + buffer.window_sizes[w];
    if (offsets[windows] != buffer.payload.size()) {
        return Status::truncated(
            "window sizes cover %llu bytes but the payload has %zu",
            static_cast<unsigned long long>(offsets[windows]),
            buffer.payload.size());
    }

    // Default-init output: every window slot is fully written below.
    // Each lane records the first failing window it sees; the lowest
    // window index wins so the reported error is deterministic.
    ByteVec out(buffer.original_bytes);
    const uint64_t per_shard =
        ceilDiv(windows, std::min<uint64_t>(pool_->lanes(), windows));
    const uint64_t shards = ceilDiv(windows, per_shard);

    std::mutex error_mutex;
    Status first_error;
    uint64_t first_error_window = windows;
    pool_->parallelFor(shards, [&](uint64_t s) {
        const uint64_t first = s * per_shard;
        const uint64_t last = std::min(windows, first + per_shard);
        for (uint64_t w = first; w < last; ++w) {
            const uint64_t out_offset = w * buffer.window_bytes;
            const uint64_t raw = std::min<uint64_t>(
                buffer.window_bytes, buffer.original_bytes - out_offset);
            const Status status = codec_->decompressWindowInto(
                std::span<const uint8_t>(
                    buffer.payload.data() + offsets[w],
                    buffer.window_sizes[w]),
                raw, out.data() + out_offset);
            if (!status.ok()) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (w < first_error_window) {
                    first_error_window = w;
                    first_error = status.withContext(
                        "window %llu",
                        static_cast<unsigned long long>(w));
                }
                return;
            }
        }
    });
    if (!first_error.ok())
        return first_error;
    return out;
}

double
ParallelCompressor::measureRatio(std::span<const uint8_t> input) const
{
    return compress(input).effectiveRatio();
}

} // namespace cdma
