#include "cdma/prefetch_scheduler.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cdma {

PrefetchScheduler::PrefetchScheduler(const CdmaEngine &engine)
    : engine_(engine)
{
}

StatusOr<PrefetchResult>
PrefetchScheduler::prefetch(const CompressedBuffer &buffer) const
{
    return engine_.prefetch(buffer);
}

StatusOr<PrefetchResult>
PrefetchScheduler::prefetch(const SpillArena &arena,
                            SpillTicket ticket) const
{
    return engine_.prefetch(arena, ticket);
}

PrefetchTiming
PrefetchScheduler::modelFromRatio(uint64_t raw_bytes, double ratio) const
{
    CDMA_ASSERT(ratio >= 1.0, "ratio %f below store-raw floor", ratio);
    const CdmaConfig &config = engine_.cdma().config();
    const double wire_bw = config.gpu.pcie_effective_bandwidth;
    const double decomp_bw = config.gpu.comp_bandwidth;
    const unsigned buffers = config.staging_buffers;
    const uint64_t shard_raw = shardWindows() * config.window_bytes;

    PrefetchTiming timing;
    if (raw_bytes == 0)
        return timing;

    // Closed form over the shard shape the DES would replay: `full`
    // uniform shards of shard_raw bytes plus at most one partial tail,
    // with the per-shard wire bytes reproducing the DES arithmetic
    // exactly (store-raw-floored truncation per shard). Stage one is
    // the wire, stage two the serial decompression engine — the
    // offload closed form with the roles swapped.
    const uint64_t full = raw_bytes / shard_raw;
    const uint64_t tail_raw = raw_bytes % shard_raw;
    timing.shard_count = full + (tail_raw != 0 ? 1 : 0);

    const double d = static_cast<double>(shard_raw) / decomp_bw;
    const double w = static_cast<double>(static_cast<uint64_t>(
                         static_cast<double>(shard_raw) / ratio)) /
        wire_bw;
    const double tail_d = static_cast<double>(tail_raw) / decomp_bw;
    const double tail_w = static_cast<double>(static_cast<uint64_t>(
                              static_cast<double>(tail_raw) / ratio)) /
        wire_bw;

    const double n = static_cast<double>(full);
    timing.wire_seconds = n * w + tail_w;
    timing.decompress_seconds = n * d + tail_d;

    if (buffers == 1) {
        // A single staging buffer serializes every shard end to end.
        timing.overlapped_seconds =
            timing.wire_seconds + timing.decompress_seconds;
    } else if (full == 0) {
        // Tail-only transfer: one shard, nothing to overlap with.
        timing.overlapped_seconds = tail_w + tail_d;
    } else if (d >= w) {
        // Decompression-bound (fetch-capped layers land here: high
        // ratios make the wire leg short): one wire fill, then the
        // serial decompression engine never starves (the tail's wire
        // time hides under the previous shard's expansion because
        // tail_w <= w <= d).
        timing.overlapped_seconds = w + n * d + tail_d;
    } else {
        // Wire-bound: the FIFO link paces the pipeline; the tail's
        // expansion waits for whichever of its own wire transfer or
        // the previous shard's expansion finishes last.
        timing.overlapped_seconds =
            n * w + std::max(tail_w, d) + tail_d;
    }
    finalizeOverlapFraction(timing);
    return timing;
}

PrefetchTiming
PrefetchScheduler::pipelineTiming(std::span<const ShardTransfer> shards,
                                  double wire_bandwidth,
                                  double decompress_bandwidth,
                                  unsigned staging_buffers)
{
    // The duplex DES with the offload direction idle: the shared link
    // degenerates to a single-direction FIFO, reproducing the original
    // prefetch-only event timeline exactly.
    return TransferEngine::pipelineTiming(
               {}, shards, /*compress_bandwidth=*/decompress_bandwidth,
               wire_bandwidth, decompress_bandwidth, staging_buffers,
               DuplexMode::Half, LinkArbiter::RoundRobin)
        .prefetch;
}

} // namespace cdma
