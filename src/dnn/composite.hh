/**
 * @file
 * Composite layers built from parallel branches concatenated along the
 * channel dimension: the GoogLeNet inception module and the SqueezeNet
 * fire module are both instances. Keeping the branching inside one layer
 * lets the surrounding Network remain a simple sequential pipeline — the
 * same abstraction vDNN's layer-at-a-time offload scheduling assumes.
 */

#ifndef CDMA_DNN_COMPOSITE_HH
#define CDMA_DNN_COMPOSITE_HH

#include "dnn/layer.hh"

namespace cdma {

/** One branch: a sequential stack of layers applied to the module input. */
using Branch = std::vector<LayerPtr>;

/**
 * Runs each branch on the same input and concatenates the branch outputs
 * along the channel dimension. All branches must produce identical
 * (N, H, W); channel counts may differ.
 */
class ParallelConcat : public Layer
{
  public:
    ParallelConcat(std::string name, std::vector<Branch> branches);

    std::string type() const override { return "concat"; }
    Shape4D outputShape(const Shape4D &input) const override;
    Tensor4D forward(const Tensor4D &input) override;
    Tensor4D backward(const Tensor4D &output_grad) override;
    std::vector<ParamBlob *> params() override;
    void setTraining(bool training) override;

    /** Number of parallel branches. */
    size_t branchCount() const { return branches_.size(); }

    uint64_t forwardMacsPerImage(const Shape4D &input) const override;

  private:
    /** Output shape of one branch for a given module input shape. */
    Shape4D branchOutputShape(const Branch &branch,
                              const Shape4D &input) const;

    std::vector<Branch> branches_;
    std::vector<Shape4D> cached_branch_shapes_;
};

} // namespace cdma

#endif // CDMA_DNN_COMPOSITE_HH
