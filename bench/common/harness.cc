#include "common/harness.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"

namespace cdma::bench {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    CDMA_ASSERT(cells.size() == headers_.size(),
                "row has %zu cells, table has %zu columns", cells.size(),
                headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(precision);
    out << value;
    return out.str();
}

void
Table::print() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto printRow = [&](const std::vector<std::string> &row) {
        std::printf("|");
        for (size_t c = 0; c < row.size(); ++c)
            std::printf(" %-*s |", static_cast<int>(widths[c]),
                        row[c].c_str());
        std::printf("\n");
    };
    printRow(headers_);
    std::printf("|");
    for (size_t c = 0; c < headers_.size(); ++c)
        std::printf("%s|", std::string(widths[c] + 2, '-').c_str());
    std::printf("\n");
    for (const auto &row : rows_)
        printRow(row);
}

NetworkRatioResult
measureNetworkRatios(const NetworkDesc &network, Algorithm algorithm,
                     Layout layout, const RatioMeasureConfig &config)
{
    const DensitySchedule schedule(network);
    const ActivationGenerator generator;
    const auto compressor = makeCompressor(algorithm, config.window_bytes);

    NetworkRatioResult result;
    WeightedMean average;
    result.max = 1.0;

    for (size_t i = 0; i < network.layers.size(); ++i) {
        const LayerDesc &layer = network.layers[i];
        LayerRatioResult row;
        row.name = layer.name;
        row.full_bytes = static_cast<uint64_t>(layer.bytesPerImage()) *
            static_cast<uint64_t>(network.default_batch);
        row.density = layer.relu_follows
            ? schedule.density(i, config.training_progress) : 1.0;

        if (!layer.relu_follows) {
            // Dense outputs (final classifiers): the store-raw fallback
            // sends them uncompressed.
            row.ratio = 1.0;
        } else {
            // Channel-subsampled sample at full spatial extent; the
            // per-byte ratio is invariant to dropping whole channels.
            const int64_t plane = layer.height * layer.width;
            const int64_t max_channels = std::max<int64_t>(
                1, config.max_elements / (plane * config.sample_batch));
            const Shape4D shape{config.sample_batch,
                                std::min(layer.channels, max_channels),
                                layer.height, layer.width};
            // Seed per layer (not per layout) so every layout compresses
            // identical logical data.
            Rng rng(config.seed * 1000003 + i);
            const Tensor4D data =
                generator.generate(shape, layout, row.density, rng);
            row.ratio = compressor->measureRatio(data.rawBytes());
        }

        average.add(row.ratio, static_cast<double>(row.full_bytes));
        result.max = std::max(result.max, row.ratio);
        result.layers.push_back(std::move(row));
    }
    result.average = average.mean();
    return result;
}

NetworkRatioResult
measureTimeAveragedRatios(const NetworkDesc &network, Algorithm algorithm,
                          Layout layout,
                          const std::vector<double> &checkpoints,
                          const RatioMeasureConfig &config)
{
    CDMA_ASSERT(!checkpoints.empty(), "need at least one checkpoint");
    NetworkRatioResult aggregate;
    Accumulator averages;
    aggregate.max = 1.0;
    for (double t : checkpoints) {
        RatioMeasureConfig point = config;
        point.training_progress = t;
        NetworkRatioResult result =
            measureNetworkRatios(network, algorithm, layout, point);
        averages.add(result.average);
        aggregate.max = std::max(aggregate.max, result.max);
        if (aggregate.layers.empty()) {
            aggregate.layers = std::move(result.layers);
        } else {
            // Per-layer ratios are averaged across checkpoints, the
            // training-wide view the paper's traffic numbers reflect.
            for (size_t i = 0; i < aggregate.layers.size(); ++i)
                aggregate.layers[i].ratio += result.layers[i].ratio;
        }
    }
    const auto count = static_cast<double>(checkpoints.size());
    for (auto &layer : aggregate.layers)
        layer.ratio /= count;
    aggregate.average = averages.mean();
    return aggregate;
}

ScaledRun
trainScaledNetwork(const std::string &name, const ScaledRunConfig &config)
{
    Rng rng(config.seed);
    Network net = buildScaledByName(name, rng);
    SyntheticDataset dataset;

    TrainConfig train;
    train.iterations = config.iterations;
    train.batch_size = config.batch;
    train.snapshot_every =
        std::max(1, config.iterations / std::max(1, config.snapshots));

    Trainer trainer(net, dataset, train);
    ScaledRun run;
    run.params = net.paramCount();
    run.snapshots = trainer.run();
    run.val_accuracy = trainer.evaluate(8);
    return run;
}

void
parseTrainArgs(int argc, char **argv, ScaledRunConfig &config)
{
    if (argc > 1)
        config.iterations = std::atoi(argv[1]);
    if (argc > 2)
        config.batch = std::atoll(argv[2]);
    CDMA_ASSERT(config.iterations > 0 && config.batch > 0,
                "invalid training arguments");
}

} // namespace cdma::bench
