/**
 * @file
 * Spatial pooling layers. Section IV-A observes that pooling *increases*
 * activation density ("activation maps always get brighter after going
 * through the pooling layers"): max pooling outputs zero only when every
 * input in the window is zero; average pooling when the window sums to
 * zero. Both are implemented and a unit test checks the densifying
 * property directly.
 */

#ifndef CDMA_DNN_POOL_HH
#define CDMA_DNN_POOL_HH

#include "dnn/layer.hh"

namespace cdma {

/** Pooling flavor. */
enum class PoolMode {
    Max,
    Avg,
};

/** Pooling hyper-parameters. */
struct PoolSpec {
    int64_t kernel = 2;
    int64_t stride = 2;
    PoolMode mode = PoolMode::Max;
};

/** Max/average pooling layer. */
class Pool2D : public Layer
{
  public:
    Pool2D(std::string name, const PoolSpec &spec);

    std::string type() const override { return "pool"; }
    Shape4D outputShape(const Shape4D &input) const override;
    Tensor4D forward(const Tensor4D &input) override;
    Tensor4D backward(const Tensor4D &output_grad) override;

    /** Pooling geometry. */
    const PoolSpec &spec() const { return spec_; }

    uint64_t forwardMacsPerImage(const Shape4D &input) const override;

  private:
    PoolSpec spec_;
    Shape4D cached_input_shape_;
    // For max pooling: the argmax linear offset per output element.
    std::vector<int64_t> argmax_;
};

} // namespace cdma

#endif // CDMA_DNN_POOL_HH
