#include "cdma/footprint.hh"

#include <algorithm>
#include <cmath>

#include "common/bits.hh"
#include "common/logging.hh"

namespace cdma {

CompressedFootprintEstimator::CompressedFootprintEstimator(
    const CompressedStoreConfig &config)
    : config_(config)
{
    CDMA_ASSERT(config.line_bytes > 0 && config.sector_bytes > 0 &&
                    config.line_bytes % config.sector_bytes == 0,
                "line size must be a multiple of the sector quantum");
}

double
CompressedFootprintEstimator::expectedLineBytes(double density) const
{
    const double words = static_cast<double>(config_.line_bytes) / 4.0;
    const double masks = words / 32.0 * 4.0; // one 32-bit mask per 32 words
    return masks + 4.0 * density * words;
}

uint64_t
CompressedFootprintEstimator::quantizedLineBytes(double density) const
{
    const auto expected =
        static_cast<uint64_t>(std::ceil(expectedLineBytes(density)));
    const uint64_t quantized =
        roundUp(expected, config_.sector_bytes);
    // A line never costs more than storing it raw.
    return std::min(quantized, config_.line_bytes);
}

CompressedFootprint
CompressedFootprintEstimator::estimate(const NetworkDesc &network,
                                       int64_t batch, double t) const
{
    const DensitySchedule schedule(network);
    CompressedFootprint result;

    for (size_t i = 0; i < network.layers.size(); ++i) {
        const LayerDesc &layer = network.layers[i];
        const uint64_t raw =
            static_cast<uint64_t>(layer.bytesPerImage()) *
            static_cast<uint64_t>(batch);
        const uint64_t lines = ceilDiv(raw, config_.line_bytes);
        const double density =
            layer.relu_follows ? schedule.density(i, t) : 1.0;

        result.raw_bytes += raw;
        result.compressed_bytes += lines * quantizedLineBytes(density);
        result.metadata_bytes += lines * config_.metadata_per_line;
    }
    result.savings_ratio = result.totalBytes() > 0
        ? static_cast<double>(result.raw_bytes) /
            static_cast<double>(result.totalBytes())
        : 1.0;
    return result;
}

} // namespace cdma
