/**
 * @file
 * Unit tests for the clustered activation generator: exact density
 * targeting, ReLU-style value statistics, and — critically — the spatial
 * clustering that makes RLE layout-sensitive (Figure 5's visual
 * structure, quantified).
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "compress/compressor.hh"
#include "sparsity/generator.hh"

namespace cdma {
namespace {

TEST(Generator, HitsTargetDensityExactly)
{
    ActivationGenerator gen;
    Rng rng(1);
    for (double target : {0.1, 0.3, 0.5, 0.8}) {
        const Tensor4D t = gen.generate(Shape4D{2, 8, 32, 32},
                                        Layout::NCHW, target, rng);
        EXPECT_NEAR(t.density(), target, 0.01) << "target " << target;
    }
}

TEST(Generator, ExtremeDensities)
{
    ActivationGenerator gen;
    Rng rng(2);
    const Tensor4D all_zero = gen.generate(Shape4D{1, 4, 16, 16},
                                           Layout::NCHW, 0.0, rng);
    EXPECT_DOUBLE_EQ(all_zero.density(), 0.0);
    const Tensor4D all_dense = gen.generate(Shape4D{1, 4, 16, 16},
                                            Layout::NCHW, 1.0, rng);
    EXPECT_DOUBLE_EQ(all_dense.density(), 1.0);
    // Fully dense output must still be finite, positive, and varied —
    // not a degenerate constant (regression: an infinite threshold once
    // turned every value into +inf).
    float min_v = all_dense.data()[0], max_v = all_dense.data()[0];
    for (float v : all_dense.data()) {
        ASSERT_TRUE(std::isfinite(v));
        ASSERT_GT(v, 0.0f);
        min_v = std::min(min_v, v);
        max_v = std::max(max_v, v);
    }
    EXPECT_GT(max_v, min_v);
}

TEST(Generator, NonZeroValuesArePositive)
{
    // Post-ReLU activations are nonnegative.
    ActivationGenerator gen;
    Rng rng(3);
    const Tensor4D t = gen.generate(Shape4D{1, 8, 32, 32}, Layout::NCHW,
                                    0.4, rng);
    for (float v : t.data())
        EXPECT_GE(v, 0.0f);
}

TEST(Generator, SameSeedSameLogicalContentAcrossLayouts)
{
    ActivationGenerator gen;
    const Shape4D shape{2, 6, 16, 16};
    Rng rng_a(7), rng_b(7);
    const Tensor4D a = gen.generate(shape, Layout::NCHW, 0.5, rng_a);
    const Tensor4D b = gen.generate(shape, Layout::NHWC, 0.5, rng_b);
    for (int64_t n = 0; n < shape.n; ++n)
        for (int64_t c = 0; c < shape.c; ++c)
            for (int64_t h = 0; h < shape.h; ++h)
                for (int64_t w = 0; w < shape.w; ++w)
                    ASSERT_EQ(a.at(n, c, h, w), b.at(n, c, h, w));
}

TEST(Generator, ZerosAreSpatiallyClustered)
{
    // Neighboring activations in a channel plane should agree on
    // zero/non-zero far more often than chance (Figure 5's black
    // patches). For i.i.d. placement at density d, neighbor agreement is
    // d^2 + (1-d)^2 = 0.5 at d=0.5; clustering pushes it well above.
    ActivationGenerator gen;
    Rng rng(8);
    const Shape4D shape{1, 8, 64, 64};
    const Tensor4D t = gen.generate(shape, Layout::NCHW, 0.5, rng);

    int64_t agree = 0, total = 0;
    for (int64_t c = 0; c < shape.c; ++c) {
        for (int64_t h = 0; h < shape.h; ++h) {
            for (int64_t w = 0; w + 1 < shape.w; ++w) {
                const bool a = t.at(0, c, h, w) != 0.0f;
                const bool b = t.at(0, c, h, w + 1) != 0.0f;
                agree += (a == b);
                ++total;
            }
        }
    }
    const double agreement = static_cast<double>(agree) /
        static_cast<double>(total);
    EXPECT_GT(agreement, 0.8);
}

TEST(Generator, RleLayoutSensitivityEmerges)
{
    // The paper's Figure 11 mechanism, reproduced end-to-end: identical
    // logical activations compress differently under RLE depending on
    // layout (NCHW keeps channel planes contiguous), while ZVC does not
    // care.
    ActivationGenerator gen;
    const Shape4D shape{4, 16, 32, 32};
    Rng rng_a(9), rng_b(9);
    const Tensor4D nchw = gen.generate(shape, Layout::NCHW, 0.35, rng_a);
    const Tensor4D nhwc = gen.generate(shape, Layout::NHWC, 0.35, rng_b);

    const auto rle = makeCompressor(Algorithm::Rle);
    const auto zvc = makeCompressor(Algorithm::Zvc);

    const double rle_nchw = rle->measureRatio(nchw.rawBytes());
    const double rle_nhwc = rle->measureRatio(nhwc.rawBytes());
    const double zvc_nchw = zvc->measureRatio(nchw.rawBytes());
    const double zvc_nhwc = zvc->measureRatio(nhwc.rawBytes());

    EXPECT_GT(rle_nchw, rle_nhwc * 1.15);
    EXPECT_NEAR(zvc_nchw / zvc_nhwc, 1.0, 0.02);
}

TEST(Generator, DeadChannelsAppear)
{
    // Figure 5 shows whole channels going dark; the channel bias should
    // produce some nearly-dead channel planes at moderate density.
    ActivationGenerator gen;
    Rng rng(10);
    const Shape4D shape{1, 64, 32, 32};
    const Tensor4D t = gen.generate(shape, Layout::NCHW, 0.3, rng);
    int dead = 0;
    for (int64_t c = 0; c < shape.c; ++c) {
        int64_t nonzero = 0;
        for (int64_t h = 0; h < shape.h; ++h)
            for (int64_t w = 0; w < shape.w; ++w)
                nonzero += t.at(0, c, h, w) != 0.0f;
        if (nonzero < shape.h * shape.w / 20)
            ++dead;
    }
    EXPECT_GE(dead, 3);
}

TEST(Generator, ZvcRatioMatchesDensityModel)
{
    // End-to-end: generated data at density d compresses under ZVC to
    // ~1/(d + 1/32) regardless of clustering.
    ActivationGenerator gen;
    Rng rng(11);
    const Tensor4D t = gen.generate(Shape4D{2, 32, 32, 32}, Layout::NCHW,
                                    0.4, rng);
    const auto zvc = makeCompressor(Algorithm::Zvc);
    const double measured = zvc->measureRatio(t.rawBytes());
    EXPECT_NEAR(measured, 1.0 / (0.4 + 1.0 / 32.0), 0.15);
}

} // namespace
} // namespace cdma
