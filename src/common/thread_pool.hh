/**
 * @file
 * Minimal reusable worker-thread pool. Built for the parallel compression
 * fan-out (the software analogue of the paper's replicated CPE/DPE
 * pipelines, Section V-B) but generic: parallelFor() runs an index space
 * across the workers with the calling thread participating, so a pool of
 * N threads gives N+1 lanes and a pool of zero threads degrades to a
 * plain serial loop with no synchronization.
 */

#ifndef CDMA_COMMON_THREAD_POOL_HH
#define CDMA_COMMON_THREAD_POOL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cdma {

/** Fixed-size worker pool with a blocking fork-join parallelFor(). */
class ThreadPool
{
  public:
    /**
     * @param lanes Total execution lanes, including the calling thread:
     *        the pool spawns (lanes - 1) workers. 0 means "one lane per
     *        hardware thread"; 1 spawns nothing and parallelFor() runs
     *        inline.
     */
    explicit ThreadPool(unsigned lanes = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Execution lanes (worker threads + the calling thread). */
    unsigned lanes() const
    {
        return static_cast<unsigned>(workers_.size()) + 1;
    }

    /** True when the pool has worker threads beyond the caller. */
    bool hasWorkers() const { return !workers_.empty(); }

    /**
     * Run @p fn(index) for every index in [0, count), distributing indices
     * dynamically across all lanes. Blocks until every index has been
     * processed. If @p fn throws on any lane, the first exception (by
     * completion order) is captured, remaining unclaimed indices are
     * abandoned, every lane is joined, and the exception is rethrown on
     * the calling thread at the rendezvous — a worker never dies with an
     * exception in flight (codec invariant violations still panic() and
     * abort). Reentrant calls from within @p fn are not supported.
     */
    void parallelFor(uint64_t count,
                     const std::function<void(uint64_t)> &fn);

    /**
     * Enqueue @p task for asynchronous execution on a worker thread and
     * return immediately. The pool provides no completion signal for
     * detached tasks: callers own their rendezvous (the shard-streaming
     * compression pairs this with per-shard done flags) and must ensure
     * every reference the task captures outlives it. Requires workers
     * (lanes > 1).
     */
    void submitDetached(std::function<void()> task);

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable work_cv_;
    std::condition_variable done_cv_;
    std::queue<std::function<void()>> tasks_;
    bool stopping_ = false;
};

} // namespace cdma

#endif // CDMA_COMMON_THREAD_POOL_HH
