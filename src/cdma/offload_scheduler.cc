#include "cdma/offload_scheduler.hh"

#include <algorithm>
#include <cstring>
#include <functional>

#include "common/bits.hh"
#include "common/logging.hh"
#include "sim/channel.hh"
#include "sim/event_queue.hh"

namespace cdma {

OffloadScheduler::OffloadScheduler(const CdmaEngine &engine)
    : engine_(engine)
{
    const CdmaConfig &config = engine.config();
    const uint64_t shard_bytes = config.shard_bytes > 0
        ? config.shard_bytes
        : config.gpu.dmaBufferBytes();
    shard_windows_ = std::max<uint64_t>(1, shard_bytes /
                                               config.window_bytes);
    CDMA_ASSERT(config.staging_buffers >= 1,
                "the offload pipeline needs at least one staging buffer");
}

OffloadResult
OffloadScheduler::offload(std::span<const uint8_t> data) const
{
    const CdmaConfig &config = engine_.config();
    OffloadResult result;
    result.buffer.original_bytes = data.size();
    result.buffer.window_bytes = config.window_bytes;

    const uint64_t windows = ceilDiv(data.size(), config.window_bytes);
    result.buffer.window_sizes.reserve(windows);
    result.shards.reserve(ceilDiv(windows, shard_windows_));
    // Whole-buffer worst case reserved once, so the per-shard payload
    // appends below never reallocate (mirrors Compressor::compress).
    if (windows > 0) {
        const Compressor &codec = engine_.compressor().serial();
        result.buffer.payload.reserve(
            (windows - 1) * codec.compressedBound(config.window_bytes) +
            codec.compressedBound(data.size() -
                                  (windows - 1) * config.window_bytes));
    }

    // The consumer is the staging drain: it runs on this thread in shard
    // order while the lanes compress later shards, appending each shard's
    // payload to the stitched buffer and recording its wire size for the
    // pipeline model.
    engine_.compressor().compressShards(
        data, shard_windows_, [&](CompressedShard &&shard) {
            result.shards.push_back(
                {shard.raw_bytes,
                 shard.effectiveBytes(config.window_bytes)});
            result.buffer.payload.insert(result.buffer.payload.end(),
                                         shard.payload.begin(),
                                         shard.payload.end());
            result.buffer.window_sizes.insert(
                result.buffer.window_sizes.end(),
                shard.window_sizes.begin(), shard.window_sizes.end());
        });

    result.timing = pipelineTiming(result.shards,
                                   config.gpu.comp_bandwidth,
                                   config.gpu.pcie_effective_bandwidth,
                                   config.staging_buffers);
    return result;
}

SpilledOffload
OffloadScheduler::offloadInto(std::span<const uint8_t> data,
                              SpillArena &arena) const
{
    const CdmaConfig &config = engine_.config();
    SpilledOffload result;
    result.ticket = arena.beginSpill(data.size(), config.window_bytes);
    result.shards.reserve(
        ceilDiv(ceilDiv(data.size(), config.window_bytes),
                shard_windows_));

    // Same drain as offload(), but each shard lands in a recycled arena
    // slot instead of growing a stitched payload vector.
    engine_.compressor().compressShards(
        data, shard_windows_, [&](CompressedShard &&shard) {
            result.shards.push_back(
                {shard.raw_bytes,
                 shard.effectiveBytes(config.window_bytes)});
            arena.appendShard(result.ticket, shard);
        });

    result.timing = pipelineTiming(result.shards,
                                   config.gpu.comp_bandwidth,
                                   config.gpu.pcie_effective_bandwidth,
                                   config.staging_buffers);
    return result;
}

namespace {

/** Overlap fraction of @p timing in [0,1] (shared finalization rule). */
void
finalizeOverlapFraction(OffloadTiming &timing)
{
    const double hideable =
        std::min(timing.compress_seconds, timing.wire_seconds);
    timing.overlap_fraction = hideable > 0.0
        ? std::clamp(timing.hiddenSeconds() / hideable, 0.0, 1.0)
        : 0.0;
}

} // namespace

OffloadTiming
OffloadScheduler::modelFromRatio(uint64_t raw_bytes, double ratio) const
{
    CDMA_ASSERT(ratio >= 1.0, "ratio %f below store-raw floor", ratio);
    const CdmaConfig &config = engine_.config();
    const double comp_bw = config.gpu.comp_bandwidth;
    const double wire_bw = config.gpu.pcie_effective_bandwidth;
    const unsigned buffers = config.staging_buffers;
    const uint64_t shard_raw = shard_windows_ * config.window_bytes;

    OffloadTiming timing;
    if (raw_bytes == 0)
        return timing;

    // Closed form over the shard shape the DES would replay: `full`
    // uniform shards of shard_raw bytes plus at most one partial tail.
    // The per-shard wire bytes reproduce the DES arithmetic exactly
    // (store-raw-floored truncation per shard).
    const uint64_t full = raw_bytes / shard_raw;
    const uint64_t tail_raw = raw_bytes % shard_raw;
    timing.shard_count = full + (tail_raw != 0 ? 1 : 0);

    const double c = static_cast<double>(shard_raw) / comp_bw;
    const double w = static_cast<double>(static_cast<uint64_t>(
                         static_cast<double>(shard_raw) / ratio)) /
        wire_bw;
    const double tail_c = static_cast<double>(tail_raw) / comp_bw;
    const double tail_w = static_cast<double>(static_cast<uint64_t>(
                              static_cast<double>(tail_raw) / ratio)) /
        wire_bw;

    const double n = static_cast<double>(full);
    timing.compress_seconds = n * c + tail_c;
    timing.wire_seconds = n * w + tail_w;

    if (buffers == 1) {
        // A single staging buffer serializes every shard end to end.
        timing.overlapped_seconds =
            timing.compress_seconds + timing.wire_seconds;
    } else if (full == 0) {
        // Tail-only transfer: one shard, nothing to overlap with.
        timing.overlapped_seconds = tail_c + tail_w;
    } else if (w >= c) {
        // Wire-bound: one compression fill, then the wire never starves
        // (the tail's compression hides under the previous shard's wire
        // time because tail_c <= c <= w).
        timing.overlapped_seconds = c + n * w + tail_w;
    } else {
        // Compression-bound (fetch-capped): the serial compression
        // engine paces the pipeline; the tail's wire leg waits for
        // whichever of its own compression or the previous shard's
        // drain finishes last.
        timing.overlapped_seconds =
            n * c + std::max(tail_c, w) + tail_w;
    }
    finalizeOverlapFraction(timing);
    return timing;
}

OffloadTiming
OffloadScheduler::pipelineTiming(std::span<const ShardTransfer> shards,
                                 double compress_bandwidth,
                                 double wire_bandwidth,
                                 unsigned staging_buffers)
{
    CDMA_ASSERT(compress_bandwidth > 0.0 && wire_bandwidth > 0.0,
                "pipeline model needs positive bandwidths");
    CDMA_ASSERT(staging_buffers >= 1, "need at least one staging buffer");

    OffloadTiming timing;
    timing.shard_count = shards.size();
    if (shards.empty())
        return timing;

    EventQueue queue;
    Channel wire(queue, "pcie", wire_bandwidth);

    // Double-buffer state machine. Events are deterministic: the queue
    // breaks time ties FIFO, and every transition below is driven by
    // exactly one compress-done or drain-done event.
    size_t next_shard = 0;
    size_t in_flight = 0;      // shards holding a staging buffer
    bool compressing = false;  // the compression engine is serial
    SimTime last_drain = 0.0;

    std::function<void()> startCompress = [&] {
        if (next_shard >= shards.size() || compressing ||
            in_flight >= staging_buffers) {
            return;
        }
        const size_t k = next_shard++;
        compressing = true;
        ++in_flight;
        const SimTime compress_time =
            static_cast<double>(shards[k].raw_bytes) / compress_bandwidth;
        queue.scheduleAfter(compress_time, [&, k] {
            // Shard k staged: hand it to the DMA unit (FIFO wire) and
            // start compressing the next shard into the other buffer.
            compressing = false;
            wire.submit(shards[k].wire_bytes, [&] {
                --in_flight;
                last_drain = queue.now();
                startCompress();
            });
            startCompress();
        });
    };
    startCompress();
    queue.run();

    for (const ShardTransfer &shard : shards) {
        timing.compress_seconds +=
            static_cast<double>(shard.raw_bytes) / compress_bandwidth;
    }
    timing.wire_seconds = wire.busySeconds();
    timing.overlapped_seconds = last_drain;
    finalizeOverlapFraction(timing);
    return timing;
}

} // namespace cdma
