#include "cdma/engine.hh"

#include <algorithm>

#include "cdma/transfer_engine.hh"
#include "common/logging.hh"
#include "compress/policy.hh"
#include "obs/metrics.hh"

namespace cdma {

std::string
timingModeName(TimingMode mode)
{
    switch (mode) {
      case TimingMode::CompressionFree: return "compression-free";
      case TimingMode::Overlapped:      return "overlapped";
    }
    panic("unreachable timing mode %d", static_cast<int>(mode));
}

std::string
codecModeName(CodecMode mode)
{
    switch (mode) {
      case CodecMode::Fixed:    return "fixed";
      case CodecMode::Adaptive: return "adaptive";
    }
    panic("unreachable codec mode %d", static_cast<int>(mode));
}

CdmaEngine::CdmaEngine(const CdmaConfig &config)
    : config_(config),
      compressor_(std::make_unique<ParallelCompressor>(
          config.compression.algorithm,
          config.compression.window_bytes, config.compression.lanes,
          config.compression.kernels))
{
    CDMA_ASSERT(config.gpu.pcie_bandwidth > 0.0 &&
                    config.gpu.comp_bandwidth > 0.0,
                "invalid cDMA bandwidth configuration");
    compressor_->setMetrics(config_.obs.metrics);

    // Serial decoder bank: the prefetch side dispatches per stored
    // shard's codec tag, so every codec's decoder must exist whatever
    // mode the engine runs in (mixed-codec spills can arrive from an
    // adaptive peer). Cheap stateless objects.
    const CompressionConfig &comp = config_.compression;
    for (const Codec codec : kAllCodecs) {
        serial_codecs_.push_back(
            makeCodecCompressor(codec, comp.window_bytes, comp.kernels));
    }

    // Adaptive compressor bank: one ParallelCompressor per codec the
    // policy can choose. Only under Adaptive — each bank entry with
    // lanes != 1 owns a thread pool, a cost Fixed engines shouldn't pay.
    if (comp.mode == CodecMode::Adaptive) {
        CDMA_ASSERT(comp.policy != nullptr,
                    "CodecMode::Adaptive needs a CodecPolicyEngine "
                    "(CompressionConfig::policy)");
        const Codec fixed = codecFor(comp.algorithm);
        codec_bank_.resize(std::size(kAllCodecs));
        for (const Codec codec : kAllCodecs) {
            if (codec == fixed)
                continue; // compressorFor() routes this to compressor_
            auto bank = std::make_unique<ParallelCompressor>(
                makeCodecCompressor(codec, comp.window_bytes,
                                    comp.kernels),
                comp.lanes);
            bank->setMetrics(config_.obs.metrics);
            codec_bank_[static_cast<size_t>(codec)] = std::move(bank);
        }
    }
}

const ParallelCompressor &
CdmaEngine::compressorFor(Codec codec) const
{
    if (codec == compressor_->codecTag() || codec_bank_.empty())
        return *compressor_;
    const auto &bank = codec_bank_[static_cast<size_t>(codec)];
    CDMA_ASSERT(bank != nullptr, "no bank compressor for codec %s",
                codecName(codec).c_str());
    return *bank;
}

const Compressor &
CdmaEngine::serialCodec(Codec codec) const
{
    return *serial_codecs_[static_cast<size_t>(codec)];
}

void
recordIntegrity(obs::MetricsRegistry &metrics,
                const TransferIntegrity &integrity)
{
    metrics.counter("integrity.attempts").add(integrity.attempts);
    metrics.counter("integrity.retries").add(integrity.retries);
    metrics.counter("integrity.crc_failures").add(integrity.crc_failures);
    metrics.counter("integrity.link_faults").add(integrity.link_faults);
    metrics.counter("integrity.degraded_shards")
        .add(integrity.degraded_shards);
    metrics.counter("integrity.failed_wire_bytes")
        .add(integrity.failed_wire_bytes);
    metrics.histogram("integrity.retry_stall_seconds")
        .record(integrity.retry_stall_seconds);
}

double
CdmaEngine::capRatio() const
{
    return config_.gpu.comp_bandwidth / config_.gpu.pcie_bandwidth;
}

double
CdmaEngine::transferSeconds(uint64_t wire_bytes, double ratio) const
{
    double seconds = static_cast<double>(wire_bytes) /
        config_.gpu.pcie_effective_bandwidth;
    // Section VI: when ratio x PCIe_BW exceeds the provisioned COMP_BW,
    // compressed data cannot be produced at line rate; latency inflates
    // by (required / COMP_BW).
    const double required = ratio * config_.gpu.pcie_bandwidth;
    if (required > config_.gpu.comp_bandwidth)
        seconds *= required / config_.gpu.comp_bandwidth;
    return seconds;
}

TransferPlan
CdmaEngine::planTransfer(const std::string &label,
                         std::span<const uint8_t> data) const
{
    if (!config_.compression.enabled) {
        return planFromRatio(label, data.size(), 1.0);
    }
    // Adaptive mode: let the policy sample the actual bytes and pick
    // the codec; the plan is then built with that codec end to end and
    // the achieved ratio feeds back into the policy's model.
    CodecPolicyEngine *policy = config_.compression.policy;
    std::optional<PolicyDecision> decision;
    Codec codec = compressor_->codecTag();
    if (config_.compression.mode == CodecMode::Adaptive &&
        policy != nullptr) {
        decision = policy->decide(label, data);
        codec = decision->codec;
    }
    TransferPlan plan;
    plan.label = label;
    plan.raw_bytes = data.size();
    plan.codec = codec;
    if (decision)
        plan.policy_predicted_seconds = decision->predicted_seconds;
    if (config_.transfer.timing_mode == TimingMode::Overlapped) {
        // Double-buffered pipeline over the real per-shard compressed
        // sizes: compression latency is explicit and the COMP_BW cap
        // emerges when the compression stage cannot feed the link.
        const TransferEngine transfers(*this);
        const OffloadResult result = transfers.offload(data, codec);
        plan.wire_bytes = result.buffer.effectiveBytes();
        plan.ratio = result.buffer.effectiveRatio();
        plan.offload = result.timing;
        plan.seconds = result.timing.overlapped_seconds;
        // The prefetch leg returns the same compressed shards, so its
        // pipeline is modeled over the same measured sizes (wire in,
        // then decompress) without re-running the codec. Routed
        // through the duplex DES (prefetch direction only) so a
        // configured fault process prices its backoff identically in
        // both directions.
        plan.prefetch = transfers.duplexTiming({}, result.shards).prefetch;
        // Integrity expectation for the round trip: the offload train
        // crosses once, the prefetch returns the same train.
        plan.integrity = result.integrity;
        plan.integrity.accumulate(
            TransferEngine::trainIntegrity(result.shards));
        plan.integrity.retry_stall_seconds =
            plan.offload.retry_stall_seconds +
            plan.prefetch.retry_stall_seconds;
        // The duplex race of this map's offload against an equal-size
        // prefetch on the configured link (same measured shard train in
        // both directions). Under Full the directions are independent
        // by construction, so the race is composed from the breakdowns
        // already computed instead of re-running the DES.
        if (config_.transfer.duplex_mode == DuplexMode::Full) {
            plan.duplex.offload = plan.offload;
            plan.duplex.prefetch = plan.prefetch;
            plan.duplex.makespan_seconds =
                std::max(plan.offload.overlapped_seconds,
                         plan.prefetch.overlapped_seconds);
        } else {
            plan.duplex = transfers.duplexTiming(result.shards,
                                                 result.shards);
        }
    } else {
        const CompressedBuffer compressed =
            compressorFor(codec).compress(data);
        plan.wire_bytes = compressed.effectiveBytes();
        plan.ratio = compressed.effectiveRatio();
        plan.seconds = transferSeconds(plan.wire_bytes, plan.ratio);
    }
    plan.required_fetch_bandwidth =
        plan.ratio * config_.gpu.pcie_bandwidth;
    plan.fetch_capped =
        plan.required_fetch_bandwidth > config_.gpu.comp_bandwidth;
    // Close the policy loop with the ratio the codec actually achieved
    // on these bytes (the modeled ratio was an interpolation).
    if (decision)
        policy->observe(label, *decision, plan.raw_bytes, plan.ratio);
    return plan;
}

TransferPlan
CdmaEngine::planFromDensity(const std::string &label, uint64_t raw_bytes,
                            double density) const
{
    if (!config_.compression.enabled)
        return planFromRatio(label, raw_bytes, 1.0);
    CodecPolicyEngine *policy = config_.compression.policy;
    CDMA_ASSERT(config_.compression.mode == CodecMode::Adaptive &&
                    policy != nullptr,
                "planFromDensity needs CodecMode::Adaptive with a "
                "configured policy engine");
    const PolicyDecision decision =
        policy->decideFromDensity(label, raw_bytes, density);
    TransferPlan plan = planFromRatio(
        label, raw_bytes, std::max(1.0, decision.predicted_ratio));
    plan.codec = decision.codec;
    plan.policy_predicted_seconds = decision.predicted_seconds;
    return plan;
}

TransferPlan
CdmaEngine::planFromRatio(const std::string &label, uint64_t raw_bytes,
                          double ratio) const
{
    CDMA_ASSERT(ratio >= 1.0, "ratio %f below store-raw floor", ratio);
    TransferPlan plan;
    plan.label = label;
    plan.raw_bytes = raw_bytes;
    const double effective_ratio =
        config_.compression.enabled ? ratio : 1.0;
    plan.wire_bytes = static_cast<uint64_t>(
        static_cast<double>(raw_bytes) / effective_ratio);
    plan.ratio = effective_ratio;
    plan.required_fetch_bandwidth =
        plan.ratio * config_.gpu.pcie_bandwidth;
    plan.fetch_capped =
        plan.required_fetch_bandwidth > config_.gpu.comp_bandwidth;
    // With compression disabled there is no cDMA engine in the path, so
    // the overlap pipeline (and its compression-fetch leg) does not
    // apply: plain DMA occupancy regardless of timing mode.
    if (config_.transfer.timing_mode == TimingMode::Overlapped &&
        config_.compression.enabled) {
        if (config_.transfer.fault_injector != nullptr) {
            // The schedulers' closed forms model a perfect link; with
            // a fault process configured, replay the expected shard
            // train (attempts / re-sent bytes in expectation) through
            // the duplex DES so retries and backoff are priced.
            const TransferEngine transfers(*this);
            const std::vector<ShardTransfer> train =
                transfers.shardTrain(raw_bytes, plan.ratio);
            plan.offload = transfers.duplexTiming(train, {}).offload;
            plan.prefetch = transfers.duplexTiming({}, train).prefetch;
            plan.seconds = plan.offload.overlapped_seconds;
            // Round trip: the train crosses once per direction.
            plan.integrity = TransferEngine::trainIntegrity(train);
            plan.integrity.accumulate(
                TransferEngine::trainIntegrity(train));
            plan.integrity.retry_stall_seconds =
                plan.offload.retry_stall_seconds +
                plan.prefetch.retry_stall_seconds;
        } else {
            const OffloadScheduler scheduler(*this);
            plan.offload =
                scheduler.modelFromRatio(raw_bytes, plan.ratio);
            plan.seconds = plan.offload.overlapped_seconds;
            plan.prefetch = PrefetchScheduler(*this).modelFromRatio(
                raw_bytes, plan.ratio);
        }
        // Same Full-duplex shortcut as planTransfer: independent
        // directions need no contended replay.
        if (config_.transfer.duplex_mode == DuplexMode::Full) {
            plan.duplex.offload = plan.offload;
            plan.duplex.prefetch = plan.prefetch;
            plan.duplex.makespan_seconds =
                std::max(plan.offload.overlapped_seconds,
                         plan.prefetch.overlapped_seconds);
        } else {
            plan.duplex = TransferEngine(*this).modelFromRatio(
                raw_bytes, plan.ratio, raw_bytes, plan.ratio);
        }
    } else {
        plan.seconds = transferSeconds(plan.wire_bytes, plan.ratio);
    }
    return plan;
}

} // namespace cdma
