#include "compress/lz77.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cdma {

namespace {

constexpr int kHashBits = 15;
constexpr size_t kHashSize = 1u << kHashBits;

uint32_t
hash3(const uint8_t *p)
{
    // Multiplicative hash of a 3-byte prefix.
    const uint32_t v = static_cast<uint32_t>(p[0]) |
        (static_cast<uint32_t>(p[1]) << 8) |
        (static_cast<uint32_t>(p[2]) << 16);
    return (v * 2654435761u) >> (32 - kHashBits);
}

} // namespace

std::vector<Lz77Token>
lz77Tokenize(std::span<const uint8_t> input, const Lz77Config &config)
{
    std::vector<Lz77Token> tokens;
    tokens.reserve(input.size() / 4 + 16);

    const size_t n = input.size();
    std::vector<int64_t> head(kHashSize, -1);
    std::vector<int64_t> prev(n, -1);

    size_t pos = 0;
    while (pos < n) {
        uint16_t best_len = 0;
        uint32_t best_dist = 0;

        if (pos + config.min_match <= n && n - pos >= 3) {
            const uint32_t h = hash3(input.data() + pos);
            int64_t candidate = head[h];
            int chain = config.max_chain;
            const size_t max_len = std::min<size_t>(config.max_match,
                                                    n - pos);
            while (candidate >= 0 && chain-- > 0) {
                const auto dist =
                    static_cast<uint32_t>(pos - static_cast<size_t>(
                        candidate));
                if (dist > config.max_distance)
                    break;
                size_t len = 0;
                const uint8_t *a = input.data() + candidate;
                const uint8_t *b = input.data() + pos;
                while (len < max_len && a[len] == b[len])
                    ++len;
                if (len >= config.min_match && len > best_len) {
                    best_len = static_cast<uint16_t>(len);
                    best_dist = dist;
                    if (len == max_len)
                        break;
                }
                candidate = prev[static_cast<size_t>(candidate)];
            }
        }

        if (best_len >= config.min_match) {
            tokens.push_back({true, 0, best_len,
                              static_cast<uint16_t>(best_dist)});
            // Insert every covered position into the hash chains so later
            // matches can reference the interior of this match.
            const size_t end = pos + best_len;
            while (pos < end) {
                if (pos + 3 <= n) {
                    const uint32_t h = hash3(input.data() + pos);
                    prev[pos] = head[h];
                    head[h] = static_cast<int64_t>(pos);
                }
                ++pos;
            }
        } else {
            if (pos + 3 <= n) {
                const uint32_t h = hash3(input.data() + pos);
                prev[pos] = head[h];
                head[h] = static_cast<int64_t>(pos);
            }
            tokens.push_back({false, input[pos], 0, 0});
            ++pos;
        }
    }
    return tokens;
}

std::vector<uint8_t>
lz77Reconstruct(const std::vector<Lz77Token> &tokens)
{
    std::vector<uint8_t> out;
    for (const auto &token : tokens) {
        if (!token.is_match) {
            out.push_back(token.literal);
            continue;
        }
        CDMA_ASSERT(token.distance > 0 && token.distance <= out.size(),
                    "LZ77 match distance %u exceeds history %zu",
                    token.distance, out.size());
        // Byte-by-byte copy: overlapping matches (distance < length)
        // intentionally replicate recent output, as in DEFLATE.
        size_t src = out.size() - token.distance;
        for (uint16_t i = 0; i < token.length; ++i)
            out.push_back(out[src + i]);
    }
    return out;
}

} // namespace cdma
