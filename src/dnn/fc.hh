/**
 * @file
 * Fully-connected (classifier) layer. Section IV-A observes FC layers
 * exhibit the highest activation sparsity of any layer type; they flatten
 * the incoming (N, C, H, W) volume into (N, features) and apply a dense
 * affine transform.
 */

#ifndef CDMA_DNN_FC_HH
#define CDMA_DNN_FC_HH

#include "common/rng.hh"
#include "dnn/layer.hh"

namespace cdma {

/** Fully-connected layer mapping any input volume to (N, out, 1, 1). */
class FullyConnected : public Layer
{
  public:
    /**
     * @param name Layer instance name.
     * @param in_features Flattened input size (C*H*W).
     * @param out_features Output neuron count.
     * @param rng Weight-initialization stream.
     */
    FullyConnected(std::string name, int64_t in_features,
                   int64_t out_features, Rng &rng);

    std::string type() const override { return "fc"; }
    Shape4D outputShape(const Shape4D &input) const override;
    Tensor4D forward(const Tensor4D &input) override;
    Tensor4D backward(const Tensor4D &output_grad) override;
    std::vector<ParamBlob *> params() override;

    uint64_t forwardMacsPerImage(const Shape4D &input) const override
    {
        (void)input;
        return forwardMacs(1);
    }

    /** Multiply-accumulate count for one forward pass with batch @p n. */
    uint64_t forwardMacs(int64_t n) const
    {
        return static_cast<uint64_t>(n) *
            static_cast<uint64_t>(in_features_ * out_features_);
    }

  private:
    int64_t in_features_;
    int64_t out_features_;
    ParamBlob weights_; // [out][in]
    ParamBlob bias_;    // [out]
    Tensor4D cached_input_;
};

} // namespace cdma

#endif // CDMA_DNN_FC_HH
