/**
 * @file
 * Async double-buffered prefetch pipeline — the mirror image of
 * OffloadScheduler for the backward pass. When backpropagation needs a
 * layer's input activations back, the compressed shards cross PCIe into
 * a staging buffer while the decompression engine (the paper's DPE
 * replicas, Section V-B) re-inflates the previously landed shard into
 * GPU DRAM, so shard k+1's wire time overlaps shard k's decompression.
 * The scheduler drives real decompression (ParallelCompressor's
 * in-order decompressShards streaming, or shard views held by a
 * SpillArena) and runs the same deterministic event model as the
 * offload side with the stages swapped.
 *
 * The timing model has two rules, symmetric to the offload leg:
 *  - the wire is FIFO and drains compressed (store-raw-floored) bytes
 *    at effective PCIe bandwidth; the decompression engine is serial
 *    across shards and writes raw bytes at COMP_BW;
 *  - a shard occupies one staging buffer from the moment its wire
 *    transfer starts until its last byte is re-inflated, and only
 *    staging_buffers (default 2) may be in flight at once.
 *
 * For uniform shards (wire time w, decompression time d, n shards) the
 * makespan keeps the closed form
 *
 *     overlapped = n * max(w, d) + min(w, d)
 *
 * which tests/cdma/prefetch_scheduler_test.cc pins against the DES
 * reference to 1e-9 relative error.
 */

#ifndef CDMA_CDMA_PREFETCH_SCHEDULER_HH
#define CDMA_CDMA_PREFETCH_SCHEDULER_HH

#include <span>
#include <vector>

#include "cdma/engine.hh"
#include "cdma/offload_scheduler.hh"
#include "cdma/spill_arena.hh"

namespace cdma {

/** Outcome of one scheduled prefetch: restored data and modeled timing. */
struct PrefetchResult {
    /** Reconstructed bytes, identical to the original offloaded buffer. */
    ByteVec data;
    /** Pipeline timing over the real per-shard compressed sizes. */
    PrefetchTiming timing;
    /** Per-shard byte counts, in arrival order. */
    std::vector<ShardTransfer> shards;
};

/**
 * Drives decompression and models the double-buffered transfer/expand
 * pipeline for one cDMA engine.
 */
class PrefetchScheduler
{
  public:
    explicit PrefetchScheduler(const CdmaEngine &engine);

    /** Windows per staging shard (>= 1), from CdmaConfig::shard_bytes. */
    uint64_t shardWindows() const { return shard_windows_; }

    /**
     * Prefetch @p buffer: reconstruct it shard-by-shard on the engine's
     * lanes (consumed in deterministic shard order, while later shards
     * are still expanding) and model the double-buffered pipeline over
     * the measured per-shard sizes.
     */
    PrefetchResult prefetch(const CompressedBuffer &buffer) const;

    /**
     * Prefetch a spilled buffer straight out of @p arena's shard slots
     * (no stitched CompressedBuffer in between). The ticket stays live;
     * the caller releases it once the restored bytes are consumed.
     */
    PrefetchResult prefetch(const SpillArena &arena,
                            SpillTicket ticket) const;

    /**
     * Pipeline timing for a prefetch of @p raw_bytes at a known
     * compression ratio (the analytic path): uniform staging shards at
     * ratio, a trailing partial shard when raw_bytes is not a multiple
     * of the shard size. Allocation-free closed form mirroring
     * OffloadScheduler::modelFromRatio with the stages swapped; the DES
     * (pipelineTiming) is the reference and the tests pin equality to
     * 1e-9 relative error.
     */
    PrefetchTiming modelFromRatio(uint64_t raw_bytes, double ratio) const;

    /**
     * The core pipeline model: shard k's wire transfer starts when the
     * (FIFO) channel is free AND a staging buffer is free (shard
     * k - staging_buffers + 1 has been re-inflated); its decompression
     * starts when its last wire byte lands and the serial decompression
     * engine is free. Runs on a deterministic event queue; returns the
     * aggregate timing.
     */
    static PrefetchTiming pipelineTiming(
        std::span<const ShardTransfer> shards, double wire_bandwidth,
        double decompress_bandwidth, unsigned staging_buffers = 2);

  private:
    PrefetchTiming timingFor(std::span<const ShardTransfer> shards) const;

    const CdmaEngine &engine_;
    uint64_t shard_windows_;
};

} // namespace cdma

#endif // CDMA_CDMA_PREFETCH_SCHEDULER_HH
