/**
 * @file
 * Tests for the unified full-duplex TransferEngine: conservation and
 * degeneracy properties of the duplex DES (one direction idle must
 * reproduce the single-direction closed forms at 1e-9), arbiter
 * fairness under symmetric load, half-vs-full duplex contention,
 * byte-identity of spill-arena round trips through the unified ticket
 * flow at 1/2/8 lanes, and the contended surfaces on TransferPlan,
 * VdnnMemoryManager::duplexSchedule and the step simulator.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "cdma/transfer_engine.hh"
#include "common/rng.hh"
#include "perf/step_sim.hh"
#include "vdnn/memory_manager.hh"

namespace cdma {
namespace {

/** ReLU-like fp32 words at the given density. */
std::vector<uint8_t>
makeInput(double density, size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> input(bytes, 0);
    const size_t words = bytes / 4;
    for (size_t i = 0; i < words; ++i) {
        if (density > 0.0 && rng.bernoulli(density)) {
            const float value =
                1.0f + static_cast<float>(std::abs(rng.normal()));
            std::memcpy(input.data() + i * 4, &value, 4);
        }
    }
    for (size_t i = words * 4; i < bytes; ++i)
        input[i] = static_cast<uint8_t>(1 + rng.uniformInt(255));
    return input;
}

CdmaEngine
makeEngine(unsigned lanes, DuplexMode mode = DuplexMode::Full,
           LinkArbiter arbiter = LinkArbiter::RoundRobin)
{
    CdmaConfig config;
    config.compression.lanes = lanes;
    config.transfer.timing_mode = TimingMode::Overlapped;
    config.transfer.duplex_mode = mode;
    config.transfer.link_arbiter = arbiter;
    return CdmaEngine(config);
}

/** Mixed shard train for the DES property sweeps. */
std::vector<ShardTransfer>
makeShards(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<ShardTransfer> shards;
    for (size_t i = 0; i < n; ++i) {
        const uint64_t raw = 4096 + 4096 * rng.uniformInt(16);
        shards.push_back({raw, raw / (1 + rng.uniformInt(8))});
    }
    return shards;
}

TEST(DuplexPipeline, IdlePrefetchDirectionReducesToOffloadClosedForm)
{
    // The duplex DES with the opposing direction empty must reproduce
    // the single-direction closed forms (the degenerate case the
    // direction schedulers keep) to 1e-9 — under both duplex modes and
    // every arbiter, none of which may matter with one direction idle.
    CdmaConfig config;
    config.transfer.timing_mode = TimingMode::Overlapped;
    const CdmaEngine engine(config);
    const TransferEngine transfers(engine);
    const OffloadScheduler offload(engine);
    const PrefetchScheduler prefetch(engine);
    const uint64_t shard_raw =
        transfers.shardWindows() * config.compression.window_bytes;

    for (const double ratio : {1.0, 2.5, 12.5, 40.0}) {
        for (const uint64_t raw :
             {shard_raw / 2, shard_raw, 3 * shard_raw,
              7 * shard_raw + shard_raw / 3, 64 * shard_raw + 4097}) {
            const DuplexTiming off_only =
                transfers.modelFromRatio(raw, ratio, 0, 1.0);
            const OffloadTiming off_closed =
                offload.modelFromRatio(raw, ratio);
            EXPECT_EQ(off_only.offload.shard_count,
                      off_closed.shard_count);
            EXPECT_NEAR(off_only.offload.overlapped_seconds,
                        off_closed.overlapped_seconds,
                        1e-9 * off_closed.overlapped_seconds)
                << "raw=" << raw << " ratio=" << ratio;
            EXPECT_NEAR(off_only.offload.compress_seconds,
                        off_closed.compress_seconds,
                        1e-9 * off_closed.compress_seconds);
            EXPECT_NEAR(off_only.offload.wire_seconds,
                        off_closed.wire_seconds,
                        1e-9 * std::max(off_closed.wire_seconds, 1e-30));
            EXPECT_DOUBLE_EQ(off_only.contentionSeconds(), 0.0);
            EXPECT_DOUBLE_EQ(off_only.makespan_seconds,
                             off_only.offload.overlapped_seconds);
            // Idle prefetch direction reports an empty pipeline.
            EXPECT_EQ(off_only.prefetch.shard_count, 0u);
            EXPECT_DOUBLE_EQ(off_only.prefetch.overlapped_seconds, 0.0);

            const DuplexTiming pre_only =
                transfers.modelFromRatio(0, 1.0, raw, ratio);
            const PrefetchTiming pre_closed =
                prefetch.modelFromRatio(raw, ratio);
            EXPECT_EQ(pre_only.prefetch.shard_count,
                      pre_closed.shard_count);
            EXPECT_NEAR(pre_only.prefetch.overlapped_seconds,
                        pre_closed.overlapped_seconds,
                        1e-9 * pre_closed.overlapped_seconds)
                << "raw=" << raw << " ratio=" << ratio;
            EXPECT_NEAR(pre_only.prefetch.wire_seconds,
                        pre_closed.wire_seconds,
                        1e-9 * std::max(pre_closed.wire_seconds, 1e-30));
            EXPECT_NEAR(pre_only.prefetch.decompress_seconds,
                        pre_closed.decompress_seconds,
                        1e-9 * pre_closed.decompress_seconds);
            EXPECT_DOUBLE_EQ(pre_only.contentionSeconds(), 0.0);
            EXPECT_EQ(pre_only.offload.shard_count, 0u);
        }
    }
}

TEST(DuplexPipeline, ConservationBusyTimeBoundedByMakespan)
{
    // Sum of per-direction wire busy time never exceeds the duplex
    // makespan times the number of directions — and under half duplex
    // (one shared link) it is bounded by the makespan alone.
    for (const DuplexMode mode : {DuplexMode::Half, DuplexMode::Full}) {
        for (const unsigned buffers : {1u, 2u, 3u}) {
            for (const uint64_t seed : {1ull, 2ull, 3ull}) {
                const auto off_shards = makeShards(17, seed);
                const auto pre_shards = makeShards(23, seed + 100);
                const DuplexTiming timing =
                    TransferEngine::pipelineTiming(
                        off_shards, pre_shards, 200e9, 12.8e9, 200e9,
                        buffers, mode, LinkArbiter::RoundRobin);
                const double wire_busy = timing.offload.wire_seconds +
                    timing.prefetch.wire_seconds;
                if (mode == DuplexMode::Half) {
                    EXPECT_LE(wire_busy,
                              timing.makespan_seconds + 1e-12);
                } else {
                    EXPECT_LE(wire_busy,
                              2.0 * timing.makespan_seconds + 1e-12);
                }
                // Each direction's makespan bounds the duplex makespan
                // from below and is itself at least its busy legs' max.
                EXPECT_GE(timing.makespan_seconds,
                          timing.offload.overlapped_seconds - 1e-12);
                EXPECT_GE(timing.makespan_seconds,
                          timing.prefetch.overlapped_seconds - 1e-12);
                // Contention only exists on a shared link.
                if (mode == DuplexMode::Full) {
                    EXPECT_DOUBLE_EQ(timing.contentionSeconds(), 0.0);
                }
            }
        }
    }
}

TEST(DuplexPipeline, HalfDuplexContendsAndFullDuplexDoesNot)
{
    // Identical symmetric trains in both directions, wire-bound so the
    // link is the bottleneck: under half duplex each direction must be
    // slower than it would be alone and report nonzero contention;
    // under full duplex both match the single-direction timelines
    // exactly.
    const uint64_t raw = 1 << 20;
    const std::vector<ShardTransfer> train(
        16, {raw, static_cast<uint64_t>(raw / 2.5)});

    const DuplexTiming alone = TransferEngine::pipelineTiming(
        train, {}, 200e9, 12.8e9, 200e9, 2, DuplexMode::Half,
        LinkArbiter::RoundRobin);
    const DuplexTiming full = TransferEngine::pipelineTiming(
        train, train, 200e9, 12.8e9, 200e9, 2, DuplexMode::Full,
        LinkArbiter::RoundRobin);
    const DuplexTiming half = TransferEngine::pipelineTiming(
        train, train, 200e9, 12.8e9, 200e9, 2, DuplexMode::Half,
        LinkArbiter::RoundRobin);

    EXPECT_DOUBLE_EQ(full.offload.overlapped_seconds,
                     alone.offload.overlapped_seconds);
    EXPECT_DOUBLE_EQ(full.contentionSeconds(), 0.0);

    EXPECT_GT(half.offload.overlapped_seconds,
              alone.offload.overlapped_seconds);
    EXPECT_GT(half.contentionSeconds(), 0.0);
    EXPECT_GT(half.contentionStallFraction(), 0.0);
    EXPECT_LE(half.contentionStallFraction(), 1.0);
    // A shared wire-bound link serving two equal trains takes about
    // twice as long as either train alone.
    EXPECT_GT(half.makespan_seconds,
              1.8 * alone.offload.overlapped_seconds);
}

TEST(DuplexPipeline, RoundRobinIsFairUnderSymmetricLoad)
{
    // Equal trains in both directions under round-robin: the two
    // directions' makespans and contention shares must come out (near)
    // symmetric — neither direction starves.
    const uint64_t raw = 1 << 20;
    const std::vector<ShardTransfer> train(
        12, {raw, static_cast<uint64_t>(raw / 3.0)});
    const DuplexTiming timing = TransferEngine::pipelineTiming(
        train, train, 200e9, 12.8e9, 200e9, 2, DuplexMode::Half,
        LinkArbiter::RoundRobin);

    const double off = timing.offload.overlapped_seconds;
    const double pre = timing.prefetch.overlapped_seconds;
    EXPECT_NEAR(off, pre, 0.10 * std::max(off, pre));
    // Both directions pay contention, in comparable shares (a transfer
    // can wait out several opposing grants, so the per-direction sums
    // are bounded by the race's length, not the opposing wire total).
    EXPECT_GT(timing.offload_contention_seconds, 0.0);
    EXPECT_GT(timing.prefetch_contention_seconds, 0.0);
    EXPECT_NEAR(timing.offload_contention_seconds,
                timing.prefetch_contention_seconds,
                0.25 * std::max(timing.offload_contention_seconds,
                                timing.prefetch_contention_seconds));
}

TEST(DuplexPipeline, PriorityArbiterFavorsItsDirection)
{
    const uint64_t raw = 1 << 20;
    const std::vector<ShardTransfer> train(
        12, {raw, static_cast<uint64_t>(raw / 3.0)});
    const DuplexTiming off_first = TransferEngine::pipelineTiming(
        train, train, 200e9, 12.8e9, 200e9, 2, DuplexMode::Half,
        LinkArbiter::OffloadFirst);
    const DuplexTiming pre_first = TransferEngine::pipelineTiming(
        train, train, 200e9, 12.8e9, 200e9, 2, DuplexMode::Half,
        LinkArbiter::PrefetchFirst);
    // The favored direction finishes earlier than it does when the
    // other direction is favored.
    EXPECT_LT(off_first.offload.overlapped_seconds,
              pre_first.offload.overlapped_seconds);
    EXPECT_LT(pre_first.prefetch.overlapped_seconds,
              off_first.prefetch.overlapped_seconds);
}

TEST(TransferEngine, SpillArenaRoundTripsByteIdenticalAcrossLanes)
{
    // The unified ticket flow (offloadInto -> prefetch(arena, ticket))
    // must restore byte-identical data at 1/2/8 compression lanes, and
    // the restored bytes and shard trains must not depend on lane
    // count.
    const auto input = makeInput(0.4, (1 << 20) + 123, 929);
    std::vector<ByteVec> restored;
    for (const unsigned lanes : {1u, 2u, 8u}) {
        const CdmaEngine engine = makeEngine(lanes);
        const TransferEngine transfers(engine);
        SpillArena arena;
        const SpilledOffload spilled =
            transfers.offloadInto(input, arena).value();
        const PrefetchResult result =
            transfers.prefetch(arena, spilled.ticket).value();
        EXPECT_EQ(result.data,
                  ByteVec(input.begin(), input.end()))
            << lanes << " lanes";
        ASSERT_EQ(result.shards.size(), spilled.shards.size());
        for (size_t i = 0; i < result.shards.size(); ++i) {
            EXPECT_EQ(result.shards[i].raw_bytes,
                      spilled.shards[i].raw_bytes);
            EXPECT_EQ(result.shards[i].wire_bytes,
                      spilled.shards[i].wire_bytes);
        }
        arena.release(spilled.ticket);
        restored.push_back(result.data);
    }
    EXPECT_EQ(restored[0], restored[1]);
    EXPECT_EQ(restored[0], restored[2]);
}

TEST(TransferEngine, FullDuplexStepRacesOffloadAgainstPrefetch)
{
    // The steady-state training step: offload layer n+1's input while
    // prefetching layer n-1's out of the arena, both on one half-duplex
    // link. Restored bytes stay identical and both directions report
    // the contention the shared link imposed.
    const auto earlier = makeInput(0.5, (1 << 19) + 77, 31);
    const auto later = makeInput(0.3, (1 << 19) + 4096, 32);
    const CdmaEngine engine = makeEngine(2, DuplexMode::Half);
    const TransferEngine transfers(engine);
    SpillArena arena;

    const SpilledOffload first =
        transfers.offloadInto(earlier, arena).value();
    const TransferEngine::DuplexResult step =
        transfers.transfer(later, arena, first.ticket).value();
    EXPECT_EQ(step.prefetch.data, ByteVec(earlier.begin(), earlier.end()));
    arena.release(first.ticket);

    const PrefetchResult second =
        transfers.prefetch(arena, step.offload.ticket).value();
    EXPECT_EQ(second.data, ByteVec(later.begin(), later.end()));
    arena.release(step.offload.ticket);

    // Wire-bound ZV-class shard trains on one link: the race must cost
    // someone something.
    EXPECT_GT(step.timing.contentionSeconds(), 0.0);
    EXPECT_GT(step.timing.makespan_seconds, 0.0);
    // The per-flow timings carry the contended breakdowns.
    EXPECT_DOUBLE_EQ(step.offload.timing.overlapped_seconds,
                     step.timing.offload.overlapped_seconds);
    EXPECT_DOUBLE_EQ(step.prefetch.timing.overlapped_seconds,
                     step.timing.prefetch.overlapped_seconds);
}

TEST(CdmaEngine, PlansCarryDuplexTiming)
{
    const uint64_t raw = 64ull << 20;

    // Full duplex: the duplex race's per-direction breakdowns coincide
    // with the independent single-direction pipelines.
    const CdmaEngine full = makeEngine(1, DuplexMode::Full);
    const TransferPlan full_plan = full.planFromRatio("map", raw, 2.5);
    EXPECT_GT(full_plan.duplex.offload.shard_count, 0u);
    // The duplex DES against the schedulers' closed forms: 1e-9, the
    // same pin the degenerate-direction tests use.
    EXPECT_NEAR(full_plan.duplex.offload.overlapped_seconds,
                full_plan.offload.overlapped_seconds,
                1e-9 * full_plan.offload.overlapped_seconds);
    EXPECT_NEAR(full_plan.duplex.prefetch.overlapped_seconds,
                full_plan.prefetch.overlapped_seconds,
                1e-9 * full_plan.prefetch.overlapped_seconds);
    EXPECT_DOUBLE_EQ(full_plan.duplex.contentionSeconds(), 0.0);

    // Half duplex: the race on the shared link shows up as contention
    // and stretches at least one direction past its solo makespan.
    const CdmaEngine half = makeEngine(1, DuplexMode::Half);
    const TransferPlan half_plan = half.planFromRatio("map", raw, 2.5);
    EXPECT_GT(half_plan.duplex.contentionSeconds(), 0.0);
    EXPECT_GT(half_plan.duplex.contentionStallFraction(), 0.0);
    EXPECT_GE(half_plan.duplex.makespan_seconds,
              std::max(half_plan.offload.overlapped_seconds,
                       half_plan.prefetch.overlapped_seconds));

    // Real-bytes planning carries the same surface.
    const auto input = makeInput(0.25, 1 << 20, 47);
    const TransferPlan real = half.planTransfer("real", input);
    EXPECT_GT(real.duplex.offload.shard_count, 0u);
    EXPECT_GT(real.duplex.contentionSeconds(), 0.0);

    // CompressionFree keeps the seed model: no duplex breakdown.
    CdmaConfig free_config;
    free_config.transfer.duplex_mode = DuplexMode::Half;
    const CdmaEngine free_engine(free_config);
    const TransferPlan free_plan =
        free_engine.planFromRatio("map", raw, 2.5);
    EXPECT_EQ(free_plan.duplex.offload.shard_count, 0u);
    EXPECT_DOUBLE_EQ(free_plan.duplex.makespan_seconds, 0.0);
}

TEST(VdnnMemoryManager, DuplexScheduleInterleavesBothDirections)
{
    const NetworkDesc net = allNetworkDescs().front();
    const VdnnMemoryManager manager(net, 16);
    const auto &offloads = manager.offloadSchedule();
    const auto schedule = manager.duplexSchedule();
    ASSERT_EQ(schedule.size(), 2 * offloads.size());
    for (size_t k = 0; k < offloads.size(); ++k) {
        // Offloads in forward order...
        EXPECT_EQ(schedule[k].direction, TransferDirection::Offload);
        EXPECT_EQ(schedule[k].op.layer_index, offloads[k].layer_index);
        EXPECT_EQ(schedule[k].op.bytes, offloads[k].bytes);
        // ...then prefetches in backward order, one per offload.
        const auto &pre = schedule[offloads.size() + k];
        EXPECT_EQ(pre.direction, TransferDirection::Prefetch);
        EXPECT_EQ(pre.op.layer_index,
                  offloads[offloads.size() - 1 - k].layer_index);
    }
}

TEST(StepSimulator, HalfDuplexReportsContentionStall)
{
    const NetworkDesc net = allNetworkDescs().front();
    const VdnnMemoryManager manager(net, net.default_batch);
    PerfModel perf;

    // A link slow enough that the last layer's offload is guaranteed
    // to still be draining when its forward compute finishes: the
    // parked head prefetch then releases the boundary lookahead, and
    // already-resident maps race the tail offload on the link.
    CdmaConfig full_config;
    full_config.transfer.duplex_mode = DuplexMode::Full;
    full_config.gpu.pcie_effective_bandwidth = 2e9;
    const CdmaEngine full_engine(full_config);
    CdmaConfig half_config;
    half_config.transfer.duplex_mode = DuplexMode::Half;
    half_config.gpu.pcie_effective_bandwidth = 2e9;
    const CdmaEngine half_engine(half_config);

    const StepSimulator full_sim(manager, full_engine, perf,
                                 CudnnVersion::V5);
    const StepSimulator half_sim(manager, half_engine, perf,
                                 CudnnVersion::V5);

    const StepResult full = full_sim.run(StepMode::Vdnn);
    const StepResult half = half_sim.run(StepMode::Vdnn);

    // Independent directions never contend.
    EXPECT_DOUBLE_EQ(full.contentionStallFraction(), 0.0);
    EXPECT_DOUBLE_EQ(full.offload_contention_seconds, 0.0);

    // One shared link: the boundary race (tail offloads vs head
    // prefetches) must cost something, and the iteration cannot be
    // faster than with independent directions.
    EXPECT_GT(half.contentionStallFraction(), 0.0);
    EXPECT_GT(half.offload_contention_seconds +
                  half.prefetch_contention_seconds,
              0.0);
    EXPECT_GE(half.total_seconds, full.total_seconds - 1e-12);

    // Per-layer contention surfaces: some layer paid the race.
    double layer_contention = 0.0;
    bool saw_fraction = false;
    for (const auto &layer : half.layers) {
        layer_contention +=
            layer.offload_contention + layer.prefetch_contention;
        EXPECT_GE(layer.offload_contention, 0.0) << layer.label;
        EXPECT_GE(layer.prefetch_contention, 0.0) << layer.label;
        EXPECT_LE(layer.contentionStallFraction(), 1.0 + 1e-9)
            << layer.label;
        if (layer.contentionStallFraction() > 0.0)
            saw_fraction = true;
    }
    EXPECT_GT(layer_contention, 0.0);
    EXPECT_TRUE(saw_fraction);
    EXPECT_NEAR(layer_contention,
                half.offload_contention_seconds +
                    half.prefetch_contention_seconds,
                1e-9);
}

TEST(StepSimulator, DuplexInvariantsHoldAcrossModesAndArbiters)
{
    const NetworkDesc net = allNetworkDescs()[1];
    const VdnnMemoryManager manager(net, net.default_batch);
    PerfModel perf;
    const std::vector<double> ratios(net.layers.size(), 2.6);

    for (const DuplexMode mode : {DuplexMode::Full, DuplexMode::Half}) {
        for (const LinkArbiter arbiter :
             {LinkArbiter::RoundRobin, LinkArbiter::OffloadFirst,
              LinkArbiter::PrefetchFirst}) {
            CdmaConfig config;
            config.transfer.duplex_mode = mode;
            config.transfer.link_arbiter = arbiter;
            const CdmaEngine engine(config);
            const StepSimulator sim(manager, engine, perf,
                                    CudnnVersion::V5);
            const StepResult vdnn = sim.run(StepMode::Vdnn);
            const StepResult cdma = sim.run(StepMode::Cdma, ratios);
            const StepResult oracle = sim.run(StepMode::Oracle);
            // The paper's ordering relations survive the contended
            // timeline under every link configuration.
            EXPECT_LE(cdma.total_seconds, vdnn.total_seconds + 1e-12)
                << duplexModeName(mode) << "/"
                << linkArbiterName(arbiter);
            EXPECT_GE(cdma.total_seconds, oracle.total_seconds - 1e-12);
            EXPECT_NEAR(vdnn.total_seconds,
                        vdnn.forward_seconds + vdnn.backward_seconds,
                        1e-9 * vdnn.total_seconds);
            EXPECT_GE(vdnn.stall_seconds, -1e-12);
        }
    }
}

} // namespace
} // namespace cdma
