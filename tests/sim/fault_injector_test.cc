/**
 * @file
 * Tests for the seeded link fault injector: determinism (same seed ->
 * same damage sequence, reset() replays it exactly), structural
 * soundness of sampled outcomes (in-bounds strictly increasing flip
 * offsets, single-bit masks, truncation prefixes), empirical agreement
 * of the geometric-gap flip sampler with the configured rate, and the
 * analytic companions (failureProbability, expectedAttempts) against
 * both closed forms and Monte Carlo estimates.
 */

#include <bit>
#include <cmath>

#include <gtest/gtest.h>

#include "sim/fault_injector.hh"

namespace cdma::sim {
namespace {

bool
sameOutcome(const FaultOutcome &a, const FaultOutcome &b)
{
    return a.link_failed == b.link_failed && a.truncated == b.truncated &&
        a.truncate_to == b.truncate_to &&
        a.flip_offsets == b.flip_offsets && a.flip_masks == b.flip_masks;
}

TEST(FaultInjector, ZeroRatesAlwaysClean)
{
    FaultInjector injector{FaultConfig{}};
    for (int i = 0; i < 100; ++i) {
        const FaultOutcome outcome = injector.sample(1 << 20);
        EXPECT_TRUE(outcome.clean());
        EXPECT_FALSE(outcome.link_failed);
        EXPECT_FALSE(outcome.truncated);
        EXPECT_TRUE(outcome.flip_offsets.empty());
    }
    EXPECT_EQ(injector.crossingsSampled(), 100u);
    EXPECT_DOUBLE_EQ(injector.failureProbability(1 << 20), 0.0);
    EXPECT_DOUBLE_EQ(injector.expectedAttempts(1 << 20, 4), 1.0);
}

TEST(FaultInjector, SameSeedSameDamageSequence)
{
    FaultConfig config;
    config.bit_flip_rate_per_byte = 1e-4;
    config.truncate_rate = 0.05;
    config.link_failure_rate = 0.02;
    config.seed = 1234;

    FaultInjector a(config), b(config);
    for (int i = 0; i < 200; ++i) {
        const uint64_t bytes = 4096 + 977 * static_cast<uint64_t>(i);
        EXPECT_TRUE(sameOutcome(a.sample(bytes), b.sample(bytes))) << i;
    }
}

TEST(FaultInjector, ResetReplaysExactly)
{
    FaultConfig config;
    config.bit_flip_rate_per_byte = 5e-5;
    config.link_failure_rate = 0.01;
    FaultInjector injector(config);

    std::vector<FaultOutcome> first;
    for (int i = 0; i < 50; ++i)
        first.push_back(injector.sample(1 << 16));
    injector.reset();
    EXPECT_EQ(injector.crossingsSampled(), 0u);
    for (int i = 0; i < 50; ++i)
        EXPECT_TRUE(sameOutcome(injector.sample(1 << 16), first[i])) << i;
}

TEST(FaultInjector, OutcomesAreStructurallySound)
{
    FaultConfig config;
    config.bit_flip_rate_per_byte = 2e-4;
    config.truncate_rate = 0.2;
    config.link_failure_rate = 0.05;
    FaultInjector injector(config);

    const uint64_t bytes = 1 << 16;
    bool saw_flip = false, saw_truncate = false, saw_link = false;
    for (int i = 0; i < 2000; ++i) {
        const FaultOutcome outcome = injector.sample(bytes);
        if (outcome.link_failed) {
            // A lost crossing carries no other damage.
            saw_link = true;
            EXPECT_FALSE(outcome.truncated);
            EXPECT_TRUE(outcome.flip_offsets.empty());
            continue;
        }
        if (outcome.truncated) {
            saw_truncate = true;
            EXPECT_LT(outcome.truncate_to, bytes);
        } else {
            EXPECT_EQ(outcome.truncate_to, bytes);
        }
        ASSERT_EQ(outcome.flip_offsets.size(), outcome.flip_masks.size());
        EXPECT_LE(outcome.flip_offsets.size(),
                  config.max_flips_per_transfer);
        uint64_t prev = 0;
        bool have_prev = false;
        for (size_t k = 0; k < outcome.flip_offsets.size(); ++k) {
            saw_flip = true;
            // Flips land strictly increasing, inside the delivered
            // prefix, and each mask flips exactly one bit.
            EXPECT_LT(outcome.flip_offsets[k], outcome.truncate_to);
            if (have_prev)
                EXPECT_GT(outcome.flip_offsets[k], prev);
            prev = outcome.flip_offsets[k];
            have_prev = true;
            EXPECT_EQ(std::popcount(outcome.flip_masks[k]), 1);
        }
    }
    EXPECT_TRUE(saw_flip);
    EXPECT_TRUE(saw_truncate);
    EXPECT_TRUE(saw_link);
}

TEST(FaultInjector, FlipCountTracksConfiguredRate)
{
    FaultConfig config;
    config.bit_flip_rate_per_byte = 1e-4;
    FaultInjector injector(config);

    const uint64_t bytes = 1 << 18; // E[flips/crossing] ~ 26.2
    const int crossings = 400;
    uint64_t flips = 0;
    for (int i = 0; i < crossings; ++i)
        flips += injector.sample(bytes).flip_offsets.size();
    const double expected = config.bit_flip_rate_per_byte *
        static_cast<double>(bytes) * crossings;
    EXPECT_NEAR(static_cast<double>(flips), expected, 0.05 * expected);
}

TEST(FaultInjector, FailureProbabilityMatchesClosedFormAndMonteCarlo)
{
    FaultConfig config;
    config.bit_flip_rate_per_byte = 1e-5;
    config.truncate_rate = 0.03;
    config.link_failure_rate = 0.02;
    FaultInjector injector(config);

    // Closed form: 1 - (1-l)(1-t)(1-p)^n.
    const uint64_t bytes = 1 << 15;
    const double survive = (1.0 - config.link_failure_rate) *
        (1.0 - config.truncate_rate) *
        std::pow(1.0 - config.bit_flip_rate_per_byte,
                 static_cast<double>(bytes));
    // The injector may compose the factors in a different (equivalent)
    // order, so allow last-few-ulp drift on the 32K-byte power.
    const double q = injector.failureProbability(bytes);
    EXPECT_NEAR(q, 1.0 - survive, 1e-9);

    // Monotone in payload size: more bytes, more exposure.
    EXPECT_GT(injector.failureProbability(bytes * 16), q);
    EXPECT_LT(injector.failureProbability(bytes / 16), q);

    // Monte Carlo agreement of the sampler with its own analytics.
    const int crossings = 20000;
    int failed = 0;
    for (int i = 0; i < crossings; ++i)
        failed += injector.sample(bytes).clean() ? 0 : 1;
    const double empirical =
        static_cast<double>(failed) / static_cast<double>(crossings);
    EXPECT_NEAR(empirical, q, 0.02);
}

TEST(FaultInjector, ExpectedAttemptsIsCappedGeometricSum)
{
    FaultConfig config;
    config.link_failure_rate = 0.25; // payload-size-independent q
    const FaultInjector injector(config);
    const double q = injector.failureProbability(4096);
    EXPECT_DOUBLE_EQ(q, 0.25);

    // sum_{k=0}^{max-1} q^k, so capped below the uncapped 1/(1-q).
    EXPECT_DOUBLE_EQ(injector.expectedAttempts(4096, 1), 1.0);
    EXPECT_DOUBLE_EQ(injector.expectedAttempts(4096, 2), 1.0 + q);
    EXPECT_DOUBLE_EQ(injector.expectedAttempts(4096, 4),
                     1.0 + q + q * q + q * q * q);
    // At 64 terms the capped sum has converged to the uncapped limit
    // within double precision, so <=, and tightly so.
    EXPECT_LE(injector.expectedAttempts(4096, 64), 1.0 / (1.0 - q));
    EXPECT_NEAR(injector.expectedAttempts(4096, 64), 1.0 / (1.0 - q),
                1e-9);
}

} // namespace
} // namespace cdma::sim
