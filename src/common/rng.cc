#include "common/rng.hh"

#include <cmath>

namespace cdma {

namespace {

/** SplitMix64: expands a 64-bit seed into decorrelated state words. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
    // xoshiro requires a nonzero state; splitmix64 output of any seed is
    // astronomically unlikely to be all-zero, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t bound)
{
    // Rejection sampling to remove modulo bias.
    const uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::normal()
{
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    double u1, u2;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace cdma
