/**
 * @file
 * Adaptive codec policy over density-over-training schedules: for every
 * network, walk the paper's per-layer density trajectory (Figures 4-7,
 * dense early layers, U-shaped over training) through the cost model
 * the CodecPolicyEngine prices transfers with — compress time plus
 * contended-wire time — and compare the adaptive per-layer/per-
 * iteration choice (with its hysteresis) against every static codec
 * held fixed for the whole run.
 *
 * Acceptance, enforced with a nonzero exit:
 *  - adaptive total <= best static total on every network (the policy
 *    never loses to the knob it replaces);
 *  - on a dense-early schedule (density decaying 1.0 -> 0.2 over
 *    training) adaptive beats static ZVC by >= 5% — dense iterations
 *    ship raw instead of paying a compression pass that loses to the
 *    wire;
 *  - the selection itself (a real decide() over activation bytes,
 *    strided sampling included) costs < 1% of the modeled compress
 *    pass it steers.
 *
 * Run: ./build/bench/fig_policy_adaptive [--policy-smoke]
 * (--policy-smoke: one network, fewer snapshots — the CI bench-smoke
 * leg's shape; the acceptance checks all still run.)
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/harness.hh"
#include "common/rng.hh"
#include "compress/policy.hh"
#include "models/desc.hh"
#include "sparsity/schedule.hh"

using namespace cdma;
using bench::Table;

namespace {

/** ReLU-like fp32 words at the given density. */
std::vector<uint8_t>
makeInput(double density, size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> input(bytes, 0);
    const size_t words = bytes / 4;
    for (size_t i = 0; i < words; ++i) {
        if (density > 0.0 && rng.bernoulli(density)) {
            const float value =
                1.0f + static_cast<float>(std::abs(rng.normal()));
            std::memcpy(input.data() + i * 4, &value, 4);
        }
    }
    return input;
}

/** Sum of one static codec's modeled cost over the whole trajectory. */
double
staticTotal(const CodecPolicyEngine &oracle, Codec codec,
            const std::vector<uint64_t> &bytes,
            const std::vector<std::vector<double>> &densities)
{
    double total = 0.0;
    for (const auto &snapshot : densities) {
        for (size_t i = 0; i < bytes.size(); ++i)
            total += oracle.predictedSeconds(codec, bytes[i],
                                             snapshot[i]);
    }
    return total;
}

/**
 * Adaptive total: a stateful policy walks the snapshots in training
 * order, one decision per layer per snapshot, paying the cost of the
 * post-hysteresis active codec (not the unconstrained argmin).
 */
double
adaptiveTotal(CodecPolicyEngine &policy, const NetworkDesc &net,
              const std::vector<uint64_t> &bytes,
              const std::vector<std::vector<double>> &densities)
{
    double total = 0.0;
    for (const auto &snapshot : densities) {
        for (size_t i = 0; i < bytes.size(); ++i) {
            total += policy
                         .decideFromDensity(net.layers[i].name, bytes[i],
                                            snapshot[i])
                         .predicted_seconds;
        }
    }
    return total;
}

PolicyConfig
policyConfig()
{
    PolicyConfig config;
    // The wire a transfer actually sees mid-iteration: the half-duplex
    // share of the 12.8 GB/s effective link, where compression pays.
    config.wire_bandwidth = 6.4e9;
    return config;
}

} // namespace

int
main(int argc, char **argv)
{
    // --policy-smoke: one network, fewer snapshots — the CI bench-smoke
    // leg's shape. Every acceptance check still runs.
    const bool smoke =
        argc > 1 && std::strcmp(argv[1], "--policy-smoke") == 0;

    const auto all = allNetworkDescs();
    const std::vector<NetworkDesc> nets = smoke
        ? std::vector<NetworkDesc>{all[4]} // SqueezeNet
        : all;
    // One decision per layer per iteration, with density interpolated
    // continuously across training — the regime the hysteresis was
    // sized for. Collapsing training into a handful of snapshots would
    // make the K-iteration switch lag look like a third of the run.
    const size_t snapshots = smoke ? 48 : 160;

    bool ok = true;
    std::printf("== Adaptive codec policy vs static (cost model: "
                "compress + %.1f GB/s contended wire, %zu training "
                "iterations) ==\n",
                policyConfig().wire_bandwidth / 1e9, snapshots);
    Table table({"network", "raw s", "RL s", "ZV s", "ZL s",
                 "adaptive s", "best static", "adaptive win",
                 "switches"});
    for (const NetworkDesc &net : nets) {
        const DensitySchedule schedule(net);
        std::vector<uint64_t> bytes;
        for (const LayerDesc &layer : net.layers) {
            bytes.push_back(
                static_cast<uint64_t>(layer.bytesPerImage()) *
                static_cast<uint64_t>(net.default_batch));
        }
        std::vector<std::vector<double>> densities;
        for (size_t s = 0; s < snapshots; ++s) {
            const double t = snapshots > 1
                ? static_cast<double>(s) /
                    static_cast<double>(snapshots - 1)
                : 1.0;
            std::vector<double> row;
            for (size_t i = 0; i < net.layers.size(); ++i) {
                row.push_back(net.layers[i].relu_follows
                                  ? schedule.density(i, t)
                                  : 1.0);
            }
            densities.push_back(std::move(row));
        }

        const CodecPolicyEngine oracle(policyConfig());
        double best_static = std::numeric_limits<double>::infinity();
        Codec best_codec = Codec::Raw;
        std::vector<double> static_totals;
        for (const Codec codec : kAllCodecs) {
            const double total =
                staticTotal(oracle, codec, bytes, densities);
            static_totals.push_back(total);
            if (total < best_static) {
                best_static = total;
                best_codec = codec;
            }
        }
        CodecPolicyEngine policy(policyConfig());
        const double adaptive =
            adaptiveTotal(policy, net, bytes, densities);

        table.addRow({net.name, Table::num(static_totals[0], 2),
                      Table::num(static_totals[1], 2),
                      Table::num(static_totals[2], 2),
                      Table::num(static_totals[3], 2),
                      Table::num(adaptive, 2), codecName(best_codec),
                      Table::num(100.0 * (1.0 - adaptive / best_static),
                                 1) + "%",
                      Table::num(static_cast<double>(policy.switches()),
                                 0)});
        // The policy must never lose to the static knob it replaces
        // (equality at constant density; a small slack covers float
        // accumulation order, not a real loss).
        if (adaptive > best_static * (1.0 + 1e-9)) {
            std::fprintf(stderr,
                         "policy-adaptive: FAIL: %s adaptive %.4f s > "
                         "best static %.4f s (%s)\n",
                         net.name.c_str(), adaptive, best_static,
                         codecName(best_codec).c_str());
            ok = false;
        }
    }
    table.print();

    // Dense-early schedule: every layer starts fully dense and thins to
    // 20% by the end of training — the regime where static ZVC burns a
    // compression pass on incompressible bytes. The adaptive win here
    // is the headline number: >= 5% over static ZVC required.
    {
        const NetworkDesc &net = nets.front();
        std::vector<uint64_t> bytes;
        for (const LayerDesc &layer : net.layers) {
            bytes.push_back(
                static_cast<uint64_t>(layer.bytesPerImage()) *
                static_cast<uint64_t>(net.default_batch));
        }
        std::vector<std::vector<double>> densities;
        for (size_t s = 0; s < snapshots; ++s) {
            const double t = snapshots > 1
                ? static_cast<double>(s) /
                    static_cast<double>(snapshots - 1)
                : 1.0;
            densities.emplace_back(net.layers.size(), 1.0 - 0.8 * t);
        }
        const CodecPolicyEngine oracle(policyConfig());
        const double zvc =
            staticTotal(oracle, Codec::Zvc, bytes, densities);
        CodecPolicyEngine policy(policyConfig());
        const double adaptive =
            adaptiveTotal(policy, net, bytes, densities);
        const double win = 1.0 - adaptive / zvc;
        std::printf("dense-early schedule (%s, density 1.0 -> 0.2): "
                    "adaptive %.2f s vs static ZVC %.2f s "
                    "(%.1f%% win, %llu switches)\n",
                    net.name.c_str(), adaptive, zvc, 100.0 * win,
                    static_cast<unsigned long long>(policy.switches()));
        if (win < 0.05) {
            std::fprintf(stderr,
                         "policy-adaptive: FAIL: dense-early win %.1f%% "
                         "< 5%% over static ZVC\n", 100.0 * win);
            ok = false;
        }
    }

    // Selection overhead: a real decide() — strided density sample over
    // actual activation bytes plus the cost model — against the modeled
    // compress pass it steers. The sampler reads a few KB of a 4MB
    // buffer, so the budget (< 1%) has orders of magnitude of headroom;
    // this is the regression tripwire, not a tight bound.
    {
        const size_t bytes = 4 << 20;
        const auto input = makeInput(0.5, bytes, 42);
        CodecPolicyEngine policy(policyConfig());
        constexpr int kIterations = 200;
        const auto start = std::chrono::steady_clock::now();
        for (int i = 0; i < kIterations; ++i) {
            const PolicyDecision decision =
                policy.decide("overhead", input);
            // The decision feeds the accumulator so the loop cannot be
            // hoisted.
            if (decision.density < 0.0)
                return 2;
        }
        const double decide_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count() /
            kIterations;
        const double compress_seconds = static_cast<double>(bytes) /
            policy.compressThroughput(Codec::Zvc, 0.5);
        const double fraction = decide_seconds / compress_seconds;
        std::printf("selection overhead: %.1f us per decide vs %.1f us "
                    "modeled ZVC compress (%.2f%% of the compress "
                    "pass)\n",
                    decide_seconds * 1e6, compress_seconds * 1e6,
                    100.0 * fraction);
        if (fraction >= 0.01) {
            std::fprintf(stderr,
                         "policy-adaptive: FAIL: selection overhead "
                         "%.2f%% >= 1%% of the compress pass\n",
                         100.0 * fraction);
            ok = false;
        }
    }

    if (!ok)
        return 1;
    std::printf("policy-adaptive: OK\n");
    return 0;
}
