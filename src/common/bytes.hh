/**
 * @file
 * Byte-buffer type for the compression hot paths. std::vector<uint8_t>
 * value-initializes every element it creates, so resize-to-bound staging
 * (ZVC's single-pass window emit) and pre-sized decompression outputs
 * paid a redundant memset over bytes the codec overwrites immediately.
 * ByteVec is std::vector<uint8_t> with a default-init allocator: resize()
 * leaves new bytes indeterminate (default-initialization of a trivial
 * type is a no-op), while every other vector semantic — growth, copies,
 * iteration, insert — is unchanged.
 */

#ifndef CDMA_COMMON_BYTES_HH
#define CDMA_COMMON_BYTES_HH

#include <algorithm>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace cdma {

/**
 * Allocator adaptor that default-initializes instead of value-initializing
 * on construct-without-arguments. For trivially default-constructible
 * element types this turns vector::resize() growth into a no-op per
 * element; all other constructions (fill, copy, range insert) behave
 * exactly like the wrapped allocator.
 */
template <typename T, typename A = std::allocator<T>>
class DefaultInitAllocator : public A
{
    using traits = std::allocator_traits<A>;

  public:
    template <typename U>
    struct rebind {
        using other =
            DefaultInitAllocator<U,
                                 typename traits::template rebind_alloc<U>>;
    };

    using A::A;

    template <typename U>
    void construct(U *ptr) noexcept(
        std::is_nothrow_default_constructible_v<U>)
    {
        ::new (static_cast<void *>(ptr)) U;
    }

    template <typename U, typename... Args>
    void construct(U *ptr, Args &&...args)
    {
        traits::construct(static_cast<A &>(*this), ptr,
                          std::forward<Args>(args)...);
    }
};

/** Byte vector whose resize() leaves new bytes uninitialized. */
using ByteVec = std::vector<uint8_t, DefaultInitAllocator<uint8_t>>;

/** Content equality against a plain byte vector (test convenience). */
inline bool
operator==(const ByteVec &a, const std::vector<uint8_t> &b)
{
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

inline bool
operator==(const std::vector<uint8_t> &a, const ByteVec &b)
{
    return b == a;
}

} // namespace cdma

#endif // CDMA_COMMON_BYTES_HH
