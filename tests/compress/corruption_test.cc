/**
 * @file
 * Table-driven corruption and truncation suite over every codec and
 * every supported kernel backend. A decoder fed wire bytes must treat
 * the payload as hostile: any truncation point and any single-byte
 * corruption either decodes cleanly (a flip can land in literal bytes)
 * or returns a non-OK Status — never a crash, never a read outside the
 * payload span (the ASan CI leg enforces the memory half). The scalar
 * and AVX2 backends must agree on the Status code for every corruption,
 * so vectorizing a decoder can never widen what a bit flip can do.
 */

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/compressor.hh"
#include "compress/kernels/kernels.hh"

namespace cdma {
namespace {

/** ReLU-like fp32 words at the given density. */
std::vector<uint8_t>
makeInput(double density, size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> input(bytes, 0);
    const size_t words = bytes / 4;
    for (size_t i = 0; i < words; ++i) {
        if (density > 0.0 && rng.bernoulli(density)) {
            const float value =
                1.0f + static_cast<float>(std::abs(rng.normal()));
            std::memcpy(input.data() + i * 4, &value, 4);
        }
    }
    for (size_t i = words * 4; i < bytes; ++i)
        input[i] = static_cast<uint8_t>(1 + rng.uniformInt(255));
    return input;
}

/**
 * Decode one corrupted window on one backend. Returns the Status code,
 * with StatusCode::Ok meaning the decode accepted the payload (the
 * output may legitimately differ from the original — integrity is the
 * CRC layer's job, not the decoder's).
 */
StatusCode
decodeWindow(const Compressor &codec, std::span<const uint8_t> payload,
             uint64_t original_bytes)
{
    ByteVec out(original_bytes);
    const Status status =
        codec.decompressWindowInto(payload, original_bytes, out.data());
    return status.code();
}

class CorruptionSuite : public ::testing::TestWithParam<Algorithm>
{
};

TEST_P(CorruptionSuite, EveryTruncationPointFailsIdenticallyPerBackend)
{
    const Algorithm algorithm = GetParam();
    const uint64_t window = 4096;
    const auto input = makeInput(0.45, window, 1001);

    std::vector<const KernelOps *> backends = supportedKernels();
    ASSERT_FALSE(backends.empty());
    const auto reference = makeCompressor(algorithm, window, backends[0]);
    ByteVec payload;
    reference->compressWindowInto(input, payload);
    ASSERT_FALSE(payload.empty());

    for (size_t cut = 0; cut < payload.size(); ++cut) {
        const std::span<const uint8_t> truncated(payload.data(), cut);
        StatusCode first = StatusCode::Ok;
        for (size_t b = 0; b < backends.size(); ++b) {
            const auto codec =
                makeCompressor(algorithm, window, backends[b]);
            const StatusCode code =
                decodeWindow(*codec, truncated, window);
            // A shortened stream can never decode cleanly: the decoder
            // either runs out of bytes (Truncated) or trips over the
            // now-inconsistent structure (Corrupt).
            EXPECT_NE(code, StatusCode::Ok)
                << algorithmName(algorithm) << " cut=" << cut << " on "
                << backends[b]->name;
            if (b == 0)
                first = code;
            else
                EXPECT_EQ(code, first)
                    << algorithmName(algorithm) << " cut=" << cut
                    << ": " << backends[0]->name << " vs "
                    << backends[b]->name;
        }
    }
}

TEST_P(CorruptionSuite, EverySingleByteCorruptionAgreesAcrossBackends)
{
    const Algorithm algorithm = GetParam();
    const uint64_t window = 4096;
    const auto input = makeInput(0.45, window, 1002);

    std::vector<const KernelOps *> backends = supportedKernels();
    const auto reference = makeCompressor(algorithm, window, backends[0]);
    ByteVec payload;
    reference->compressWindowInto(input, payload);

    // Every byte position, a handful of masks each: flips in framing
    // fields produce Truncated/Corrupt, flips in literal payload decode
    // cleanly to different bytes — but every backend must agree.
    const uint8_t masks[] = {0x01, 0x80, 0xFF};
    for (size_t pos = 0; pos < payload.size(); ++pos) {
        for (const uint8_t mask : masks) {
            ByteVec corrupted = payload;
            corrupted[pos] ^= mask;
            StatusCode first = StatusCode::Ok;
            for (size_t b = 0; b < backends.size(); ++b) {
                const auto codec =
                    makeCompressor(algorithm, window, backends[b]);
                const StatusCode code =
                    decodeWindow(*codec, corrupted, window);
                if (b == 0)
                    first = code;
                else
                    EXPECT_EQ(code, first)
                        << algorithmName(algorithm) << " pos=" << pos
                        << " mask=" << int(mask) << ": "
                        << backends[0]->name << " vs "
                        << backends[b]->name;
            }
        }
    }
}

TEST_P(CorruptionSuite, TrailingGarbageIsRejected)
{
    const Algorithm algorithm = GetParam();
    const uint64_t window = 4096;
    const auto input = makeInput(0.45, window, 1003);
    for (const KernelOps *backend : supportedKernels()) {
        const auto codec = makeCompressor(algorithm, window, backend);
        ByteVec payload;
        codec->compressWindowInto(input, payload);
        payload.push_back(0xAB);
        EXPECT_NE(decodeWindow(*codec, payload, window), StatusCode::Ok)
            << algorithmName(algorithm) << " on " << backend->name;
    }
}

TEST_P(CorruptionSuite, CorruptedFullBufferReportsWindowContext)
{
    // The stitched-buffer path annotates the failing window: corrupt a
    // late window and the error message must carry the codec tag and a
    // window index, the locality a log reader needs.
    const Algorithm algorithm = GetParam();
    const auto input = makeInput(0.45, 6 * 4096 + 123, 1004);
    const auto codec = makeCompressor(algorithm);
    CompressedBuffer buffer = codec->compress(input);
    ASSERT_GE(buffer.window_sizes.size(), 2u);

    // Truncate the final window's payload by one byte.
    buffer.payload.pop_back();
    buffer.window_sizes.back() -= 1;
    const StatusOr<ByteVec> decoded = codec->decompress(buffer);
    ASSERT_FALSE(decoded.ok());
    EXPECT_NE(decoded.status().message().find("window"),
              std::string::npos)
        << decoded.status().toString();
}

TEST_P(CorruptionSuite, ZeroOriginalBytesRejectsNonEmptyPayload)
{
    const Algorithm algorithm = GetParam();
    for (const KernelOps *backend : supportedKernels()) {
        const auto codec = makeCompressor(algorithm, 4096, backend);
        const uint8_t junk[3] = {1, 2, 3};
        EXPECT_NE(decodeWindow(*codec, junk, 0), StatusCode::Ok)
            << algorithmName(algorithm) << " on " << backend->name;
    }
}

INSTANTIATE_TEST_SUITE_P(AllCodecs, CorruptionSuite,
                         ::testing::Values(Algorithm::Rle, Algorithm::Zvc,
                                           Algorithm::Zlib),
                         [](const auto &info) {
                             return algorithmName(info.param);
                         });

} // namespace
} // namespace cdma
