/**
 * @file
 * Figure 6 reproduction: per-layer activation density across training
 * for the remaining five networks (OverFeat, NiN, VGG, SqueezeNet,
 * GoogLeNet). Each network's table mirrors the corresponding subplot;
 * the Section IV-B observations (first layer ~50%, U-shaped trajectory,
 * deeper layers sparser, pooling densifies) should hold for all of them.
 */

#include <cstdio>

#include "common/harness.hh"
#include "common/stats.hh"

using namespace cdma;
using bench::Table;

int
main(int argc, char **argv)
{
    bench::ScaledRunConfig config;
    config.iterations = 250;
    config.snapshots = 8;
    bench::parseTrainArgs(argc, argv, config);

    const char *const networks[] = {"OverFeat", "NiN", "VGG",
                                    "SqueezeNet", "GoogLeNet"};
    Accumulator final_sparsity;

    for (const char *name : networks) {
        std::printf("== Figure 6 (%s): per-layer density over training "
                    "==\n", name);
        const auto run = bench::trainScaledNetwork(name, config);

        std::vector<std::string> headers = {"layer"};
        for (const auto &snap : run.snapshots)
            headers.push_back(Table::num(100.0 * snap.progress, 0) + "%");
        Table table(headers);

        const auto &first = run.snapshots.front().records;
        WeightedMean trained_density;
        for (size_t layer = 0; layer < first.size(); ++layer) {
            std::vector<std::string> row = {first[layer].label};
            for (const auto &snap : run.snapshots)
                row.push_back(
                    Table::num(snap.records[layer].density, 2));
            table.addRow(row);
            const auto &last = run.snapshots.back().records[layer];
            trained_density.add(last.density,
                                static_cast<double>(
                                    last.shape.bytes()));
        }
        table.print();
        const double sparsity = 1.0 - trained_density.mean();
        final_sparsity.add(sparsity);
        std::printf("trained network-wide sparsity: %.1f%%, "
                    "val accuracy: %.1f%%\n\n",
                    100.0 * sparsity, 100.0 * run.val_accuracy);
    }

    std::printf("five-network average trained sparsity: %.1f%% "
                "(paper, six networks incl. AlexNet over full training: "
                "~62%%)\n",
                100.0 * final_sparsity.mean());
    return 0;
}
