/**
 * @file
 * Tests for the adaptive codec policy: density sampling accuracy, the
 * cost model's closed form, hysteresis boundary behavior (a win exactly
 * at the margin qualifies; K-1 consecutive wins do not switch, the K-th
 * does; oscillating density never accumulates a streak), the
 * constant-density oracle property (the adaptive choice equals the
 * best static codec under the same cost model), and the observability
 * counters.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/policy.hh"
#include "obs/metrics.hh"

namespace cdma {
namespace {

/** ReLU-like fp32 words at the given density. */
std::vector<uint8_t>
makeInput(double density, size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> input(bytes, 0);
    const size_t words = bytes / 4;
    for (size_t i = 0; i < words; ++i) {
        if (density > 0.0 && rng.bernoulli(density)) {
            const float value =
                1.0f + static_cast<float>(std::abs(rng.normal()));
            std::memcpy(input.data() + i * 4, &value, 4);
        }
    }
    return input;
}

/**
 * A policy whose cost landscape the test fully controls: flat EWMA,
 * no DEFLATE candidate, and every queried density gets an exact
 * setCostPoint so interpolation never mixes in the seed curves.
 */
PolicyConfig
pinnedConfig(double margin, uint32_t hysteresis)
{
    PolicyConfig config;
    config.wire_bandwidth = 10.0e9;
    config.switch_margin = margin;
    config.hysteresis_iterations = hysteresis;
    config.ewma_alpha = 1.0; // no smoothing: the test drives density
    config.allow_zlib = false;
    return config;
}

constexpr uint64_t kBytes = 10'000'000'000ull; // 1.0 s raw at 10 GB/s

TEST(PolicySampling, StridedSampleMatchesKnownDensity)
{
    CodecPolicyEngine policy;
    // Exact pattern: the first quarter of every 4KB window nonzero.
    // (A pattern periodic at the sampler's word stride would alias;
    // a contiguous block per window is stride-proof.)
    std::vector<uint8_t> data(1 << 20, 0);
    const size_t window_words = policy.config().window_bytes / 4;
    for (size_t w = 0; w < data.size() / 4; ++w) {
        if (w % window_words < window_words / 4) {
            const float one = 1.0f;
            std::memcpy(data.data() + w * 4, &one, 4);
        }
    }
    EXPECT_NEAR(policy.sampleDensity(data), 0.25, 1e-9);

    // Random fills land within sampling tolerance of the target.
    for (const double density : {0.1, 0.5, 0.9}) {
        const auto input = makeInput(density, 1 << 22, 77);
        EXPECT_NEAR(policy.sampleDensity(input), density, 0.08)
            << "density " << density;
    }

    // Degenerate inputs.
    EXPECT_DOUBLE_EQ(policy.sampleDensity({}), 1.0);
    const std::vector<uint8_t> zeros(4096, 0);
    EXPECT_DOUBLE_EQ(policy.sampleDensity(zeros), 0.0);
}

TEST(PolicyCostModel, ClosedFormMatchesCurvePoints)
{
    CodecPolicyEngine policy(pinnedConfig(0.1, 1));
    policy.setCostPoint(Codec::Zvc, 0.5, 20.0e9, 2.0);
    // compress = bytes / 20 GB/s = 0.5 s; wire = (bytes / 2) / 10 GB/s
    // = 0.5 s.
    EXPECT_NEAR(policy.predictedSeconds(Codec::Zvc, kBytes, 0.5), 1.0,
                1e-9);
    // Raw: no compression pass, full bytes on the wire.
    EXPECT_NEAR(policy.predictedSeconds(Codec::Raw, kBytes, 0.5), 1.0,
                1e-9);
    EXPECT_TRUE(std::isinf(policy.compressThroughput(Codec::Raw, 0.5)));
    EXPECT_DOUBLE_EQ(policy.predictedRatio(Codec::Raw, 0.5), 1.0);
    // The modeled ratio never drops below the store-raw floor.
    policy.setCostPoint(Codec::Rle, 0.5, 1.0e9, 0.25);
    EXPECT_DOUBLE_EQ(policy.predictedRatio(Codec::Rle, 0.5), 1.0);
}

TEST(PolicyHysteresis, WinExactlyAtMarginQualifies)
{
    // Zvc active at cost 0.8 s; Rle challenger at 0.6 s. The win is
    // 1 - 0.6/0.8 = 0.25 == margin, which must count (inclusive test).
    CodecPolicyEngine policy(pinnedConfig(0.25, 2));
    policy.setCostPoint(Codec::Zvc, 0.5, 1.0e12, 2.0);  // ~0.51 s
    policy.setCostPoint(Codec::Rle, 0.5, 1.0e9, 100.0); // ~10 s
    const PolicyDecision first =
        policy.decideFromDensity("L", kBytes, 0.5);
    EXPECT_EQ(first.codec, Codec::Zvc);
    EXPECT_FALSE(first.switched);

    // Reprice: Zvc 0.3 + 0.5 = 0.8 s, Rle 0.1 + 0.5 = 0.6 s.
    policy.setCostPoint(Codec::Zvc, 0.5, kBytes / 0.3, 2.0);
    policy.setCostPoint(Codec::Rle, 0.5, kBytes / 0.1, 2.0);
    const PolicyDecision second =
        policy.decideFromDensity("L", kBytes, 0.5);
    EXPECT_EQ(second.codec, Codec::Zvc) << "streak 1 of 2: no switch";
    EXPECT_FALSE(second.switched);
    const PolicyDecision third =
        policy.decideFromDensity("L", kBytes, 0.5);
    EXPECT_EQ(third.codec, Codec::Rle) << "switch fires on the K-th";
    EXPECT_TRUE(third.switched);
    EXPECT_EQ(policy.switches(), 1u);
}

TEST(PolicyHysteresis, WinBelowMarginNeverSwitches)
{
    CodecPolicyEngine policy(pinnedConfig(0.25, 1));
    policy.setCostPoint(Codec::Zvc, 0.5, 1.0e12, 2.0);
    policy.setCostPoint(Codec::Rle, 0.5, 1.0e9, 100.0);
    ASSERT_EQ(policy.decideFromDensity("L", kBytes, 0.5).codec,
              Codec::Zvc);
    // Zvc 0.8 s vs Rle 0.604 s: win 0.245 < 0.25 margin.
    policy.setCostPoint(Codec::Zvc, 0.5, kBytes / 0.3, 2.0);
    policy.setCostPoint(Codec::Rle, 0.5, kBytes / 0.104, 2.0);
    for (int i = 0; i < 10; ++i) {
        const PolicyDecision d =
            policy.decideFromDensity("L", kBytes, 0.5);
        EXPECT_EQ(d.codec, Codec::Zvc) << "iteration " << i;
        EXPECT_FALSE(d.switched);
    }
    EXPECT_EQ(policy.switches(), 0u);
}

TEST(PolicyHysteresis, KMinusOneWinsDoNotSwitch)
{
    for (const uint32_t k : {2u, 3u, 5u}) {
        CodecPolicyEngine policy(pinnedConfig(0.10, k));
        policy.setCostPoint(Codec::Zvc, 0.5, 1.0e12, 2.0);
        policy.setCostPoint(Codec::Rle, 0.5, 1.0e9, 100.0);
        ASSERT_EQ(policy.decideFromDensity("L", kBytes, 0.5).codec,
                  Codec::Zvc);
        // Make Rle clearly better from now on.
        policy.setCostPoint(Codec::Rle, 0.5, 1.0e12, 8.0); // ~0.135 s
        for (uint32_t i = 0; i + 1 < k; ++i) {
            EXPECT_EQ(policy.decideFromDensity("L", kBytes, 0.5).codec,
                      Codec::Zvc)
                << "K=" << k << " win " << (i + 1);
        }
        const PolicyDecision switched =
            policy.decideFromDensity("L", kBytes, 0.5);
        EXPECT_EQ(switched.codec, Codec::Rle) << "K=" << k;
        EXPECT_TRUE(switched.switched);
        EXPECT_EQ(policy.switches(), 1u);
    }
}

TEST(PolicyHysteresis, OscillatingDensityNeverAccumulatesAStreak)
{
    CodecPolicyEngine policy(pinnedConfig(0.01, 2));
    // Zvc wins at density 0.2, Rle wins at 0.9; the costs are pinned at
    // both densities so interpolation never blends the seed curves in.
    policy.setCostPoint(Codec::Zvc, 0.2, 1.0e12, 4.0); // 0.26 s
    policy.setCostPoint(Codec::Rle, 0.2, 1.0e12, 2.0); // 0.51 s
    policy.setCostPoint(Codec::Zvc, 0.9, 1.0e9, 1.0);  // 11 s
    policy.setCostPoint(Codec::Rle, 0.9, 1.0e12, 2.0); // 0.51 s
    ASSERT_EQ(policy.decideFromDensity("L", kBytes, 0.2).codec,
              Codec::Zvc);
    for (int i = 0; i < 8; ++i) {
        // Each challenger win is immediately voided by the density
        // flipping back: the streak resets before reaching K=2.
        const PolicyDecision high =
            policy.decideFromDensity("L", kBytes, 0.9);
        EXPECT_EQ(high.codec, Codec::Zvc) << "iteration " << i;
        const PolicyDecision low =
            policy.decideFromDensity("L", kBytes, 0.2);
        EXPECT_EQ(low.codec, Codec::Zvc) << "iteration " << i;
    }
    EXPECT_EQ(policy.switches(), 0u);
}

TEST(PolicyOracle, ConstantDensityMatchesBestStatic)
{
    // At a constant density the adaptive choice must equal the best
    // static codec under the same cost model, for every density and
    // from the first decision on (no warm-up iterations spent worse).
    for (const double density : {0.05, 0.2, 0.4, 0.6, 0.8, 1.0}) {
        PolicyConfig config;
        config.wire_bandwidth = 6.4e9; // contended wire: mixed choices
        CodecPolicyEngine policy(config);
        Codec best = Codec::Raw;
        double best_seconds = std::numeric_limits<double>::infinity();
        for (const Codec codec : kAllCodecs) {
            const double seconds =
                policy.predictedSeconds(codec, kBytes, density);
            if (seconds < best_seconds) {
                best_seconds = seconds;
                best = codec;
            }
        }
        for (int i = 0; i < 10; ++i) {
            const PolicyDecision d =
                policy.decideFromDensity("L", kBytes, density);
            EXPECT_EQ(d.codec, best)
                << "density " << density << " iteration " << i;
            EXPECT_NEAR(d.predicted_seconds, best_seconds, 1e-12);
        }
        EXPECT_EQ(policy.switches(), 0u) << "density " << density;
    }
}

TEST(PolicyOracle, ContendedWirePicksRawForDenseAndZvcForSparse)
{
    // The seed curves put ZVC software compression (~12 GB/s) below
    // the contended wire share, so dense layers must ship raw while
    // sparse layers compress — the crossover the adaptive win rests on.
    PolicyConfig config;
    config.wire_bandwidth = 6.4e9;
    CodecPolicyEngine policy(config);
    EXPECT_EQ(policy.decideFromDensity("dense", kBytes, 1.0).codec,
              Codec::Raw);
    EXPECT_EQ(policy.decideFromDensity("sparse", kBytes, 0.3).codec,
              Codec::Zvc);
}

TEST(PolicyState, LayersAreIndependentAndResetForgets)
{
    CodecPolicyEngine policy(pinnedConfig(0.10, 3));
    policy.setCostPoint(Codec::Zvc, 0.5, 1.0e12, 2.0);
    policy.setCostPoint(Codec::Rle, 0.5, 1.0e9, 100.0);
    ASSERT_EQ(policy.decideFromDensity("A", kBytes, 0.5).codec,
              Codec::Zvc);
    policy.setCostPoint(Codec::Rle, 0.5, 1.0e12, 8.0);
    // Layer B first sees the repriced landscape: it adopts Rle outright
    // (first sight is not a switch); layer A's streak is untouched.
    const PolicyDecision b = policy.decideFromDensity("B", kBytes, 0.5);
    EXPECT_EQ(b.codec, Codec::Rle);
    EXPECT_FALSE(b.switched);
    EXPECT_EQ(policy.switches(), 0u);
    EXPECT_EQ(policy.decideFromDensity("A", kBytes, 0.5).codec,
              Codec::Zvc);

    policy.reset();
    // Layer A re-initializes and adopts the current argmin directly.
    EXPECT_EQ(policy.decideFromDensity("A", kBytes, 0.5).codec,
              Codec::Rle);
}

TEST(PolicyObserve, RecordsErrorAndRefinesTheCurve)
{
    obs::MetricsRegistry metrics;
    PolicyConfig config = pinnedConfig(0.10, 1);
    config.metrics = &metrics;
    CodecPolicyEngine policy(config);
    policy.setCostPoint(Codec::Zvc, 0.5, 1.0e12, 2.0);
    const PolicyDecision d = policy.decideFromDensity("L", kBytes, 0.5);
    ASSERT_EQ(d.codec, Codec::Zvc);

    const double before = policy.compressThroughput(Codec::Zvc, 0.5);
    // The codec actually ran at half the modeled throughput and a
    // better ratio: the curve point must move toward both.
    policy.observe("L", d, kBytes, 4.0,
                   static_cast<double>(kBytes) / 0.5e12);
    const double after = policy.compressThroughput(Codec::Zvc, 0.5);
    EXPECT_LT(after, before);
    EXPECT_GT(policy.predictedRatio(Codec::Zvc, 0.5), 2.0);
    EXPECT_EQ(metrics.histogram("policy.predicted_error").count(), 1u);
    EXPECT_EQ(metrics.counter("policy.decisions").value(), 1u);
}

TEST(PolicyDecide, SampledBufferTracksEwmaAcrossIterations)
{
    PolicyConfig config;
    config.wire_bandwidth = 6.4e9;
    config.ewma_alpha = 0.5;
    CodecPolicyEngine policy(config);
    const auto dense = makeInput(0.95, 1 << 20, 11);
    const auto sparse = makeInput(0.10, 1 << 20, 12);
    const PolicyDecision first = policy.decide("L", dense);
    EXPECT_NEAR(first.density, first.sampled_density, 1e-12)
        << "first sight seeds the EWMA with the raw sample";
    const PolicyDecision second = policy.decide("L", sparse);
    // EWMA(0.5) of ~0.95 then ~0.10 lands near 0.52.
    EXPECT_GT(second.density, second.sampled_density);
    EXPECT_NEAR(second.density,
                0.5 * first.density + 0.5 * second.sampled_density,
                1e-12);
}

} // namespace
} // namespace cdma
