/**
 * @file
 * Tests for the benchmark-harness library itself: the table printer and
 * the synthetic ratio measurement that Figures 11-13 are built on. The
 * harness is result-bearing code, so its reductions (byte-weighted
 * averages, time-averaged per-layer ratios) are pinned here.
 */

#include <gtest/gtest.h>

#include "common/harness.hh"

namespace cdma {
namespace {

using bench::measureNetworkRatios;
using bench::measureTimeAveragedRatios;
using bench::RatioMeasureConfig;
using bench::Table;

TEST(HarnessTable, NumFormatsPrecision)
{
    EXPECT_EQ(Table::num(2.61828, 2), "2.62");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(HarnessTableDeathTest, RowWidthMismatchPanics)
{
    Table table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "cells");
}

TEST(HarnessRatios, LayerCountMatchesDescriptor)
{
    const NetworkDesc net = alexNetDesc();
    RatioMeasureConfig config;
    config.max_elements = 1 << 16; // keep the test fast
    const auto result = measureNetworkRatios(net, Algorithm::Zvc,
                                             Layout::NCHW, config);
    EXPECT_EQ(result.layers.size(), net.layers.size());
    EXPECT_GE(result.max, result.average);
}

TEST(HarnessRatios, DenseRowsPinnedToOne)
{
    const NetworkDesc net = alexNetDesc();
    RatioMeasureConfig config;
    config.max_elements = 1 << 16;
    const auto result = measureNetworkRatios(net, Algorithm::Zvc,
                                             Layout::NCHW, config);
    for (size_t i = 0; i < net.layers.size(); ++i) {
        if (!net.layers[i].relu_follows) {
            EXPECT_DOUBLE_EQ(result.layers[i].ratio, 1.0)
                << net.layers[i].name;
        }
    }
}

TEST(HarnessRatios, ZvcLayoutInvarianceAtHarnessLevel)
{
    const NetworkDesc net = ninDesc();
    RatioMeasureConfig config;
    config.max_elements = 1 << 16;
    const auto nchw = measureNetworkRatios(net, Algorithm::Zvc,
                                           Layout::NCHW, config);
    const auto nhwc = measureNetworkRatios(net, Algorithm::Zvc,
                                           Layout::NHWC, config);
    EXPECT_NEAR(nchw.average, nhwc.average, 0.02 * nchw.average);
}

TEST(HarnessRatios, TroughRatiosExceedTrainedRatios)
{
    const NetworkDesc net = vggDesc();
    RatioMeasureConfig trained;
    trained.max_elements = 1 << 16;
    trained.training_progress = 1.0;
    RatioMeasureConfig trough = trained;
    trough.training_progress = 0.35;
    const auto at_end = measureNetworkRatios(net, Algorithm::Zvc,
                                             Layout::NCHW, trained);
    const auto at_trough = measureNetworkRatios(net, Algorithm::Zvc,
                                                Layout::NCHW, trough);
    EXPECT_GT(at_trough.average, at_end.average);
}

TEST(HarnessRatios, TimeAveragedBracketsCheckpoints)
{
    const NetworkDesc net = squeezeNetDesc();
    RatioMeasureConfig config;
    config.max_elements = 1 << 16;
    const auto averaged = measureTimeAveragedRatios(
        net, Algorithm::Zvc, Layout::NCHW, {0.35, 1.0}, config);
    RatioMeasureConfig trough = config;
    trough.training_progress = 0.35;
    RatioMeasureConfig end = config;
    end.training_progress = 1.0;
    const auto lo =
        measureNetworkRatios(net, Algorithm::Zvc, Layout::NCHW, end);
    const auto hi =
        measureNetworkRatios(net, Algorithm::Zvc, Layout::NCHW, trough);
    EXPECT_GE(averaged.average, lo.average - 1e-9);
    EXPECT_LE(averaged.average, hi.average + 1e-9);
    EXPECT_GE(averaged.max, hi.max - 1e-9);
}

} // namespace
} // namespace cdma
