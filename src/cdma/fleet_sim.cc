#include "cdma/fleet_sim.hh"

#include <algorithm>

#include "common/logging.hh"
#include "compress/policy.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/event_queue.hh"

namespace cdma {

FleetTopology
buildFleetTopology(const FleetSpec &spec)
{
    CDMA_ASSERT(spec.gpu_count >= 1, "a fleet needs at least one GPU");
    CDMA_ASSERT(spec.gpu_link_bandwidth > 0.0 &&
                    spec.uplink_bandwidth > 0.0 &&
                    spec.ssd_bandwidth > 0.0,
                "fleet links need positive bandwidths");

    FleetTopology fleet;
    auto graph = std::make_shared<Topology>();

    fleet.switch_node = graph->addNode(NodeKind::PcieSwitch, "switch0");
    fleet.host = graph->addNode(NodeKind::HostDram, "host");
    fleet.ssd = graph->addNode(NodeKind::NvmeSsd, "ssd0");

    LinkProps leg;
    leg.bytes_per_second = spec.gpu_link_bandwidth;
    leg.mode = spec.duplex_mode;
    leg.arbiter = spec.arbiter;
    fleet.gpus.reserve(spec.gpu_count);
    fleet.gpu_links.reserve(spec.gpu_count);
    for (unsigned g = 0; g < spec.gpu_count; ++g) {
        const NodeId gpu = graph->addNode(
            NodeKind::Gpu, "gpu" + std::to_string(g));
        fleet.gpus.push_back(gpu);
        fleet.gpu_links.push_back(graph->connect(
            gpu, fleet.switch_node, "pcie.gpu" + std::to_string(g),
            leg));
    }

    // The shared uplink: every GPU's offload route crosses it in
    // Direction::Out (the switch is endpoint `a`), so this one edge is
    // where the fleet's head-of-line blocking happens.
    LinkProps uplink = leg;
    uplink.bytes_per_second = spec.uplink_bandwidth;
    fleet.uplink = graph->connect(fleet.switch_node, fleet.host,
                                  "pcie.uplink", uplink);

    LinkProps ssd = leg;
    ssd.bytes_per_second = spec.ssd_bandwidth;
    fleet.ssd_link =
        graph->connect(fleet.host, fleet.ssd, "nvme0", ssd);

    if (spec.nvlink_bandwidth > 0.0 && spec.gpu_count >= 2) {
        LinkProps nvlink = leg;
        nvlink.bytes_per_second = spec.nvlink_bandwidth;
        // Ring over the GPUs (a single pair gets one edge, not two
        // parallel ones).
        const unsigned edges =
            spec.gpu_count == 2 ? 1 : spec.gpu_count;
        for (unsigned g = 0; g < edges; ++g) {
            const unsigned peer = (g + 1) % spec.gpu_count;
            fleet.nvlinks.push_back(graph->connect(
                fleet.gpus[g], fleet.gpus[peer],
                "nvlink" + std::to_string(g), nvlink));
        }
    }

    fleet.graph = std::move(graph);
    return fleet;
}

FleetSimulator::FleetSimulator(const FleetSpec &spec)
    : spec_(spec), topology_(buildFleetTopology(spec))
{
}

FleetResult
FleetSimulator::run() const
{
    const Topology &graph = *topology_.graph;
    EventQueue queue;
    LinkNetwork network(queue, graph);
    network.setTrace(spec_.trace);

    // With a policy attached, each direction's ratio is what the cost
    // model predicts its chosen codec achieves at the configured
    // density; ranks are identical, so one decision covers the fleet.
    double offload_ratio = spec_.offload_ratio;
    double prefetch_ratio = spec_.prefetch_ratio;
    if (spec_.policy != nullptr) {
        if (spec_.offload_density >= 0.0) {
            offload_ratio = std::max(
                1.0, spec_.policy
                         ->decideFromDensity("fleet.offload",
                                             spec_.offload_raw_bytes,
                                             spec_.offload_density)
                         .predicted_ratio);
        }
        if (spec_.prefetch_density >= 0.0) {
            prefetch_ratio = std::max(
                1.0, spec_.policy
                         ->decideFromDensity("fleet.prefetch",
                                             spec_.prefetch_raw_bytes,
                                             spec_.prefetch_density)
                         .predicted_ratio);
        }
    }

    // Identical data-parallel ranks: every GPU pushes the same shard
    // trains, so any asymmetry in the results is pure queueing.
    const std::vector<ShardTransfer> offload_train =
        TransferEngine::uniformShardTrain(spec_.offload_raw_bytes,
                                          offload_ratio,
                                          spec_.shard_raw_bytes);
    const std::vector<ShardTransfer> prefetch_train =
        TransferEngine::uniformShardTrain(spec_.prefetch_raw_bytes,
                                          prefetch_ratio,
                                          spec_.shard_raw_bytes);

    std::vector<std::unique_ptr<DuplexPipeline>> pipelines;
    pipelines.reserve(topology_.gpus.size());
    for (size_t g = 0; g < topology_.gpus.size(); ++g) {
        pipelines.push_back(std::make_unique<DuplexPipeline>(
            network, graph.route(topology_.gpus[g], topology_.host),
            offload_train, prefetch_train, spec_.pipeline,
            static_cast<unsigned>(g)));
        // One trace process per GPU ("gpu0", "gpu1", ...), one thread
        // track per pipeline stage.
        pipelines.back()->setObservers(spec_.trace, spec_.metrics,
                                       graph.node(topology_.gpus[g]).name);
    }
    for (auto &pipeline : pipelines)
        pipeline->start();
    queue.run();
    // Ledger for the conservation check: the channels' own per-edge
    // byte accounting, written after the queue drained.
    network.recordTraceTotals();

    FleetResult result;
    result.gpus.reserve(pipelines.size());
    for (auto &pipeline : pipelines) {
        CDMA_ASSERT(pipeline->done(), "fleet pipeline did not drain");
        FleetGpuResult gpu;
        gpu.timing = pipeline->collect();
        gpu.finish_seconds = pipeline->lastDrain();
        gpu.uplink_wait_seconds = pipeline->crossSourceWaitSeconds();
        gpu.contention_stall_fraction = gpu.finish_seconds > 0.0
            ? gpu.uplink_wait_seconds / gpu.finish_seconds
            : 0.0;
        result.makespan_seconds =
            std::max(result.makespan_seconds, gpu.finish_seconds);
        result.mean_contention_stall_fraction +=
            gpu.contention_stall_fraction;
        if (spec_.metrics != nullptr) {
            spec_.metrics->histogram("fleet.gpu.finish_seconds")
                .record(gpu.finish_seconds);
            spec_.metrics->histogram("fleet.gpu.uplink_wait_seconds")
                .record(gpu.uplink_wait_seconds);
        }
        result.gpus.push_back(std::move(gpu));
    }
    if (!result.gpus.empty())
        result.mean_contention_stall_fraction /=
            static_cast<double>(result.gpus.size());

    result.edges.reserve(graph.linkCount());
    for (LinkId l = 0; l < graph.linkCount(); ++l) {
        FleetEdgeStats edge;
        edge.link = l;
        edge.name = graph.link(l).name;
        edge.out_bytes =
            network.edgeBytes(l, DuplexChannel::Direction::Out);
        edge.in_bytes =
            network.edgeBytes(l, DuplexChannel::Direction::In);
        edge.utilization = network.utilization(l);
        result.edges.push_back(std::move(edge));
    }
    result.uplink_utilization =
        result.edges[topology_.uplink].utilization;
    return result;
}

} // namespace cdma
