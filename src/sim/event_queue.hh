/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue with
 * deterministic tie-breaking (FIFO among simultaneous events), the
 * backbone of the trace-driven GPU memory-system simulator.
 */

#ifndef CDMA_SIM_EVENT_QUEUE_HH
#define CDMA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace cdma {

/** Simulated time in seconds. */
using SimTime = double;

/** Discrete-event queue. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Schedule @p callback at absolute time @p when (>= now). */
    void scheduleAt(SimTime when, Callback callback);

    /** Schedule @p callback @p delay seconds from now. */
    void scheduleAfter(SimTime delay, Callback callback);

    /** Number of pending events. */
    size_t pending() const { return events_.size(); }

    /**
     * Run until the queue drains (or @p max_events fire — a runaway
     * guard). Returns the number of events executed.
     */
    uint64_t run(uint64_t max_events = UINT64_MAX);

    /** Drop all pending events and reset the clock to zero. */
    void reset();

  private:
    struct Event {
        SimTime when;
        uint64_t sequence; // FIFO tie-break
        Callback callback;
    };
    struct Later {
        bool operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.sequence > b.sequence;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> events_;
    SimTime now_ = 0.0;
    uint64_t next_sequence_ = 0;
};

} // namespace cdma

#endif // CDMA_SIM_EVENT_QUEUE_HH
