/**
 * @file
 * Timeline tracing for the DES and kernel layers: a TraceRecorder that
 * captures span/instant/counter events on named tracks and exports them
 * as Chrome trace-event JSON, loadable in Perfetto or chrome://tracing.
 *
 * Track model
 * -----------
 * Chrome's trace viewer groups events by (pid, tid). We map each
 * logical *process* (a GPU pipeline, the edge set of the topology
 * graph, the spill arena) to a pid and each *thread* within it (a
 * pipeline stage, one direction of one edge) to a tid; counter tracks
 * ("C" events) hang off a pid and are keyed by name. Metadata events
 * give every pid/tid its human-readable label, so a trace opens with
 * stable, self-describing track names.
 *
 * Determinism
 * -----------
 * Everything the simulators feed the recorder comes off a deterministic
 * event queue, and serialization uses fixed-precision formatting and a
 * stable sort — so the exported JSON is byte-identical across runs of
 * the same seed. Tests assert on that property directly.
 *
 * Cost model
 * ----------
 * A null recorder is the off switch: every CDMA_TRACE_* macro expands
 * to a null check, so argument expressions (string building, arithmetic)
 * are not evaluated and nothing allocates when tracing is disabled.
 * Compiling with -DCDMA_TRACE_ENABLED=0 removes even the null check.
 */

#ifndef CDMA_OBS_TRACE_HH
#define CDMA_OBS_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace cdma::obs {

/**
 * One argument value attached to a trace event. Holds an unsigned
 * integer, a double, or a string; serialized into the event's "args"
 * object.
 */
class TraceValue
{
  public:
    enum class Kind { U64, F64, Str };

    /** Integral payloads (shard indices, byte counts, attempt counts). */
    template <typename T,
              typename = std::enable_if_t<std::is_integral_v<T>>>
    TraceValue(T value) : kind_(Kind::U64), u64_(static_cast<uint64_t>(value))
    {
    }
    TraceValue(double value) : kind_(Kind::F64), f64_(value) {}
    TraceValue(const char *value) : kind_(Kind::Str), str_(value) {}
    TraceValue(std::string value) : kind_(Kind::Str), str_(std::move(value)) {}

    Kind kind() const { return kind_; }
    uint64_t u64() const { return u64_; }
    double f64() const { return f64_; }
    const std::string &str() const { return str_; }

  private:
    Kind kind_;
    uint64_t u64_ = 0;
    double f64_ = 0.0;
    std::string str_;
};

/** Ordered key/value arguments for one event. */
using TraceArgs = std::vector<std::pair<std::string, TraceValue>>;

/** Handle to a registered (process, thread) or counter track. */
using TrackId = uint32_t;

/**
 * Records structured timeline events and exports Chrome trace-event
 * JSON. All times are in seconds (the DES unit); export converts to the
 * trace format's microseconds. Not thread-safe: the simulators emit
 * events from the single DES thread.
 */
class TraceRecorder
{
  public:
    /** Event phases, mirroring the trace-event format's "ph" field. */
    enum class Phase { Span, Instant, Counter };

    /** One recorded event (exposed for in-process assertions). */
    struct Event {
        Phase phase;
        TrackId track;
        std::string name;
        double begin_s;   ///< Span begin / instant time / counter time.
        double end_s;     ///< Span end; unused otherwise.
        double value;     ///< Counter value; unused otherwise.
        TraceArgs args;
    };

    /** Registered track metadata (exposed for in-process assertions). */
    struct Track {
        std::string process;
        std::string thread;  ///< Counter name for counter tracks.
        uint32_t pid;
        uint32_t tid;        ///< 0 for counter tracks.
        bool is_counter;
    };

    /**
     * Register (or look up) the track for @p thread within @p process.
     * Idempotent: the same pair always returns the same id.
     */
    TrackId track(const std::string &process, const std::string &thread);

    /**
     * Register (or look up) the counter track @p name within
     * @p process. Counter samples plot as a filled area chart.
     */
    TrackId counterTrack(const std::string &process,
                         const std::string &name);

    /** Record a [begin, end] span named @p name on @p track. */
    void span(TrackId track, std::string name, double begin_s,
              double end_s, TraceArgs args = {});

    /** Record a zero-duration marker on @p track. */
    void instant(TrackId track, std::string name, double at_s,
                 TraceArgs args = {});

    /** Record a counter sample on a counterTrack(). */
    void counter(TrackId track, double at_s, double value);

    /**
     * Monotonic pseudo-clock for subsystems with no DES timeline of
     * their own (the spill arena mutates under wall-clock call order).
     * Each call advances by one microsecond.
     */
    double tick() { return static_cast<double>(++seq_) * 1e-6; }

    /**
     * Record a named total in the trace's otherData ledger — e.g. the
     * link layer's own per-edge byte accounting, so a validator can
     * check the spans conserve bytes against an independent source.
     */
    void setTotal(const std::string &key, uint64_t value);

    /** All recorded events, in emission order. */
    const std::vector<Event> &events() const { return events_; }
    /** Metadata for @p track. */
    const Track &trackInfo(TrackId track) const { return tracks_.at(track); }
    /** Number of recorded events (cheap zero-overhead assertion). */
    size_t eventCount() const { return events_.size(); }

    /**
     * Serialize to Chrome trace-event JSON: metadata events first, then
     * all events stable-sorted by timestamp. Deterministic byte-for-byte
     * given the same recorded sequence.
     */
    std::string toJson() const;

    /** Write toJson() to @p path; fatal() on I/O failure. */
    void writeFileOrDie(const std::string &path) const;

  private:
    std::vector<Track> tracks_;
    std::map<std::pair<std::string, std::string>, TrackId> track_index_;
    std::map<std::string, uint32_t> pids_;
    std::vector<Event> events_;
    std::map<std::string, uint64_t> totals_;
    uint64_t seq_ = 0;
};

/**
 * Strip a `--name=value` argument from argv (mutating argc/argv the way
 * getopt does) and return the value, or "" when absent. Shared by the
 * examples and benches that grew --trace-out / --metrics-out flags.
 */
std::string extractFlag(int &argc, char **argv, const std::string &name);

/**
 * Tracing macro layer. Call sites pass a `TraceRecorder *` that may be
 * null; the macros skip evaluation of every other argument when it is,
 * and compile away entirely under -DCDMA_TRACE_ENABLED=0. Braced
 * TraceArgs initializers must be parenthesized at the call site:
 * `CDMA_TRACE_SPAN(rec, t, "x", a, b, (TraceArgs{{"k", v}}))`.
 */
#ifndef CDMA_TRACE_ENABLED
#define CDMA_TRACE_ENABLED 1
#endif

#if CDMA_TRACE_ENABLED
#define CDMA_TRACE_SPAN(rec, track, name, begin_s, end_s, ...)             \
    do {                                                                   \
        if ((rec) != nullptr)                                              \
            (rec)->span((track), (name), (begin_s),                        \
                        (end_s)__VA_OPT__(, ) __VA_ARGS__);                \
    } while (0)
#define CDMA_TRACE_INSTANT(rec, track, name, at_s, ...)                    \
    do {                                                                   \
        if ((rec) != nullptr)                                              \
            (rec)->instant((track), (name),                                \
                           (at_s)__VA_OPT__(, ) __VA_ARGS__);              \
    } while (0)
#define CDMA_TRACE_COUNTER(rec, track, at_s, value)                        \
    do {                                                                   \
        if ((rec) != nullptr)                                              \
            (rec)->counter((track), (at_s), (value));                      \
    } while (0)
#else
#define CDMA_TRACE_SPAN(rec, track, name, begin_s, end_s, ...) ((void)0)
#define CDMA_TRACE_INSTANT(rec, track, name, at_s, ...) ((void)0)
#define CDMA_TRACE_COUNTER(rec, track, at_s, value) ((void)0)
#endif

} // namespace cdma::obs

#endif // CDMA_OBS_TRACE_HH
