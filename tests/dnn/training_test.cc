/**
 * @file
 * Integration tests: end-to-end SGD training on the synthetic dataset
 * must actually learn (accuracy well above chance) and must reproduce the
 * qualitative sparsity dynamics of Section IV — the density drop at the
 * onset of training and ReLU-induced sparsity.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "data/synthetic.hh"
#include "dnn/trainer.hh"
#include "models/scaled.hh"

namespace cdma {
namespace {

TEST(Training, TinyNetLearnsAboveChance)
{
    Rng rng(1);
    Network net = buildTinyNet(rng);
    SyntheticDataset dataset;
    TrainConfig config;
    config.iterations = 150;
    config.batch_size = 16;
    config.snapshot_every = 50;
    Trainer trainer(net, dataset, config);
    trainer.run();
    const double accuracy = trainer.evaluate(6);
    // Chance is 0.1 on ten classes.
    EXPECT_GT(accuracy, 0.35);
}

TEST(Training, LossDecreases)
{
    Rng rng(2);
    Network net = buildTinyNet(rng);
    SyntheticDataset dataset;
    TrainConfig config;
    config.iterations = 120;
    config.batch_size = 16;
    config.snapshot_every = 20;
    Trainer trainer(net, dataset, config);
    const auto snapshots = trainer.run();
    ASSERT_GE(snapshots.size(), 3u);
    // Compare first snapshot loss against the mean of the last two.
    const double early = snapshots.front().loss;
    const double late = (snapshots[snapshots.size() - 1].loss +
                         snapshots[snapshots.size() - 2].loss) / 2.0;
    EXPECT_LT(late, early);
}

TEST(Training, SnapshotsCarryDensityRecords)
{
    Rng rng(3);
    Network net = buildTinyNet(rng);
    SyntheticDataset dataset;
    TrainConfig config;
    config.iterations = 30;
    config.batch_size = 8;
    config.snapshot_every = 10;
    Trainer trainer(net, dataset, config);
    const auto snapshots = trainer.run();
    for (const auto &snap : snapshots) {
        ASSERT_FALSE(snap.records.empty());
        for (const auto &record : snap.records) {
            EXPECT_GE(record.density, 0.0);
            EXPECT_LE(record.density, 1.0);
        }
    }
    // Final snapshot is at progress 1.
    EXPECT_DOUBLE_EQ(snapshots.back().progress, 1.0);
}

TEST(Training, ReluLayersExhibitSparsity)
{
    Rng rng(4);
    Network net = buildTinyNet(rng);
    SyntheticDataset dataset;
    TrainConfig config;
    config.iterations = 60;
    config.batch_size = 16;
    config.snapshot_every = 60;
    Trainer trainer(net, dataset, config);
    const auto snapshots = trainer.run();
    const auto &records = snapshots.back().records;
    bool any_sparse = false;
    for (const auto &record : records) {
        if (record.relu_sparse && record.density < 0.8)
            any_sparse = true;
    }
    EXPECT_TRUE(any_sparse)
        << "no ReLU-fed layer shows sparsity after training";
}

TEST(Training, LearningRateScheduleApplied)
{
    // Indirect check: training with an absurdly high constant LR diverges
    // (loss explodes), while the decayed schedule keeps it finite.
    Rng rng(5);
    Network net = buildTinyNet(rng);
    SyntheticDataset dataset;
    TrainConfig config;
    config.iterations = 80;
    config.batch_size = 8;
    config.sgd.learning_rate = 0.01f;
    config.lr_drop_points = {0.25, 0.5};
    config.snapshot_every = 20;
    Trainer trainer(net, dataset, config);
    const auto snapshots = trainer.run();
    for (const auto &snap : snapshots)
        EXPECT_TRUE(std::isfinite(snap.loss));
}

TEST(Training, EvaluateUsesHeldOutStream)
{
    Rng rng(6);
    Network net = buildTinyNet(rng);
    SyntheticDataset dataset;
    TrainConfig config;
    config.iterations = 10;
    config.batch_size = 8;
    Trainer trainer(net, dataset, config);
    trainer.run();
    const double a = trainer.evaluate(2);
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
}

} // namespace
} // namespace cdma
