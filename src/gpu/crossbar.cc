#include "gpu/crossbar.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cdma {

std::string
placementName(CompressionPlacement placement)
{
    switch (placement) {
      case CompressionPlacement::MemoryController:
        return "memory-controller (cDMA)";
      case CompressionPlacement::DmaEngine:
        return "DMA-engine (strawman)";
    }
    panic("unreachable placement %d", static_cast<int>(placement));
}

CrossbarModel::CrossbarModel(const GpuSpec &gpu) : gpu_(gpu)
{
}

CrossbarDemand
CrossbarModel::demand(CompressionPlacement placement,
                      const std::vector<CrossbarTransfer> &mix) const
{
    CrossbarDemand result;
    const double pcie = gpu_.pcie_bandwidth;

    for (const auto &transfer : mix) {
        double instantaneous;
        uint64_t bytes;
        if (placement == CompressionPlacement::MemoryController) {
            // Compressed data crosses the crossbar; saturating PCIe needs
            // exactly PCIe-rate crossbar bandwidth regardless of ratio.
            instantaneous = pcie;
            bytes = static_cast<uint64_t>(
                static_cast<double>(transfer.raw_bytes) /
                std::max(1.0, transfer.ratio));
        } else {
            // Raw data crosses the crossbar and must arrive fast enough
            // that its compressed form saturates PCIe.
            instantaneous = std::max(1.0, transfer.ratio) * pcie;
            bytes = transfer.raw_bytes;
        }
        result.peak_bandwidth =
            std::max(result.peak_bandwidth, instantaneous);
        result.total_bytes += bytes;
    }
    result.overprovision_factor =
        pcie > 0.0 ? result.peak_bandwidth / pcie : 0.0;
    return result;
}

} // namespace cdma
