#include "compress/huffman.hh"

#include <algorithm>
#include <array>
#include <numeric>
#include <queue>
#include <tuple>

#include "common/logging.hh"

namespace cdma {

namespace {

/** Internal tree node used only while deriving code lengths. */
struct TreeNode {
    uint64_t freq;
    int left = -1;   // child node index, or -1 for a leaf
    int right = -1;
    int symbol = -1; // leaf symbol, or -1 for internal
};

/** Heap entry ordered by (freq, tie) for deterministic trees. */
struct HeapEntry {
    uint64_t freq;
    int tie;
    int node;
    bool operator>(const HeapEntry &other) const
    {
        return std::tie(freq, tie) > std::tie(other.freq, other.tie);
    }
};

void
assignDepths(const std::vector<TreeNode> &nodes, int root,
             std::vector<uint8_t> &lengths)
{
    // Iterative DFS; depth of each leaf is its code length.
    std::vector<std::pair<int, int>> stack = {{root, 0}};
    while (!stack.empty()) {
        auto [node, depth] = stack.back();
        stack.pop_back();
        const TreeNode &n = nodes[static_cast<size_t>(node)];
        if (n.symbol >= 0) {
            lengths[static_cast<size_t>(n.symbol)] =
                static_cast<uint8_t>(std::max(depth, 1));
        } else {
            stack.emplace_back(n.left, depth + 1);
            stack.emplace_back(n.right, depth + 1);
        }
    }
}

} // namespace

std::vector<uint8_t>
buildCodeLengths(const std::vector<uint64_t> &freqs, int max_length)
{
    std::vector<uint8_t> lengths;
    buildCodeLengthsInto(freqs, max_length, lengths);
    return lengths;
}

void
buildCodeLengthsInto(const std::vector<uint64_t> &freqs, int max_length,
                     std::vector<uint8_t> &lengths)
{
    CDMA_ASSERT(max_length >= 1 && max_length <= 31,
                "unsupported max code length %d", max_length);
    lengths.assign(freqs.size(), 0);

    std::vector<TreeNode> nodes;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>> heap;
    int tie = 0;
    for (size_t symbol = 0; symbol < freqs.size(); ++symbol) {
        if (freqs[symbol] == 0)
            continue;
        nodes.push_back({freqs[symbol], -1, -1, static_cast<int>(symbol)});
        heap.push({freqs[symbol], tie++,
                   static_cast<int>(nodes.size()) - 1});
    }

    if (nodes.empty())
        return;
    if (nodes.size() == 1) {
        lengths[static_cast<size_t>(nodes[0].symbol)] = 1;
        return;
    }

    while (heap.size() > 1) {
        HeapEntry a = heap.top();
        heap.pop();
        HeapEntry b = heap.top();
        heap.pop();
        nodes.push_back({a.freq + b.freq, a.node, b.node, -1});
        heap.push({a.freq + b.freq, tie++,
                   static_cast<int>(nodes.size()) - 1});
    }
    assignDepths(nodes, heap.top().node, lengths);

    // Length-limit: clamp over-long codes, then restore the Kraft
    // inequality by deepening the shallowest codes until the code space
    // fits in max_length bits.
    bool clamped = false;
    for (auto &len : lengths) {
        if (len > max_length) {
            len = static_cast<uint8_t>(max_length);
            clamped = true;
        }
    }
    if (clamped) {
        const uint64_t budget = 1ull << max_length;
        auto kraft = [&]() {
            uint64_t k = 0;
            for (uint8_t len : lengths) {
                if (len)
                    k += 1ull << (max_length - len);
            }
            return k;
        };
        uint64_t k = kraft();
        while (k > budget) {
            // Deepen the symbol with the shortest code (< max_length);
            // each step frees the largest chunk of code space.
            size_t best = lengths.size();
            for (size_t i = 0; i < lengths.size(); ++i) {
                if (lengths[i] == 0 || lengths[i] >= max_length)
                    continue;
                if (best == lengths.size() || lengths[i] < lengths[best])
                    best = i;
            }
            CDMA_ASSERT(best < lengths.size(),
                        "cannot satisfy Kraft inequality at length %d",
                        max_length);
            k -= 1ull << (max_length - lengths[best] - 1);
            ++lengths[best];
        }
    }
}

HuffmanEncoder::HuffmanEncoder(const std::vector<uint8_t> &lengths)
{
    rebuild(lengths);
}

void
HuffmanEncoder::rebuild(const std::vector<uint8_t> &lengths)
{
    // assign() reuses the tables' capacity, so rebuilding for the same
    // alphabet (the per-window DEFLATE loop) allocates nothing; the
    // per-length counters are fixed-size locals (lengths are <= 31).
    lengths_.assign(lengths.begin(), lengths.end());
    codes_.assign(lengths.size(), 0);

    int max_length = 0;
    for (uint8_t len : lengths_)
        max_length = std::max<int>(max_length, len);
    if (max_length == 0)
        return;
    CDMA_ASSERT(max_length <= 31, "code length %d out of range",
                max_length);

    std::array<uint32_t, 32> bl_count{};
    for (uint8_t len : lengths_) {
        if (len)
            ++bl_count[len];
    }

    std::array<uint32_t, 32> next_code{};
    uint32_t code = 0;
    for (int bits = 1; bits <= max_length; ++bits) {
        code = (code + bl_count[static_cast<size_t>(bits) - 1]) << 1;
        next_code[static_cast<size_t>(bits)] = code;
    }

    for (size_t symbol = 0; symbol < lengths_.size(); ++symbol) {
        if (lengths_[symbol])
            codes_[symbol] = next_code[lengths_[symbol]]++;
    }
}

void
HuffmanEncoder::encode(BitWriter &writer, int symbol) const
{
    const auto index = static_cast<size_t>(symbol);
    CDMA_ASSERT(index < lengths_.size() && lengths_[index] > 0,
                "encoding symbol %d with no assigned code", symbol);
    const int len = lengths_[index];
    const uint32_t code = codes_[index];
    // Canonical codes compare MSB-first during decode, so emit from the
    // top bit down.
    for (int i = len - 1; i >= 0; --i)
        writer.put((code >> i) & 1, 1);
}

HuffmanDecoder::HuffmanDecoder(const std::vector<uint8_t> &lengths)
{
    rebuild(lengths);
}

void
HuffmanDecoder::rebuild(const std::vector<uint8_t> &lengths)
{
    // assign() reuses the tables' capacity, so rebuilding for the same
    // alphabet (the per-window DEFLATE decode loop) allocates nothing;
    // the canonical-order cursors are fixed-size locals (lengths are
    // <= 31, mirroring the encoder's rebuild()).
    max_length_ = 0;
    for (uint8_t len : lengths)
        max_length_ = std::max<int>(max_length_, len);
    CDMA_ASSERT(max_length_ <= 31, "code length %d out of range",
                max_length_);
    count_.assign(static_cast<size_t>(max_length_) + 1, 0);
    for (uint8_t len : lengths) {
        if (len)
            ++count_[len];
    }
    // Symbols sorted by (length, symbol value): canonical order.
    std::array<int, 33> cursor{};
    int coded = 0;
    for (int len = 1; len <= max_length_; ++len) {
        cursor[static_cast<size_t>(len)] = coded;
        coded += count_[static_cast<size_t>(len)];
    }
    symbols_.assign(static_cast<size_t>(coded), 0);
    for (size_t symbol = 0; symbol < lengths.size(); ++symbol) {
        const uint8_t len = lengths[symbol];
        if (len) {
            symbols_[static_cast<size_t>(cursor[len]++)] =
                static_cast<int>(symbol);
        }
    }
}

int
HuffmanDecoder::decode(BitReader &reader) const
{
    // Canonical decode (cf. puff.c): walk lengths from 1 upward, tracking
    // the first code and symbol-table index of each length.
    int code = 0;
    int first = 0;
    int index = 0;
    for (int len = 1; len <= max_length_; ++len) {
        code |= static_cast<int>(reader.getBit());
        const int count = count_[static_cast<size_t>(len)];
        if (code - first < count)
            return symbols_[static_cast<size_t>(index + (code - first))];
        index += count;
        first = (first + count) << 1;
        code <<= 1;
    }
    // No code of any permitted length matched: the stream is corrupt (a
    // flipped bit can manufacture exactly this). Recoverable — the
    // caller owns the locality (codec, window, offset) and reports it.
    return kInvalidSymbol;
}

} // namespace cdma
