/**
 * @file
 * Analysis helpers over activation byte streams: zero/run statistics and
 * per-window compressibility profiles. These quantify the structure the
 * paper shows visually in Figure 5 (clustered zeros) and explain *why*
 * each algorithm achieves its Figure 11 ratio — RLE's fate is decided by
 * the run-length distribution, ZVC's only by the zero fraction.
 */

#ifndef CDMA_COMPRESS_ANALYSIS_HH
#define CDMA_COMPRESS_ANALYSIS_HH

#include <cstdint>
#include <span>
#include <vector>

#include "compress/compressor.hh"

namespace cdma {

/** Word-level zero/run statistics of a buffer. */
struct RunStats {
    uint64_t total_words = 0;
    uint64_t zero_words = 0;
    uint64_t zero_runs = 0;     ///< maximal runs of consecutive zero words
    uint64_t longest_zero_run = 0;
    double mean_zero_run = 0.0; ///< zero_words / zero_runs

    /** Zero fraction (1 - activation density). */
    double zeroFraction() const
    {
        return total_words
            ? static_cast<double>(zero_words) /
                static_cast<double>(total_words)
            : 0.0;
    }

    /**
     * Clustering index: mean zero-run length divided by the expected
     * run length of an i.i.d. stream with the same zero fraction
     * (1/(1-p)). 1.0 = unclustered; Figure 5-style activations score
     * well above 1.
     */
    double clusteringIndex() const;
};

/** Compute word-level run statistics over a raw byte stream. */
RunStats analyzeRuns(std::span<const uint8_t> bytes);

/** Distribution of per-window compressed sizes for one algorithm. */
struct WindowProfile {
    std::vector<uint32_t> window_bytes; ///< compressed size per window
    uint64_t raw_window_bytes = 0;      ///< configured window size
    double mean_ratio = 1.0;            ///< mean per-window ratio
    double min_ratio = 1.0;
    double max_ratio = 1.0;
};

/** Profile @p algorithm over @p bytes window by window. */
WindowProfile profileWindows(Algorithm algorithm,
                             std::span<const uint8_t> bytes,
                             uint64_t window_bytes = 4096);

} // namespace cdma

#endif // CDMA_COMPRESS_ANALYSIS_HH
