/**
 * @file
 * Section IX discussion: future CPU-GPU interconnects. Sweeps the
 * host-link bandwidth from PCIe gen3 (12.8 GB/s achieved) through a
 * multi-GPU NVLINK share (10-20 GB/s per GPU) up to a full NVLINK pipe
 * (80 GB/s) and reports vDNN overhead and cDMA-ZV speedup at each point.
 * The paper argues cDMA stays relevant because per-GPU shares of NVLINK
 * land right back in the PCIe regime — the sweep shows exactly where the
 * benefit fades.
 */

#include <cstdio>
#include <cstring>

#include "common/harness.hh"
#include "common/stats.hh"
#include "perf/step_sim.hh"

using namespace cdma;
using bench::Table;

int
main(int argc, char **argv)
{
    // --duplex-smoke: skip the measured-ratio sweep and run only the
    // duplex sweep on one network at a fixed ratio — the tiny shape the
    // CI bench-smoke leg drives to keep the duplex families honest
    // without paying for six networks of synthetic activations.
    const bool smoke =
        argc > 1 && std::strcmp(argv[1], "--duplex-smoke") == 0;

    std::vector<NetworkDesc> nets = smoke
        ? std::vector<NetworkDesc>{allNetworkDescs()[4]} // SqueezeNet
        : allNetworkDescs();
    std::vector<std::vector<double>> ratios;
    if (smoke) {
        ratios.emplace_back(nets[0].layers.size(), 2.6);
    } else {
        std::printf("== Ablation: CPU-GPU link bandwidth (cuDNN v5, "
                    "cDMA-ZV) ==\n");
        // Measure per-network ZVC ratios once (link-independent).
        for (const auto &net : nets) {
            const auto measured = bench::measureTimeAveragedRatios(
                net, Algorithm::Zvc, Layout::NCHW);
            std::vector<double> r;
            for (const auto &layer : measured.layers)
                r.push_back(layer.ratio);
            ratios.push_back(std::move(r));
        }
    }

    PerfModel perf;
    if (!smoke) {
        Table table({"link GB/s", "avg vDNN loss", "avg cDMA speedup",
                     "worst-net speedup"});
        for (double gbps : {8.0, 12.8, 16.0, 20.0, 40.0, 80.0}) {
            Accumulator loss, speedup;
            double worst = 0.0;
            for (size_t n = 0; n < nets.size(); ++n) {
                VdnnMemoryManager manager(nets[n],
                                          nets[n].default_batch);
                CdmaConfig config;
                config.gpu.pcie_bandwidth = gbps * 1e9;
                config.gpu.pcie_effective_bandwidth = gbps * 1e9;
                CdmaEngine engine(config);
                StepSimulator sim(manager, engine, perf,
                                  CudnnVersion::V5);
                const StepResult oracle = sim.run(StepMode::Oracle);
                const StepResult vdnn = sim.run(StepMode::Vdnn);
                const StepResult cdma =
                    sim.run(StepMode::Cdma, ratios[n]);
                loss.add(1.0 -
                         oracle.total_seconds / vdnn.total_seconds);
                const double s = cdma.speedupOver(vdnn);
                speedup.add(s);
                worst = std::max(worst, s);
            }
            table.addRow({
                Table::num(gbps, 1),
                Table::num(100.0 * loss.mean(), 1) + "%",
                Table::num(100.0 * (speedup.mean() - 1.0), 1) + "%",
                Table::num(100.0 * (worst - 1.0), 1) + "%",
            });
        }
        table.print();
        std::printf("\n(10-20 GB/s = NVLINK shared across 4-8 GPUs: "
                    "still firmly in cDMA territory; the benefit fades "
                    "only at a dedicated 80 GB/s pipe)\n");
    }

    // Duplex sweep: the same iteration with the offload and prefetch
    // directions racing on ONE link (half duplex) vs independent
    // directed sub-channels (full duplex), across link bandwidths. The
    // contention stall is the time transfers waited while the link
    // served the opposing direction — concentrated at the
    // forward/backward boundary, where the tail offload races the
    // boundary-lookahead prefetches; slower links widen that window.
    std::printf("\n== Ablation: duplex mode x link bandwidth "
                "(cDMA-ZV%s) ==\n", smoke ? ", smoke shape" : "");
    Table duplex_table({"link GB/s", "duplex", "avg cDMA speedup",
                        "iter vs full", "contention stall",
                        "worst layer"});
    double total_contention_fraction = 0.0;
    for (double gbps : {4.0, 8.0, 12.8, 16.0, 20.0}) {
        std::vector<double> full_times(nets.size(), 0.0);
        for (const DuplexMode mode :
             {DuplexMode::Full, DuplexMode::Half}) {
            Accumulator speedup, stall_fraction;
            double iter_ratio = 0.0;
            double worst_layer_fraction = 0.0;
            std::string worst_layer = "-";
            for (size_t n = 0; n < nets.size(); ++n) {
                VdnnMemoryManager manager(nets[n],
                                          nets[n].default_batch);
                CdmaConfig config;
                config.gpu.pcie_bandwidth = gbps * 1e9;
                config.gpu.pcie_effective_bandwidth = gbps * 1e9;
                config.transfer.duplex_mode = mode;
                CdmaEngine engine(config);
                StepSimulator sim(manager, engine, perf,
                                  CudnnVersion::V5);
                const StepResult vdnn = sim.run(StepMode::Vdnn);
                const StepResult cdma =
                    sim.run(StepMode::Cdma, ratios[n]);
                speedup.add(cdma.speedupOver(vdnn));
                stall_fraction.add(cdma.contentionStallFraction());
                if (mode == DuplexMode::Half)
                    total_contention_fraction +=
                        cdma.contentionStallFraction();
                for (const auto &layer : cdma.layers) {
                    if (layer.contentionStallFraction() >
                        worst_layer_fraction) {
                        worst_layer_fraction =
                            layer.contentionStallFraction();
                        worst_layer = nets[n].name + "/" + layer.label;
                    }
                }
                if (mode == DuplexMode::Full)
                    full_times[n] = cdma.total_seconds;
                else if (full_times[n] > 0.0)
                    iter_ratio += cdma.total_seconds / full_times[n];
            }
            duplex_table.addRow({
                Table::num(gbps, 1),
                duplexModeName(mode),
                Table::num(100.0 * (speedup.mean() - 1.0), 1) + "%",
                mode == DuplexMode::Full
                    ? "1.000x"
                    : Table::num(iter_ratio /
                                     static_cast<double>(nets.size()),
                                 3) + "x",
                Table::num(100.0 * stall_fraction.mean(), 3) + "%",
                worst_layer_fraction > 0.0
                    ? worst_layer + " (" +
                        Table::num(100.0 * worst_layer_fraction, 1) +
                        "%)"
                    : "-",
            });
        }
    }
    duplex_table.print();
    std::printf("\nfull duplex never contends (independent directed "
                "sub-channels); under half duplex the boundary race "
                "grows as the link slows and transfers outlive their "
                "layers' compute.\n");
    if (smoke && total_contention_fraction <= 0.0) {
        // The CI smoke leg keys on this: a contended half-duplex run
        // that reports zero contention means the duplex DES silently
        // degenerated to independent directions.
        std::fprintf(stderr, "duplex-smoke: FAIL: half-duplex sweep "
                             "reported zero contention\n");
        return 1;
    }
    return 0;
}
