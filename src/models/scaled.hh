/**
 * @file
 * Scaled-down, trainable variants of the paper's six networks. Full
 * ImageNet training is days of GPU time; these variants keep each
 * network's architectural signature (AlexNet's conv/LRN/pool prologue and
 * big FC head, NiN's 1x1 cccp stacks and global pooling, VGG's uniform
 * 3x3 blocks, SqueezeNet's fire modules, GoogLeNet's inception modules,
 * OverFeat's wide convs) at 32x32/10-class scale, so an SGD run finishes
 * in seconds while producing the same sparsity *dynamics* the paper
 * documents in Figures 4-7.
 */

#ifndef CDMA_MODELS_SCALED_HH
#define CDMA_MODELS_SCALED_HH

#include <string>

#include "common/rng.hh"
#include "dnn/network.hh"

namespace cdma {

/** Scaled AlexNet: conv/pool prologue, three 3x3 convs, FC head. */
Network buildScaledAlexNet(Rng &rng, int64_t classes = 10);

/** Scaled OverFeat: wide convolutions, late pooling, FC head. */
Network buildScaledOverFeat(Rng &rng, int64_t classes = 10);

/** Scaled NiN: conv + two 1x1 cccp layers per block, global avg pool. */
Network buildScaledNiN(Rng &rng, int64_t classes = 10);

/** Scaled VGG: uniform 3x3 conv pairs with 2x2 pooling. */
Network buildScaledVGG(Rng &rng, int64_t classes = 10);

/** Scaled SqueezeNet: conv prologue and three fire modules. */
Network buildScaledSqueezeNet(Rng &rng, int64_t classes = 10);

/** Scaled GoogLeNet: conv prologue and two inception modules. */
Network buildScaledGoogLeNet(Rng &rng, int64_t classes = 10);

/** Minimal conv/relu/pool/fc net for fast unit tests. */
Network buildTinyNet(Rng &rng, int64_t classes = 10);

/** Build a scaled network by its paper name ("AlexNet", "VGG", ...). */
Network buildScaledByName(const std::string &name, Rng &rng,
                          int64_t classes = 10);

} // namespace cdma

#endif // CDMA_MODELS_SCALED_HH
