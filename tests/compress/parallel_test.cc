/**
 * @file
 * Equivalence tests for the zero-allocation streaming core and the
 * parallel window fan-out: on every algorithm, density, size and lane
 * count, the batched compress(), an independently-stitched per-window
 * reference and ParallelCompressor must produce byte-identical
 * CompressedBuffers and lossless round trips.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <tuple>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/deflate.hh"
#include "compress/parallel.hh"
#include "compress/rle.hh"
#include "compress/zvc.hh"

namespace cdma {
namespace {

/** ReLU-like fp32 words at the given density, with a raw-byte tail. */
std::vector<uint8_t>
makeInput(double density, size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> input(bytes, 0);
    const size_t words = bytes / 4;
    for (size_t i = 0; i < words; ++i) {
        if (density > 0.0 && rng.bernoulli(density)) {
            const float value =
                1.0f + static_cast<float>(std::abs(rng.normal()));
            std::memcpy(input.data() + i * 4, &value, 4);
        }
    }
    // Sub-word tail bytes (if any) get non-zero values so the raw-tail
    // path is exercised.
    for (size_t i = words * 4; i < bytes; ++i)
        input[i] = static_cast<uint8_t>(1 + rng.uniformInt(255));
    return input;
}

void
expectIdentical(const CompressedBuffer &a, const CompressedBuffer &b,
                const char *what)
{
    EXPECT_EQ(a.original_bytes, b.original_bytes) << what;
    EXPECT_EQ(a.window_bytes, b.window_bytes) << what;
    EXPECT_EQ(a.window_sizes, b.window_sizes) << what;
    EXPECT_EQ(a.payload, b.payload) << what;
}

/**
 * The seed implementation of compress(): each window compressed into
 * its own fresh vector, concatenated by copy. Reimplemented here over
 * the streaming core (the legacy return-by-value virtuals it once
 * exercised are gone) so the equivalence check still pins the batched
 * compress() against an independently-stitched per-window reference.
 */
CompressedBuffer
perWindowCompress(const Compressor &codec, std::span<const uint8_t> input)
{
    CompressedBuffer out;
    out.original_bytes = input.size();
    out.window_bytes = codec.windowBytes();
    for (uint64_t offset = 0; offset < input.size();
         offset += codec.windowBytes()) {
        const uint64_t len = std::min<uint64_t>(
            codec.windowBytes(), input.size() - offset);
        ByteVec window;
        codec.compressWindowInto(input.subspan(offset, len), window);
        out.window_sizes.push_back(
            static_cast<uint32_t>(window.size()));
        out.payload.insert(out.payload.end(), window.begin(),
                           window.end());
    }
    return out;
}

using EquivalenceParam =
    std::tuple<Algorithm, double /*density*/, size_t /*size*/>;

class StreamingEquivalence
    : public ::testing::TestWithParam<EquivalenceParam>
{
};

TEST_P(StreamingEquivalence, IntoApiMatchesLegacyPath)
{
    const auto [algorithm, density, size] = GetParam();
    const auto input = makeInput(density, size, 99 + size);

    const auto streaming = makeCompressor(algorithm)->compress(input);

    const CompressedBuffer legacy =
        perWindowCompress(*makeCompressor(algorithm), input);
    expectIdentical(streaming, legacy, "streaming vs legacy");
    EXPECT_EQ(makeCompressor(algorithm)->decompress(streaming).value(), input);
}

TEST_P(StreamingEquivalence, ParallelMatchesSerialAcrossLaneCounts)
{
    const auto [algorithm, density, size] = GetParam();
    const auto input = makeInput(density, size, 7 + size);
    const auto serial = makeCompressor(algorithm)->compress(input);

    for (unsigned lanes : {1u, 2u, 8u}) {
        const ParallelCompressor parallel(
            algorithm, Compressor::kDefaultWindowBytes, lanes);
        const auto compressed = parallel.compress(input);
        expectIdentical(serial, compressed, "parallel vs serial");
        EXPECT_EQ(parallel.decompress(compressed).value(), input);
        // Parallel decompression of the serial buffer (and vice versa)
        // must also round-trip: the formats are one and the same.
        EXPECT_EQ(parallel.decompress(serial).value(), input);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AlgorithmsDensitiesSizes, StreamingEquivalence,
    ::testing::Combine(
        ::testing::Values(Algorithm::Rle, Algorithm::Zvc, Algorithm::Zlib),
        ::testing::Values(0.0, 0.25, 0.5, 1.0),
        // Empty, sub-word, one window, odd sizes straddling window
        // boundaries, sub-word tails on multi-window buffers.
        ::testing::Values(size_t{0}, size_t{3}, size_t{4096},
                          size_t{4097}, size_t{40963}, size_t{65536})),
    [](const auto &info) {
        return algorithmName(std::get<0>(info.param)) + "_d" +
            std::to_string(
                static_cast<int>(std::get<1>(info.param) * 100)) +
            "_s" + std::to_string(std::get<2>(info.param));
    });

TEST(ParallelCompressor, LaneCountsAndSerialFallback)
{
    const ParallelCompressor serial(Algorithm::Zvc, 4096, 1);
    EXPECT_EQ(serial.lanes(), 1u);
    const ParallelCompressor eight(Algorithm::Zvc, 4096, 8);
    EXPECT_EQ(eight.lanes(), 8u);
    EXPECT_EQ(eight.name(), "ZV");
    EXPECT_EQ(eight.windowBytes(), 4096u);
}

TEST(ParallelCompressor, SingleWindowTakesSerialPath)
{
    // A buffer smaller than one window cannot fan out; result must still
    // be identical.
    const auto input = makeInput(0.5, 1000, 3);
    const ParallelCompressor parallel(Algorithm::Zvc, 4096, 8);
    expectIdentical(makeCompressor(Algorithm::Zvc)->compress(input),
                    parallel.compress(input), "single window");
}

TEST(ParallelCompressor, ManyMoreWindowsThanLanes)
{
    const auto input = makeInput(0.3, (1 << 20) + 37, 11);
    const ParallelCompressor parallel(Algorithm::Rle, 4096, 3);
    const auto serial = makeCompressor(Algorithm::Rle)->compress(input);
    expectIdentical(serial, parallel.compress(input), "257 windows");
    EXPECT_EQ(parallel.decompress(serial).value(), input);
}

TEST(ParallelCompressor, MeasureRatioMatchesSerial)
{
    const auto input = makeInput(0.25, 1 << 18, 5);
    const ParallelCompressor parallel(Algorithm::Zvc, 4096, 4);
    EXPECT_DOUBLE_EQ(parallel.measureRatio(input),
                     makeCompressor(Algorithm::Zvc)->measureRatio(input));
}

TEST(StreamingInto, AppendsWithoutDisturbingExistingBytes)
{
    // compressWindowInto must be strictly append-only: prior contents of
    // the shared payload buffer stay untouched.
    const auto input = makeInput(0.5, 4096, 21);
    for (Algorithm algorithm : kAllAlgorithms) {
        const auto codec = makeCompressor(algorithm);
        ByteVec out = {0xDE, 0xAD, 0xBE, 0xEF};
        codec->compressWindowInto(input, out);
        ASSERT_GT(out.size(), 4u);
        EXPECT_EQ(out[0], 0xDE);
        EXPECT_EQ(out[3], 0xEF);

        // And the appended bytes are exactly one window's payload.
        const auto whole = codec->compress(input);
        ASSERT_EQ(whole.window_sizes.size(), 1u);
        EXPECT_EQ(out.size() - 4, whole.payload.size());
        EXPECT_TRUE(std::equal(out.begin() + 4, out.end(),
                               whole.payload.begin()));
    }
}

TEST(StreamingInto, DecompressIntoFillsExactRegion)
{
    const auto input = makeInput(0.25, 4096, 23);
    for (Algorithm algorithm : kAllAlgorithms) {
        const auto codec = makeCompressor(algorithm);
        const auto compressed = codec->compress(input);
        // Sentinel-padded region: the codec must write exactly the window
        // and nothing else.
        std::vector<uint8_t> region(input.size() + 8, 0xCC);
        ASSERT_TRUE(codec
                        ->decompressWindowInto(compressed.payload,
                                               input.size(),
                                               region.data() + 4)
                        .ok());
        EXPECT_EQ(region[0], 0xCC);
        EXPECT_EQ(region[3], 0xCC);
        EXPECT_EQ(region[region.size() - 4], 0xCC);
        EXPECT_TRUE(std::equal(input.begin(), input.end(),
                               region.begin() + 4));
    }
}

TEST(ShardFanOut, ThrowingConsumerJoinsWorkersAndRethrows)
{
    // The drain consumer runs on the calling thread while workers are
    // still compressing later shards; a throw out of it must join every
    // helper before the frame unwinds (no worker left touching a dead
    // frame's shard slots) and propagate to the caller.
    const ParallelCompressor parallel(Algorithm::Zvc, 4096, 4);
    const auto input = makeInput(0.4, 64 * 4096, 41);

    int consumed = 0;
    try {
        parallel.compressShards(input, 2,
                                [&](CompressedShard &&shard) {
                                    if (shard.index == 1)
                                        throw std::runtime_error(
                                            "consumer rejected shard 1");
                                    ++consumed;
                                });
        FAIL() << "compressShards swallowed the consumer exception";
    } catch (const std::runtime_error &error) {
        EXPECT_STREQ(error.what(), "consumer rejected shard 1");
    }
    EXPECT_EQ(consumed, 1); // shard 0 only

    // The compressor (and its pool) survive: the next fan-out matches
    // the serial reference byte for byte.
    const CompressedBuffer after = parallel.compress(input);
    expectIdentical(after, parallel.serial().compress(input),
                    "post-exception fan-out");
}

TEST(ShardFanOut, ThrowingConsumerOnDecompressJoinsAndRethrows)
{
    const ParallelCompressor parallel(Algorithm::Zvc, 4096, 4);
    const auto input = makeInput(0.4, 64 * 4096, 42);
    const CompressedBuffer buffer = parallel.compress(input);

    ByteVec out(input.size());
    EXPECT_THROW(
        parallel.decompressShards(
            buffer, 2, out.data(),
            [&](const ParallelCompressor::DecompressedShard &shard) {
                if (shard.index == 1)
                    throw std::runtime_error("prefetch consumer failed");
            }),
        std::runtime_error);

    // Reusable afterward, and the round trip is still lossless.
    ByteVec again(input.size());
    const Status status = parallel.decompressShards(
        buffer, 2, again.data(),
        [](const ParallelCompressor::DecompressedShard &) {});
    ASSERT_TRUE(status.ok()) << status.toString();
    EXPECT_EQ(again, ByteVec(input.begin(), input.end()));
}

TEST(CompressedBound, CoversWorstCaseWindows)
{
    // Fully dense data is each codec's worst case; the bound must cover
    // what the codec actually emits (it is what compress() pre-reserves).
    const auto dense = makeInput(1.0, 4096, 31);
    for (Algorithm algorithm : kAllAlgorithms) {
        const auto codec = makeCompressor(algorithm);
        const auto compressed = codec->compress(dense);
        EXPECT_LE(compressed.payload.size(),
                  codec->compressedBound(dense.size()))
            << algorithmName(algorithm);
    }
}

} // namespace
} // namespace cdma
