/**
 * @file
 * Physical memory layouts for 4-D activation tensors. The paper's
 * compression-ratio study (Section VII-A, Figure 11) sweeps three layouts
 * used by contemporary frameworks: NCHW (Caffe/cuDNN), NHWC (cuDNN), and
 * CHWN (Neon/cuda-convnet). RLE and zlib are sensitive to the layout
 * because it determines whether the spatially clustered zeros of a channel
 * plane stay contiguous in the linear address space.
 */

#ifndef CDMA_TENSOR_LAYOUT_HH
#define CDMA_TENSOR_LAYOUT_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace cdma {

/** Physical arrangement of a (N, C, H, W) tensor in linear memory. */
enum class Layout {
    NCHW, ///< batch outermost, width innermost (Caffe, cuDNN default)
    NHWC, ///< channels innermost (cuDNN alternative)
    CHWN, ///< batch innermost (Neon, cuda-convnet)
};

/** All layouts, in the order the paper's Figure 11 sweeps them. */
inline constexpr std::array<Layout, 3> kAllLayouts = {
    Layout::NCHW, Layout::NHWC, Layout::CHWN};

/** Human-readable layout name ("NCHW" etc.). */
std::string layoutName(Layout layout);

/** Parse a layout name; fatal() on an unknown string. */
Layout layoutFromName(const std::string &name);

/** Logical extents of a 4-D activation tensor. */
struct Shape4D {
    int64_t n = 1; ///< minibatch size
    int64_t c = 1; ///< channels
    int64_t h = 1; ///< height
    int64_t w = 1; ///< width

    /** Total number of elements. */
    int64_t elements() const { return n * c * h * w; }

    /** Bytes at 4 bytes/element (fp32 activations, as in the paper). */
    int64_t bytes() const { return elements() * 4; }

    bool operator==(const Shape4D &other) const = default;

    /** Render as "(N, C, H, W)". */
    std::string str() const;
};

/**
 * Compute the linear element index of logical coordinate (n, c, h, w)
 * under @p layout for a tensor of extents @p shape.
 */
int64_t linearIndex(const Shape4D &shape, Layout layout,
                    int64_t n, int64_t c, int64_t h, int64_t w);

} // namespace cdma

#endif // CDMA_TENSOR_LAYOUT_HH
