#include "dnn/composite.hh"

#include "common/logging.hh"

namespace cdma {

ParallelConcat::ParallelConcat(std::string name,
                               std::vector<Branch> branches)
    : Layer(std::move(name)), branches_(std::move(branches))
{
    CDMA_ASSERT(!branches_.empty(), "concat %s needs at least one branch",
                this->name().c_str());
    for (const auto &branch : branches_) {
        CDMA_ASSERT(!branch.empty(),
                    "concat %s has an empty branch", this->name().c_str());
    }
}

Shape4D
ParallelConcat::branchOutputShape(const Branch &branch,
                                  const Shape4D &input) const
{
    Shape4D shape = input;
    for (const auto &layer : branch)
        shape = layer->outputShape(shape);
    return shape;
}

Shape4D
ParallelConcat::outputShape(const Shape4D &input) const
{
    Shape4D out = branchOutputShape(branches_.front(), input);
    int64_t channels = out.c;
    for (size_t b = 1; b < branches_.size(); ++b) {
        const Shape4D shape = branchOutputShape(branches_[b], input);
        CDMA_ASSERT(shape.n == out.n && shape.h == out.h &&
                        shape.w == out.w,
                    "concat %s branch %zu shape %s mismatches %s",
                    name().c_str(), b, shape.str().c_str(),
                    out.str().c_str());
        channels += shape.c;
    }
    out.c = channels;
    return out;
}

Tensor4D
ParallelConcat::forward(const Tensor4D &input)
{
    const Shape4D out_shape = outputShape(input.shape());
    Tensor4D output(out_shape);
    cached_branch_shapes_.clear();

    int64_t channel_base = 0;
    for (auto &branch : branches_) {
        Tensor4D value = input;
        for (auto &layer : branch)
            value = layer->forward(value);
        const Shape4D &bs = value.shape();
        cached_branch_shapes_.push_back(bs);
        for (int64_t n = 0; n < bs.n; ++n)
            for (int64_t c = 0; c < bs.c; ++c)
                for (int64_t h = 0; h < bs.h; ++h)
                    for (int64_t w = 0; w < bs.w; ++w)
                        output.at(n, channel_base + c, h, w) =
                            value.at(n, c, h, w);
        channel_base += bs.c;
    }
    return output;
}

Tensor4D
ParallelConcat::backward(const Tensor4D &output_grad)
{
    Tensor4D input_grad; // initialized by the first branch
    bool first = true;

    int64_t channel_base = 0;
    for (size_t b = 0; b < branches_.size(); ++b) {
        const Shape4D &bs = cached_branch_shapes_[b];
        Tensor4D branch_grad(bs);
        for (int64_t n = 0; n < bs.n; ++n)
            for (int64_t c = 0; c < bs.c; ++c)
                for (int64_t h = 0; h < bs.h; ++h)
                    for (int64_t w = 0; w < bs.w; ++w)
                        branch_grad.at(n, c, h, w) =
                            output_grad.at(n, channel_base + c, h, w);
        channel_base += bs.c;

        Tensor4D grad = branch_grad;
        for (auto it = branches_[b].rbegin(); it != branches_[b].rend();
             ++it) {
            grad = (*it)->backward(grad);
        }

        if (first) {
            input_grad = grad;
            first = false;
        } else {
            auto dst = input_grad.data();
            auto src = grad.data();
            for (size_t i = 0; i < dst.size(); ++i)
                dst[i] += src[i];
        }
    }
    return input_grad;
}

uint64_t
ParallelConcat::forwardMacsPerImage(const Shape4D &input) const
{
    Shape4D one = input;
    one.n = 1;
    uint64_t total = 0;
    for (const auto &branch : branches_) {
        Shape4D shape = one;
        for (const auto &layer : branch) {
            total += layer->forwardMacsPerImage(shape);
            shape = layer->outputShape(shape);
        }
    }
    return total;
}

std::vector<ParamBlob *>
ParallelConcat::params()
{
    std::vector<ParamBlob *> all;
    for (auto &branch : branches_) {
        for (auto &layer : branch) {
            for (ParamBlob *blob : layer->params())
                all.push_back(blob);
        }
    }
    return all;
}

void
ParallelConcat::setTraining(bool training)
{
    Layer::setTraining(training);
    for (auto &branch : branches_) {
        for (auto &layer : branch)
            layer->setTraining(training);
    }
}

} // namespace cdma
