/**
 * @file
 * Status/termination reporting in the gem5 tradition: panic() for internal
 * invariant violations (simulator bugs), fatal() for user/configuration
 * errors, warn()/inform() for non-fatal notices.
 */

#ifndef CDMA_COMMON_LOGGING_HH
#define CDMA_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace cdma {

/**
 * Severity of a log message. Ordered so that a verbosity threshold can
 * filter the stream.
 */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/** Set the global minimum level that is actually emitted. */
void setLogLevel(LogLevel level);

/** Current global minimum level. */
LogLevel logLevel();

/**
 * Emit a formatted message at the given level to stderr. Used by the
 * convenience wrappers below; rarely called directly.
 *
 * @param level Message severity.
 * @param fmt printf-style format string.
 */
void logMessage(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Informative message the user should see but not worry about. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Something may be mis-modeled but the run can continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Terminate because of a user error (bad configuration, invalid argument).
 * Exits with status 1; does not dump core.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate because of an internal invariant violation (a bug in this
 * library). Aborts so a core dump / debugger trap is possible.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assert an invariant with a formatted explanation. Compiled in all build
 * types: simulators must not silently continue past a broken invariant.
 */
#define CDMA_ASSERT(cond, fmt, ...)                                         \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::cdma::panic("assertion '%s' failed at %s:%d: " fmt, #cond,    \
                          __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__);   \
        }                                                                   \
    } while (0)

} // namespace cdma

#endif // CDMA_COMMON_LOGGING_HH
