/** @file Unit tests for the statistics accumulators. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace cdma {
namespace {

TEST(Accumulator, EmptyDefaults)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownMoments)
{
    Accumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_NEAR(acc.variance(), 4.0, 1e-12);
    EXPECT_NEAR(acc.stddev(), 2.0, 1e-12);
}

TEST(Accumulator, ResetClearsState)
{
    Accumulator acc;
    acc.add(10.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.sum(), 0.0);
}

TEST(WeightedMean, MatchesHandComputation)
{
    // The Figure 11 reduction: per-layer ratios weighted by offloaded
    // bytes.
    WeightedMean wm;
    wm.add(2.0, 100.0);
    wm.add(4.0, 300.0);
    EXPECT_DOUBLE_EQ(wm.mean(), (2.0 * 100 + 4.0 * 300) / 400.0);
    EXPECT_DOUBLE_EQ(wm.totalWeight(), 400.0);
}

TEST(WeightedMean, EmptyIsZero)
{
    WeightedMean wm;
    EXPECT_DOUBLE_EQ(wm.mean(), 0.0);
}

TEST(WeightedMean, ZeroWeightSamplesIgnored)
{
    WeightedMean wm;
    wm.add(100.0, 0.0);
    wm.add(3.0, 10.0);
    EXPECT_DOUBLE_EQ(wm.mean(), 3.0);
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.99);  // bin 9
    h.add(-5.0);  // clamps to bin 0
    h.add(42.0);  // clamps to bin 9
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binLo(2), 0.5);
}

TEST(Histogram, RenderMentionsCounts)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.25);
    h.add(0.75);
    h.add(0.8);
    const std::string text = h.render(10);
    EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(LogHistogram, EmptyDefaults)
{
    LogHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 0.0);
    EXPECT_EQ(h.bucketCount(), 0u);
}

TEST(LogHistogram, ExactMomentsAndClampedPercentiles)
{
    LogHistogram h;
    for (double v : {1.0, 2.0, 3.0, 10.0})
        h.add(v);
    EXPECT_EQ(h.count(), 4u);
    // Mean/min/max/sum are exact regardless of bucketing.
    EXPECT_DOUBLE_EQ(h.sum(), 16.0);
    EXPECT_DOUBLE_EQ(h.mean(), 4.0);
    EXPECT_DOUBLE_EQ(h.min(), 1.0);
    EXPECT_DOUBLE_EQ(h.max(), 10.0);
    // Percentiles land within one bucket (growth 1.25 => <= 25% wide),
    // and bucket representatives are clamped into [min, max].
    EXPECT_GE(h.percentile(0.0), h.min());
    EXPECT_LE(h.percentile(1.0), h.max());
    EXPECT_NEAR(h.percentile(1.0), 10.0, 10.0 * 0.25);
    EXPECT_NEAR(h.percentile(0.5), 2.0, 2.0 * 0.25);
}

TEST(LogHistogram, SingleValueIsExactAtEveryQuantile)
{
    LogHistogram h;
    for (int i = 0; i < 100; ++i)
        h.add(0.125);
    // One occupied bucket, clamped to [min, max] = [0.125, 0.125]: every
    // quantile must come back exactly.
    for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(h.percentile(q), 0.125) << "q=" << q;
}

TEST(LogHistogram, NonPositiveSamplesLandInTheUnderflowBucket)
{
    LogHistogram h;
    h.add(0.0);
    h.add(-3.0);
    h.add(4.0);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.min(), -3.0);
    // p50 targets the 2nd sample: still in the underflow bucket, whose
    // representative is min(0, min_).
    EXPECT_DOUBLE_EQ(h.percentile(0.5), -3.0);
    EXPECT_GT(h.percentile(1.0), 0.0);
}

TEST(LogHistogram, MergeMatchesDirectAccumulation)
{
    LogHistogram a, b, direct;
    for (int i = 1; i <= 50; ++i) {
        const double v = 0.001 * i * i;
        (i % 2 == 0 ? a : b).add(v);
        direct.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), direct.count());
    EXPECT_DOUBLE_EQ(a.sum(), direct.sum());
    EXPECT_DOUBLE_EQ(a.min(), direct.min());
    EXPECT_DOUBLE_EQ(a.max(), direct.max());
    for (double q : {0.05, 0.25, 0.5, 0.75, 0.95, 0.99})
        EXPECT_DOUBLE_EQ(a.percentile(q), direct.percentile(q))
            << "q=" << q;
}

TEST(LogHistogram, MergeIsAssociative)
{
    LogHistogram a1, b1, c1, a2, b2, c2;
    for (int i = 1; i <= 30; ++i) {
        const double v = 0.5 * i;
        (i % 3 == 0 ? a1 : i % 3 == 1 ? b1 : c1).add(v);
        (i % 3 == 0 ? a2 : i % 3 == 1 ? b2 : c2).add(v);
    }
    // (a + b) + c vs a + (b + c).
    a1.merge(b1);
    a1.merge(c1);
    b2.merge(c2);
    a2.merge(b2);
    EXPECT_EQ(a1.count(), a2.count());
    EXPECT_DOUBLE_EQ(a1.sum(), a2.sum());
    for (double q : {0.1, 0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(a1.percentile(q), a2.percentile(q)) << "q=" << q;
}

TEST(LogHistogram, MergingAnEmptyHistogramIsIdentity)
{
    LogHistogram a, empty;
    a.add(2.0);
    a.add(8.0);
    const double p50 = a.percentile(0.5);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.percentile(0.5), p50);

    LogHistogram other;
    other.merge(a);
    EXPECT_EQ(other.count(), 2u);
    EXPECT_DOUBLE_EQ(other.percentile(0.5), p50);
}

} // namespace
} // namespace cdma
