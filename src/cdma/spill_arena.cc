#include "cdma/spill_arena.hh"

#include <algorithm>
#include <bit>
#include <cstring>

#include "common/bits.hh"
#include "common/logging.hh"
#include "compress/kernels/kernels.hh"

namespace cdma {

namespace {

/** Target slab size: small classes share slabs, huge slots get their
 *  own (one mmap-class allocation amortizes many shard stores). */
constexpr uint64_t kTargetSlabBytes = 1ull << 20;

} // namespace

SpillArena::SpillArena(uint64_t min_slot_bytes)
    : min_slot_bytes_(std::max<uint64_t>(64, std::bit_ceil(min_slot_bytes)))
{
}

uint32_t
SpillArena::classFor(uint64_t bytes) const
{
    const uint64_t size = std::bit_ceil(std::max(bytes, min_slot_bytes_));
    return static_cast<uint32_t>(std::countr_zero(size) -
                                 std::countr_zero(min_slot_bytes_));
}

uint8_t *
SpillArena::slotData(const SlotRef &ref)
{
    return classes_[ref.size_class].slabs[ref.slab].data() + ref.offset;
}

const uint8_t *
SpillArena::slotData(const SlotRef &ref) const
{
    return classes_[ref.size_class].slabs[ref.slab].data() + ref.offset;
}

SpillArena::SlotRef
SpillArena::allocateSlot(uint64_t bytes)
{
    const uint32_t index = classFor(bytes);
    if (index >= classes_.size())
        classes_.resize(index + 1);
    SizeClass &cls = classes_[index];
    if (cls.slot_bytes == 0) {
        cls.slot_bytes = min_slot_bytes_ << index;
        cls.slots_per_slab =
            std::max<uint64_t>(1, kTargetSlabBytes / cls.slot_bytes);
    }

    if (!cls.free_list.empty()) {
        const SlotRef ref = cls.free_list.back();
        cls.free_list.pop_back();
        ++stats_.reused_slots;
        stats_.live_slot_bytes += cls.slot_bytes;
        stats_.high_water_slot_bytes = std::max(
            stats_.high_water_slot_bytes, stats_.live_slot_bytes);
        return ref;
    }

    if (cls.slabs.empty() || cls.bump == cls.slots_per_slab) {
        cls.slabs.emplace_back();
        cls.slabs.back().resize(cls.slot_bytes * cls.slots_per_slab);
        cls.bump = 0;
        ++stats_.slab_allocations;
        stats_.slab_bytes += cls.slot_bytes * cls.slots_per_slab;
    }
    SlotRef ref;
    ref.size_class = index;
    ref.slab = static_cast<uint32_t>(cls.slabs.size() - 1);
    ref.offset = cls.bump * cls.slot_bytes;
    ++cls.bump;
    stats_.live_slot_bytes += cls.slot_bytes;
    stats_.high_water_slot_bytes =
        std::max(stats_.high_water_slot_bytes, stats_.live_slot_bytes);
    return ref;
}

SpillTicket
SpillArena::beginSpill(uint64_t original_bytes, uint64_t window_bytes)
{
    CDMA_ASSERT(window_bytes > 0 || original_bytes == 0,
                "spill needs a window size");
    SpillTicket ticket;
    if (!free_tickets_.empty()) {
        ticket = free_tickets_.back();
        free_tickets_.pop_back();
    } else {
        ticket = static_cast<SpillTicket>(records_.size());
        records_.emplace_back();
    }
    Record &record = records_[ticket];
    record.live = true;
    record.original_bytes = original_bytes;
    record.window_bytes = window_bytes;
    record.window_sizes.clear(); // capacity survives ticket recycling
    record.shards.clear();
    ++stats_.stored_buffers;
    ++stats_.live_buffers;
    return ticket;
}

void
SpillArena::appendShard(SpillTicket ticket, const CompressedShard &shard)
{
    liveRecord(ticket); // asserts the ticket is live
    Record &record = records_[ticket];

    StoredShard stored;
    stored.payload_bytes = shard.payload.size();
    stored.raw_bytes = shard.raw_bytes;
    stored.wire_bytes = shard.effectiveBytes(record.window_bytes);
    stored.first_window = shard.first_window;
    stored.window_begin = record.window_sizes.size();
    stored.window_count = shard.window_sizes.size();
    stored.crc32c = shard.crc32c;
    stored.raw_framed = shard.raw_framed;
    if (stored.payload_bytes > 0) {
        stored.slot = allocateSlot(stored.payload_bytes);
        std::memcpy(slotData(stored.slot), shard.payload.data(),
                    stored.payload_bytes);
    }
    record.window_sizes.insert(record.window_sizes.end(),
                               shard.window_sizes.begin(),
                               shard.window_sizes.end());
    record.shards.push_back(stored);
    ++stats_.stored_shards;
    stats_.live_payload_bytes += stored.payload_bytes;
    stats_.high_water_payload_bytes = std::max(
        stats_.high_water_payload_bytes, stats_.live_payload_bytes);
}

SpillTicket
SpillArena::store(const CompressedBuffer &buffer,
                  uint64_t windows_per_shard)
{
    CDMA_ASSERT(windows_per_shard > 0, "shards need at least one window");
    const SpillTicket ticket =
        beginSpill(buffer.original_bytes, buffer.window_bytes);
    const uint64_t windows = buffer.window_sizes.size();
    uint64_t payload_cursor = 0;
    uint64_t raw_cursor = 0;
    CompressedShard shard;
    for (uint64_t first = 0; first < windows;
         first += windows_per_shard) {
        const uint64_t last =
            std::min(windows, first + windows_per_shard);
        shard.index = first / windows_per_shard;
        shard.first_window = first;
        shard.window_sizes.assign(buffer.window_sizes.begin() +
                                      static_cast<ptrdiff_t>(first),
                                  buffer.window_sizes.begin() +
                                      static_cast<ptrdiff_t>(last));
        uint64_t payload_bytes = 0;
        for (const uint32_t size : shard.window_sizes)
            payload_bytes += size;
        shard.payload.assign(buffer.payload.begin() +
                                 static_cast<ptrdiff_t>(payload_cursor),
                             buffer.payload.begin() +
                                 static_cast<ptrdiff_t>(payload_cursor +
                                                        payload_bytes));
        payload_cursor += payload_bytes;
        const uint64_t raw_end = std::min<uint64_t>(
            buffer.original_bytes, last * buffer.window_bytes);
        shard.raw_bytes = raw_end - raw_cursor;
        raw_cursor = raw_end;
        // Stitched buffers carry no per-shard CRC, so frame the shard
        // here — same integrity contract as the streaming offload path.
        shard.crc32c = activeKernels().crc32(0, shard.payload.data(),
                                             shard.payload.size());
        appendShard(ticket, shard);
    }
    CDMA_ASSERT(payload_cursor == buffer.payload.size() &&
                    raw_cursor == buffer.original_bytes,
                "spill store did not cover the buffer");
    return ticket;
}

const SpillArena::Record &
SpillArena::liveRecord(SpillTicket ticket) const
{
    CDMA_ASSERT(ticket < records_.size() && records_[ticket].live,
                "spill ticket %u is not live",
                static_cast<unsigned>(ticket));
    return records_[ticket];
}

uint64_t
SpillArena::originalBytes(SpillTicket ticket) const
{
    return liveRecord(ticket).original_bytes;
}

uint64_t
SpillArena::windowBytes(SpillTicket ticket) const
{
    return liveRecord(ticket).window_bytes;
}

uint64_t
SpillArena::wireBytes(SpillTicket ticket) const
{
    uint64_t total = 0;
    for (const StoredShard &shard : liveRecord(ticket).shards)
        total += shard.wire_bytes;
    return total;
}

uint64_t
SpillArena::payloadBytes(SpillTicket ticket) const
{
    uint64_t total = 0;
    for (const StoredShard &shard : liveRecord(ticket).shards)
        total += shard.payload_bytes;
    return total;
}

size_t
SpillArena::shardCount(SpillTicket ticket) const
{
    return liveRecord(ticket).shards.size();
}

SpillShardView
SpillArena::shard(SpillTicket ticket, size_t index) const
{
    const Record &record = liveRecord(ticket);
    CDMA_ASSERT(index < record.shards.size(),
                "shard %zu out of range (%zu stored)", index,
                record.shards.size());
    const StoredShard &stored = record.shards[index];
    SpillShardView view;
    if (stored.payload_bytes > 0) {
        view.payload = std::span<const uint8_t>(slotData(stored.slot),
                                                stored.payload_bytes);
    }
    view.window_sizes = std::span<const uint32_t>(
        record.window_sizes.data() + stored.window_begin,
        stored.window_count);
    view.first_window = stored.first_window;
    view.raw_bytes = stored.raw_bytes;
    view.wire_bytes = stored.wire_bytes;
    view.crc32c = stored.crc32c;
    view.raw_framed = stored.raw_framed;
    return view;
}

CompressedBuffer
SpillArena::materialize(SpillTicket ticket) const
{
    const Record &record = liveRecord(ticket);
    CompressedBuffer buffer;
    buffer.original_bytes = record.original_bytes;
    buffer.window_bytes = record.window_bytes;
    buffer.window_sizes = record.window_sizes;
    buffer.payload.reserve(payloadBytes(ticket));
    for (const StoredShard &stored : record.shards) {
        const uint8_t *data =
            stored.payload_bytes > 0 ? slotData(stored.slot) : nullptr;
        buffer.payload.insert(buffer.payload.end(), data,
                              data + stored.payload_bytes);
    }
    return buffer;
}

void
SpillArena::release(SpillTicket ticket)
{
    liveRecord(ticket); // asserts the ticket is live
    Record &record = records_[ticket];
    for (const StoredShard &stored : record.shards) {
        if (stored.payload_bytes > 0) {
            classes_[stored.slot.size_class].free_list.push_back(
                stored.slot);
            stats_.live_slot_bytes -=
                classes_[stored.slot.size_class].slot_bytes;
        }
        stats_.live_payload_bytes -= stored.payload_bytes;
    }
    record.live = false;
    --stats_.live_buffers;
    free_tickets_.push_back(ticket);
}

} // namespace cdma
