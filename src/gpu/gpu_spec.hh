/**
 * @file
 * Hardware parameters of the simulated GPU node, matching the paper's
 * evaluation platform (Section VI): an NVIDIA Titan X (Maxwell) with
 * 336 GB/s GDDR5 behind a PCIe gen3 x16 link to the host, plus the cDMA
 * provisioning constants from Sections V-B/V-C.
 */

#ifndef CDMA_GPU_GPU_SPEC_HH
#define CDMA_GPU_GPU_SPEC_HH

#include <cstdint>

#include "common/units.hh"

namespace cdma {

/** Static description of the GPU node. */
struct GpuSpec {
    /** GDDR5 bandwidth (Titan X Maxwell). */
    double dram_bandwidth = 336.0 * kGBps;
    /** PCIe gen3 x16 nominal data bandwidth (used in the cap math). */
    double pcie_bandwidth = 16.0 * kGBps;
    /**
     * Achieved PCIe copy throughput of vDNN's DMA-driven transfers
     * (12.8 GB/s measured in [12], quoted in Section III); transfer
     * times use this, the cap equations use the nominal figure as the
     * paper does.
     */
    double pcie_effective_bandwidth = 12.8 * kGBps;
    /**
     * Average DRAM bandwidth consumed by cuDNN compute (~100 GB/s
     * measured with nvprof, Section VI), leaving the rest for cDMA.
     */
    double compute_dram_bandwidth = 100.0 * kGBps;
    /**
     * DRAM read bandwidth provisioned for cDMA compression fetches.
     * 200 GB/s "reaps most of the benefits" (Section V-C).
     */
    double comp_bandwidth = 200.0 * kGBps;
    /** Round-trip latency from DMA request to data arrival (Section V-C). */
    double dma_latency = 350.0 * kNanosecond;
    /** Peak fp32 multiply-accumulate rate (Titan X: 6.1 TFLOPS). */
    double peak_macs_per_second = 3.07e12;
    /** GPU core clock for the (de)compression pipeline cycle model. */
    double engine_clock_hz = 1.0e9;
    /** GPU physical memory capacity (Titan X: 12 GB). */
    uint64_t dram_capacity = 12ull * kGiB;

    /** DRAM bandwidth left over for cDMA after compute (Section VI). */
    double leftoverBandwidth() const
    {
        return dram_bandwidth - compute_dram_bandwidth;
    }

    /**
     * Bandwidth-delay DMA buffer requirement (Section V-C): the buffer
     * must cover comp_bandwidth x dma_latency (70 KB at 200 GB/s, 350 ns).
     */
    uint64_t dmaBufferBytes() const
    {
        return static_cast<uint64_t>(comp_bandwidth * dma_latency);
    }
};

} // namespace cdma

#endif // CDMA_GPU_GPU_SPEC_HH
