/**
 * @file
 * LZ77 tokenizer for the DEFLATE-style compressor: greedy hash-chain
 * matching with the RFC 1951 limits (match length 3..258, distance up to
 * 32768). Match extension runs through the kernel backend's matchLength
 * op, and the hot path is the scratch-reusing lz77TokenizeInto() — the
 * DEFLATE window loop keeps one Lz77Scratch per thread so tokenizing a
 * window allocates nothing in steady state (the ZL analogue of the
 * ZV/RL zero-allocation guarantee).
 */

#ifndef CDMA_COMPRESS_LZ77_HH
#define CDMA_COMPRESS_LZ77_HH

#include <cstdint>
#include <span>
#include <vector>

namespace cdma {

struct KernelOps;

/** One LZ77 token: either a literal byte or a (length, distance) match. */
struct Lz77Token {
    bool is_match = false;
    uint8_t literal = 0;   ///< valid when !is_match
    uint16_t length = 0;   ///< match length, 3..258
    uint16_t distance = 0; ///< match distance, 1..32768
};

/** Tuning knobs for the matcher. */
struct Lz77Config {
    int max_chain = 64;          ///< hash-chain positions probed per match
    uint16_t min_match = 3;      ///< shortest emitted match
    uint16_t max_match = 258;    ///< longest emitted match
    uint32_t max_distance = 32768; ///< history window
};

/**
 * Reusable tokenizer state: the token output plus the hash-chain tables.
 * A scratch may be reused across any number of tokenize calls (typically
 * one per thread); after the first few windows the tokenizer performs no
 * allocation at all — head is re-filled in place and prev/tokens only
 * grow to the largest window seen.
 */
struct Lz77Scratch {
    std::vector<Lz77Token> tokens;
    std::vector<int32_t> head; ///< hash bucket -> most recent position
    std::vector<int32_t> prev; ///< position -> previous chain position
};

/**
 * Tokenize @p input greedily into @p scratch.tokens (cleared first) and
 * return a reference to it. @p kernels selects the backend for the match
 * extension scan; nullptr = runtime dispatch.
 */
const std::vector<Lz77Token> &
lz77TokenizeInto(std::span<const uint8_t> input, const Lz77Config &config,
                 Lz77Scratch &scratch, const KernelOps *kernels = nullptr);

/** Convenience form of lz77TokenizeInto() with throwaway scratch. */
std::vector<Lz77Token> lz77Tokenize(std::span<const uint8_t> input,
                                    const Lz77Config &config = {});

/** Reconstruct the byte stream a token sequence encodes. */
std::vector<uint8_t> lz77Reconstruct(const std::vector<Lz77Token> &tokens);

} // namespace cdma

#endif // CDMA_COMPRESS_LZ77_HH
