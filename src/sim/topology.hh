/**
 * @file
 * Interconnect topology graph — the generalization of the single
 * GPU–host PCIe link to a fleet-scale interconnect. Nodes are endpoints
 * (GPUs, PCIe switches, host DRAM, an NVMe spill tier); links are
 * bidirectional edges, each carrying the full per-edge transfer state
 * the one-link model kept in a lone DuplexChannel: bandwidth, duplex
 * mode, arbitration policy, occupancy/contention accounting and an
 * optional fault-injector hook. A Route is a fewest-hops path through
 * the graph (GPU → switch → host DRAM, host → SSD, GPU → NVLink peer);
 * LinkNetwork instantiates one DuplexChannel per edge on a shared
 * EventQueue and moves transfers along routes store-and-forward, so N
 * GPUs offloading through one shared switch uplink contend exactly
 * where real hardware does.
 *
 * The historical two-endpoint model is the degenerate two-node graph
 * (Topology::pcieLink): one edge, whose routed timeline reproduces a
 * direct DuplexChannel submission event for event — the pre-existing
 * closed-form pins hold at 1e-9 through this path.
 */

#ifndef CDMA_SIM_TOPOLOGY_HH
#define CDMA_SIM_TOPOLOGY_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/channel.hh"

namespace cdma {

namespace sim {
class FaultInjector;
} // namespace sim

namespace obs {
class TraceRecorder;
} // namespace obs

/** Node handle in a Topology (index into its node table). */
using NodeId = uint32_t;

/** Link handle in a Topology (index into its link table). */
using LinkId = uint32_t;

/** What a topology node models. */
enum class NodeKind {
    Gpu,        ///< a GPU endpoint (offload source / prefetch sink)
    PcieSwitch, ///< a PCIe switch fanning GPUs into one upstream
    HostDram,   ///< host memory (the spill arena's home tier)
    NvmeSsd,    ///< NVMe spill tier below host DRAM
};

/** Display name of a node kind. */
const char *nodeKindName(NodeKind kind);

/** One topology node. */
struct TopologyNode {
    NodeKind kind = NodeKind::Gpu;
    std::string name;
};

/**
 * Static properties of one bidirectional edge. Direction::Out on the
 * edge's channel is a→b, Direction::In is b→a.
 */
struct LinkProps {
    double bytes_per_second = 0.0;
    DuplexMode mode = DuplexMode::Full;
    LinkArbiter arbiter = LinkArbiter::RoundRobin;
    /** Fixed per-crossing latency added to every transfer's service. */
    double latency_seconds = 0.0;
};

/** One edge of the topology: endpoints plus link properties. */
struct TopologyLink {
    NodeId a = 0;
    NodeId b = 0;
    std::string name;
    LinkProps props;

    /** The far endpoint as seen from @p node (must be an endpoint). */
    NodeId peer(NodeId node) const { return node == a ? b : a; }

    /** Channel direction that moves data from @p from across this edge. */
    DuplexChannel::Direction directionFrom(NodeId from) const
    {
        return from == a ? DuplexChannel::Direction::Out
                         : DuplexChannel::Direction::In;
    }
};

/** One hop of a route: an edge plus the direction of travel on it. */
struct RouteHop {
    LinkId link = 0;
    DuplexChannel::Direction direction = DuplexChannel::Direction::Out;
};

/** An ordered path through the topology from one node to another. */
struct Route {
    NodeId from = 0;
    NodeId to = 0;
    std::vector<RouteHop> hops;

    size_t hopCount() const { return hops.size(); }
    bool empty() const { return hops.empty(); }

    /** The same path walked back: hops reversed, directions flipped. */
    Route reversed() const
    {
        Route back;
        back.from = to;
        back.to = from;
        back.hops.reserve(hops.size());
        for (auto it = hops.rbegin(); it != hops.rend(); ++it) {
            back.hops.push_back(RouteHop{
                it->link,
                it->direction == DuplexChannel::Direction::Out
                    ? DuplexChannel::Direction::In
                    : DuplexChannel::Direction::Out});
        }
        return back;
    }
};

/**
 * Static interconnect graph: nodes, links, deterministic fewest-hops
 * routing. Build once, share read-only between engines (it carries no
 * simulation state — LinkNetwork instantiates the live per-edge
 * channels).
 */
class Topology
{
  public:
    /** Add a node; returns its handle. */
    NodeId addNode(NodeKind kind, std::string name);

    /** Connect @p a and @p b with an edge; returns its handle. */
    LinkId connect(NodeId a, NodeId b, std::string name,
                   const LinkProps &props);

    size_t nodeCount() const { return nodes_.size(); }
    size_t linkCount() const { return links_.size(); }

    const TopologyNode &node(NodeId id) const;
    const TopologyLink &link(LinkId id) const;

    /** Links incident to @p node, in insertion order. */
    const std::vector<LinkId> &linksAt(NodeId node) const;

    /** First node of @p kind, in insertion order; panics if absent. */
    NodeId firstNode(NodeKind kind) const;

    /** All nodes of @p kind, in insertion order. */
    std::vector<NodeId> nodesOfKind(NodeKind kind) const;

    /**
     * Deterministic fewest-hops route from @p from to @p to (BFS;
     * ties broken toward the lowest link id). Panics when the nodes are
     * not connected — a topology bug, not a runtime condition.
     */
    Route route(NodeId from, NodeId to) const;

    /**
     * The degenerate two-node graph the historical single-link model
     * is: one GPU, one host, one PCIe edge. TransferEngine builds this
     * when no explicit topology is configured, which keeps every
     * closed-form pin running through the graph path.
     */
    static std::shared_ptr<const Topology>
    pcieLink(double bytes_per_second, DuplexMode mode = DuplexMode::Full,
             LinkArbiter arbiter = LinkArbiter::RoundRobin);

  private:
    std::vector<TopologyNode> nodes_;
    std::vector<TopologyLink> links_;
    std::vector<std::vector<LinkId>> adjacency_;
};

/** Aggregated service record of one routed (multi-hop) transfer. */
struct RouteGrant {
    SimTime queued_at = 0.0; ///< submit time at the source node
    SimTime start = 0.0;     ///< first hop's service start
    SimTime end = 0.0;       ///< last hop's last byte serviced
    /** Sum of per-hop service times (excludes inter-hop queue waits). */
    SimTime service_seconds = 0.0;
    /** Sum of per-hop opposing-direction waits (half-duplex edges). */
    SimTime opposing_wait = 0.0;
    /** Sum of per-hop same-direction foreign-source waits — the
     *  multi-tenant contention this transfer paid along its route. */
    SimTime cross_source_wait = 0.0;
};

/**
 * Live simulation state of a topology: one DuplexChannel per edge on a
 * shared EventQueue, plus the per-edge fault-injector hooks. Transfers
 * move along routes store-and-forward: a hop is submitted when the
 * previous hop's last byte lands (the switch buffers one transfer unit,
 * matching the staging-shard granularity of the transfer pipelines).
 */
class LinkNetwork
{
  public:
    using Completion = std::function<void(const RouteGrant &)>;

    /** @p topology must outlive the network. */
    LinkNetwork(EventQueue &queue, const Topology &topology);

    const Topology &topology() const { return topology_; }
    EventQueue &queue() { return queue_; }

    /** Live channel of edge @p link. */
    DuplexChannel &channel(LinkId link);
    const DuplexChannel &channel(LinkId link) const;

    /**
     * Attach a fault process to edge @p link (non-owning; nullptr
     * detaches). The topology itself never samples it — transfer flows
     * that price faults consult the edge injector per crossing, the
     * same contract CdmaConfig::fault_injector had on the one link.
     */
    void setFaultInjector(LinkId link, sim::FaultInjector *injector);

    /** Fault process of edge @p link (nullptr = perfect edge). */
    sim::FaultInjector *faultInjector(LinkId link) const;

    /**
     * Move @p bytes along @p route; @p on_done fires with the
     * aggregated grant when the last hop's last byte is serviced.
     * @p extra_latency rides on the first hop (retry backoff holds the
     * source's DMA slot, not a mid-route switch buffer). @p source tags
     * every hop for cross-source contention accounting.
     */
    void submit(const Route &route, uint64_t bytes, Completion on_done,
                SimTime extra_latency = 0.0, unsigned source = 0);

    /**
     * Attach a trace recorder (non-owning; nullptr detaches). Registers
     * one span track per edge direction plus a utilization counter
     * track per edge under the "edges" trace process; every completed
     * hop then emits a "wire" span with queue/opposing/cross-source
     * wait attribution. Per-edge-per-direction service is FIFO, so the
     * spans on each track are disjoint.
     */
    void setTrace(obs::TraceRecorder *trace);

    /** Attached trace recorder (nullptr = tracing off). */
    obs::TraceRecorder *trace() const { return trace_; }

    /**
     * Write the channel layer's own per-edge byte totals into the trace
     * ledger (`wire_bytes.<edge>:<dir>` in otherData) so validators can
     * check the emitted spans conserve bytes against an independently
     * accumulated source. Call once after the event queue drains.
     */
    void recordTraceTotals();

    /** Bytes that crossed edge @p link in @p direction. */
    uint64_t edgeBytes(LinkId link,
                       DuplexChannel::Direction direction) const;

    /**
     * Utilization of edge @p link over [0, now]: wall-clock seconds the
     * edge had at least one direction in service, over elapsed time.
     */
    double utilization(LinkId link) const;

  private:
    /** Shared state of one in-flight routed transfer. */
    struct Transit {
        Route route; ///< owned copy — hops outlive the caller's Route
        uint64_t bytes = 0;
        unsigned source = 0;
        RouteGrant grant;
        Completion on_done;
    };

    void submitHop(std::shared_ptr<Transit> transit, size_t hop,
                   SimTime extra_latency);

    /** Emit the trace span + utilization sample for one serviced hop. */
    void traceHop(const RouteHop &hop, const DuplexChannel::Grant &grant,
                  uint64_t bytes, unsigned source);

    EventQueue &queue_;
    const Topology &topology_;
    std::vector<std::unique_ptr<DuplexChannel>> channels_;
    std::vector<sim::FaultInjector *> injectors_;
    obs::TraceRecorder *trace_ = nullptr;
    /** Per edge: {out span track, in span track, utilization counter}. */
    std::vector<std::array<uint32_t, 3>> edge_tracks_;
};

} // namespace cdma

#endif // CDMA_SIM_TOPOLOGY_HH
