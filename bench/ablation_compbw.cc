/**
 * @file
 * Section V-B/V-C ablation: sweep the DRAM read bandwidth provisioned
 * for the cDMA engine (COMP_BW) and report the six-network average
 * cDMA-ZV performance. The paper states that 200 GB/s "reaps most of the
 * benefits of sparse compression" out of the 236 GB/s left over by
 * compute — the curve should saturate near there.
 */

#include <cstdio>

#include "common/harness.hh"
#include "common/stats.hh"
#include "perf/step_sim.hh"

using namespace cdma;
using bench::Table;

int
main()
{
    std::printf("== Ablation: COMP_BW provisioning (cDMA-ZV, cuDNN v5) "
                "==\n");

    // Measure per-network ZVC ratios once.
    std::vector<NetworkDesc> nets = allNetworkDescs();
    std::vector<std::vector<double>> ratios;
    for (const auto &net : nets) {
        const auto measured = bench::measureNetworkRatios(
            net, Algorithm::Zvc, Layout::NCHW, {});
        std::vector<double> r;
        for (const auto &layer : measured.layers)
            r.push_back(layer.ratio);
        ratios.push_back(std::move(r));
    }

    Table table({"COMP_BW (GB/s)", "avg perf vs oracle",
                 "avg speedup over vDNN", "capped layers"});
    PerfModel perf;
    for (double comp_gbps :
         {25.0, 50.0, 75.0, 100.0, 150.0, 200.0, 236.0, 336.0}) {
        Accumulator relative, speedup;
        int capped = 0;
        for (size_t n = 0; n < nets.size(); ++n) {
            VdnnMemoryManager manager(nets[n], nets[n].default_batch);
            CdmaConfig config;
            config.gpu.comp_bandwidth = comp_gbps * 1e9;
            CdmaEngine engine(config);
            for (const auto &layer : ratios[n]) {
                if (layer * engine.config().gpu.pcie_bandwidth >
                    engine.config().gpu.comp_bandwidth) {
                    ++capped;
                }
            }
            StepSimulator sim(manager, engine, perf, CudnnVersion::V5);
            const StepResult oracle = sim.run(StepMode::Oracle);
            const StepResult vdnn = sim.run(StepMode::Vdnn);
            const StepResult cdma = sim.run(StepMode::Cdma, ratios[n]);
            relative.add(oracle.total_seconds / cdma.total_seconds);
            speedup.add(cdma.speedupOver(vdnn));
        }
        table.addRow({
            Table::num(comp_gbps, 0),
            Table::num(relative.mean(), 3),
            Table::num(speedup.mean(), 3),
            std::to_string(capped),
        });
    }
    table.print();
    std::printf("\n(expect saturation by ~200 GB/s, the paper's "
                "provisioning choice)\n");
    return 0;
}
