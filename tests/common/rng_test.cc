/** @file Unit tests for the deterministic random number generator. */

#include <gtest/gtest.h>

#include "common/rng.hh"

namespace cdma {
namespace {

TEST(Rng, SameSeedSameSequence)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() != b.next())
            ++differing;
    }
    EXPECT_GT(differing, 60);
}

TEST(Rng, UniformStaysInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(8);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntBoundedAndCoversRange)
{
    Rng rng(9);
    bool seen[10] = {};
    for (int i = 0; i < 5000; ++i) {
        const uint64_t v = rng.uniformInt(10);
        ASSERT_LT(v, 10u);
        seen[v] = true;
    }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, NormalHasApproximatelyUnitMoments)
{
    Rng rng(10);
    double sum = 0.0, sum_sq = 0.0;
    constexpr int kSamples = 200000;
    for (int i = 0; i < kSamples; ++i) {
        const double x = rng.normal();
        sum += x;
        sum_sq += x * x;
    }
    const double mean = sum / kSamples;
    const double var = sum_sq / kSamples - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(11);
    int hits = 0;
    constexpr int kTrials = 100000;
    for (int i = 0; i < kTrials; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(Rng, ForkProducesDecorrelatedStream)
{
    Rng parent(12);
    Rng child = parent.fork();
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (parent.next() == child.next())
            ++equal;
    }
    EXPECT_LT(equal, 4);
}

} // namespace
} // namespace cdma
