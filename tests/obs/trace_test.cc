/** @file Unit tests for the trace recorder and its simulator wiring. */

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cdma/fleet_sim.hh"
#include "obs/trace.hh"

namespace cdma {
namespace {

/** Small deterministic fleet for the integration-level trace tests. */
FleetSpec
smallFleet(unsigned gpus)
{
    FleetSpec spec;
    spec.gpu_count = gpus;
    spec.gpu_link_bandwidth = 12.0e9;
    spec.uplink_bandwidth = 12.0e9;
    spec.offload_raw_bytes = 8ull << 20;
    spec.prefetch_raw_bytes = 4ull << 20;
    spec.shard_raw_bytes = 2ull << 20;
    return spec;
}

TEST(TraceRecorder, TrackRegistrationIsIdempotent)
{
    obs::TraceRecorder trace;
    const obs::TrackId a = trace.track("gpu0", "compress");
    const obs::TrackId b = trace.track("gpu0", "wire.out");
    const obs::TrackId c = trace.track("gpu1", "compress");
    EXPECT_EQ(trace.track("gpu0", "compress"), a);
    EXPECT_NE(a, b);

    // Same process -> same pid; threads number within the process.
    EXPECT_EQ(trace.trackInfo(a).pid, trace.trackInfo(b).pid);
    EXPECT_NE(trace.trackInfo(a).pid, trace.trackInfo(c).pid);
    EXPECT_EQ(trace.trackInfo(a).tid, 1u);
    EXPECT_EQ(trace.trackInfo(b).tid, 2u);
    EXPECT_EQ(trace.trackInfo(c).tid, 1u);
    EXPECT_FALSE(trace.trackInfo(a).is_counter);

    // Counter tracks hang off the process at tid 0 and never collide
    // with a thread track of the same name.
    const obs::TrackId k = trace.counterTrack("gpu0", "compress");
    EXPECT_NE(k, a);
    EXPECT_EQ(trace.counterTrack("gpu0", "compress"), k);
    EXPECT_TRUE(trace.trackInfo(k).is_counter);
    EXPECT_EQ(trace.trackInfo(k).tid, 0u);
}

TEST(TraceRecorder, TickIsStrictlyMonotonic)
{
    obs::TraceRecorder trace;
    double last = 0.0;
    for (int i = 0; i < 5; ++i) {
        const double t = trace.tick();
        EXPECT_GT(t, last);
        last = t;
    }
}

TEST(TraceRecorder, JsonCarriesMetadataEventsAndLedger)
{
    obs::TraceRecorder trace;
    const obs::TrackId t = trace.track("gpu0", "compress");
    const obs::TrackId k = trace.counterTrack("gpu0", "occupancy");
    trace.span(t, "compress", 0.001, 0.002,
               obs::TraceArgs{{"shard", 3}, {"note", "zv"}});
    trace.instant(t, "landed", 0.002);
    trace.counter(k, 0.002, 0.5);
    trace.setTotal("wire_bytes.link0:out", 12345);

    const std::string json = trace.toJson();
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"gpu0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"compress\""), std::string::npos);
    // Times serialize as microseconds with fixed precision.
    EXPECT_NE(json.find("\"ph\":\"X\",\"ts\":1000.000,\"dur\":1000.000"),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"shard\":3"), std::string::npos);
    EXPECT_NE(json.find("\"note\":\"zv\""), std::string::npos);
    EXPECT_NE(json.find("\"wire_bytes.link0:out\":12345"),
              std::string::npos);
}

TEST(TraceRecorder, SpanNamesEscapeJsonMetacharacters)
{
    obs::TraceRecorder trace;
    const obs::TrackId t = trace.track("p", "t");
    trace.instant(t, "quote\"back\\slash\nnewline", 0.0);
    const std::string json = trace.toJson();
    EXPECT_NE(json.find("quote\\\"back\\\\slash\\nnewline"),
              std::string::npos);
}

TEST(TraceMacros, NullRecorderSkipsArgumentEvaluation)
{
    obs::TraceRecorder *trace = nullptr;
    int evaluations = 0;
    const auto touch = [&evaluations]() {
        ++evaluations;
        return 0.0;
    };
    CDMA_TRACE_SPAN(trace, 0, "x", touch(), touch());
    CDMA_TRACE_INSTANT(trace, 0, "x", touch());
    CDMA_TRACE_COUNTER(trace, 0, touch(), touch());
    EXPECT_EQ(evaluations, 0)
        << "disabled tracing must not evaluate macro arguments";
}

TEST(FleetTrace, SameSeedEmitsByteIdenticalJson)
{
    std::string first, second;
    for (std::string *out : {&first, &second}) {
        obs::TraceRecorder trace;
        FleetSpec spec = smallFleet(2);
        spec.trace = &trace;
        FleetSimulator(spec).run();
        EXPECT_GT(trace.eventCount(), 0u);
        *out = trace.toJson();
    }
    EXPECT_EQ(first, second);
}

TEST(FleetTrace, WireSpansConserveLinkLayerBytes)
{
    obs::TraceRecorder trace;
    FleetSpec spec = smallFleet(2);
    spec.trace = &trace;
    const FleetResult result = FleetSimulator(spec).run();

    // Sum the bytes args of every per-edge wire span, keyed by the
    // edge track's thread label ("<edge>:out" / "<edge>:in").
    std::map<std::string, uint64_t> traced;
    for (const auto &event : trace.events()) {
        if (event.phase != obs::TraceRecorder::Phase::Span ||
            event.name != "wire")
            continue;
        const auto &info = trace.trackInfo(event.track);
        if (info.process != "edges")
            continue;
        for (const auto &[key, value] : event.args) {
            if (key == "bytes")
                traced[info.thread] += value.u64();
        }
    }
    ASSERT_FALSE(traced.empty());
    for (const auto &edge : result.edges) {
        EXPECT_EQ(traced[edge.name + ":out"], edge.out_bytes)
            << edge.name;
        EXPECT_EQ(traced[edge.name + ":in"], edge.in_bytes) << edge.name;
    }
}

TEST(FleetTrace, DisabledTracingChangesNothing)
{
    FleetSpec spec = smallFleet(2);
    const FleetResult untraced = FleetSimulator(spec).run();

    obs::TraceRecorder trace;
    spec.trace = &trace;
    const FleetResult traced = FleetSimulator(spec).run();

    // The DES outcome is identical with and without observation.
    ASSERT_EQ(untraced.gpus.size(), traced.gpus.size());
    EXPECT_EQ(untraced.makespan_seconds, traced.makespan_seconds);
    for (size_t g = 0; g < untraced.gpus.size(); ++g) {
        EXPECT_EQ(untraced.gpus[g].finish_seconds,
                  traced.gpus[g].finish_seconds);
        EXPECT_EQ(untraced.gpus[g].uplink_wait_seconds,
                  traced.gpus[g].uplink_wait_seconds);
    }
    for (size_t e = 0; e < untraced.edges.size(); ++e) {
        EXPECT_EQ(untraced.edges[e].out_bytes, traced.edges[e].out_bytes);
        EXPECT_EQ(untraced.edges[e].in_bytes, traced.edges[e].in_bytes);
    }
}

TEST(ExtractFlag, StripsTheFlagAndShiftsArgv)
{
    char prog[] = "prog";
    char a[] = "--trace-out=/tmp/t.json";
    char b[] = "VGG";
    char *argv[] = {prog, a, b, nullptr};
    int argc = 3;
    EXPECT_EQ(obs::extractFlag(argc, argv, "trace-out"), "/tmp/t.json");
    EXPECT_EQ(argc, 2);
    EXPECT_STREQ(argv[1], "VGG");
    // Absent flag: untouched.
    EXPECT_EQ(obs::extractFlag(argc, argv, "metrics-out"), "");
    EXPECT_EQ(argc, 2);
}

} // namespace
} // namespace cdma
