#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace cdma {

void
EventQueue::scheduleAt(SimTime when, Callback callback)
{
    CDMA_ASSERT(when >= now_, "scheduling into the past: %g < %g", when,
                now_);
    events_.push({when, next_sequence_++, std::move(callback)});
}

void
EventQueue::scheduleAfter(SimTime delay, Callback callback)
{
    CDMA_ASSERT(delay >= 0.0, "negative delay %g", delay);
    scheduleAt(now_ + delay, std::move(callback));
}

uint64_t
EventQueue::run(uint64_t max_events)
{
    uint64_t executed = 0;
    while (!events_.empty() && executed < max_events) {
        // Copy out before pop: the callback may schedule new events.
        Event event = events_.top();
        events_.pop();
        now_ = event.when;
        ++executed;
        event.callback();
    }
    return executed;
}

void
EventQueue::reset()
{
    events_ = {};
    now_ = 0.0;
    next_sequence_ = 0;
}

} // namespace cdma
