/**
 * @file
 * Runtime backend selection for the kernel layer. The decision is made
 * exactly once (first use, thread-safe via the static-local guarantee):
 * CDMA_KERNEL_BACKEND wins when set — an unknown or CPU-unsupported name
 * is a configuration error, not a silent fallback — otherwise CPUID
 * picks the widest available backend. Codecs capture the chosen table at
 * construction, so a ParallelCompressor's lane workers all share the one
 * dispatch decision instead of re-deciding per window.
 */

#include "compress/kernels/kernels.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace cdma {

const KernelOps *
kernelsByName(std::string_view name)
{
    if (name == "scalar")
        return &scalarKernels();
    if (name == "avx2")
        return avx2Kernels();
    return nullptr;
}

std::vector<const KernelOps *>
supportedKernels()
{
    std::vector<const KernelOps *> backends = {&scalarKernels()};
    if (const KernelOps *avx2 = avx2Kernels())
        backends.push_back(avx2);
    return backends;
}

namespace {

const KernelOps &
selectKernels()
{
    const char *forced = std::getenv("CDMA_KERNEL_BACKEND");
    if (forced != nullptr && *forced != '\0') {
        // Empty counts as unset so CI matrices can pass the variable
        // through unconditionally.
        const KernelOps *ops = kernelsByName(forced);
        if (ops == nullptr) {
            fatal("CDMA_KERNEL_BACKEND='%s' is not a supported kernel "
                  "backend on this CPU (valid: scalar%s)",
                  forced, avx2Kernels() ? ", avx2" : "");
        }
        inform("kernel backend forced to '%s' via CDMA_KERNEL_BACKEND",
               ops->name);
        return *ops;
    }
    if (const KernelOps *avx2 = avx2Kernels())
        return *avx2;
    return scalarKernels();
}

} // namespace

const KernelOps &
activeKernels()
{
    static const KernelOps &selected = selectKernels();
    return selected;
}

} // namespace cdma
