#include "compress/zvc.hh"

#include <cstring>

#include "common/bits.hh"
#include "common/logging.hh"

namespace cdma {

ZvcCompressor::ZvcCompressor(uint64_t window_bytes)
    : Compressor(window_bytes)
{
}

uint64_t
ZvcCompressor::predictedBytes(uint64_t total_words, uint64_t nonzero_words)
{
    const uint64_t masks = ceilDiv(total_words, kMaskWords);
    return masks * sizeof(uint32_t) + nonzero_words * kWordBytes;
}

std::vector<uint8_t>
ZvcCompressor::compressWindow(std::span<const uint8_t> window) const
{
    std::vector<uint8_t> out;
    out.reserve(window.size() + window.size() / kMaskWords + 8);

    const uint64_t full_words = window.size() / kWordBytes;
    const uint64_t tail_bytes = window.size() % kWordBytes;

    uint64_t word = 0;
    while (word < full_words) {
        const uint64_t group =
            std::min<uint64_t>(kMaskWords, full_words - word);

        uint32_t mask = 0;
        for (uint64_t i = 0; i < group; ++i) {
            uint32_t value;
            std::memcpy(&value, window.data() + (word + i) * kWordBytes,
                        kWordBytes);
            if (value != 0)
                mask |= 1u << i;
        }

        const size_t mask_pos = out.size();
        out.resize(mask_pos + sizeof(uint32_t));
        std::memcpy(out.data() + mask_pos, &mask, sizeof(uint32_t));

        for (uint64_t i = 0; i < group; ++i) {
            if (mask & (1u << i)) {
                const uint8_t *src =
                    window.data() + (word + i) * kWordBytes;
                out.insert(out.end(), src, src + kWordBytes);
            }
        }
        word += group;
    }

    // Sub-word tail (only possible when the window is not a multiple of 4
    // bytes, e.g. the last window of an oddly sized buffer): stored raw.
    if (tail_bytes) {
        const uint8_t *src = window.data() + full_words * kWordBytes;
        out.insert(out.end(), src, src + tail_bytes);
    }
    return out;
}

std::vector<uint8_t>
ZvcCompressor::decompressWindow(std::span<const uint8_t> payload,
                                uint64_t original_bytes) const
{
    std::vector<uint8_t> out;
    out.reserve(original_bytes);

    const uint64_t full_words = original_bytes / kWordBytes;
    const uint64_t tail_bytes = original_bytes % kWordBytes;

    size_t cursor = 0;
    uint64_t word = 0;
    while (word < full_words) {
        const uint64_t group =
            std::min<uint64_t>(kMaskWords, full_words - word);
        CDMA_ASSERT(cursor + sizeof(uint32_t) <= payload.size(),
                    "ZVC payload truncated before mask");
        uint32_t mask;
        std::memcpy(&mask, payload.data() + cursor, sizeof(uint32_t));
        cursor += sizeof(uint32_t);

        for (uint64_t i = 0; i < group; ++i) {
            if (mask & (1u << i)) {
                CDMA_ASSERT(cursor + kWordBytes <= payload.size(),
                            "ZVC payload truncated in non-zero data");
                out.insert(out.end(), payload.data() + cursor,
                           payload.data() + cursor + kWordBytes);
                cursor += kWordBytes;
            } else {
                out.insert(out.end(), kWordBytes, 0);
            }
        }
        word += group;
    }

    if (tail_bytes) {
        CDMA_ASSERT(cursor + tail_bytes <= payload.size(),
                    "ZVC payload truncated in raw tail");
        out.insert(out.end(), payload.data() + cursor,
                   payload.data() + cursor + tail_bytes);
        cursor += tail_bytes;
    }
    CDMA_ASSERT(cursor == payload.size(),
                "ZVC payload has %zu trailing bytes",
                payload.size() - cursor);
    return out;
}

} // namespace cdma
