/**
 * @file
 * Async double-buffered offload pipeline — the engine-side realization of
 * the paper's Section V-C dataflow, where the cDMA unit compresses
 * activation data into a bandwidth-delay-sized staging buffer while the
 * PCIe DMA unit drains the previously filled buffer.
 *
 * Since the full-duplex refactor this scheduler is a thin facade over
 * TransferEngine: the real-bytes flows and the DES both run on the
 * unified duplex engine with the prefetch direction idle, which
 * degenerates exactly to the single-direction pipeline modeled here.
 * The OffloadTiming type and the allocation-free closed form
 * (modelFromRatio) are kept as that degenerate case; for uniform shards
 * (compression time c, wire time w, n shards) the double-buffered
 * makespan is
 *
 *     overlapped = n * max(c, w) + min(c, w)
 *
 * — one fill of the shorter stage plus the longer stage at its full rate —
 * which tests/cdma/offload_scheduler_test.cc pins against the duplex DES
 * to 1e-9 relative error.
 */

#ifndef CDMA_CDMA_OFFLOAD_SCHEDULER_HH
#define CDMA_CDMA_OFFLOAD_SCHEDULER_HH

#include <span>
#include <vector>

#include "cdma/transfer_engine.hh"

namespace cdma {

/**
 * Drives compression and models the double-buffered compress/transfer
 * pipeline for one cDMA engine (the offload-only view of the duplex
 * TransferEngine).
 */
class OffloadScheduler
{
  public:
    explicit OffloadScheduler(const CdmaEngine &engine);

    /** Windows per staging shard (>= 1), from CdmaConfig::shard_bytes. */
    uint64_t shardWindows() const { return engine_.shardWindows(); }

    /**
     * Offload @p data: compress it shard-by-shard on the engine's lanes,
     * stitch the shards into a CompressedBuffer as they drain (in shard
     * order, while later shards are still compressing), and model the
     * double-buffered pipeline over the measured per-shard sizes.
     */
    OffloadResult offload(std::span<const uint8_t> data) const;

    /**
     * Offload @p data into @p arena: shards stream from the compression
     * lanes straight into recycled arena slots (no stitched
     * CompressedBuffer, no per-layer payload allocation in steady
     * state), modeling the same double-buffered pipeline. The returned
     * ticket holds the compressed activations until the backward pass
     * prefetches and releases them. With a fault injector configured,
     * crossings sample the fault process and retry under the engine's
     * RetryPolicy (see TransferEngine::offloadInto).
     */
    StatusOr<SpilledOffload> offloadInto(std::span<const uint8_t> data,
                                         SpillArena &arena) const;

    /**
     * Pipeline timing for a transfer of @p raw_bytes at a known
     * compression ratio (the analytic path): uniform staging shards at
     * ratio, a trailing partial shard when raw_bytes is not a multiple
     * of the shard size.
     *
     * Allocation-free closed form instead of a DES replay. For n uniform
     * shards (compression time c, wire time w) the double-buffered
     * makespan is n*max(c, w) + min(c, w); a trailing partial shard
     * (c_t <= c, w_t <= w) extends it to
     *
     *   wire-bound  (w >= c): c + n*w + w_t
     *   comp-bound  (c >  w): n*c + max(c_t, w) + w_t
     *
     * and one staging buffer degenerates to full serialization. The
     * duplex DES (pipelineTiming) is kept as the reference; the tests
     * pin equality between the two paths to 1e-9 relative error.
     */
    OffloadTiming modelFromRatio(uint64_t raw_bytes, double ratio) const;

    /**
     * The single-direction pipeline reference: the duplex DES
     * (TransferEngine::pipelineTiming) with the prefetch direction
     * idle. Shard k's compression starts when the compression engine is
     * free AND a staging buffer is free (shard k - staging_buffers + 1
     * has drained); its wire transfer starts when its compression ends
     * and the channel is free (FIFO).
     */
    static OffloadTiming pipelineTiming(std::span<const ShardTransfer> shards,
                                        double compress_bandwidth,
                                        double wire_bandwidth,
                                        unsigned staging_buffers = 2);

  private:
    TransferEngine engine_;
};

} // namespace cdma

#endif // CDMA_CDMA_OFFLOAD_SCHEDULER_HH
