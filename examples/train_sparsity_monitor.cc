/**
 * @file
 * Example: watch activation sparsity evolve while training your own
 * network — the measurement loop behind the paper's Section IV study,
 * applied to a user-defined model. Builds a small CNN with the public
 * layer API, trains it on the synthetic dataset, and prints a density
 * dashboard every few iterations, ending with the compression ratio cDMA
 * would achieve on each layer's activations.
 *
 * Run: ./build/examples/train_sparsity_monitor [iterations]
 */

#include <cstdio>
#include <cstdlib>

#include "common/rng.hh"
#include "compress/compressor.hh"
#include "data/synthetic.hh"
#include "dnn/activation.hh"
#include "dnn/conv.hh"
#include "dnn/fc.hh"
#include "dnn/pool.hh"
#include "dnn/trainer.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh" // extractFlag

using namespace cdma;

int
main(int argc, char **argv)
{
    const std::string metrics_out =
        obs::extractFlag(argc, argv, "metrics-out");
    const int iterations = argc > 1 ? std::atoi(argv[1]) : 200;

    // A custom model, assembled from the public layer API.
    Rng rng(99);
    Network net;
    net.add(std::make_unique<Conv2D>("stem", 3, ConvSpec{12, 5, 1, 2},
                                     rng));
    net.add(std::make_unique<ReLU>("stem_relu"));
    net.add(std::make_unique<Pool2D>("pool1",
                                     PoolSpec{2, 2, PoolMode::Max}));
    net.add(std::make_unique<Conv2D>("body", 12, ConvSpec{24, 3, 1, 1},
                                     rng));
    net.add(std::make_unique<ReLU>("body_relu"));
    net.add(std::make_unique<Pool2D>("pool2",
                                     PoolSpec{2, 2, PoolMode::Max}));
    net.add(std::make_unique<FullyConnected>("head", 24 * 8 * 8, 10,
                                             rng));

    SyntheticDataset dataset;
    TrainConfig config;
    config.iterations = iterations;
    config.batch_size = 16;
    config.snapshot_every = std::max(1, iterations / 8);

    // Every number the dashboard prints is first recorded into the
    // registry, and the printed lines read it back — the console and
    // the --metrics-out export share one accumulation.
    obs::MetricsRegistry metrics;

    std::printf("%-9s %-7s %-9s", "iter", "loss", "accuracy");
    Trainer trainer(net, dataset, config);
    bool header_done = false;

    trainer.run([&](const TrainSnapshot &snap) {
        if (!header_done) {
            for (const auto &record : snap.records)
                std::printf(" %-8s", record.label.c_str());
            std::printf("\n");
            header_done = true;
        }
        metrics.counter("train.snapshots").add();
        metrics.histogram("train.loss").record(snap.loss);
        metrics.gauge("train.accuracy").set(snap.train_accuracy);
        std::printf("%-9d %-7.3f %-9.2f", snap.iteration, snap.loss,
                    snap.train_accuracy);
        for (const auto &record : snap.records) {
            metrics.histogram("train.density." + record.label)
                .record(record.density);
            std::printf(" %-8.2f", record.density);
        }
        std::printf("\n");
    });

    // What would cDMA save on the final activations?
    std::printf("\ncDMA-ZV compression of the trained activations "
                "(density averaged over %llu snapshots):\n",
                static_cast<unsigned long long>(
                    metrics.counter("train.snapshots").value()));
    const auto zvc = makeCompressor(Algorithm::Zvc);
    for (const auto &record : net.activationRecords()) {
        const Tensor4D &map = net.outputs()[record.output_index];
        obs::Gauge &ratio =
            metrics.gauge("train.final_ratio." + record.label);
        ratio.set(zvc->measureRatio(map.rawBytes()));
        std::printf("  %-8s %8.1f KB  density %.2f (avg %.2f)  "
                    "ratio %.2fx\n",
                    record.label.c_str(),
                    static_cast<double>(map.bytes()) / 1024.0,
                    record.density,
                    metrics.histogram("train.density." + record.label)
                        .mean(),
                    ratio.value());
    }
    obs::Gauge &validation = metrics.gauge("train.validation_accuracy");
    validation.set(trainer.evaluate(4));
    std::printf("\nvalidation accuracy: %.1f%%\n",
                100.0 * validation.value());
    if (!metrics_out.empty()) {
        metrics.writeFileOrDie(metrics_out);
        std::printf("wrote metrics: %s\n", metrics_out.c_str());
    }
    return 0;
}
