/**
 * @file
 * Canonical Huffman coding with a bounded maximum code length, as used by
 * the DEFLATE-style compressor. Code lengths are computed from symbol
 * frequencies, limited to kMaxCodeLength bits (rebalanced when the raw
 * Huffman tree is deeper), and turned into canonical codes so only the
 * length table needs to be serialized.
 */

#ifndef CDMA_COMPRESS_HUFFMAN_HH
#define CDMA_COMPRESS_HUFFMAN_HH

#include <cstdint>
#include <vector>

#include "compress/bitstream.hh"

namespace cdma {

/**
 * Compute length-limited Huffman code lengths for @p freqs.
 *
 * Symbols with zero frequency get length 0 (no code). If only one symbol
 * has nonzero frequency it still receives a 1-bit code so the decoder can
 * make progress.
 *
 * @param freqs Symbol frequencies.
 * @param max_length Longest permitted code in bits.
 * @return One length per symbol.
 */
std::vector<uint8_t> buildCodeLengths(const std::vector<uint64_t> &freqs,
                                      int max_length);

/**
 * Scratch-reusing form of buildCodeLengths(): @p lengths is resized and
 * overwritten in place, so a caller-held (typically per-thread) vector
 * stops allocating once it has reached the alphabet size. The DEFLATE
 * window loop is the intended caller — the per-window code-length
 * vectors were the ZL path's last steady-state allocations.
 */
void buildCodeLengthsInto(const std::vector<uint64_t> &freqs,
                          int max_length, std::vector<uint8_t> &lengths);

/** Canonical Huffman encoder built from a code-length table. */
class HuffmanEncoder
{
  public:
    /** Empty encoder; rebuild() before encoding (scratch reuse). */
    HuffmanEncoder() = default;

    /** Build canonical codes from @p lengths (one per symbol). */
    explicit HuffmanEncoder(const std::vector<uint8_t> &lengths);

    /**
     * Rebuild the canonical codes from @p lengths in place, reusing the
     * existing table capacity — allocation-free once the encoder has
     * seen the alphabet size (one encoder per thread per alphabet).
     */
    void rebuild(const std::vector<uint8_t> &lengths);

    /** Emit the code for @p symbol. @pre symbol has a nonzero length. */
    void encode(BitWriter &writer, int symbol) const;

    /** Code length of @p symbol in bits (0 = unused symbol). */
    int length(int symbol) const
    {
        return lengths_[static_cast<size_t>(symbol)];
    }

  private:
    std::vector<uint8_t> lengths_;
    std::vector<uint32_t> codes_;
};

/**
 * Canonical Huffman decoder. Decodes one symbol at a time by walking the
 * canonical code space; code lengths are bounded (<= 15 bits) so decode is
 * O(max_length) per symbol, which is plenty for a functional model.
 */
class HuffmanDecoder
{
  public:
    /** decode() result when no code of any length matches the stream. */
    static constexpr int kInvalidSymbol = -1;

    /** Empty decoder; rebuild() before decoding (scratch reuse). */
    HuffmanDecoder() = default;

    /** Build the decode tables from the same lengths used to encode. */
    explicit HuffmanDecoder(const std::vector<uint8_t> &lengths);

    /**
     * Rebuild the decode tables from @p lengths in place, reusing the
     * existing table capacity — allocation-free once the decoder has
     * seen the alphabet size (one decoder per thread per alphabet, the
     * prefetch-side mirror of HuffmanEncoder::rebuild).
     */
    void rebuild(const std::vector<uint8_t> &lengths);

    /**
     * Decode the next symbol from @p reader. Returns kInvalidSymbol when
     * the bits match no assigned code (a corrupt stream) — recoverable,
     * so a flipped wire bit cannot take the process down.
     */
    int decode(BitReader &reader) const;

  private:
    std::vector<int> symbols_; // symbols sorted by (length, symbol)
    std::vector<uint16_t> count_; // number of codes of each length
    int max_length_ = 0;
};

} // namespace cdma

#endif // CDMA_COMPRESS_HUFFMAN_HH
