#include "data/synthetic.hh"

#include <cmath>

#include "common/logging.hh"

namespace cdma {

SyntheticDataset::SyntheticDataset(const SyntheticDataConfig &config)
    : config_(config), train_rng_(config.seed),
      val_rng_(config.seed ^ 0xABCDEF0123456789ull)
{
    CDMA_ASSERT(config.classes >= 2, "need at least two classes");
    CDMA_ASSERT(config.channels >= 1 && config.height >= 8 &&
                    config.width >= 8,
                "image geometry too small");
}

void
SyntheticDataset::renderSample(Tensor4D &image, int64_t n, int label,
                               Rng &rng) const
{
    const auto h = static_cast<double>(config_.height);
    const auto w = static_cast<double>(config_.width);

    // Class-specific grating: orientation and frequency are functions of
    // the label; phase jitters per sample.
    const double angle = M_PI * static_cast<double>(label) /
        static_cast<double>(config_.classes);
    const double freq = 2.0 + 1.5 * static_cast<double>(
        label % 4);
    const double phase = rng.uniform(0.0, 2.0 * M_PI);
    const double cos_a = std::cos(angle);
    const double sin_a = std::sin(angle);

    // Class-positioned blob.
    const double blob_cx = w * (0.25 + 0.5 * ((label * 7) % 10) / 10.0) +
        rng.normal(0.0, 1.0);
    const double blob_cy = h * (0.25 + 0.5 * ((label * 3) % 10) / 10.0) +
        rng.normal(0.0, 1.0);
    const double blob_r = 0.18 * std::min(h, w);

    for (int64_t c = 0; c < config_.channels; ++c) {
        // Per-class channel gains make color informative.
        const double gain =
            0.4 + 0.6 * (((label + static_cast<int>(c) * 3) % 5) / 4.0);
        for (int64_t y = 0; y < config_.height; ++y) {
            for (int64_t x = 0; x < config_.width; ++x) {
                const double u = static_cast<double>(x) / w;
                const double v = static_cast<double>(y) / h;
                const double proj = cos_a * u + sin_a * v;
                double value =
                    gain * std::sin(2.0 * M_PI * freq * proj + phase);

                const double dx = static_cast<double>(x) - blob_cx;
                const double dy = static_cast<double>(y) - blob_cy;
                const double dist2 = dx * dx + dy * dy;
                value += 1.2 * gain *
                    std::exp(-dist2 / (2.0 * blob_r * blob_r));

                value += rng.normal(0.0, config_.noise_stddev);
                image.at(n, c, y, x) = static_cast<float>(value);
            }
        }
    }
}

Minibatch
SyntheticDataset::makeBatch(int64_t batch_size, Rng &rng)
{
    Minibatch batch{
        Tensor4D(Shape4D{batch_size, config_.channels, config_.height,
                         config_.width}),
        std::vector<int>(static_cast<size_t>(batch_size), 0)};
    for (int64_t n = 0; n < batch_size; ++n) {
        const int label = static_cast<int>(
            rng.uniformInt(static_cast<uint64_t>(config_.classes)));
        batch.labels[static_cast<size_t>(n)] = label;
        renderSample(batch.images, n, label, rng);
    }
    return batch;
}

Minibatch
SyntheticDataset::nextTrainBatch(int64_t batch_size)
{
    return makeBatch(batch_size, train_rng_);
}

Minibatch
SyntheticDataset::nextValBatch(int64_t batch_size)
{
    return makeBatch(batch_size, val_rng_);
}

} // namespace cdma
