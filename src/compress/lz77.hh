/**
 * @file
 * LZ77 tokenizer for the DEFLATE-style compressor: greedy hash-chain
 * matching with the RFC 1951 limits (match length 3..258, distance up to
 * 32768).
 */

#ifndef CDMA_COMPRESS_LZ77_HH
#define CDMA_COMPRESS_LZ77_HH

#include <cstdint>
#include <span>
#include <vector>

namespace cdma {

/** One LZ77 token: either a literal byte or a (length, distance) match. */
struct Lz77Token {
    bool is_match = false;
    uint8_t literal = 0;   ///< valid when !is_match
    uint16_t length = 0;   ///< match length, 3..258
    uint16_t distance = 0; ///< match distance, 1..32768
};

/** Tuning knobs for the matcher. */
struct Lz77Config {
    int max_chain = 64;          ///< hash-chain positions probed per match
    uint16_t min_match = 3;      ///< shortest emitted match
    uint16_t max_match = 258;    ///< longest emitted match
    uint32_t max_distance = 32768; ///< history window
};

/** Tokenize @p input greedily. */
std::vector<Lz77Token> lz77Tokenize(std::span<const uint8_t> input,
                                    const Lz77Config &config = {});

/** Reconstruct the byte stream a token sequence encodes. */
std::vector<uint8_t> lz77Reconstruct(const std::vector<Lz77Token> &tokens);

} // namespace cdma

#endif // CDMA_COMPRESS_LZ77_HH
