#include "gpu/dma_buffer.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cdma {

DmaBufferModel::DmaBufferModel(const DmaBufferConfig &config)
    : config_(config)
{
    CDMA_ASSERT(config.fetch_bandwidth > 0 && config.pcie_bandwidth > 0 &&
                    config.line_bytes > 0,
                "invalid DMA buffer configuration");
}

uint64_t
DmaBufferModel::requiredBufferBytes() const
{
    return static_cast<uint64_t>(config_.fetch_bandwidth *
                                 config_.dma_latency);
}

DmaBufferStats
DmaBufferModel::replay(const std::vector<uint32_t> &line_sizes) const
{
    DmaBufferStats stats;
    if (line_sizes.empty())
        return stats;

    const size_t n = line_sizes.size();
    const double fetch_time =
        static_cast<double>(config_.line_bytes) / config_.fetch_bandwidth;

    // Credit-based flow control: at most window_lines raw lines may be
    // issued-but-not-drained, where the window is the bandwidth-delay
    // product — the Section V-C sizing rule under test.
    const uint64_t window_lines = std::max<uint64_t>(
        1, requiredBufferBytes() / config_.line_bytes);

    std::vector<double> arrive(n), drain_end(n);
    double prev_fetch_end = 0.0;
    double prev_drain_end = 0.0;

    for (size_t i = 0; i < n; ++i) {
        // Wait for a credit: the line window_lines back must have fully
        // drained before this request may issue.
        double ready = 0.0;
        if (i >= window_lines)
            ready = drain_end[i - window_lines];
        const double fetch_start = std::max(prev_fetch_end, ready);
        prev_fetch_end = fetch_start + fetch_time;
        arrive[i] = prev_fetch_end + config_.dma_latency;

        const double service =
            static_cast<double>(line_sizes[i]) / config_.pcie_bandwidth;
        const double drain_start = std::max(arrive[i], prev_drain_end);
        drain_end[i] = drain_start + service;
        prev_drain_end = drain_end[i];

        stats.total_fetched_bytes += config_.line_bytes;
        stats.total_drained_bytes += line_sizes[i];
    }

    // Sweep the arrival/departure events for peak compressed occupancy.
    struct Edge {
        double when;
        int64_t delta;
    };
    std::vector<Edge> edges;
    edges.reserve(2 * n);
    for (size_t i = 0; i < n; ++i) {
        edges.push_back({arrive[i], static_cast<int64_t>(line_sizes[i])});
        edges.push_back({drain_end[i],
                         -static_cast<int64_t>(line_sizes[i])});
    }
    std::sort(edges.begin(), edges.end(),
              [](const Edge &a, const Edge &b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  return a.delta < b.delta; // departures first on ties
              });
    int64_t occupancy = 0;
    int64_t peak = 0;
    for (const Edge &edge : edges) {
        occupancy += edge.delta;
        peak = std::max(peak, occupancy);
    }

    stats.peak_occupancy_bytes = static_cast<uint64_t>(peak);
    stats.elapsed_seconds = prev_drain_end;
    double busy = 0.0;
    for (size_t i = 0; i < n; ++i)
        busy += static_cast<double>(line_sizes[i]) /
            config_.pcie_bandwidth;
    stats.pcie_busy_fraction =
        prev_drain_end > 0.0 ? busy / prev_drain_end : 0.0;
    return stats;
}

} // namespace cdma
