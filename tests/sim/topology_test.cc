/**
 * @file
 * Tests for the interconnect topology graph and its live LinkNetwork:
 * deterministic routing, byte conservation across graph cuts, busy-time
 * vs makespan bounds, and — the compatibility anchor — the degenerate
 * two-node graph reproducing a raw DuplexChannel's timeline exactly.
 */

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "sim/topology.hh"

namespace cdma {
namespace {

using Direction = DuplexChannel::Direction;

LinkProps
props(double bandwidth, DuplexMode mode = DuplexMode::Full,
      LinkArbiter arbiter = LinkArbiter::RoundRobin)
{
    LinkProps p;
    p.bytes_per_second = bandwidth;
    p.mode = mode;
    p.arbiter = arbiter;
    return p;
}

/** The 2-GPU star: gpu0/gpu1 -> switch -> host -> ssd. */
struct Star {
    Topology graph;
    NodeId gpu0, gpu1, sw, host, ssd;
    LinkId leg0, leg1, uplink, nvme;

    explicit Star(double bandwidth = 100.0,
                  DuplexMode mode = DuplexMode::Full)
    {
        sw = graph.addNode(NodeKind::PcieSwitch, "switch0");
        host = graph.addNode(NodeKind::HostDram, "host");
        ssd = graph.addNode(NodeKind::NvmeSsd, "ssd0");
        gpu0 = graph.addNode(NodeKind::Gpu, "gpu0");
        gpu1 = graph.addNode(NodeKind::Gpu, "gpu1");
        leg0 = graph.connect(gpu0, sw, "pcie.gpu0",
                             props(bandwidth, mode));
        leg1 = graph.connect(gpu1, sw, "pcie.gpu1",
                             props(bandwidth, mode));
        uplink = graph.connect(sw, host, "pcie.uplink",
                               props(bandwidth, mode));
        nvme = graph.connect(host, ssd, "nvme0", props(bandwidth, mode));
    }
};

TEST(Topology, RoutesFewestHopsDeterministically)
{
    Star star;
    const Route route = star.graph.route(star.gpu0, star.host);
    ASSERT_EQ(route.hopCount(), 2u);
    EXPECT_EQ(route.hops[0].link, star.leg0);
    EXPECT_EQ(route.hops[0].direction, Direction::Out); // gpu0 is `a`
    EXPECT_EQ(route.hops[1].link, star.uplink);
    EXPECT_EQ(route.hops[1].direction, Direction::Out);

    // GPU -> SSD threads through the switch and host.
    EXPECT_EQ(star.graph.route(star.gpu0, star.ssd).hopCount(), 3u);
    // Self-route is empty.
    EXPECT_TRUE(star.graph.route(star.host, star.host).empty());
}

TEST(Topology, ReversedRouteFlipsHopsAndDirections)
{
    Star star;
    const Route out = star.graph.route(star.gpu1, star.host);
    const Route back = out.reversed();
    EXPECT_EQ(back.from, star.host);
    EXPECT_EQ(back.to, star.gpu1);
    ASSERT_EQ(back.hopCount(), 2u);
    EXPECT_EQ(back.hops[0].link, star.uplink);
    EXPECT_EQ(back.hops[0].direction, Direction::In);
    EXPECT_EQ(back.hops[1].link, star.leg1);
    EXPECT_EQ(back.hops[1].direction, Direction::In);
}

TEST(Topology, EqualLengthTieBreaksTowardLowestLinkId)
{
    // A diamond: two 2-hop paths from src to dst.
    Topology graph;
    const NodeId src = graph.addNode(NodeKind::Gpu, "src");
    const NodeId mid_a = graph.addNode(NodeKind::PcieSwitch, "mid_a");
    const NodeId mid_b = graph.addNode(NodeKind::PcieSwitch, "mid_b");
    const NodeId dst = graph.addNode(NodeKind::HostDram, "dst");
    const LinkId a0 = graph.connect(src, mid_a, "a0", props(100.0));
    graph.connect(src, mid_b, "b0", props(100.0));
    const LinkId a1 = graph.connect(mid_a, dst, "a1", props(100.0));
    graph.connect(mid_b, dst, "b1", props(100.0));

    const Route route = graph.route(src, dst);
    ASSERT_EQ(route.hopCount(), 2u);
    EXPECT_EQ(route.hops[0].link, a0);
    EXPECT_EQ(route.hops[1].link, a1);
}

TEST(Topology, NodeKindLookups)
{
    Star star;
    EXPECT_EQ(star.graph.firstNode(NodeKind::Gpu), star.gpu0);
    EXPECT_EQ(star.graph.firstNode(NodeKind::HostDram), star.host);
    EXPECT_EQ(star.graph.nodesOfKind(NodeKind::Gpu),
              (std::vector<NodeId>{star.gpu0, star.gpu1}));
    EXPECT_EQ(star.graph.linksAt(star.sw).size(), 3u);
}

TEST(LinkNetwork, ConservesBytesAcrossEveryCut)
{
    Star star;
    EventQueue queue;
    LinkNetwork network(queue, star.graph);

    // gpu0 and gpu1 each push 1000 host-bound bytes; host pushes 400
    // back to gpu1. Every graph cut must see exactly the bytes that
    // crossed it.
    network.submit(star.graph.route(star.gpu0, star.host), 1000, {});
    network.submit(star.graph.route(star.gpu1, star.host), 1000, {});
    network.submit(star.graph.route(star.host, star.gpu1), 400, {});
    queue.run();

    EXPECT_EQ(network.edgeBytes(star.leg0, Direction::Out), 1000u);
    EXPECT_EQ(network.edgeBytes(star.leg1, Direction::Out), 1000u);
    // The uplink cut sees both GPUs' offload bytes...
    EXPECT_EQ(network.edgeBytes(star.uplink, Direction::Out), 2000u);
    // ...and the prefetch bytes in the opposite direction.
    EXPECT_EQ(network.edgeBytes(star.uplink, Direction::In), 400u);
    EXPECT_EQ(network.edgeBytes(star.leg1, Direction::In), 400u);
    EXPECT_EQ(network.edgeBytes(star.leg0, Direction::In), 0u);
    // Nothing was routed to the SSD tier.
    EXPECT_EQ(network.edgeBytes(star.nvme, Direction::Out), 0u);
    EXPECT_EQ(network.edgeBytes(star.nvme, Direction::In), 0u);
}

TEST(LinkNetwork, MultiHopStoreAndForwardChainsServices)
{
    Star star(100.0);
    EventQueue queue;
    LinkNetwork network(queue, star.graph);

    RouteGrant grant;
    network.submit(star.graph.route(star.gpu0, star.host), 100,
                   [&](const RouteGrant &g) { grant = g; });
    queue.run();

    // Two idle 100 B/s hops at 100 bytes each: 1 s per hop, chained.
    EXPECT_NEAR(grant.start, 0.0, 1e-12);
    EXPECT_NEAR(grant.end, 2.0, 1e-12);
    EXPECT_NEAR(grant.service_seconds, 2.0, 1e-12);
    EXPECT_NEAR(grant.opposing_wait, 0.0, 1e-12);
    EXPECT_NEAR(grant.cross_source_wait, 0.0, 1e-12);
}

TEST(LinkNetwork, PerEdgeBusyTimeBoundsMakespan)
{
    Star star(100.0, DuplexMode::Half);
    EventQueue queue;
    LinkNetwork network(queue, star.graph);

    for (int i = 0; i < 3; ++i) {
        network.submit(star.graph.route(star.gpu0, star.host), 100, {},
                       0.0, 0);
        network.submit(star.graph.route(star.gpu1, star.host), 100, {},
                       0.0, 1);
    }
    queue.run();
    const SimTime makespan = queue.now();

    // Each edge's occupied wall-clock never exceeds the makespan, and
    // the bottleneck (uplink) carries all 6 crossings: 6 s of service.
    for (LinkId l = 0; l < star.graph.linkCount(); ++l) {
        EXPECT_LE(network.channel(l).occupiedSeconds(),
                  makespan + 1e-12);
        EXPECT_LE(network.utilization(l), 1.0 + 1e-12);
    }
    EXPECT_NEAR(network.channel(star.uplink).busySeconds(), 6.0, 1e-9);
    // The serialized uplink paces the run: makespan >= its busy time.
    EXPECT_GE(makespan, 6.0 - 1e-12);
}

TEST(LinkNetwork, ExtraLatencyRidesTheFirstHopOnly)
{
    Star star(100.0);
    EventQueue queue;
    LinkNetwork network(queue, star.graph);
    RouteGrant grant;
    network.submit(star.graph.route(star.gpu0, star.host), 100,
                   [&](const RouteGrant &g) { grant = g; }, 0.5);
    queue.run();
    EXPECT_NEAR(grant.end, 2.5, 1e-12);
}

TEST(LinkNetwork, EmptyRouteCompletesImmediately)
{
    Star star;
    EventQueue queue;
    LinkNetwork network(queue, star.graph);
    RouteGrant grant{-1.0, -1.0, -1.0, -1.0, -1.0, -1.0};
    network.submit(star.graph.route(star.host, star.host), 100,
                   [&](const RouteGrant &g) { grant = g; });
    queue.run();
    EXPECT_NEAR(grant.end, 0.0, 1e-12);
    EXPECT_NEAR(grant.service_seconds, 0.0, 1e-12);
}

TEST(LinkNetwork, CrossSourceWaitAttributesForeignTraffic)
{
    // One shared edge, two sources, same direction: the second source's
    // transfer waits exactly the first's service time, and that wait is
    // attributed as cross-source (not opposing-direction) stall.
    auto topo = Topology::pcieLink(100.0);
    EventQueue queue;
    LinkNetwork network(queue, *topo);
    const Route route = topo->route(topo->firstNode(NodeKind::Gpu),
                                    topo->firstNode(NodeKind::HostDram));
    RouteGrant first, second;
    network.submit(route, 100, [&](const RouteGrant &g) { first = g; },
                   0.0, /*source=*/0);
    network.submit(route, 100, [&](const RouteGrant &g) { second = g; },
                   0.0, /*source=*/1);
    queue.run();

    EXPECT_NEAR(first.cross_source_wait, 0.0, 1e-12);
    EXPECT_NEAR(second.cross_source_wait, 1.0, 1e-12);
    EXPECT_NEAR(second.end, 2.0, 1e-12);
    // Same two transfers under one tag: no cross-source stall at all.
    EventQueue queue2;
    LinkNetwork network2(queue2, *topo);
    RouteGrant tagged;
    network2.submit(route, 100, {});
    network2.submit(route, 100,
                    [&](const RouteGrant &g) { tagged = g; });
    queue2.run();
    EXPECT_NEAR(tagged.cross_source_wait, 0.0, 1e-12);
}

/**
 * The compatibility anchor: on the degenerate two-node graph, a routed
 * submission's grant must match a raw DuplexChannel submission's grant
 * field for field, for both duplex modes, with mixed directions in
 * flight.
 */
class TwoNodePinEquivalence
    : public ::testing::TestWithParam<DuplexMode>
{
};

TEST_P(TwoNodePinEquivalence, RoutedGrantsMatchRawChannelGrants)
{
    const DuplexMode mode = GetParam();
    const double bandwidth = 100.0;

    // Mixed schedule: interleaved offloads and prefetches of varying
    // sizes, submitted at staggered times.
    struct Sub {
        SimTime at;
        Direction direction;
        uint64_t bytes;
    };
    const std::vector<Sub> schedule = {
        {0.0, Direction::Out, 150}, {0.0, Direction::In, 100},
        {0.5, Direction::Out, 50},  {1.25, Direction::In, 300},
        {1.25, Direction::Out, 75}, {4.0, Direction::In, 25},
    };

    // Reference: the raw channel.
    std::vector<DuplexChannel::Grant> raw(schedule.size());
    {
        EventQueue queue;
        DuplexChannel channel(queue, "pcie", bandwidth, mode);
        for (size_t i = 0; i < schedule.size(); ++i) {
            queue.scheduleAt(schedule[i].at, [&, i] {
                channel.submit(schedule[i].direction, schedule[i].bytes,
                               [&raw, i](const DuplexChannel::Grant &g) {
                                   raw[i] = g;
                               });
            });
        }
        queue.run();
    }

    // Same schedule routed over the two-node graph.
    std::vector<RouteGrant> routed(schedule.size());
    {
        auto topo = Topology::pcieLink(bandwidth, mode);
        EventQueue queue;
        LinkNetwork network(queue, *topo);
        const Route out =
            topo->route(topo->firstNode(NodeKind::Gpu),
                        topo->firstNode(NodeKind::HostDram));
        const Route in = out.reversed();
        for (size_t i = 0; i < schedule.size(); ++i) {
            queue.scheduleAt(schedule[i].at, [&, i] {
                network.submit(
                    schedule[i].direction == Direction::Out ? out : in,
                    schedule[i].bytes,
                    [&routed, i](const RouteGrant &g) { routed[i] = g; });
            });
        }
        queue.run();
    }

    for (size_t i = 0; i < schedule.size(); ++i) {
        EXPECT_NEAR(routed[i].queued_at, raw[i].queued_at, 1e-9) << i;
        EXPECT_NEAR(routed[i].start, raw[i].start, 1e-9) << i;
        EXPECT_NEAR(routed[i].end, raw[i].end, 1e-9) << i;
        EXPECT_NEAR(routed[i].service_seconds, raw[i].end - raw[i].start,
                    1e-9)
            << i;
        EXPECT_NEAR(routed[i].opposing_wait, raw[i].opposing_wait, 1e-9)
            << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Modes, TwoNodePinEquivalence,
                         ::testing::Values(DuplexMode::Full,
                                           DuplexMode::Half));

TEST(Topology, PcieLinkIsTheDegenerateTwoNodeGraph)
{
    auto topo = Topology::pcieLink(16e9, DuplexMode::Half,
                                   LinkArbiter::OffloadFirst);
    EXPECT_EQ(topo->nodeCount(), 2u);
    ASSERT_EQ(topo->linkCount(), 1u);
    const TopologyLink &link = topo->link(0);
    EXPECT_DOUBLE_EQ(link.props.bytes_per_second, 16e9);
    EXPECT_EQ(link.props.mode, DuplexMode::Half);
    EXPECT_EQ(link.props.arbiter, LinkArbiter::OffloadFirst);
    EXPECT_EQ(topo->route(topo->firstNode(NodeKind::Gpu),
                          topo->firstNode(NodeKind::HostDram))
                  .hopCount(),
              1u);
}

} // namespace
} // namespace cdma
