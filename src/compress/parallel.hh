/**
 * @file
 * Parallel window fan-out over any windowed Compressor — the software
 * analogue of the paper's replicated compression/decompression pipelines
 * (Section V-B provisions enough CPE/DPE replicas that the ZVC engine
 * matches the DMA link rate). Windows are independent by construction, so
 * a buffer's window list is partitioned into contiguous shards, each lane
 * compresses its shard into a privately reserved payload via the
 * streaming compressWindowInto() API, and the shards are stitched with
 * pre-sized bulk copies. The result is bit-identical to the serial
 * Compressor::compress() on every input.
 */

#ifndef CDMA_COMPRESS_PARALLEL_HH
#define CDMA_COMPRESS_PARALLEL_HH

#include <memory>

#include "common/thread_pool.hh"
#include "compress/compressor.hh"

namespace cdma {

/** Multi-threaded wrapper around a serial windowed compressor. */
class ParallelCompressor
{
  public:
    /**
     * @param algorithm Codec replicated across the lanes.
     * @param window_bytes Compression window.
     * @param lanes Worker lanes (including the caller). 0 = one per
     *        hardware thread; 1 = serial (no pool, no synchronization).
     */
    explicit ParallelCompressor(
        Algorithm algorithm,
        uint64_t window_bytes = Compressor::kDefaultWindowBytes,
        unsigned lanes = 0);

    /** Wrap an existing codec (must be stateless/thread-safe, as all
     *  in-tree codecs are). */
    ParallelCompressor(std::unique_ptr<Compressor> codec, unsigned lanes);

    /** Algorithm tag of the underlying codec. */
    std::string name() const { return codec_->name(); }

    /** Compression window in bytes. */
    uint64_t windowBytes() const { return codec_->windowBytes(); }

    /** Execution lanes. */
    unsigned lanes() const { return pool_ ? pool_->lanes() : 1; }

    /** The wrapped serial codec. */
    const Compressor &serial() const { return *codec_; }

    /**
     * Compress @p input with the window space fanned out across the
     * lanes. Output is byte-identical to serial().compress(input).
     */
    CompressedBuffer compress(std::span<const uint8_t> input) const;

    /** Invert compress(), decompressing windows in parallel. */
    std::vector<uint8_t> decompress(const CompressedBuffer &buffer) const;

    /** Effective (store-raw floored) ratio of @p input. */
    double measureRatio(std::span<const uint8_t> input) const;

  private:
    std::unique_ptr<Compressor> codec_;
    std::unique_ptr<ThreadPool> pool_; ///< null when lanes == 1
};

} // namespace cdma

#endif // CDMA_COMPRESS_PARALLEL_HH
