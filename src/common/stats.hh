/**
 * @file
 * Lightweight statistics accumulators used by the simulator and the
 * benchmark harnesses: running mean/min/max/stddev, weighted means (the
 * paper weights network-wide compression ratios by per-layer activation
 * size), and a fixed-bin histogram.
 */

#ifndef CDMA_COMMON_STATS_HH
#define CDMA_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace cdma {

/**
 * Streaming accumulator over a sequence of samples. Uses Welford's method
 * so variance is numerically stable regardless of magnitude.
 */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double sample);

    /** Number of samples added. */
    uint64_t count() const { return count_; }
    /** Sum of all samples. */
    double sum() const { return sum_; }
    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Smallest sample; +inf when empty. */
    double min() const { return min_; }
    /** Largest sample; -inf when empty. */
    double max() const { return max_; }
    /** Population variance; 0 with fewer than two samples. */
    double variance() const;
    /** Population standard deviation. */
    double stddev() const;

    /** Reset to the empty state. */
    void reset();

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Weighted mean accumulator. The paper's "average network-wide compression
 * ratio" weights each layer's ratio by the size of its offloaded activation
 * maps (Figure 11 caption); this class implements exactly that reduction.
 */
class WeightedMean
{
  public:
    /** Add a sample with the given nonnegative weight. */
    void add(double sample, double weight);

    /** Weighted mean; 0 when no weight has been added. */
    double mean() const;
    /** Total accumulated weight. */
    double totalWeight() const { return weight_; }

  private:
    double weighted_sum_ = 0.0;
    double weight_ = 0.0;
};

/**
 * Fixed-range, fixed-bin-count histogram. Samples outside the range clamp
 * into the first/last bin so totals always balance.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin. @pre hi > lo.
     * @param bins Number of bins. @pre bins > 0.
     */
    Histogram(double lo, double hi, size_t bins);

    /** Add one sample (clamped into range). */
    void add(double sample);

    /** Count in bin @p index. */
    uint64_t binCount(size_t index) const { return counts_.at(index); }
    /** Number of bins. */
    size_t bins() const { return counts_.size(); }
    /** Total samples added. */
    uint64_t total() const { return total_; }
    /** Lower edge of bin @p index. */
    double binLo(size_t index) const;

    /** Render a one-line-per-bin ASCII summary (for harness output). */
    std::string render(size_t width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace cdma

#endif // CDMA_COMMON_STATS_HH
