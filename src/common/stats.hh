/**
 * @file
 * Lightweight statistics accumulators used by the simulator and the
 * benchmark harnesses: running mean/min/max/stddev, weighted means (the
 * paper weights network-wide compression ratios by per-layer activation
 * size), and a fixed-bin histogram.
 */

#ifndef CDMA_COMMON_STATS_HH
#define CDMA_COMMON_STATS_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace cdma {

/**
 * Streaming accumulator over a sequence of samples. Uses Welford's method
 * so variance is numerically stable regardless of magnitude.
 */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double sample);

    /** Number of samples added. */
    uint64_t count() const { return count_; }
    /** Sum of all samples. */
    double sum() const { return sum_; }
    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Smallest sample; +inf when empty. */
    double min() const { return min_; }
    /** Largest sample; -inf when empty. */
    double max() const { return max_; }
    /** Population variance; 0 with fewer than two samples. */
    double variance() const;
    /** Population standard deviation. */
    double stddev() const;

    /** Reset to the empty state. */
    void reset();

  private:
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Weighted mean accumulator. The paper's "average network-wide compression
 * ratio" weights each layer's ratio by the size of its offloaded activation
 * maps (Figure 11 caption); this class implements exactly that reduction.
 */
class WeightedMean
{
  public:
    /** Add a sample with the given nonnegative weight. */
    void add(double sample, double weight);

    /** Weighted mean; 0 when no weight has been added. */
    double mean() const;
    /** Total accumulated weight. */
    double totalWeight() const { return weight_; }

  private:
    double weighted_sum_ = 0.0;
    double weight_ = 0.0;
};

/**
 * Fixed-range, fixed-bin-count histogram. Samples outside the range clamp
 * into the first/last bin so totals always balance.
 */
class Histogram
{
  public:
    /**
     * @param lo Lower edge of the first bin.
     * @param hi Upper edge of the last bin. @pre hi > lo.
     * @param bins Number of bins. @pre bins > 0.
     */
    Histogram(double lo, double hi, size_t bins);

    /** Add one sample (clamped into range). */
    void add(double sample);

    /** Count in bin @p index. */
    uint64_t binCount(size_t index) const { return counts_.at(index); }
    /** Number of bins. */
    size_t bins() const { return counts_.size(); }
    /** Total samples added. */
    uint64_t total() const { return total_; }
    /** Lower edge of bin @p index. */
    double binLo(size_t index) const;

    /** Render a one-line-per-bin ASCII summary (for harness output). */
    std::string render(size_t width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * Unbounded log-bucketed histogram — the latency-distribution primitive
 * the observability MetricsRegistry builds on. Buckets grow
 * geometrically (bucket k covers [growth^k, growth^(k+1))), so a fixed
 * number of buckets spans nanoseconds to seconds at a bounded relative
 * error: percentile(q) is exact to within one bucket's width (a factor
 * of `growth`), and exact outright when every sample in the answering
 * bucket is equal (min/max clamping recovers the single-value case).
 * Two histograms with the same growth merge losslessly — per-thread
 * instances can be combined after the fact — and merging is associative
 * on the bucket counts.
 *
 * Non-positive samples land in a dedicated underflow bucket (durations
 * are the intended payload; a zero-length interval is still a sample).
 */
class LogHistogram
{
  public:
    /** ~10 buckets per decade: percentiles exact to within 25%. */
    static constexpr double kDefaultGrowth = 1.25;

    /** @param growth Geometric bucket width. @pre growth > 1. */
    explicit LogHistogram(double growth = kDefaultGrowth);

    /** Add one sample. */
    void add(double sample);

    /** Fold @p other's buckets into this one (same growth required). */
    void merge(const LogHistogram &other);

    /** Number of samples added. */
    uint64_t count() const { return count_; }
    /** Sum of all samples. */
    double sum() const { return sum_; }
    /** Arithmetic mean; 0 when empty. */
    double mean() const
    {
        return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
    }
    /** Smallest sample; +inf when empty. */
    double min() const { return min_; }
    /** Largest sample; -inf when empty. */
    double max() const { return max_; }
    /** Occupied buckets. */
    size_t bucketCount() const { return buckets_.size(); }
    /** Configured geometric bucket width. */
    double growth() const { return growth_; }

    /**
     * Nearest-rank percentile of @p q in [0, 1]: the representative
     * value (geometric bucket midpoint, clamped into [min, max]) of the
     * bucket holding the ceil(q * count)-th smallest sample. 0 when
     * empty. percentile(0) clamps to min(), percentile(1) to max().
     */
    double percentile(double q) const;

  private:
    /** Bucket key of @p sample (underflow key for sample <= 0). */
    int32_t bucketIndex(double sample) const;
    /** Geometric midpoint of bucket @p index. */
    double bucketMid(int32_t index) const;

    static constexpr int32_t kUnderflowBucket =
        std::numeric_limits<int32_t>::min();

    double growth_;
    double inv_log_growth_;
    /** Bucket key -> sample count, ordered — iteration is the CDF walk. */
    std::map<int32_t, uint64_t> buckets_;
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace cdma

#endif // CDMA_COMMON_STATS_HH
