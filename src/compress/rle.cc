#include "compress/rle.hh"

#include <cstring>

#include "common/logging.hh"

namespace cdma {

namespace {

// Token byte: bit 7 set -> zero-run, clear -> literal-run; bits 6..0 hold
// (run length - 1), so a token covers 1..128 words.
constexpr uint8_t kZeroRunFlag = 0x80;

bool
isZeroWord(const uint8_t *p)
{
    uint32_t value;
    std::memcpy(&value, p, 4);
    return value == 0;
}

/**
 * Length of the zero-word run starting at word @p i, capped at @p limit
 * words. Strides 32 bytes (4 x 64-bit loads) through zero pages — at the
 * paper's 50-90% activation sparsity most of the input is zero pages, and
 * the word-at-a-time scan was the dominant cost of RLE compression.
 */
uint64_t
zeroRunLength(const uint8_t *words, uint64_t i, uint64_t limit)
{
    uint64_t run = 1; // words[i] is known zero
    while (run + 8 <= limit) {
        uint64_t chunk[4];
        std::memcpy(chunk, words + (i + run) * 4, sizeof(chunk));
        if ((chunk[0] | chunk[1] | chunk[2] | chunk[3]) != 0)
            break;
        run += 8;
    }
    while (run < limit && isZeroWord(words + (i + run) * 4))
        ++run;
    return run;
}

} // namespace

RleCompressor::RleCompressor(uint64_t window_bytes)
    : Compressor(window_bytes)
{
}

uint64_t
RleCompressor::compressedBound(uint64_t raw_len) const
{
    // Worst case: every word its own literal run (1 token byte + 4 data
    // bytes per word) plus the raw sub-word tail.
    return raw_len + raw_len / kWordBytes + kWordBytes;
}

void
RleCompressor::compressWindowInto(std::span<const uint8_t> window,
                                  ByteVec &out) const
{
    const uint64_t words = window.size() / kWordBytes;
    const uint64_t tail_bytes = window.size() % kWordBytes;
    const uint8_t *src = window.data();

    // Capacity for the worst case up front: the appends below then never
    // reallocate (callers that stream a whole buffer reserve once).
    out.reserve(out.size() + compressedBound(window.size()));

    uint64_t i = 0;
    while (i < words) {
        const uint64_t cap = std::min<uint64_t>(kMaxRun, words - i);
        if (isZeroWord(src + i * kWordBytes)) {
            const uint64_t run = zeroRunLength(src, i, cap);
            out.push_back(
                kZeroRunFlag | static_cast<uint8_t>(run - 1));
            i += run;
        } else {
            uint64_t run = 1;
            while (run < cap && !isZeroWord(src + (i + run) * kWordBytes))
                ++run;
            out.push_back(static_cast<uint8_t>(run - 1));
            const uint8_t *data = src + i * kWordBytes;
            out.insert(out.end(), data, data + run * kWordBytes);
            i += run;
        }
    }

    // Sub-word tail stored raw (prefixed by a literal token of one word
    // would mis-size it; the framing knows the original size so raw bytes
    // at the end are unambiguous).
    if (tail_bytes) {
        const uint8_t *data = src + words * kWordBytes;
        out.insert(out.end(), data, data + tail_bytes);
    }
}

void
RleCompressor::decompressWindowInto(std::span<const uint8_t> payload,
                                    uint64_t original_bytes,
                                    uint8_t *out) const
{
    const uint64_t words = original_bytes / kWordBytes;
    const uint64_t tail_bytes = original_bytes % kWordBytes;

    size_t cursor = 0;
    uint64_t produced = 0;
    while (produced < words) {
        CDMA_ASSERT(cursor < payload.size(),
                    "RLE payload truncated before token");
        const uint8_t token = payload[cursor++];
        const uint64_t run = static_cast<uint64_t>(token & 0x7F) + 1;
        CDMA_ASSERT(produced + run <= words,
                    "RLE run overflows the original window size");
        uint8_t *dst = out + produced * kWordBytes;
        if (token & kZeroRunFlag) {
            std::memset(dst, 0, run * kWordBytes);
        } else {
            CDMA_ASSERT(cursor + run * kWordBytes <= payload.size(),
                        "RLE payload truncated in literal run");
            std::memcpy(dst, payload.data() + cursor, run * kWordBytes);
            cursor += run * kWordBytes;
        }
        produced += run;
    }

    if (tail_bytes) {
        CDMA_ASSERT(cursor + tail_bytes <= payload.size(),
                    "RLE payload truncated in raw tail");
        std::memcpy(out + words * kWordBytes, payload.data() + cursor,
                    tail_bytes);
        cursor += tail_bytes;
    }
    CDMA_ASSERT(cursor == payload.size(),
                "RLE payload has %zu trailing bytes",
                payload.size() - cursor);
}

} // namespace cdma
