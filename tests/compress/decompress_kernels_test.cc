/**
 * @file
 * Differential tests for the prefetch-side (decompression) kernel ops
 * and their codec routing, mirroring tests/compress/kernels_test.cc for
 * the compression direction: op-level equivalence of every supported
 * backend against the scalar reference (zvcExpandGroup mask scatter,
 * zeroFillBytes run reconstruction), byte-identity of decompressed
 * output across backends for all three codecs — densities, odd sizes,
 * sub-word tails, 1/2/8 lanes — and the in-order shard-streaming
 * decompression drain.
 */

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/compressor.hh"
#include "compress/kernels/kernels.hh"
#include "compress/parallel.hh"

namespace cdma {
namespace {

/** Activation-like fp32 words at the given density, any byte length. */
std::vector<uint8_t>
makeWords(double density, size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> input(bytes, 0);
    const size_t words = bytes / 4;
    for (size_t i = 0; i < words; ++i) {
        if (density > 0.0 && rng.bernoulli(density)) {
            const float value =
                0.5f + static_cast<float>(std::abs(rng.normal()));
            std::memcpy(input.data() + i * 4, &value, 4);
        }
    }
    for (size_t i = words * 4; i < bytes; ++i)
        input[i] = static_cast<uint8_t>(rng.uniformInt(256));
    return input;
}

class DecompressKernelOpEquivalence : public ::testing::Test
{
  protected:
    /** Every non-scalar backend (scalar is the reference). */
    std::vector<const KernelOps *> others() const
    {
        std::vector<const KernelOps *> result;
        for (const KernelOps *ops : supportedKernels()) {
            if (ops != &scalarKernels())
                result.push_back(ops);
        }
        return result;
    }
};

TEST_F(DecompressKernelOpEquivalence, ZvcExpandGroupInvertsCompact)
{
    // Compact with the scalar reference, then expand with every
    // backend: the output must reproduce the original words exactly and
    // consume exactly 4 * popcount(mask) payload bytes.
    const KernelOps &ref = scalarKernels();
    for (const KernelOps *ops : supportedKernels()) {
        for (const double density : {0.0, 0.1, 0.5, 0.9, 1.0}) {
            for (const uint32_t words :
                 {1u, 2u, 7u, 8u, 9u, 15u, 16u, 24u, 31u, 32u}) {
                const auto input =
                    makeWords(density, words * 4, 301 + words);
                std::vector<uint8_t> packed(words * 4 + 32, 0xAA);
                const uint32_t mask = ref.zvcCompactGroup(
                    input.data(), words, packed.data());
                const uint32_t live =
                    4u * static_cast<uint32_t>(std::popcount(mask));
                // The payload the expand op may read is exactly the
                // live bytes: hand it a right-sized copy so any
                // over-read lands outside the allocation (ASan job).
                std::vector<uint8_t> payload(
                    packed.begin(), packed.begin() + live);
                std::vector<uint8_t> out(words * 4 + 32, 0xEE);
                const uint32_t consumed = ops->zvcExpandGroup(
                    payload.data(), mask, words, out.data());
                EXPECT_EQ(consumed, live)
                    << ops->name << " words=" << words
                    << " density=" << density;
                ASSERT_EQ(0, std::memcmp(out.data(), input.data(),
                                         words * 4))
                    << ops->name << " words=" << words
                    << " density=" << density;
                // No write past the group.
                for (size_t i = words * 4; i < out.size(); ++i) {
                    ASSERT_EQ(out[i], 0xEE)
                        << ops->name << " words=" << words << " i=" << i;
                }
            }
        }
    }
}

TEST_F(DecompressKernelOpEquivalence, ZvcExpandGroupSparsePatterns)
{
    // Directed masks: empty, full, single bits at the edges, and
    // random patterns over every sub-block boundary.
    Rng rng(47);
    for (const KernelOps *ops : supportedKernels()) {
        for (int trial = 0; trial < 300; ++trial) {
            const uint32_t words = 1 + rng.uniformInt(32);
            uint32_t mask;
            switch (trial % 5) {
              case 0: mask = 0; break;
              case 1:
                mask = words == 32 ? 0xFFFFFFFFu : (1u << words) - 1;
                break;
              case 2: mask = 1u; break;
              case 3: mask = 1u << (words - 1); break;
              default:
                mask = static_cast<uint32_t>(rng.uniformInt(1u << 16)) |
                    (static_cast<uint32_t>(rng.uniformInt(1u << 16))
                     << 16);
                break;
            }
            if (words < 32)
                mask &= (1u << words) - 1;
            const uint32_t present =
                static_cast<uint32_t>(std::popcount(mask));
            std::vector<uint8_t> payload(present * 4);
            for (auto &byte : payload)
                byte = static_cast<uint8_t>(1 + rng.uniformInt(255));

            std::vector<uint8_t> expect(words * 4 + 8, 0xCC);
            std::vector<uint8_t> got(words * 4 + 8, 0xCC);
            const uint32_t consumed_ref = scalarKernels().zvcExpandGroup(
                payload.data(), mask, words, expect.data());
            const uint32_t consumed = ops->zvcExpandGroup(
                payload.data(), mask, words, got.data());
            EXPECT_EQ(consumed, consumed_ref)
                << ops->name << " trial " << trial;
            ASSERT_EQ(expect, got) << ops->name << " trial " << trial
                                   << " mask=" << mask
                                   << " words=" << words;
        }
    }
}

TEST_F(DecompressKernelOpEquivalence, ZeroFillBytes)
{
    for (const KernelOps *ops : supportedKernels()) {
        for (const size_t n : {0u, 1u, 3u, 31u, 32u, 63u, 64u, 65u,
                               127u, 128u, 513u}) {
            std::vector<uint8_t> dst(n + 8, 0xEE);
            ops->zeroFillBytes(dst.data(), n);
            for (size_t i = 0; i < n; ++i)
                ASSERT_EQ(dst[i], 0) << ops->name << " n=" << n;
            // No overwrite past n.
            for (size_t i = n; i < dst.size(); ++i)
                ASSERT_EQ(dst[i], 0xEE) << ops->name << " n=" << n;
        }
    }
}

TEST(DecompressCodecEquivalence, OutputIsByteIdenticalPerBackend)
{
    // The acceptance property for the prefetch leg: for all three
    // codecs, decompressing any backend's payload with any backend
    // reproduces the original input exactly — across densities, odd
    // sizes and sub-word tails.
    const std::vector<size_t> sizes = {0,    1,    3,    4,     5,
                                       127,  128,  4095, 4096,  4097,
                                       8195, 12288, (1u << 16) + 5};
    for (const Algorithm algorithm : kAllAlgorithms) {
        const auto reference =
            makeCompressor(algorithm, 4096, &scalarKernels());
        for (const KernelOps *ops : supportedKernels()) {
            const auto codec = makeCompressor(algorithm, 4096, ops);
            for (const double density : {0.0, 0.1, 0.5, 0.9, 1.0}) {
                for (const size_t bytes : sizes) {
                    // DEFLATE is slow; cap its sweep to keep the suite
                    // quick (tails/odd sizes stay covered).
                    if (algorithm == Algorithm::Zlib && bytes > 8195)
                        continue;
                    const auto input = makeWords(
                        density, bytes, 777 + bytes);
                    const CompressedBuffer compressed =
                        reference->compress(input);
                    ASSERT_EQ(codec->decompress(compressed).value(), input)
                        << codec->name() << " " << ops->name
                        << " bytes=" << bytes << " density=" << density;
                    // And the cross direction: backend-compressed,
                    // scalar-decompressed (streams are byte-identical,
                    // so this guards the packer too).
                    const CompressedBuffer own = codec->compress(input);
                    ASSERT_EQ(reference->decompress(own).value(), input)
                        << codec->name() << " " << ops->name
                        << " bytes=" << bytes << " density=" << density;
                }
            }
        }
    }
}

TEST(DecompressCodecEquivalence, LaneFanOutSharesTheBackendDecision)
{
    // 1/2/8 lanes with an explicitly forced backend: parallel
    // decompression must inherit the codec's dispatch decision and
    // reproduce the input whatever the lane count.
    const auto input = makeWords(0.5, (1 << 18) + 37, 99);
    for (const Algorithm algorithm : {Algorithm::Zvc, Algorithm::Rle}) {
        const auto reference =
            makeCompressor(algorithm, 4096, &scalarKernels());
        const CompressedBuffer compressed = reference->compress(input);
        for (const KernelOps *ops : supportedKernels()) {
            for (const unsigned lanes : {1u, 2u, 8u}) {
                const ParallelCompressor parallel(algorithm, 4096, lanes,
                                                  ops);
                ASSERT_EQ(parallel.decompress(compressed).value(), input)
                    << algorithmName(algorithm) << " " << ops->name
                    << " lanes=" << lanes;
            }
        }
    }
}

TEST(DecompressShards, StreamArrivesInOrderAndReconstructsExactly)
{
    const auto input = makeWords(0.5, (1 << 18) + 37, 43);
    const uint64_t windows_per_shard = 5;
    for (unsigned lanes : {1u, 2u, 8u}) {
        const ParallelCompressor compressor(Algorithm::Zvc, 4096, lanes);
        const CompressedBuffer compressed = compressor.compress(input);
        ByteVec out(input.size());
        uint64_t expected_index = 0;
        uint64_t raw_total = 0, wire_total = 0;
        const Status status = compressor.decompressShards(
            compressed, windows_per_shard, out.data(),
            [&](const ParallelCompressor::DecompressedShard &shard) {
                EXPECT_EQ(shard.index, expected_index++);
                EXPECT_EQ(shard.first_window,
                          shard.index * windows_per_shard);
                EXPECT_EQ(shard.raw_offset,
                          shard.first_window * 4096);
                raw_total += shard.raw_bytes;
                wire_total += shard.wire_bytes;
            });
        ASSERT_TRUE(status.ok()) << status.toString();
        EXPECT_EQ(expected_index, 13u); // ceil(65 windows / 5)
        EXPECT_EQ(raw_total, input.size());
        EXPECT_EQ(wire_total, compressed.effectiveBytes());
        EXPECT_EQ(out, input) << "lanes=" << lanes;
    }

    // Empty buffer: no shards, no output.
    const ParallelCompressor compressor(Algorithm::Zvc, 4096, 2);
    const CompressedBuffer empty = compressor.compress({});
    bool called = false;
    ASSERT_TRUE(compressor
                    .decompressShards(
                        empty, windows_per_shard, nullptr,
                        [&](const ParallelCompressor::DecompressedShard &) {
                            called = true;
                        })
                    .ok());
    EXPECT_FALSE(called);
}

} // namespace
} // namespace cdma
