#include "common/status.hh"

#include <cstdarg>
#include <cstdio>

namespace cdma {

const char *
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok:             return "ok";
      case StatusCode::Truncated:      return "truncated";
      case StatusCode::Corrupt:        return "corrupt";
      case StatusCode::IntegrityError: return "integrity-error";
      case StatusCode::RetryExhausted: return "retry-exhausted";
    }
    panic("unreachable status code %d", static_cast<int>(code));
}

namespace {

std::string
vformat(const char *fmt, va_list args)
{
    va_list copy;
    va_copy(copy, args);
    const int len = std::vsnprintf(nullptr, 0, fmt, copy);
    va_end(copy);
    if (len <= 0)
        return {};
    std::string out(static_cast<size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

} // namespace

Status
Status::formatted(StatusCode code, const char *fmt, va_list args)
{
    return Status(code, vformat(fmt, args));
}

#define CDMA_STATUS_FACTORY(fn, code)                                       \
    Status Status::fn(const char *fmt, ...)                                 \
    {                                                                       \
        va_list args;                                                       \
        va_start(args, fmt);                                                \
        Status status = formatted(StatusCode::code, fmt, args);             \
        va_end(args);                                                       \
        return status;                                                      \
    }

CDMA_STATUS_FACTORY(truncated, Truncated)
CDMA_STATUS_FACTORY(corrupt, Corrupt)
CDMA_STATUS_FACTORY(integrityError, IntegrityError)
CDMA_STATUS_FACTORY(retryExhausted, RetryExhausted)

#undef CDMA_STATUS_FACTORY

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return std::string(statusCodeName(code_)) + ": " + message_;
}

Status
Status::withContext(const char *fmt, ...) const
{
    if (ok())
        return *this;
    va_list args;
    va_start(args, fmt);
    std::string context = vformat(fmt, args);
    va_end(args);
    context += ": ";
    context += message_;
    return Status(code_, std::move(context));
}

} // namespace cdma
