/**
 * @file
 * Example: batch-size planning under GPU memory limits — the user
 * problem that motivates vDNN and cDMA (Section I). For a chosen
 * network, sweeps the minibatch size and reports which configurations
 * fit a 12 GB Titan X without virtualization, which need vDNN, and what
 * iteration overhead vDNN/cDMA would impose at each point.
 *
 * Run: ./build/examples/memory_planner [network] [max_batch]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/units.hh"
#include "perf/step_sim.hh"
#include "sparsity/schedule.hh"

using namespace cdma;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "VGG";
    const int64_t max_batch = argc > 2 ? std::atoll(argv[2]) : 256;

    NetworkDesc net;
    bool found = false;
    for (const auto &candidate : allNetworkDescs()) {
        if (candidate.name == name) {
            net = candidate;
            found = true;
        }
    }
    if (!found) {
        std::fprintf(stderr, "unknown network '%s'\n", name.c_str());
        return 1;
    }

    // Analytic ZVC ratios from the density schedule (no data generation
    // needed: ratio(d) = 1 / (d + 1/32), floored at 1).
    const DensitySchedule schedule(net);
    std::vector<double> ratios;
    for (size_t i = 0; i < net.layers.size(); ++i) {
        const double d = net.layers[i].relu_follows
            ? schedule.density(i, 1.0) : 1.0;
        ratios.push_back(std::max(1.0, 1.0 / (d + 1.0 / 32.0)));
    }

    CdmaEngine engine(CdmaConfig{});
    PerfModel perf;
    const GpuSpec gpu;

    std::printf("== Memory/performance planning: %s on a %.0f GiB GPU "
                "==\n", net.name.c_str(),
                static_cast<double>(gpu.dram_capacity) /
                    static_cast<double>(kGiB));
    std::printf("%-7s %-12s %-12s %-10s %-14s %-14s\n", "batch",
                "baseline GB", "vDNN GB", "fits?", "vDNN overhead",
                "cDMA overhead");

    for (int64_t batch = 16; batch <= max_batch; batch *= 2) {
        VdnnMemoryManager manager(net, batch);
        const MemoryFootprint fp = manager.footprint();
        StepSimulator sim(manager, engine, perf, CudnnVersion::V5);
        const StepResult oracle = sim.run(StepMode::Oracle);
        const StepResult vdnn = sim.run(StepMode::Vdnn);
        const StepResult cdma = sim.run(StepMode::Cdma, ratios);

        const char *fits;
        if (fp.baseline_total <= gpu.dram_capacity)
            fits = "yes";
        else if (fp.vdnn_peak <= gpu.dram_capacity)
            fits = "vDNN only";
        else
            fits = "no";

        std::printf("%-7lld %-12.2f %-12.2f %-10s %-14s %-14s\n",
                    static_cast<long long>(batch),
                    static_cast<double>(fp.baseline_total) / 1e9,
                    static_cast<double>(fp.vdnn_peak) / 1e9, fits,
                    (std::to_string(static_cast<int>(
                         100.0 * (vdnn.total_seconds /
                                  oracle.total_seconds - 1.0))) + "%")
                        .c_str(),
                    (std::to_string(static_cast<int>(
                         100.0 * (cdma.total_seconds /
                                  oracle.total_seconds - 1.0))) + "%")
                        .c_str());
    }
    std::printf("\n(overhead = iteration-time increase over the "
                "no-stall oracle at cuDNN v5)\n");
    return 0;
}
