/** @file Unit tests for layout indexing and names. */

#include <set>

#include <gtest/gtest.h>

#include "tensor/layout.hh"

namespace cdma {
namespace {

TEST(Layout, NamesRoundTrip)
{
    for (Layout layout : kAllLayouts)
        EXPECT_EQ(layoutFromName(layoutName(layout)), layout);
}

TEST(Layout, ShapeArithmetic)
{
    const Shape4D shape{2, 3, 5, 7};
    EXPECT_EQ(shape.elements(), 2 * 3 * 5 * 7);
    EXPECT_EQ(shape.bytes(), 2 * 3 * 5 * 7 * 4);
    EXPECT_EQ(shape.str(), "(2, 3, 5, 7)");
}

TEST(Layout, NchwInnermostIsW)
{
    const Shape4D shape{2, 3, 4, 5};
    const int64_t base = linearIndex(shape, Layout::NCHW, 1, 2, 3, 0);
    EXPECT_EQ(linearIndex(shape, Layout::NCHW, 1, 2, 3, 1), base + 1);
}

TEST(Layout, NhwcInnermostIsC)
{
    const Shape4D shape{2, 3, 4, 5};
    const int64_t base = linearIndex(shape, Layout::NHWC, 1, 0, 3, 4);
    EXPECT_EQ(linearIndex(shape, Layout::NHWC, 1, 1, 3, 4), base + 1);
}

TEST(Layout, ChwnInnermostIsN)
{
    const Shape4D shape{2, 3, 4, 5};
    const int64_t base = linearIndex(shape, Layout::CHWN, 0, 2, 3, 4);
    EXPECT_EQ(linearIndex(shape, Layout::CHWN, 1, 2, 3, 4), base + 1);
}

class LayoutBijection : public ::testing::TestWithParam<Layout>
{
};

TEST_P(LayoutBijection, EveryCoordinateMapsToUniqueIndex)
{
    const Shape4D shape{3, 4, 5, 6};
    std::set<int64_t> seen;
    for (int64_t n = 0; n < shape.n; ++n) {
        for (int64_t c = 0; c < shape.c; ++c) {
            for (int64_t h = 0; h < shape.h; ++h) {
                for (int64_t w = 0; w < shape.w; ++w) {
                    const int64_t index =
                        linearIndex(shape, GetParam(), n, c, h, w);
                    EXPECT_GE(index, 0);
                    EXPECT_LT(index, shape.elements());
                    EXPECT_TRUE(seen.insert(index).second)
                        << "duplicate index " << index;
                }
            }
        }
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(shape.elements()));
}

INSTANTIATE_TEST_SUITE_P(AllLayouts, LayoutBijection,
                         ::testing::ValuesIn(kAllLayouts),
                         [](const auto &info) {
                             return layoutName(info.param);
                         });

} // namespace
} // namespace cdma
