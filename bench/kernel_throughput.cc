/**
 * @file
 * Google-benchmark microbenchmarks of the compression kernels and the
 * ZVC engine cycle model (Section V-B). The software codecs report
 * bytes/second on this host, serial and with the parallel window fan-out
 * (ParallelCompressor lanes sweep — the software analogue of the paper's
 * replicated CPE/DPE pipelines); the cycle model reports the modeled
 * hardware throughput (32 B/cycle), which is what the paper's 100s-of-
 * GB/s requirement refers to — zlib's software-class throughput is the
 * reason the paper rules it out for hardware.
 *
 * Serial benchmarks take the density (percent) as the argument; parallel
 * benchmarks take {density, lanes}.
 *
 * The kernel backend the dispatcher chose is recorded in the JSON
 * context as "kernel_backend" (validated by bench/check_bench_json.py),
 * and explicit per-backend families in both directions
 * (BM_<Algo>Compress{Scalar,Avx2,Avx512} and the
 * BM_<Algo>Decompress{Scalar,Avx2,Avx512} expand-side mirrors) are
 * registered for every backend this CPU supports, so the checked-in
 * trajectory carries scalar and SIMD numbers side by side for the
 * offload AND prefetch legs — avx512 rows appear only when the
 * recording host has AVX512F/BW/VL (the host_avx512 context field
 * records which case this JSON is).
 */

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>

#include <benchmark/benchmark.h>

#include "cdma/fleet_sim.hh"
#include "cdma/transfer_engine.hh"
#include "common/rng.hh"
#include "compress/compressor.hh"
#include "compress/kernels/kernels.hh"
#include "compress/parallel.hh"
#include "compress/policy.hh"
#include "gpu/zvc_engine.hh"
#include "sparsity/generator.hh"

namespace {

using namespace cdma;

/** Activation-like input: clustered sparsity at the given density. */
std::vector<uint8_t>
makeActivations(double density, size_t bytes)
{
    ActivationGenerator gen;
    Rng rng(7);
    const int64_t elements = static_cast<int64_t>(bytes / 4);
    const int64_t hw = 64;
    const int64_t channels =
        std::max<int64_t>(1, elements / (hw * hw));
    const Tensor4D t = gen.generate(Shape4D{1, channels, hw, hw},
                                    Layout::NCHW, density, rng);
    auto raw = t.rawBytes();
    return {raw.begin(), raw.end()};
}

void
compressBenchmark(benchmark::State &state, Algorithm algorithm,
                  const KernelOps *kernels = nullptr)
{
    const double density =
        static_cast<double>(state.range(0)) / 100.0;
    const auto input = makeActivations(density, 1 << 20);
    const auto compressor =
        makeCompressor(algorithm, Compressor::kDefaultWindowBytes,
                       kernels);
    uint64_t wire = 0;
    for (auto _ : state) {
        const auto result = compressor->compress(input);
        wire = result.effectiveBytes();
        benchmark::DoNotOptimize(wire);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * input.size()));
    state.counters["ratio"] = static_cast<double>(input.size()) /
        static_cast<double>(wire);
}

void
parallelCompressBenchmark(benchmark::State &state, Algorithm algorithm)
{
    const double density =
        static_cast<double>(state.range(0)) / 100.0;
    const auto lanes = static_cast<unsigned>(state.range(1));
    const auto input = makeActivations(density, 1 << 20);
    const ParallelCompressor compressor(
        algorithm, Compressor::kDefaultWindowBytes, lanes);
    uint64_t wire = 0;
    for (auto _ : state) {
        const auto result = compressor.compress(input);
        wire = result.effectiveBytes();
        benchmark::DoNotOptimize(wire);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * input.size()));
    state.counters["ratio"] = static_cast<double>(input.size()) /
        static_cast<double>(wire);
    state.counters["lanes"] = lanes;
}

void
BM_ZvcCompress(benchmark::State &state)
{
    compressBenchmark(state, Algorithm::Zvc);
}

void
BM_RleCompress(benchmark::State &state)
{
    compressBenchmark(state, Algorithm::Rle);
}

void
BM_DeflateCompress(benchmark::State &state)
{
    compressBenchmark(state, Algorithm::Zlib);
}

void
BM_ZvcCompressParallel(benchmark::State &state)
{
    parallelCompressBenchmark(state, Algorithm::Zvc);
}

void
BM_RleCompressParallel(benchmark::State &state)
{
    parallelCompressBenchmark(state, Algorithm::Rle);
}

void
BM_DeflateCompressParallel(benchmark::State &state)
{
    parallelCompressBenchmark(state, Algorithm::Zlib);
}

/** Decompression throughput (density from the benchmark argument). */
void
decompressBenchmark(benchmark::State &state, Algorithm algorithm,
                    const KernelOps *kernels = nullptr)
{
    const double density =
        static_cast<double>(state.range(0)) / 100.0;
    const auto input = makeActivations(density, 1 << 20);
    const auto compressor =
        makeCompressor(algorithm, Compressor::kDefaultWindowBytes,
                       kernels);
    const auto compressed = compressor->compress(input);
    for (auto _ : state) {
        auto restored = compressor->decompress(compressed);
        benchmark::DoNotOptimize(restored.value().data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * input.size()));
    state.counters["ratio"] = static_cast<double>(input.size()) /
        static_cast<double>(compressed.effectiveBytes());
}

void
BM_ZvcDecompress(benchmark::State &state)
{
    const auto input = makeActivations(0.4, 1 << 20);
    const auto compressor = makeCompressor(Algorithm::Zvc);
    const auto compressed = compressor->compress(input);
    for (auto _ : state) {
        auto restored = compressor->decompress(compressed);
        benchmark::DoNotOptimize(restored.value().data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * input.size()));
}

void
BM_RleDecompress(benchmark::State &state)
{
    decompressBenchmark(state, Algorithm::Rle);
}

void
BM_DeflateDecompress(benchmark::State &state)
{
    decompressBenchmark(state, Algorithm::Zlib);
}

void
BM_ZvcDecompressParallel(benchmark::State &state)
{
    const auto lanes = static_cast<unsigned>(state.range(0));
    const auto input = makeActivations(0.4, 1 << 20);
    const ParallelCompressor compressor(
        Algorithm::Zvc, Compressor::kDefaultWindowBytes, lanes);
    const auto compressed = compressor.compress(input);
    for (auto _ : state) {
        auto restored = compressor.decompress(compressed);
        benchmark::DoNotOptimize(restored.value().data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * input.size()));
    state.counters["lanes"] = lanes;
}

/**
 * The duplex-transfer DES at a representative shape: a 64 MiB offload
 * shard train racing an equal prefetch train on one link (ZV-class
 * 2.5x ratio, bandwidth-delay shards, double buffering). Reports the
 * host-side model throughput (modeled raw bytes per wall second — the
 * cost of pricing a transfer, which the step simulator pays per layer)
 * plus the modeled makespan and contention as counters; the JSON's
 * duplex_mode context records the engine-default link configuration.
 */
void
duplexModelBenchmark(benchmark::State &state, DuplexMode mode)
{
    CdmaConfig config;
    config.transfer.timing_mode = TimingMode::Overlapped;
    config.transfer.duplex_mode = mode;
    const CdmaEngine engine(config);
    const TransferEngine transfers(engine);
    const uint64_t raw_bytes = 64ull << 20;
    DuplexTiming timing;
    for (auto _ : state) {
        timing = transfers.modelFromRatio(raw_bytes, 2.5, raw_bytes,
                                          2.5);
        // Sink the whole struct by address: DoNotOptimize on an lvalue
        // member marks it asm-clobbered, which GCC 12 exploits by
        // dropping the member's store — the counters below would then
        // read garbage.
        benchmark::DoNotOptimize(&timing);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * 2 * raw_bytes));
    state.counters["modeled_makespan_ms"] =
        timing.makespan_seconds * 1e3;
    state.counters["contention_stall_fraction"] =
        timing.contentionStallFraction();
}

void
BM_DuplexTransferModelFull(benchmark::State &state)
{
    duplexModelBenchmark(state, DuplexMode::Full);
}

void
BM_DuplexTransferModelHalf(benchmark::State &state)
{
    duplexModelBenchmark(state, DuplexMode::Half);
}

/**
 * The fleet DES at N GPUs behind one fixed-bandwidth switch uplink:
 * prices a whole data-parallel offload round (N shard trains racing
 * through the shared edge) per iteration. bytes_per_second is the
 * host-side modeling rate (fleet raw bytes per wall second — what a
 * multi-GPU step simulation would pay per layer); the counters carry
 * the modeled makespan and the mean contention-stall fraction, which
 * check_bench_json.py requires to be positive and strictly increasing
 * across the N2/N4/N8 families — a flat fraction means the shared
 * uplink silently stopped arbitrating.
 */
void
fleetOffloadBenchmark(benchmark::State &state, unsigned gpu_count)
{
    FleetSpec spec;
    spec.gpu_count = gpu_count;
    spec.gpu_link_bandwidth = 12.8e9;
    spec.uplink_bandwidth = 12.8e9; // fixed while N scales
    spec.offload_raw_bytes = 16ull << 20;
    spec.offload_ratio = 2.5;
    spec.prefetch_raw_bytes = 0;
    spec.shard_raw_bytes = 2ull << 20;
    const FleetSimulator sim(spec);
    FleetResult result;
    for (auto _ : state) {
        result = sim.run();
        // Sink by address (same GCC 12 hazard as the duplex model).
        benchmark::DoNotOptimize(&result);
    }
    state.SetBytesProcessed(static_cast<int64_t>(
        state.iterations() * gpu_count * spec.offload_raw_bytes));
    state.counters["modeled_makespan_ms"] =
        result.makespan_seconds * 1e3;
    state.counters["contention_stall_fraction"] =
        result.mean_contention_stall_fraction;
    state.counters["uplink_utilization"] = result.uplink_utilization;
}

void
BM_FleetOffloadN2(benchmark::State &state)
{
    fleetOffloadBenchmark(state, 2);
}

void
BM_FleetOffloadN4(benchmark::State &state)
{
    fleetOffloadBenchmark(state, 4);
}

void
BM_FleetOffloadN8(benchmark::State &state)
{
    fleetOffloadBenchmark(state, 8);
}

void
BM_ZvcEngineCycleModel(benchmark::State &state)
{
    // Reports the modeled hardware rate alongside the host-simulation
    // rate: cycles per byte is the architectural number.
    const auto input = makeActivations(0.4, 1 << 18);
    ZvcEngineModel engine;
    uint64_t cycles = 0;
    for (auto _ : state) {
        const auto result = engine.compress(input);
        cycles = result.cycles;
        benchmark::DoNotOptimize(result.payload.data());
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * input.size()));
    state.counters["modeled_GBps_at_1GHz"] =
        static_cast<double>(input.size()) /
        static_cast<double>(cycles);
}

/**
 * CRC-32C framing throughput — the integrity tax every spilled shard
 * pays at compress time and again at prefetch-verify time. Priced per
 * backend so the trajectory shows the scalar slice-by-8 table walk next
 * to the SSE4.2 hardware instruction; the acceptance bar is that the
 * hardware path keeps the whole-shard CRC under a few percent of ZVC
 * compression throughput.
 */
void
crc32Benchmark(benchmark::State &state, const KernelOps *kernels)
{
    const auto input = makeActivations(0.4, 1 << 20);
    uint32_t crc = 0;
    for (auto _ : state) {
        crc = kernels->crc32(0, input.data(), input.size());
        benchmark::DoNotOptimize(crc);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * input.size()));
}

/**
 * Adaptive-policy selection overhead, the density argument in percent:
 * one full decide() — strided density sample over a 4MB activation
 * buffer, closed-form cost model, hysteresis update — per iteration.
 * bytes_per_second is buffer bytes over decide wall-clock, so the
 * acceptance bar "selection costs < 1% of the compress pass it steers"
 * reads directly as >= 100x the same-density BM_ZvcCompress rate
 * (enforced by bench/check_bench_json.py).
 */
void
BM_AdaptivePolicyDecide(benchmark::State &state)
{
    const double density =
        static_cast<double>(state.range(0)) / 100.0;
    const auto input = makeActivations(density, 4 << 20);
    PolicyConfig config;
    config.wire_bandwidth = 6.4e9;
    CodecPolicyEngine policy(config);
    for (auto _ : state) {
        const PolicyDecision decision = policy.decide("bench", input);
        benchmark::DoNotOptimize(decision);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * input.size()));
    state.counters["chosen_codec"] = static_cast<double>(
        static_cast<int>(policy.decideFromDensity("probe", input.size(),
                                                  density)
                             .codec));
}

/**
 * The modeled-flow decide path (no activation bytes: cost model +
 * hysteresis only), priced per decision over the same nominal 4MB
 * layer. This is the per-layer tax StepSimulator::runAdaptive and the
 * fleet sweep pay.
 */
void
BM_AdaptivePolicyFromDensity(benchmark::State &state)
{
    PolicyConfig config;
    config.wire_bandwidth = 6.4e9;
    CodecPolicyEngine policy(config);
    const uint64_t bytes = 4ull << 20;
    for (auto _ : state) {
        const PolicyDecision decision =
            policy.decideFromDensity("bench", bytes, 0.5);
        benchmark::DoNotOptimize(decision);
    }
    state.SetBytesProcessed(
        static_cast<int64_t>(state.iterations() * bytes));
}

void
BM_Crc32Scalar(benchmark::State &state)
{
    crc32Benchmark(state, &scalarKernels());
}

void
BM_Crc32Hw(benchmark::State &state)
{
    // The hardware CRC32C instruction rides in the AVX2 backend table
    // (every AVX2 part has SSE4.2); registration is gated on support.
    crc32Benchmark(state, avx2Kernels());
}

void
parallelArgs(benchmark::internal::Benchmark *bench)
{
    for (int density : {10, 40, 50, 70, 100}) {
        for (int lanes : {1, 2, 4, 8})
            bench->Args({density, lanes});
    }
}

BENCHMARK(BM_ZvcCompress)->Arg(10)->Arg(40)->Arg(50)->Arg(70)->Arg(100);
BENCHMARK(BM_RleCompress)->Arg(10)->Arg(40)->Arg(50)->Arg(70)->Arg(100);
BENCHMARK(BM_DeflateCompress)->Arg(10)->Arg(40)->Arg(100);
BENCHMARK(BM_ZvcCompressParallel)->Apply(parallelArgs)
    ->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK(BM_RleCompressParallel)->Apply(parallelArgs)
    ->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK(BM_DeflateCompressParallel)
    ->Args({40, 1})->Args({40, 2})->Args({40, 4})->Args({40, 8})
    ->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK(BM_ZvcDecompress);
BENCHMARK(BM_RleDecompress)->Arg(10)->Arg(40)->Arg(50)->Arg(70)
    ->Arg(100);
BENCHMARK(BM_DeflateDecompress)->Arg(10)->Arg(40)->Arg(100);
BENCHMARK(BM_ZvcDecompressParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->MeasureProcessCPUTime()->UseRealTime();
BENCHMARK(BM_ZvcEngineCycleModel);
BENCHMARK(BM_DuplexTransferModelFull);
BENCHMARK(BM_DuplexTransferModelHalf);
BENCHMARK(BM_FleetOffloadN2);
BENCHMARK(BM_FleetOffloadN4);
BENCHMARK(BM_FleetOffloadN8);
BENCHMARK(BM_AdaptivePolicyDecide)->Arg(10)->Arg(50)->Arg(100);
BENCHMARK(BM_AdaptivePolicyFromDensity);
BENCHMARK(BM_Crc32Scalar);

/** "scalar" -> "Scalar", "avx2" -> "Avx2" (benchmark-name casing). */
std::string
backendFamilySuffix(const char *name)
{
    std::string suffix(name);
    if (!suffix.empty())
        suffix[0] = static_cast<char>(std::toupper(suffix[0]));
    return suffix;
}

/**
 * Explicit per-backend serial families in both directions, one per
 * backend this CPU supports: BM_ZvcCompressScalar/50,
 * BM_ZvcCompressAvx2/50, BM_ZvcDecompressScalar/50, ... The suffix-less
 * families above stay on the runtime dispatch, so the trajectory keeps
 * one "what you get by default" row per kernel.
 */
void
registerBackendBenchmarks()
{
    struct FamilySpec {
        const char *family;
        Algorithm algorithm;
        std::vector<int64_t> densities;
    };
    const FamilySpec compress_specs[] = {
        {"BM_ZvcCompress", Algorithm::Zvc, {10, 40, 50, 70, 100}},
        {"BM_RleCompress", Algorithm::Rle, {10, 40, 50, 70, 100}},
        {"BM_DeflateCompress", Algorithm::Zlib, {10, 40, 100}},
    };
    const FamilySpec decompress_specs[] = {
        {"BM_ZvcDecompress", Algorithm::Zvc, {10, 40, 50, 70, 100}},
        {"BM_RleDecompress", Algorithm::Rle, {10, 40, 50, 70, 100}},
        {"BM_DeflateDecompress", Algorithm::Zlib, {10, 40, 100}},
    };
    for (const KernelOps *kernels : supportedKernels()) {
        const std::string suffix = backendFamilySuffix(kernels->name);
        for (const FamilySpec &spec : compress_specs) {
            auto *bench = benchmark::RegisterBenchmark(
                (spec.family + suffix).c_str(),
                [algorithm = spec.algorithm,
                 kernels](benchmark::State &state) {
                    compressBenchmark(state, algorithm, kernels);
                });
            for (const int64_t density : spec.densities)
                bench->Arg(density);
        }
        for (const FamilySpec &spec : decompress_specs) {
            auto *bench = benchmark::RegisterBenchmark(
                (spec.family + suffix).c_str(),
                [algorithm = spec.algorithm,
                 kernels](benchmark::State &state) {
                    decompressBenchmark(state, algorithm, kernels);
                });
            for (const int64_t density : spec.densities)
                bench->Arg(density);
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    // Record which backend the runtime dispatch picked and whether an
    // env override forced it, so the JSON itself carries the dispatch
    // provenance: the checker fails an AVX2-capable host that silently
    // fell back to scalar, but not a deliberately forced run — even
    // when the JSON is validated from a different shell.
    const char *forced = std::getenv("CDMA_KERNEL_BACKEND");
    benchmark::AddCustomContext("kernel_backend",
                                cdma::activeKernels().name);
    benchmark::AddCustomContext("kernel_backend_forced",
                                forced != nullptr ? forced : "");
    benchmark::AddCustomContext(
        "host_avx2", cdma::avx2Kernels() != nullptr ? "true" : "false");
    benchmark::AddCustomContext(
        "host_avx512",
        cdma::avx512Kernels() != nullptr ? "true" : "false");
    // The engine-default link configuration the duplex-model families
    // were priced under (the explicit Full/Half family suffixes sweep
    // both regardless); check_bench_json.py validates the field.
    benchmark::AddCustomContext(
        "duplex_mode", cdma::duplexModeName(cdma::CdmaConfig{}.transfer.duplex_mode));
    if (cdma::avx2Kernels() != nullptr)
        benchmark::RegisterBenchmark("BM_Crc32Hw", BM_Crc32Hw);
    registerBackendBenchmarks();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
