/**
 * @file
 * Abstract lossless compressor interface used by the cDMA engine. All three
 * algorithms the paper evaluates (run-length encoding, zero-value
 * compression, and a DEFLATE-style "zlib" upper bound) implement this
 * interface. Compression is windowed: the input is split into fixed-size
 * windows (4 KB by default, Section VII-A) and each window is compressed
 * independently, mirroring the hardware which operates on bounded buffers.
 *
 * The hot path is the streaming scratch-buffer API: compressWindowInto()
 * appends a window's payload directly into a shared output vector and
 * decompressWindowInto() reconstructs into a caller-provided region, so
 * the per-window allocation and concatenation copies of the original
 * return-by-value virtuals never happen. Those legacy virtuals (and the
 * compatibility shims that bridged the two forms) are gone: the
 * streaming pair is the one window interface a codec implements.
 */

#ifndef CDMA_COMPRESS_COMPRESSOR_HH
#define CDMA_COMPRESS_COMPRESSOR_HH

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.hh"
#include "common/status.hh"

namespace cdma {

struct KernelOps;
enum class Algorithm;

/**
 * Wire codec selector: the three lossless algorithms plus Raw, the
 * "don't compress" choice the adaptive policy can make for dense layers
 * whose compression loses to the wire. Raw is distinct from the
 * store-raw *fallback* (raw_framed), which is a per-shard degradation
 * taken after transfer faults; Codec::Raw is a deliberate up-front
 * policy decision. Every compressed artifact (buffer, shard, spilled
 * shard view) carries its codec so the prefetch side decodes whatever
 * the offload side chose, shard by shard.
 */
enum class Codec {
    Raw,  ///< identity framing (payload == source bytes)
    Rle,  ///< run-length encoding ("RL")
    Zvc,  ///< zero-value compression ("ZV")
    Zlib, ///< DEFLATE-style upper bound ("ZL")
};

/** All codecs the policy may choose from, cheapest-decode first. */
inline constexpr Codec kAllCodecs[] = {Codec::Raw, Codec::Rle, Codec::Zvc,
                                       Codec::Zlib};

/** Display tag for a codec ("raw", "RL", "ZV", "ZL"). */
std::string codecName(Codec codec);

/** The codec a compression algorithm frames as. */
Codec codecFor(Algorithm algorithm);

/** Inverse of codecFor(); asserts on Codec::Raw (not an Algorithm). */
Algorithm algorithmFor(Codec codec);

/** Inverse of codecName() / Compressor::name(); asserts on unknown tags. */
Codec codecFromName(const std::string &name);

/**
 * Store-raw-floored wire bytes of a compressed window sequence: every
 * window transfers as min(compressed, raw) bytes, as a real engine with
 * a "stored" window mode would do. Shared by CompressedBuffer and the
 * offload scheduler's per-shard accounting so the fallback rule lives
 * in one place.
 */
uint64_t storeRawFlooredBytes(const std::vector<uint32_t> &window_sizes,
                              uint64_t raw_bytes, uint64_t window_bytes);

/**
 * Result of compressing a buffer: the concatenated per-window payloads plus
 * the framing metadata a real DMA engine would track out-of-band (window
 * boundaries and the original size). The paper's compression ratios count
 * payload bytes only, which ratio() reproduces.
 */
struct CompressedBuffer {
    /** Concatenated compressed window payloads. */
    ByteVec payload;
    /** Compressed size of each window, in payload order. */
    std::vector<uint32_t> window_sizes;
    /** Uncompressed input size in bytes. */
    uint64_t original_bytes = 0;
    /** Window size used during compression. */
    uint64_t window_bytes = 0;
    /** Codec that framed the payload (what decompress must invert). */
    Codec codec = Codec::Zvc;

    /** Compressed payload size in bytes. */
    uint64_t compressedBytes() const { return payload.size(); }

    /**
     * Compression ratio (original / compressed). A ratio below 1.0 means
     * the algorithm expanded the data; the DMA engine would then fall back
     * to sending the raw window, so callers typically clamp at 1.0 via
     * effectiveRatio().
     */
    double ratio() const;

    /**
     * Ratio after the store-raw fallback: every window is transferred as
     * min(compressed, raw) bytes, as a real engine with a "stored" window
     * mode would do.
     */
    double effectiveRatio() const;

    /** Transferred bytes under the store-raw fallback. */
    uint64_t effectiveBytes() const;
};

/**
 * Interface for a windowed lossless compressor.
 *
 * Subclasses implement the streaming pair compressWindowInto() /
 * decompressWindowInto(); the base class handles splitting, framing and
 * pre-sizing.
 */
class Compressor
{
  public:
    /** Default compression window (4 KB, the paper's configuration). */
    static constexpr uint64_t kDefaultWindowBytes = 4096;

    /**
     * @param window_bytes Compression window.
     * @param kernels Kernel backend for the primitive hot ops; nullptr
     *        picks the process-wide runtime dispatch (activeKernels()).
     *        All backends produce byte-identical output; an explicit
     *        backend exists for differential tests and benchmarks.
     */
    explicit Compressor(uint64_t window_bytes = kDefaultWindowBytes,
                        const KernelOps *kernels = nullptr);
    virtual ~Compressor() = default;

    /** Short algorithm tag as used in the paper's figures (RL/ZV/ZL). */
    virtual std::string name() const = 0;

    /** Compression window in bytes. */
    uint64_t windowBytes() const { return window_bytes_; }

    /** The kernel backend this codec's hot loops call through. */
    const KernelOps &kernels() const { return *kernels_; }

    /** Compress @p input window-by-window. */
    CompressedBuffer compress(std::span<const uint8_t> input) const;

    /**
     * Invert compress(); returns exactly the original bytes, or the
     * first window's decode error (annotated with the window index) when
     * the buffer's payload or framing has been corrupted in flight.
     */
    StatusOr<ByteVec> decompress(const CompressedBuffer &buffer) const;

    /**
     * Convenience: compression ratio of @p input with the store-raw
     * fallback applied (the number the paper reports).
     */
    double measureRatio(std::span<const uint8_t> input) const;

    /**
     * Streaming core: compress one window (at most windowBytes() long),
     * appending the payload to @p out. Only appends — bytes already in
     * @p out are preserved, so windows stream directly into the shared
     * CompressedBuffer::payload with no intermediate vector. Thread-safe:
     * may be called concurrently on distinct @p out buffers. @p out is a
     * ByteVec so resize-to-bound staging never value-initializes bytes
     * the codec is about to overwrite.
     */
    virtual void compressWindowInto(std::span<const uint8_t> window,
                                    ByteVec &out) const = 0;

    /**
     * Streaming core: decompress one window payload into the
     * caller-provided region at @p out, writing exactly @p original_bytes
     * bytes (including any zeros) on success. Thread-safe on distinct
     * regions. A malformed payload returns a non-ok Status naming the
     * codec and the failing byte offset — never panics, and never reads
     * outside @p payload — with @p out left in an unspecified state.
     */
    virtual Status decompressWindowInto(std::span<const uint8_t> payload,
                                        uint64_t original_bytes,
                                        uint8_t *out) const = 0;

    /**
     * Upper bound on the compressed size of a window of @p raw_len bytes,
     * used to pre-reserve payload capacity so streaming appends never
     * reallocate. Must be >= the size compressWindowInto() appends.
     */
    virtual uint64_t compressedBound(uint64_t raw_len) const;

  private:
    uint64_t window_bytes_;
    const KernelOps *kernels_;
};

/** Algorithm selector matching the paper's figure labels. */
enum class Algorithm {
    Rle,  ///< run-length encoding ("RL")
    Zvc,  ///< zero-value compression ("ZV")
    Zlib, ///< DEFLATE-style upper bound ("ZL")
};

/** All algorithms in the order the paper's figures list them. */
inline constexpr Algorithm kAllAlgorithms[] = {
    Algorithm::Rle, Algorithm::Zvc, Algorithm::Zlib};

/** Figure label for an algorithm ("RL", "ZV", "ZL"). */
std::string algorithmName(Algorithm algorithm);

/**
 * Construct a compressor for @p algorithm with the given window.
 * @p kernels selects the kernel backend (nullptr = runtime dispatch).
 */
std::unique_ptr<Compressor>
makeCompressor(Algorithm algorithm,
               uint64_t window_bytes = Compressor::kDefaultWindowBytes,
               const KernelOps *kernels = nullptr);

/**
 * The identity codec (Codec::Raw): every window's payload is the window
 * bytes verbatim, so "compression" is a bounded memcpy and decode can
 * never fail on well-framed input. This is what the adaptive policy
 * selects when the cost model says compressing loses to the wire — the
 * framing (window sizes, CRC, shard boundaries) stays identical to the
 * real codecs so the whole transfer path is codec-agnostic.
 */
class RawCompressor : public Compressor
{
  public:
    explicit RawCompressor(uint64_t window_bytes = kDefaultWindowBytes,
                           const KernelOps *kernels = nullptr)
        : Compressor(window_bytes, kernels)
    {
    }

    std::string name() const override { return "raw"; }

    void compressWindowInto(std::span<const uint8_t> window,
                            ByteVec &out) const override;

    Status decompressWindowInto(std::span<const uint8_t> payload,
                                uint64_t original_bytes,
                                uint8_t *out) const override;

    /** Raw never expands: the payload is exactly the window. */
    uint64_t compressedBound(uint64_t raw_len) const override
    {
        return raw_len;
    }
};

/**
 * Construct the serial codec for @p codec — makeCompressor() extended
 * over Codec::Raw. The policy engine and the engine's codec bank use
 * this so Raw is constructible through the same factory seam.
 */
std::unique_ptr<Compressor>
makeCodecCompressor(Codec codec,
                    uint64_t window_bytes = Compressor::kDefaultWindowBytes,
                    const KernelOps *kernels = nullptr);

} // namespace cdma

#endif // CDMA_COMPRESS_COMPRESSOR_HH
