#include "compress/deflate.hh"

#include <array>
#include <cstring>

#include "common/logging.hh"
#include "compress/huffman.hh"
#include "compress/kernels/kernels.hh"

namespace cdma {

namespace {

// RFC 1951 length codes: symbol 257 + i encodes lengths
// [kLengthBase[i], kLengthBase[i] + 2^kLengthExtra[i]).
constexpr std::array<uint16_t, 29> kLengthBase = {
    3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 15, 17, 19, 23, 27, 31,
    35, 43, 51, 59, 67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr std::array<uint8_t, 29> kLengthExtra = {
    0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2,
    3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

// RFC 1951 distance codes.
constexpr std::array<uint16_t, 30> kDistBase = {
    1, 2, 3, 4, 5, 7, 9, 13, 17, 25, 33, 49, 65, 97, 129, 193,
    257, 385, 513, 769, 1025, 1537, 2049, 3073, 4097, 6145,
    8193, 12289, 16385, 24577};
constexpr std::array<uint8_t, 30> kDistExtra = {
    0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6,
    7, 7, 8, 8, 9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

/** Length code index for a match length in [3, 258]. */
int
lengthCode(int length)
{
    for (int i = static_cast<int>(kLengthBase.size()) - 1; i >= 0; --i) {
        if (length >= kLengthBase[static_cast<size_t>(i)])
            return i;
    }
    panic("match length %d below DEFLATE minimum", length);
}

/** Distance code index for a match distance in [1, 32768]. */
int
distanceCode(int distance)
{
    for (int i = static_cast<int>(kDistBase.size()) - 1; i >= 0; --i) {
        if (distance >= kDistBase[static_cast<size_t>(i)])
            return i;
    }
    panic("match distance %d below DEFLATE minimum", distance);
}

/**
 * Serialize a code-length table as (4-bit length, 8-bit run-1) pairs.
 * Unused symbols form long zero runs, so the header stays a few dozen
 * bytes per window rather than the ~160 bytes of a flat table.
 */
void
writeLengths(BitWriter &writer, const std::vector<uint8_t> &lengths)
{
    size_t i = 0;
    while (i < lengths.size()) {
        const uint8_t value = lengths[i];
        size_t run = 1;
        while (i + run < lengths.size() && run < 256 &&
               lengths[i + run] == value) {
            ++run;
        }
        writer.put(value, 4);
        writer.put(static_cast<uint32_t>(run - 1), 8);
        i += run;
    }
}

/**
 * Inverse of writeLengths(); reads exactly @p count lengths into a
 * caller-held (typically per-thread) vector, which stops allocating
 * once it has reached the alphabet size. The header crosses the wire,
 * so a short or bit-flipped stream is a recoverable Status, not an
 * invariant violation: each iteration appends at least one length, so
 * the loop is bounded even when the reader has latched an overrun.
 */
Status
readLengthsInto(BitReader &reader, size_t count,
                std::vector<uint8_t> &lengths)
{
    lengths.clear();
    lengths.reserve(count);
    while (lengths.size() < count) {
        const uint8_t value = static_cast<uint8_t>(reader.get(4));
        const size_t run = reader.get(8) + 1;
        if (reader.overrun()) {
            return Status::truncated(
                "ZL: payload truncated in the code-length header "
                "(%zu of %zu lengths read)", lengths.size(), count);
        }
        if (lengths.size() + run > count) {
            return Status::corrupt(
                "ZL: code-length run of %zu at bit %llu overflows the "
                "%zu-symbol alphabet", run,
                static_cast<unsigned long long>(reader.bitPosition()),
                count);
        }
        lengths.insert(lengths.end(), run, value);
    }
    return Status();
}

} // namespace

DeflateCompressor::DeflateCompressor(uint64_t window_bytes,
                                     const Lz77Config &lz_config,
                                     const KernelOps *kernels)
    : Compressor(window_bytes, kernels), lz_config_(lz_config)
{
}

uint64_t
DeflateCompressor::compressedBound(uint64_t raw_len) const
{
    // Worst case is incompressible data: up to 15-bit literal codes plus
    // the serialized code-length tables.
    return 2 * raw_len + 512;
}

namespace {

/**
 * Per-thread compression scratch for the whole ZL window path: the
 * tokenizer state plus the Huffman stage's frequency tables,
 * code-length vectors and canonical encoders. The codec object is
 * shared read-only across ParallelCompressor lanes; each lane's scratch
 * reaches steady state after its first window and the ZL compress path
 * then allocates nothing per window (the frequency/code tables were its
 * last steady-state allocations, per ROADMAP).
 */
struct DeflateScratch {
    Lz77Scratch lz;
    std::vector<uint64_t> litlen_freq;
    std::vector<uint64_t> dist_freq;
    std::vector<uint8_t> litlen_lengths;
    std::vector<uint8_t> dist_lengths;
    HuffmanEncoder litlen_enc;
    HuffmanEncoder dist_enc;
};

/**
 * Per-thread decompression scratch, the prefetch-side mirror of
 * DeflateScratch: the header's code-length vectors and the two
 * canonical decoders are rebuilt in place per window instead of
 * reallocated, so the ZL decode path (each ParallelCompressor lane, or
 * the serial spill-arena walk) allocates nothing per window once its
 * scratch has seen the two alphabet sizes.
 */
struct DeflateDecodeScratch {
    std::vector<uint8_t> litlen_lengths;
    std::vector<uint8_t> dist_lengths;
    HuffmanDecoder litlen_dec;
    HuffmanDecoder dist_dec;
};

} // namespace

void
DeflateCompressor::compressWindowInto(std::span<const uint8_t> window,
                                      ByteVec &out) const
{
    static thread_local DeflateScratch scratch;
    const auto &tokens =
        lz77TokenizeInto(window, lz_config_, scratch.lz, &kernels());

    // Pass 1: symbol statistics (assign() reuses the scratch capacity).
    scratch.litlen_freq.assign(kLitLenSymbols, 0);
    scratch.dist_freq.assign(kDistSymbols, 0);
    std::vector<uint64_t> &litlen_freq = scratch.litlen_freq;
    std::vector<uint64_t> &dist_freq = scratch.dist_freq;
    for (const auto &token : tokens) {
        if (token.is_match) {
            ++litlen_freq[static_cast<size_t>(
                257 + lengthCode(token.length))];
            ++dist_freq[static_cast<size_t>(
                distanceCode(token.distance))];
        } else {
            ++litlen_freq[token.literal];
        }
    }
    ++litlen_freq[kEndOfBlock];

    buildCodeLengthsInto(litlen_freq, kMaxCodeLength,
                         scratch.litlen_lengths);
    buildCodeLengthsInto(dist_freq, kMaxCodeLength,
                         scratch.dist_lengths);
    const std::vector<uint8_t> &litlen_lengths = scratch.litlen_lengths;
    const std::vector<uint8_t> &dist_lengths = scratch.dist_lengths;
    scratch.litlen_enc.rebuild(litlen_lengths);
    scratch.dist_enc.rebuild(dist_lengths);
    const HuffmanEncoder &litlen_enc = scratch.litlen_enc;
    const HuffmanEncoder &dist_enc = scratch.dist_enc;

    // Pass 2: header (code-length tables) then the token stream, written
    // directly into the shared payload.
    BitWriter writer(out);
    writeLengths(writer, litlen_lengths);
    writeLengths(writer, dist_lengths);

    for (const auto &token : tokens) {
        if (token.is_match) {
            const int lcode = lengthCode(token.length);
            litlen_enc.encode(writer, 257 + lcode);
            writer.put(static_cast<uint32_t>(
                           token.length -
                           kLengthBase[static_cast<size_t>(lcode)]),
                       kLengthExtra[static_cast<size_t>(lcode)]);
            const int dcode = distanceCode(token.distance);
            dist_enc.encode(writer, dcode);
            writer.put(static_cast<uint32_t>(
                           token.distance -
                           kDistBase[static_cast<size_t>(dcode)]),
                       kDistExtra[static_cast<size_t>(dcode)]);
        } else {
            litlen_enc.encode(writer, token.literal);
        }
    }
    litlen_enc.encode(writer, kEndOfBlock);
    writer.flush();
}

Status
DeflateCompressor::decompressWindowInto(std::span<const uint8_t> payload,
                                        uint64_t original_bytes,
                                        uint8_t *out) const
{
    if (original_bytes == 0) {
        if (!payload.empty()) {
            return Status::corrupt(
                "ZL: %llu payload byte(s) for an empty window",
                static_cast<unsigned long long>(payload.size()));
        }
        return Status();
    }

    static thread_local DeflateDecodeScratch scratch;
    BitReader reader(payload);
    Status status =
        readLengthsInto(reader, kLitLenSymbols, scratch.litlen_lengths);
    if (!status.ok())
        return status;
    status = readLengthsInto(reader, kDistSymbols, scratch.dist_lengths);
    if (!status.ok())
        return status;
    scratch.litlen_dec.rebuild(scratch.litlen_lengths);
    scratch.dist_dec.rebuild(scratch.dist_lengths);
    const HuffmanDecoder &litlen_dec = scratch.litlen_dec;
    const HuffmanDecoder &dist_dec = scratch.dist_dec;

    // Every exit from this loop is bounded: literals and matches advance
    // pos toward original_bytes, and a latched reader overrun or invalid
    // code is checked each iteration — a flipped or missing wire bit
    // lands on a Status, never an OOB access or an unbounded spin.
    uint64_t pos = 0;
    for (;;) {
        const int symbol = litlen_dec.decode(reader);
        if (reader.overrun()) {
            return Status::truncated(
                "ZL: payload truncated in the token stream at bit %llu "
                "(%llu of %llu bytes decoded)",
                static_cast<unsigned long long>(reader.bitPosition()),
                static_cast<unsigned long long>(pos),
                static_cast<unsigned long long>(original_bytes));
        }
        if (symbol == HuffmanDecoder::kInvalidSymbol) {
            return Status::corrupt(
                "ZL: invalid literal/length code at bit %llu",
                static_cast<unsigned long long>(reader.bitPosition()));
        }
        if (symbol == kEndOfBlock)
            break;
        if (symbol < 256) {
            if (pos >= original_bytes) {
                return Status::corrupt(
                    "ZL: literal at bit %llu overflows the %llu-byte "
                    "window",
                    static_cast<unsigned long long>(reader.bitPosition()),
                    static_cast<unsigned long long>(original_bytes));
            }
            out[pos++] = static_cast<uint8_t>(symbol);
            continue;
        }
        const int lcode = symbol - 257;
        if (lcode >= static_cast<int>(kLengthBase.size())) {
            return Status::corrupt(
                "ZL: invalid length symbol %d at bit %llu", symbol,
                static_cast<unsigned long long>(reader.bitPosition()));
        }
        const int length = kLengthBase[static_cast<size_t>(lcode)] +
            static_cast<int>(
                reader.get(kLengthExtra[static_cast<size_t>(lcode)]));
        const int dcode = dist_dec.decode(reader);
        if (dcode == HuffmanDecoder::kInvalidSymbol ||
            dcode >= static_cast<int>(kDistBase.size())) {
            return Status::corrupt(
                "ZL: invalid distance symbol %d at bit %llu", dcode,
                static_cast<unsigned long long>(reader.bitPosition()));
        }
        const int distance = kDistBase[static_cast<size_t>(dcode)] +
            static_cast<int>(
                reader.get(kDistExtra[static_cast<size_t>(dcode)]));
        if (reader.overrun()) {
            return Status::truncated(
                "ZL: payload truncated in match extra bits at bit %llu",
                static_cast<unsigned long long>(reader.bitPosition()));
        }
        if (distance > static_cast<int>(pos)) {
            return Status::corrupt(
                "ZL: match distance %d at bit %llu exceeds %llu bytes "
                "of history", distance,
                static_cast<unsigned long long>(reader.bitPosition()),
                static_cast<unsigned long long>(pos));
        }
        if (pos + static_cast<uint64_t>(length) > original_bytes) {
            return Status::corrupt(
                "ZL: match of %d bytes at bit %llu overflows the "
                "%llu-byte window", length,
                static_cast<unsigned long long>(reader.bitPosition()),
                static_cast<unsigned long long>(original_bytes));
        }
        const uint8_t *src = out + pos - static_cast<uint64_t>(distance);
        if (distance >= length) {
            // Non-overlapping match: the kernel table's bulk copy (the
            // prefetch-side route the other codecs take too).
            kernels().copyBytes(out + pos, src,
                                static_cast<size_t>(length));
        } else {
            // Overlapping match (RLE-style): must copy forward.
            for (int i = 0; i < length; ++i)
                out[pos + static_cast<uint64_t>(i)] = src[i];
        }
        pos += static_cast<uint64_t>(length);
    }
    if (pos != original_bytes) {
        return Status::corrupt(
            "ZL: window decoded %llu bytes, expected %llu",
            static_cast<unsigned long long>(pos),
            static_cast<unsigned long long>(original_bytes));
    }
    // The encoder pads only to the next byte boundary; whole bytes past
    // the end-of-block symbol are framing corruption (a length field
    // pointing into a neighbouring window would otherwise pass).
    const uint64_t consumed = (reader.bitPosition() + 7) / 8;
    if (consumed < payload.size()) {
        return Status::corrupt(
            "ZL: %llu trailing byte(s) after the end-of-block symbol",
            static_cast<unsigned long long>(payload.size() - consumed));
    }
    return Status();
}

} // namespace cdma
