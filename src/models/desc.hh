/**
 * @file
 * Full-size descriptors of the six ImageNet networks the paper evaluates
 * (Table I): AlexNet, OverFeat, NiN, VGG-16, SqueezeNet and GoogLeNet.
 * A descriptor is the static per-layer metadata the memory-system
 * experiments need — output activation shapes, forward multiply-
 * accumulate counts, and whether a ReLU follows (i.e., whether the
 * offloaded map can be sparse) — computed from layer hyper-parameters by
 * DescBuilder rather than hand-entered, so shapes are arithmetically
 * consistent by construction.
 */

#ifndef CDMA_MODELS_DESC_HH
#define CDMA_MODELS_DESC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/layout.hh"

namespace cdma {

/** Static description of one layer's output in a full-size network. */
struct LayerDesc {
    std::string name;   ///< e.g. "conv1", "pool2", "fire4", "fc6"
    std::string kind;   ///< "conv" | "pool" | "fc" | "inception" | "fire"
    int64_t channels = 0; ///< output channels (C)
    int64_t height = 0;   ///< output height (H)
    int64_t width = 0;    ///< output width (W)
    uint64_t macs_per_image = 0; ///< forward MACs for one image
    bool relu_follows = false;   ///< output passes through ReLU
    double depth_fraction = 0.0; ///< 0 = first layer, 1 = last layer

    /** Output activation elements for one image. */
    int64_t elementsPerImage() const { return channels * height * width; }

    /** Output activation bytes for one image (fp32). */
    int64_t bytesPerImage() const { return elementsPerImage() * 4; }

    /** Output shape with the minibatch dimension applied. */
    Shape4D shape(int64_t batch) const
    {
        return {batch, channels, height, width};
    }
};

/** Static description of a full-size network. */
struct NetworkDesc {
    std::string name;
    int64_t default_batch = 256; ///< Table I minibatch size
    int64_t input_channels = 3;
    int64_t input_height = 224;
    int64_t input_width = 224;
    std::vector<LayerDesc> layers;

    /** Total forward MACs for one image. */
    uint64_t totalMacsPerImage() const;

    /** Total activation bytes offloaded per image (all layer outputs). */
    uint64_t totalActivationBytesPerImage() const;
};

/**
 * Incremental descriptor builder: tracks the running (C, H, W) and depth,
 * appending rows with derived shapes and MAC counts.
 */
class DescBuilder
{
  public:
    DescBuilder(std::string name, int64_t batch, int64_t c, int64_t h,
                int64_t w);

    /** Convolution (+ optional ReLU); group > 1 divides MACs (AlexNet). */
    DescBuilder &conv(const std::string &name, int64_t out_c, int64_t k,
                      int64_t stride, int64_t pad, int64_t group = 1,
                      bool relu = true);

    /** Pooling (max or avg; the descriptor does not distinguish). */
    DescBuilder &pool(const std::string &name, int64_t k, int64_t stride);

    /** Global average pooling to 1x1. */
    DescBuilder &globalPool(const std::string &name);

    /** Fully-connected layer (+ optional ReLU). */
    DescBuilder &fc(const std::string &name, int64_t out, bool relu = true);

    /**
     * GoogLeNet inception module: four parallel branches concatenated.
     * Adds one row for the internal reduce activations and one for the
     * module output.
     */
    DescBuilder &inception(const std::string &name, int64_t n1x1,
                           int64_t r3x3, int64_t n3x3, int64_t r5x5,
                           int64_t n5x5, int64_t pool_proj);

    /** SqueezeNet fire module: squeeze 1x1 then expand 1x1 + 3x3. */
    DescBuilder &fire(const std::string &name, int64_t squeeze,
                      int64_t expand1, int64_t expand3);

    /** Finalize: computes depth fractions and returns the descriptor. */
    NetworkDesc build();

  private:
    void push(LayerDesc desc);

    NetworkDesc desc_;
    int64_t c_;
    int64_t h_;
    int64_t w_;
};

/** AlexNet (Krizhevsky et al.), batch 256. */
NetworkDesc alexNetDesc();
/** OverFeat fast model (Sermanet et al.), batch 256. */
NetworkDesc overFeatDesc();
/** Network-in-Network (Lin et al.), batch 128. */
NetworkDesc ninDesc();
/** VGG-16 (Simonyan & Zisserman), batch 128. */
NetworkDesc vggDesc();
/** SqueezeNet v1.0 (Iandola et al.), batch 512. */
NetworkDesc squeezeNetDesc();
/** GoogLeNet v1 (Szegedy et al.), batch 256. */
NetworkDesc googLeNetDesc();

/** All six networks in the paper's figure order. */
std::vector<NetworkDesc> allNetworkDescs();

} // namespace cdma

#endif // CDMA_MODELS_DESC_HH
