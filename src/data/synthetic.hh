/**
 * @file
 * Procedurally generated image-classification dataset standing in for
 * ImageNet (which the paper trains on but which cannot be shipped or
 * trained in this environment; see DESIGN.md substitution table). Each of
 * the ten classes combines a class-specific oriented grating, a
 * class-positioned color blob, and pixel noise, making the task learnable
 * by small CNNs while exercising exactly the code paths of real training:
 * SGD on conv/ReLU/pool/FC stacks, whose ReLU outputs provide the sparse
 * activations the paper measures.
 */

#ifndef CDMA_DATA_SYNTHETIC_HH
#define CDMA_DATA_SYNTHETIC_HH

#include <vector>

#include "common/rng.hh"
#include "tensor/tensor.hh"

namespace cdma {

/** One labelled minibatch. */
struct Minibatch {
    Tensor4D images; ///< (N, C, H, W)
    std::vector<int> labels;
};

/** Configuration of the synthetic dataset. */
struct SyntheticDataConfig {
    int64_t classes = 10;
    int64_t channels = 3;
    int64_t height = 32;
    int64_t width = 32;
    double noise_stddev = 0.15;
    uint64_t seed = 0xC0FFEE;
};

/**
 * Deterministic synthetic dataset. Batches are generated on demand; the
 * "training set" is the stream from one seed and the "validation set" the
 * stream from another, so train/val never overlap.
 */
class SyntheticDataset
{
  public:
    explicit SyntheticDataset(const SyntheticDataConfig &config = {});

    /** Dataset configuration. */
    const SyntheticDataConfig &config() const { return config_; }

    /** Next training minibatch of @p batch_size samples. */
    Minibatch nextTrainBatch(int64_t batch_size);

    /** Next validation minibatch of @p batch_size samples. */
    Minibatch nextValBatch(int64_t batch_size);

    /** Render a single sample of class @p label into @p image sample n. */
    void renderSample(Tensor4D &image, int64_t n, int label, Rng &rng) const;

  private:
    Minibatch makeBatch(int64_t batch_size, Rng &rng);

    SyntheticDataConfig config_;
    Rng train_rng_;
    Rng val_rng_;
};

} // namespace cdma

#endif // CDMA_DATA_SYNTHETIC_HH
