/**
 * @file
 * Unit tests for the DMA staging-buffer occupancy model: the Section V-C
 * sizing rule (bandwidth-delay product, 70 KB at 200 GB/s x 350 ns) must
 * bound the worst-case occupancy, and compressible streams must keep PCIe
 * saturated with far less buffering.
 */

#include <gtest/gtest.h>

#include "gpu/dma_buffer.hh"
#include "gpu/gpu_spec.hh"

namespace cdma {
namespace {

TEST(DmaBuffer, SizingRuleIs70KB)
{
    DmaBufferModel model;
    // 200 GB/s x 350 ns = 70 KB, the paper's number.
    EXPECT_EQ(model.requiredBufferBytes(), 70'000u);
    GpuSpec spec;
    EXPECT_EQ(spec.dmaBufferBytes(), 70'000u);
}

TEST(DmaBuffer, IncompressibleStreamPeaksNearSizingRule)
{
    DmaBufferModel model;
    // 4 MB of lines that do not compress at all.
    const std::vector<uint32_t> lines(32768, 128);
    const DmaBufferStats stats = model.replay(lines);
    EXPECT_LE(stats.peak_occupancy_bytes,
              model.requiredBufferBytes() + 128);
    // And the rule is not grossly oversized: the worst case actually
    // uses a large fraction of it.
    EXPECT_GT(stats.peak_occupancy_bytes,
              model.requiredBufferBytes() / 2);
}

TEST(DmaBuffer, CompressedStreamUsesFarLessBuffer)
{
    DmaBufferModel model;
    // Lines compressing 8x (mostly zeros).
    const std::vector<uint32_t> lines(32768, 16);
    const DmaBufferStats stats = model.replay(lines);
    EXPECT_LT(stats.peak_occupancy_bytes,
              model.requiredBufferBytes() / 4);
}

TEST(DmaBuffer, PcieStaysBusyOnLongStreams)
{
    DmaBufferModel model;
    const std::vector<uint32_t> lines(65536, 64); // 2x compression
    const DmaBufferStats stats = model.replay(lines);
    // After the initial fill the drain never starves.
    EXPECT_GT(stats.pcie_busy_fraction, 0.95);
}

TEST(DmaBuffer, AccountsBytes)
{
    DmaBufferModel model;
    const std::vector<uint32_t> lines = {128, 64, 4, 128};
    const DmaBufferStats stats = model.replay(lines);
    EXPECT_EQ(stats.total_fetched_bytes, 4u * 128u);
    EXPECT_EQ(stats.total_drained_bytes, 128u + 64u + 4u + 128u);
    EXPECT_GT(stats.elapsed_seconds, 0.0);
}

TEST(DmaBuffer, EmptyStream)
{
    DmaBufferModel model;
    const DmaBufferStats stats = model.replay({});
    EXPECT_EQ(stats.peak_occupancy_bytes, 0u);
    EXPECT_EQ(stats.total_fetched_bytes, 0u);
}

TEST(DmaBuffer, FasterFetchNeedsBiggerBuffer)
{
    // The sizing rule scales with fetch bandwidth: compare 100 vs 300
    // GB/s provisioning on an incompressible stream.
    DmaBufferConfig slow;
    slow.fetch_bandwidth = 100e9;
    DmaBufferConfig fast;
    fast.fetch_bandwidth = 300e9;
    const std::vector<uint32_t> lines(16384, 128);
    const auto slow_stats = DmaBufferModel(slow).replay(lines);
    const auto fast_stats = DmaBufferModel(fast).replay(lines);
    EXPECT_GT(fast_stats.peak_occupancy_bytes,
              slow_stats.peak_occupancy_bytes);
}

} // namespace
} // namespace cdma
