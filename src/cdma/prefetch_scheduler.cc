#include "cdma/prefetch_scheduler.hh"

#include <algorithm>
#include <functional>
#include <queue>

#include "common/bits.hh"
#include "common/logging.hh"
#include "sim/channel.hh"
#include "sim/event_queue.hh"

namespace cdma {

PrefetchScheduler::PrefetchScheduler(const CdmaEngine &engine)
    : engine_(engine)
{
    const CdmaConfig &config = engine.config();
    const uint64_t shard_bytes = config.shard_bytes > 0
        ? config.shard_bytes
        : config.gpu.dmaBufferBytes();
    shard_windows_ = std::max<uint64_t>(1, shard_bytes /
                                               config.window_bytes);
    CDMA_ASSERT(config.staging_buffers >= 1,
                "the prefetch pipeline needs at least one staging buffer");
}

PrefetchTiming
PrefetchScheduler::timingFor(std::span<const ShardTransfer> shards) const
{
    const CdmaConfig &config = engine_.config();
    return pipelineTiming(shards, config.gpu.pcie_effective_bandwidth,
                          config.gpu.comp_bandwidth,
                          config.staging_buffers);
}

PrefetchResult
PrefetchScheduler::prefetch(const CompressedBuffer &buffer) const
{
    PrefetchResult result;
    result.data.resize(buffer.original_bytes);
    result.shards.reserve(ceilDiv(buffer.window_sizes.size(),
                                  shard_windows_));

    // The consumer is the expand drain: notifications arrive on this
    // thread in shard order while the lanes reconstruct later shards,
    // recording each shard's byte counts for the pipeline model (the
    // raw bytes themselves land directly in the output region).
    engine_.compressor().decompressShards(
        buffer, shard_windows_, result.data.data(),
        [&](const ParallelCompressor::DecompressedShard &shard) {
            result.shards.push_back({shard.raw_bytes, shard.wire_bytes});
        });

    result.timing = timingFor(result.shards);
    return result;
}

PrefetchResult
PrefetchScheduler::prefetch(const SpillArena &arena,
                            SpillTicket ticket) const
{
    const uint64_t original_bytes = arena.originalBytes(ticket);
    const uint64_t window_bytes = arena.windowBytes(ticket);
    const Compressor &codec = engine_.compressor().serial();

    PrefetchResult result;
    result.data.resize(original_bytes);
    result.shards.reserve(arena.shardCount(ticket));

    // Shards expand in store order straight out of the arena slots —
    // no stitched payload copy. The drain is serial here: the arena
    // path models the steady-state training loop, where the prefetch
    // engine walks one spilled layer at a time.
    for (size_t s = 0; s < arena.shardCount(ticket); ++s) {
        const SpillShardView view = arena.shard(ticket, s);
        uint64_t cursor = 0;
        uint64_t window = view.first_window;
        for (const uint32_t size : view.window_sizes) {
            const uint64_t out_offset = window * window_bytes;
            const uint64_t raw = std::min<uint64_t>(
                window_bytes, original_bytes - out_offset);
            codec.decompressWindowInto(
                view.payload.subspan(cursor, size), raw,
                result.data.data() + out_offset);
            cursor += size;
            ++window;
        }
        CDMA_ASSERT(cursor == view.payload.size(),
                    "spilled shard payload not fully consumed");
        result.shards.push_back({view.raw_bytes, view.wire_bytes});
    }

    result.timing = timingFor(result.shards);
    return result;
}

namespace {

/** Overlap fraction of @p timing in [0,1] (shared finalization rule). */
void
finalizeOverlapFraction(PrefetchTiming &timing)
{
    const double hideable =
        std::min(timing.wire_seconds, timing.decompress_seconds);
    timing.overlap_fraction = hideable > 0.0
        ? std::clamp(timing.hiddenSeconds() / hideable, 0.0, 1.0)
        : 0.0;
}

} // namespace

PrefetchTiming
PrefetchScheduler::modelFromRatio(uint64_t raw_bytes, double ratio) const
{
    CDMA_ASSERT(ratio >= 1.0, "ratio %f below store-raw floor", ratio);
    const CdmaConfig &config = engine_.config();
    const double wire_bw = config.gpu.pcie_effective_bandwidth;
    const double decomp_bw = config.gpu.comp_bandwidth;
    const unsigned buffers = config.staging_buffers;
    const uint64_t shard_raw = shard_windows_ * config.window_bytes;

    PrefetchTiming timing;
    if (raw_bytes == 0)
        return timing;

    // Closed form over the shard shape the DES would replay: `full`
    // uniform shards of shard_raw bytes plus at most one partial tail,
    // with the per-shard wire bytes reproducing the DES arithmetic
    // exactly (store-raw-floored truncation per shard). Stage one is
    // the wire, stage two the serial decompression engine — the
    // offload closed form with the roles swapped.
    const uint64_t full = raw_bytes / shard_raw;
    const uint64_t tail_raw = raw_bytes % shard_raw;
    timing.shard_count = full + (tail_raw != 0 ? 1 : 0);

    const double d = static_cast<double>(shard_raw) / decomp_bw;
    const double w = static_cast<double>(static_cast<uint64_t>(
                         static_cast<double>(shard_raw) / ratio)) /
        wire_bw;
    const double tail_d = static_cast<double>(tail_raw) / decomp_bw;
    const double tail_w = static_cast<double>(static_cast<uint64_t>(
                              static_cast<double>(tail_raw) / ratio)) /
        wire_bw;

    const double n = static_cast<double>(full);
    timing.wire_seconds = n * w + tail_w;
    timing.decompress_seconds = n * d + tail_d;

    if (buffers == 1) {
        // A single staging buffer serializes every shard end to end.
        timing.overlapped_seconds =
            timing.wire_seconds + timing.decompress_seconds;
    } else if (full == 0) {
        // Tail-only transfer: one shard, nothing to overlap with.
        timing.overlapped_seconds = tail_w + tail_d;
    } else if (d >= w) {
        // Decompression-bound (fetch-capped layers land here: high
        // ratios make the wire leg short): one wire fill, then the
        // serial decompression engine never starves (the tail's wire
        // time hides under the previous shard's expansion because
        // tail_w <= w <= d).
        timing.overlapped_seconds = w + n * d + tail_d;
    } else {
        // Wire-bound: the FIFO link paces the pipeline; the tail's
        // expansion waits for whichever of its own wire transfer or
        // the previous shard's expansion finishes last.
        timing.overlapped_seconds =
            n * w + std::max(tail_w, d) + tail_d;
    }
    finalizeOverlapFraction(timing);
    return timing;
}

PrefetchTiming
PrefetchScheduler::pipelineTiming(std::span<const ShardTransfer> shards,
                                  double wire_bandwidth,
                                  double decompress_bandwidth,
                                  unsigned staging_buffers)
{
    CDMA_ASSERT(wire_bandwidth > 0.0 && decompress_bandwidth > 0.0,
                "pipeline model needs positive bandwidths");
    CDMA_ASSERT(staging_buffers >= 1, "need at least one staging buffer");

    PrefetchTiming timing;
    timing.shard_count = shards.size();
    if (shards.empty())
        return timing;

    EventQueue queue;
    Channel wire(queue, "pcie", wire_bandwidth);

    // Double-buffer state machine, the offload DES with the stages
    // swapped: a shard enters the wire only when a staging buffer is
    // free, queues FIFO on the channel, and hands off to the serial
    // decompression engine as it lands. Events are deterministic (FIFO
    // tie-break in the queue).
    size_t next_shard = 0;
    size_t in_flight = 0;       // shards holding a staging buffer
    bool expanding = false;     // the decompression engine is serial
    std::queue<size_t> landed;  // wired shards awaiting decompression
    SimTime last_expand = 0.0;

    std::function<void()> startWire;
    std::function<void()> startExpand = [&] {
        if (expanding || landed.empty())
            return;
        const size_t k = landed.front();
        landed.pop();
        expanding = true;
        const SimTime expand_time =
            static_cast<double>(shards[k].raw_bytes) /
            decompress_bandwidth;
        queue.scheduleAfter(expand_time, [&] {
            // Shard re-inflated: its staging buffer frees, so the next
            // shard may enter the wire while the engine picks up the
            // next landed shard.
            expanding = false;
            --in_flight;
            last_expand = queue.now();
            startExpand();
            startWire();
        });
    };
    startWire = [&] {
        if (next_shard >= shards.size() || in_flight >= staging_buffers)
            return;
        const size_t k = next_shard++;
        ++in_flight;
        wire.submit(shards[k].wire_bytes, [&, k] {
            landed.push(k);
            startExpand();
            startWire();
        });
        startWire();
    };
    startWire();
    queue.run();

    timing.wire_seconds = wire.busySeconds();
    for (const ShardTransfer &shard : shards) {
        timing.decompress_seconds +=
            static_cast<double>(shard.raw_bytes) / decompress_bandwidth;
    }
    timing.overlapped_seconds = last_expand;
    finalizeOverlapFraction(timing);
    return timing;
}

} // namespace cdma
