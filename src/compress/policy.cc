#include "compress/policy.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/bits.hh"
#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace cdma {

namespace {

/**
 * Seed cost curves: the committed BENCH_kernel_throughput.json
 * trajectory (avx512 dispatch rows, 1-core recording host), so the
 * policy prices sensibly out of the box. densities are the bench's
 * sweep points; loadBenchJson() replaces these with a fresh run and
 * observe() refines them online from measured wall-clock.
 */
constexpr struct {
    double density;
    double bytes_per_second;
    double ratio;
} kZvcSeed[] = {
    {0.10, 12.11e9, 7.619}, {0.40, 12.03e9, 2.325},
    {0.50, 11.82e9, 1.889}, {0.70, 13.38e9, 1.375},
    {1.00, 13.06e9, 1.000},
},
  kRleSeed[] = {
    {0.10, 8.92e9, 9.272}, {0.40, 3.69e9, 2.406},
    {0.50, 3.51e9, 1.937}, {0.70, 3.90e9, 1.399},
    {1.00, 14.10e9, 1.000},
},
  kZlibSeed[] = {
    {0.10, 75.8e6, 8.200}, {0.40, 29.1e6, 2.594},
    {1.00, 15.0e6, 1.4215},
};

/** Extract the first JSON number following @p key inside
 *  [@p begin, @p end) of @p text; NaN when absent. */
double
numberAfter(const std::string &text, size_t begin, size_t end,
            const char *key)
{
    const size_t at = text.find(key, begin);
    if (at == std::string::npos || at >= end)
        return std::numeric_limits<double>::quiet_NaN();
    size_t cursor = at + std::strlen(key);
    while (cursor < end &&
           (text[cursor] == ':' || text[cursor] == ' ' ||
            text[cursor] == '\t'))
        ++cursor;
    return std::strtod(text.c_str() + cursor, nullptr);
}

} // namespace

CodecPolicyEngine::CodecPolicyEngine(PolicyConfig config)
    : config_(config)
{
    CDMA_ASSERT(config_.wire_bandwidth > 0,
                "policy wire bandwidth must be positive");
    CDMA_ASSERT(config_.hysteresis_iterations >= 1,
                "hysteresis needs at least one iteration");
    CDMA_ASSERT(config_.ewma_alpha > 0 && config_.ewma_alpha <= 1.0,
                "EWMA alpha must be in (0, 1]");
    for (const auto &p : kZvcSeed)
        zvc_curve_.push_back({p.density, p.bytes_per_second, p.ratio});
    for (const auto &p : kRleSeed)
        rle_curve_.push_back({p.density, p.bytes_per_second, p.ratio});
    for (const auto &p : kZlibSeed)
        zlib_curve_.push_back({p.density, p.bytes_per_second, p.ratio});
}

const std::vector<CodecPolicyEngine::CostPoint> &
CodecPolicyEngine::curve(Codec codec) const
{
    switch (codec) {
      case Codec::Rle:  return rle_curve_;
      case Codec::Zvc:  return zvc_curve_;
      case Codec::Zlib: return zlib_curve_;
      case Codec::Raw:
        break;
    }
    panic("Codec::Raw has no cost curve");
}

std::vector<CodecPolicyEngine::CostPoint> &
CodecPolicyEngine::curve(Codec codec)
{
    return const_cast<std::vector<CostPoint> &>(
        static_cast<const CodecPolicyEngine *>(this)->curve(codec));
}

double
CodecPolicyEngine::compressThroughput(Codec codec, double density) const
{
    if (codec == Codec::Raw)
        return std::numeric_limits<double>::infinity();
    const std::vector<CostPoint> &points = curve(codec);
    if (points.empty())
        return std::numeric_limits<double>::infinity();
    density = std::clamp(density, 0.0, 1.0);
    if (density <= points.front().density)
        return points.front().bytes_per_second;
    if (density >= points.back().density)
        return points.back().bytes_per_second;
    for (size_t i = 1; i < points.size(); ++i) {
        if (density > points[i].density)
            continue;
        const CostPoint &lo = points[i - 1];
        const CostPoint &hi = points[i];
        const double t =
            (density - lo.density) / (hi.density - lo.density);
        return lo.bytes_per_second +
            t * (hi.bytes_per_second - lo.bytes_per_second);
    }
    return points.back().bytes_per_second;
}

double
CodecPolicyEngine::predictedRatio(Codec codec, double density) const
{
    if (codec == Codec::Raw)
        return 1.0;
    const std::vector<CostPoint> &points = curve(codec);
    if (points.empty())
        return 1.0;
    density = std::clamp(density, 0.0, 1.0);
    if (density <= points.front().density)
        return std::max(1.0, points.front().ratio);
    if (density >= points.back().density)
        return std::max(1.0, points.back().ratio);
    for (size_t i = 1; i < points.size(); ++i) {
        if (density > points[i].density)
            continue;
        const CostPoint &lo = points[i - 1];
        const CostPoint &hi = points[i];
        const double t =
            (density - lo.density) / (hi.density - lo.density);
        return std::max(1.0, lo.ratio + t * (hi.ratio - lo.ratio));
    }
    return std::max(1.0, points.back().ratio);
}

double
CodecPolicyEngine::predictedSeconds(Codec codec, uint64_t raw_bytes,
                                    double density) const
{
    const double bytes = static_cast<double>(raw_bytes);
    const double throughput = compressThroughput(codec, density);
    const double compress_seconds =
        std::isinf(throughput) ? 0.0 : bytes / throughput;
    const double wire_bytes = bytes / predictedRatio(codec, density);
    return compress_seconds + wire_bytes / config_.wire_bandwidth;
}

double
CodecPolicyEngine::sampleDensity(std::span<const uint8_t> data) const
{
    const uint64_t total_words = data.size() / 4;
    if (total_words == 0)
        return 1.0;
    const uint64_t window_bytes = std::max<uint64_t>(4, config_.window_bytes);
    const uint64_t windows = ceilDiv(data.size(), window_bytes);
    const uint64_t sampled_windows =
        std::min<uint64_t>(windows, std::max(1u, config_.max_sample_windows));
    // Even strides at both levels keep the probe deterministic and
    // spread it across the whole buffer (activation density is not
    // uniform across a feature map).
    const uint64_t window_stride = windows / sampled_windows;
    uint64_t sampled = 0;
    uint64_t nonzero = 0;
    for (uint64_t i = 0; i < sampled_windows; ++i) {
        const uint64_t base = i * window_stride * window_bytes;
        const uint64_t span_words =
            std::min<uint64_t>(window_bytes, data.size() - base) / 4;
        if (span_words == 0)
            continue;
        const uint64_t words = std::min<uint64_t>(
            span_words, std::max(1u, config_.sample_words_per_window));
        const uint64_t word_stride = span_words / words;
        for (uint64_t w = 0; w < words; ++w) {
            uint32_t value;
            std::memcpy(&value, data.data() + base + w * word_stride * 4,
                        sizeof(value));
            ++sampled;
            nonzero += value != 0;
        }
    }
    if (sampled == 0)
        return 1.0;
    return static_cast<double>(nonzero) / static_cast<double>(sampled);
}

PolicyDecision
CodecPolicyEngine::decide(const std::string &label,
                          std::span<const uint8_t> data)
{
    return decideFromDensity(label, data.size(), sampleDensity(data));
}

PolicyDecision
CodecPolicyEngine::decideFromDensity(const std::string &label,
                                     uint64_t raw_bytes, double density)
{
    density = std::clamp(density, 0.0, 1.0);
    LayerState &state = layers_[label];

    PolicyDecision decision;
    decision.sampled_density = density;
    if (!state.initialized) {
        state.ewma_density = density;
    } else {
        state.ewma_density = config_.ewma_alpha * density +
            (1.0 - config_.ewma_alpha) * state.ewma_density;
    }
    decision.density = state.ewma_density;

    // Price every candidate at the smoothed density; the argmin is the
    // challenger, the hysteresis below decides whether it takes over.
    Codec best = Codec::Raw;
    double best_cost = std::numeric_limits<double>::infinity();
    for (const Codec candidate : kAllCodecs) {
        if (candidate == Codec::Zlib && !config_.allow_zlib)
            continue;
        const double cost =
            predictedSeconds(candidate, raw_bytes, state.ewma_density);
        if (cost < best_cost) {
            best = candidate;
            best_cost = cost;
        }
    }

    if (!state.initialized) {
        // First sight of this layer: adopt the argmin outright. There
        // is no incumbent to protect, so this is not a "switch".
        state.initialized = true;
        state.active = best;
        state.streak = 0;
    } else if (best == state.active) {
        state.streak = 0;
    } else {
        const double active_cost = predictedSeconds(
            state.active, raw_bytes, state.ewma_density);
        const double win =
            active_cost > 0 ? 1.0 - best_cost / active_cost : 0.0;
        // Inclusive margin test (an epsilon absorbs the subtraction
        // rounding so "exactly at the margin" qualifies).
        if (win >= config_.switch_margin - 1e-12) {
            if (state.challenger == best) {
                ++state.streak;
            } else {
                state.challenger = best;
                state.streak = 1;
            }
            if (state.streak >= config_.hysteresis_iterations) {
                state.active = best;
                state.streak = 0;
                decision.switched = true;
                ++switches_;
                if (config_.metrics != nullptr)
                    config_.metrics->counter("policy.switches").add(1);
            }
        } else {
            state.streak = 0;
        }
    }

    decision.codec = state.active;
    decision.predicted_ratio =
        predictedRatio(state.active, state.ewma_density);
    decision.predicted_seconds =
        predictedSeconds(state.active, raw_bytes, state.ewma_density);
    decision.raw_seconds =
        static_cast<double>(raw_bytes) / config_.wire_bandwidth;

    ++decisions_;
    if (config_.metrics != nullptr) {
        config_.metrics->counter("policy.decisions").add(1);
        // Register the switch counter even before any switch fires, so
        // a zero-switch run exports "policy.switches: 0" instead of
        // omitting the series.
        config_.metrics->counter("policy.switches");
    }
    emitDecisionTrace(label, decision);
    return decision;
}

void
CodecPolicyEngine::emitDecisionTrace(const std::string &label,
                                     const PolicyDecision &decision)
{
    obs::TraceRecorder *trace = config_.trace;
    if (trace == nullptr)
        return;
    const uint32_t track = trace->track("policy", "decisions");
    trace->instant(
        track, codecName(decision.codec), trace->tick(),
        obs::TraceArgs{{"layer", label},
                       {"density", decision.density},
                       {"predicted_ratio", decision.predicted_ratio},
                       {"switched",
                        static_cast<uint64_t>(decision.switched)}});
}

void
CodecPolicyEngine::observe(const std::string &label,
                           const PolicyDecision &decision,
                           uint64_t raw_bytes, double actual_ratio,
                           double actual_compress_seconds)
{
    actual_ratio = std::max(1.0, actual_ratio);
    const double bytes = static_cast<double>(raw_bytes);
    // Re-price the decision's codec at what actually happened: the
    // measured compress wall-clock when the caller has one (the real
    // byte-moving flows), else the model's own compress term (the
    // planFromRatio flows, where only the ratio is ground truth).
    double compress_seconds = actual_compress_seconds;
    if (compress_seconds <= 0.0) {
        const double throughput =
            compressThroughput(decision.codec, decision.density);
        compress_seconds =
            std::isinf(throughput) ? 0.0 : bytes / throughput;
    }
    const double actual_seconds = compress_seconds +
        (bytes / actual_ratio) / config_.wire_bandwidth;
    if (config_.metrics != nullptr && actual_seconds > 0) {
        config_.metrics->histogram("policy.predicted_error")
            .record(std::fabs(decision.predicted_seconds -
                              actual_seconds) /
                    actual_seconds);
    }

    // Online refinement: fold the measurement into the nearest curve
    // point so the model tracks the host it is actually running on.
    if (decision.codec == Codec::Raw)
        return;
    std::vector<CostPoint> &points = curve(decision.codec);
    if (points.empty())
        return;
    size_t nearest = 0;
    for (size_t i = 1; i < points.size(); ++i) {
        if (std::fabs(points[i].density - decision.density) <
            std::fabs(points[nearest].density - decision.density))
            nearest = i;
    }
    constexpr double kBlend = 0.25; // gentle: one odd batch can't warp the curve
    if (actual_compress_seconds > 0.0 && raw_bytes > 0) {
        const double measured_bps = bytes / actual_compress_seconds;
        points[nearest].bytes_per_second =
            (1.0 - kBlend) * points[nearest].bytes_per_second +
            kBlend * measured_bps;
    }
    points[nearest].ratio = (1.0 - kBlend) * points[nearest].ratio +
        kBlend * actual_ratio;
    (void)label;
}

void
CodecPolicyEngine::setCostPoint(Codec codec, double density,
                                double bytes_per_second, double ratio)
{
    CDMA_ASSERT(codec != Codec::Raw, "Codec::Raw has no cost curve");
    std::vector<CostPoint> &points = curve(codec);
    for (CostPoint &point : points) {
        if (std::fabs(point.density - density) < 1e-9) {
            point.bytes_per_second = bytes_per_second;
            if (ratio > 0)
                point.ratio = ratio;
            return;
        }
    }
    CostPoint inserted{density, bytes_per_second, ratio > 0 ? ratio : 1.0};
    const auto at = std::lower_bound(
        points.begin(), points.end(), density,
        [](const CostPoint &p, double d) { return p.density < d; });
    points.insert(at, inserted);
}

bool
CodecPolicyEngine::loadBenchJson(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream slurp;
    slurp << in.rdbuf();
    const std::string text = slurp.str();

    struct Family {
        const char *name;
        Codec codec;
    };
    static constexpr Family kFamilies[] = {
        {"BM_ZvcCompress/", Codec::Zvc},
        {"BM_RleCompress/", Codec::Rle},
        {"BM_DeflateCompress/", Codec::Zlib},
    };

    std::vector<CostPoint> fresh[3];
    size_t cursor = 0;
    static const std::string kNameKey = "\"name\"";
    while ((cursor = text.find(kNameKey, cursor)) != std::string::npos) {
        const size_t open = text.find('"', cursor + kNameKey.size());
        if (open == std::string::npos)
            break;
        const size_t close = text.find('"', open + 1);
        if (close == std::string::npos)
            break;
        const std::string name = text.substr(open + 1, close - open - 1);
        const size_t next = text.find(kNameKey, close);
        const size_t row_end =
            next == std::string::npos ? text.size() : next;
        cursor = close;
        for (size_t f = 0; f < 3; ++f) {
            const std::string prefix = kFamilies[f].name;
            if (name.rfind(prefix, 0) != 0)
                continue;
            // Only the runtime-dispatch family: the suffix must be the
            // density integer alone, no backend/parallel decoration.
            const std::string suffix = name.substr(prefix.size());
            if (suffix.empty() ||
                suffix.find_first_not_of("0123456789") !=
                    std::string::npos)
                continue;
            const double density = std::stod(suffix) / 100.0;
            const double bps = numberAfter(text, close, row_end,
                                           "\"bytes_per_second\"");
            const double ratio =
                numberAfter(text, close, row_end, "\"ratio\"");
            if (!std::isfinite(bps) || bps <= 0)
                continue;
            fresh[f].push_back(
                {density, bps,
                 std::isfinite(ratio) && ratio > 0 ? ratio : 1.0});
        }
    }

    bool any = false;
    for (size_t f = 0; f < 3; ++f) {
        if (fresh[f].empty())
            continue;
        std::sort(fresh[f].begin(), fresh[f].end(),
                  [](const CostPoint &a, const CostPoint &b) {
                      return a.density < b.density;
                  });
        curve(kFamilies[f].codec) = std::move(fresh[f]);
        any = true;
    }
    return any;
}

void
CodecPolicyEngine::reset()
{
    layers_.clear();
}

} // namespace cdma
