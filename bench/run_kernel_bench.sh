#!/usr/bin/env bash
# Run the kernel-throughput microbenchmarks and record the results as
# BENCH_kernel_throughput.json at the repo root, so successive PRs have a
# perf trajectory to compare against. The recorded families cover both
# pipeline directions: BM_*Compress{,Scalar,Avx2} for the offload leg
# and BM_*Decompress{,Scalar,Avx2} for the prefetch (expand) leg —
# bench/check_bench_json.py validates both sets.
#
# Usage: bench/run_kernel_bench.sh [extra google-benchmark flags...]
# Env: BUILD_DIR overrides the build tree, BENCH_OUT the output path
# (e.g. a scratch file for the CI smoke run, so a reduced-iteration run
# never overwrites the checked-in trajectory numbers).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"
binary="${build_dir}/bench/kernel_throughput"
out="${BENCH_OUT:-${repo_root}/BENCH_kernel_throughput.json}"

if [[ ! -x "${binary}" ]]; then
    echo "building kernel_throughput..." >&2
    cmake -B "${build_dir}" -S "${repo_root}"
    cmake --build "${build_dir}" --target kernel_throughput -j"$(nproc)"
fi

"${binary}" \
    --benchmark_format=json \
    --benchmark_out="${out}" \
    --benchmark_out_format=json \
    "$@"

echo "wrote ${out}" >&2
