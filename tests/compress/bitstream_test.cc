/** @file Unit tests for the LSB-first bit stream. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/bitstream.hh"

namespace cdma {
namespace {

TEST(BitStream, SingleBitsRoundTrip)
{
    BitWriter writer;
    const int pattern[] = {1, 0, 1, 1, 0, 0, 1, 0, 1};
    for (int bit : pattern)
        writer.put(static_cast<uint32_t>(bit), 1);
    const auto bytes = writer.finish();

    BitReader reader(bytes);
    for (int bit : pattern)
        EXPECT_EQ(reader.getBit(), static_cast<uint32_t>(bit));
}

TEST(BitStream, MultiBitFieldsRoundTrip)
{
    BitWriter writer;
    writer.put(0b101, 3);
    writer.put(0xDEAD, 16);
    writer.put(0x3FFFFFFF, 30);
    const auto bytes = writer.finish();

    BitReader reader(bytes);
    EXPECT_EQ(reader.get(3), 0b101u);
    EXPECT_EQ(reader.get(16), 0xDEADu);
    EXPECT_EQ(reader.get(30), 0x3FFFFFFFu);
}

TEST(BitStream, ZeroBitWriteIsNoop)
{
    BitWriter writer;
    writer.put(0xFFFF, 0);
    EXPECT_EQ(writer.bitCount(), 0u);
    writer.put(1, 1);
    EXPECT_EQ(writer.bitCount(), 1u);
}

TEST(BitStream, FinalByteIsZeroPadded)
{
    BitWriter writer;
    writer.put(1, 1);
    const auto bytes = writer.finish();
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], 0x01);
}

TEST(BitStream, ExhaustedDetectsEnd)
{
    BitWriter writer;
    writer.put(0xAB, 8);
    const auto bytes = writer.finish();
    BitReader reader(bytes);
    EXPECT_FALSE(reader.exhausted(8));
    reader.get(8);
    EXPECT_TRUE(reader.exhausted(1));
}

TEST(BitStream, ReadPastEndLatchesOverrun)
{
    // A truncated wire payload is data, not an invariant: reading past
    // the end returns zero bits and latches overrun() instead of
    // panicking, so decoders can surface a recoverable Status.
    std::vector<uint8_t> one_byte = {0xFF};
    BitReader reader(one_byte);
    EXPECT_EQ(reader.get(8), 0xFFu);
    EXPECT_FALSE(reader.overrun());
    EXPECT_EQ(reader.get(1), 0u);
    EXPECT_TRUE(reader.overrun());
    // The flag stays latched and later reads keep returning zero bits.
    EXPECT_EQ(reader.get(32), 0u);
    EXPECT_TRUE(reader.overrun());
}

TEST(BitStream, RandomFieldsRoundTrip)
{
    Rng rng(42);
    std::vector<std::pair<uint32_t, int>> fields;
    BitWriter writer;
    for (int i = 0; i < 500; ++i) {
        const int width = 1 + static_cast<int>(rng.uniformInt(24));
        const uint32_t value = static_cast<uint32_t>(
            rng.next() & ((1ull << width) - 1));
        fields.emplace_back(value, width);
        writer.put(value, width);
    }
    const auto bytes = writer.finish();
    BitReader reader(bytes);
    for (auto [value, width] : fields)
        EXPECT_EQ(reader.get(width), value);
}

} // namespace
} // namespace cdma
