/** @file Unit tests for Tensor4D. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "tensor/tensor.hh"

namespace cdma {
namespace {

TEST(Tensor, DefaultIsSingleZeroElement)
{
    Tensor4D t;
    EXPECT_EQ(t.elements(), 1);
    EXPECT_EQ(t.at(0, 0, 0, 0), 0.0f);
}

TEST(Tensor, ZeroInitialized)
{
    Tensor4D t(Shape4D{2, 3, 4, 5});
    for (float v : t.data())
        EXPECT_EQ(v, 0.0f);
    EXPECT_EQ(t.zeroCount(), t.elements());
    EXPECT_DOUBLE_EQ(t.density(), 0.0);
}

TEST(Tensor, FillAndDensity)
{
    Tensor4D t(Shape4D{1, 2, 2, 2});
    t.fill(1.5f);
    EXPECT_DOUBLE_EQ(t.density(), 1.0);
    t.at(0, 0, 0, 0) = 0.0f;
    t.at(0, 1, 1, 1) = 0.0f;
    EXPECT_DOUBLE_EQ(t.density(), 6.0 / 8.0);
    EXPECT_EQ(t.zeroCount(), 2);
}

TEST(Tensor, AtReadsBackWrites)
{
    Tensor4D t(Shape4D{2, 3, 4, 5}, Layout::NHWC);
    t.at(1, 2, 3, 4) = 42.0f;
    EXPECT_EQ(t.at(1, 2, 3, 4), 42.0f);
    // Exactly one element written.
    EXPECT_EQ(t.zeroCount(), t.elements() - 1);
}

TEST(Tensor, BytesIsFourPerElement)
{
    Tensor4D t(Shape4D{2, 2, 2, 2});
    EXPECT_EQ(t.bytes(), 16 * 4);
    EXPECT_EQ(t.rawBytes().size(), static_cast<size_t>(t.bytes()));
}

class TensorLayoutConversion
    : public ::testing::TestWithParam<std::pair<Layout, Layout>>
{
};

TEST_P(TensorLayoutConversion, PreservesLogicalContents)
{
    auto [from, to] = GetParam();
    Rng rng(99);
    Tensor4D t(Shape4D{2, 3, 4, 5}, from);
    for (float &v : t.data())
        v = rng.bernoulli(0.5) ? 0.0f
                               : static_cast<float>(rng.normal());

    const Tensor4D converted = t.toLayout(to);
    EXPECT_EQ(converted.layout(), to);
    EXPECT_EQ(converted.shape(), t.shape());
    for (int64_t n = 0; n < 2; ++n)
        for (int64_t c = 0; c < 3; ++c)
            for (int64_t h = 0; h < 4; ++h)
                for (int64_t w = 0; w < 5; ++w)
                    EXPECT_EQ(converted.at(n, c, h, w), t.at(n, c, h, w));

    // Density is layout-invariant (the ZVC ratio depends on it alone).
    EXPECT_DOUBLE_EQ(converted.density(), t.density());
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, TensorLayoutConversion,
    ::testing::Values(std::pair{Layout::NCHW, Layout::NHWC},
                      std::pair{Layout::NCHW, Layout::CHWN},
                      std::pair{Layout::NHWC, Layout::NCHW},
                      std::pair{Layout::NHWC, Layout::CHWN},
                      std::pair{Layout::CHWN, Layout::NCHW},
                      std::pair{Layout::CHWN, Layout::NHWC},
                      std::pair{Layout::NCHW, Layout::NCHW}));

TEST(Tensor, ConversionToSameLayoutIsIdentity)
{
    Tensor4D t(Shape4D{1, 2, 3, 4}, Layout::CHWN);
    t.at(0, 1, 2, 3) = 7.0f;
    const Tensor4D same = t.toLayout(Layout::CHWN);
    EXPECT_EQ(same.at(0, 1, 2, 3), 7.0f);
}

} // namespace
} // namespace cdma
