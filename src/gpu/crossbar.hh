/**
 * @file
 * Crossbar bandwidth accounting for the two candidate placements of the
 * (de)compression units (Section V-B). The GPU's on-chip crossbar
 * connects the memory controllers to the SMs and the DMA engine:
 *
 *  - Placing compression at the *memory controllers* (the paper's
 *    design, boxes "C" in Figure 9) means compressed data crosses the
 *    crossbar, so the DMA slice only needs PCIe-rate bandwidth.
 *  - Placing compression *inside the DMA engine* means uncompressed data
 *    crosses the crossbar at compression_ratio x PCIe rate — up to
 *    13.8 x 16 = 220.8 GB/s, an unreasonable provisioning for a unit
 *    that otherwise needs 16 GB/s.
 *
 * This model quantifies that argument: given a transfer mix, it reports
 * the crossbar bandwidth each placement must provision.
 */

#ifndef CDMA_GPU_CROSSBAR_HH
#define CDMA_GPU_CROSSBAR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "gpu/gpu_spec.hh"

namespace cdma {

/** Where the (de)compression units sit. */
enum class CompressionPlacement {
    MemoryController, ///< compress before the crossbar (paper's cDMA)
    DmaEngine,        ///< compress after the crossbar (strawman)
};

/** Display name of a placement. */
std::string placementName(CompressionPlacement placement);

/** One offloaded transfer for the crossbar study. */
struct CrossbarTransfer {
    uint64_t raw_bytes = 0;
    double ratio = 1.0; ///< compression ratio achieved on this transfer
};

/** Provisioning outcome for one placement. */
struct CrossbarDemand {
    /** Peak instantaneous crossbar bandwidth the DMA slice must carry
     *  to keep PCIe saturated (B/s). */
    double peak_bandwidth = 0.0;
    /** Total bytes crossing the crossbar toward the DMA engine. */
    uint64_t total_bytes = 0;
    /** Ratio of this placement's peak demand to PCIe line rate. */
    double overprovision_factor = 0.0;
};

/** Crossbar demand model for the cDMA datapath. */
class CrossbarModel
{
  public:
    explicit CrossbarModel(const GpuSpec &gpu = {});

    /**
     * Demand of @p placement over a transfer mix: with compression at
     * the MCs the crossbar carries compressed bytes at PCIe rate; with
     * compression in the DMA engine it carries raw bytes at
     * ratio x PCIe rate (to feed the compressor at line rate).
     */
    CrossbarDemand demand(CompressionPlacement placement,
                          const std::vector<CrossbarTransfer> &mix) const;

  private:
    GpuSpec gpu_;
};

} // namespace cdma

#endif // CDMA_GPU_CROSSBAR_HH
