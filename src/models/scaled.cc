#include "models/scaled.hh"

#include "common/logging.hh"
#include "dnn/activation.hh"
#include "dnn/composite.hh"
#include "dnn/conv.hh"
#include "dnn/dropout.hh"
#include "dnn/fc.hh"
#include "dnn/lrn.hh"
#include "dnn/pool.hh"

namespace cdma {

namespace {

/** Append conv + ReLU. */
int64_t
convRelu(Network &net, const std::string &name, int64_t in_c, int64_t out_c,
         int64_t k, int64_t stride, int64_t pad, Rng &rng)
{
    net.add(std::make_unique<Conv2D>(
        name, in_c, ConvSpec{out_c, k, stride, pad}, rng));
    net.add(std::make_unique<ReLU>(name + "_relu"));
    return out_c;
}

/** Append a max pool. */
void
maxPool(Network &net, const std::string &name, int64_t k, int64_t stride)
{
    net.add(std::make_unique<Pool2D>(name, PoolSpec{k, stride,
                                                    PoolMode::Max}));
}

/** Branch helper: conv + relu as a Branch element. */
void
branchConvRelu(Branch &branch, const std::string &name, int64_t in_c,
               int64_t out_c, int64_t k, int64_t pad, Rng &rng)
{
    branch.push_back(std::make_unique<Conv2D>(
        name, in_c, ConvSpec{out_c, k, 1, pad}, rng));
    branch.back()->setReluFollows(true);
    branch.push_back(std::make_unique<ReLU>(name + "_relu"));
}

} // namespace

Network
buildScaledAlexNet(Rng &rng, int64_t classes)
{
    Network net;
    int64_t c = 3;
    c = convRelu(net, "conv0", c, 16, 5, 1, 2, rng);
    net.add(std::make_unique<Lrn>("lrn0"));
    maxPool(net, "pool0", 3, 2); // 16x16
    c = convRelu(net, "conv1", c, 32, 5, 1, 2, rng);
    maxPool(net, "pool1", 3, 2); // 8x8
    c = convRelu(net, "conv2", c, 48, 3, 1, 1, rng);
    c = convRelu(net, "conv3", c, 48, 3, 1, 1, rng);
    c = convRelu(net, "conv4", c, 32, 3, 1, 1, rng);
    maxPool(net, "pool2", 3, 2); // 4x4
    net.add(std::make_unique<FullyConnected>("fc1", c * 4 * 4, 128, rng));
    net.add(std::make_unique<ReLU>("fc1_relu"));
    net.add(std::make_unique<Dropout>("drop1", 0.5f, rng));
    net.add(std::make_unique<FullyConnected>("fc2", 128, 128, rng));
    net.add(std::make_unique<ReLU>("fc2_relu"));
    net.add(std::make_unique<Dropout>("drop2", 0.5f, rng));
    net.add(std::make_unique<FullyConnected>("fc3", 128, classes, rng));
    return net;
}

Network
buildScaledOverFeat(Rng &rng, int64_t classes)
{
    Network net;
    int64_t c = 3;
    c = convRelu(net, "conv1", c, 24, 7, 2, 3, rng); // 16x16
    maxPool(net, "pool1", 2, 2);                     // 8x8
    c = convRelu(net, "conv2", c, 48, 5, 1, 2, rng);
    c = convRelu(net, "conv3", c, 64, 3, 1, 1, rng);
    c = convRelu(net, "conv4", c, 64, 3, 1, 1, rng);
    maxPool(net, "pool5", 2, 2); // 4x4
    net.add(std::make_unique<FullyConnected>("fc6", c * 4 * 4, 128, rng));
    net.add(std::make_unique<ReLU>("fc6_relu"));
    net.add(std::make_unique<Dropout>("drop6", 0.5f, rng));
    net.add(std::make_unique<FullyConnected>("fc7", 128, classes, rng));
    return net;
}

Network
buildScaledNiN(Rng &rng, int64_t classes)
{
    Network net;
    int64_t c = 3;
    c = convRelu(net, "conv1", c, 24, 5, 1, 2, rng);
    c = convRelu(net, "cccp1", c, 24, 1, 1, 0, rng);
    c = convRelu(net, "cccp2", c, 16, 1, 1, 0, rng);
    maxPool(net, "pool1", 3, 2); // 16x16
    c = convRelu(net, "conv2", c, 32, 5, 1, 2, rng);
    c = convRelu(net, "cccp3", c, 32, 1, 1, 0, rng);
    c = convRelu(net, "cccp4", c, 24, 1, 1, 0, rng);
    maxPool(net, "pool2", 3, 2); // 8x8
    c = convRelu(net, "conv3", c, 48, 3, 1, 1, rng);
    c = convRelu(net, "cccp5", c, 48, 1, 1, 0, rng);
    c = convRelu(net, "cccp6", c, classes, 1, 1, 0, rng);
    // Global average pooling over the remaining 8x8 map.
    net.add(std::make_unique<Pool2D>(
        "gap", PoolSpec{8, 1, PoolMode::Avg}));
    (void)c;
    return net;
}

Network
buildScaledVGG(Rng &rng, int64_t classes)
{
    Network net;
    int64_t c = 3;
    c = convRelu(net, "conv1_1", c, 16, 3, 1, 1, rng);
    c = convRelu(net, "conv1_2", c, 16, 3, 1, 1, rng);
    maxPool(net, "pool1", 2, 2); // 16x16
    c = convRelu(net, "conv2_1", c, 32, 3, 1, 1, rng);
    c = convRelu(net, "conv2_2", c, 32, 3, 1, 1, rng);
    maxPool(net, "pool2", 2, 2); // 8x8
    c = convRelu(net, "conv3_1", c, 48, 3, 1, 1, rng);
    c = convRelu(net, "conv3_2", c, 48, 3, 1, 1, rng);
    maxPool(net, "pool3", 2, 2); // 4x4
    net.add(std::make_unique<FullyConnected>("fc6", c * 4 * 4, 128, rng));
    net.add(std::make_unique<ReLU>("fc6_relu"));
    net.add(std::make_unique<Dropout>("drop6", 0.5f, rng));
    net.add(std::make_unique<FullyConnected>("fc7", 128, classes, rng));
    return net;
}

Network
buildScaledSqueezeNet(Rng &rng, int64_t classes)
{
    Network net;
    int64_t c = 3;
    c = convRelu(net, "conv1", c, 16, 3, 1, 1, rng);
    maxPool(net, "pool1", 3, 2); // 16x16

    auto makeFire = [&](const std::string &name, int64_t in_c,
                        int64_t squeeze, int64_t expand) {
        // squeeze 1x1 -> relu, then parallel expand 1x1 / 3x3 concat.
        net.add(std::make_unique<Conv2D>(
            name + "/squeeze", in_c, ConvSpec{squeeze, 1, 1, 0}, rng));
        net.add(std::make_unique<ReLU>(name + "/squeeze_relu"));
        std::vector<Branch> branches(2);
        branchConvRelu(branches[0], name + "/e1", squeeze, expand, 1, 0,
                       rng);
        branchConvRelu(branches[1], name + "/e3", squeeze, expand, 3, 1,
                       rng);
        net.add(std::make_unique<ParallelConcat>(name,
                                                 std::move(branches)));
        return 2 * expand;
    };

    c = makeFire("fire2", c, 8, 16);
    c = makeFire("fire3", c, 8, 16);
    maxPool(net, "pool3", 3, 2); // 8x8
    c = makeFire("fire4", c, 16, 24);
    maxPool(net, "pool4", 3, 2); // 4x4
    c = convRelu(net, "conv10", c, classes, 1, 1, 0, rng);
    net.add(std::make_unique<Pool2D>(
        "gap", PoolSpec{4, 1, PoolMode::Avg}));
    return net;
}

Network
buildScaledGoogLeNet(Rng &rng, int64_t classes)
{
    Network net;
    int64_t c = 3;
    c = convRelu(net, "conv1", c, 16, 5, 1, 2, rng);
    maxPool(net, "pool1", 3, 2); // 16x16
    c = convRelu(net, "conv2", c, 32, 3, 1, 1, rng);
    maxPool(net, "pool2", 3, 2); // 8x8

    auto makeInception = [&](const std::string &name, int64_t in_c,
                             int64_t n1, int64_t r3, int64_t n3,
                             int64_t r5, int64_t n5, int64_t pp) {
        std::vector<Branch> branches(4);
        branchConvRelu(branches[0], name + "/1x1", in_c, n1, 1, 0, rng);
        branchConvRelu(branches[1], name + "/3x3r", in_c, r3, 1, 0, rng);
        branchConvRelu(branches[1], name + "/3x3", r3, n3, 3, 1, rng);
        branchConvRelu(branches[2], name + "/5x5r", in_c, r5, 1, 0, rng);
        branchConvRelu(branches[2], name + "/5x5", r5, n5, 5, 2, rng);
        // Inception's pool branch uses 3x3 stride-1 *padded* pooling; our
        // Pool2D has no padding, so the branch reduces to its 1x1
        // projection (shape-preserving, which is what concat requires).
        branchConvRelu(branches[3], name + "/proj", in_c, pp, 1, 0, rng);
        net.add(std::make_unique<ParallelConcat>(name,
                                                 std::move(branches)));
        return n1 + n3 + n5 + pp;
    };

    c = makeInception("inc3a", c, 8, 12, 16, 4, 8, 8);
    c = makeInception("inc3b", c, 16, 16, 24, 8, 12, 8);
    maxPool(net, "pool3", 3, 2); // 4x4
    net.add(std::make_unique<Pool2D>(
        "gap", PoolSpec{4, 1, PoolMode::Avg}));
    net.add(std::make_unique<Dropout>("drop", 0.4f, rng));
    net.add(std::make_unique<FullyConnected>("fc", c, classes, rng));
    return net;
}

Network
buildTinyNet(Rng &rng, int64_t classes)
{
    Network net;
    int64_t c = 3;
    c = convRelu(net, "conv1", c, 8, 3, 1, 1, rng);
    maxPool(net, "pool1", 2, 2); // 16x16
    c = convRelu(net, "conv2", c, 12, 3, 1, 1, rng);
    maxPool(net, "pool2", 2, 2); // 8x8
    net.add(std::make_unique<FullyConnected>("fc", c * 8 * 8, classes,
                                             rng));
    return net;
}

Network
buildScaledByName(const std::string &name, Rng &rng, int64_t classes)
{
    if (name == "AlexNet")
        return buildScaledAlexNet(rng, classes);
    if (name == "OverFeat")
        return buildScaledOverFeat(rng, classes);
    if (name == "NiN")
        return buildScaledNiN(rng, classes);
    if (name == "VGG")
        return buildScaledVGG(rng, classes);
    if (name == "SqueezeNet")
        return buildScaledSqueezeNet(rng, classes);
    if (name == "GoogLeNet")
        return buildScaledGoogLeNet(rng, classes);
    fatal("unknown scaled network '%s'", name.c_str());
}

} // namespace cdma
