/**
 * @file
 * Runtime backend selection for the kernel layer. The decision is made
 * exactly once (first use, thread-safe via the static-local guarantee):
 * CDMA_KERNEL_BACKEND wins when set — an unknown or CPU-unsupported name
 * is a configuration error, not a silent fallback, and the fatal message
 * lists the backends this host actually supports — otherwise CPUID picks
 * the widest available backend (avx512 > avx2 > scalar). Codecs capture
 * the chosen table at construction, so a ParallelCompressor's lane
 * workers all share the one dispatch decision instead of re-deciding per
 * window.
 */

#include "compress/kernels/kernels.hh"

#include <cstdlib>

#include "common/logging.hh"

namespace cdma {

const KernelOps *
kernelsByName(std::string_view name)
{
    if (name == "scalar")
        return &scalarKernels();
    if (name == "avx2")
        return avx2Kernels();
    if (name == "avx512")
        return avx512Kernels();
    return nullptr;
}

std::vector<const KernelOps *>
supportedKernels()
{
    std::vector<const KernelOps *> backends = {&scalarKernels()};
    if (const KernelOps *avx2 = avx2Kernels())
        backends.push_back(avx2);
    if (const KernelOps *avx512 = avx512Kernels())
        backends.push_back(avx512);
    return backends;
}

std::string
supportedKernelNames()
{
    std::string names;
    for (const KernelOps *ops : supportedKernels()) {
        if (!names.empty())
            names += ", ";
        names += ops->name;
    }
    return names;
}

const KernelOps *
resolveKernelBackendOverride(std::string_view name, std::string *error)
{
    const KernelOps *ops = kernelsByName(name);
    if (ops == nullptr && error != nullptr) {
        *error = "CDMA_KERNEL_BACKEND='" + std::string(name) +
            "' is not a supported kernel backend on this CPU (valid: " +
            supportedKernelNames() + ")";
    }
    return ops;
}

namespace {

const KernelOps &
selectKernels()
{
    const char *forced = std::getenv("CDMA_KERNEL_BACKEND");
    if (forced != nullptr && *forced != '\0') {
        // Empty counts as unset so CI matrices can pass the variable
        // through unconditionally.
        std::string error;
        const KernelOps *ops = resolveKernelBackendOverride(forced,
                                                            &error);
        if (ops == nullptr)
            fatal("%s", error.c_str());
        inform("kernel backend forced to '%s' via CDMA_KERNEL_BACKEND",
               ops->name);
        return *ops;
    }
    // Widest supported backend wins (supportedKernels() orders scalar
    // first, widest last).
    return *supportedKernels().back();
}

} // namespace

const KernelOps &
activeKernels()
{
    static const KernelOps &selected = selectKernels();
    return selected;
}

} // namespace cdma
