/** @file Unit tests for the GPU node specification constants. */

#include <gtest/gtest.h>

#include "gpu/gpu_spec.hh"

namespace cdma {
namespace {

TEST(GpuSpec, TitanXDefaults)
{
    const GpuSpec spec;
    EXPECT_DOUBLE_EQ(spec.dram_bandwidth, 336e9);
    EXPECT_DOUBLE_EQ(spec.pcie_bandwidth, 16e9);
    EXPECT_DOUBLE_EQ(spec.pcie_effective_bandwidth, 12.8e9);
    EXPECT_EQ(spec.dram_capacity, 12ull * 1024 * 1024 * 1024);
}

TEST(GpuSpec, LeftoverBandwidthIs236)
{
    // Section VI: 336 - 100 = 236 GB/s available to cDMA.
    const GpuSpec spec;
    EXPECT_DOUBLE_EQ(spec.leftoverBandwidth(), 236e9);
    // The provisioned COMP_BW must fit inside it.
    EXPECT_LE(spec.comp_bandwidth, spec.leftoverBandwidth());
}

TEST(GpuSpec, DmaBufferIsBandwidthDelayProduct)
{
    const GpuSpec spec;
    EXPECT_EQ(spec.dmaBufferBytes(), 70'000u);

    GpuSpec custom = spec;
    custom.comp_bandwidth = 100e9;
    EXPECT_EQ(custom.dmaBufferBytes(), 35'000u);
}

TEST(GpuSpec, CapRatioArithmetic)
{
    // COMP_BW / PCIe = 12.5: layers compressing harder than this see
    // inflated transfer latency (Section VI).
    const GpuSpec spec;
    EXPECT_DOUBLE_EQ(spec.comp_bandwidth / spec.pcie_bandwidth, 12.5);
}

} // namespace
} // namespace cdma
