#include "perf/timing.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cdma {

std::string
cudnnVersionName(CudnnVersion version)
{
    switch (version) {
      case CudnnVersion::V1: return "v1";
      case CudnnVersion::V2: return "v2";
      case CudnnVersion::V3: return "v3";
      case CudnnVersion::V4: return "v4";
      case CudnnVersion::V5: return "v5";
    }
    panic("unreachable cuDNN version %d", static_cast<int>(version));
}

double
PerfModel::convEfficiency(CudnnVersion version)
{
    // Calibrated two ways: (a) conv-heavy networks gain ~2.3x v1->v5 so
    // the six-network average (diluted by bandwidth-bound FC/pool
    // layers) lands near the paper's 2.2x (Figure 3a); (b) the v5
    // efficiency matches Maxwell-era measured GEMM utilization (~2/3 of
    // peak), which sets the compute-vs-PCIe balance that produces the
    // paper's vDNN overheads (Figure 3b).
    switch (version) {
      case CudnnVersion::V1: return 0.36;
      case CudnnVersion::V2: return 0.45;
      case CudnnVersion::V3: return 0.55;
      case CudnnVersion::V4: return 0.67;
      case CudnnVersion::V5: return 0.80;
    }
    panic("unreachable cuDNN version %d", static_cast<int>(version));
}

PerfModel::PerfModel(const GpuSpec &gpu) : gpu_(gpu)
{
}

LayerTiming
PerfModel::layerTiming(const LayerDesc &layer, int64_t batch,
                       CudnnVersion version) const
{
    const double macs = static_cast<double>(layer.macs_per_image) *
        static_cast<double>(batch);
    const double out_bytes = static_cast<double>(layer.bytesPerImage()) *
        static_cast<double>(batch);

    LayerTiming timing;
    if (layer.kind == "pool") {
        // Bandwidth-bound: read the (stride^2 larger) input, write the
        // output; backward mirrors it.
        const double moved = 5.0 * out_bytes;
        timing.forward_seconds = moved / gpu_.dram_bandwidth;
        timing.backward_seconds = moved / gpu_.dram_bandwidth;
        return timing;
    }
    if (layer.kind == "fc") {
        // Large-batch GEMM at good efficiency, but floored by streaming
        // the weight matrix from DRAM (weights = macs_per_image for fc).
        const double weight_bytes =
            static_cast<double>(layer.macs_per_image) * 4.0;
        const double compute =
            macs / (gpu_.peak_macs_per_second * 0.5);
        const double memory = weight_bytes / gpu_.dram_bandwidth;
        timing.forward_seconds = std::max(compute, memory);
        // Backward: dX = dY W and dW = dY^T X, each streaming the weight
        // matrix again.
        timing.backward_seconds = 2.0 * timing.forward_seconds;
        return timing;
    }
    // Convolution-like (conv / inception / fire): compute-bound GEMM with
    // version-dependent efficiency, floored by activation traffic.
    // Inception/fire modules are dominated by 1x1 bottleneck convolutions
    // whose small GEMM dimensions underutilize the machine relative to
    // dense 3x3/5x5 convs.
    double eff = convEfficiency(version);
    if (layer.kind == "inception" || layer.kind == "fire")
        eff *= 0.6;
    const double compute = macs / (gpu_.peak_macs_per_second * eff);
    const double memory = 2.0 * out_bytes / gpu_.dram_bandwidth;
    timing.forward_seconds = std::max(compute, memory);
    timing.backward_seconds = 2.0 * timing.forward_seconds;
    return timing;
}

LayerTiming
PerfModel::networkTiming(const NetworkDesc &network, int64_t batch,
                         CudnnVersion version) const
{
    LayerTiming total;
    for (const auto &layer : network.layers) {
        const LayerTiming t = layerTiming(layer, batch, version);
        total.forward_seconds += t.forward_seconds;
        total.backward_seconds += t.backward_seconds;
    }
    return total;
}

} // namespace cdma
