/** @file Unit tests for the analytic cuDNN timing model. */

#include <gtest/gtest.h>

#include "perf/timing.hh"

namespace cdma {
namespace {

TEST(Timing, ConvEfficiencyMonotoneInVersion)
{
    double prev = 0.0;
    for (CudnnVersion v : kAllCudnnVersions) {
        const double eff = PerfModel::convEfficiency(v);
        EXPECT_GT(eff, prev);
        EXPECT_LT(eff, 1.0);
        prev = eff;
    }
}

TEST(Timing, VersionNames)
{
    EXPECT_EQ(cudnnVersionName(CudnnVersion::V1), "v1");
    EXPECT_EQ(cudnnVersionName(CudnnVersion::V5), "v5");
}

TEST(Timing, NetworkTimeShrinksWithVersion)
{
    PerfModel model;
    for (const auto &net : allNetworkDescs()) {
        double prev = 1e99;
        for (CudnnVersion v : kAllCudnnVersions) {
            const double t =
                model.networkTiming(net, net.default_batch, v).total();
            EXPECT_LT(t, prev) << net.name;
            prev = t;
        }
    }
}

TEST(Timing, AverageV5SpeedupNearPaper)
{
    // Figure 3(a): cuDNN v5 averages ~2.2x over v1 across the six
    // networks.
    PerfModel model;
    double total = 0.0;
    for (const auto &net : allNetworkDescs()) {
        const double t1 = model
            .networkTiming(net, net.default_batch, CudnnVersion::V1)
            .total();
        const double t5 = model
            .networkTiming(net, net.default_batch, CudnnVersion::V5)
            .total();
        total += t1 / t5;
    }
    EXPECT_NEAR(total / 6.0, 2.2, 0.35);
}

TEST(Timing, BackwardCostsAboutTwiceForward)
{
    PerfModel model;
    const NetworkDesc net = vggDesc();
    const LayerTiming t =
        model.networkTiming(net, 64, CudnnVersion::V5);
    EXPECT_GT(t.backward_seconds, 1.5 * t.forward_seconds);
    EXPECT_LT(t.backward_seconds, 2.5 * t.forward_seconds);
}

TEST(Timing, FcLayersAreBandwidthBoundAcrossVersions)
{
    PerfModel model;
    const NetworkDesc net = alexNetDesc();
    for (const auto &layer : net.layers) {
        if (layer.kind != "fc")
            continue;
        const double t1 =
            model.layerTiming(layer, 256, CudnnVersion::V1)
                .forward_seconds;
        const double t5 =
            model.layerTiming(layer, 256, CudnnVersion::V5)
                .forward_seconds;
        EXPECT_DOUBLE_EQ(t1, t5) << layer.name;
    }
}

TEST(Timing, IterationTimesAreMilliseconds)
{
    // Sanity: a Table-I iteration on these networks takes on the order
    // of 0.05-2 seconds on a Titan X, not micro- or kilo-seconds.
    PerfModel model;
    for (const auto &net : allNetworkDescs()) {
        const double t = model
            .networkTiming(net, net.default_batch, CudnnVersion::V5)
            .total();
        EXPECT_GT(t, 0.01) << net.name;
        EXPECT_LT(t, 5.0) << net.name;
    }
}

} // namespace
} // namespace cdma
