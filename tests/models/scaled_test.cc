/** @file Unit tests for the scaled trainable network variants. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "models/scaled.hh"

namespace cdma {
namespace {

const char *const kNames[] = {"AlexNet",    "OverFeat",  "NiN",
                              "VGG",        "SqueezeNet", "GoogLeNet"};

class ScaledNetwork : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ScaledNetwork, BuildsAndClassifiesTenWays)
{
    Rng rng(42);
    Network net = buildScaledByName(GetParam(), rng);
    EXPECT_EQ(net.outputShape(Shape4D{2, 3, 32, 32}),
              (Shape4D{2, 10, 1, 1}));
}

TEST_P(ScaledNetwork, ForwardBackwardRuns)
{
    Rng rng(43);
    Network net = buildScaledByName(GetParam(), rng);
    Tensor4D in(Shape4D{2, 3, 32, 32});
    Rng data_rng(44);
    for (float &v : in.data())
        v = static_cast<float>(data_rng.normal());
    const Tensor4D &out = net.forward(in);
    EXPECT_EQ(out.shape(), (Shape4D{2, 10, 1, 1}));
    Tensor4D dy(out.shape());
    dy.fill(0.1f);
    net.backward(dy); // must not crash or assert
    net.step(SgdConfig{});
}

TEST_P(ScaledNetwork, HasSparsityBearingRecords)
{
    Rng rng(45);
    Network net = buildScaledByName(GetParam(), rng);
    Tensor4D in(Shape4D{1, 3, 32, 32});
    Rng data_rng(46);
    for (float &v : in.data())
        v = static_cast<float>(data_rng.normal());
    net.forward(in);
    const auto records = net.activationRecords();
    ASSERT_GE(records.size(), 3u);
    int sparse_capable = 0;
    for (const auto &record : records) {
        if (record.relu_sparse)
            ++sparse_capable;
    }
    EXPECT_GE(sparse_capable, 2);
}

TEST_P(ScaledNetwork, HasLearnableParameters)
{
    Rng rng(47);
    Network net = buildScaledByName(GetParam(), rng);
    EXPECT_GT(net.paramCount(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(AllSix, ScaledNetwork,
                         ::testing::ValuesIn(kNames));

TEST(ScaledNetworkRegistry, UnknownNameIsFatal)
{
    Rng rng(48);
    EXPECT_EXIT(buildScaledByName("ResNet", rng),
                ::testing::ExitedWithCode(1), "unknown scaled network");
}

TEST(ScaledNetworkRegistry, ArchitecturalSignatures)
{
    Rng rng(49);
    // NiN ends in global average pooling (no FC).
    Network nin = buildScaledNiN(rng);
    EXPECT_EQ(nin.layer(nin.size() - 1).type(), "pool");
    // SqueezeNet contains concat (fire) modules.
    Network squeeze = buildScaledSqueezeNet(rng);
    bool has_concat = false;
    for (size_t i = 0; i < squeeze.size(); ++i)
        has_concat |= squeeze.layer(i).type() == "concat";
    EXPECT_TRUE(has_concat);
    // AlexNet has LRN.
    Network alex = buildScaledAlexNet(rng);
    bool has_lrn = false;
    for (size_t i = 0; i < alex.size(); ++i)
        has_lrn |= alex.layer(i).type() == "lrn";
    EXPECT_TRUE(has_lrn);
}

} // namespace
} // namespace cdma
