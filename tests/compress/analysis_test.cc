/** @file Unit tests for the compression analysis helpers. */

#include <cstring>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/analysis.hh"
#include "sparsity/generator.hh"

namespace cdma {
namespace {

std::vector<uint8_t>
wordsToBytes(const std::vector<float> &words)
{
    std::vector<uint8_t> bytes(words.size() * 4);
    std::memcpy(bytes.data(), words.data(), bytes.size());
    return bytes;
}

TEST(RunStats, CountsRunsExactly)
{
    // words: 0 0 0 X 0 X X 0 0  -> zero runs: 3 (len 3, 1, 2)
    const std::vector<float> words = {0, 0, 0, 5, 0, 7, 8, 0, 0};
    const RunStats stats = analyzeRuns(wordsToBytes(words));
    EXPECT_EQ(stats.total_words, 9u);
    EXPECT_EQ(stats.zero_words, 6u);
    EXPECT_EQ(stats.zero_runs, 3u);
    EXPECT_EQ(stats.longest_zero_run, 3u);
    EXPECT_DOUBLE_EQ(stats.mean_zero_run, 2.0);
    EXPECT_DOUBLE_EQ(stats.zeroFraction(), 6.0 / 9.0);
}

TEST(RunStats, AllZeroAndAllDense)
{
    const std::vector<float> zeros(100, 0.0f);
    const RunStats z = analyzeRuns(wordsToBytes(zeros));
    EXPECT_EQ(z.zero_runs, 1u);
    EXPECT_EQ(z.longest_zero_run, 100u);

    std::vector<float> dense(100, 1.0f);
    const RunStats d = analyzeRuns(wordsToBytes(dense));
    EXPECT_EQ(d.zero_runs, 0u);
    EXPECT_DOUBLE_EQ(d.zeroFraction(), 0.0);
}

TEST(RunStats, ClusteringIndexDetectsStructure)
{
    // i.i.d. placement -> index ~1; generated clustered data -> >> 1.
    Rng rng(9);
    std::vector<float> iid(1 << 16);
    for (auto &w : iid)
        w = rng.bernoulli(0.5) ? 1.0f : 0.0f;
    const RunStats iid_stats = analyzeRuns(wordsToBytes(iid));
    EXPECT_NEAR(iid_stats.clusteringIndex(), 1.0, 0.1);

    ActivationGenerator gen;
    Rng gen_rng(10);
    const Tensor4D clustered = gen.generate(
        Shape4D{1, 16, 64, 64}, Layout::NCHW, 0.5, gen_rng);
    const RunStats c_stats = analyzeRuns(clustered.rawBytes());
    EXPECT_GT(c_stats.clusteringIndex(), 3.0);
}

TEST(WindowProfile, RatiosBracketMean)
{
    ActivationGenerator gen;
    Rng rng(11);
    const Tensor4D data = gen.generate(Shape4D{1, 16, 64, 64},
                                       Layout::NCHW, 0.4, rng);
    const WindowProfile profile =
        profileWindows(Algorithm::Zvc, data.rawBytes());
    EXPECT_FALSE(profile.window_bytes.empty());
    EXPECT_LE(profile.min_ratio, profile.mean_ratio);
    EXPECT_GE(profile.max_ratio, profile.mean_ratio);
    EXPECT_GE(profile.min_ratio, 1.0); // store-raw floor
}

TEST(WindowProfile, EmptyInput)
{
    const WindowProfile profile = profileWindows(Algorithm::Rle, {});
    EXPECT_TRUE(profile.window_bytes.empty());
    EXPECT_DOUBLE_EQ(profile.mean_ratio, 1.0);
}

TEST(WindowProfile, WindowCountMatchesInput)
{
    std::vector<uint8_t> bytes(10000, 0);
    const WindowProfile profile =
        profileWindows(Algorithm::Zvc, bytes, 4096);
    EXPECT_EQ(profile.window_bytes.size(), 3u);
}

} // namespace
} // namespace cdma
