/**
 * @file
 * Section VII-A ablation: compression-window size sweep. The paper used
 * a 4 KB window and "also studied window sizes of up to 64 KB and found
 * that our results did not change much". This harness quantifies that on
 * the six-network ZVC/RLE/zlib averages (NCHW).
 */

#include <cstdio>

#include "common/harness.hh"
#include "common/stats.hh"

using namespace cdma;
using bench::Table;

int
main()
{
    std::printf("== Ablation: compression window size (NCHW, trained "
                "model, six-network byte-weighted average) ==\n");
    Table table({"window", "RL avg", "ZV avg", "ZL avg"});
    for (uint64_t window : {1024u, 4096u, 16384u, 65536u}) {
        std::vector<std::string> row = {std::to_string(window / 1024) +
                                        " KB"};
        for (Algorithm algorithm : kAllAlgorithms) {
            WeightedMean overall;
            for (const auto &net : allNetworkDescs()) {
                bench::RatioMeasureConfig config;
                config.window_bytes = window;
                const auto result = bench::measureNetworkRatios(
                    net, algorithm, Layout::NCHW, config);
                overall.add(result.average,
                            static_cast<double>(
                                net.totalActivationBytesPerImage()));
            }
            row.push_back(Table::num(overall.mean(), 3));
        }
        table.addRow(row);
    }
    table.print();
    std::printf("\n(expect little variation across windows, per the "
                "paper)\n");
    return 0;
}
