/** @file Unit tests for describing live networks into descriptors. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "models/describe.hh"
#include "models/scaled.hh"

namespace cdma {
namespace {

TEST(Describe, TinyNetRowsMatchActivationRecords)
{
    Rng rng(1);
    Network net = buildTinyNet(rng);
    const NetworkDesc desc =
        describeNetwork("Tiny", net, Shape4D{1, 3, 32, 32}, 16);

    // Same rows the activation records produce: conv1, pool1, conv2,
    // pool2, fc.
    ASSERT_EQ(desc.layers.size(), 5u);
    EXPECT_EQ(desc.layers[0].name, "conv1");
    EXPECT_EQ(desc.layers[1].name, "pool1");
    EXPECT_EQ(desc.layers[4].name, "fc");
    EXPECT_EQ(desc.default_batch, 16);
}

TEST(Describe, ShapesMatchLiveForwardPass)
{
    Rng rng(2);
    Network net = buildTinyNet(rng);
    const NetworkDesc desc =
        describeNetwork("Tiny", net, Shape4D{1, 3, 32, 32}, 8);

    Tensor4D probe(Shape4D{2, 3, 32, 32});
    probe.fill(0.5f);
    net.forward(probe);
    const auto records = net.activationRecords();
    ASSERT_EQ(records.size(), desc.layers.size());
    for (size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(desc.layers[i].channels, records[i].shape.c)
            << records[i].label;
        EXPECT_EQ(desc.layers[i].height, records[i].shape.h);
        EXPECT_EQ(desc.layers[i].width, records[i].shape.w);
    }
}

TEST(Describe, MacsArePositiveForComputeLayers)
{
    Rng rng(3);
    Network net = buildScaledVGG(rng);
    const NetworkDesc desc =
        describeNetwork("ScaledVGG", net, Shape4D{1, 3, 32, 32}, 16);
    for (const auto &row : desc.layers) {
        if (row.kind == "conv" || row.kind == "fc") {
            EXPECT_GT(row.macs_per_image, 0u) << row.name;
        }
    }
    EXPECT_GT(desc.totalMacsPerImage(), 1'000'000u);
}

TEST(Describe, ReluAnnotationsPropagate)
{
    Rng rng(4);
    Network net = buildTinyNet(rng);
    const NetworkDesc desc =
        describeNetwork("Tiny", net, Shape4D{1, 3, 32, 32}, 8);
    EXPECT_TRUE(desc.layers[0].relu_follows);  // conv1 + relu
    EXPECT_TRUE(desc.layers[1].relu_follows);  // pool of relu data
    EXPECT_FALSE(desc.layers[4].relu_follows); // classifier fc
}

TEST(Describe, CompositeNetworksDescribable)
{
    Rng rng(5);
    Network net = buildScaledSqueezeNet(rng);
    const NetworkDesc desc = describeNetwork(
        "ScaledSqueezeNet", net, Shape4D{1, 3, 32, 32}, 16);
    bool has_inception_kind = false;
    for (const auto &row : desc.layers)
        has_inception_kind |= row.kind == "inception";
    EXPECT_TRUE(has_inception_kind);
    EXPECT_GT(desc.totalActivationBytesPerImage(), 0u);
}

TEST(Describe, DepthFractionsSpanZeroToOne)
{
    Rng rng(6);
    Network net = buildScaledAlexNet(rng);
    const NetworkDesc desc = describeNetwork(
        "ScaledAlexNet", net, Shape4D{1, 3, 32, 32}, 16);
    EXPECT_DOUBLE_EQ(desc.layers.front().depth_fraction, 0.0);
    EXPECT_DOUBLE_EQ(desc.layers.back().depth_fraction, 1.0);
}

} // namespace
} // namespace cdma
