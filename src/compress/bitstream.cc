#include "compress/bitstream.hh"

#include <bit>
#include <cstring>

#include "common/logging.hh"

namespace cdma {

// The batched reader/writer map byte k of the stream onto bits
// [8k, 8k+8) of a host integer, which is the little-endian layout.
static_assert(std::endian::native == std::endian::little,
              "bitstream word batching assumes a little-endian host");

void
BitWriter::put(uint32_t bits, int count)
{
    CDMA_ASSERT(count >= 0 && count <= 32, "bad bit count %d", count);
    if (count == 0)
        return;
    const uint32_t masked = count == 32
        ? bits : bits & ((1u << count) - 1u);
    // Accumulate LSB-first; acc_bits_ < 8 on entry, so at most 39 pending
    // bits — the 64-bit accumulator never overflows.
    acc_ |= static_cast<uint64_t>(masked) << acc_bits_;
    acc_bits_ += count;
    while (acc_bits_ >= 8) {
        sink_->push_back(static_cast<uint8_t>(acc_));
        acc_ >>= 8;
        acc_bits_ -= 8;
    }
    bit_count_ += static_cast<uint64_t>(count);
}

void
BitWriter::flush()
{
    if (acc_bits_ > 0) {
        sink_->push_back(static_cast<uint8_t>(acc_));
        acc_ = 0;
        acc_bits_ = 0;
    }
}

ByteVec
BitWriter::finish()
{
    CDMA_ASSERT(sink_ == &own_bytes_,
                "finish() on a BitWriter with an external sink");
    flush();
    return std::move(own_bytes_);
}

BitReader::BitReader(std::span<const uint8_t> bytes) : bytes_(bytes)
{
}

uint32_t
BitReader::get(int count)
{
    CDMA_ASSERT(count >= 0 && count <= 32, "bad bit count %d", count);
    if (exhausted(count)) {
        // A truncated wire payload lands here; the decode loops are all
        // bounded, so returning zero bits and latching the flag lets the
        // codec surface a Status instead of aborting the process.
        overrun_ = true;
        return 0;
    }
    if (count == 0)
        return 0;
    // One bounded load of up to 8 bytes covers bit_off (<= 7) + count
    // (<= 32) bits.
    const size_t byte_index = static_cast<size_t>(bit_pos_ >> 3);
    const int bit_off = static_cast<int>(bit_pos_ & 7);
    uint64_t window = 0;
    const size_t avail =
        std::min<size_t>(sizeof(window), bytes_.size() - byte_index);
    std::memcpy(&window, bytes_.data() + byte_index, avail);
    window >>= bit_off;
    const uint32_t out = count == 32
        ? static_cast<uint32_t>(window)
        : static_cast<uint32_t>(window) & ((1u << count) - 1u);
    bit_pos_ += static_cast<uint64_t>(count);
    return out;
}

bool
BitReader::exhausted(int count) const
{
    return bit_pos_ + static_cast<uint64_t>(count) >
        static_cast<uint64_t>(bytes_.size()) * 8;
}

} // namespace cdma
