/** @file Unit tests for the bit-manipulation helpers. */

#include <gtest/gtest.h>

#include "common/bits.hh"

namespace cdma {
namespace {

TEST(Bits, Popcount32)
{
    EXPECT_EQ(popcount32(0u), 0);
    EXPECT_EQ(popcount32(0xFFFFFFFFu), 32);
    EXPECT_EQ(popcount32(0x10011010u), 4);
    EXPECT_EQ(popcount32(0b10011010u), 4);
}

TEST(Bits, Popcount64)
{
    EXPECT_EQ(popcount64(0ull), 0);
    EXPECT_EQ(popcount64(~0ull), 64);
}

TEST(Bits, MaskPrefixSumMatchesManualCount)
{
    // Mask 0b10011010: prefix[i] counts ones strictly below bit i, the
    // offset the ZVC shifter applies to non-zero word i.
    // bits (LSB first): 0 1 0 1 1 0 0 1
    const auto prefix = maskPrefixSum8(0b10011010);
    EXPECT_EQ(prefix[0], 0);
    EXPECT_EQ(prefix[1], 0);
    EXPECT_EQ(prefix[2], 1);
    EXPECT_EQ(prefix[3], 1);
    EXPECT_EQ(prefix[4], 2);
    EXPECT_EQ(prefix[5], 3);
    EXPECT_EQ(prefix[6], 3);
    EXPECT_EQ(prefix[7], 3);
}

TEST(Bits, RoundUp)
{
    EXPECT_EQ(roundUp(0, 128), 0u);
    EXPECT_EQ(roundUp(1, 128), 128u);
    EXPECT_EQ(roundUp(128, 128), 128u);
    EXPECT_EQ(roundUp(129, 128), 256u);
}

TEST(Bits, CeilDiv)
{
    EXPECT_EQ(ceilDiv(0, 32), 0u);
    EXPECT_EQ(ceilDiv(1, 32), 1u);
    EXPECT_EQ(ceilDiv(32, 32), 1u);
    EXPECT_EQ(ceilDiv(33, 32), 2u);
}

} // namespace
} // namespace cdma
