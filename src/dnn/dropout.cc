#include "dnn/dropout.hh"

#include "common/logging.hh"

namespace cdma {

Dropout::Dropout(std::string name, float rate, Rng &rng)
    : Layer(std::move(name)), rate_(rate), rng_(rng.fork())
{
    CDMA_ASSERT(rate >= 0.0f && rate < 1.0f, "invalid dropout rate %f",
                static_cast<double>(rate));
}

Shape4D
Dropout::outputShape(const Shape4D &input) const
{
    return input;
}

Tensor4D
Dropout::forward(const Tensor4D &input)
{
    if (!training_) {
        // Inverted dropout: inference is the identity.
        return input;
    }
    Tensor4D output(input.shape(), input.layout());
    mask_.assign(static_cast<size_t>(input.elements()), 0);
    const float scale = 1.0f / (1.0f - rate_);
    auto in = input.data();
    auto out = output.data();
    for (size_t i = 0; i < in.size(); ++i) {
        if (!rng_.bernoulli(rate_)) {
            mask_[i] = 1;
            out[i] = in[i] * scale;
        }
    }
    return output;
}

Tensor4D
Dropout::backward(const Tensor4D &output_grad)
{
    Tensor4D input_grad(output_grad.shape(), output_grad.layout());
    const float scale = 1.0f / (1.0f - rate_);
    auto dy = output_grad.data();
    auto dx = input_grad.data();
    for (size_t i = 0; i < dy.size(); ++i)
        dx[i] = mask_[i] ? dy[i] * scale : 0.0f;
    return input_grad;
}

} // namespace cdma
