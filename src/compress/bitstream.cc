#include "compress/bitstream.hh"

#include "common/logging.hh"

namespace cdma {

void
BitWriter::put(uint32_t bits, int count)
{
    CDMA_ASSERT(count >= 0 && count <= 32, "bad bit count %d", count);
    for (int i = 0; i < count; ++i) {
        const size_t byte_index = static_cast<size_t>(bit_count_ >> 3);
        const int bit_index = static_cast<int>(bit_count_ & 7);
        if (byte_index == bytes_.size())
            bytes_.push_back(0);
        if ((bits >> i) & 1)
            bytes_[byte_index] |= static_cast<uint8_t>(1u << bit_index);
        ++bit_count_;
    }
}

std::vector<uint8_t>
BitWriter::finish()
{
    return std::move(bytes_);
}

BitReader::BitReader(std::span<const uint8_t> bytes) : bytes_(bytes)
{
}

uint32_t
BitReader::get(int count)
{
    CDMA_ASSERT(count >= 0 && count <= 32, "bad bit count %d", count);
    CDMA_ASSERT(!exhausted(count),
                "bit stream exhausted reading %d bits at position %llu",
                count, static_cast<unsigned long long>(bit_pos_));
    uint32_t out = 0;
    for (int i = 0; i < count; ++i) {
        const size_t byte_index = static_cast<size_t>(bit_pos_ >> 3);
        const int bit_index = static_cast<int>(bit_pos_ & 7);
        out |= static_cast<uint32_t>((bytes_[byte_index] >> bit_index) & 1)
            << i;
        ++bit_pos_;
    }
    return out;
}

bool
BitReader::exhausted(int count) const
{
    return bit_pos_ + static_cast<uint64_t>(count) >
        static_cast<uint64_t>(bytes_.size()) * 8;
}

} // namespace cdma
