#include "compress/rle.hh"

#include <cstring>

#include "common/logging.hh"

namespace cdma {

namespace {

// Token byte: bit 7 set -> zero-run, clear -> literal-run; bits 6..0 hold
// (run length - 1), so a token covers 1..128 words.
constexpr uint8_t kZeroRunFlag = 0x80;

bool
isZeroWord(const uint8_t *p)
{
    uint32_t value;
    std::memcpy(&value, p, 4);
    return value == 0;
}

} // namespace

RleCompressor::RleCompressor(uint64_t window_bytes)
    : Compressor(window_bytes)
{
}

std::vector<uint8_t>
RleCompressor::compressWindow(std::span<const uint8_t> window) const
{
    std::vector<uint8_t> out;
    out.reserve(window.size() + window.size() / (kMaxRun * kWordBytes) + 8);

    const uint64_t words = window.size() / kWordBytes;
    const uint64_t tail_bytes = window.size() % kWordBytes;

    uint64_t i = 0;
    while (i < words) {
        const bool zero = isZeroWord(window.data() + i * kWordBytes);
        uint64_t run = 1;
        while (i + run < words && run < kMaxRun &&
               isZeroWord(window.data() + (i + run) * kWordBytes) == zero) {
            ++run;
        }
        const auto token = static_cast<uint8_t>(run - 1);
        if (zero) {
            out.push_back(kZeroRunFlag | token);
        } else {
            out.push_back(token);
            const uint8_t *src = window.data() + i * kWordBytes;
            out.insert(out.end(), src, src + run * kWordBytes);
        }
        i += run;
    }

    // Sub-word tail stored raw (prefixed by a literal token of one word
    // would mis-size it; the framing knows the original size so raw bytes
    // at the end are unambiguous).
    if (tail_bytes) {
        const uint8_t *src = window.data() + words * kWordBytes;
        out.insert(out.end(), src, src + tail_bytes);
    }
    return out;
}

std::vector<uint8_t>
RleCompressor::decompressWindow(std::span<const uint8_t> payload,
                                uint64_t original_bytes) const
{
    std::vector<uint8_t> out;
    out.reserve(original_bytes);

    const uint64_t words = original_bytes / kWordBytes;
    const uint64_t tail_bytes = original_bytes % kWordBytes;

    size_t cursor = 0;
    uint64_t produced = 0;
    while (produced < words) {
        CDMA_ASSERT(cursor < payload.size(),
                    "RLE payload truncated before token");
        const uint8_t token = payload[cursor++];
        const uint64_t run = static_cast<uint64_t>(token & 0x7F) + 1;
        CDMA_ASSERT(produced + run <= words,
                    "RLE run overflows the original window size");
        if (token & kZeroRunFlag) {
            out.insert(out.end(), run * kWordBytes, 0);
        } else {
            CDMA_ASSERT(cursor + run * kWordBytes <= payload.size(),
                        "RLE payload truncated in literal run");
            out.insert(out.end(), payload.data() + cursor,
                       payload.data() + cursor + run * kWordBytes);
            cursor += run * kWordBytes;
        }
        produced += run;
    }

    if (tail_bytes) {
        CDMA_ASSERT(cursor + tail_bytes <= payload.size(),
                    "RLE payload truncated in raw tail");
        out.insert(out.end(), payload.data() + cursor,
                   payload.data() + cursor + tail_bytes);
        cursor += tail_bytes;
    }
    CDMA_ASSERT(cursor == payload.size(),
                "RLE payload has %zu trailing bytes",
                payload.size() - cursor);
    return out;
}

} // namespace cdma
