/**
 * @file
 * Section V-B design study: where to put the (de)compression units. The
 * paper places them beside the memory controllers so compressed data
 * crosses the on-chip crossbar; the strawman placement inside the DMA
 * engine would require crossbar bandwidth of compression_ratio x PCIe
 * rate — up to (16 x 13.8) = 220.8 GB/s — to keep PCIe saturated. This
 * harness quantifies both placements over each network's measured
 * transfer mix, plus the Section IX footprint extension: storing
 * activations compressed in GPU DRAM.
 */

#include <cstdio>

#include "cdma/footprint.hh"
#include "common/harness.hh"
#include "gpu/crossbar.hh"
#include "vdnn/memory_manager.hh"

using namespace cdma;
using bench::Table;

int
main()
{
    std::printf("== Design study: compression-unit placement "
                "(Section V-B) ==\n");
    Table table({"network", "MC peak xbar GB/s", "DMA peak xbar GB/s",
                 "DMA overprovision"});
    CrossbarModel crossbar;
    double worst = 0.0;
    for (const auto &net : allNetworkDescs()) {
        const auto measured = bench::measureTimeAveragedRatios(
            net, Algorithm::Zvc, Layout::NCHW);
        VdnnMemoryManager manager(net, net.default_batch);
        std::vector<CrossbarTransfer> mix;
        const auto &offloads = manager.offloadSchedule();
        for (size_t k = 0; k < offloads.size(); ++k) {
            const size_t row = offloads[k].layer_index;
            const double ratio =
                row > 0 ? measured.layers[row - 1].ratio : 1.0;
            mix.push_back(CrossbarTransfer{offloads[k].bytes, ratio});
        }
        const auto mc = crossbar.demand(
            CompressionPlacement::MemoryController, mix);
        const auto dma =
            crossbar.demand(CompressionPlacement::DmaEngine, mix);
        worst = std::max(worst, dma.peak_bandwidth);
        table.addRow({
            net.name,
            Table::num(mc.peak_bandwidth / 1e9, 1),
            Table::num(dma.peak_bandwidth / 1e9, 1),
            Table::num(dma.overprovision_factor, 1) + "x",
        });
    }
    table.print();
    std::printf("\nworst-case DMA-placement crossbar demand: %.1f GB/s "
                "(paper: up to 220.8 GB/s) vs 16 GB/s for the MC "
                "placement\n\n",
                worst / 1e9);

    std::printf("== Extension (Section IX): storing activations "
                "compressed in GPU DRAM ==\n");
    Table fp_table({"network", "raw GB", "compressed GB", "metadata MB",
                    "savings"});
    CompressedFootprintEstimator estimator;
    for (const auto &net : allNetworkDescs()) {
        const auto fp =
            estimator.estimate(net, net.default_batch, /*t=*/1.0);
        fp_table.addRow({
            net.name,
            Table::num(static_cast<double>(fp.raw_bytes) / 1e9, 2),
            Table::num(static_cast<double>(fp.compressed_bytes) / 1e9,
                       2),
            Table::num(static_cast<double>(fp.metadata_bytes) / 1e6, 1),
            Table::num(fp.savings_ratio, 2) + "x",
        });
    }
    fp_table.print();
    std::printf("\n(32 B allocation sectors + 1 B/line translation "
                "metadata; the addressing scheme the paper defers to "
                "future work)\n");
    return 0;
}
