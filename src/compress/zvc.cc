#include "compress/zvc.hh"

#include <cstring>

#include "common/bits.hh"
#include "common/logging.hh"
#include "compress/kernels/kernels.hh"

namespace cdma {

ZvcCompressor::ZvcCompressor(uint64_t window_bytes,
                             const KernelOps *kernels)
    : Compressor(window_bytes, kernels)
{
}

uint64_t
ZvcCompressor::predictedBytes(uint64_t total_words, uint64_t nonzero_words)
{
    const uint64_t masks = ceilDiv(total_words, kMaskWords);
    return masks * sizeof(uint32_t) + nonzero_words * kWordBytes;
}

uint64_t
ZvcCompressor::compressedBound(uint64_t raw_len) const
{
    // Exact worst case: every word non-zero plus one mask per group plus
    // the raw sub-word tail.
    const uint64_t words = raw_len / kWordBytes;
    return predictedBytes(words, words) + raw_len % kWordBytes;
}

void
ZvcCompressor::compressWindowInto(std::span<const uint8_t> window,
                                  ByteVec &out) const
{
    const uint64_t full_words = window.size() / kWordBytes;
    const uint64_t tail_bytes = window.size() % kWordBytes;
    const uint8_t *src = window.data();

    // Single pass, sized to the worst case up front and trimmed once at
    // the end; out is a ByteVec, so the resize-to-bound leaves the staging
    // bytes uninitialized instead of zero-filling a region the loop below
    // overwrites. The mask-and-compact of each 32-word group is the
    // kernel backend's zvcCompactGroup op — the software mirror of the
    // hardware's prefix-sum shift network (Figure 10a) — which may store
    // whole sub-blocks unconditionally and let the write pointer lag, so
    // the worst-case sizing below is also its scratch headroom.
    const KernelOps &kernel = kernels();
    const size_t base = out.size();
    out.resize(base + compressedBound(window.size()));
    uint8_t *out_base = out.data() + base;
    uint8_t *dst = out_base;

    uint64_t word = 0;
    while (word < full_words) {
        const uint32_t group = static_cast<uint32_t>(
            std::min<uint64_t>(kMaskWords, full_words - word));
        uint8_t *mask_pos = dst;
        dst += sizeof(uint32_t);
        const uint32_t mask =
            kernel.zvcCompactGroup(src + word * kWordBytes, group, dst);
        dst += static_cast<uint32_t>(kWordBytes) *
            static_cast<uint32_t>(popcount32(mask));
        std::memcpy(mask_pos, &mask, sizeof(mask));
        word += group;
    }

    // Sub-word tail (only possible when the window is not a multiple of 4
    // bytes, e.g. the last window of an oddly sized buffer): stored raw.
    // At most 3 bytes — a plain memcpy inlines, the kernel table's bulk
    // copy would cost an indirect call.
    if (tail_bytes) {
        std::memcpy(dst, src + full_words * kWordBytes, tail_bytes);
        dst += tail_bytes;
    }
    out.resize(base + static_cast<size_t>(dst - out_base));
}

Status
ZvcCompressor::decompressWindowInto(std::span<const uint8_t> payload,
                                    uint64_t original_bytes,
                                    uint8_t *out) const
{
    const uint64_t full_words = original_bytes / kWordBytes;
    const uint64_t tail_bytes = original_bytes % kWordBytes;

    // The mask-driven scatter of each group is the kernel backend's
    // zvcExpandGroup op — the inverse of the compaction above and the
    // software mirror of the DPE's scatter network. The bounds check
    // runs before the kernel call, so a backend never sees a payload
    // shorter than the mask's popcount promises; a truncated or
    // corrupted wire payload surfaces as a Status, never a panic.
    const KernelOps &kernel = kernels();
    size_t cursor = 0;
    uint64_t word = 0;
    while (word < full_words) {
        const uint64_t group =
            std::min<uint64_t>(kMaskWords, full_words - word);
        if (cursor + sizeof(uint32_t) > payload.size()) {
            return Status::truncated(
                "ZV: payload truncated before mask at byte %zu "
                "(payload %zu bytes)", cursor, payload.size());
        }
        uint32_t mask;
        std::memcpy(&mask, payload.data() + cursor, sizeof(mask));
        cursor += sizeof(mask);
        // Bits beyond a short final group would index past the output
        // region; drop them (the trailing-bytes check below still flags
        // the corrupt payload).
        if (group < kMaskWords)
            mask &= (1u << group) - 1u;

        const uint64_t present = static_cast<uint64_t>(popcount32(mask));
        if (cursor + present * kWordBytes > payload.size()) {
            return Status::truncated(
                "ZV: payload truncated in non-zero data at byte %zu "
                "(mask promises %llu words, payload %zu bytes)", cursor,
                static_cast<unsigned long long>(present), payload.size());
        }

        cursor += kernel.zvcExpandGroup(payload.data() + cursor, mask,
                                        static_cast<uint32_t>(group),
                                        out + word * kWordBytes);
        word += group;
    }

    if (tail_bytes) {
        if (cursor + tail_bytes > payload.size()) {
            return Status::truncated(
                "ZV: payload truncated in raw tail at byte %zu "
                "(payload %zu bytes)", cursor, payload.size());
        }
        std::memcpy(out + full_words * kWordBytes,
                    payload.data() + cursor, tail_bytes);
        cursor += tail_bytes;
    }
    if (cursor != payload.size()) {
        return Status::corrupt("ZV: payload has %zu trailing bytes",
                               payload.size() - cursor);
    }
    return Status();
}

} // namespace cdma
