#include "models/describe.hh"

#include "common/logging.hh"

namespace cdma {

namespace {

/** Map a live layer type to a descriptor kind. */
std::string
kindFor(const std::string &type)
{
    if (type == "conv")
        return "conv";
    if (type == "pool")
        return "pool";
    if (type == "fc")
        return "fc";
    if (type == "concat")
        return "inception"; // composite 1x1-heavy module
    if (type == "rnn")
        return "fc"; // GEMV-bound, like a classifier layer
    fatal("cannot describe layer type '%s'", type.c_str());
}

} // namespace

NetworkDesc
describeNetwork(const std::string &name, const Network &network,
                Shape4D input, int64_t default_batch)
{
    CDMA_ASSERT(network.size() > 0, "cannot describe an empty network");
    input.n = 1;

    NetworkDesc desc;
    desc.name = name;
    desc.default_batch = default_batch;
    desc.input_channels = input.c;
    desc.input_height = input.h;
    desc.input_width = input.w;

    Shape4D shape = input;
    for (size_t i = 0; i < network.size(); ++i) {
        const Layer &layer = network.layer(i);
        if (Network::isInPlaceType(layer.type())) {
            // In-place layers neither reshape nor add descriptor rows.
            shape = layer.outputShape(shape);
            continue;
        }
        LayerDesc row;
        row.name = layer.name();
        row.kind = kindFor(layer.type());
        row.macs_per_image = layer.forwardMacsPerImage(shape);
        shape = layer.outputShape(shape);
        row.channels = shape.c;
        row.height = shape.h;
        row.width = shape.w;
        // The record is sparse when a ReLU consumes this output or the
        // layer passes ReLU-ed data through (pool / composite modules
        // whose branches end in ReLU).
        row.relu_follows = layer.reluFollows() ||
            layer.type() == "pool" || layer.type() == "concat";
        desc.layers.push_back(std::move(row));
    }

    const size_t rows = desc.layers.size();
    for (size_t i = 0; i < rows; ++i) {
        desc.layers[i].depth_fraction =
            rows > 1 ? static_cast<double>(i) /
                static_cast<double>(rows - 1)
                     : 0.0;
    }
    return desc;
}

} // namespace cdma
