/** @file Unit tests for the compressed-GPU-footprint estimator (Sec. IX). */

#include <cstring>

#include <gtest/gtest.h>

#include "cdma/footprint.hh"
#include "common/rng.hh"
#include "compress/zvc.hh"

namespace cdma {
namespace {

TEST(Footprint, ExpectedLineBytesMatchesZvcArithmetic)
{
    CompressedFootprintEstimator estimator;
    // Density 0: mask only (4 B). Density 1: 4 + 128 B.
    EXPECT_DOUBLE_EQ(estimator.expectedLineBytes(0.0), 4.0);
    EXPECT_DOUBLE_EQ(estimator.expectedLineBytes(1.0), 4.0 + 128.0);
    EXPECT_DOUBLE_EQ(estimator.expectedLineBytes(0.5), 4.0 + 64.0);
}

TEST(Footprint, AnalyticModelMatchesCodecInExpectation)
{
    // Compress many 128 B lines at a known density and compare the mean
    // compressed size to the analytic expectation.
    Rng rng(55);
    const double density = 0.4;
    constexpr size_t kLines = 4000;
    std::vector<float> words(kLines * 32);
    for (auto &w : words)
        w = rng.bernoulli(density)
            ? 1.0f + static_cast<float>(rng.uniform()) : 0.0f;
    std::vector<uint8_t> bytes(words.size() * 4);
    std::memcpy(bytes.data(), words.data(), bytes.size());

    ZvcCompressor zvc(128);
    const auto compressed = zvc.compress(bytes);
    const double mean_line =
        static_cast<double>(compressed.compressedBytes()) /
        static_cast<double>(kLines);

    CompressedFootprintEstimator estimator;
    EXPECT_NEAR(mean_line, estimator.expectedLineBytes(density), 1.5);
}

TEST(Footprint, QuantizationRoundsToSectors)
{
    CompressedFootprintEstimator estimator;
    // 4 B expected -> one 32 B sector.
    EXPECT_EQ(estimator.quantizedLineBytes(0.0), 32u);
    // Fully dense lines never exceed raw.
    EXPECT_EQ(estimator.quantizedLineBytes(1.0), 128u);
}

TEST(Footprint, NetworkEstimateSavesMemory)
{
    CompressedFootprintEstimator estimator;
    for (const auto &net : allNetworkDescs()) {
        const auto fp = estimator.estimate(net, 16, 1.0);
        EXPECT_GT(fp.raw_bytes, 0u) << net.name;
        EXPECT_LT(fp.totalBytes(), fp.raw_bytes) << net.name;
        EXPECT_GT(fp.savings_ratio, 1.2) << net.name;
        EXPECT_LT(fp.savings_ratio, 4.0) << net.name;
    }
}

TEST(Footprint, TroughSavesMoreThanTrainedModel)
{
    CompressedFootprintEstimator estimator;
    const NetworkDesc net = vggDesc();
    const auto trough = estimator.estimate(net, 16, 0.35);
    const auto trained = estimator.estimate(net, 16, 1.0);
    EXPECT_GT(trough.savings_ratio, trained.savings_ratio);
}

TEST(Footprint, MetadataIsSmallFraction)
{
    CompressedFootprintEstimator estimator;
    const auto fp = estimator.estimate(alexNetDesc(), 64, 1.0);
    EXPECT_LT(static_cast<double>(fp.metadata_bytes),
              0.02 * static_cast<double>(fp.raw_bytes));
}

TEST(FootprintDeathTest, RejectsMisalignedSectors)
{
    CompressedStoreConfig config;
    config.line_bytes = 100; // not a multiple of 32
    EXPECT_DEATH(CompressedFootprintEstimator{config}, "multiple");
}

} // namespace
} // namespace cdma
