/**
 * @file
 * Baseline design-space study: vDNN's offload policy. The paper
 * evaluates vDNN_all (offload every layer's input, maximal memory
 * savings, maximal PCIe stress); the original vDNN also proposed a
 * conv-only policy. This harness compares both policies' memory working
 * set and iteration time, with and without cDMA compression, showing
 * that cDMA removes most of the performance argument for the weaker
 * policy.
 */

#include <cstdio>

#include "common/harness.hh"
#include "perf/step_sim.hh"

using namespace cdma;
using bench::Table;

int
main()
{
    std::printf("== Ablation: vDNN offload policy (cuDNN v5) ==\n");
    Table table({"network", "policy", "peak GB", "traffic GB",
                 "vDNN perf", "cDMA-ZV perf"});

    PerfModel perf;
    for (const auto &net : allNetworkDescs()) {
        const auto measured = bench::measureTimeAveragedRatios(
            net, Algorithm::Zvc, Layout::NCHW);
        std::vector<double> ratios;
        for (const auto &layer : measured.layers)
            ratios.push_back(layer.ratio);

        for (OffloadPolicy policy :
             {OffloadPolicy::All, OffloadPolicy::ConvOnly}) {
            VdnnMemoryManager manager(net, net.default_batch, policy);
            CdmaEngine engine(CdmaConfig{});
            StepSimulator sim(manager, engine, perf, CudnnVersion::V5);
            const StepResult oracle = sim.run(StepMode::Oracle);
            const StepResult vdnn = sim.run(StepMode::Vdnn);
            const StepResult cdma = sim.run(StepMode::Cdma, ratios);
            const MemoryFootprint fp = manager.footprint();
            table.addRow({
                net.name,
                offloadPolicyName(policy),
                Table::num(static_cast<double>(fp.vdnn_peak) / 1e9, 2),
                Table::num(static_cast<double>(
                               manager.totalOffloadBytes()) / 1e9, 2),
                Table::num(oracle.total_seconds / vdnn.total_seconds, 3),
                Table::num(oracle.total_seconds / cdma.total_seconds, 3),
            });
        }
    }
    table.print();
    std::printf("\n(offload-conv trades memory scalability for fewer "
                "stalls; with cDMA the gap narrows, keeping the "
                "offload-all policy's memory benefits)\n");
    return 0;
}
