/** @file Unit tests for the vDNN memory manager reconstruction. */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "vdnn/memory_manager.hh"

namespace cdma {
namespace {

TEST(VdnnManager, OffloadScheduleCoversEveryLayer)
{
    const NetworkDesc net = alexNetDesc();
    VdnnMemoryManager manager(net, net.default_batch);
    const auto &offloads = manager.offloadSchedule();
    ASSERT_EQ(offloads.size(), net.layers.size());
    EXPECT_EQ(offloads.front().label, "input");
    // Entry i carries the *input* of row i = output of row i-1.
    EXPECT_EQ(offloads[1].label, net.layers[0].name);
    EXPECT_EQ(offloads[1].bytes,
              static_cast<uint64_t>(net.layers[0].bytesPerImage()) *
                  static_cast<uint64_t>(net.default_batch));
}

TEST(VdnnManager, PrefetchIsReverseOfOffload)
{
    const NetworkDesc net = vggDesc();
    VdnnMemoryManager manager(net, 16);
    const auto offloads = manager.offloadSchedule();
    const auto prefetches = manager.prefetchSchedule();
    ASSERT_EQ(offloads.size(), prefetches.size());
    for (size_t i = 0; i < offloads.size(); ++i) {
        EXPECT_EQ(prefetches[i].label,
                  offloads[offloads.size() - 1 - i].label);
    }
}

TEST(VdnnManager, TotalBytesMatchSum)
{
    const NetworkDesc net = ninDesc();
    VdnnMemoryManager manager(net, 8);
    uint64_t sum = 0;
    for (const auto &op : manager.offloadSchedule())
        sum += op.bytes;
    EXPECT_EQ(manager.totalOffloadBytes(), sum);
    EXPECT_GT(sum, 0u);
}

TEST(VdnnManager, ActivationsDominateTrainingMemory)
{
    // Section III: "these activation maps occupy more than 90% of the
    // GPU-side memory allocations" for deep networks like VGG.
    const NetworkDesc net = vggDesc();
    VdnnMemoryManager manager(net, net.default_batch);
    const MemoryFootprint fp = manager.footprint();
    EXPECT_GT(fp.activationFraction(), 0.9);
}

TEST(VdnnManager, VggOversubscribesTitanXWithoutVirtualization)
{
    // The motivating scenario: VGG-16 at batch 128 needs tens of GB of
    // activations, far beyond the 12 GB Titan X; vDNN's working set fits.
    const NetworkDesc net = vggDesc();
    VdnnMemoryManager manager(net, net.default_batch);
    const MemoryFootprint fp = manager.footprint();
    EXPECT_GT(fp.baseline_total, 12ull * kGiB);
    EXPECT_LT(fp.vdnn_peak, 12ull * kGiB);
}

TEST(VdnnManager, VdnnPeakAlwaysBelowBaseline)
{
    for (const auto &net : allNetworkDescs()) {
        VdnnMemoryManager manager(net, net.default_batch);
        const MemoryFootprint fp = manager.footprint();
        EXPECT_LT(fp.vdnn_peak, fp.baseline_total) << net.name;
    }
}

TEST(VdnnManager, WeightBytesForKnownLayers)
{
    const NetworkDesc net = alexNetDesc();
    // fc1: 9216 x 4096 weights x 4 B.
    for (const auto &layer : net.layers) {
        if (layer.name == "fc1") {
            EXPECT_EQ(VdnnMemoryManager::weightBytes(layer),
                      9216ull * 4096 * 4);
        }
        if (layer.kind == "pool") {
            EXPECT_EQ(VdnnMemoryManager::weightBytes(layer), 0u);
        }
    }
}

TEST(VdnnManager, BatchScalesTraffic)
{
    const NetworkDesc net = squeezeNetDesc();
    VdnnMemoryManager small(net, 4);
    VdnnMemoryManager large(net, 8);
    // Offload traffic scales exactly linearly with batch.
    EXPECT_EQ(large.totalOffloadBytes(), 2 * small.totalOffloadBytes());
}

} // namespace
} // namespace cdma
