#include "sim/channel.hh"

#include <algorithm>

#include "common/logging.hh"

namespace cdma {

Channel::Channel(EventQueue &queue, std::string name,
                 double bytes_per_second)
    : queue_(queue), name_(std::move(name)),
      bytes_per_second_(bytes_per_second)
{
    CDMA_ASSERT(bytes_per_second > 0.0, "channel %s has no bandwidth",
                name_.c_str());
}

void
Channel::submit(uint64_t bytes, Completion on_done, SimTime extra_latency)
{
    const SimTime start = std::max(queue_.now(), busy_until_);
    const SimTime service =
        static_cast<double>(bytes) / bytes_per_second_ + extra_latency;
    busy_until_ = start + service;
    busy_seconds_ += service;
    total_bytes_ += bytes;
    if (on_done) {
        queue_.scheduleAt(busy_until_,
                          [cb = std::move(on_done)]() { cb(); });
    }
}

double
Channel::utilization() const
{
    const SimTime horizon = std::max(queue_.now(), busy_until_);
    return horizon > 0.0 ? busy_seconds_ / horizon : 0.0;
}

} // namespace cdma
