/**
 * @file
 * Zero-value compression (ZVC), the paper's main algorithm (Section V-A,
 * Figure 8). For every 32 consecutive 4-byte activation words, a 32-bit
 * mask records which words are non-zero ('1') and the non-zero words are
 * appended after the mask. 32 zero words collapse to a 4-byte mask (32x);
 * 32 dense words cost 4 + 128 bytes (3.1% metadata overhead). The ratio
 * depends only on the zero fraction, never on the spatial arrangement, so
 * ZVC is insensitive to the activation layout — the property Figure 11
 * demonstrates.
 */

#ifndef CDMA_COMPRESS_ZVC_HH
#define CDMA_COMPRESS_ZVC_HH

#include "compress/compressor.hh"

namespace cdma {

/** Zero-value compressor ("ZV" in the paper's figures). */
class ZvcCompressor : public Compressor
{
  public:
    /** Words covered by one ZVC mask. */
    static constexpr int kMaskWords = 32;
    /** Bytes per activation word (fp32). */
    static constexpr int kWordBytes = 4;

    explicit ZvcCompressor(
        uint64_t window_bytes = Compressor::kDefaultWindowBytes,
        const KernelOps *kernels = nullptr);

    std::string name() const override { return "ZV"; }

    /**
     * Exact compressed size (bytes) of a buffer with @p total_words words
     * of which @p nonzero_words are non-zero, without running the codec.
     * Used by the analytic sparsity models.
     */
    static uint64_t predictedBytes(uint64_t total_words,
                                   uint64_t nonzero_words);

    /**
     * Single-pass streaming codec: each 32-word group is masked and
     * left-packed by the kernel backend's zvcCompactGroup op (branchless
     * compaction on the scalar backend, vpcmpeqd + shuffle-table vpermd
     * on AVX2 — both software analogues of the hardware's prefix-sum
     * shift network). Decompression popcounts each mask to bounds-check
     * and scatter batched memcpy/memset runs.
     */
    void compressWindowInto(std::span<const uint8_t> window,
                            ByteVec &out) const override;

    Status decompressWindowInto(std::span<const uint8_t> payload,
                                uint64_t original_bytes,
                                uint8_t *out) const override;

    uint64_t compressedBound(uint64_t raw_len) const override;
};

} // namespace cdma

#endif // CDMA_COMPRESS_ZVC_HH
