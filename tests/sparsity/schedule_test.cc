/**
 * @file
 * Unit tests for the density schedule: the qualitative structure the
 * paper documents in Section IV must hold for every network and layer.
 */

#include <gtest/gtest.h>

#include "sparsity/schedule.hh"

namespace cdma {
namespace {

TEST(DensityCurve, UShape)
{
    const DensityCurve curve{0.6, 0.2, 0.4, 0.3};
    EXPECT_DOUBLE_EQ(curve.at(0.0), 0.6);
    EXPECT_NEAR(curve.at(0.3), 0.2, 1e-12);
    EXPECT_NEAR(curve.at(1.0), 0.4, 1e-12);
    // Monotone decrease into the trough, increase out of it.
    EXPECT_GT(curve.at(0.1), curve.at(0.2));
    EXPECT_LT(curve.at(0.5), curve.at(0.9));
}

TEST(DensityCurve, ClampsOutOfRangeProgress)
{
    const DensityCurve curve{0.6, 0.2, 0.4, 0.3};
    EXPECT_DOUBLE_EQ(curve.at(-1.0), curve.at(0.0));
    EXPECT_DOUBLE_EQ(curve.at(2.0), curve.at(1.0));
}

TEST(DensityCurve, RecoveryIsFastThenSlow)
{
    const DensityCurve curve{0.6, 0.2, 0.4, 0.3};
    const double first_half = curve.at(0.65) - curve.at(0.3);
    const double second_half = curve.at(1.0) - curve.at(0.65);
    EXPECT_GT(first_half, second_half);
}

class ScheduleInvariants : public ::testing::TestWithParam<int>
{
  protected:
    NetworkDesc net_ = allNetworkDescs()[static_cast<size_t>(GetParam())];
    DensitySchedule schedule_{net_};
};

TEST_P(ScheduleInvariants, FirstLayerNearHalfDensity)
{
    // Figure 4: conv0 always within a few percent of 50%.
    for (double t : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        EXPECT_NEAR(schedule_.density(0, t), 0.5, 0.03)
            << net_.name << " at t=" << t;
    }
}

TEST_P(ScheduleInvariants, DensitiesAreProbabilities)
{
    for (size_t i = 0; i < net_.layers.size(); ++i) {
        for (double t : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
            const double d = schedule_.density(i, t);
            EXPECT_GE(d, 0.0);
            EXPECT_LE(d, 1.0);
        }
    }
}

TEST_P(ScheduleInvariants, TroughBelowEndpoints)
{
    for (size_t i = 0; i < net_.layers.size(); ++i) {
        const DensityCurve &curve = schedule_.curve(i);
        EXPECT_LE(curve.trough, curve.initial);
        EXPECT_LE(curve.trough, curve.final);
    }
}

TEST_P(ScheduleInvariants, DeeperConvLayersSparser)
{
    // Compare the first and last conv-like rows (conv, inception, fire)
    // at the trained point.
    int first = -1, last = -1;
    for (size_t i = 0; i < net_.layers.size(); ++i) {
        const auto &kind = net_.layers[i].kind;
        if ((kind == "conv" || kind == "inception" || kind == "fire") &&
            net_.layers[i].relu_follows) {
            if (first < 0)
                first = static_cast<int>(i);
            last = static_cast<int>(i);
        }
    }
    if (first < 0 || last <= first)
        GTEST_SKIP() << "not enough conv rows";
    EXPECT_LT(schedule_.density(static_cast<size_t>(last), 1.0),
              schedule_.density(static_cast<size_t>(first), 1.0) + 1e-9);
}

TEST_P(ScheduleInvariants, FcRowsAreSparsest)
{
    double min_conv = 1.0;
    double max_fc = 0.0;
    bool has_fc = false;
    for (size_t i = 0; i < net_.layers.size(); ++i) {
        const auto &layer = net_.layers[i];
        if (!layer.relu_follows)
            continue;
        const double d = schedule_.density(i, 1.0);
        if (layer.kind == "fc") {
            has_fc = true;
            max_fc = std::max(max_fc, d);
        } else if (layer.kind == "conv") {
            min_conv = std::min(min_conv, d);
        }
    }
    if (!has_fc)
        GTEST_SKIP() << "network has no ReLU-fed fc rows";
    EXPECT_LT(max_fc, min_conv);
}

TEST_P(ScheduleInvariants, NetworkDensityTracksUShape)
{
    const double start = schedule_.networkDensity(0.0);
    const double trough = schedule_.networkDensity(0.3);
    const double end = schedule_.networkDensity(1.0);
    EXPECT_LT(trough, start);
    EXPECT_LT(trough, end);
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, ScheduleInvariants,
                         ::testing::Range(0, 6),
                         [](const auto &info) {
                             return allNetworkDescs()
                                 [static_cast<size_t>(info.param)].name;
                         });

TEST(ScheduleCalibration, SixNetworkAverageSparsityNearPaper)
{
    // Section IV-B: "an average 62% network-wide activation sparsity"
    // across the training periods of the six networks. Average our model
    // over both networks and training time.
    double total = 0.0;
    int samples = 0;
    for (const auto &desc : allNetworkDescs()) {
        DensitySchedule schedule(desc);
        for (double t = 0.05; t <= 1.0; t += 0.05) {
            total += 1.0 - schedule.networkDensity(t);
            ++samples;
        }
    }
    const double average_sparsity = total / samples;
    EXPECT_NEAR(average_sparsity, 0.62, 0.10);
}

TEST(ScheduleCalibration, AlexNetTrainedSparsityNearPaper)
{
    // Section IV-A: fully trained AlexNet shows ~49.4% size-weighted
    // sparsity.
    DensitySchedule schedule(alexNetDesc());
    const double sparsity = 1.0 - schedule.networkDensity(1.0);
    EXPECT_NEAR(sparsity, 0.494, 0.10);
}

TEST(ScheduleCalibration, PeakSparsityApproachesMaximum)
{
    // Section IV-B: maximum network-wide sparsity of ~93% observed during
    // training (at the trough of the sparsest network).
    double peak = 0.0;
    for (const auto &desc : allNetworkDescs()) {
        DensitySchedule schedule(desc);
        for (double t = 0.05; t <= 1.0; t += 0.05)
            peak = std::max(peak, 1.0 - schedule.networkDensity(t));
    }
    EXPECT_GT(peak, 0.70);
}

} // namespace
} // namespace cdma
