/**
 * @file
 * Bandwidth-limited FIFO channel model. Transfers submitted to a channel
 * are serviced in order at a fixed byte rate — the abstraction used for
 * the PCIe link, the DRAM read stream feeding the cDMA engine, and the
 * on-chip crossbar slice. The channel tracks utilization and queueing so
 * the harnesses can report link occupancy.
 */

#ifndef CDMA_SIM_CHANNEL_HH
#define CDMA_SIM_CHANNEL_HH

#include <cstdint>
#include <functional>
#include <string>

#include "sim/event_queue.hh"

namespace cdma {

/** FIFO store-and-forward channel with a fixed service bandwidth. */
class Channel
{
  public:
    using Completion = std::function<void()>;

    /**
     * @param queue Owning event queue.
     * @param name Channel name for reporting.
     * @param bytes_per_second Service bandwidth.
     */
    Channel(EventQueue &queue, std::string name, double bytes_per_second);

    /**
     * Enqueue a transfer of @p bytes; @p on_done fires when the last byte
     * has been serviced. Transfers are serviced strictly in submission
     * order. A latency can model fixed per-transfer overhead.
     */
    void submit(uint64_t bytes, Completion on_done,
                SimTime extra_latency = 0.0);

    /** Time at which the channel becomes idle given current queue. */
    SimTime busyUntil() const { return busy_until_; }

    /** Total bytes ever submitted. */
    uint64_t totalBytes() const { return total_bytes_; }

    /** Total seconds the channel has been busy. */
    SimTime busySeconds() const { return busy_seconds_; }

    /** Utilization over [0, now]. */
    double utilization() const;

    /** Configured bandwidth (bytes/second). */
    double bandwidth() const { return bytes_per_second_; }

    /** Channel name. */
    const std::string &name() const { return name_; }

  private:
    EventQueue &queue_;
    std::string name_;
    double bytes_per_second_;
    SimTime busy_until_ = 0.0;
    SimTime busy_seconds_ = 0.0;
    uint64_t total_bytes_ = 0;
};

} // namespace cdma

#endif // CDMA_SIM_CHANNEL_HH
