/**
 * @file
 * Recoverable-error reporting for data-dependent failures. The gem5-style
 * panic()/fatal() in logging.hh terminate the process, which is the right
 * response to an internal invariant violation or a bad configuration —
 * but not to a corrupt payload arriving over a link where bit flips,
 * truncated descriptors and transient failures are facts of life. Every
 * decode path that consumes wire bytes reports through Status instead:
 * the error carries a code (for table-driven tests and retry policy) and
 * a human-readable message with codec/window/offset locality, and the
 * caller decides whether to retry, degrade, or surface it. panic() stays
 * reserved for true invariants that no payload byte can reach.
 */

#ifndef CDMA_COMMON_STATUS_HH
#define CDMA_COMMON_STATUS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace cdma {

/** Machine-readable class of a recoverable failure. */
enum class StatusCode : uint8_t {
    Ok = 0,
    /** Payload ended before the decoder finished (short DMA, truncation). */
    Truncated,
    /** Structurally invalid payload: bad symbol, run overflow, trailing
     *  bytes — anything a bit flip can turn a valid stream into. */
    Corrupt,
    /** End-to-end check failed: CRC mismatch or framing-length mismatch
     *  caught before any decode ran. */
    IntegrityError,
    /** A transfer's bounded retry budget was exhausted. */
    RetryExhausted,
};

/** Display name of a status code ("ok", "truncated", ...). */
const char *statusCodeName(StatusCode code);

/**
 * A recoverable-error result: a code plus a formatted message. The
 * default-constructed Status is success and carries no allocation.
 * Marked nodiscard so a decode error cannot be silently dropped.
 */
class [[nodiscard]] Status
{
  public:
    /** Success. */
    Status() = default;

    /** Failure with a printf-formatted message. @p code must not be Ok. */
    static Status truncated(const char *fmt, ...)
        __attribute__((format(printf, 1, 2)));
    static Status corrupt(const char *fmt, ...)
        __attribute__((format(printf, 1, 2)));
    static Status integrityError(const char *fmt, ...)
        __attribute__((format(printf, 1, 2)));
    static Status retryExhausted(const char *fmt, ...)
        __attribute__((format(printf, 1, 2)));

    /** True on success. */
    bool ok() const { return code_ == StatusCode::Ok; }

    StatusCode code() const { return code_; }

    /** Failure message (empty on success). */
    const std::string &message() const { return message_; }

    /** "ok" or "<code>: <message>" for reports and logs. */
    std::string toString() const;

    /**
     * Prepend locality to the message ("<context>: <message>") — callers
     * add what they know (window index, shard index, layer label) on the
     * way up without the codec needing to know it. No-op on success.
     */
    Status withContext(const char *fmt, ...) const
        __attribute__((format(printf, 2, 3)));

    bool operator==(const Status &other) const
    {
        return code_ == other.code_;
    }

  private:
    Status(StatusCode code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    static Status formatted(StatusCode code, const char *fmt,
                            va_list args);

    StatusCode code_ = StatusCode::Ok;
    std::string message_;
};

/**
 * Either a value or a failure Status. value() asserts success, so the
 * canonical pattern is `if (!r.ok()) return r.status();` before use —
 * or `*r` directly where the input is trusted (tests, examples).
 */
template <typename T>
class [[nodiscard]] StatusOr
{
  public:
    /** Failure. @p status must not be ok. */
    StatusOr(Status status) : status_(std::move(status))
    {
        CDMA_ASSERT(!status_.ok(),
                    "StatusOr constructed from an ok Status");
    }

    /** Success carrying @p value. */
    StatusOr(T value) : value_(std::move(value)) {}

    bool ok() const { return status_.ok(); }

    /** The failure (a default ok Status on success). */
    const Status &status() const { return status_; }

    /** The value; asserts ok(). */
    T &value()
    {
        CDMA_ASSERT(status_.ok(), "value() on failed StatusOr: %s",
                    status_.toString().c_str());
        return *value_;
    }
    const T &value() const
    {
        CDMA_ASSERT(status_.ok(), "value() on failed StatusOr: %s",
                    status_.toString().c_str());
        return *value_;
    }

    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    Status status_;
    std::optional<T> value_;
};

} // namespace cdma

#endif // CDMA_COMMON_STATUS_HH
