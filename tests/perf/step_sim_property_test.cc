/**
 * @file
 * Parameterized property sweeps over the training-step DES: invariants
 * that must hold for every (network, cuDNN version, compression ratio)
 * combination, not just the configurations the figures use. These pin
 * down the simulator's monotonicity and conservation properties.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "perf/step_sim.hh"

namespace cdma {
namespace {

using PropertyParam = std::tuple<int /*network*/, CudnnVersion>;

class StepSimSweep : public ::testing::TestWithParam<PropertyParam>
{
  protected:
    NetworkDesc net_ =
        allNetworkDescs()[static_cast<size_t>(std::get<0>(GetParam()))];
    CudnnVersion version_ = std::get<1>(GetParam());
    VdnnMemoryManager manager_{net_, net_.default_batch};
    CdmaEngine engine_{CdmaConfig{}};
    PerfModel perf_;
    StepSimulator sim_{manager_, engine_, perf_, version_};

    std::vector<double> uniformRatios(double r) const
    {
        return std::vector<double>(net_.layers.size(), r);
    }
};

TEST_P(StepSimSweep, SpeedupMonotoneInCompressionRatio)
{
    double prev_time = 1e99;
    for (double ratio : {1.0, 1.5, 2.0, 3.0, 5.0, 8.0, 12.5}) {
        const StepResult result =
            sim_.run(StepMode::Cdma, uniformRatios(ratio));
        EXPECT_LE(result.total_seconds, prev_time + 1e-12)
            << "ratio " << ratio;
        prev_time = result.total_seconds;
    }
}

TEST_P(StepSimSweep, RatioOneEqualsVdnn)
{
    const StepResult cdma = sim_.run(StepMode::Cdma, uniformRatios(1.0));
    const StepResult vdnn = sim_.run(StepMode::Vdnn);
    EXPECT_NEAR(cdma.total_seconds, vdnn.total_seconds,
                1e-9 * vdnn.total_seconds);
    EXPECT_EQ(cdma.wire_transfer_bytes, vdnn.wire_transfer_bytes);
}

TEST_P(StepSimSweep, TotalsDecomposeIntoPhases)
{
    const StepResult vdnn = sim_.run(StepMode::Vdnn);
    EXPECT_NEAR(vdnn.total_seconds,
                vdnn.forward_seconds + vdnn.backward_seconds,
                1e-9 * vdnn.total_seconds);
    EXPECT_GE(vdnn.forward_seconds, 0.0);
    EXPECT_GE(vdnn.backward_seconds, 0.0);
}

TEST_P(StepSimSweep, StallsAreNonNegativeAndBounded)
{
    const StepResult vdnn = sim_.run(StepMode::Vdnn);
    for (const auto &layer : vdnn.layers) {
        EXPECT_GE(layer.forward_stall, 0.0) << layer.label;
        EXPECT_GE(layer.backward_stall, 0.0) << layer.label;
        // A single layer's stall cannot exceed the whole iteration.
        EXPECT_LE(layer.forward_stall + layer.backward_stall,
                  vdnn.total_seconds)
            << layer.label;
    }
}

TEST_P(StepSimSweep, TransfersNeverHurtBeyondSerialization)
{
    // vDNN's iteration can never exceed compute + total transfer time
    // (the fully-serialized worst case).
    const StepResult vdnn = sim_.run(StepMode::Vdnn);
    const double transfer_total =
        2.0 * static_cast<double>(vdnn.wire_transfer_bytes) /
        engine_.config().gpu.pcie_effective_bandwidth;
    EXPECT_LE(vdnn.total_seconds,
              vdnn.compute_seconds + transfer_total + 1e-9);
}

TEST_P(StepSimSweep, PcieUtilizationConsistentWithTraffic)
{
    const StepResult vdnn = sim_.run(StepMode::Vdnn);
    // busy_seconds = utilization * total must equal the wire bytes over
    // the effective bandwidth (both directions).
    const double busy = vdnn.pcie_utilization * vdnn.total_seconds;
    const double expected =
        2.0 * static_cast<double>(vdnn.wire_transfer_bytes) /
        engine_.config().gpu.pcie_effective_bandwidth;
    EXPECT_NEAR(busy, expected, expected * 0.01);
}

TEST_P(StepSimSweep, OracleInvariantAcrossRatios)
{
    const StepResult a = sim_.run(StepMode::Oracle);
    const StepResult b = sim_.run(StepMode::Oracle, uniformRatios(5.0));
    EXPECT_DOUBLE_EQ(a.total_seconds, b.total_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    NetworksAndVersions, StepSimSweep,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(CudnnVersion::V1,
                                         CudnnVersion::V3,
                                         CudnnVersion::V5)),
    [](const auto &info) {
        return allNetworkDescs()[static_cast<size_t>(
                   std::get<0>(info.param))].name +
            "_" + cudnnVersionName(std::get<1>(info.param));
    });

} // namespace
} // namespace cdma
