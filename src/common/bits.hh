/**
 * @file
 * Bit-manipulation helpers shared by the compression codecs and the ZVC
 * engine cycle model: popcount, mask scans and small prefix sums mirroring
 * the hardware structures described in Section V-B of the paper.
 */

#ifndef CDMA_COMMON_BITS_HH
#define CDMA_COMMON_BITS_HH

#include <array>
#include <bit>
#include <cstdint>

namespace cdma {

/** Number of set bits in a 32-bit mask (the ZVC non-zero count). */
inline int
popcount32(uint32_t mask)
{
    return std::popcount(mask);
}

/** Number of set bits in a 64-bit word. */
inline int
popcount64(uint64_t mask)
{
    return std::popcount(mask);
}

/**
 * Exclusive prefix sum over the bits of an 8-bit mask segment, mirroring
 * the 11-adder prefix-sum network in the ZVC compression engine
 * (Figure 10a): entry i holds the number of set bits strictly below bit i.
 */
inline std::array<int, 8>
maskPrefixSum8(uint8_t mask)
{
    std::array<int, 8> prefix{};
    int running = 0;
    for (int i = 0; i < 8; ++i) {
        prefix[static_cast<size_t>(i)] = running;
        running += (mask >> i) & 1;
    }
    return prefix;
}

/** Round @p value up to the next multiple of @p align. @pre align > 0. */
inline uint64_t
roundUp(uint64_t value, uint64_t align)
{
    return (value + align - 1) / align * align;
}

/** Integer ceiling division. @pre divisor > 0. */
inline uint64_t
ceilDiv(uint64_t dividend, uint64_t divisor)
{
    return (dividend + divisor - 1) / divisor;
}

} // namespace cdma

#endif // CDMA_COMMON_BITS_HH
