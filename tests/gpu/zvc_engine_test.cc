/**
 * @file
 * Unit tests for the ZVC engine cycle model: its payload must be
 * bit-identical to the functional ZvcCompressor at line granularity, and
 * its timing must match the paper's Figure 10 numbers (6 cycles per
 * 128 B line to compress, 32 B/cycle throughput).
 */

#include <cstring>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/zvc.hh"
#include "gpu/zvc_engine.hh"

namespace cdma {
namespace {

std::vector<uint8_t>
randomSparseWords(size_t words, double density, uint64_t seed)
{
    Rng rng(seed);
    std::vector<float> values(words);
    for (auto &v : values)
        v = rng.bernoulli(density)
            ? static_cast<float>(std::abs(rng.normal())) : 0.0f;
    std::vector<uint8_t> bytes(words * 4);
    std::memcpy(bytes.data(), values.data(), bytes.size());
    return bytes;
}

TEST(ZvcEngine, SingleLineLatencyMatchesFigure10)
{
    // "The total latency to compress a 128-byte line is six cycles, four
    // 32B sectors moving through a three-stage pipeline."
    EXPECT_EQ(ZvcEngineModel::compressCycles(128), 6u);
}

TEST(ZvcEngine, ThroughputIs32BytesPerCycle)
{
    EXPECT_DOUBLE_EQ(ZvcEngineModel::throughput(1e9), 32e9);
    // At the Titan X boost clock (~1.075 GHz) one engine sustains
    // ~34 GB/s; the six memory-controller engines of Figure 9 together
    // cover the 200 GB/s COMP_BW budget.
    EXPECT_GT(6.0 * ZvcEngineModel::throughput(1.075e9), 200e9);
}

TEST(ZvcEngine, SteadyStatePipelineCycles)
{
    // N sectors take N + 2 cycles (pipeline fill), i.e. asymptotically
    // one sector per cycle.
    EXPECT_EQ(ZvcEngineModel::compressCycles(32), 3u);
    EXPECT_EQ(ZvcEngineModel::compressCycles(320), 12u);
    EXPECT_EQ(ZvcEngineModel::compressCycles(0), 0u);
}

TEST(ZvcEngine, PayloadMatchesFunctionalCompressor)
{
    // The engine's line-oriented output must equal ZvcCompressor with a
    // 128 B window (one 32-word mask per line).
    const auto input = randomSparseWords(4096, 0.4, 77);
    ZvcEngineModel engine;
    const auto hw = engine.compress(input);

    ZvcCompressor sw(ZvcEngineModel::kLineBytes);
    const auto reference = sw.compress(input);
    EXPECT_EQ(hw.payload, reference.payload);
}

TEST(ZvcEngine, DecompressInvertsCompress)
{
    const auto input = randomSparseWords(2048, 0.3, 78);
    ZvcEngineModel engine;
    const auto compressed = engine.compress(input);
    const auto restored = engine.decompress(compressed.payload,
                                            input.size());
    EXPECT_EQ(restored.payload, input);
}

TEST(ZvcEngine, DecompressLatencyIsTwoCyclesOverStreaming)
{
    const auto input = randomSparseWords(256, 0.5, 79);
    ZvcEngineModel engine;
    const auto compressed = engine.compress(input);
    const auto restored = engine.decompress(compressed.payload,
                                            input.size());
    EXPECT_EQ(restored.cycles, restored.sectors +
                                   ZvcEngineModel::kDecompressLatency);
}

TEST(ZvcEngine, AllZeroLineCompressesToMaskOnly)
{
    const std::vector<uint8_t> zeros(128, 0);
    ZvcEngineModel engine;
    const auto result = engine.compress(zeros);
    EXPECT_EQ(result.payload.size(), 4u);
    EXPECT_EQ(result.cycles, 6u);
}

TEST(ZvcEngine, DenseLineCarriesFullPayload)
{
    std::vector<uint8_t> dense(128, 0xFF);
    ZvcEngineModel engine;
    const auto result = engine.compress(dense);
    EXPECT_EQ(result.payload.size(), 4u + 128u);
}

TEST(ZvcEngineDeathTest, RejectsUnalignedInput)
{
    ZvcEngineModel engine;
    const std::vector<uint8_t> unaligned(33, 0);
    EXPECT_DEATH(engine.compress(unaligned), "sector aligned");
}

} // namespace
} // namespace cdma
