/**
 * @file
 * Tests for the async double-buffered offload pipeline: the deterministic
 * event timeline against the closed-form steady-state model, shard
 * streaming edge cases (empty, single window, shards vs lanes in both
 * directions), byte identity of the stitched buffer, and the engine's
 * overlap-aware timing mode.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "cdma/transfer_engine.hh"
#include "common/rng.hh"
#include "compress/parallel.hh"
#include "vdnn/memory_manager.hh"

namespace cdma {
namespace {

/** ReLU-like fp32 words at the given density. */
std::vector<uint8_t>
makeInput(double density, size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> input(bytes, 0);
    const size_t words = bytes / 4;
    for (size_t i = 0; i < words; ++i) {
        if (density > 0.0 && rng.bernoulli(density)) {
            const float value =
                1.0f + static_cast<float>(std::abs(rng.normal()));
            std::memcpy(input.data() + i * 4, &value, 4);
        }
    }
    for (size_t i = words * 4; i < bytes; ++i)
        input[i] = static_cast<uint8_t>(1 + rng.uniformInt(255));
    return input;
}

void
expectIdentical(const CompressedBuffer &a, const CompressedBuffer &b,
                const char *what)
{
    EXPECT_EQ(a.original_bytes, b.original_bytes) << what;
    EXPECT_EQ(a.window_bytes, b.window_bytes) << what;
    EXPECT_EQ(a.window_sizes, b.window_sizes) << what;
    EXPECT_EQ(a.payload, b.payload) << what;
}

CdmaEngine
makeEngine(unsigned lanes, uint64_t shard_bytes = 0,
           TimingMode mode = TimingMode::Overlapped)
{
    CdmaConfig config;
    config.compression.lanes = lanes;
    config.transfer.shard_bytes = shard_bytes;
    config.transfer.timing_mode = mode;
    return CdmaEngine(config);
}

/**
 * Reference recurrence for the staging pipeline with @p buffers staging
 * buffers: the compression engine is serial, the wire is FIFO, and
 * compressing shard k must wait until shard k - buffers has drained.
 */
double
referenceMakespan(const std::vector<ShardTransfer> &shards,
                  double compress_bw, double wire_bw, unsigned buffers)
{
    const size_t n = shards.size();
    std::vector<double> compress_end(n, 0.0), wire_end(n, 0.0);
    for (size_t k = 0; k < n; ++k) {
        double start = k > 0 ? compress_end[k - 1] : 0.0;
        if (k >= buffers)
            start = std::max(start, wire_end[k - buffers]);
        compress_end[k] =
            start + static_cast<double>(shards[k].raw_bytes) / compress_bw;
        const double wire_start = std::max(
            compress_end[k], k > 0 ? wire_end[k - 1] : 0.0);
        wire_end[k] = wire_start +
            static_cast<double>(shards[k].wire_bytes) / wire_bw;
    }
    return n > 0 ? wire_end[n - 1] : 0.0;
}

TEST(PipelineTiming, ClosedFormSteadyStateWireBound)
{
    // Uniform shards, wire the slower stage: the double-buffered makespan
    // must equal one compression fill plus the wire at its full rate,
    //   overlapped = first_compress + n * wire  ( = n*max + min ),
    // to 1e-9 relative error.
    const uint64_t raw = 1 << 20;
    const double ratio = 4.0;
    const uint64_t wire_bytes = static_cast<uint64_t>(raw / ratio);
    const double compress_bw = 200e9, wire_bw = 12.8e9;
    const size_t n = 16;
    std::vector<ShardTransfer> shards(n, {raw, wire_bytes});

    const OffloadTiming timing =
        OffloadScheduler::pipelineTiming(shards, compress_bw, wire_bw);
    const double c = static_cast<double>(raw) / compress_bw;
    const double w = static_cast<double>(wire_bytes) / wire_bw;
    ASSERT_GT(w, c); // wire-bound by construction
    const double closed_form = c + static_cast<double>(n) * w;
    EXPECT_NEAR(timing.overlapped_seconds, closed_form,
                1e-9 * closed_form);
    EXPECT_NEAR(timing.compress_seconds, static_cast<double>(n) * c,
                1e-9 * n * c);
    EXPECT_NEAR(timing.wire_seconds, static_cast<double>(n) * w,
                1e-9 * n * w);
    // All but the pipeline-fill compression is hidden under the wire.
    EXPECT_NEAR(timing.overlap_fraction,
                static_cast<double>(n - 1) / static_cast<double>(n), 1e-9);
}

TEST(PipelineTiming, ClosedFormSteadyStateCompressBound)
{
    // Compression the slower stage (a fetch-capped layer): the wire
    // drains behind compression, overlapped = n * compress + last_wire.
    const uint64_t raw = 1 << 20;
    const uint64_t wire_bytes = raw / 64; // 64x ratio: way past the cap
    const double compress_bw = 200e9, wire_bw = 12.8e9;
    const size_t n = 12;
    std::vector<ShardTransfer> shards(n, {raw, wire_bytes});

    const OffloadTiming timing =
        OffloadScheduler::pipelineTiming(shards, compress_bw, wire_bw);
    const double c = static_cast<double>(raw) / compress_bw;
    const double w = static_cast<double>(wire_bytes) / wire_bw;
    ASSERT_GT(c, w); // compress-bound by construction
    const double closed_form = static_cast<double>(n) * c + w;
    EXPECT_NEAR(timing.overlapped_seconds, closed_form,
                1e-9 * closed_form);
    EXPECT_NEAR(timing.overlap_fraction,
                static_cast<double>(n - 1) / static_cast<double>(n), 1e-9);
}

TEST(PipelineTiming, MatchesReferenceRecurrenceOnMixedShards)
{
    // Non-uniform shard sizes and several staging depths: the DES must
    // reproduce the textbook recurrence exactly.
    Rng rng(404);
    std::vector<ShardTransfer> shards;
    for (int i = 0; i < 23; ++i) {
        const uint64_t raw = 4096 + 4096 * rng.uniformInt(16);
        shards.push_back({raw, raw / (1 + rng.uniformInt(8))});
    }
    for (unsigned buffers : {1u, 2u, 3u, 5u}) {
        const OffloadTiming timing = OffloadScheduler::pipelineTiming(
            shards, 200e9, 12.8e9, buffers);
        const double expected =
            referenceMakespan(shards, 200e9, 12.8e9, buffers);
        EXPECT_NEAR(timing.overlapped_seconds, expected, 1e-9 * expected)
            << buffers << " staging buffers";
        // More staging can only help, and never beats full overlap.
        EXPECT_LE(timing.overlapped_seconds,
                  timing.serializedSeconds() + 1e-12);
        EXPECT_GE(timing.overlapped_seconds,
                  std::max(timing.compress_seconds, timing.wire_seconds) -
                      1e-12);
    }
}

TEST(PipelineTiming, SingleShardHasNoOverlap)
{
    const std::vector<ShardTransfer> shards = {{4096, 1024}};
    const OffloadTiming timing =
        OffloadScheduler::pipelineTiming(shards, 200e9, 12.8e9);
    EXPECT_DOUBLE_EQ(timing.overlapped_seconds,
                     timing.serializedSeconds());
    EXPECT_DOUBLE_EQ(timing.overlap_fraction, 0.0);
    EXPECT_EQ(timing.shard_count, 1u);
}

TEST(OffloadScheduler, ZeroByteBuffer)
{
    const CdmaEngine engine = makeEngine(4);
    const OffloadScheduler scheduler(engine);
    const OffloadResult result = scheduler.offload({});
    EXPECT_EQ(result.shards.size(), 0u);
    EXPECT_EQ(result.timing.shard_count, 0u);
    EXPECT_DOUBLE_EQ(result.timing.overlapped_seconds, 0.0);
    EXPECT_DOUBLE_EQ(result.timing.overlap_fraction, 0.0);
    EXPECT_EQ(result.buffer.original_bytes, 0u);
    EXPECT_TRUE(result.buffer.payload.empty());
    EXPECT_TRUE(engine.compressor().decompress(result.buffer).value().empty());
}

TEST(OffloadScheduler, SingleWindowBuffer)
{
    const CdmaEngine engine = makeEngine(4);
    const OffloadScheduler scheduler(engine);
    const auto input = makeInput(0.5, 1000, 17);
    const OffloadResult result = scheduler.offload(input);
    ASSERT_EQ(result.shards.size(), 1u);
    EXPECT_EQ(result.shards[0].raw_bytes, input.size());
    EXPECT_DOUBLE_EQ(result.timing.overlap_fraction, 0.0);
    expectIdentical(result.buffer,
                    engine.compressor().serial().compress(input),
                    "single window");
    EXPECT_EQ(engine.compressor().decompress(result.buffer).value(), input);
}

TEST(OffloadScheduler, ShardsGreaterThanLanes)
{
    // 2 lanes, 1 MiB -> 256 windows -> 16 shards of 17 windows: many
    // more shards than lanes; the stitched buffer must be byte-identical
    // to the serial compressor and round-trip.
    const CdmaEngine engine = makeEngine(2);
    const OffloadScheduler scheduler(engine);
    const auto input = makeInput(0.4, (1 << 20) + 123, 29);
    const OffloadResult result = scheduler.offload(input);
    EXPECT_GT(result.shards.size(),
              static_cast<size_t>(engine.compressor().lanes()));
    expectIdentical(result.buffer,
                    engine.compressor().serial().compress(input),
                    "shards > lanes");
    EXPECT_EQ(engine.compressor().decompress(result.buffer).value(), input);
    EXPECT_GT(result.timing.overlap_fraction, 0.0);
}

TEST(OffloadScheduler, LanesGreaterThanShards)
{
    // 8 lanes, 3 single-window shards: most lanes idle, identity and
    // timing must still hold.
    const CdmaEngine engine = makeEngine(8, /*shard_bytes=*/4096);
    const OffloadScheduler scheduler(engine);
    EXPECT_EQ(scheduler.shardWindows(), 1u);
    const auto input = makeInput(0.5, 3 * 4096, 31);
    const OffloadResult result = scheduler.offload(input);
    ASSERT_EQ(result.shards.size(), 3u);
    expectIdentical(result.buffer,
                    engine.compressor().serial().compress(input),
                    "lanes > shards");
    EXPECT_EQ(engine.compressor().decompress(result.buffer).value(), input);
}

TEST(OffloadScheduler, SerialLaneMatchesParallelLanes)
{
    // The shard stream (and therefore the stitched buffer and the
    // modeled timing) must not depend on lane count.
    const auto input = makeInput(0.3, (1 << 19) + 7, 37);
    const CdmaEngine serial = makeEngine(1);
    const CdmaEngine parallel = makeEngine(8);
    const OffloadResult a = OffloadScheduler(serial).offload(input);
    const OffloadResult b = OffloadScheduler(parallel).offload(input);
    expectIdentical(a.buffer, b.buffer, "serial vs parallel lanes");
    ASSERT_EQ(a.shards.size(), b.shards.size());
    for (size_t i = 0; i < a.shards.size(); ++i) {
        EXPECT_EQ(a.shards[i].raw_bytes, b.shards[i].raw_bytes);
        EXPECT_EQ(a.shards[i].wire_bytes, b.shards[i].wire_bytes);
    }
    EXPECT_DOUBLE_EQ(a.timing.overlapped_seconds,
                     b.timing.overlapped_seconds);
}

TEST(OffloadScheduler, DeterministicEventTimeline)
{
    // Two runs of the same offload produce bit-identical timing: event
    // ordering in the pipeline model is deterministic (FIFO tie-break),
    // and shard completion order never leaks into the result.
    const CdmaEngine engine = makeEngine(0); // all hardware threads
    const OffloadScheduler scheduler(engine);
    const auto input = makeInput(0.5, (1 << 20) + 4096, 41);
    const OffloadResult a = scheduler.offload(input);
    const OffloadResult b = scheduler.offload(input);
    EXPECT_EQ(a.timing.overlapped_seconds, b.timing.overlapped_seconds);
    EXPECT_EQ(a.timing.compress_seconds, b.timing.compress_seconds);
    EXPECT_EQ(a.timing.wire_seconds, b.timing.wire_seconds);
    EXPECT_EQ(a.timing.overlap_fraction, b.timing.overlap_fraction);
    expectIdentical(a.buffer, b.buffer, "repeat offload");
}

TEST(ParallelCompressor, ShardStreamArrivesInOrderAndStitchesExactly)
{
    const auto input = makeInput(0.5, (1 << 18) + 37, 43);
    for (unsigned lanes : {1u, 2u, 8u}) {
        const ParallelCompressor compressor(Algorithm::Zvc, 4096, lanes);
        CompressedBuffer stitched;
        stitched.original_bytes = input.size();
        stitched.window_bytes = 4096;
        uint64_t expected_index = 0;
        compressor.compressShards(
            input, /*windows_per_shard=*/5, [&](CompressedShard &&shard) {
                EXPECT_EQ(shard.index, expected_index++);
                stitched.payload.insert(stitched.payload.end(),
                                        shard.payload.begin(),
                                        shard.payload.end());
                stitched.window_sizes.insert(stitched.window_sizes.end(),
                                             shard.window_sizes.begin(),
                                             shard.window_sizes.end());
            });
        EXPECT_EQ(expected_index, 13u); // ceil(65 windows / 5)
        expectIdentical(stitched, compressor.serial().compress(input),
                        "shard stream stitch");
    }
}

TEST(OffloadScheduler, ClosedFormModelMatchesDesReference)
{
    // modelFromRatio is an allocation-free closed form (n*max + min plus
    // the trailing partial shard); the DES (pipelineTiming) stays the
    // reference. Pin equality across transfer sizes that exercise every
    // branch — sub-shard, exact multiples, long trains, partial tails —
    // ratios on both sides of the fetch cap, and staging depths
    // including the degenerate single-buffer pipeline.
    for (const unsigned buffers : {1u, 2u, 3u}) {
        for (const uint64_t shard_bytes : {0ull, 4096ull, 3 * 4096ull}) {
            CdmaConfig config;
            config.transfer.shard_bytes = shard_bytes;
            config.transfer.staging_buffers = buffers;
            config.transfer.timing_mode = TimingMode::Overlapped;
            const CdmaEngine engine(config);
            const OffloadScheduler scheduler(engine);
            const uint64_t shard_raw =
                scheduler.shardWindows() * config.compression.window_bytes;

            for (const double ratio : {1.0, 2.5, 7.3, 12.5, 40.0}) {
                for (const uint64_t raw :
                     {uint64_t{1}, shard_raw / 2, shard_raw,
                      shard_raw + 1, 3 * shard_raw,
                      7 * shard_raw + shard_raw / 3,
                      64 * shard_raw + 4097}) {
                    // The exact shard train the DES would replay.
                    std::vector<ShardTransfer> shards;
                    uint64_t remaining = raw;
                    while (remaining > 0) {
                        const uint64_t r = std::min(remaining, shard_raw);
                        shards.push_back(
                            {r, static_cast<uint64_t>(
                                    static_cast<double>(r) / ratio)});
                        remaining -= r;
                    }
                    const OffloadTiming des =
                        OffloadScheduler::pipelineTiming(
                            shards, config.gpu.comp_bandwidth,
                            config.gpu.pcie_effective_bandwidth, buffers);
                    const OffloadTiming closed =
                        scheduler.modelFromRatio(raw, ratio);

                    EXPECT_EQ(closed.shard_count, des.shard_count)
                        << "raw=" << raw << " ratio=" << ratio
                        << " buffers=" << buffers;
                    EXPECT_NEAR(closed.compress_seconds,
                                des.compress_seconds,
                                1e-9 * des.compress_seconds);
                    EXPECT_NEAR(closed.wire_seconds, des.wire_seconds,
                                1e-9 * std::max(des.wire_seconds, 1e-30));
                    EXPECT_NEAR(closed.overlapped_seconds,
                                des.overlapped_seconds,
                                1e-9 * des.overlapped_seconds)
                        << "raw=" << raw << " ratio=" << ratio
                        << " buffers=" << buffers
                        << " shard_raw=" << shard_raw;
                    EXPECT_NEAR(closed.overlap_fraction,
                                des.overlap_fraction, 1e-9);
                }
            }
        }
    }

    // Zero-byte transfer: both paths report an empty pipeline.
    const CdmaEngine engine = makeEngine(1);
    const OffloadTiming empty =
        OffloadScheduler(engine).modelFromRatio(0, 2.0);
    EXPECT_EQ(empty.shard_count, 0u);
    EXPECT_DOUBLE_EQ(empty.overlapped_seconds, 0.0);
}

TEST(CdmaEngine, OverlappedModeTimesPlansThroughThePipeline)
{
    const CdmaEngine overlapped = makeEngine(2);
    const CdmaEngine free_engine =
        makeEngine(2, 0, TimingMode::CompressionFree);

    const uint64_t raw = 64ull << 20;
    const TransferPlan a = overlapped.planFromRatio("map", raw, 2.5);
    const TransferPlan b = free_engine.planFromRatio("map", raw, 2.5);

    EXPECT_EQ(a.wire_bytes, b.wire_bytes);
    EXPECT_DOUBLE_EQ(a.seconds, a.offload.overlapped_seconds);
    EXPECT_GT(a.offload.shard_count, 1u);
    EXPECT_GT(a.offload.overlap_fraction, 0.0);
    EXPECT_LE(a.offload.overlap_fraction, 1.0);
    // CompressionFree keeps the seed model: no pipeline breakdown.
    EXPECT_EQ(b.offload.shard_count, 0u);
    EXPECT_DOUBLE_EQ(b.offload.overlapped_seconds, 0.0);
    // Overlapped includes the compression fill, so it can only be
    // slower than a model that prices compression at zero — and by at
    // most the compression leg.
    EXPECT_GE(a.seconds, b.seconds);
    EXPECT_LE(a.seconds, b.seconds + a.offload.compress_seconds + 1e-12);

    // The engine's plan must agree with the scheduler's analytic model.
    const OffloadScheduler scheduler(overlapped);
    const OffloadTiming direct = scheduler.modelFromRatio(raw, 2.5);
    EXPECT_DOUBLE_EQ(a.offload.overlapped_seconds,
                     direct.overlapped_seconds);
}

TEST(CdmaEngine, DisabledCompressionBypassesThePipelineModel)
{
    // No cDMA engine in the path means no compression-fetch leg: a
    // disabled-compression engine must keep plain DMA occupancy even in
    // Overlapped mode.
    CdmaConfig config;
    config.compression.enabled = false;
    config.transfer.timing_mode = TimingMode::Overlapped;
    const CdmaEngine engine(config);
    const uint64_t raw = 32ull << 20;
    const TransferPlan plan = engine.planFromRatio("raw", raw, 3.0);
    EXPECT_EQ(plan.wire_bytes, raw);
    EXPECT_DOUBLE_EQ(plan.seconds, engine.transferSeconds(raw, 1.0));
    EXPECT_EQ(plan.offload.shard_count, 0u);
}

TEST(CdmaEngine, OverlappedPlanTransferUsesMeasuredShardSizes)
{
    const CdmaEngine engine = makeEngine(4);
    const auto input = makeInput(0.25, (1 << 20), 47);
    const TransferPlan plan = engine.planTransfer("real", input);
    const CompressedBuffer reference =
        engine.compressor().serial().compress(input);
    EXPECT_EQ(plan.wire_bytes, reference.effectiveBytes());
    EXPECT_DOUBLE_EQ(plan.ratio, reference.effectiveRatio());
    EXPECT_DOUBLE_EQ(plan.seconds, plan.offload.overlapped_seconds);
    EXPECT_GT(plan.offload.overlap_fraction, 0.0);
}

TEST(VdnnMemoryManager, PlannedOffloadsCarryOverlapTiming)
{
    const NetworkDesc net = allNetworkDescs().front();
    const VdnnMemoryManager manager(net, 16);
    const CdmaEngine engine = makeEngine(1);

    std::vector<double> ratios(net.layers.size(), 2.0);
    const auto plans = manager.plannedOffloads(engine, ratios);
    ASSERT_EQ(plans.size(), manager.offloadSchedule().size());
    for (size_t k = 0; k < plans.size(); ++k) {
        EXPECT_EQ(plans[k].raw_bytes, manager.offloadSchedule()[k].bytes);
        EXPECT_GT(plans[k].offload.shard_count, 0u);
        EXPECT_DOUBLE_EQ(plans[k].seconds,
                         plans[k].offload.overlapped_seconds);
    }
    // Row 0 carries the raw image batch: never compressed.
    EXPECT_DOUBLE_EQ(plans[0].ratio, 1.0);

    // The raw-DMA (vDNN baseline) flavour bypasses the pipeline model.
    const auto raw_plans =
        manager.plannedOffloads(engine, {}, /*raw_dma=*/true);
    for (const auto &plan : raw_plans) {
        EXPECT_EQ(plan.wire_bytes, plan.raw_bytes);
        EXPECT_EQ(plan.offload.shard_count, 0u);
    }

    // Prefetches are the offloads reversed.
    const auto prefetches = manager.plannedPrefetches(engine, ratios);
    ASSERT_EQ(prefetches.size(), plans.size());
    EXPECT_EQ(prefetches.front().label, plans.back().label);
    EXPECT_EQ(prefetches.back().label, plans.front().label);

    // Staging buffers show up in the engine-aware footprint.
    const MemoryFootprint fp = manager.footprint(engine);
    const OffloadScheduler scheduler(engine);
    EXPECT_EQ(fp.staging_bytes,
              2 * scheduler.shardWindows() * engine.config().compression.window_bytes);
    EXPECT_EQ(fp.vdnn_peak,
              manager.footprint().vdnn_peak + fp.staging_bytes);
}

} // namespace
} // namespace cdma
