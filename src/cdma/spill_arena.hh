/**
 * @file
 * Compressed spill arena: owns the compressed activation maps that live
 * in host memory between a layer's forward-pass offload and its
 * backward-pass prefetch. The vDNN flow holds one such buffer per
 * offloaded layer for most of the iteration; materializing each as its
 * own heap-backed CompressedBuffer meant a fresh payload allocation and
 * free per layer per iteration. The arena replaces that churn with
 * bump-allocated, size-classed shard slots: shards stream out of the
 * offload pipeline straight into recycled slots, the slots return to
 * their class free list on release (prefetch), and after the first
 * iteration a steady-state training loop allocates no payload memory at
 * all. High-water-mark statistics expose what a real pinned-host-memory
 * reservation for the spill space would have to be.
 */

#ifndef CDMA_CDMA_SPILL_ARENA_HH
#define CDMA_CDMA_SPILL_ARENA_HH

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "compress/parallel.hh"

namespace cdma {

namespace obs {
class TraceRecorder;
} // namespace obs

/** Opaque reference to one spilled (offloaded) buffer in the arena. */
using SpillTicket = uint32_t;

/** Read view of one stored shard (payload lives in arena slots). */
struct SpillShardView {
    std::span<const uint8_t> payload;        ///< compressed bytes
    std::span<const uint32_t> window_sizes;  ///< per-window payload sizes
    uint64_t first_window = 0; ///< absolute index of the first window
    uint64_t raw_bytes = 0;    ///< uncompressed bytes the shard covers
    uint64_t wire_bytes = 0;   ///< store-raw-floored wire bytes
    /** CRC-32C recorded at compress time; the prefetch side verifies
     *  the bytes it is about to expand against this. */
    uint32_t crc32c = 0;
    /** Shard was degraded to raw framing after repeated transfer
     *  faults (payload is uncompressed source bytes). */
    bool raw_framed = false;
    /** Codec that framed the payload; the prefetch side dispatches the
     *  matching decoder per shard (spills can mix codecs when the
     *  adaptive policy switches between offloads). */
    Codec codec = Codec::Zvc;
};

/** Arena occupancy and recycling statistics. */
struct SpillStats {
    uint64_t live_buffers = 0;       ///< tickets currently outstanding
    uint64_t live_payload_bytes = 0; ///< compressed bytes currently held
    uint64_t live_slot_bytes = 0;    ///< slot bytes currently claimed
    /** Peak concurrent payload bytes (the pinned-reservation number). */
    uint64_t high_water_payload_bytes = 0;
    uint64_t high_water_slot_bytes = 0; ///< peak claimed slot bytes
    uint64_t slab_bytes = 0;        ///< total arena backing reservation
    uint64_t slab_allocations = 0;  ///< slabs ever allocated
    uint64_t stored_buffers = 0;    ///< beginSpill() calls
    uint64_t stored_shards = 0;     ///< shards ever appended
    uint64_t reused_slots = 0;      ///< shard stores served from free lists
};

/**
 * Size-classed bump arena for compressed activation shards.
 *
 * Slots come in power-of-two size classes starting at min_slot_bytes;
 * each class bump-allocates slots out of larger slabs and keeps a free
 * list of released slots, so the second iteration's offloads are served
 * entirely from recycled memory. Not thread-safe: the offload/prefetch
 * schedule is serial per engine (shard *compression* is parallel, but
 * the drain stage that appends shards runs on the calling thread, in
 * order).
 */
class SpillArena
{
  public:
    /** Slot floor; shards smaller than this share the smallest class. */
    static constexpr uint64_t kDefaultMinSlotBytes = 4096;

    explicit SpillArena(uint64_t min_slot_bytes = kDefaultMinSlotBytes);

    /**
     * Open a spill for one buffer of @p original_bytes compressed at
     * @p window_bytes; shards are then appended in stream order. Ticket
     * records are recycled, so steady-state reuse allocates nothing.
     */
    SpillTicket beginSpill(uint64_t original_bytes, uint64_t window_bytes);

    /** Append @p shard's payload + framing into an arena slot. */
    void appendShard(SpillTicket ticket, const CompressedShard &shard);

    /**
     * Convenience: spill an already-stitched buffer, cut into shards of
     * @p windows_per_shard windows (the streaming path is
     * OffloadScheduler::offloadInto, which skips the stitched copy).
     */
    SpillTicket store(const CompressedBuffer &buffer,
                      uint64_t windows_per_shard);

    /** Uncompressed size of the spilled buffer. */
    uint64_t originalBytes(SpillTicket ticket) const;

    /** Compression window the buffer was cut with. */
    uint64_t windowBytes(SpillTicket ticket) const;

    /** Store-raw-floored wire bytes over all stored shards. */
    uint64_t wireBytes(SpillTicket ticket) const;

    /** Compressed payload bytes over all stored shards. */
    uint64_t payloadBytes(SpillTicket ticket) const;

    /** Stored shard count. */
    size_t shardCount(SpillTicket ticket) const;

    /** View of stored shard @p index (valid until release()). */
    SpillShardView shard(SpillTicket ticket, size_t index) const;

    /**
     * Stitch the spilled shards back into a standalone CompressedBuffer
     * (copies; tests and interop — the prefetch path decompresses the
     * shard views in place instead).
     */
    CompressedBuffer materialize(SpillTicket ticket) const;

    /** Return the buffer's slots to the free lists; views die with it. */
    void release(SpillTicket ticket);

    /** Occupancy / recycling counters. */
    const SpillStats &stats() const { return stats_; }

  private:
    /** Reference to one slot: size class, slab in class, byte offset. */
    struct SlotRef {
        uint32_t size_class = 0;
        uint32_t slab = 0;
        uint64_t offset = 0;
    };

    struct StoredShard {
        SlotRef slot;
        uint64_t payload_bytes = 0;
        uint64_t raw_bytes = 0;
        uint64_t wire_bytes = 0;
        uint64_t first_window = 0;
        uint64_t window_begin = 0; ///< range into the record's sizes
        uint64_t window_count = 0;
        uint32_t crc32c = 0;       ///< payload CRC from compress time
        bool raw_framed = false;   ///< degraded to raw framing
        Codec codec = Codec::Zvc;  ///< codec that framed the payload
    };

    struct Record {
        bool live = false;
        uint64_t original_bytes = 0;
        uint64_t window_bytes = 0;
        std::vector<uint32_t> window_sizes; ///< all shards, in order
        std::vector<StoredShard> shards;
    };

    /** Slots of one power-of-two size class. */
    struct SizeClass {
        uint64_t slot_bytes = 0;
        uint64_t slots_per_slab = 0;
        uint64_t bump = 0; ///< next unused slot index in the last slab
        std::vector<ByteVec> slabs;
        std::vector<SlotRef> free_list;
    };

    uint32_t classFor(uint64_t bytes) const;
    SlotRef allocateSlot(uint64_t bytes);
    const Record &liveRecord(SpillTicket ticket) const;
    uint8_t *slotData(const SlotRef &ref);
    const uint8_t *slotData(const SlotRef &ref) const;

    uint64_t min_slot_bytes_;
    std::vector<SizeClass> classes_;
    std::vector<Record> records_;
    std::vector<SpillTicket> free_tickets_;
    SpillStats stats_;
};

/** Cross-tier traffic counters of a TieredSpillArena. */
struct TieredSpillStats {
    uint64_t host_capacity_bytes = 0; ///< configured host-tier budget
    uint64_t evictions = 0;           ///< spills pushed down to backing
    uint64_t promotions = 0;          ///< spills read back up to host
    /** Payload bytes written down the host -> SSD edge by evictions. */
    uint64_t ssd_write_bytes = 0;
    /** Payload bytes read back up the SSD -> host edge by promotions. */
    uint64_t ssd_read_bytes = 0;
};

/**
 * Two-tier spill store: a host SpillArena with a payload-byte capacity,
 * backed by an (NVMe-modeled) second arena below it — the storage-side
 * mirror of the topology's host-DRAM -> SSD edge. Spills stream into
 * the host tier exactly like a plain SpillArena (beginSpill /
 * appendShard); seal() marks a spill complete, and whenever the host
 * tier's live payload exceeds the capacity, the oldest sealed spills
 * are evicted to the backing tier FIFO — the same order a training
 * loop's backward pass wants them LAST (forward-pass spill order), so
 * FIFO eviction pushes down the buffers whose prefetch is furthest
 * away. Tickets are stable across tiers; promote() (or the prefetch
 * flow, which calls it) reads an evicted spill back before expansion.
 * Not thread-safe, like SpillArena.
 */
class TieredSpillArena
{
  public:
    /** @p host_capacity_bytes 0 = unlimited (degenerates to one tier). */
    explicit TieredSpillArena(
        uint64_t host_capacity_bytes,
        uint64_t min_slot_bytes = SpillArena::kDefaultMinSlotBytes);

    /** See SpillArena::beginSpill; the spill builds in the host tier. */
    SpillTicket beginSpill(uint64_t original_bytes, uint64_t window_bytes);

    /** See SpillArena::appendShard. May evict other sealed spills. */
    void appendShard(SpillTicket ticket, const CompressedShard &shard);

    /**
     * Mark the spill complete: it becomes eligible for FIFO eviction,
     * and the host tier is brought back under capacity.
     */
    void seal(SpillTicket ticket);

    /** The spill currently lives on the backing (SSD) tier. */
    bool onBackingTier(SpillTicket ticket) const;

    /**
     * Ensure the spill is host-resident, reading it back from the
     * backing tier if evicted (counted in tierStats). Returns the
     * payload bytes that crossed the SSD -> host edge (0 if already
     * resident). Promotion re-enters the FIFO eviction order.
     */
    uint64_t promote(SpillTicket ticket);

    // Read interface, mirroring SpillArena (valid for either tier).
    uint64_t originalBytes(SpillTicket ticket) const;
    uint64_t windowBytes(SpillTicket ticket) const;
    uint64_t wireBytes(SpillTicket ticket) const;
    uint64_t payloadBytes(SpillTicket ticket) const;
    size_t shardCount(SpillTicket ticket) const;
    SpillShardView shard(SpillTicket ticket, size_t index) const;
    CompressedBuffer materialize(SpillTicket ticket) const;

    /** Release the spill's slots on whichever tier holds them. */
    void release(SpillTicket ticket);

    const SpillArena &hostArena() const { return host_; }
    const SpillArena &backingArena() const { return backing_; }
    const TieredSpillStats &tierStats() const { return tier_stats_; }

    /**
     * Attach a trace recorder: evictions and promotions emit instants
     * on the ("arena", "tier") track, and the host tier's live payload
     * bytes feed an "arena host occupancy" counter track. The arena has
     * no DES timeline, so events ride the recorder's monotonic
     * pseudo-clock (TraceRecorder::tick) — attach only to recorders
     * that carry no real DES timelines.
     */
    void setTrace(obs::TraceRecorder *trace);

  private:
    struct Slot {
        bool live = false;
        bool sealed = false;
        bool backing = false;   ///< which tier holds the payload
        SpillTicket inner = 0;  ///< ticket inside that tier's arena
    };

    const Slot &liveSlot(SpillTicket ticket) const;
    const SpillArena &tierOf(const Slot &slot) const
    {
        return slot.backing ? backing_ : host_;
    }
    /** Evict sealed spills FIFO until the host tier fits the budget.
     *  @p pinned is never evicted in this pass (the spill a promotion
     *  just read back — evicting it again would defeat the readback). */
    void enforceCapacity(SpillTicket pinned = kNoPin);

    static constexpr SpillTicket kNoPin = ~SpillTicket{0};

    SpillArena host_;
    SpillArena backing_;
    uint64_t host_capacity_bytes_;
    std::vector<Slot> slots_;
    std::vector<SpillTicket> free_slots_;
    /** Sealed host-resident spills, oldest first (lazily validated). */
    std::deque<SpillTicket> eviction_fifo_;
    TieredSpillStats tier_stats_;
    obs::TraceRecorder *trace_ = nullptr;
    uint32_t tier_track_ = 0;      ///< ("arena", "tier") instants
    uint32_t occupancy_track_ = 0; ///< host live-payload counter
};

} // namespace cdma

#endif // CDMA_CDMA_SPILL_ARENA_HH
