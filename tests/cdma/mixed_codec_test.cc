/**
 * @file
 * Mixed-codec shard trains: under the adaptive policy, consecutive
 * offloads into one spill arena may each use a different codec, so the
 * prefetch side must dispatch the decoder per stored shard's codec tag.
 * These tests pin byte-identical restoration of interleaved
 * raw/RLE/ZVC/DEFLATE spills across lane counts and every compiled
 * kernel backend, and the end-to-end adaptive engine path (the policy
 * picking different codecs for dense and sparse maps feeding the same
 * arena).
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "cdma/transfer_engine.hh"
#include "common/rng.hh"
#include "compress/kernels/kernels.hh"
#include "compress/parallel.hh"
#include "compress/policy.hh"

namespace cdma {
namespace {

/** ReLU-like fp32 words at the given density. */
std::vector<uint8_t>
makeInput(double density, size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> input(bytes, 0);
    const size_t words = bytes / 4;
    for (size_t i = 0; i < words; ++i) {
        if (density > 0.0 && rng.bernoulli(density)) {
            const float value =
                1.0f + static_cast<float>(std::abs(rng.normal()));
            std::memcpy(input.data() + i * 4, &value, 4);
        }
    }
    for (size_t i = words * 4; i < bytes; ++i)
        input[i] = static_cast<uint8_t>(1 + rng.uniformInt(255));
    return input;
}

/**
 * An adaptive-mode engine over @p kernels with @p lanes lanes: the
 * per-codec compressor bank only exists under CodecMode::Adaptive, so
 * explicit codec overrides are honored there (a Fixed engine routes
 * every request to its one configured compressor).
 */
CdmaConfig
adaptiveConfig(CodecPolicyEngine &policy, unsigned lanes,
               const KernelOps *kernels = nullptr)
{
    CdmaConfig config;
    config.compression.lanes = lanes;
    config.compression.kernels = kernels;
    config.compression.mode = CodecMode::Adaptive;
    config.compression.policy = &policy;
    config.transfer.timing_mode = TimingMode::Overlapped;
    return config;
}

TEST(MixedCodec, ShardTrainsRestoreAcrossLanesAndBackends)
{
    // One arena per (backend, lanes) pair receives four maps, each
    // offloaded with a different codec override; every map must come
    // back byte-identical on the tag-dispatched decode path.
    CodecPolicyEngine policy;
    for (const KernelOps *kernels : supportedKernels()) {
        for (const unsigned lanes : {1u, 2u, 8u}) {
            const CdmaEngine engine(
                adaptiveConfig(policy, lanes, kernels));
            const TransferEngine transfers(engine);
            SpillArena arena;

            const Codec order[] = {Codec::Zvc, Codec::Raw, Codec::Rle,
                                   Codec::Zlib};
            std::vector<std::vector<uint8_t>> originals;
            std::vector<SpillTicket> tickets;
            for (size_t i = 0; i < std::size(order); ++i) {
                originals.push_back(makeInput(
                    0.15 + 0.2 * static_cast<double>(i),
                    (1 << 17) + 41 * i, 300 + i));
                const StatusOr<SpilledOffload> spilled =
                    transfers.offloadInto(originals.back(), arena,
                                          order[i]);
                ASSERT_TRUE(spilled.ok())
                    << kernels->name << " lanes " << lanes << " codec "
                    << codecName(order[i]);
                tickets.push_back(spilled->ticket);
            }
            // Restore in reverse (the backward pass) and verify each
            // shard decoded with the codec it was stored under.
            for (size_t i = tickets.size(); i-- > 0;) {
                const StatusOr<PrefetchResult> restored =
                    transfers.prefetch(arena, tickets[i]);
                ASSERT_TRUE(restored.ok())
                    << kernels->name << " lanes " << lanes << " codec "
                    << codecName(order[i]);
                EXPECT_EQ(restored->data, originals[i])
                    << kernels->name << " lanes " << lanes << " codec "
                    << codecName(order[i]);
                arena.release(tickets[i]);
            }
        }
    }
}

TEST(MixedCodec, OffloadOverrideTagsTheBuffer)
{
    CodecPolicyEngine policy;
    const CdmaEngine engine(adaptiveConfig(policy, 2));
    const TransferEngine transfers(engine);
    const auto input = makeInput(0.4, 1 << 16, 7);
    for (const Codec codec : kAllCodecs) {
        const OffloadResult result = transfers.offload(input, codec);
        EXPECT_EQ(result.buffer.codec, codec);
        const StatusOr<PrefetchResult> restored =
            transfers.prefetch(result.buffer);
        ASSERT_TRUE(restored.ok()) << codecName(codec);
        EXPECT_EQ(restored->data, input) << codecName(codec);
    }
}

TEST(MixedCodec, FixedEngineRoutesOverridesToItsOneCompressor)
{
    // Pin the fallback contract: without an adaptive bank the override
    // resolves to the engine's configured compressor, and the buffer's
    // tag says what actually ran — never the ignored request.
    CdmaConfig config;
    config.compression.lanes = 2;
    config.transfer.timing_mode = TimingMode::Overlapped;
    const CdmaEngine engine(config);
    const TransferEngine transfers(engine);
    const auto input = makeInput(0.4, 1 << 16, 9);
    const OffloadResult result = transfers.offload(input, Codec::Rle);
    EXPECT_EQ(result.buffer.codec, Codec::Zvc);
    const StatusOr<PrefetchResult> restored =
        transfers.prefetch(result.buffer);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored->data, input);
}

TEST(MixedCodec, AdaptiveEngineRoundTripsWhatThePolicyPicks)
{
    // End to end: an adaptive engine whose policy prices a contended
    // wire picks raw for the dense map and ZVC for the sparse one; both
    // land in one arena and restore byte-identically.
    PolicyConfig policy_config;
    policy_config.wire_bandwidth = 6.4e9;
    CodecPolicyEngine policy(policy_config);
    CdmaConfig config;
    config.compression.lanes = 2;
    config.compression.mode = CodecMode::Adaptive;
    config.compression.policy = &policy;
    config.transfer.timing_mode = TimingMode::Overlapped;
    const CdmaEngine engine(config);
    const TransferEngine transfers(engine);

    const auto dense = makeInput(1.0, 1 << 18, 21);
    const auto sparse = makeInput(0.2, 1 << 18, 22);
    const TransferPlan dense_plan = engine.planTransfer("dense", dense);
    const TransferPlan sparse_plan =
        engine.planTransfer("sparse", sparse);
    EXPECT_EQ(dense_plan.codec, Codec::Raw);
    EXPECT_EQ(sparse_plan.codec, Codec::Zvc);
    EXPECT_GT(dense_plan.policy_predicted_seconds, 0.0);

    SpillArena arena;
    const StatusOr<SpilledOffload> dense_spill =
        transfers.offloadInto(dense, arena, dense_plan.codec);
    const StatusOr<SpilledOffload> sparse_spill =
        transfers.offloadInto(sparse, arena, sparse_plan.codec);
    ASSERT_TRUE(dense_spill.ok());
    ASSERT_TRUE(sparse_spill.ok());
    const StatusOr<PrefetchResult> dense_back =
        transfers.prefetch(arena, dense_spill->ticket);
    const StatusOr<PrefetchResult> sparse_back =
        transfers.prefetch(arena, sparse_spill->ticket);
    ASSERT_TRUE(dense_back.ok());
    ASSERT_TRUE(sparse_back.ok());
    EXPECT_EQ(dense_back->data, dense);
    EXPECT_EQ(sparse_back->data, sparse);
}

} // namespace
} // namespace cdma
