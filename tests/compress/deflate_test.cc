/** @file Unit tests for the DEFLATE-style compressor. */

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "compress/deflate.hh"

namespace cdma {
namespace {

TEST(Deflate, EmptyInput)
{
    DeflateCompressor zl;
    const auto result = zl.compress({});
    EXPECT_EQ(result.compressedBytes(), 0u);
    EXPECT_TRUE(zl.decompress(result).value().empty());
}

TEST(Deflate, ShortTextRoundTrip)
{
    const std::string text = "the quick brown fox jumps over the lazy dog";
    std::vector<uint8_t> input(text.begin(), text.end());
    DeflateCompressor zl;
    EXPECT_EQ(zl.decompress(zl.compress(input)).value(), input);
}

TEST(Deflate, HighlyRepetitiveCompressesHard)
{
    const std::vector<uint8_t> input(64 * 1024, 0);
    DeflateCompressor zl(64 * 1024);
    const auto result = zl.compress(input);
    EXPECT_EQ(zl.decompress(result).value(), input);
    // Zero pages should approach the LZ limit: > 100x.
    EXPECT_GT(result.effectiveRatio(), 100.0);
}

TEST(Deflate, RandomBytesDoNotRoundTripLossy)
{
    Rng rng(81);
    std::vector<uint8_t> input(50000);
    for (auto &b : input)
        b = static_cast<uint8_t>(rng.uniformInt(256));
    DeflateCompressor zl;
    EXPECT_EQ(zl.decompress(zl.compress(input)).value(), input);
}

TEST(Deflate, IncompressibleDataFallsBackToRawAccounting)
{
    Rng rng(82);
    std::vector<uint8_t> input(8192);
    for (auto &b : input)
        b = static_cast<uint8_t>(rng.uniformInt(256));
    DeflateCompressor zl;
    const auto result = zl.compress(input);
    EXPECT_GE(result.effectiveRatio(), 0.98);
    EXPECT_LE(result.effectiveBytes(), input.size());
}

TEST(Deflate, BeatsZvcOnTextLikeData)
{
    // zlib exploits value redundancy that ZVC cannot; on byte-repetitive
    // non-zero data, DEFLATE should clearly win.
    std::string pattern;
    for (int i = 0; i < 3000; ++i)
        pattern += "activation";
    std::vector<uint8_t> input(pattern.begin(), pattern.end());
    DeflateCompressor zl;
    EXPECT_GT(zl.measureRatio(input), 5.0);
}

TEST(Deflate, SparseFloatsLandNearZvcRegime)
{
    // On 70% zeros with high-entropy fp32 mantissas, zlib matches zero
    // runs cheaply but pays ~8 bits per literal mantissa byte, landing in
    // the same regime as ZVC (the paper's Figure 11 shows ZV and ZL within
    // ~10% of each other on most networks).
    Rng rng(83);
    std::vector<float> words(1 << 15);
    for (auto &w : words)
        w = rng.bernoulli(0.3) ? 1.0f + static_cast<float>(rng.uniform())
                               : 0.0f;
    std::vector<uint8_t> input(words.size() * 4);
    std::memcpy(input.data(), words.data(), input.size());
    DeflateCompressor zl;
    const double zvc_bound = 1.0 / (0.3 + 1.0 / 32.0);
    const double ratio = zl.measureRatio(input);
    EXPECT_GT(ratio, zvc_bound * 0.75);
    EXPECT_LT(ratio, zvc_bound * 1.5);
}

TEST(Deflate, DecodeScratchReuseStaysByteIdentical)
{
    // The decode path rebuilds its Huffman decoders in a per-thread
    // scratch; successive windows with very different code-length
    // tables (dense text, sparse floats, raw-ish bytes) must decode
    // byte-identically on one thread, where the scratch is reused and
    // rebuilt per window rather than freshly allocated.
    Rng rng(85);
    std::vector<std::vector<uint8_t>> inputs;
    std::string pattern;
    for (int i = 0; i < 2000; ++i)
        pattern += "activation";
    inputs.emplace_back(pattern.begin(), pattern.end());
    std::vector<uint8_t> sparse(60000, 0);
    for (auto &b : sparse) {
        if (rng.bernoulli(0.3))
            b = static_cast<uint8_t>(1 + rng.uniformInt(255));
    }
    inputs.push_back(std::move(sparse));
    std::vector<uint8_t> noisy(30000);
    for (auto &b : noisy)
        b = static_cast<uint8_t>(rng.uniformInt(256));
    inputs.push_back(std::move(noisy));

    DeflateCompressor zl;
    // Two passes over alternating inputs: every decode after the first
    // runs on a warm scratch whose previous tables came from a
    // different alphabet shape.
    for (int pass = 0; pass < 2; ++pass) {
        for (const auto &input : inputs) {
            const auto compressed = zl.compress(input);
            EXPECT_EQ(zl.decompress(compressed).value(), input);
        }
    }
}

class DeflateWindowSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(DeflateWindowSweep, RoundTripAcrossWindowSizes)
{
    Rng rng(84);
    std::vector<uint8_t> input(100000);
    for (auto &b : input) {
        b = rng.bernoulli(0.6) ? 0
                               : static_cast<uint8_t>(rng.uniformInt(16));
    }
    DeflateCompressor zl(GetParam());
    const auto result = zl.compress(input);
    EXPECT_EQ(zl.decompress(result).value(), input);
    EXPECT_EQ(result.window_sizes.size(),
              (input.size() + GetParam() - 1) / GetParam());
}

INSTANTIATE_TEST_SUITE_P(Windows, DeflateWindowSweep,
                         ::testing::Values(512, 4096, 16384, 65536));

} // namespace
} // namespace cdma
