#include "perf/step_sim.hh"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/logging.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/channel.hh"
#include "sim/event_queue.hh"

namespace cdma {

std::string
stepModeName(StepMode mode)
{
    switch (mode) {
      case StepMode::Baseline: return "baseline";
      case StepMode::Vdnn:     return "vDNN";
      case StepMode::Cdma:     return "cDMA";
      case StepMode::Oracle:   return "oracle";
    }
    panic("unreachable step mode %d", static_cast<int>(mode));
}

StepSimulator::StepSimulator(const VdnnMemoryManager &manager,
                             const CdmaEngine &engine, const PerfModel &perf,
                             CudnnVersion version)
    : manager_(manager), engine_(engine), perf_(perf), version_(version)
{
}

void
StepSimulator::setTrace(obs::TraceRecorder *trace, std::string process)
{
    trace_ = trace;
    trace_process_ = std::move(process);
}

StepResult
StepSimulator::run(StepMode mode,
                   const std::vector<double> &output_ratios) const
{
    const size_t L = manager_.network().layers.size();
    if (mode == StepMode::Cdma) {
        CDMA_ASSERT(output_ratios.size() == L,
                    "cDMA mode needs one compression ratio per layer "
                    "(%zu given, %zu layers)", output_ratios.size(), L);
    }
    return runWithPlans(mode, manager_.plannedOffloads(
        engine_, mode == StepMode::Cdma ? output_ratios
                                        : std::vector<double>{},
        /*raw_dma=*/mode != StepMode::Cdma));
}

StepResult
StepSimulator::runAdaptive(
    const std::vector<double> &output_densities) const
{
    // plannedAdaptiveOffloads validates the density vector and asserts
    // the engine runs CodecMode::Adaptive with a configured policy.
    return runWithPlans(StepMode::Cdma, manager_.plannedAdaptiveOffloads(
        engine_, output_densities));
}

StepResult
StepSimulator::runWithPlans(StepMode mode,
                            const std::vector<TransferPlan> &plans) const
{
    const NetworkDesc &network = manager_.network();
    const auto &offloads = manager_.offloadSchedule();
    const size_t L = network.layers.size();
    CDMA_ASSERT(offloads.size() <= L, "offload schedule size mismatch");
    CDMA_ASSERT(plans.size() == offloads.size(),
                "need one transfer plan per offload-schedule entry "
                "(%zu given, %zu entries)", plans.size(), offloads.size());

    StepResult result;
    result.layers.resize(L);

    // Compute times per layer.
    std::vector<double> fwd(L), bwd(L);
    for (size_t i = 0; i < L; ++i) {
        const LayerTiming t = perf_.layerTiming(
            network.layers[i], manager_.batch(), version_);
        fwd[i] = t.forward_seconds;
        bwd[i] = t.backward_seconds;
        result.layers[i].label = network.layers[i].name;
        result.layers[i].forward_seconds = t.forward_seconds;
        result.layers[i].backward_seconds = t.backward_seconds;
        result.compute_seconds += t.total();
    }

    // Transfer plans come from the memory manager, which aligns the
    // per-row output ratios with its own offload schedule (sparse under
    // OffloadPolicy::ConvOnly) and times each transfer through the
    // engine: CompressionFree folds the Section VI COMP_BW inflation
    // into the occupancy; Overlapped models the double-buffered
    // compress/transfer pipeline, so plan.seconds is the makespan the
    // offload engine holds the layer's buffer. The per-layer occupancy
    // of BOTH directions is derived from the manager's unified
    // direction-tagged schedule, so the two legs can never come from
    // inconsistent transfer lists.
    std::vector<double> xfer(L, 0.0);
    std::vector<double> pre_xfer(L, 0.0);
    std::vector<bool> has_xfer(L, false);
    // Raw bytes of each layer's offloaded map — what a landed lookahead
    // prefetch occupies against the boundary capacity budget.
    std::vector<uint64_t> map_bytes(L, 0);
    for (const TransferOp &op : offloads)
        map_bytes[op.layer_index] = op.bytes;
    const bool transfers =
        mode == StepMode::Vdnn || mode == StepMode::Cdma;
    std::vector<size_t> plan_of_layer(L, plans.size());
    for (size_t k = 0; k < offloads.size(); ++k) {
        const size_t i = offloads[k].layer_index;
        CDMA_ASSERT(i < L, "offload references row %zu of %zu", i, L);
        plan_of_layer[i] = k;
    }
    for (const DirectedTransferOp &entry : manager_.duplexSchedule()) {
        const size_t i = entry.op.layer_index;
        CDMA_ASSERT(i < L && plan_of_layer[i] < plans.size(),
                    "duplex schedule references row %zu of %zu", i, L);
        const TransferPlan &plan = plans[plan_of_layer[i]];
        if (entry.direction == TransferDirection::Offload) {
            xfer[i] = plan.seconds;
            has_xfer[i] = true;
            result.raw_transfer_bytes += plan.raw_bytes;
            result.wire_transfer_bytes += plan.wire_bytes;
            result.layers[i].offload_seconds = plan.seconds;
            result.layers[i].offload = plan.offload;
            result.layers[i].codec = plan.codec;
            result.layers[i].policy_predicted_seconds =
                plan.policy_predicted_seconds;
            // plan.integrity already covers the full round trip, so
            // fold it in once (on the offload entry), not per leg.
            result.integrity.accumulate(plan.integrity);
        } else {
            // The backward direction waits on the mirrored pipeline
            // (wire in, then decompress) when the engine modeled it;
            // the seed model prices both directions identically.
            pre_xfer[i] = plan.prefetch.shard_count > 0
                ? plan.prefetch.overlapped_seconds
                : plan.seconds;
            result.layers[i].prefetch_seconds = pre_xfer[i];
            result.layers[i].prefetch = plan.prefetch;
        }
    }

    if (mode == StepMode::Baseline || mode == StepMode::Oracle) {
        // No stalls: iteration time is pure compute. (Baseline is not
        // memory-scalable; oracle is vDNN with infinitely fast PCIe.)
        result.forward_seconds = 0.0;
        for (size_t i = 0; i < L; ++i)
            result.forward_seconds += fwd[i];
        result.backward_seconds = result.compute_seconds -
            result.forward_seconds;
        result.total_seconds = result.compute_seconds;
        result.stall_seconds = 0.0;
        result.pcie_utilization = 0.0;
        return result;
    }
    CDMA_ASSERT(transfers, "unexpected mode");

    // ---- Discrete-event simulation of the iteration ----
    // Both directions ride one duplex PCIe link: offloads on the Out
    // sub-channel, prefetches on In. Under DuplexMode::Full the
    // sub-channels are independent (the historical behavior); under
    // Half they share the link and the configured arbiter decides which
    // pending direction's transfer crosses next — the contention stall
    // each transfer pays is captured from the channel's service record.
    using Direction = DuplexChannel::Direction;
    EventQueue queue;
    DuplexChannel pcie(queue, "pcie",
                       engine_.config().gpu.pcie_effective_bandwidth,
                       engine_.config().transfer.duplex_mode,
                       engine_.config().transfer.link_arbiter);
    // The channel services "seconds" directly: submit bytes scaled so
    // bytes/bandwidth equals the planned occupancy (offload and
    // prefetch directions carry their own modeled makespans).
    auto submitTransfer = [&](Direction direction, double seconds,
                              auto on_done) {
        const auto effective_bytes = static_cast<uint64_t>(
            seconds * engine_.config().gpu.pcie_effective_bandwidth);
        pcie.submit(direction, effective_bytes, on_done);
    };

    std::vector<double> fwd_end(L, -1.0), off_end(L, -1.0);
    std::vector<double> bwd_end(L, -1.0), pre_end(L, -1.0);
    // Service records of each layer's wire crossings, kept so the trace
    // can be emitted in one deterministic pass after the queue drains.
    std::vector<DuplexChannel::Grant> off_grant(L), pre_grant(L);
    std::vector<bool> fwd_started(L, false), bwd_started(L, false);
    std::vector<bool> pre_requested(L, false), pre_submitted(L, false);
    double forward_done_time = 0.0;

    std::function<void(size_t)> tryStartBwd;

    // A layer's prefetch may not enter the wire before its own offload
    // has drained (the compressed bytes must be host-resident first);
    // requests that arrive earlier are parked and released by the
    // offload's completion. This replaces the old global barrier — the
    // backward phase no longer waits for every offload, so the tail
    // offloads race the head prefetches on the duplex link.
    auto submitPrefetch = [&](size_t i) {
        if (pre_submitted[i])
            return;
        pre_submitted[i] = true;
        submitTransfer(Direction::In, pre_xfer[i],
                       [&, i](const DuplexChannel::Grant &grant) {
                           result.layers[i].prefetch_contention =
                               grant.opposing_wait;
                           pre_grant[i] = grant;
                           pre_end[i] = queue.now();
                           tryStartBwd(i);
                       });
    };
    auto requestPrefetch = [&](size_t i) {
        if (pre_requested[i])
            return;
        pre_requested[i] = true;
        if (off_end[i] >= 0.0)
            submitPrefetch(i);
    };

    // Forward: layer i starts when layer i-1's compute AND the offload of
    // layer i-1's input (when scheduled) are both complete (Figure 2b
    // semantics).
    std::function<void(size_t)> tryStartFwd = [&](size_t i) {
        if (fwd_started[i])
            return;
        if (i > 0 && fwd_end[i - 1] < 0.0)
            return;
        if (i > 0 && has_xfer[i - 1] && off_end[i - 1] < 0.0)
            return;
        fwd_started[i] = true;
        if (i > 0 && has_xfer[i - 1]) {
            result.layers[i - 1].forward_stall = std::max(
                0.0, off_end[i - 1] - fwd_end[i - 1]);
        }
        // Offload of this layer's input streams alongside its compute.
        if (has_xfer[i]) {
            submitTransfer(Direction::Out, xfer[i],
                           [&, i](const DuplexChannel::Grant &grant) {
                               result.layers[i].offload_contention =
                                   grant.opposing_wait;
                               off_grant[i] = grant;
                               off_end[i] = queue.now();
                               if (i + 1 < L)
                                   tryStartFwd(i + 1);
                               if (pre_requested[i])
                                   submitPrefetch(i);
                           });
        }
        queue.scheduleAfter(fwd[i], [&, i]() {
            fwd_end[i] = queue.now();
            if (i + 1 < L) {
                tryStartFwd(i + 1);
            } else {
                // Forward compute chain complete: launch the backward
                // phase now. Any offloads still draining share the link
                // with the prefetches from here on.
                forward_done_time = queue.now();
                if (!has_xfer[L - 1]) {
                    tryStartBwd(L - 1);
                    return;
                }
                requestPrefetch(L - 1);
                if (pre_submitted[L - 1])
                    return;
                // The head prefetch is parked behind its own offload,
                // which is still draining out — this is the Figure 2(b)
                // boundary race. Rather than leave the inbound
                // direction idle, bring back maps that are already
                // host-resident, racing the tail offload on the link.
                // How far ahead depends on where the landed maps live:
                // with a prefetch_lookahead_bytes budget configured,
                // issue as many backward-order prefetches as fit in it
                // — the freed vDNN working set is the natural budget
                // (every map freed during forward can land back early);
                // without one (budget 0, capacity not modeled), fall
                // back to the fixed staging_buffers - 1 lookahead the
                // double-buffered prefetch pipeline provisions. Like
                // the real FIFO DMA queue this models, an issued
                // lookahead transfer cannot be overtaken: when the
                // parked head releases early, it queues behind the
                // lookahead and the backward start can pay up to one
                // transfer of head-of-line delay — the engine trades
                // that bounded risk for never idling the link.
                const uint64_t budget =
                    engine_.config().transfer.prefetch_lookahead_bytes;
                const unsigned buffers =
                    engine_.config().transfer.staging_buffers;
                unsigned lookahead = buffers > 0 ? buffers - 1 : 0;
                uint64_t landed = 0;
                for (size_t j = L - 1; j-- > 0;) {
                    if (!has_xfer[j])
                        continue;
                    if (budget > 0) {
                        if (landed + map_bytes[j] > budget)
                            break;
                        landed += map_bytes[j];
                    } else {
                        if (lookahead == 0)
                            break;
                        --lookahead;
                    }
                    requestPrefetch(j);
                }
            }
        });
    };

    // Backward: layer i starts when layer i+1's backward AND the prefetch
    // of layer i's input (when it was offloaded) are complete; the
    // prefetch of layer i-1's input is launched as layer i's backward
    // begins.
    tryStartBwd = [&](size_t i) {
        if (bwd_started[i])
            return;
        if (i + 1 < L && bwd_end[i + 1] < 0.0)
            return;
        if (has_xfer[i] && pre_end[i] < 0.0)
            return;
        bwd_started[i] = true;
        const double dep = i + 1 < L ? bwd_end[i + 1] : forward_done_time;
        if (has_xfer[i]) {
            result.layers[i].backward_stall =
                std::max(0.0, pre_end[i] - dep);
        }
        if (i > 0 && has_xfer[i - 1])
            requestPrefetch(i - 1);
        queue.scheduleAfter(bwd[i], [&, i]() {
            bwd_end[i] = queue.now();
            if (i > 0)
                tryStartBwd(i - 1);
        });
    };

    tryStartFwd(0);
    queue.run();

    if (trace_ != nullptr) {
        // One deterministic pass over the drained schedule: compute
        // spans per direction, wire spans per link direction (the one
        // duplex channel serves each direction FIFO, so spans on a
        // track never overlap).
        const uint32_t fwd_track =
            trace_->track(trace_process_, "compute.forward");
        const uint32_t bwd_track =
            trace_->track(trace_process_, "compute.backward");
        const uint32_t out_track =
            trace_->track(trace_process_, "pcie.out");
        const uint32_t in_track = trace_->track(trace_process_, "pcie.in");
        for (size_t i = 0; i < L; ++i) {
            if (fwd_end[i] >= 0.0) {
                trace_->span(fwd_track, result.layers[i].label,
                             fwd_end[i] - fwd[i], fwd_end[i],
                             obs::TraceArgs{{"layer", i}});
            }
            if (bwd_end[i] >= 0.0) {
                trace_->span(bwd_track, result.layers[i].label,
                             bwd_end[i] - bwd[i], bwd_end[i],
                             obs::TraceArgs{{"layer", i}});
            }
            if (has_xfer[i] && off_end[i] >= 0.0) {
                trace_->span(out_track, "offload", off_grant[i].start,
                             off_grant[i].end,
                             obs::TraceArgs{
                                 {"layer", i},
                                 {"label", result.layers[i].label},
                                 {"opposing_wait_us",
                                  off_grant[i].opposing_wait * 1e6},
                             });
            }
            if (has_xfer[i] && pre_end[i] >= 0.0) {
                trace_->span(in_track, "prefetch", pre_grant[i].start,
                             pre_grant[i].end,
                             obs::TraceArgs{
                                 {"layer", i},
                                 {"label", result.layers[i].label},
                                 {"opposing_wait_us",
                                  pre_grant[i].opposing_wait * 1e6},
                             });
            }
        }
        trace_->instant(fwd_track, "forward done", forward_done_time);
    }

    result.forward_seconds = forward_done_time;
    result.total_seconds = bwd_end[0];
    result.backward_seconds = result.total_seconds -
        result.forward_seconds;
    result.stall_seconds = result.total_seconds - result.compute_seconds;
    // Occupancy union, not per-direction sum: under full duplex both
    // sub-channels can serve simultaneously, and a summed numerator
    // would let utilization exceed 1.
    result.pcie_utilization =
        pcie.occupiedSeconds() / result.total_seconds;
    result.offload_contention_seconds =
        pcie.contentionSeconds(Direction::Out);
    result.prefetch_contention_seconds =
        pcie.contentionSeconds(Direction::In);
    // Close the policy's accuracy loop: the decision predicted
    // compress + contended wire, so the comparable actual is the
    // pipeline makespan plus whatever contention wait the duplex link
    // actually charged this layer's offload.
    obs::MetricsRegistry *policy_metrics = engine_.config().obs.metrics;
    for (size_t i = 0; i < L; ++i) {
        LayerStepStats &layer = result.layers[i];
        if (layer.policy_predicted_seconds <= 0.0)
            continue;
        layer.policy_actual_seconds =
            layer.offload_seconds + layer.offload_contention;
        if (policy_metrics != nullptr &&
            layer.policy_actual_seconds > 0.0) {
            policy_metrics->histogram("policy.predicted_error")
                .record(std::abs(layer.policy_predicted_seconds -
                                 layer.policy_actual_seconds) /
                        layer.policy_actual_seconds);
        }
    }
    return result;
}

} // namespace cdma
