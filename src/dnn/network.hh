/**
 * @file
 * Sequential network container. Holds the layer pipeline, runs forward and
 * backward propagation layer-by-layer (the execution model vDNN's offload
 * scheduling assumes, Figure 1/2), retains every layer's output activation
 * map between the passes, and exposes per-layer activation density records
 * in the form the paper reports them (Figures 4-7): one record per
 * conv/pool/fc layer, measured after any in-place ReLU/LRN/dropout that
 * follows it.
 */

#ifndef CDMA_DNN_NETWORK_HH
#define CDMA_DNN_NETWORK_HH

#include <string>
#include <vector>

#include "dnn/layer.hh"

namespace cdma {

/** Density measurement for one paper-visible layer. */
struct ActivationRecord {
    std::string label;   ///< producing layer ("conv1", "pool0", "fc2")
    std::string type;    ///< producing layer type
    Shape4D shape;       ///< activation map shape
    double density = 1.0; ///< fraction of non-zero activations
    size_t output_index = 0; ///< index into outputs() of the measured map
    bool relu_sparse = false; ///< fed through a ReLU (can be sparse)
};

/** Sequential layer pipeline with full activation retention. */
class Network
{
  public:
    Network() = default;

    /** Append a layer; returns a reference for further configuration. */
    Layer &add(LayerPtr layer);

    /** Number of layers. */
    size_t size() const { return layers_.size(); }

    /** Layer at @p index. */
    Layer &layer(size_t index) { return *layers_.at(index); }
    const Layer &layer(size_t index) const { return *layers_.at(index); }

    /** Shape of the final output for the given input shape. */
    Shape4D outputShape(const Shape4D &input) const;

    /**
     * Forward propagation through every layer, retaining each layer's
     * output (outputs()[i] is layer i's output activation map).
     */
    const Tensor4D &forward(const Tensor4D &input);

    /** Backward propagation from the loss gradient. */
    void backward(const Tensor4D &loss_grad);

    /** Apply SGD to every parameter blob, then clear gradients. */
    void step(const SgdConfig &config);

    /** Clear all parameter gradients. */
    void zeroGrads();

    /** Toggle training/inference mode on every layer. */
    void setTraining(bool training);

    /** Per-layer outputs from the last forward() call. */
    const std::vector<Tensor4D> &outputs() const { return outputs_; }

    /**
     * Paper-visible activation records from the last forward() call: one
     * per conv/pool/fc layer, measured after the in-place layers
     * (relu/lrn/dropout) that follow it, exactly as Caffe's in-place
     * execution would leave the blob that vDNN offloads.
     */
    std::vector<ActivationRecord> activationRecords() const;

    /** Total parameter count. */
    uint64_t paramCount() const;

    /** True for layer types that modify their input blob in place. */
    static bool isInPlaceType(const std::string &type);

  private:
    std::vector<LayerPtr> layers_;
    std::vector<Tensor4D> outputs_;
};

} // namespace cdma

#endif // CDMA_DNN_NETWORK_HH
