#include "dnn/network.hh"

#include "common/logging.hh"

namespace cdma {

Layer &
Network::add(LayerPtr layer)
{
    CDMA_ASSERT(layer != nullptr, "cannot add a null layer");
    layers_.push_back(std::move(layer));
    // Maintain the relu-follows annotation: when a ReLU is appended, the
    // producing layer before it becomes sparsity-bearing.
    const size_t n = layers_.size();
    if (n >= 2 && layers_[n - 1]->type() == "relu")
        layers_[n - 2]->setReluFollows(true);
    return *layers_.back();
}

Shape4D
Network::outputShape(const Shape4D &input) const
{
    Shape4D shape = input;
    for (const auto &layer : layers_)
        shape = layer->outputShape(shape);
    return shape;
}

const Tensor4D &
Network::forward(const Tensor4D &input)
{
    CDMA_ASSERT(!layers_.empty(), "forward through an empty network");
    outputs_.clear();
    outputs_.reserve(layers_.size());
    const Tensor4D *current = &input;
    for (auto &layer : layers_) {
        outputs_.push_back(layer->forward(*current));
        current = &outputs_.back();
    }
    return outputs_.back();
}

void
Network::backward(const Tensor4D &loss_grad)
{
    CDMA_ASSERT(outputs_.size() == layers_.size(),
                "backward before forward");
    Tensor4D grad = loss_grad;
    for (size_t i = layers_.size(); i-- > 0;)
        grad = layers_[i]->backward(grad);
}

void
Network::step(const SgdConfig &config)
{
    for (auto &layer : layers_) {
        for (ParamBlob *blob : layer->params()) {
            blob->apply(config);
            blob->clearGrad();
        }
    }
}

void
Network::zeroGrads()
{
    for (auto &layer : layers_) {
        for (ParamBlob *blob : layer->params())
            blob->clearGrad();
    }
}

void
Network::setTraining(bool training)
{
    for (auto &layer : layers_)
        layer->setTraining(training);
}

bool
Network::isInPlaceType(const std::string &type)
{
    return type == "relu" || type == "lrn" || type == "dropout" ||
        type == "sigmoid" || type == "tanh";
}

std::vector<ActivationRecord>
Network::activationRecords() const
{
    CDMA_ASSERT(outputs_.size() == layers_.size(),
                "activationRecords before forward");
    std::vector<ActivationRecord> records;
    for (size_t i = 0; i < layers_.size(); ++i) {
        if (isInPlaceType(layers_[i]->type()))
            continue;
        // The blob this layer produces is observed after the run of
        // in-place layers following it.
        size_t last = i;
        bool relu_applied = false;
        while (last + 1 < layers_.size() &&
               isInPlaceType(layers_[last + 1]->type())) {
            ++last;
            relu_applied |= layers_[last]->type() == "relu";
        }
        ActivationRecord record;
        record.label = layers_[i]->name();
        record.type = layers_[i]->type();
        record.shape = outputs_[last].shape();
        record.density = outputs_[last].density();
        record.output_index = last;
        record.relu_sparse = relu_applied || layers_[i]->type() == "pool";
        records.push_back(std::move(record));
    }
    return records;
}

uint64_t
Network::paramCount() const
{
    uint64_t count = 0;
    for (const auto &layer : layers_) {
        // params() is non-const by design (the optimizer mutates blobs);
        // cast is safe for counting.
        for (ParamBlob *blob : const_cast<Layer &>(*layer).params())
            count += blob->value.size();
    }
    return count;
}

} // namespace cdma
