/** @file Unit tests for the Elman RNN layer (Section III discussion). */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dnn/rnn.hh"

namespace cdma {
namespace {

Tensor4D
randomSequence(int64_t batch, int64_t steps, int64_t features,
               uint64_t seed)
{
    Rng rng(seed);
    Tensor4D t(Shape4D{batch, steps, 1, features});
    for (float &v : t.data())
        v = static_cast<float>(rng.normal(0.0, 0.8));
    return t;
}

TEST(Rnn, OutputShapeIsHiddenSequence)
{
    Rng rng(1);
    Rnn rnn("rnn", 8, 16, RnnActivation::ReLU, rng);
    EXPECT_EQ(rnn.outputShape(Shape4D{4, 10, 1, 8}),
              (Shape4D{4, 10, 1, 16}));
}

TEST(Rnn, ReluStatesAreSparseTanhStatesAreNot)
{
    // The Section III contrast, at the layer level.
    Rng rng_a(2), rng_b(2);
    Rnn relu_rnn("relu", 8, 32, RnnActivation::ReLU, rng_a);
    Rnn tanh_rnn("tanh", 8, 32, RnnActivation::Tanh, rng_b);
    const Tensor4D input = randomSequence(4, 20, 8, 3);

    const Tensor4D relu_states = relu_rnn.forward(input);
    const Tensor4D tanh_states = tanh_rnn.forward(input);
    EXPECT_LT(relu_states.density(), 0.8);
    EXPECT_GT(tanh_states.density(), 0.999);
}

TEST(Rnn, TanhStatesBounded)
{
    Rng rng(4);
    Rnn rnn("rnn", 4, 8, RnnActivation::Tanh, rng);
    const Tensor4D states = rnn.forward(randomSequence(2, 12, 4, 5));
    for (float v : states.data()) {
        EXPECT_GE(v, -1.0f);
        EXPECT_LE(v, 1.0f);
    }
}

TEST(Rnn, RecurrencePropagatesState)
{
    // With zero input weights and identity-ish recurrence, the state at
    // t depends on the state at t-1: check the hidden sequence is not
    // constant when only the first step gets input.
    Rng rng(5);
    Rnn rnn("rnn", 2, 2, RnnActivation::ReLU, rng);
    auto params = rnn.params();
    // w_input: identity-ish, w_hidden: 0.5 * identity, bias 0.
    std::fill(params[0]->value.begin(), params[0]->value.end(), 0.0f);
    params[0]->value[0] = 1.0f; // h0 <- x0
    params[0]->value[3] = 1.0f; // h1 <- x1
    std::fill(params[1]->value.begin(), params[1]->value.end(), 0.0f);
    params[1]->value[0] = 0.5f;
    params[1]->value[3] = 0.5f;
    std::fill(params[2]->value.begin(), params[2]->value.end(), 0.0f);

    Tensor4D input(Shape4D{1, 4, 1, 2});
    input.at(0, 0, 0, 0) = 2.0f; // impulse at t=0 only
    const Tensor4D states = rnn.forward(input);
    EXPECT_FLOAT_EQ(states.at(0, 0, 0, 0), 2.0f);
    EXPECT_FLOAT_EQ(states.at(0, 1, 0, 0), 1.0f);   // decayed by 0.5
    EXPECT_FLOAT_EQ(states.at(0, 2, 0, 0), 0.5f);
    EXPECT_FLOAT_EQ(states.at(0, 3, 0, 0), 0.25f);
}

TEST(Rnn, GradCheckInputTanh)
{
    Rng rng(6);
    Rnn rnn("rnn", 3, 4, RnnActivation::Tanh, rng);
    Tensor4D input = randomSequence(2, 5, 3, 7);

    auto objective = [&](const Tensor4D &x) {
        Tensor4D y = rnn.forward(x);
        double total = 0.0;
        for (float v : y.data())
            total += 0.5 * static_cast<double>(v) *
                static_cast<double>(v);
        return total;
    };

    const Tensor4D y = rnn.forward(input);
    Tensor4D dy(y.shape());
    auto ys = y.data();
    auto dys = dy.data();
    for (size_t i = 0; i < ys.size(); ++i)
        dys[i] = ys[i];
    const Tensor4D analytic = rnn.backward(dy);

    const float eps = 1e-3f;
    auto data = input.data();
    for (size_t i = 0; i < data.size(); i += 7) { // sample every 7th
        const float saved = data[i];
        data[i] = saved + eps;
        const double plus = objective(input);
        data[i] = saved - eps;
        const double minus = objective(input);
        data[i] = saved;
        const double numeric = (plus - minus) / (2.0 * eps);
        EXPECT_NEAR(analytic.data()[i], numeric, 2e-2) << "element " << i;
    }
}

TEST(Rnn, GradCheckParamsTanh)
{
    Rng rng(8);
    Rnn rnn("rnn", 2, 3, RnnActivation::Tanh, rng);
    Tensor4D input = randomSequence(1, 4, 2, 9);

    auto objective = [&]() {
        Tensor4D y = rnn.forward(input);
        double total = 0.0;
        for (float v : y.data())
            total += 0.5 * static_cast<double>(v) *
                static_cast<double>(v);
        return total;
    };

    for (ParamBlob *blob : rnn.params())
        blob->clearGrad();
    const Tensor4D y = rnn.forward(input);
    Tensor4D dy(y.shape());
    auto ys = y.data();
    auto dys = dy.data();
    for (size_t i = 0; i < ys.size(); ++i)
        dys[i] = ys[i];
    rnn.backward(dy);

    const float eps = 1e-3f;
    for (ParamBlob *blob : rnn.params()) {
        for (size_t i = 0; i < blob->value.size(); ++i) {
            const float saved = blob->value[i];
            blob->value[i] = saved + eps;
            const double plus = objective();
            blob->value[i] = saved - eps;
            const double minus = objective();
            blob->value[i] = saved;
            const double numeric = (plus - minus) / (2.0 * eps);
            EXPECT_NEAR(blob->grad[i], numeric, 3e-2)
                << "param element " << i;
        }
    }
}

TEST(Rnn, MacsModel)
{
    Rng rng(10);
    Rnn rnn("rnn", 8, 16, RnnActivation::ReLU, rng);
    // T * H * (I + H) = 10 * 16 * 24.
    EXPECT_EQ(rnn.forwardMacsPerImage(Shape4D{1, 10, 1, 8}),
              10ull * 16 * 24);
}

} // namespace
} // namespace cdma
