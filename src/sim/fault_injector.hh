/**
 * @file
 * Deterministic link fault injection for the cDMA transfer model. The
 * paper's DMA engine moves compressed payloads across PCIe; a real link
 * suffers bit errors, truncated TLP streams and transient link-down
 * windows, and a real engine survives them with end-to-end integrity
 * framing plus retry. The injector models those hazards: each wire
 * crossing draws a fault outcome (bit flips with a geometric gap
 * distribution, Bernoulli truncation and link failure) from a seeded
 * xoshiro stream, so every run — and every retry sequence — is exactly
 * reproducible from one seed.
 *
 * The injector is purely a sampler: it never touches payload bytes
 * itself. The TransferEngine applies the sampled outcome to a scratch
 * copy of the wire image, lets the CRC/framing checks discover the
 * damage, and prices the retries on the DES timeline.
 */

#ifndef CDMA_SIM_FAULT_INJECTOR_HH
#define CDMA_SIM_FAULT_INJECTOR_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"

namespace cdma::sim {

/** Fault process parameters for one simulated link. */
struct FaultConfig {
    /**
     * Expected bit-flip events per payload byte per crossing (a BER
     * aggregated to byte granularity). 1e-6 on a multi-MB transfer
     * yields a handful of flips; 0 disables flips.
     */
    double bit_flip_rate_per_byte = 0.0;
    /** Probability a crossing arrives truncated (partial delivery). */
    double truncate_rate = 0.0;
    /** Probability a crossing is lost outright (transient link down). */
    double link_failure_rate = 0.0;
    /** Seed for the injector's private xoshiro stream. */
    uint64_t seed = 0x5EEDF00Dull;
    /**
     * Cap on flips sampled per crossing — bounds the outcome vector on
     * pathological rates; far above anything a realistic rate draws.
     */
    uint32_t max_flips_per_transfer = 64;
};

/** Sampled damage for one wire crossing of one payload. */
struct FaultOutcome {
    /** Crossing lost before delivery: nothing lands, full retry. */
    bool link_failed = false;
    /** Deliver only the first this-many bytes (no truncation when >=
     *  the payload size). */
    uint64_t truncate_to = 0;
    bool truncated = false;
    /** Byte offsets that take a bit flip (strictly increasing). */
    std::vector<uint64_t> flip_offsets;
    /** XOR mask (exactly one bit set) per flipped byte. */
    std::vector<uint8_t> flip_masks;

    /** True when the crossing delivered the payload unharmed. */
    bool clean() const
    {
        return !link_failed && !truncated && flip_offsets.empty();
    }
};

/**
 * Seeded fault sampler for one link. Not thread-safe: the transfer
 * engine consults it from the (serial) drain stage, one crossing at a
 * time, which also keeps the draw sequence deterministic.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config = FaultConfig());

    /** The configured fault process. */
    const FaultConfig &config() const { return config_; }

    /**
     * Sample the damage for one crossing of @p payload_bytes. Flips are
     * drawn with geometric gaps (each byte independently flips with
     * probability bit_flip_rate_per_byte), so the number of draws is
     * proportional to the number of flips, not the payload size.
     */
    FaultOutcome sample(uint64_t payload_bytes);

    /**
     * Analytic companion for the closed-form path: expected number of
     * crossings (first try + retries, capped at @p max_attempts) for a
     * payload of @p payload_bytes, under the configured fault process.
     */
    double expectedAttempts(uint64_t payload_bytes,
                            uint32_t max_attempts) const;

    /** Per-crossing failure probability for @p payload_bytes. */
    double failureProbability(uint64_t payload_bytes) const;

    /** Restart the draw sequence (exact replay of a previous run). */
    void reset();

    /** Crossings sampled since construction/reset. */
    uint64_t crossingsSampled() const { return crossings_; }

  private:
    FaultConfig config_;
    Rng rng_;
    uint64_t crossings_ = 0;
};

} // namespace cdma::sim

#endif // CDMA_SIM_FAULT_INJECTOR_HH
