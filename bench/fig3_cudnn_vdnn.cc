/**
 * @file
 * Figure 3 reproduction. (a) Speedups offered by successive cuDNN
 * versions, normalized to v1 per network — the paper reports an average
 * 2.2x for v5. (b) Performance of vDNN normalized to a no-stall oracle
 * under each cuDNN version — the overhead grows as compute shrinks,
 * reaching an average ~31% (max ~52%) loss at v5.
 */

#include <cstdio>

#include "common/harness.hh"
#include "common/stats.hh"
#include "perf/step_sim.hh"

using namespace cdma;
using bench::Table;

int
main()
{
    std::printf("== Figure 3(a): speedup over cuDNN v1 "
                "(higher is better) ==\n");
    PerfModel perf;
    Table fig3a({"network", "v1", "v2", "v3", "v4", "v5"});
    Accumulator v5_speedup;
    for (const auto &net : allNetworkDescs()) {
        std::vector<std::string> row = {net.name};
        const double t1 =
            perf.networkTiming(net, net.default_batch, CudnnVersion::V1)
                .total();
        for (CudnnVersion v : kAllCudnnVersions) {
            const double t =
                perf.networkTiming(net, net.default_batch, v).total();
            row.push_back(Table::num(t1 / t, 2));
            if (v == CudnnVersion::V5)
                v5_speedup.add(t1 / t);
        }
        fig3a.addRow(row);
    }
    fig3a.print();
    std::printf("average v5 speedup: %.2fx (paper: ~2.2x)\n\n",
                v5_speedup.mean());

    std::printf("== Figure 3(b): vDNN performance normalized to oracle "
                "(higher is better) ==\n");
    Table fig3b({"network", "v1", "v2", "v3", "v4", "v5"});
    Accumulator v5_overhead;
    double worst_loss = 0.0;
    std::string worst_net;
    for (const auto &net : allNetworkDescs()) {
        VdnnMemoryManager manager(net, net.default_batch);
        CdmaEngine engine(CdmaConfig{});
        std::vector<std::string> row = {net.name};
        for (CudnnVersion v : kAllCudnnVersions) {
            StepSimulator sim(manager, engine, perf, v);
            const StepResult vdnn = sim.run(StepMode::Vdnn);
            const StepResult oracle = sim.run(StepMode::Oracle);
            const double relative =
                oracle.total_seconds / vdnn.total_seconds;
            row.push_back(Table::num(relative, 3));
            if (v == CudnnVersion::V5) {
                v5_overhead.add(1.0 - relative);
                if (1.0 - relative > worst_loss) {
                    worst_loss = 1.0 - relative;
                    worst_net = net.name;
                }
            }
        }
        fig3b.addRow(row);
    }
    fig3b.print();
    std::printf("average v5 performance loss: %.1f%% (paper: ~31%%), "
                "worst: %.1f%% on %s (paper: ~52%%)\n",
                100.0 * v5_overhead.mean(), 100.0 * worst_loss,
                worst_net.c_str());
    return 0;
}
