/**
 * @file
 * Fleet simulator — N per-GPU transfer pipelines offloading through one
 * shared PCIe switch uplink. This is the scaling question the topology
 * graph exists to answer: a single cDMA engine's compression shrinks
 * its own wire time, but a data-parallel fleet multiplies offload
 * traffic onto the switch's one upstream link, and the win (or loss)
 * shows up as head-of-line blocking there, not on the per-GPU legs.
 *
 * The fleet topology is the star the paper's system model implies:
 *
 *   gpu0 ─┐
 *   gpu1 ─┼─ pcie switch ── host DRAM ── nvme ssd
 *   ...  ─┘      (shared uplink)       (spill tier)
 *
 * plus an optional NVLink ring over the GPUs. Every GPU runs one
 * DuplexPipeline (source-tagged g) on the shared LinkNetwork, so the
 * uplink's cross-source accounting attributes exactly how long each
 * GPU's shards sat behind other GPUs' traffic: the per-GPU
 * contention-stall fraction is 0 by construction at N = 1 and grows
 * toward (N-1)/N as the uplink saturates.
 */

#ifndef CDMA_CDMA_FLEET_SIM_HH
#define CDMA_CDMA_FLEET_SIM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cdma/transfer_engine.hh"
#include "sim/topology.hh"

namespace cdma {

/** Shape of the fleet: link provisioning plus the per-GPU workload. */
struct FleetSpec {
    unsigned gpu_count = 4;

    // Interconnect provisioning (bytes/second).
    double gpu_link_bandwidth = 12.0e9; ///< each GPU's leg to the switch
    double uplink_bandwidth = 12.0e9;   ///< shared switch -> host uplink
    double ssd_bandwidth = 3.0e9;       ///< host -> NVMe spill tier
    double nvlink_bandwidth = 0.0;      ///< > 0 adds a GPU peer ring
    DuplexMode duplex_mode = DuplexMode::Full;
    LinkArbiter arbiter = LinkArbiter::RoundRobin;

    /** Per-GPU engine provisioning (bandwidths must be positive). */
    PipelineSpec pipeline{60.0e9, 60.0e9, 2, 0.0};

    // Per-GPU workload: both directions cut into uniform staging shards
    // at a known compression ratio (either direction may be 0 bytes).
    uint64_t offload_raw_bytes = 64ull << 20;
    double offload_ratio = 2.5;
    uint64_t prefetch_raw_bytes = 0;
    double prefetch_ratio = 2.5;
    uint64_t shard_raw_bytes = 2ull << 20;

    // Observability sinks (both non-owning, either may be null). The
    // trace recorder collects per-GPU stage tracks, per-edge wire
    // spans/utilization counters, and the wire-byte conservation
    // ledger; one recorder must observe at most one run() (timelines
    // of separate runs all start at t=0 and would interleave). Kept at
    // the end: FleetSpec is aggregate-initialized positionally in
    // existing call sites.
    obs::TraceRecorder *trace = nullptr;
    obs::MetricsRegistry *metrics = nullptr;

    /**
     * Adaptive codec policy hookup (non-owning, optional). With a
     * policy attached and a direction's density set >= 0, that
     * direction's compression ratio is derived by the policy's cost
     * model (decideFromDensity over the direction's raw bytes) instead
     * of taken from offload_ratio / prefetch_ratio — so a fleet sweep
     * can price what the per-GPU engines would actually choose at a
     * given activation density. A negative density leaves the fixed
     * ratio in force. Appended after the observability sinks: FleetSpec
     * is aggregate-initialized positionally in existing call sites.
     */
    CodecPolicyEngine *policy = nullptr;
    double offload_density = -1.0;
    double prefetch_density = -1.0;
};

/** The built fleet graph plus handles to its interesting pieces. */
struct FleetTopology {
    std::shared_ptr<const Topology> graph;
    std::vector<NodeId> gpus;
    NodeId switch_node = 0;
    NodeId host = 0;
    NodeId ssd = 0;
    std::vector<LinkId> gpu_links; ///< per-GPU legs, in GPU order
    LinkId uplink = 0;             ///< the shared switch -> host edge
    LinkId ssd_link = 0;           ///< host -> NVMe edge
    std::vector<LinkId> nvlinks;   ///< peer ring edges (may be empty)
};

/** Star fleet graph per @p spec (see file comment for the shape). */
FleetTopology buildFleetTopology(const FleetSpec &spec);

/** One GPU's outcome of a fleet run. */
struct FleetGpuResult {
    DuplexTiming timing;          ///< its pipeline's timing breakdown
    SimTime finish_seconds = 0.0; ///< its last drained event
    /** Wait its wire legs paid behind OTHER GPUs' traffic on shared
     *  edges (the uplink, in the star) — RouteGrant cross-source. */
    SimTime uplink_wait_seconds = 0.0;
    /** uplink_wait_seconds over this GPU's busy span: the fraction of
     *  its transfer schedule lost to fleet contention. 0 at N = 1. */
    double contention_stall_fraction = 0.0;
};

/** Per-edge traffic of a fleet run. */
struct FleetEdgeStats {
    LinkId link = 0;
    std::string name;
    uint64_t out_bytes = 0; ///< a -> b bytes (GPU -> host-ward on legs)
    uint64_t in_bytes = 0;  ///< b -> a bytes
    double utilization = 0.0; ///< busy wall-clock over elapsed
};

/** Fleet-wide outcome. */
struct FleetResult {
    std::vector<FleetGpuResult> gpus;
    std::vector<FleetEdgeStats> edges; ///< indexed by LinkId
    double makespan_seconds = 0.0;     ///< last drain across the fleet
    double uplink_utilization = 0.0;
    /** Mean of the per-GPU contention-stall fractions. */
    double mean_contention_stall_fraction = 0.0;
};

/**
 * Runs the fleet: one DuplexPipeline per GPU (source-tagged with the
 * GPU index), all racing on one LinkNetwork over the star topology.
 * Deterministic — same spec, same result.
 */
class FleetSimulator
{
  public:
    explicit FleetSimulator(const FleetSpec &spec);

    const FleetSpec &spec() const { return spec_; }
    const FleetTopology &topology() const { return topology_; }

    /** Run the event queue to empty and collect per-GPU/per-edge stats.
     *  Restartable: each call simulates a fresh fleet. */
    FleetResult run() const;

  private:
    FleetSpec spec_;
    FleetTopology topology_;
};

} // namespace cdma

#endif // CDMA_CDMA_FLEET_SIM_HH
