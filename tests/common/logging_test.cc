/** @file Unit tests for the logging/termination helpers. */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace cdma {
namespace {

TEST(Logging, LevelFilterRoundTrips)
{
    const LogLevel original = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(original);
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("test warning %d", 42);
    inform("test info %s", "message");
    SUCCEED();
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(panic("intentional panic"), "intentional panic");
}

TEST(LoggingDeathTest, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("intentional fatal"),
                ::testing::ExitedWithCode(1), "intentional fatal");
}

TEST(LoggingDeathTest, AssertMacroFiresOnFalse)
{
    EXPECT_DEATH(CDMA_ASSERT(1 == 2, "math broke: %d", 7), "math broke");
}

TEST(Logging, AssertMacroPassesOnTrue)
{
    CDMA_ASSERT(2 + 2 == 4, "should not fire");
    SUCCEED();
}

} // namespace
} // namespace cdma
