#include "cdma/transfer_engine.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <queue>

#include "common/bits.hh"
#include "common/logging.hh"
#include "compress/kernels/kernels.hh"
#include "sim/channel.hh"
#include "sim/event_queue.hh"
#include "sim/fault_injector.hh"

namespace cdma {

namespace {

/** Total exponential backoff of a shard that took @p attempts
 *  crossings: base, 2*base, ... summing to base * (2^(attempts-1) - 1). */
double
backoffSeconds(uint32_t attempts, double base)
{
    if (attempts <= 1 || base <= 0.0)
        return 0.0;
    return base * (std::ldexp(1.0, static_cast<int>(attempts) - 1) - 1.0);
}

/**
 * Receiver-side view of one sampled crossing: applies @p outcome to a
 * scratch copy of @p payload and runs the same length + CRC-32C framing
 * checks a clean landing passes, charging the appropriate counter for
 * rejected crossings. Returns true when the payload landed usable.
 * (A lost or short crossing is rejected by the framing length before
 * any CRC work; bit flips are what the CRC catches — CRC-32C detects
 * every error of fewer than 4 flipped bits at these payload sizes, so
 * the fall-through "damage evaded detection" arm is unreachable in
 * practice but kept honest.)
 */
bool
crossingLanded(const sim::FaultOutcome &outcome,
               std::span<const uint8_t> payload, uint32_t expected_crc,
               const KernelOps &kernels, TransferIntegrity &integrity)
{
    if (outcome.clean())
        return true;
    if (outcome.link_failed || outcome.truncated) {
        ++integrity.link_faults;
        return false;
    }
    ByteVec scratch(payload.begin(), payload.end());
    for (size_t i = 0; i < outcome.flip_offsets.size(); ++i)
        scratch[outcome.flip_offsets[i]] ^= outcome.flip_masks[i];
    if (kernels.crc32(0, scratch.data(), scratch.size()) !=
        expected_crc) {
        ++integrity.crc_failures;
        return false;
    }
    return true;
}

/**
 * Downgrade @p shard to raw framing: the payload becomes the shard's
 * uncompressed source bytes (no decode step can fail on the far side),
 * the per-window sizes become raw sizes, and the CRC is re-framed over
 * the new payload — the robustness analogue of store-raw.
 */
void
degradeToRaw(CompressedShard &shard, std::span<const uint8_t> data,
             uint64_t window_bytes, const KernelOps &kernels)
{
    const uint64_t begin = shard.first_window * window_bytes;
    shard.payload.assign(
        data.begin() + static_cast<ptrdiff_t>(begin),
        data.begin() + static_cast<ptrdiff_t>(begin + shard.raw_bytes));
    uint64_t remaining = shard.raw_bytes;
    for (uint32_t &size : shard.window_sizes) {
        size = static_cast<uint32_t>(
            std::min<uint64_t>(window_bytes, remaining));
        remaining -= size;
    }
    shard.raw_framed = true;
    shard.crc32c =
        kernels.crc32(0, shard.payload.data(), shard.payload.size());
}

} // namespace

TransferEngine::TransferEngine(const CdmaEngine &engine)
    : engine_(engine)
{
    const CdmaConfig &config = engine.config();
    const uint64_t shard_bytes = config.shard_bytes > 0
        ? config.shard_bytes
        : config.gpu.dmaBufferBytes();
    shard_windows_ = std::max<uint64_t>(1, shard_bytes /
                                               config.window_bytes);
    CDMA_ASSERT(config.staging_buffers >= 1,
                "the transfer pipelines need at least one staging buffer");
}

OffloadResult
TransferEngine::offload(std::span<const uint8_t> data) const
{
    const CdmaConfig &config = engine_.config();
    OffloadResult result;
    result.buffer.original_bytes = data.size();
    result.buffer.window_bytes = config.window_bytes;

    const uint64_t windows = ceilDiv(data.size(), config.window_bytes);
    result.buffer.window_sizes.reserve(windows);
    result.shards.reserve(ceilDiv(windows, shard_windows_));
    // Whole-buffer worst case reserved once, so the per-shard payload
    // appends below never reallocate (mirrors Compressor::compress).
    if (windows > 0) {
        const Compressor &codec = engine_.compressor().serial();
        result.buffer.payload.reserve(
            (windows - 1) * codec.compressedBound(config.window_bytes) +
            codec.compressedBound(data.size() -
                                  (windows - 1) * config.window_bytes));
    }

    // The consumer is the staging drain: it runs on this thread in shard
    // order while the lanes compress later shards, appending each shard's
    // payload to the stitched buffer and recording its wire size for the
    // pipeline model.
    engine_.compressor().compressShards(
        data, shard_windows_, [&](CompressedShard &&shard) {
            result.shards.push_back(
                {shard.raw_bytes,
                 shard.effectiveBytes(config.window_bytes)});
            result.buffer.payload.insert(result.buffer.payload.end(),
                                         shard.payload.begin(),
                                         shard.payload.end());
            result.buffer.window_sizes.insert(
                result.buffer.window_sizes.end(),
                shard.window_sizes.begin(), shard.window_sizes.end());
        });

    // The stitched buffer carries no per-shard CRC framing, so a
    // configured fault process is priced in expectation here; the
    // arena flow (offloadInto) samples it crossing by crossing.
    applyExpectedFaults(result.shards);
    result.integrity = trainIntegrity(result.shards);
    result.timing = timingFor(result.shards, {}).offload;
    result.integrity.retry_stall_seconds =
        result.timing.retry_stall_seconds;
    return result;
}

StatusOr<SpilledOffload>
TransferEngine::offloadInto(std::span<const uint8_t> data,
                            SpillArena &arena) const
{
    const CdmaConfig &config = engine_.config();
    sim::FaultInjector *injector = config.fault_injector;
    const RetryPolicy &retry = config.retry;
    const KernelOps &kernels = engine_.compressor().serial().kernels();

    SpilledOffload result;
    result.ticket = arena.beginSpill(data.size(), config.window_bytes);
    result.shards.reserve(
        ceilDiv(ceilDiv(data.size(), config.window_bytes),
                shard_windows_));

    // Same drain as offload(), but each shard lands in a recycled arena
    // slot instead of growing a stitched payload vector. The drain is
    // also where the shard crosses the wire, so the fault process (if
    // any) is sampled here, crossing by crossing: a damaged crossing is
    // caught by the length/CRC framing checks and re-sent, degrading to
    // raw framing and finally giving up per the RetryPolicy. The drain
    // runs serially on this thread in shard order, which keeps the
    // injector's draw sequence deterministic.
    Status fault_error;
    engine_.compressor().compressShards(
        data, shard_windows_, [&](CompressedShard &&shard) {
            if (!fault_error.ok())
                return; // an earlier shard burned its retry budget
            ShardTransfer xfer;
            xfer.raw_bytes = shard.raw_bytes;
            xfer.wire_bytes = shard.effectiveBytes(config.window_bytes);
            uint32_t attempts = 0;
            while (injector != nullptr) {
                ++attempts;
                const sim::FaultOutcome outcome =
                    injector->sample(shard.payload.size());
                if (crossingLanded(outcome, shard.payload, shard.crc32c,
                                   kernels, result.integrity)) {
                    break;
                }
                xfer.failed_wire_bytes += xfer.wire_bytes;
                if (attempts >= retry.max_attempts) {
                    fault_error = Status::retryExhausted(
                        "offload shard %llu dropped after %u crossings",
                        static_cast<unsigned long long>(shard.index),
                        attempts);
                    return;
                }
                ++result.integrity.retries;
                if (!shard.raw_framed &&
                    attempts >= retry.raw_fallback_after) {
                    degradeToRaw(shard, data, config.window_bytes,
                                 kernels);
                    xfer.wire_bytes =
                        shard.effectiveBytes(config.window_bytes);
                    xfer.degraded = true;
                    ++result.integrity.degraded_shards;
                }
            }
            xfer.attempts = std::max<uint32_t>(1, attempts);
            result.integrity.attempts += xfer.attempts;
            result.integrity.failed_wire_bytes += xfer.failed_wire_bytes;
            result.shards.push_back(xfer);
            arena.appendShard(result.ticket, shard);
        });

    if (!fault_error.ok()) {
        // The partially filled spill is useless to the caller; return
        // its slots so the error path leaks nothing.
        arena.release(result.ticket);
        return fault_error;
    }
    result.timing = timingFor(result.shards, {}).offload;
    result.integrity.retry_stall_seconds =
        result.timing.retry_stall_seconds;
    return result;
}

StatusOr<PrefetchResult>
TransferEngine::prefetch(const CompressedBuffer &buffer) const
{
    PrefetchResult result;
    result.data.resize(buffer.original_bytes);
    result.shards.reserve(ceilDiv(buffer.window_sizes.size(),
                                  shard_windows_));

    // The consumer is the expand drain: notifications arrive on this
    // thread in shard order while the lanes reconstruct later shards,
    // recording each shard's byte counts for the pipeline model (the
    // raw bytes themselves land directly in the output region).
    const Status status = engine_.compressor().decompressShards(
        buffer, shard_windows_, result.data.data(),
        [&](const ParallelCompressor::DecompressedShard &shard) {
            result.shards.push_back({shard.raw_bytes, shard.wire_bytes});
        });
    if (!status.ok())
        return status;

    applyExpectedFaults(result.shards);
    result.integrity = trainIntegrity(result.shards);
    result.timing = timingFor({}, result.shards).prefetch;
    result.integrity.retry_stall_seconds =
        result.timing.retry_stall_seconds;
    return result;
}

StatusOr<PrefetchResult>
TransferEngine::prefetch(const SpillArena &arena, SpillTicket ticket) const
{
    const CdmaConfig &config = engine_.config();
    sim::FaultInjector *injector = config.fault_injector;
    const RetryPolicy &retry = config.retry;
    const uint64_t original_bytes = arena.originalBytes(ticket);
    const uint64_t window_bytes = arena.windowBytes(ticket);
    const Compressor &codec = engine_.compressor().serial();
    const KernelOps &kernels = codec.kernels();

    PrefetchResult result;
    result.data.resize(original_bytes);
    result.shards.reserve(arena.shardCount(ticket));

    // Shards expand in store order straight out of the arena slots —
    // no stitched payload copy. The drain is serial here: the arena
    // path models the steady-state training loop, where the prefetch
    // engine walks one spilled layer at a time.
    for (size_t s = 0; s < arena.shardCount(ticket); ++s) {
        const SpillShardView view = arena.shard(ticket, s);
        ShardTransfer xfer;
        xfer.raw_bytes = view.raw_bytes;
        xfer.wire_bytes = view.wire_bytes;
        xfer.degraded = view.raw_framed;

        // GPU-bound wire crossing(s): a faulted crossing re-reads the
        // pristine arena slot, so once a crossing lands clean the
        // landed bytes are exactly the stored bytes.
        uint32_t attempts = 0;
        while (injector != nullptr) {
            ++attempts;
            const sim::FaultOutcome outcome =
                injector->sample(view.payload.size());
            if (crossingLanded(outcome, view.payload, view.crc32c,
                               kernels, result.integrity)) {
                break;
            }
            xfer.failed_wire_bytes += view.wire_bytes;
            if (attempts >= retry.max_attempts) {
                return Status::retryExhausted(
                    "prefetch shard %zu dropped after %u crossings", s,
                    attempts);
            }
            ++result.integrity.retries;
        }
        xfer.attempts = std::max<uint32_t>(1, attempts);
        result.integrity.attempts += xfer.attempts;
        result.integrity.failed_wire_bytes += xfer.failed_wire_bytes;

        // End-to-end verify: the landed payload against the CRC framed
        // at compress time, before any decode work touches it.
        const uint32_t crc =
            kernels.crc32(0, view.payload.data(), view.payload.size());
        if (crc != view.crc32c) {
            return Status::integrityError(
                "spilled shard %zu CRC mismatch (framed %08x, landed "
                "%08x)",
                s, view.crc32c, crc);
        }

        if (view.raw_framed) {
            // Degraded shard: the payload IS the raw bytes.
            std::memcpy(result.data.data() +
                            view.first_window * window_bytes,
                        view.payload.data(), view.payload.size());
        } else {
            uint64_t cursor = 0;
            uint64_t window = view.first_window;
            for (const uint32_t size : view.window_sizes) {
                const uint64_t out_offset = window * window_bytes;
                const uint64_t raw = std::min<uint64_t>(
                    window_bytes, original_bytes - out_offset);
                const Status status = codec.decompressWindowInto(
                    view.payload.subspan(cursor, size), raw,
                    result.data.data() + out_offset);
                if (!status.ok()) {
                    return status.withContext(
                        "spilled shard %zu window %llu", s,
                        static_cast<unsigned long long>(window));
                }
                cursor += size;
                ++window;
            }
            CDMA_ASSERT(cursor == view.payload.size(),
                        "spilled shard payload not fully consumed");
        }
        result.shards.push_back(xfer);
    }

    result.timing = timingFor({}, result.shards).prefetch;
    result.integrity.retry_stall_seconds =
        result.timing.retry_stall_seconds;
    return result;
}

StatusOr<TransferEngine::DuplexResult>
TransferEngine::transfer(std::span<const uint8_t> offload_data,
                         SpillArena &arena,
                         SpillTicket prefetch_ticket) const
{
    StatusOr<SpilledOffload> offloaded =
        offloadInto(offload_data, arena);
    if (!offloaded.ok())
        return offloaded.status();
    StatusOr<PrefetchResult> prefetched =
        prefetch(arena, prefetch_ticket);
    if (!prefetched.ok())
        return prefetched.status();

    DuplexResult result;
    result.offload = std::move(offloaded.value());
    result.prefetch = std::move(prefetched.value());
    // Re-time both measured shard trains as one race on the shared
    // link: the per-direction breakdowns pick up any contention the
    // independent flows above could not see.
    result.timing = timingFor(result.offload.shards,
                              result.prefetch.shards);
    result.offload.timing = result.timing.offload;
    result.prefetch.timing = result.timing.prefetch;
    return result;
}

DuplexTiming
TransferEngine::timingFor(std::span<const ShardTransfer> offload_shards,
                          std::span<const ShardTransfer> prefetch_shards)
    const
{
    const CdmaConfig &config = engine_.config();
    return pipelineTiming(offload_shards, prefetch_shards,
                          config.gpu.comp_bandwidth,
                          config.gpu.pcie_effective_bandwidth,
                          config.gpu.comp_bandwidth,
                          config.staging_buffers, config.duplex_mode,
                          config.link_arbiter,
                          config.retry.backoff_seconds);
}

DuplexTiming
TransferEngine::duplexTiming(
    std::span<const ShardTransfer> offload_shards,
    std::span<const ShardTransfer> prefetch_shards) const
{
    return timingFor(offload_shards, prefetch_shards);
}

std::vector<ShardTransfer>
TransferEngine::shardTrain(uint64_t raw_bytes, double ratio) const
{
    CDMA_ASSERT(ratio >= 1.0, "ratio %f below store-raw floor", ratio);
    const uint64_t shard_raw =
        shard_windows_ * engine_.config().window_bytes;
    std::vector<ShardTransfer> shards;
    shards.reserve(ceilDiv(raw_bytes, shard_raw));
    uint64_t remaining = raw_bytes;
    while (remaining > 0) {
        const uint64_t raw = std::min(remaining, shard_raw);
        shards.push_back({raw, static_cast<uint64_t>(
                                   static_cast<double>(raw) / ratio)});
        remaining -= raw;
    }
    applyExpectedFaults(shards);
    return shards;
}

void
TransferEngine::applyExpectedFaults(
    std::vector<ShardTransfer> &shards) const
{
    const sim::FaultInjector *injector = engine_.config().fault_injector;
    if (injector == nullptr)
        return;
    const RetryPolicy &retry = engine_.config().retry;
    // Integerize the per-shard expectation with a running remainder so
    // the train-level totals track the closed form: at E[attempts] of,
    // say, 1.25, independent rounding would give every shard 1 attempt
    // and erase the fold entirely, whereas the carry hands every fourth
    // shard the retry.
    double carry = 0.0;
    for (ShardTransfer &shard : shards) {
        const double expected = injector->expectedAttempts(
            shard.wire_bytes, retry.max_attempts);
        carry += expected;
        const auto attempts =
            std::max<uint32_t>(1, static_cast<uint32_t>(carry));
        carry -= attempts;
        shard.attempts = attempts;
        shard.failed_wire_bytes = static_cast<uint64_t>(std::llround(
            (expected - 1.0) * static_cast<double>(shard.wire_bytes)));
    }
}

TransferIntegrity
TransferEngine::trainIntegrity(std::span<const ShardTransfer> shards)
{
    TransferIntegrity integrity;
    for (const ShardTransfer &shard : shards) {
        integrity.attempts += shard.attempts;
        integrity.retries += shard.attempts - 1;
        integrity.failed_wire_bytes += shard.failed_wire_bytes;
        integrity.degraded_shards += shard.degraded ? 1 : 0;
    }
    return integrity;
}

DuplexTiming
TransferEngine::modelFromRatio(uint64_t offload_raw, double offload_ratio,
                               uint64_t prefetch_raw,
                               double prefetch_ratio) const
{
    return timingFor(shardTrain(offload_raw, offload_ratio),
                     shardTrain(prefetch_raw, prefetch_ratio));
}

DuplexTiming
TransferEngine::pipelineTiming(
    std::span<const ShardTransfer> offload_shards,
    std::span<const ShardTransfer> prefetch_shards,
    double compress_bandwidth, double wire_bandwidth,
    double decompress_bandwidth, unsigned staging_buffers,
    DuplexMode mode, LinkArbiter arbiter, double backoff_base_seconds)
{
    CDMA_ASSERT(compress_bandwidth > 0.0 && wire_bandwidth > 0.0 &&
                    decompress_bandwidth > 0.0,
                "pipeline model needs positive bandwidths");
    CDMA_ASSERT(staging_buffers >= 1, "need at least one staging buffer");

    DuplexTiming timing;
    timing.offload.shard_count = offload_shards.size();
    timing.prefetch.shard_count = prefetch_shards.size();
    if (offload_shards.empty() && prefetch_shards.empty())
        return timing;

    EventQueue queue;
    DuplexChannel wire(queue, "pcie", wire_bandwidth, mode, arbiter);
    using Direction = DuplexChannel::Direction;

    // ---- Offload pipeline state (compress -> staging -> wire out) ----
    size_t off_next = 0;
    size_t off_in_flight = 0;     // shards holding an offload buffer
    bool compressing = false;     // the compression engine is serial
    SimTime last_off_drain = 0.0;

    std::function<void()> startCompress = [&] {
        if (off_next >= offload_shards.size() || compressing ||
            off_in_flight >= staging_buffers) {
            return;
        }
        const size_t k = off_next++;
        compressing = true;
        ++off_in_flight;
        const SimTime compress_time =
            static_cast<double>(offload_shards[k].raw_bytes) /
            compress_bandwidth;
        queue.scheduleAfter(compress_time, [&, k] {
            // Shard k staged: hand it to the DMA unit (it queues on the
            // shared link behind the arbiter) and start compressing the
            // next shard into the other buffer.
            compressing = false;
            // The wire leg carries the shard's failed crossings too,
            // and the retry backoff rides as extra latency: the retry
            // sequence holds the shard's DMA transaction slot (and,
            // under half duplex, the link) until the shard lands.
            wire.submit(Direction::Out,
                        offload_shards[k].wire_bytes +
                            offload_shards[k].failed_wire_bytes,
                        [&](const DuplexChannel::Grant &) {
                            --off_in_flight;
                            last_off_drain = queue.now();
                            startCompress();
                        },
                        backoffSeconds(offload_shards[k].attempts,
                                       backoff_base_seconds));
            startCompress();
        });
    };

    // ---- Prefetch pipeline state (wire in -> staging -> expand) ----
    size_t pre_next = 0;
    size_t pre_in_flight = 0;     // shards holding a prefetch buffer
    bool expanding = false;       // the decompression engine is serial
    std::queue<size_t> landed;    // wired shards awaiting decompression
    SimTime last_expand = 0.0;

    std::function<void()> startWire;
    std::function<void()> startExpand = [&] {
        if (expanding || landed.empty())
            return;
        const size_t k = landed.front();
        landed.pop();
        expanding = true;
        const SimTime expand_time =
            static_cast<double>(prefetch_shards[k].raw_bytes) /
            decompress_bandwidth;
        queue.scheduleAfter(expand_time, [&] {
            // Shard re-inflated: its staging buffer frees, so the next
            // shard may enter the wire while the engine picks up the
            // next landed shard.
            expanding = false;
            --pre_in_flight;
            last_expand = queue.now();
            startExpand();
            startWire();
        });
    };
    startWire = [&] {
        if (pre_next >= prefetch_shards.size() ||
            pre_in_flight >= staging_buffers) {
            return;
        }
        const size_t k = pre_next++;
        ++pre_in_flight;
        wire.submit(Direction::In,
                    prefetch_shards[k].wire_bytes +
                        prefetch_shards[k].failed_wire_bytes,
                    [&, k](const DuplexChannel::Grant &) {
                        landed.push(k);
                        startExpand();
                        startWire();
                    },
                    backoffSeconds(prefetch_shards[k].attempts,
                                   backoff_base_seconds));
        startWire();
    };

    startCompress();
    startWire();
    queue.run();

    for (const ShardTransfer &shard : offload_shards) {
        timing.offload.compress_seconds +=
            static_cast<double>(shard.raw_bytes) / compress_bandwidth;
        timing.offload.retry_stall_seconds +=
            static_cast<double>(shard.failed_wire_bytes) /
                wire_bandwidth +
            backoffSeconds(shard.attempts, backoff_base_seconds);
    }
    timing.offload.wire_seconds = wire.busySeconds(Direction::Out);
    timing.offload.overlapped_seconds = last_off_drain;
    finalizeOverlapFraction(timing.offload);

    timing.prefetch.wire_seconds = wire.busySeconds(Direction::In);
    for (const ShardTransfer &shard : prefetch_shards) {
        timing.prefetch.decompress_seconds +=
            static_cast<double>(shard.raw_bytes) / decompress_bandwidth;
        timing.prefetch.retry_stall_seconds +=
            static_cast<double>(shard.failed_wire_bytes) /
                wire_bandwidth +
            backoffSeconds(shard.attempts, backoff_base_seconds);
    }
    timing.prefetch.overlapped_seconds = last_expand;
    finalizeOverlapFraction(timing.prefetch);

    timing.makespan_seconds = std::max(last_off_drain, last_expand);
    timing.offload_contention_seconds =
        wire.contentionSeconds(Direction::Out);
    timing.prefetch_contention_seconds =
        wire.contentionSeconds(Direction::In);
    return timing;
}

} // namespace cdma
