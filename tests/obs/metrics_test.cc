/** @file Unit tests for the metrics registry. */

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hh"

namespace cdma {
namespace {

TEST(MetricsRegistry, CounterAndGaugeBasics)
{
    obs::MetricsRegistry metrics;
    obs::Counter &c = metrics.counter("integrity.retries");
    c.add();
    c.add(4);
    EXPECT_EQ(c.value(), 5u);

    obs::Gauge &g = metrics.gauge("arena.occupancy_ratio");
    g.set(0.75);
    EXPECT_DOUBLE_EQ(g.value(), 0.75);
    g.set(0.25);
    EXPECT_DOUBLE_EQ(g.value(), 0.25);
}

TEST(MetricsRegistry, LookupReturnsStableReferences)
{
    obs::MetricsRegistry metrics;
    obs::Counter &a = metrics.counter("x");
    obs::Counter &b = metrics.counter("x");
    EXPECT_EQ(&a, &b);
    obs::HistogramMetric &h1 = metrics.histogram("y");
    obs::HistogramMetric &h2 = metrics.histogram("y");
    EXPECT_EQ(&h1, &h2);
    // Same name, different kind: distinct instruments.
    metrics.gauge("x").set(1.0);
    EXPECT_EQ(a.value(), 0u);
}

TEST(MetricsRegistry, HistogramPercentilesAndCrossThreadMerge)
{
    obs::MetricsRegistry metrics;
    obs::HistogramMetric &hist =
        metrics.histogram("transfer.offload.shard_latency_seconds");

    // Concurrent recording from worker threads must not lose samples.
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&hist, w]() {
            for (int i = 0; i < 250; ++i)
                hist.record(1e-3 * (w + 1));
        });
    }
    for (auto &worker : workers)
        worker.join();
    EXPECT_EQ(hist.count(), 1000u);
    EXPECT_DOUBLE_EQ(hist.min(), 1e-3);
    EXPECT_DOUBLE_EQ(hist.max(), 4e-3);
    // p50 targets the 500th sample = the 2e-3 cohort; log buckets at
    // growth 1.25 are <= 25% wide.
    EXPECT_NEAR(hist.percentile(0.5), 2e-3, 2e-3 * 0.25);

    // Merging a snapshot folds another registry's samples in exactly.
    obs::MetricsRegistry other;
    obs::HistogramMetric &shard = other.histogram("lane");
    for (int i = 0; i < 1000; ++i)
        shard.record(8e-3);
    hist.merge(shard.snapshot());
    EXPECT_EQ(hist.count(), 2000u);
    EXPECT_DOUBLE_EQ(hist.max(), 8e-3);
    EXPECT_NEAR(hist.percentile(0.99), 8e-3, 8e-3 * 0.25);
}

TEST(MetricsRegistry, ScopedTimerRecordsAndNullTargetIsSafe)
{
    obs::MetricsRegistry metrics;
    obs::HistogramMetric &hist = metrics.histogram("kernel.wall_seconds");
    {
        const obs::ScopedTimer timer(&hist);
    }
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_GE(hist.min(), 0.0);
    {
        const obs::ScopedTimer disarmed(nullptr);
    }
    EXPECT_EQ(hist.count(), 1u);
}

TEST(MetricsRegistry, JsonIsDeterministicAndFinite)
{
    const auto populate = [](obs::MetricsRegistry &metrics) {
        metrics.counter("b.count").add(7);
        metrics.gauge("a.ratio").set(2.5);
        obs::HistogramMetric &hist = metrics.histogram("c.seconds");
        hist.record(0.001);
        hist.record(0.004);
        // Registered but never recorded: must serialize finite values,
        // not "inf".
        metrics.histogram("d.empty_seconds");
    };
    obs::MetricsRegistry first, second;
    populate(first);
    populate(second);
    const std::string json = first.toJson();
    EXPECT_EQ(json, second.toJson());

    EXPECT_NE(json.find("\"b.count\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"a.ratio\": 2.5"), std::string::npos);
    EXPECT_NE(json.find("\"c.seconds\""), std::string::npos);
    EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"p95\""), std::string::npos);
    EXPECT_EQ(json.find("inf"), std::string::npos);
    EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(MetricsRegistry, RenderMentionsEveryInstrument)
{
    obs::MetricsRegistry metrics;
    metrics.counter("events.total").add(3);
    metrics.gauge("load.ratio").set(0.5);
    metrics.histogram("lat.seconds").record(0.25);
    const std::string text = metrics.render();
    EXPECT_NE(text.find("events.total"), std::string::npos);
    EXPECT_NE(text.find("load.ratio"), std::string::npos);
    EXPECT_NE(text.find("lat.seconds"), std::string::npos);
}

} // namespace
} // namespace cdma
