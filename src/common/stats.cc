#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace cdma {

void
Accumulator::add(double sample)
{
    ++count_;
    sum_ += sample;
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
}

double
Accumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

void
WeightedMean::add(double sample, double weight)
{
    CDMA_ASSERT(weight >= 0.0, "negative weight %f", weight);
    weighted_sum_ += sample * weight;
    weight_ += weight;
}

double
WeightedMean::mean() const
{
    return weight_ > 0.0 ? weighted_sum_ / weight_ : 0.0;
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    CDMA_ASSERT(hi > lo, "histogram range [%f, %f) is empty", lo, hi);
    CDMA_ASSERT(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double sample)
{
    const double span = hi_ - lo_;
    double pos = (sample - lo_) / span * static_cast<double>(counts_.size());
    auto index = static_cast<int64_t>(std::floor(pos));
    index = std::clamp<int64_t>(index, 0,
                                static_cast<int64_t>(counts_.size()) - 1);
    ++counts_[static_cast<size_t>(index)];
    ++total_;
}

double
Histogram::binLo(size_t index) const
{
    const double span = hi_ - lo_;
    return lo_ + span * static_cast<double>(index) /
        static_cast<double>(counts_.size());
}

std::string
Histogram::render(size_t width) const
{
    uint64_t peak = 1;
    for (uint64_t c : counts_)
        peak = std::max(peak, c);

    std::ostringstream out;
    for (size_t i = 0; i < counts_.size(); ++i) {
        const auto bar_len = static_cast<size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            static_cast<double>(width));
        out << "[" << binLo(i) << ", " << binLo(i + 1) << ") "
            << std::string(bar_len, '#') << " " << counts_[i] << "\n";
    }
    return out.str();
}

} // namespace cdma
