#include "sim/topology.hh"

#include <algorithm>
#include <queue>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace cdma {

const char *
nodeKindName(NodeKind kind)
{
    switch (kind) {
      case NodeKind::Gpu:        return "gpu";
      case NodeKind::PcieSwitch: return "pcie_switch";
      case NodeKind::HostDram:   return "host_dram";
      case NodeKind::NvmeSsd:    return "nvme_ssd";
    }
    panic("unreachable node kind %d", static_cast<int>(kind));
}

NodeId
Topology::addNode(NodeKind kind, std::string name)
{
    const NodeId id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(TopologyNode{kind, std::move(name)});
    adjacency_.emplace_back();
    return id;
}

LinkId
Topology::connect(NodeId a, NodeId b, std::string name,
                  const LinkProps &props)
{
    CDMA_ASSERT(a < nodes_.size() && b < nodes_.size(),
                "link %s endpoints out of range", name.c_str());
    CDMA_ASSERT(a != b, "link %s is a self-loop", name.c_str());
    CDMA_ASSERT(props.bytes_per_second > 0.0,
                "link %s has no bandwidth", name.c_str());
    const LinkId id = static_cast<LinkId>(links_.size());
    links_.push_back(TopologyLink{a, b, std::move(name), props});
    adjacency_[a].push_back(id);
    adjacency_[b].push_back(id);
    return id;
}

const TopologyNode &
Topology::node(NodeId id) const
{
    CDMA_ASSERT(id < nodes_.size(), "node %u out of range", id);
    return nodes_[id];
}

const TopologyLink &
Topology::link(LinkId id) const
{
    CDMA_ASSERT(id < links_.size(), "link %u out of range", id);
    return links_[id];
}

const std::vector<LinkId> &
Topology::linksAt(NodeId node) const
{
    CDMA_ASSERT(node < nodes_.size(), "node %u out of range", node);
    return adjacency_[node];
}

NodeId
Topology::firstNode(NodeKind kind) const
{
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id].kind == kind)
            return id;
    }
    panic("topology has no %s node", nodeKindName(kind));
}

std::vector<NodeId>
Topology::nodesOfKind(NodeKind kind) const
{
    std::vector<NodeId> out;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id].kind == kind)
            out.push_back(id);
    }
    return out;
}

Route
Topology::route(NodeId from, NodeId to) const
{
    CDMA_ASSERT(from < nodes_.size() && to < nodes_.size(),
                "route endpoints out of range");
    Route result;
    result.from = from;
    result.to = to;
    if (from == to)
        return result;

    // BFS; adjacency lists hold link ids in increasing order, so the
    // first discovery of a node is via the lowest-link-id shortest path.
    constexpr LinkId kNoLink = ~LinkId{0};
    std::vector<LinkId> via(nodes_.size(), kNoLink);
    std::vector<bool> seen(nodes_.size(), false);
    std::queue<NodeId> frontier;
    seen[from] = true;
    frontier.push(from);
    while (!frontier.empty() && !seen[to]) {
        const NodeId at = frontier.front();
        frontier.pop();
        for (LinkId link_id : adjacency_[at]) {
            const NodeId next = links_[link_id].peer(at);
            if (seen[next])
                continue;
            seen[next] = true;
            via[next] = link_id;
            frontier.push(next);
        }
    }
    CDMA_ASSERT(seen[to], "no route from %s to %s",
                nodes_[from].name.c_str(), nodes_[to].name.c_str());

    // Walk predecessors back from the destination, then reverse.
    NodeId at = to;
    while (at != from) {
        const TopologyLink &l = links_[via[at]];
        const NodeId prev = l.peer(at);
        result.hops.push_back(RouteHop{via[at], l.directionFrom(prev)});
        at = prev;
    }
    std::reverse(result.hops.begin(), result.hops.end());
    return result;
}

std::shared_ptr<const Topology>
Topology::pcieLink(double bytes_per_second, DuplexMode mode,
                   LinkArbiter arbiter)
{
    auto topo = std::make_shared<Topology>();
    const NodeId gpu = topo->addNode(NodeKind::Gpu, "gpu0");
    const NodeId host = topo->addNode(NodeKind::HostDram, "host");
    LinkProps props;
    props.bytes_per_second = bytes_per_second;
    props.mode = mode;
    props.arbiter = arbiter;
    topo->connect(gpu, host, "pcie", props);
    return topo;
}

LinkNetwork::LinkNetwork(EventQueue &queue, const Topology &topology)
    : queue_(queue), topology_(topology),
      injectors_(topology.linkCount(), nullptr)
{
    channels_.reserve(topology.linkCount());
    for (LinkId id = 0; id < topology.linkCount(); ++id) {
        const TopologyLink &l = topology.link(id);
        channels_.push_back(std::make_unique<DuplexChannel>(
            queue, l.name, l.props.bytes_per_second, l.props.mode,
            l.props.arbiter));
    }
}

DuplexChannel &
LinkNetwork::channel(LinkId link)
{
    CDMA_ASSERT(link < channels_.size(), "link %u out of range", link);
    return *channels_[link];
}

const DuplexChannel &
LinkNetwork::channel(LinkId link) const
{
    CDMA_ASSERT(link < channels_.size(), "link %u out of range", link);
    return *channels_[link];
}

void
LinkNetwork::setFaultInjector(LinkId link, sim::FaultInjector *injector)
{
    CDMA_ASSERT(link < injectors_.size(), "link %u out of range", link);
    injectors_[link] = injector;
}

sim::FaultInjector *
LinkNetwork::faultInjector(LinkId link) const
{
    CDMA_ASSERT(link < injectors_.size(), "link %u out of range", link);
    return injectors_[link];
}

void
LinkNetwork::submit(const Route &route, uint64_t bytes,
                    Completion on_done, SimTime extra_latency,
                    unsigned source)
{
    if (route.empty()) {
        // Degenerate same-node move: completes instantly (plus any
        // caller latency) without touching an edge.
        RouteGrant grant;
        grant.queued_at = queue_.now();
        grant.start = queue_.now();
        grant.end = queue_.now() + extra_latency;
        grant.service_seconds = extra_latency;
        if (on_done) {
            queue_.scheduleAt(grant.end,
                              [cb = std::move(on_done), grant]() {
                                  cb(grant);
                              });
        }
        return;
    }
    // The transit's shared state owns a copy of the route so the async
    // hop chain never depends on the caller's Route staying alive.
    auto transit = std::make_shared<Transit>();
    transit->route = route;
    transit->bytes = bytes;
    transit->source = source;
    transit->on_done = std::move(on_done);
    transit->grant.queued_at = queue_.now();
    submitHop(std::move(transit), 0, extra_latency);
}

void
LinkNetwork::submitHop(std::shared_ptr<Transit> transit, size_t hop,
                       SimTime extra_latency)
{
    const RouteHop &h = transit->route.hops[hop];
    const TopologyLink &l = topology_.link(h.link);
    const SimTime hop_latency = extra_latency + l.props.latency_seconds;
    // Hoist fields used as arguments: the completion lambda's capture
    // moves `transit`, and argument evaluation order is unspecified.
    const uint64_t bytes = transit->bytes;
    const unsigned source = transit->source;
    channel(h.link).submit(
        h.direction, bytes,
        [this, hop, transit = std::move(transit)](
            const DuplexChannel::Grant &g) mutable {
            RouteGrant &grant = transit->grant;
            if (hop == 0)
                grant.start = g.start;
            grant.end = g.end;
            grant.service_seconds += g.end - g.start;
            grant.opposing_wait += g.opposing_wait;
            grant.cross_source_wait += g.cross_source_wait;
            if (trace_ != nullptr) {
                traceHop(transit->route.hops[hop], g, transit->bytes,
                         transit->source);
            }
            if (hop + 1 < transit->route.hops.size()) {
                submitHop(std::move(transit), hop + 1, 0.0);
            } else if (transit->on_done) {
                transit->on_done(transit->grant);
            }
        },
        hop_latency, source);
}

void
LinkNetwork::setTrace(obs::TraceRecorder *trace)
{
    trace_ = trace;
    edge_tracks_.clear();
    if (trace_ == nullptr)
        return;
    // Register every edge's tracks up front so the track layout (and
    // thus pid/tid assignment) is a function of the topology alone, not
    // of which edges happened to carry traffic first.
    edge_tracks_.reserve(topology_.linkCount());
    for (LinkId id = 0; id < topology_.linkCount(); ++id) {
        const TopologyLink &l = topology_.link(id);
        edge_tracks_.push_back(std::array<uint32_t, 3>{
            trace_->track("edges", l.name + ":out"),
            trace_->track("edges", l.name + ":in"),
            trace_->counterTrack("edges", l.name + " utilization")});
    }
}

void
LinkNetwork::traceHop(const RouteHop &hop, const DuplexChannel::Grant &g,
                      uint64_t bytes, unsigned source)
{
    const auto &tracks = edge_tracks_[hop.link];
    const bool outbound = hop.direction == DuplexChannel::Direction::Out;
    trace_->span(tracks[outbound ? 0 : 1], "wire", g.start, g.end,
                 obs::TraceArgs{
                     {"bytes", bytes},
                     {"source", source},
                     {"queue_wait_us", (g.start - g.queued_at) * 1e6},
                     {"opposing_wait_us", g.opposing_wait * 1e6},
                     {"cross_source_wait_us", g.cross_source_wait * 1e6},
                 });
    trace_->counter(tracks[2], g.end, utilization(hop.link));
}

void
LinkNetwork::recordTraceTotals()
{
    if (trace_ == nullptr)
        return;
    for (LinkId id = 0; id < topology_.linkCount(); ++id) {
        const TopologyLink &l = topology_.link(id);
        trace_->setTotal("wire_bytes." + l.name + ":out",
                         edgeBytes(id, DuplexChannel::Direction::Out));
        trace_->setTotal("wire_bytes." + l.name + ":in",
                         edgeBytes(id, DuplexChannel::Direction::In));
    }
}

uint64_t
LinkNetwork::edgeBytes(LinkId link,
                       DuplexChannel::Direction direction) const
{
    return channel(link).totalBytes(direction);
}

double
LinkNetwork::utilization(LinkId link) const
{
    const DuplexChannel &ch = channel(link);
    const SimTime horizon = std::max(queue_.now(), ch.lastDrain());
    return horizon > 0.0 ? ch.occupiedSeconds() / horizon : 0.0;
}

} // namespace cdma
