/**
 * @file
 * Fleet simulator tests: the shared switch uplink is where data-parallel
 * scaling hurts, so the per-GPU contention-stall fraction must be zero
 * for a fleet of one and strictly increasing in fleet size at fixed
 * uplink bandwidth, while every graph cut conserves bytes.
 */

#include <gtest/gtest.h>

#include "cdma/fleet_sim.hh"

namespace cdma {
namespace {

using Direction = DuplexChannel::Direction;

FleetSpec
smallSpec(unsigned gpus)
{
    FleetSpec spec;
    spec.gpu_count = gpus;
    spec.gpu_link_bandwidth = 12.0e9;
    spec.uplink_bandwidth = 12.0e9; // fixed while N scales
    spec.offload_raw_bytes = 16ull << 20;
    spec.offload_ratio = 2.0;
    spec.prefetch_raw_bytes = 0;
    spec.shard_raw_bytes = 2ull << 20;
    return spec;
}

TEST(FleetTopology, BuildsTheStar)
{
    const FleetTopology fleet = buildFleetTopology(smallSpec(4));
    EXPECT_EQ(fleet.gpus.size(), 4u);
    EXPECT_EQ(fleet.gpu_links.size(), 4u);
    // 4 GPUs + switch + host + ssd, 4 legs + uplink + nvme.
    EXPECT_EQ(fleet.graph->nodeCount(), 7u);
    EXPECT_EQ(fleet.graph->linkCount(), 6u);
    // Every GPU's host route crosses its own leg then the shared uplink.
    for (unsigned g = 0; g < 4; ++g) {
        const Route route =
            fleet.graph->route(fleet.gpus[g], fleet.host);
        ASSERT_EQ(route.hopCount(), 2u);
        EXPECT_EQ(route.hops[0].link, fleet.gpu_links[g]);
        EXPECT_EQ(route.hops[1].link, fleet.uplink);
        EXPECT_EQ(route.hops[1].direction, Direction::Out);
    }
    EXPECT_TRUE(fleet.nvlinks.empty());
}

TEST(FleetTopology, NvlinkRingConnectsPeers)
{
    FleetSpec spec = smallSpec(4);
    spec.nvlink_bandwidth = 50.0e9;
    const FleetTopology fleet = buildFleetTopology(spec);
    EXPECT_EQ(fleet.nvlinks.size(), 4u); // ring over 4 GPUs
    // Peer route rides the NVLink edge, not the switch.
    const Route peer = fleet.graph->route(fleet.gpus[0], fleet.gpus[1]);
    ASSERT_EQ(peer.hopCount(), 1u);
    EXPECT_EQ(peer.hops[0].link, fleet.nvlinks[0]);
}

TEST(FleetSimulator, SingleGpuPaysNoContention)
{
    const FleetSimulator sim(smallSpec(1));
    const FleetResult result = sim.run();
    ASSERT_EQ(result.gpus.size(), 1u);
    EXPECT_NEAR(result.gpus[0].uplink_wait_seconds, 0.0, 1e-12);
    EXPECT_NEAR(result.gpus[0].contention_stall_fraction, 0.0, 1e-12);
    EXPECT_GT(result.makespan_seconds, 0.0);
}

TEST(FleetSimulator, ContentionStrictlyIncreasesWithFleetSize)
{
    double previous = -1.0;
    double previous_makespan = 0.0;
    for (unsigned gpus : {1u, 2u, 4u, 8u}) {
        const FleetResult result = FleetSimulator(smallSpec(gpus)).run();
        EXPECT_GT(result.mean_contention_stall_fraction, previous)
            << "fleet of " << gpus;
        // More ranks through the same uplink also stretch the makespan.
        EXPECT_GT(result.makespan_seconds, previous_makespan)
            << "fleet of " << gpus;
        previous = result.mean_contention_stall_fraction;
        previous_makespan = result.makespan_seconds;
    }
}

TEST(FleetSimulator, UplinkConservesFleetBytes)
{
    const unsigned gpus = 4;
    const FleetSpec spec = smallSpec(gpus);
    const FleetSimulator sim(spec);
    const FleetResult result = sim.run();

    // Per-GPU wire bytes: uniform shards, each store-raw-floored.
    uint64_t per_gpu = 0;
    for (const ShardTransfer &shard : TransferEngine::uniformShardTrain(
             spec.offload_raw_bytes, spec.offload_ratio,
             spec.shard_raw_bytes)) {
        per_gpu += shard.wire_bytes;
    }
    ASSERT_GT(per_gpu, 0u);

    const FleetTopology &fleet = sim.topology();
    // Each leg carries its GPU's bytes; the uplink cut sees them all.
    for (unsigned g = 0; g < gpus; ++g) {
        EXPECT_EQ(result.edges[fleet.gpu_links[g]].out_bytes, per_gpu);
        EXPECT_EQ(result.edges[fleet.gpu_links[g]].in_bytes, 0u);
    }
    EXPECT_EQ(result.edges[fleet.uplink].out_bytes, gpus * per_gpu);
    EXPECT_EQ(result.edges[fleet.ssd_link].out_bytes, 0u);
}

TEST(FleetSimulator, SaturatedUplinkApproachesFullUtilization)
{
    // Per-GPU legs are fast; the uplink is the bottleneck, so with 4
    // ranks it should be busy nearly wall-to-wall.
    FleetSpec spec = smallSpec(4);
    spec.gpu_link_bandwidth = 48.0e9;
    const FleetResult result = FleetSimulator(spec).run();
    EXPECT_GT(result.uplink_utilization, 0.9);
    EXPECT_LE(result.uplink_utilization, 1.0 + 1e-12);
}

TEST(FleetSimulator, DuplexWorkloadsDrainBothDirections)
{
    FleetSpec spec = smallSpec(2);
    spec.prefetch_raw_bytes = 8ull << 20;
    spec.prefetch_ratio = 2.0;
    const FleetSimulator sim(spec);
    const FleetResult result = sim.run();
    const FleetTopology &fleet = sim.topology();
    EXPECT_GT(result.edges[fleet.uplink].out_bytes, 0u);
    EXPECT_GT(result.edges[fleet.uplink].in_bytes, 0u);
    for (const FleetGpuResult &gpu : result.gpus) {
        EXPECT_GT(gpu.timing.offload.shard_count, 0u);
        EXPECT_GT(gpu.timing.prefetch.shard_count, 0u);
    }
}

TEST(FleetSimulator, RunsAreDeterministic)
{
    const FleetSimulator sim(smallSpec(4));
    const FleetResult a = sim.run();
    const FleetResult b = sim.run();
    EXPECT_DOUBLE_EQ(a.makespan_seconds, b.makespan_seconds);
    EXPECT_DOUBLE_EQ(a.mean_contention_stall_fraction,
                     b.mean_contention_stall_fraction);
    for (size_t g = 0; g < a.gpus.size(); ++g) {
        EXPECT_DOUBLE_EQ(a.gpus[g].uplink_wait_seconds,
                         b.gpus[g].uplink_wait_seconds);
    }
}

} // namespace
} // namespace cdma
