#!/usr/bin/env python3
"""Validate BENCH_kernel_throughput.json for the CI bench smoke job.

The perf-trajectory tooling keys on three things per kernel benchmark:
the algorithm (from the benchmark family name), the activation density
(the benchmark argument), and the achieved throughput
(``bytes_per_second``, reported as GB/s). A refactor that renames a
family, drops the density argument, or stops calling
``SetBytesProcessed`` silently breaks the trajectory; this script fails
the job instead.

Usage: bench/check_bench_json.py [path/to/BENCH_kernel_throughput.json]
"""

import json
import re
import sys

# Families whose presence (at >= 1 density) the trajectory depends on,
# and which must report bytes_per_second. The parallel/lane variants are
# validated when present but are optional: a reduced smoke run may
# filter to the serial kernels.
REQUIRED_FAMILIES = ("BM_ZvcCompress", "BM_RleCompress", "BM_DeflateCompress")
NAME_RE = re.compile(r"^BM_([A-Za-z]+?)(Compress|Decompress|CycleModel|"
                     r"EngineCycleModel)?(Parallel)?(/\d+)*(/[a-z_]+)*$")


def fail(message: str) -> None:
    print(f"check_bench_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_kernel_throughput.json"
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except FileNotFoundError:
        fail(f"{path} is missing (did the bench binary run?)")
    except json.JSONDecodeError as error:
        fail(f"{path} is not valid JSON: {error}")

    benchmarks = report.get("benchmarks")
    if not benchmarks:
        fail(f"{path} has no 'benchmarks' array (or it is empty)")

    seen_families = set()
    for entry in benchmarks:
        name = entry.get("name")
        if not name:
            fail(f"benchmark entry without a name: {entry}")
        if entry.get("run_type") == "aggregate":
            continue
        match = NAME_RE.match(name)
        if not match:
            fail(f"benchmark name '{name}' does not parse as "
                 "BM_<Algorithm><Kind>[/density[/lanes]]")
        family = name.split("/")[0]
        seen_families.add(family)
        # Every throughput kernel must report bytes_per_second (that is
        # the GB/s column of docs/performance.md); the cycle-model
        # benchmark reports a modeled-rate counter instead.
        if "CycleModel" not in family:
            bps = entry.get("bytes_per_second")
            if not isinstance(bps, (int, float)) or bps <= 0:
                fail(f"'{name}' lacks a positive bytes_per_second "
                     f"(got {bps!r})")
        # Compression kernels encode density as the first argument.
        if "Compress" in family and "/" not in name:
            fail(f"'{name}' is missing its density argument")

    missing = [f for f in REQUIRED_FAMILIES if f not in seen_families]
    if missing:
        fail(f"required benchmark families absent: {', '.join(missing)}")

    summary = []
    for entry in benchmarks:
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name", "")
        family = name.split("/")[0]
        bps = entry.get("bytes_per_second")
        if (family in REQUIRED_FAMILIES and "/" in name
                and isinstance(bps, (int, float))):
            density = name.split("/")[1]
            summary.append(f"{family[3:]} d{density}: {bps / 1e9:.2f} GB/s")
    print(f"check_bench_json: OK ({len(benchmarks)} entries, "
          f"{len(seen_families)} families)")
    for line in summary:
        print(f"  {line}")


if __name__ == "__main__":
    main()
