#include "dnn/loss.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace cdma {

double
SoftmaxCrossEntropy::forward(const Tensor4D &logits,
                             const std::vector<int> &labels)
{
    const Shape4D &shape = logits.shape();
    CDMA_ASSERT(shape.h == 1 && shape.w == 1,
                "softmax expects (N, classes, 1, 1), got %s",
                shape.str().c_str());
    CDMA_ASSERT(labels.size() == static_cast<size_t>(shape.n),
                "label count %zu != batch %lld", labels.size(),
                static_cast<long long>(shape.n));

    labels_ = labels;
    probabilities_ = Tensor4D(shape);
    predictions_.assign(static_cast<size_t>(shape.n), 0);

    double total_loss = 0.0;
    int correct = 0;
    for (int64_t n = 0; n < shape.n; ++n) {
        // Stabilized softmax: subtract the row max before exponentiating.
        float row_max = logits.at(n, 0, 0, 0);
        int argmax = 0;
        for (int64_t c = 1; c < shape.c; ++c) {
            const float v = logits.at(n, c, 0, 0);
            if (v > row_max) {
                row_max = v;
                argmax = static_cast<int>(c);
            }
        }
        predictions_[static_cast<size_t>(n)] = argmax;
        if (argmax == labels[static_cast<size_t>(n)])
            ++correct;

        double denom = 0.0;
        for (int64_t c = 0; c < shape.c; ++c)
            denom += std::exp(
                static_cast<double>(logits.at(n, c, 0, 0) - row_max));
        for (int64_t c = 0; c < shape.c; ++c) {
            probabilities_.at(n, c, 0, 0) = static_cast<float>(
                std::exp(static_cast<double>(
                    logits.at(n, c, 0, 0) - row_max)) / denom);
        }
        const int label = labels[static_cast<size_t>(n)];
        CDMA_ASSERT(label >= 0 && label < shape.c,
                    "label %d outside [0, %lld)", label,
                    static_cast<long long>(shape.c));
        const double p = std::max<double>(
            probabilities_.at(n, label, 0, 0), 1e-12);
        total_loss += -std::log(p);
    }
    accuracy_ = static_cast<double>(correct) /
        static_cast<double>(shape.n);
    return total_loss / static_cast<double>(shape.n);
}

Tensor4D
SoftmaxCrossEntropy::backward() const
{
    const Shape4D &shape = probabilities_.shape();
    Tensor4D grad(shape);
    const float inv_batch = 1.0f / static_cast<float>(shape.n);
    for (int64_t n = 0; n < shape.n; ++n) {
        for (int64_t c = 0; c < shape.c; ++c) {
            float g = probabilities_.at(n, c, 0, 0);
            if (c == labels_[static_cast<size_t>(n)])
                g -= 1.0f;
            grad.at(n, c, 0, 0) = g * inv_batch;
        }
    }
    return grad;
}

} // namespace cdma
