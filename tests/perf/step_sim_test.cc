/**
 * @file
 * Integration tests for the training-step DES: the ordering relations the
 * paper's evaluation depends on must hold (oracle <= cDMA <= vDNN; vDNN
 * overhead grows as compute shrinks; compression recovers the gap).
 */

#include <gtest/gtest.h>

#include "perf/step_sim.hh"

namespace cdma {
namespace {

struct Rig {
    NetworkDesc net;
    VdnnMemoryManager manager;
    CdmaEngine engine;
    PerfModel perf;

    explicit Rig(NetworkDesc n, Algorithm algorithm = Algorithm::Zvc)
        : net(std::move(n)), manager(net, net.default_batch),
          engine([&] {
              CdmaConfig config;
              config.compression.algorithm = algorithm;
              return config;
          }()),
          perf()
    {
    }

    StepSimulator sim(CudnnVersion v = CudnnVersion::V5) const
    {
        return {manager, engine, perf, v};
    }

    std::vector<double> uniformRatios(double r) const
    {
        return std::vector<double>(net.layers.size(), r);
    }
};

TEST(StepSim, OracleEqualsComputeSum)
{
    Rig rig(alexNetDesc());
    const StepResult oracle = rig.sim().run(StepMode::Oracle);
    EXPECT_DOUBLE_EQ(oracle.total_seconds, oracle.compute_seconds);
    EXPECT_DOUBLE_EQ(oracle.stall_seconds, 0.0);
}

TEST(StepSim, VdnnNeverFasterThanOracle)
{
    for (const auto &net : allNetworkDescs()) {
        Rig rig(net);
        const StepResult vdnn = rig.sim().run(StepMode::Vdnn);
        const StepResult oracle = rig.sim().run(StepMode::Oracle);
        EXPECT_GE(vdnn.total_seconds, oracle.total_seconds - 1e-12)
            << net.name;
    }
}

TEST(StepSim, CdmaBetweenOracleAndVdnn)
{
    for (const auto &net : allNetworkDescs()) {
        Rig rig(net);
        const auto ratios = rig.uniformRatios(2.6);
        const StepResult vdnn = rig.sim().run(StepMode::Vdnn);
        const StepResult cdma = rig.sim().run(StepMode::Cdma, ratios);
        const StepResult oracle = rig.sim().run(StepMode::Oracle);
        EXPECT_LE(cdma.total_seconds, vdnn.total_seconds + 1e-12)
            << net.name;
        EXPECT_GE(cdma.total_seconds, oracle.total_seconds - 1e-12)
            << net.name;
    }
}

TEST(StepSim, InfiniteCompressionApproachesOracle)
{
    Rig rig(alexNetDesc());
    // Ratio at the cap limit: transfers are ~12.5x smaller. A small
    // residual remains because the raw input-image batch itself never
    // compresses (it is not a ReLU output).
    const auto ratios = rig.uniformRatios(12.5);
    const StepResult cdma = rig.sim().run(StepMode::Cdma, ratios);
    const StepResult oracle = rig.sim().run(StepMode::Oracle);
    EXPECT_LT((cdma.total_seconds - oracle.total_seconds) /
                  oracle.total_seconds,
              0.10);
}

TEST(StepSim, VdnnOverheadGrowsWithCudnnVersion)
{
    // Figure 3(b): as compute gets faster, the fixed PCIe traffic hurts
    // relatively more.
    Rig rig(overFeatDesc());
    double prev_overhead = -1.0;
    for (CudnnVersion v : kAllCudnnVersions) {
        const StepResult vdnn = rig.sim(v).run(StepMode::Vdnn);
        const StepResult oracle = rig.sim(v).run(StepMode::Oracle);
        const double overhead =
            vdnn.total_seconds / oracle.total_seconds;
        EXPECT_GE(overhead, prev_overhead - 1e-9);
        prev_overhead = overhead;
    }
    EXPECT_GT(prev_overhead, 1.05);
}

TEST(StepSim, BaselineMatchesOracleTime)
{
    Rig rig(ninDesc());
    const StepResult baseline = rig.sim().run(StepMode::Baseline);
    const StepResult oracle = rig.sim().run(StepMode::Oracle);
    EXPECT_DOUBLE_EQ(baseline.total_seconds, oracle.total_seconds);
}

TEST(StepSim, TransferAccounting)
{
    Rig rig(squeezeNetDesc());
    const auto ratios = rig.uniformRatios(4.0);
    const StepResult vdnn = rig.sim().run(StepMode::Vdnn);
    const StepResult cdma = rig.sim().run(StepMode::Cdma, ratios);
    EXPECT_EQ(vdnn.raw_transfer_bytes,
              rig.manager.totalOffloadBytes());
    EXPECT_EQ(vdnn.raw_transfer_bytes, vdnn.wire_transfer_bytes);
    // Every offload compresses 4x except the raw input-image batch.
    const double input_bytes = static_cast<double>(
        rig.manager.offloadSchedule().front().bytes);
    const double expected_wire =
        (static_cast<double>(cdma.raw_transfer_bytes) - input_bytes) /
            4.0 +
        input_bytes;
    EXPECT_NEAR(static_cast<double>(cdma.wire_transfer_bytes),
                expected_wire,
                static_cast<double>(rig.net.layers.size() + 1));
}

TEST(StepSim, StallAccountingConsistent)
{
    Rig rig(googLeNetDesc());
    const StepResult vdnn = rig.sim().run(StepMode::Vdnn);
    EXPECT_NEAR(vdnn.stall_seconds,
                vdnn.total_seconds - vdnn.compute_seconds, 1e-9);
    EXPECT_GE(vdnn.stall_seconds, -1e-12);
    // Per-layer stalls sum to no more than the total stall.
    double layer_stalls = 0.0;
    for (const auto &layer : vdnn.layers)
        layer_stalls += layer.forward_stall + layer.backward_stall;
    EXPECT_LE(layer_stalls, vdnn.stall_seconds + 1e-6);
}

TEST(StepSim, PcieUtilizationBounded)
{
    Rig rig(vggDesc());
    const StepResult vdnn = rig.sim().run(StepMode::Vdnn);
    EXPECT_GT(vdnn.pcie_utilization, 0.0);
    EXPECT_LE(vdnn.pcie_utilization, 1.0 + 1e-9);
}

TEST(StepSim, HeadlineCdmaSpeedupInPaperRange)
{
    // The paper's headline: cDMA-ZV improves vDNN performance by ~32% on
    // average (max 61%) at cuDNN v5 with ~2.6x compression. With uniform
    // 2.6x ratios our six-network average speedup should land in the
    // same regime.
    double total_speedup = 0.0;
    for (const auto &net : allNetworkDescs()) {
        Rig rig(net);
        const auto ratios = rig.uniformRatios(2.6);
        const StepResult vdnn = rig.sim().run(StepMode::Vdnn);
        const StepResult cdma = rig.sim().run(StepMode::Cdma, ratios);
        total_speedup += cdma.speedupOver(vdnn);
    }
    const double average = total_speedup / 6.0;
    EXPECT_GT(average, 1.05);
    EXPECT_LT(average, 1.75);
}

/** Rig whose engine takes an explicit transfer configuration. */
static StepResult
runWithTransferConfig(const NetworkDesc &net, unsigned staging_buffers,
                      uint64_t prefetch_lookahead_bytes)
{
    VdnnMemoryManager manager(net, net.default_batch);
    CdmaConfig config;
    config.transfer.staging_buffers = staging_buffers;
    config.transfer.prefetch_lookahead_bytes = prefetch_lookahead_bytes;
    const CdmaEngine engine(config);
    const PerfModel perf;
    const StepSimulator sim(manager, engine, perf, CudnnVersion::V5);
    return sim.run(StepMode::Vdnn);
}

TEST(StepSim, CapacityLookaheadDegeneratesToFixedStagingLookahead)
{
    // A budget sized to admit exactly the map the fixed
    // staging_buffers-1 lookahead would issue must reproduce the
    // pre-capacity timeline bit for bit: the capacity-aware path is a
    // strict generalization, with the old behavior as its degenerate
    // case.
    const NetworkDesc net = alexNetDesc();
    const VdnnMemoryManager manager(net, net.default_batch);
    const auto &offloads = manager.offloadSchedule();
    const size_t L = net.layers.size();
    ASSERT_GE(L, 3u);
    // Under OffloadPolicy::All, scanning backward from L-2 the first
    // lookahead candidate is layer L-2's map.
    uint64_t head_map_bytes = 0;
    for (const auto &op : offloads) {
        if (op.layer_index == L - 2)
            head_map_bytes = op.bytes;
    }
    ASSERT_GT(head_map_bytes, 0u);

    const StepResult fixed = runWithTransferConfig(net, 2, 0);
    const StepResult budgeted =
        runWithTransferConfig(net, 2, head_map_bytes);
    EXPECT_NEAR(fixed.total_seconds, budgeted.total_seconds, 1e-9);
    EXPECT_NEAR(fixed.backward_seconds, budgeted.backward_seconds, 1e-9);
    EXPECT_NEAR(fixed.stall_seconds, budgeted.stall_seconds, 1e-9);

    // And a budget too small for any map degenerates to no lookahead
    // at all (staging_buffers = 1 with capacity unmodeled).
    const StepResult none = runWithTransferConfig(net, 1, 0);
    const StepResult starved = runWithTransferConfig(net, 2, 1);
    EXPECT_NEAR(none.total_seconds, starved.total_seconds, 1e-9);
    EXPECT_NEAR(none.stall_seconds, starved.stall_seconds, 1e-9);
}

TEST(StepSim, FreedWorkingSetBudgetStaysConsistent)
{
    // The natural budget — everything vDNN freed during forward
    // (MemoryFootprint::freedBytes()) — admits far more lookahead than
    // the fixed double-buffer depth. The simulated step must stay
    // self-consistent, and the head-of-line cost of the deeper FIFO
    // (lookahead prefetches queue ahead of later urgent ones, so the
    // boundary layer can wait longer for its own map) must stay
    // bounded: the extra inbound-link utilization is paid for with at
    // most a modest step-time penalty, never a blowup.
    for (const auto &net : {alexNetDesc(), squeezeNetDesc()}) {
        const VdnnMemoryManager manager(net, net.default_batch);
        const uint64_t freed = manager.footprint().freedBytes();
        ASSERT_GT(freed, 0u) << net.name;

        const StepResult deep = runWithTransferConfig(net, 2, freed);
        const StepResult none = runWithTransferConfig(net, 1, 0);
        EXPECT_NEAR(deep.stall_seconds,
                    deep.total_seconds - deep.compute_seconds, 1e-9)
            << net.name;
        EXPECT_GE(deep.stall_seconds, -1e-12) << net.name;
        EXPECT_DOUBLE_EQ(deep.compute_seconds, none.compute_seconds)
            << net.name;
        EXPECT_EQ(deep.raw_transfer_bytes, none.raw_transfer_bytes)
            << net.name;
        EXPECT_LE(deep.total_seconds, none.total_seconds * 1.25)
            << net.name;
    }
}

TEST(StepSimDeathTest, CdmaModeRequiresRatios)
{
    Rig rig(alexNetDesc());
    EXPECT_DEATH(rig.sim().run(StepMode::Cdma), "ratio");
}

} // namespace
} // namespace cdma
