#include "dnn/pool.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace cdma {

Pool2D::Pool2D(std::string name, const PoolSpec &spec)
    : Layer(std::move(name)), spec_(spec)
{
    CDMA_ASSERT(spec.kernel > 0 && spec.stride > 0,
                "invalid pool spec for %s", this->name().c_str());
}

Shape4D
Pool2D::outputShape(const Shape4D &input) const
{
    // Ceiling-mode pooling (Caffe's default): partial windows at the
    // right/bottom edges still produce an output.
    const int64_t out_h =
        (input.h - spec_.kernel + spec_.stride - 1) / spec_.stride + 1;
    const int64_t out_w =
        (input.w - spec_.kernel + spec_.stride - 1) / spec_.stride + 1;
    CDMA_ASSERT(out_h > 0 && out_w > 0,
                "pool %s output collapses to zero for input %s",
                name().c_str(), input.str().c_str());
    return {input.n, input.c, out_h, out_w};
}

uint64_t
Pool2D::forwardMacsPerImage(const Shape4D &input) const
{
    Shape4D one = input;
    one.n = 1;
    const Shape4D out = outputShape(one);
    return static_cast<uint64_t>(out.elements()) *
        static_cast<uint64_t>(spec_.kernel * spec_.kernel);
}

Tensor4D
Pool2D::forward(const Tensor4D &input)
{
    cached_input_shape_ = input.shape();
    const Shape4D out_shape = outputShape(input.shape());
    Tensor4D output(out_shape);
    if (spec_.mode == PoolMode::Max) {
        argmax_.assign(static_cast<size_t>(out_shape.elements()), -1);
    }

    int64_t out_index = 0;
    for (int64_t n = 0; n < out_shape.n; ++n) {
        for (int64_t c = 0; c < out_shape.c; ++c) {
            for (int64_t oh = 0; oh < out_shape.h; ++oh) {
                for (int64_t ow = 0; ow < out_shape.w; ++ow) {
                    const int64_t h0 = oh * spec_.stride;
                    const int64_t w0 = ow * spec_.stride;
                    const int64_t h1 =
                        std::min(h0 + spec_.kernel, input.shape().h);
                    const int64_t w1 =
                        std::min(w0 + spec_.kernel, input.shape().w);
                    if (spec_.mode == PoolMode::Max) {
                        float best =
                            -std::numeric_limits<float>::infinity();
                        int64_t best_off = -1;
                        for (int64_t h = h0; h < h1; ++h) {
                            for (int64_t w = w0; w < w1; ++w) {
                                const float v = input.at(n, c, h, w);
                                if (v > best) {
                                    best = v;
                                    best_off = linearIndex(
                                        input.shape(), input.layout(),
                                        n, c, h, w);
                                }
                            }
                        }
                        output.at(n, c, oh, ow) = best;
                        argmax_[static_cast<size_t>(out_index)] = best_off;
                    } else {
                        float sum = 0.0f;
                        for (int64_t h = h0; h < h1; ++h)
                            for (int64_t w = w0; w < w1; ++w)
                                sum += input.at(n, c, h, w);
                        const auto window = static_cast<float>(
                            (h1 - h0) * (w1 - w0));
                        output.at(n, c, oh, ow) = sum / window;
                    }
                    ++out_index;
                }
            }
        }
    }
    return output;
}

Tensor4D
Pool2D::backward(const Tensor4D &output_grad)
{
    Tensor4D input_grad(cached_input_shape_);
    const Shape4D &out_shape = output_grad.shape();

    int64_t out_index = 0;
    for (int64_t n = 0; n < out_shape.n; ++n) {
        for (int64_t c = 0; c < out_shape.c; ++c) {
            for (int64_t oh = 0; oh < out_shape.h; ++oh) {
                for (int64_t ow = 0; ow < out_shape.w; ++ow) {
                    const float dy = output_grad.at(n, c, oh, ow);
                    if (spec_.mode == PoolMode::Max) {
                        const int64_t off =
                            argmax_[static_cast<size_t>(out_index)];
                        if (off >= 0) {
                            input_grad.data()[static_cast<size_t>(off)] +=
                                dy;
                        }
                    } else {
                        const int64_t h0 = oh * spec_.stride;
                        const int64_t w0 = ow * spec_.stride;
                        const int64_t h1 = std::min(
                            h0 + spec_.kernel, cached_input_shape_.h);
                        const int64_t w1 = std::min(
                            w0 + spec_.kernel, cached_input_shape_.w);
                        const auto window = static_cast<float>(
                            (h1 - h0) * (w1 - w0));
                        for (int64_t h = h0; h < h1; ++h) {
                            for (int64_t w = w0; w < w1; ++w) {
                                input_grad.at(n, c, h, w) += dy / window;
                            }
                        }
                    }
                    ++out_index;
                }
            }
        }
    }
    return input_grad;
}

} // namespace cdma
