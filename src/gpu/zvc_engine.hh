/**
 * @file
 * Cycle-accurate functional model of the ZVC (de)compression engine
 * micro-architecture of Figure 10: a three-stage compression pipeline
 * processing one 32 B sector (8 words) per cycle — zero-compare + mask
 * formation, prefix-sum-driven bubble-collapsing shift, and
 * shift-and-append into the 128 B line buffer — and a two-stage
 * decompression pipeline expanding one mask segment per cycle. Latency
 * per 128 B line: 6 cycles to compress (4 sectors through 3 stages),
 * 2 cycles of additional latency to decompress. The model executes the
 * algorithm sector-by-sector and counts cycles, so both the output bytes
 * and the timing are checkable against ZvcCompressor and the paper's
 * numbers.
 */

#ifndef CDMA_GPU_ZVC_ENGINE_HH
#define CDMA_GPU_ZVC_ENGINE_HH

#include <cstdint>
#include <span>
#include <vector>

namespace cdma {

/** Result of streaming one line (or buffer) through the engine model. */
struct ZvcEngineResult {
    std::vector<uint8_t> payload; ///< compressed bytes (mask + non-zeros)
    uint64_t cycles = 0;          ///< pipeline cycles consumed
    uint64_t sectors = 0;         ///< 32 B sectors processed
};

/** Cycle model of the hardware ZVC engine. */
class ZvcEngineModel
{
  public:
    /** Bytes per pipeline beat (the memory-controller datapath width). */
    static constexpr uint64_t kSectorBytes = 32;
    /** Bytes per compression line (one cache line). */
    static constexpr uint64_t kLineBytes = 128;
    /** Compression pipeline depth (Figure 10a). */
    static constexpr uint64_t kCompressStages = 3;
    /** Extra decompression latency per line (Figure 10b). */
    static constexpr uint64_t kDecompressLatency = 2;

    /**
     * Compress @p input (padded internally to whole sectors with zeros is
     * NOT done — callers pass sector-aligned data as the hardware sees
     * full bursts). Returns payload plus cycle count:
     * cycles = sectors + (pipeline depth - 1) fill.
     */
    ZvcEngineResult compress(std::span<const uint8_t> input) const;

    /**
     * Decompress an engine payload back into @p original_bytes bytes.
     * cycles = output sectors + decompress latency.
     */
    ZvcEngineResult decompress(std::span<const uint8_t> payload,
                               uint64_t original_bytes) const;

    /** Cycles to compress @p bytes of sector-aligned data. */
    static uint64_t compressCycles(uint64_t bytes);

    /** Sustained compression throughput in bytes/second at @p clock_hz. */
    static double throughput(double clock_hz);
};

} // namespace cdma

#endif // CDMA_GPU_ZVC_ENGINE_HH
