/**
 * @file
 * Parallel window fan-out over any windowed Compressor — the software
 * analogue of the paper's replicated compression/decompression pipelines
 * (Section V-B provisions enough CPE/DPE replicas that the ZVC engine
 * matches the DMA link rate). Windows are independent by construction, so
 * a buffer's window list is partitioned into contiguous shards, each lane
 * compresses its shard into a privately reserved payload via the
 * streaming compressWindowInto() API, and the shards are stitched with
 * pre-sized bulk copies. The result is bit-identical to the serial
 * Compressor::compress() on every input.
 */

#ifndef CDMA_COMPRESS_PARALLEL_HH
#define CDMA_COMPRESS_PARALLEL_HH

#include <functional>
#include <memory>

#include "common/thread_pool.hh"
#include "compress/compressor.hh"

namespace cdma {

namespace obs {
class HistogramMetric;
class MetricsRegistry;
} // namespace obs

/**
 * One compressed shard of a sharded compression: a contiguous group of
 * windows with its payload and framing, in window order. Concatenating
 * the shards of one input reproduces Compressor::compress() exactly.
 */
struct CompressedShard {
    uint64_t index = 0;        ///< shard position in the stream
    uint64_t first_window = 0; ///< absolute index of the first window
    uint64_t raw_bytes = 0;    ///< uncompressed bytes this shard covers
    ByteVec payload;           ///< concatenated window payloads
    std::vector<uint32_t> window_sizes; ///< per-window compressed sizes
    /**
     * CRC-32C of the payload, computed on the compress side (in the
     * worker lanes, off the per-window hot path) and carried with the
     * shard across the spill arena so the prefetch side can verify the
     * bytes that actually crossed the wire before expanding them.
     */
    uint32_t crc32c = 0;
    /**
     * True when the shard was degraded to raw framing (payload is the
     * uncompressed source bytes, window_sizes are the raw sizes) after
     * repeated transfer faults — the fault-tolerance analogue of the
     * store-raw fallback.
     */
    bool raw_framed = false;
    /**
     * Codec that framed the payload. Stamped at compress time and
     * carried through the spill arena so the prefetch side dispatches
     * the matching decoder per shard — shards of one spill may differ
     * when the adaptive policy switches codecs between offloads.
     */
    Codec codec = Codec::Zvc;

    /**
     * Bytes this shard puts on the wire under the store-raw fallback
     * (every window transfers as min(compressed, raw) bytes).
     * @param window_bytes Compression window the shard was cut with.
     */
    uint64_t effectiveBytes(uint64_t window_bytes) const;
};

/** Multi-threaded wrapper around a serial windowed compressor. */
class ParallelCompressor
{
  public:
    /**
     * @param algorithm Codec replicated across the lanes.
     * @param window_bytes Compression window.
     * @param lanes Worker lanes (including the caller). 0 = one per
     *        hardware thread; 1 = serial (no pool, no synchronization).
     * @param kernels Kernel backend for the codec's hot ops; nullptr =
     *        runtime dispatch. The codec object is shared by every lane,
     *        so all lane workers inherit this single dispatch decision.
     */
    explicit ParallelCompressor(
        Algorithm algorithm,
        uint64_t window_bytes = Compressor::kDefaultWindowBytes,
        unsigned lanes = 0, const KernelOps *kernels = nullptr);

    /** Wrap an existing codec (must be stateless/thread-safe, as all
     *  in-tree codecs are). */
    ParallelCompressor(std::unique_ptr<Compressor> codec, unsigned lanes);

    /** Algorithm tag of the underlying codec. */
    std::string name() const { return codec_->name(); }

    /** Kernel backend name the lanes compress with ("scalar", "avx2"). */
    const char *backendName() const;

    /** Compression window in bytes. */
    uint64_t windowBytes() const { return codec_->windowBytes(); }

    /** Execution lanes. */
    unsigned lanes() const { return pool_ ? pool_->lanes() : 1; }

    /** The wrapped serial codec. */
    const Compressor &serial() const { return *codec_; }

    /** The codec tag stamped on every shard this compressor frames. */
    Codec codecTag() const { return codec_tag_; }

    /**
     * Record wall-clock kernel latency distributions into @p metrics
     * (non-owning; nullptr disables, the default). Every shard
     * compression / expansion is then timed into the
     * `kernel.compress.wall_seconds.<backend>` /
     * `kernel.expand.wall_seconds.<backend>` histograms — real elapsed
     * time of the real kernels, including on worker lanes.
     */
    void setMetrics(obs::MetricsRegistry *metrics);

    /**
     * Compress @p input with the window space fanned out across the
     * lanes. Output is byte-identical to serial().compress(input).
     */
    CompressedBuffer compress(std::span<const uint8_t> input) const;

    /**
     * Invert compress(), decompressing windows in parallel. A corrupted
     * or truncated buffer returns the first failing window's decode
     * error (by window order), annotated with the window index.
     */
    StatusOr<ByteVec> decompress(const CompressedBuffer &buffer) const;

    /** Effective (store-raw floored) ratio of @p input. */
    double measureRatio(std::span<const uint8_t> input) const;

    /** Receives each compressed shard exactly once, in shard order. */
    using ShardConsumer = std::function<void(CompressedShard &&)>;

    /**
     * One reconstructed shard of a sharded decompression: the window
     * group's position and byte counts. The raw bytes themselves land
     * directly in the caller's output region (offset raw_offset), so
     * the notification carries accounting, not data.
     */
    struct DecompressedShard {
        uint64_t index = 0;        ///< shard position in the stream
        uint64_t first_window = 0; ///< absolute index of the first window
        uint64_t raw_offset = 0;   ///< byte offset into the output region
        uint64_t raw_bytes = 0;    ///< reconstructed bytes of this shard
        /** Store-raw-floored bytes the shard cost on the wire. */
        uint64_t wire_bytes = 0;
    };

    /** Receives each decompressed shard exactly once, in shard order. */
    using DecompressedShardConsumer =
        std::function<void(const DecompressedShard &)>;

    /**
     * Shard-streaming compression for the offload pipeline: the window
     * space is cut into shards of @p windows_per_shard consecutive
     * windows (the last may be short), the lanes compress shards
     * concurrently, and @p consumer is invoked on the calling thread for
     * shard 0, 1, 2, ... as soon as each shard — and every shard before
     * it — has been compressed. The consumer therefore drains shard k
     * while the workers are still compressing shards k+1, k+2, ...;
     * with one lane, shards are compressed and consumed alternately
     * inline. Completion order is deterministic regardless of lane
     * count. An empty input produces no shards.
     */
    void compressShards(std::span<const uint8_t> input,
                        uint64_t windows_per_shard,
                        const ShardConsumer &consumer) const;

    /**
     * Shard-streaming decompression for the prefetch pipeline — the
     * inverse of compressShards(): @p buffer's window space is cut into
     * shards of @p windows_per_shard consecutive windows (the last may
     * be short), the lanes reconstruct shards concurrently straight
     * into their slots of @p out (which must hold
     * buffer.original_bytes), and @p consumer is invoked on the calling
     * thread for shard 0, 1, 2, ... as soon as each shard — and every
     * shard before it — has been reconstructed. Completion order is
     * deterministic regardless of lane count; an empty buffer produces
     * no shards.
     *
     * A corrupt or truncated buffer returns the first failing shard's
     * decode error (by shard order), annotated with the shard index;
     * the consumer has then been invoked exactly for the shards before
     * the failing one, and @p out is unspecified from the failing
     * shard's slot onward.
     */
    Status decompressShards(const CompressedBuffer &buffer,
                            uint64_t windows_per_shard, uint8_t *out,
                            const DecompressedShardConsumer &consumer) const;

  private:
    /** Compress windows [first, last) of @p input into @p shard. */
    void compressShardInto(std::span<const uint8_t> input, uint64_t first,
                           uint64_t last, CompressedShard &shard) const;

    /**
     * Shared rendezvous of compressShards/decompressShards: pool
     * workers pull shard indices dynamically and run @p work on each;
     * the calling thread runs @p drain for shard 0, 1, 2, ... as soon
     * as each shard — and every shard before it — has completed. Every
     * exit path (including a throwing @p drain) joins the helpers
     * before the frame unwinds; a throwing @p work is captured on the
     * worker, the remaining shards are abandoned, and the first such
     * exception is rethrown here after the join. Requires pool workers
     * and shards >= 2.
     */
    void runOrderedShardFanOut(
        uint64_t shards, const std::function<void(uint64_t)> &work,
        const std::function<void(uint64_t)> &drain) const;

    std::unique_ptr<Compressor> codec_;
    Codec codec_tag_ = Codec::Zvc; ///< cached codecFromName(codec_->name())
    std::unique_ptr<ThreadPool> pool_; ///< null when lanes == 1
    /** Kernel-latency histograms; null when metrics are disabled. */
    obs::HistogramMetric *compress_hist_ = nullptr;
    obs::HistogramMetric *expand_hist_ = nullptr;
};

} // namespace cdma

#endif // CDMA_COMPRESS_PARALLEL_HH
