/**
 * @file
 * Local response normalization across channels (Krizhevsky et al.), used
 * by AlexNet and GoogLeNet. Normalizes each activation by a power of the
 * sum of squares in a cross-channel window.
 */

#ifndef CDMA_DNN_LRN_HH
#define CDMA_DNN_LRN_HH

#include "dnn/layer.hh"

namespace cdma {

/** LRN hyper-parameters (AlexNet defaults). */
struct LrnSpec {
    int64_t local_size = 5;
    float alpha = 1e-4f;
    float beta = 0.75f;
    float k = 2.0f;
};

/** Cross-channel local response normalization. */
class Lrn : public Layer
{
  public:
    Lrn(std::string name, const LrnSpec &spec = {});

    std::string type() const override { return "lrn"; }
    Shape4D outputShape(const Shape4D &input) const override;
    Tensor4D forward(const Tensor4D &input) override;
    Tensor4D backward(const Tensor4D &output_grad) override;

  private:
    LrnSpec spec_;
    Tensor4D cached_input_;
    Tensor4D cached_scale_; // the (k + alpha/n * sum sq) term per element
};

} // namespace cdma

#endif // CDMA_DNN_LRN_HH
