/** @file Unit tests for the statistics accumulators. */

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace cdma {
namespace {

TEST(Accumulator, EmptyDefaults)
{
    Accumulator acc;
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
    EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, KnownMoments)
{
    Accumulator acc;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        acc.add(v);
    EXPECT_EQ(acc.count(), 8u);
    EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
    EXPECT_DOUBLE_EQ(acc.min(), 2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 9.0);
    EXPECT_NEAR(acc.variance(), 4.0, 1e-12);
    EXPECT_NEAR(acc.stddev(), 2.0, 1e-12);
}

TEST(Accumulator, ResetClearsState)
{
    Accumulator acc;
    acc.add(10.0);
    acc.reset();
    EXPECT_EQ(acc.count(), 0u);
    EXPECT_DOUBLE_EQ(acc.sum(), 0.0);
}

TEST(WeightedMean, MatchesHandComputation)
{
    // The Figure 11 reduction: per-layer ratios weighted by offloaded
    // bytes.
    WeightedMean wm;
    wm.add(2.0, 100.0);
    wm.add(4.0, 300.0);
    EXPECT_DOUBLE_EQ(wm.mean(), (2.0 * 100 + 4.0 * 300) / 400.0);
    EXPECT_DOUBLE_EQ(wm.totalWeight(), 400.0);
}

TEST(WeightedMean, EmptyIsZero)
{
    WeightedMean wm;
    EXPECT_DOUBLE_EQ(wm.mean(), 0.0);
}

TEST(WeightedMean, ZeroWeightSamplesIgnored)
{
    WeightedMean wm;
    wm.add(100.0, 0.0);
    wm.add(3.0, 10.0);
    EXPECT_DOUBLE_EQ(wm.mean(), 3.0);
}

TEST(Histogram, BinsAndClamping)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);   // bin 0
    h.add(9.99);  // bin 9
    h.add(-5.0);  // clamps to bin 0
    h.add(42.0);  // clamps to bin 9
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(9), 2u);
    EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(0.0, 1.0, 4);
    EXPECT_DOUBLE_EQ(h.binLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binLo(2), 0.5);
}

TEST(Histogram, RenderMentionsCounts)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.25);
    h.add(0.75);
    h.add(0.8);
    const std::string text = h.render(10);
    EXPECT_NE(text.find('#'), std::string::npos);
}

} // namespace
} // namespace cdma
