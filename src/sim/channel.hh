/**
 * @file
 * Bandwidth-limited channel models. The plain Channel is a FIFO
 * store-and-forward pipe serviced in order at a fixed byte rate — the
 * abstraction used for the DRAM read stream feeding the cDMA engine and
 * the on-chip crossbar slice. DuplexChannel extends it for the PCIe
 * link: two directed sub-channels (offload out, prefetch in) that are
 * either independent (full duplex, each direction at the full link
 * rate) or share one contended link (half duplex) under a
 * round-robin/priority arbiter, with per-transfer accounting of the
 * time a direction waited while the link served the opposing one.
 */

#ifndef CDMA_SIM_CHANNEL_HH
#define CDMA_SIM_CHANNEL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.hh"

namespace cdma {

/** FIFO store-and-forward channel with a fixed service bandwidth. */
class Channel
{
  public:
    using Completion = std::function<void()>;

    /**
     * @param queue Owning event queue.
     * @param name Channel name for reporting.
     * @param bytes_per_second Service bandwidth.
     */
    Channel(EventQueue &queue, std::string name, double bytes_per_second);

    /**
     * Enqueue a transfer of @p bytes; @p on_done fires when the last byte
     * has been serviced. Transfers are serviced strictly in submission
     * order. A latency can model fixed per-transfer overhead.
     */
    void submit(uint64_t bytes, Completion on_done,
                SimTime extra_latency = 0.0);

    /** Time at which the channel becomes idle given current queue. */
    SimTime busyUntil() const { return busy_until_; }

    /** Total bytes ever submitted. */
    uint64_t totalBytes() const { return total_bytes_; }

    /** Total seconds the channel has been busy. */
    SimTime busySeconds() const { return busy_seconds_; }

    /** Utilization over [0, now]. */
    double utilization() const;

    /** Configured bandwidth (bytes/second). */
    double bandwidth() const { return bytes_per_second_; }

    /** Channel name. */
    const std::string &name() const { return name_; }

  private:
    EventQueue &queue_;
    std::string name_;
    double bytes_per_second_;
    SimTime busy_until_ = 0.0;
    SimTime busy_seconds_ = 0.0;
    uint64_t total_bytes_ = 0;
};

/**
 * How the two directed sub-channels of a DuplexChannel share the link.
 * Full duplex gives each direction the full configured bandwidth
 * independently (PCIe's nominal operating point); half duplex serializes
 * both directions on one shared link, which is where bidirectional
 * contention appears.
 */
enum class DuplexMode {
    Full, ///< independent per-direction bandwidth, no contention
    Half, ///< one shared link, transfers of both directions serialize
};

/** Display name of a duplex mode ("full_duplex" / "half_duplex"). */
const char *duplexModeName(DuplexMode mode);

/**
 * Which pending direction a contended (half-duplex) link serves next
 * when both have transfers queued. Round-robin alternates; the priority
 * policies always drain the named direction first.
 */
enum class LinkArbiter {
    RoundRobin,      ///< alternate directions under symmetric load
    OffloadFirst,    ///< the Out (offload) direction always wins ties
    PrefetchFirst,   ///< the In (prefetch) direction always wins ties
};

/** Display name of an arbiter policy. */
const char *linkArbiterName(LinkArbiter arbiter);

/**
 * Two directed sub-channels over one (possibly shared) link. Each
 * direction is FIFO within itself; across directions the behavior is
 * set by DuplexMode: Full services both concurrently at the full rate,
 * Half serializes every transfer on the shared link with the arbiter
 * choosing between pending directions. With one direction idle, either
 * mode degenerates to the plain Channel's FIFO timeline exactly.
 */
class DuplexChannel
{
  public:
    /** Transfer direction on the link. */
    enum class Direction : unsigned {
        Out = 0, ///< offload: GPU -> host
        In = 1,  ///< prefetch: host -> GPU
    };

    /** Service record of one completed transfer. */
    struct Grant {
        SimTime queued_at = 0.0; ///< submit time
        SimTime start = 0.0;     ///< service start (after any wait)
        SimTime end = 0.0;       ///< last byte serviced
        /**
         * Portion of [queued_at, start) the link spent serving the
         * opposing direction — the contention stall this transfer paid.
         * Always zero under full duplex.
         */
        SimTime opposing_wait = 0.0;
        /**
         * Portion of [queued_at, start) the link spent serving
         * same-direction transfers of OTHER sources (see the source tag
         * on submit()) — the multi-tenant queueing stall this transfer
         * paid. Zero when every submitter uses one tag.
         */
        SimTime cross_source_wait = 0.0;
    };

    using Completion = std::function<void(const Grant &)>;

    DuplexChannel(EventQueue &queue, std::string name,
                  double bytes_per_second,
                  DuplexMode mode = DuplexMode::Full,
                  LinkArbiter arbiter = LinkArbiter::RoundRobin);

    /**
     * Enqueue a transfer of @p bytes in direction @p direction;
     * @p on_done fires (with the service record) when the last byte has
     * been serviced. FIFO within a direction; across directions the
     * duplex mode + arbiter decide. @p source tags the transfer's
     * originator (e.g. the GPU index behind a shared switch uplink) so
     * the grant can attribute queueing waits to foreign traffic;
     * single-tenant callers leave it at 0.
     */
    void submit(Direction direction, uint64_t bytes, Completion on_done,
                SimTime extra_latency = 0.0, unsigned source = 0);

    /** Configured bandwidth (bytes/second, per direction under Full). */
    double bandwidth() const { return bytes_per_second_; }

    DuplexMode mode() const { return mode_; }
    LinkArbiter arbiter() const { return arbiter_; }
    const std::string &name() const { return name_; }

    /** Total bytes ever submitted in @p direction. */
    uint64_t totalBytes(Direction direction) const
    {
        return side(direction).total_bytes;
    }

    /** Seconds the link spent serving @p direction. */
    SimTime busySeconds(Direction direction) const
    {
        return side(direction).busy_seconds;
    }

    /** Sum of both directions' service time. */
    SimTime busySeconds() const
    {
        return sides_[0].busy_seconds + sides_[1].busy_seconds;
    }

    /**
     * Total time @p direction had a transfer pending while the link was
     * serving the opposing direction (head-of-line blocking). Zero
     * under full duplex.
     */
    SimTime blockedSeconds(Direction direction) const
    {
        return side(direction).blocked_seconds;
    }

    /** Sum of per-transfer opposing waits in @p direction. */
    SimTime contentionSeconds(Direction direction) const
    {
        return side(direction).contention_seconds;
    }

    /** Sum of per-transfer cross-source waits in @p direction. */
    SimTime crossSourceSeconds(Direction direction) const
    {
        return side(direction).cross_source_seconds;
    }

    /**
     * Seconds the link spent serving transfers tagged @p source in
     * @p direction (completed service only — a transfer in flight
     * accrues at its completion).
     */
    SimTime sourceBusySeconds(Direction direction, unsigned source) const;

    /** Completion time of the last transfer serviced so far. */
    SimTime lastDrain() const { return last_drain_; }

    /**
     * Wall-clock seconds the link had at least one direction in
     * service — the union of both directions' busy intervals, never
     * exceeding elapsed time (under Half it equals busySeconds(); under
     * Full simultaneous bidirectional service counts once). This is
     * the utilization numerator; busySeconds() double-counts overlap.
     */
    SimTime occupiedSeconds() const { return occupied_seconds_; }

  private:
    struct Pending {
        uint64_t bytes = 0;
        SimTime extra_latency = 0.0;
        SimTime queued_at = 0.0;
        /** Opposing cumulative busy seconds sampled at submit. */
        SimTime opposing_busy_at_queue = 0.0;
        /** Same-direction foreign-source completed service at submit. */
        SimTime foreign_busy_at_queue = 0.0;
        unsigned source = 0;
        Completion on_done;
    };

    /** One scheduled service interval on a full-duplex FIFO timeline. */
    struct Segment {
        SimTime end = 0.0;     ///< scheduled completion time
        SimTime service = 0.0; ///< service duration
        unsigned source = 0;
    };

    /** Per-direction state (queue, stats, full-duplex FIFO horizon). */
    struct Side {
        std::deque<Pending> queue;
        SimTime pending_since = 0.0; ///< valid while queue non-empty
        SimTime busy_until = 0.0;    ///< full-duplex FIFO horizon
        SimTime busy_seconds = 0.0;
        SimTime blocked_seconds = 0.0;
        SimTime contention_seconds = 0.0;
        SimTime cross_source_seconds = 0.0;
        uint64_t total_bytes = 0;
        /** Completed service seconds per source tag. */
        std::vector<SimTime> source_busy;
        /** Scheduled-but-not-drained service (full duplex FIFO). */
        std::deque<Segment> segments;
    };

    Side &side(Direction d) { return sides_[static_cast<unsigned>(d)]; }
    const Side &side(Direction d) const
    {
        return sides_[static_cast<unsigned>(d)];
    }
    static Direction opposite(Direction d)
    {
        return d == Direction::Out ? Direction::In : Direction::Out;
    }

    /** Cumulative busy seconds of @p d as of time @p now. */
    SimTime busyAccrued(Direction d, SimTime now) const;

    /** Fold service interval [start, end) into the occupancy union. */
    void noteServiceInterval(SimTime start, SimTime end);

    void tryStartHalf();
    void finishHalf(Direction direction, SimTime service_start,
                    SimTime duration);

    EventQueue &queue_;
    std::string name_;
    double bytes_per_second_;
    DuplexMode mode_;
    LinkArbiter arbiter_;
    Side sides_[2];
    bool link_busy_ = false;           // half duplex: link serial
    Direction serving_ = Direction::Out;
    SimTime service_start_ = 0.0;
    Direction last_served_ = Direction::In; // first tie goes to Out
    SimTime last_drain_ = 0.0;
    SimTime occupied_seconds_ = 0.0;
    SimTime occupied_until_ = 0.0; // furthest busy-interval end so far
};

} // namespace cdma

#endif // CDMA_SIM_CHANNEL_HH
