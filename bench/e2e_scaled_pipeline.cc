/**
 * @file
 * End-to-end integration of the two halves of the reproduction on real
 * data: train the scaled AlexNet with SGD, compress its *actual* trained
 * activation maps with all three codecs (no synthetic generator in the
 * loop), describe the live network into a descriptor, and run the
 * training-iteration DES with the measured ratios. This is the complete
 * cDMA workflow a framework would execute, shrunk to laptop scale.
 *
 * Run: ./build/bench/e2e_scaled_pipeline [iterations [batch]]
 */

#include <cstdio>

#include "common/harness.hh"
#include "models/describe.hh"
#include "perf/step_sim.hh"

using namespace cdma;
using bench::Table;

int
main(int argc, char **argv)
{
    bench::ScaledRunConfig config;
    config.iterations = 200;
    bench::parseTrainArgs(argc, argv, config);

    std::printf("== End-to-end: train -> measure -> simulate "
                "(scaled AlexNet) ==\n");

    // 1. Train for real and keep the final forward pass's activations.
    Rng rng(config.seed);
    Network net = buildScaledByName("AlexNet", rng);
    SyntheticDataset dataset;
    TrainConfig train;
    train.iterations = config.iterations;
    train.batch_size = config.batch;
    train.snapshot_every = config.iterations;
    Trainer trainer(net, dataset, train);
    trainer.run();
    const double accuracy = trainer.evaluate(4);

    Minibatch probe = dataset.nextValBatch(config.batch);
    net.setTraining(false);
    net.forward(probe.images);

    // 2. Compress the real activation maps.
    const auto records = net.activationRecords();
    Table table({"layer", "KB", "density", "RL", "ZV", "ZL"});
    std::vector<double> zv_ratios;
    for (const auto &record : records) {
        const Tensor4D &map = net.outputs()[record.output_index];
        std::vector<std::string> row = {
            record.label,
            Table::num(static_cast<double>(map.bytes()) / 1024.0, 0),
            Table::num(record.density, 2),
        };
        for (Algorithm algorithm : kAllAlgorithms) {
            const auto compressor = makeCompressor(algorithm);
            const double ratio =
                compressor->measureRatio(map.rawBytes());
            row.push_back(Table::num(ratio, 2));
            if (algorithm == Algorithm::Zvc)
                zv_ratios.push_back(ratio);
        }
        table.addRow(row);
    }
    table.print();

    // 3. Describe the live network and simulate an iteration with the
    //    measured ratios.
    const NetworkDesc desc = describeNetwork(
        "ScaledAlexNet", net, Shape4D{1, 3, 32, 32}, config.batch);
    VdnnMemoryManager manager(desc, config.batch);
    CdmaEngine engine(CdmaConfig{});
    PerfModel perf;
    StepSimulator sim(manager, engine, perf, CudnnVersion::V5);
    const StepResult oracle = sim.run(StepMode::Oracle);
    const StepResult vdnn = sim.run(StepMode::Vdnn);
    const StepResult cdma = sim.run(StepMode::Cdma, zv_ratios);

    // The same iteration with compression latency priced explicitly:
    // TimingMode::Overlapped runs every cDMA transfer through the
    // Section V-C double-buffered pipeline instead of the seed's
    // compression-free model.
    CdmaConfig overlapped_config;
    overlapped_config.timing_mode = TimingMode::Overlapped;
    CdmaEngine overlapped_engine(overlapped_config);
    StepSimulator overlapped_sim(manager, overlapped_engine, perf,
                                 CudnnVersion::V5);
    const StepResult cdma_ovl =
        overlapped_sim.run(StepMode::Cdma, zv_ratios);

    std::printf("\nval accuracy %.1f%%; simulated iteration "
                "(micro-scale): oracle %.3f ms, cDMA-ZV %.3f ms, "
                "vDNN %.3f ms -> cDMA speedup %.0f%%\n",
                100.0 * accuracy, oracle.total_seconds * 1e3,
                cdma.total_seconds * 1e3, vdnn.total_seconds * 1e3,
                100.0 * (cdma.speedupOver(vdnn) - 1.0));
    std::printf("overlapped pipeline (explicit compression latency): "
                "cDMA-ZV %.3f ms, %+.2f%% vs the compression-free "
                "model, speedup over vDNN %.0f%%\n",
                cdma_ovl.total_seconds * 1e3,
                100.0 * (cdma_ovl.total_seconds / cdma.total_seconds -
                         1.0),
                100.0 * (cdma_ovl.speedupOver(vdnn) - 1.0));
    std::printf("(absolute times are tiny at 32x32 scale; the point is "
                "the pipeline runs on real trained data end to end)\n");
    return 0;
}
