#!/usr/bin/env bash
# Run the kernel-throughput microbenchmarks and record the results as
# BENCH_kernel_throughput.json at the repo root, so successive PRs have a
# perf trajectory to compare against. The recorded families cover both
# pipeline directions: BM_*Compress{,Scalar,Avx2,Avx512} for the offload
# leg and BM_*Decompress{,Scalar,Avx2,Avx512} for the prefetch (expand)
# leg — bench/check_bench_json.py validates both sets.
#
# When the output path would overwrite an existing recording, the fresh
# run is perf-gated against it first (check_bench_json.py --baseline):
# a >BENCH_TOLERANCE throughput drop on any same-backend row aborts
# before the trajectory is clobbered, so a regression has to be looked
# at (or explicitly waved through) instead of silently becoming the new
# baseline.
#
# Usage: bench/run_kernel_bench.sh [extra google-benchmark flags...]
# Env: BUILD_DIR overrides the build tree, BENCH_OUT the output path
# (e.g. a scratch file for the CI smoke run, so a reduced-iteration run
# never overwrites the checked-in trajectory numbers),
# BENCH_TOLERANCE the gate's fractional tolerance (default 0.25),
# BENCH_NO_GATE=1 skips the gate (first recording on a new host class).
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"
binary="${build_dir}/bench/kernel_throughput"
out="${BENCH_OUT:-${repo_root}/BENCH_kernel_throughput.json}"

if [[ ! -x "${binary}" ]]; then
    echo "building kernel_throughput..." >&2
    cmake -B "${build_dir}" -S "${repo_root}"
    cmake --build "${build_dir}" --target kernel_throughput -j"$(nproc)"
fi

# Record into a temp file next to the destination so a gate failure (or
# a crashed run) never leaves a half-written trajectory behind.
tmp="$(mktemp "${out}.XXXXXX")"
trap 'rm -f "${tmp}"' EXIT

"${binary}" \
    --benchmark_format=json \
    --benchmark_out="${tmp}" \
    --benchmark_out_format=json \
    "$@"

if [[ -f "${out}" && "${BENCH_NO_GATE:-0}" != "1" ]]; then
    python3 "${repo_root}/bench/check_bench_json.py" "${tmp}" \
        --baseline "${out}" \
        --regression-tolerance "${BENCH_TOLERANCE:-0.25}" || {
        echo "refusing to overwrite ${out}: the fresh run regressed" \
             "(rerun with BENCH_NO_GATE=1 to force, or raise" \
             "BENCH_TOLERANCE)" >&2
        exit 1
    }
else
    python3 "${repo_root}/bench/check_bench_json.py" "${tmp}"
fi

mv "${tmp}" "${out}"
trap - EXIT
echo "wrote ${out}" >&2
