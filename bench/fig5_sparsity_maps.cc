/**
 * @file
 * Figure 5 reproduction: spatial visualization of activation sparsity
 * across training time and depth. For each checkpoint and each
 * sparsity-bearing layer of the scaled AlexNet, writes a PGM bitmap
 * (channels tiled into a grid, zero = black / non-zero = white, exactly
 * the paper's rendering) under fig5_out/, and prints the per-checkpoint
 * density matrix plus a coarse ASCII rendering of the first conv layer.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/harness.hh"
#include "common/logging.hh"

using namespace cdma;
using bench::Table;

namespace {

/** Write one activation map (sample 0) as a channel-tiled PGM bitmap. */
void
writePgm(const Tensor4D &activation, const std::string &path)
{
    const Shape4D &s = activation.shape();
    // Tile C channels into a near-square grid.
    int64_t grid_w = 1;
    while (grid_w * grid_w < s.c)
        ++grid_w;
    const int64_t grid_h = (s.c + grid_w - 1) / grid_w;

    const int64_t width = grid_w * s.w;
    const int64_t height = grid_h * s.h;
    std::ofstream out(path, std::ios::binary);
    out << "P5\n" << width << " " << height << "\n255\n";
    std::vector<uint8_t> row(static_cast<size_t>(width));
    for (int64_t gy = 0; gy < grid_h; ++gy) {
        for (int64_t y = 0; y < s.h; ++y) {
            for (int64_t gx = 0; gx < grid_w; ++gx) {
                const int64_t c = gy * grid_w + gx;
                for (int64_t x = 0; x < s.w; ++x) {
                    const bool live =
                        c < s.c && activation.at(0, c, y, x) != 0.0f;
                    row[static_cast<size_t>(gx * s.w + x)] =
                        live ? 255 : 0;
                }
            }
            out.write(reinterpret_cast<const char *>(row.data()),
                      static_cast<std::streamsize>(row.size()));
        }
    }
}

/** Coarse ASCII view of channel 0 of an activation map. */
void
printAscii(const Tensor4D &activation)
{
    const Shape4D &s = activation.shape();
    const int64_t step_h = std::max<int64_t>(1, s.h / 16);
    const int64_t step_w = std::max<int64_t>(1, s.w / 32);
    for (int64_t y = 0; y < s.h; y += step_h) {
        for (int64_t x = 0; x < s.w; x += step_w)
            std::putchar(activation.at(0, 0, y, x) != 0.0f ? '#' : '.');
        std::putchar('\n');
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::ScaledRunConfig config;
    config.iterations = 250;
    config.snapshots = 5; // six checkpoints incl. t=0 like the paper
    bench::parseTrainArgs(argc, argv, config);

    std::printf("== Figure 5: sparsity maps across training and depth "
                "==\n");

    // Re-run training manually so we can capture tensors, not just
    // densities.
    Rng rng(config.seed);
    Network net = buildScaledByName("AlexNet", rng);
    SyntheticDataset dataset;
    TrainConfig train;
    train.iterations = config.iterations;
    train.batch_size = config.batch;
    train.snapshot_every =
        std::max(1, config.iterations / config.snapshots);
    Trainer trainer(net, dataset, train);

    const std::string out_dir = "fig5_out";
    std::filesystem::create_directories(out_dir);

    std::vector<std::vector<double>> density_matrix;
    std::vector<std::string> labels;
    std::vector<double> checkpoints;

    trainer.run([&](const TrainSnapshot &snap) {
        checkpoints.push_back(snap.progress);
        std::vector<double> column;
        for (const auto &record : net.activationRecords()) {
            if (density_matrix.empty() && checkpoints.size() == 1)
                labels.push_back(record.label);
            const Tensor4D &map = net.outputs()[record.output_index];
            column.push_back(record.density);
            char path[256];
            std::snprintf(path, sizeof(path),
                          "%s/%s_t%03.0f.pgm", out_dir.c_str(),
                          record.label.c_str(), 100.0 * snap.progress);
            writePgm(map, path);
        }
        if (labels.empty()) {
            for (const auto &record : net.activationRecords())
                labels.push_back(record.label);
        }
        density_matrix.push_back(std::move(column));
    });

    std::vector<std::string> headers = {"layer"};
    for (double t : checkpoints)
        headers.push_back(Table::num(100.0 * t, 0) + "%");
    Table table(headers);
    for (size_t layer = 0; layer < labels.size(); ++layer) {
        std::vector<std::string> row = {labels[layer]};
        for (const auto &column : density_matrix)
            row.push_back(Table::num(column[layer], 2));
        table.addRow(row);
    }
    table.print();
    std::printf("\nPGM bitmaps written to %s/ "
                "(zero = black, non-zero = white)\n", out_dir.c_str());

    std::printf("\nASCII view of conv0 output after training "
                "(channel 0, '#' = non-zero):\n");
    const auto records = net.activationRecords();
    printAscii(net.outputs()[records.front().output_index]);
    return 0;
}
