/**
 * @file
 * Tests for the two-tier spill arena: FIFO eviction to the backing
 * (SSD) tier under host-capacity pressure, transparent reads through
 * either tier, promotion on prefetch, SSD traffic accounting, and
 * byte-identical round trips through the TransferEngine tiered flows.
 */

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "cdma/transfer_engine.hh"
#include "common/rng.hh"
#include "compress/parallel.hh"

namespace cdma {
namespace {

/** ReLU-like fp32 words at the given density. */
std::vector<uint8_t>
makeInput(double density, size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> input(bytes, 0);
    const size_t words = bytes / 4;
    for (size_t i = 0; i < words; ++i) {
        if (density > 0.0 && rng.bernoulli(density)) {
            const float value =
                1.0f + static_cast<float>(std::abs(rng.normal()));
            std::memcpy(input.data() + i * 4, &value, 4);
        }
    }
    for (size_t i = words * 4; i < bytes; ++i)
        input[i] = static_cast<uint8_t>(1 + rng.uniformInt(255));
    return input;
}

CdmaEngine
makeEngine()
{
    CdmaConfig config;
    config.compression.lanes = 2;
    config.transfer.timing_mode = TimingMode::Overlapped;
    return CdmaEngine(config);
}

/** Spill @p input through the tiered flow and return the ticket. */
SpillTicket
spill(const TransferEngine &engine, TieredSpillArena &arena,
      const std::vector<uint8_t> &input)
{
    return engine.offloadInto(input, arena).value().ticket;
}

TEST(TieredSpillArena, UnlimitedCapacityNeverEvicts)
{
    const CdmaEngine cdma = makeEngine();
    const TransferEngine engine(cdma);
    TieredSpillArena arena(/*host_capacity_bytes=*/0);
    const auto input = makeInput(0.4, (1 << 18) + 7, 11);
    const SpillTicket ticket = spill(engine, arena, input);
    EXPECT_FALSE(arena.onBackingTier(ticket));
    EXPECT_EQ(arena.tierStats().evictions, 0u);
    EXPECT_EQ(arena.tierStats().ssd_write_bytes, 0u);
    EXPECT_EQ(arena.backingArena().stats().live_buffers, 0u);
    arena.release(ticket);
}

TEST(TieredSpillArena, CapacityPressureEvictsOldestSealedFirst)
{
    const CdmaEngine cdma = makeEngine();
    const TransferEngine engine(cdma);
    const auto input = makeInput(0.5, 1 << 18, 23);

    // Budget fits roughly two compressed copies of the input.
    TieredSpillArena probe(0);
    const SpillTicket sized = spill(engine, probe, input);
    const uint64_t payload = probe.payloadBytes(sized);
    probe.release(sized);
    ASSERT_GT(payload, 0u);

    TieredSpillArena arena(2 * payload + payload / 2);
    const SpillTicket first = spill(engine, arena, input);
    const SpillTicket second = spill(engine, arena, input);
    EXPECT_FALSE(arena.onBackingTier(first));
    EXPECT_FALSE(arena.onBackingTier(second));

    // The third spill pushes the host tier over budget: the OLDEST
    // sealed spill goes down, the newer ones stay resident.
    const SpillTicket third = spill(engine, arena, input);
    EXPECT_TRUE(arena.onBackingTier(first));
    EXPECT_FALSE(arena.onBackingTier(second));
    EXPECT_FALSE(arena.onBackingTier(third));
    EXPECT_EQ(arena.tierStats().evictions, 1u);
    EXPECT_EQ(arena.tierStats().ssd_write_bytes, payload);
    EXPECT_LE(arena.hostArena().stats().live_payload_bytes,
              arena.tierStats().host_capacity_bytes);

    // Reads resolve transparently through the backing tier.
    EXPECT_EQ(arena.originalBytes(first), input.size());
    EXPECT_EQ(arena.payloadBytes(first), payload);
    arena.release(first);
    arena.release(second);
    arena.release(third);
    EXPECT_EQ(arena.hostArena().stats().live_buffers, 0u);
    EXPECT_EQ(arena.backingArena().stats().live_buffers, 0u);
}

TEST(TieredSpillArena, PromoteReadsBackAndReentersEvictionOrder)
{
    const CdmaEngine cdma = makeEngine();
    const TransferEngine engine(cdma);
    const auto input = makeInput(0.5, 1 << 18, 31);

    TieredSpillArena probe(0);
    const SpillTicket sized = spill(engine, probe, input);
    const uint64_t payload = probe.payloadBytes(sized);
    probe.release(sized);

    TieredSpillArena arena(payload + payload / 2);
    const SpillTicket first = spill(engine, arena, input);
    const SpillTicket second = spill(engine, arena, input);
    ASSERT_TRUE(arena.onBackingTier(first));

    // Promotion reads the payload back up and displaces the other
    // resident spill (capacity holds one).
    EXPECT_EQ(arena.promote(first), payload);
    EXPECT_FALSE(arena.onBackingTier(first));
    EXPECT_TRUE(arena.onBackingTier(second));
    EXPECT_EQ(arena.tierStats().promotions, 1u);
    EXPECT_EQ(arena.tierStats().ssd_read_bytes, payload);
    EXPECT_EQ(arena.tierStats().evictions, 2u);

    // Promoting a resident spill is free.
    EXPECT_EQ(arena.promote(first), 0u);
    arena.release(first);
    arena.release(second);
}

TEST(TieredSpillArena, PrefetchRestoresEvictedSpillsByteIdentical)
{
    const CdmaEngine cdma = makeEngine();
    const TransferEngine engine(cdma);
    const auto first_input = makeInput(0.45, (1 << 18) + 13, 41);
    const auto second_input = makeInput(0.55, (1 << 18) + 29, 43);

    TieredSpillArena probe(0);
    const SpillTicket sized = spill(engine, probe, first_input);
    const uint64_t payload = probe.payloadBytes(sized);
    probe.release(sized);

    // Capacity of one spill: the second offload evicts the first.
    TieredSpillArena arena(payload + payload / 2);
    const SpillTicket first = spill(engine, arena, first_input);
    const SpillTicket second = spill(engine, arena, second_input);
    ASSERT_TRUE(arena.onBackingTier(first));

    // Prefetching the evicted spill promotes it (SSD readback counted)
    // and restores the exact offloaded bytes.
    const PrefetchResult restored =
        engine.prefetch(arena, first).value();
    EXPECT_EQ(restored.data, first_input);
    EXPECT_FALSE(arena.onBackingTier(first));
    EXPECT_GT(arena.tierStats().ssd_read_bytes, 0u);

    const PrefetchResult also =
        engine.prefetch(arena, second).value();
    EXPECT_EQ(also.data, second_input);
    arena.release(first);
    arena.release(second);
}

TEST(TieredSpillArena, MaterializeMatchesAcrossTiers)
{
    const CdmaEngine cdma = makeEngine();
    const TransferEngine engine(cdma);
    const auto input = makeInput(0.5, (1 << 17) + 3, 53);

    TieredSpillArena unlimited(0);
    const SpillTicket resident = spill(engine, unlimited, input);
    const CompressedBuffer host_copy = unlimited.materialize(resident);

    TieredSpillArena tight(1); // evicts everything sealed
    const SpillTicket evicted = spill(engine, tight, input);
    ASSERT_TRUE(tight.onBackingTier(evicted));
    const CompressedBuffer ssd_copy = tight.materialize(evicted);

    EXPECT_EQ(ssd_copy.payload, host_copy.payload);
    EXPECT_EQ(ssd_copy.window_sizes, host_copy.window_sizes);
    EXPECT_EQ(ssd_copy.original_bytes, host_copy.original_bytes);
    EXPECT_EQ(cdma.compressor().decompress(ssd_copy).value(), input);
    unlimited.release(resident);
    tight.release(evicted);
}

TEST(TieredSpillArena, TicketsRecycleAcrossIterations)
{
    const CdmaEngine cdma = makeEngine();
    const TransferEngine engine(cdma);
    const auto input = makeInput(0.4, 1 << 17, 67);

    TieredSpillArena arena(1); // every sealed spill evicts
    for (int iteration = 0; iteration < 3; ++iteration) {
        const SpillTicket ticket = spill(engine, arena, input);
        EXPECT_TRUE(arena.onBackingTier(ticket));
        EXPECT_EQ(engine.prefetch(arena, ticket).value().data, input);
        arena.release(ticket);
    }
    // One eviction + one promotion per iteration, symmetric traffic.
    EXPECT_EQ(arena.tierStats().evictions, 3u);
    EXPECT_EQ(arena.tierStats().promotions, 3u);
    EXPECT_EQ(arena.tierStats().ssd_read_bytes,
              arena.tierStats().ssd_write_bytes);
}

} // namespace
} // namespace cdma
