#include "dnn/rnn.hh"

#include <cmath>
#include <vector>

#include "common/logging.hh"

namespace cdma {

Rnn::Rnn(std::string name, int64_t input_features, int64_t hidden_features,
         RnnActivation activation, Rng &rng)
    : Layer(std::move(name)), input_features_(input_features),
      hidden_features_(hidden_features), activation_(activation),
      w_input_(static_cast<size_t>(hidden_features * input_features)),
      w_hidden_(static_cast<size_t>(hidden_features * hidden_features)),
      bias_(static_cast<size_t>(hidden_features))
{
    CDMA_ASSERT(input_features > 0 && hidden_features > 0,
                "invalid RNN dimensions for %s", this->name().c_str());
    const double in_std = std::sqrt(2.0 / static_cast<double>(
        input_features));
    for (auto &w : w_input_.value)
        w = static_cast<float>(rng.normal(0.0, in_std));
    // Recurrent weights start near-orthogonal-ish small so unrolled
    // gradients neither vanish nor explode over short sequences.
    const double rec_std = std::sqrt(1.0 / static_cast<double>(
        hidden_features));
    for (auto &w : w_hidden_.value)
        w = static_cast<float>(rng.normal(0.0, rec_std));
}

float
Rnn::activate(float pre) const
{
    switch (activation_) {
      case RnnActivation::ReLU:
        return pre > 0.0f ? pre : 0.0f;
      case RnnActivation::Tanh:
        return std::tanh(pre);
    }
    panic("unreachable activation");
}

float
Rnn::activateGradFromOutput(float out) const
{
    switch (activation_) {
      case RnnActivation::ReLU:
        return out > 0.0f ? 1.0f : 0.0f;
      case RnnActivation::Tanh:
        return 1.0f - out * out;
    }
    panic("unreachable activation");
}

Shape4D
Rnn::outputShape(const Shape4D &input) const
{
    CDMA_ASSERT(input.h == 1 && input.w == input_features_,
                "rnn %s expects (N, T, 1, %lld), got %s", name().c_str(),
                static_cast<long long>(input_features_),
                input.str().c_str());
    return {input.n, input.c, 1, hidden_features_};
}

Tensor4D
Rnn::forward(const Tensor4D &input)
{
    cached_input_ = input;
    const Shape4D out_shape = outputShape(input.shape());
    Tensor4D hidden(out_shape);

    const int64_t steps = input.shape().c;
    for (int64_t n = 0; n < input.shape().n; ++n) {
        for (int64_t t = 0; t < steps; ++t) {
            for (int64_t h = 0; h < hidden_features_; ++h) {
                float pre = bias_.value[static_cast<size_t>(h)];
                const float *wx =
                    w_input_.value.data() + h * input_features_;
                for (int64_t i = 0; i < input_features_; ++i)
                    pre += wx[i] * input.at(n, t, 0, i);
                if (t > 0) {
                    const float *wh =
                        w_hidden_.value.data() + h * hidden_features_;
                    for (int64_t j = 0; j < hidden_features_; ++j)
                        pre += wh[j] * hidden.at(n, t - 1, 0, j);
                }
                hidden.at(n, t, 0, h) = activate(pre);
            }
        }
    }
    cached_hidden_ = hidden;
    return hidden;
}

Tensor4D
Rnn::backward(const Tensor4D &output_grad)
{
    const Shape4D &in_shape = cached_input_.shape();
    const int64_t steps = in_shape.c;
    Tensor4D input_grad(in_shape);

    // BPTT: dh accumulates the gradient flowing into each step's hidden
    // state (from the output at t plus the recurrence at t+1).
    std::vector<float> dh(static_cast<size_t>(hidden_features_));
    std::vector<float> dh_next(static_cast<size_t>(hidden_features_));

    for (int64_t n = 0; n < in_shape.n; ++n) {
        std::fill(dh_next.begin(), dh_next.end(), 0.0f);
        for (int64_t t = steps - 1; t >= 0; --t) {
            for (int64_t h = 0; h < hidden_features_; ++h) {
                dh[static_cast<size_t>(h)] =
                    output_grad.at(n, t, 0, h) +
                    dh_next[static_cast<size_t>(h)];
            }
            std::fill(dh_next.begin(), dh_next.end(), 0.0f);

            for (int64_t h = 0; h < hidden_features_; ++h) {
                const float out = cached_hidden_.at(n, t, 0, h);
                const float dpre = dh[static_cast<size_t>(h)] *
                    activateGradFromOutput(out);
                if (dpre == 0.0f)
                    continue;

                bias_.grad[static_cast<size_t>(h)] += dpre;
                float *dwx = w_input_.grad.data() + h * input_features_;
                const float *wx =
                    w_input_.value.data() + h * input_features_;
                for (int64_t i = 0; i < input_features_; ++i) {
                    dwx[i] += dpre * cached_input_.at(n, t, 0, i);
                    input_grad.at(n, t, 0, i) += dpre * wx[i];
                }
                if (t > 0) {
                    float *dwh =
                        w_hidden_.grad.data() + h * hidden_features_;
                    const float *wh =
                        w_hidden_.value.data() + h * hidden_features_;
                    for (int64_t j = 0; j < hidden_features_; ++j) {
                        dwh[j] += dpre *
                            cached_hidden_.at(n, t - 1, 0, j);
                        dh_next[static_cast<size_t>(j)] += dpre * wh[j];
                    }
                }
            }
        }
    }
    return input_grad;
}

std::vector<ParamBlob *>
Rnn::params()
{
    return {&w_input_, &w_hidden_, &bias_};
}

} // namespace cdma
