#!/usr/bin/env python3
"""Validate BENCH_kernel_throughput.json for the CI bench smoke job.

The perf-trajectory tooling keys on four things per kernel benchmark:
the algorithm (from the benchmark family name), the kernel backend (an
optional ``Scalar``/``Avx2`` family suffix for the explicit per-backend
sweeps, plus the dispatcher's choice recorded in the JSON context as
``kernel_backend``), the activation density (the benchmark argument),
and the achieved throughput (``bytes_per_second``, reported as GB/s).
A refactor that renames a family, drops the density argument, stops
calling ``SetBytesProcessed`` or loses the backend context silently
breaks the trajectory; this script fails the job instead. It also fails
when an AVX2-capable host silently dispatched to the scalar backend
(a broken CPUID path would otherwise masquerade as a perf regression) —
unless CDMA_KERNEL_BACKEND=scalar was an explicit request.

Usage: bench/check_bench_json.py [path/to/BENCH_kernel_throughput.json]
"""

import json
import os
import re
import sys

# Families whose presence (at >= 1 density) the trajectory depends on,
# and which must report bytes_per_second — both pipeline directions:
# the compress families feed the offload-leg trajectory, the decompress
# families the prefetch leg, and the duplex-transfer model families the
# contended-link trajectory (full vs half duplex). The parallel/lane
# and per-backend variants are validated when present but are optional:
# a reduced smoke run may filter to the serial kernels.
REQUIRED_FAMILIES = ("BM_ZvcCompress", "BM_RleCompress", "BM_DeflateCompress",
                     "BM_ZvcDecompress", "BM_RleDecompress",
                     "BM_DeflateDecompress")
DUPLEX_FAMILIES = ("BM_DuplexTransferModelFull", "BM_DuplexTransferModelHalf")
# Fleet DES rows: N data-parallel GPUs behind one fixed-bandwidth
# switch uplink. Each family must carry a positive mean
# contention-stall fraction (a zero means the shared uplink stopped
# arbitrating), and the fraction must strictly increase in fleet size
# (a flat trajectory means the per-source wait attribution broke).
FLEET_FAMILIES = ("BM_FleetOffloadN2", "BM_FleetOffloadN4",
                  "BM_FleetOffloadN8")
# CRC-32C integrity-framing rows: the scalar slice-by-8 row is
# unconditional; the hardware (SSE4.2) row is required whenever the
# producing host has it (recorded as host_avx2 — every AVX2 part has
# SSE4.2). Losing these rows would blind the trajectory to the framing
# tax the robustness layer added.
CRC_SCALAR_FAMILY = "BM_Crc32Scalar"
CRC_HW_FAMILY = "BM_Crc32Hw"
KNOWN_BACKENDS = ("scalar", "avx2")
KNOWN_DUPLEX_MODES = ("full_duplex", "half_duplex")
NAME_RE = re.compile(r"^BM_([A-Za-z0-9]+?)(Compress|Decompress|CycleModel|"
                     r"EngineCycleModel|TransferModel(?:Full|Half))?"
                     r"(Parallel)?(Scalar|Avx2|Hw)?"
                     r"(/\d+)*(/[a-z_]+)*$")


def fail(message: str) -> None:
    print(f"check_bench_json: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def producer_supports_avx2(context: dict) -> bool:
    """AVX2 capability of the machine that PRODUCED the report.

    Preferred source is the ``host_avx2`` context field the bench
    binary records (its own CPUID probe), so validating a report on a
    different machine judges the producer, not the validator. Reports
    that predate the field fall back to probing this host's
    /proc/cpuinfo (Linux best-effort; absence of evidence -> False).
    """
    recorded = context.get("host_avx2")
    if recorded is not None:
        return recorded == "true"
    try:
        with open("/proc/cpuinfo", encoding="utf-8") as handle:
            return any("avx2" in line for line in handle
                       if line.startswith("flags"))
    except OSError:
        return False


def check_backend_context(report: dict) -> str:
    context = report.get("context", {})
    backend = context.get("kernel_backend")
    if not backend:
        fail("context lacks 'kernel_backend' (the bench binary must "
             "record the dispatched kernel backend)")
    if backend not in KNOWN_BACKENDS:
        fail(f"context kernel_backend '{backend}' is not one of "
             f"{', '.join(KNOWN_BACKENDS)}")
    # Dispatch provenance travels in the JSON itself (the bench binary
    # records any CDMA_KERNEL_BACKEND override it saw), so the check
    # holds up when the JSON is validated from a different shell or CI
    # step; the checker's own environment is only a fallback for
    # reports that predate the provenance field.
    forced = context.get("kernel_backend_forced",
                         os.environ.get("CDMA_KERNEL_BACKEND", ""))
    if (backend == "scalar" and forced != "scalar"
            and producer_supports_avx2(context)):
        fail("the producing host supports AVX2 but the bench dispatched "
             "to the scalar backend without CDMA_KERNEL_BACKEND=scalar "
             "— the CPUID dispatch path silently fell back")
    return backend


def check_duplex_context(report: dict) -> str:
    """The engine-default link configuration the bench ran under.

    The duplex-transfer model families sweep Full and Half explicitly
    (their family suffix is the mode), but the context field records
    what an unconfigured engine would do — a refactor that flips the
    default silently would skew every non-duplex trajectory row.
    """
    context = report.get("context", {})
    mode = context.get("duplex_mode")
    if not mode:
        fail("context lacks 'duplex_mode' (the bench binary must record "
             "the engine-default link configuration)")
    if mode not in KNOWN_DUPLEX_MODES:
        fail(f"context duplex_mode '{mode}' is not one of "
             f"{', '.join(KNOWN_DUPLEX_MODES)}")
    return mode


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_kernel_throughput.json"
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except FileNotFoundError:
        fail(f"{path} is missing (did the bench binary run?)")
    except json.JSONDecodeError as error:
        fail(f"{path} is not valid JSON: {error}")

    backend = check_backend_context(report)
    duplex_mode = check_duplex_context(report)

    benchmarks = report.get("benchmarks")
    if not benchmarks:
        fail(f"{path} has no 'benchmarks' array (or it is empty)")

    seen_families = set()
    fleet_contention = {}
    for entry in benchmarks:
        name = entry.get("name")
        if not name:
            fail(f"benchmark entry without a name: {entry}")
        if entry.get("run_type") == "aggregate":
            continue
        match = NAME_RE.match(name)
        if not match:
            fail(f"benchmark name '{name}' does not parse as "
                 "BM_<Algorithm><Kind>[<Backend>][/density[/lanes]]")
        family = name.split("/")[0]
        seen_families.add(family)
        # Every throughput kernel must report bytes_per_second (that is
        # the GB/s column of docs/performance.md); the cycle-model
        # benchmark reports a modeled-rate counter instead.
        if "CycleModel" not in family:
            bps = entry.get("bytes_per_second")
            if not isinstance(bps, (int, float)) or bps <= 0:
                fail(f"'{name}' lacks a positive bytes_per_second "
                     f"(got {bps!r})")
        # Compression kernels encode density as the first argument.
        if "Compress" in family and "/" not in name:
            fail(f"'{name}' is missing its density argument")
        # The half-duplex model family must carry the modeled
        # contention counter, and the race must actually cost something
        # (a zero here means the contended DES silently degenerated).
        if family == "BM_DuplexTransferModelHalf":
            stall = entry.get("contention_stall_fraction")
            if not isinstance(stall, (int, float)) or stall <= 0:
                fail(f"'{name}' lacks a positive "
                     f"contention_stall_fraction (got {stall!r})")
        if family == "BM_DuplexTransferModelFull":
            stall = entry.get("contention_stall_fraction")
            if not isinstance(stall, (int, float)) or stall != 0:
                fail(f"'{name}' must report zero contention under full "
                     f"duplex (got {stall!r})")
        # Fleet rows: N > 1 ranks sharing one uplink must pay a
        # positive cross-source stall.
        if family in FLEET_FAMILIES:
            stall = entry.get("contention_stall_fraction")
            if not isinstance(stall, (int, float)) or stall <= 0:
                fail(f"'{name}' lacks a positive "
                     f"contention_stall_fraction (got {stall!r})")
            fleet_contention[family] = stall

    missing = [f for f in REQUIRED_FAMILIES if f not in seen_families]
    if missing:
        fail(f"required benchmark families absent: {', '.join(missing)}")
    missing_duplex = [f for f in DUPLEX_FAMILIES if f not in seen_families]
    if missing_duplex:
        fail("duplex-transfer model families absent: "
             f"{', '.join(missing_duplex)}")
    missing_fleet = [f for f in FLEET_FAMILIES if f not in seen_families]
    if missing_fleet:
        fail(f"fleet DES families absent: {', '.join(missing_fleet)}")
    fleet_order = [fleet_contention[f] for f in FLEET_FAMILIES]
    if not all(a < b for a, b in zip(fleet_order, fleet_order[1:])):
        fail("fleet contention_stall_fraction is not strictly "
             "increasing across " + ", ".join(
                 f"{f}={fleet_contention[f]:.4f}" for f in FLEET_FAMILIES))
    if CRC_SCALAR_FAMILY not in seen_families:
        fail(f"{CRC_SCALAR_FAMILY} absent: the CRC framing row lost its "
             "scalar reference leg")
    if (CRC_HW_FAMILY not in seen_families
            and producer_supports_avx2(report.get("context", {}))):
        fail(f"{CRC_HW_FAMILY} absent although the producing host has "
             "the hardware CRC32C instruction")

    # When an explicit per-backend sweep ran at all, its scalar leg must
    # be part of it (scalar is supported everywhere, so its absence means
    # the sweep was cut down in a way the trajectory would misread).
    # Compress and decompress sweeps are judged separately: a refactor
    # that drops only the BM_*Decompress{Scalar,Avx2} mirrors must not
    # hide behind the compress families.
    backend_families = {f for f in seen_families
                        if f.endswith(("Scalar", "Avx2"))}
    decompress_backends = {f for f in backend_families
                           if "Decompress" in f}
    compress_backends = backend_families - decompress_backends
    for kind, families in (("compress", compress_backends),
                           ("decompress", decompress_backends)):
        if families and not any(f.endswith("Scalar") for f in families):
            fail(f"per-backend {kind} families present but the scalar "
                 f"reference leg is missing: {', '.join(sorted(families))}")

    summary = []
    for entry in benchmarks:
        if entry.get("run_type") == "aggregate":
            continue
        name = entry.get("name", "")
        family = name.split("/")[0]
        bps = entry.get("bytes_per_second")
        if (family in REQUIRED_FAMILIES and "/" in name
                and isinstance(bps, (int, float))):
            density = name.split("/")[1]
            summary.append(f"{family[3:]} d{density}: {bps / 1e9:.2f} GB/s")
    print(f"check_bench_json: OK ({len(benchmarks)} entries, "
          f"{len(seen_families)} families, dispatch={backend}, "
          f"duplex={duplex_mode})")
    for line in summary:
        print(f"  {line}")


if __name__ == "__main__":
    main()
