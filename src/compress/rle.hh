/**
 * @file
 * Run-length encoding over 4-byte activation words (Section V-A). The
 * stream is a sequence of tokens: a zero-run token replaces up to 128
 * consecutive zero words with a single byte, and a literal-run token emits
 * a one-byte header followed by up to 128 raw words. RLE therefore only
 * wins when zero words are *consecutive in the physical layout*, which is
 * why its ratio collapses under NHWC/CHWN where channel planes interleave
 * (Figure 11).
 */

#ifndef CDMA_COMPRESS_RLE_HH
#define CDMA_COMPRESS_RLE_HH

#include "compress/compressor.hh"

namespace cdma {

/** Run-length compressor ("RL" in the paper's figures). */
class RleCompressor : public Compressor
{
  public:
    /** Maximum words encodable by a single token. */
    static constexpr int kMaxRun = 128;
    /** Bytes per activation word (fp32). */
    static constexpr int kWordBytes = 4;

    explicit RleCompressor(
        uint64_t window_bytes = Compressor::kDefaultWindowBytes,
        const KernelOps *kernels = nullptr);

    std::string name() const override { return "RL"; }

    /**
     * Streaming codec: both run kinds are scanned by the kernel backend
     * (32-byte OR probes through zero pages; 64-bit — 256-bit on AVX2 —
     * strides over literal spans), literal data is emitted with the
     * backend's bulk copy, and decompression reconstructs with
     * memset/memcpy runs.
     */
    void compressWindowInto(std::span<const uint8_t> window,
                            ByteVec &out) const override;

    Status decompressWindowInto(std::span<const uint8_t> payload,
                                uint64_t original_bytes,
                                uint8_t *out) const override;

    uint64_t compressedBound(uint64_t raw_len) const override;
};

} // namespace cdma

#endif // CDMA_COMPRESS_RLE_HH
