/**
 * @file
 * End-to-end integration of the two halves of the reproduction on real
 * data: train the scaled AlexNet with SGD, compress its *actual* trained
 * activation maps with all three codecs (no synthetic generator in the
 * loop), spill the ZV-compressed maps through the shard arena and
 * prefetch them back byte-identical on the simulated backward pass,
 * describe the live network into a descriptor, and run the
 * training-iteration DES with the measured ratios. This is the complete
 * cDMA workflow a framework would execute, shrunk to laptop scale.
 *
 * Run: ./build/bench/e2e_scaled_pipeline [--fault-smoke] [iterations [batch]]
 *
 * --fault-smoke re-runs the spill/prefetch round trip on a link with
 * seeded 1e-6/byte bit flips until the retry machinery fires, then
 * fails the process unless retries were nonzero AND every restored map
 * stayed byte-identical — the CI integrity gate.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "cdma/transfer_engine.hh"
#include "common/harness.hh"
#include "models/describe.hh"
#include "perf/step_sim.hh"
#include "sim/fault_injector.hh"

using namespace cdma;
using bench::Table;

namespace {

/**
 * The --fault-smoke gate: round-trip the trained maps through a spill
 * engine whose link flips bits at 1e-6/byte (seeded, deterministic)
 * until at least one crossing is rejected and retried. Returns the
 * process exit code: 0 only if retries fired and every restored map
 * was byte-identical to the source.
 */
int
runFaultSmoke(const Network &net,
              const std::vector<ActivationRecord> &records)
{
    sim::FaultConfig faults;
    faults.bit_flip_rate_per_byte = 1e-6;
    sim::FaultInjector injector(faults);

    CdmaConfig config;
    config.transfer.timing_mode = TimingMode::Overlapped;
    config.transfer.fault_injector = &injector;
    const CdmaEngine engine(config);
    const OffloadScheduler offloader(engine);
    const PrefetchScheduler prefetcher(engine);
    SpillArena arena;

    TransferIntegrity integrity;
    bool identical = true;
    int passes = 0;
    constexpr int kMaxPasses = 2000;
    // Each pass crosses every map twice; at 1e-6/byte the first flip
    // lands within a handful of passes. The cap only guards against a
    // misconfigured (fault-free) engine looping forever.
    while (integrity.retries == 0 && passes < kMaxPasses) {
        ++passes;
        for (const auto &record : records) {
            const Tensor4D &map = net.outputs()[record.output_index];
            const StatusOr<SpilledOffload> spilled =
                offloader.offloadInto(map.rawBytes(), arena);
            if (!spilled.ok()) {
                std::printf("fault smoke: offload failed: %s\n",
                            spilled.status().message().c_str());
                return 1;
            }
            integrity.accumulate(spilled->integrity);
            const StatusOr<PrefetchResult> restored =
                prefetcher.prefetch(arena, spilled->ticket);
            if (!restored.ok()) {
                std::printf("fault smoke: prefetch failed: %s\n",
                            restored.status().message().c_str());
                return 1;
            }
            integrity.accumulate(restored->integrity);
            const auto raw = map.rawBytes();
            identical = identical &&
                restored->data.size() == raw.size() &&
                std::equal(restored->data.begin(), restored->data.end(),
                           raw.begin());
            arena.release(spilled->ticket);
        }
    }

    std::printf(
        "\nfault smoke (1e-6/byte flips): %d pass(es), %llu crossings, "
        "%llu retries (%llu CRC rejects, %llu link faults), %llu shard(s) "
        "degraded, restored maps %s\n",
        passes, static_cast<unsigned long long>(integrity.attempts),
        static_cast<unsigned long long>(integrity.retries),
        static_cast<unsigned long long>(integrity.crc_failures),
        static_cast<unsigned long long>(integrity.link_faults),
        static_cast<unsigned long long>(integrity.degraded_shards),
        identical ? "byte-identical" : "MISMATCH");

    if (integrity.retries == 0) {
        std::printf("fault smoke FAILED: no retries fired after %d "
                    "passes — injector not wired into the flow?\n",
                    passes);
        return 1;
    }
    if (!identical) {
        std::printf("fault smoke FAILED: a fault escaped the CRC/retry "
                    "machinery and corrupted a restored map\n");
        return 1;
    }
    std::printf("fault smoke passed: faults detected, retried, and "
                "masked end to end\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool fault_smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fault-smoke") == 0) {
            fault_smoke = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }

    bench::ScaledRunConfig config;
    config.iterations = 200;
    bench::parseTrainArgs(argc, argv, config);

    std::printf("== End-to-end: train -> measure -> simulate "
                "(scaled AlexNet) ==\n");

    // 1. Train for real and keep the final forward pass's activations.
    Rng rng(config.seed);
    Network net = buildScaledByName("AlexNet", rng);
    SyntheticDataset dataset;
    TrainConfig train;
    train.iterations = config.iterations;
    train.batch_size = config.batch;
    train.snapshot_every = config.iterations;
    Trainer trainer(net, dataset, train);
    trainer.run();
    const double accuracy = trainer.evaluate(4);

    Minibatch probe = dataset.nextValBatch(config.batch);
    net.setTraining(false);
    net.forward(probe.images);

    // 2. Compress the real activation maps. The ZV column runs the
    //    offload-side flow a framework would: each map spills through
    //    the compressed arena (recycled shard slots, no per-layer
    //    payload vector), and the simulated backward pass below
    //    prefetches it back out.
    CdmaConfig spill_config;
    spill_config.transfer.timing_mode = TimingMode::Overlapped;
    const CdmaEngine spill_engine(spill_config);
    const OffloadScheduler offloader(spill_engine);
    const PrefetchScheduler prefetcher(spill_engine);
    SpillArena arena;
    std::vector<SpillTicket> tickets;

    const auto records = net.activationRecords();
    Table table({"layer", "KB", "density", "RL", "ZV", "ZL"});
    std::vector<double> zv_ratios;
    for (const auto &record : records) {
        const Tensor4D &map = net.outputs()[record.output_index];
        std::vector<std::string> row = {
            record.label,
            Table::num(static_cast<double>(map.bytes()) / 1024.0, 0),
            Table::num(record.density, 2),
        };
        for (Algorithm algorithm : kAllAlgorithms) {
            double ratio;
            if (algorithm == Algorithm::Zvc) {
                const SpilledOffload spilled =
                    offloader.offloadInto(map.rawBytes(), arena).value();
                tickets.push_back(spilled.ticket);
                const uint64_t wire = arena.wireBytes(spilled.ticket);
                ratio = wire > 0
                    ? static_cast<double>(map.bytes()) /
                        static_cast<double>(wire)
                    : 1.0;
                zv_ratios.push_back(ratio);
            } else {
                const auto compressor = makeCompressor(algorithm);
                ratio = compressor->measureRatio(map.rawBytes());
            }
            row.push_back(Table::num(ratio, 2));
        }
        table.addRow(row);
    }
    table.print();

    // The backward pass walks the spilled maps in reverse, prefetching
    // each out of the arena and releasing its slots for the next
    // iteration's reuse.
    bool restored_ok = true;
    for (size_t i = tickets.size(); i-- > 0;) {
        const Tensor4D &map = net.outputs()[records[i].output_index];
        const PrefetchResult restored =
            prefetcher.prefetch(arena, tickets[i]).value();
        const auto raw = map.rawBytes();
        restored_ok = restored_ok &&
            restored.data.size() == raw.size() &&
            std::equal(restored.data.begin(), restored.data.end(),
                       raw.begin());
        arena.release(tickets[i]);
    }
    const SpillStats &spill = arena.stats();
    std::printf("\nspill arena round trip: %zu ZV maps restored %s; "
                "high water %.1f KB compressed, %llu slabs, %llu/%llu "
                "shard stores from recycled slots\n",
                tickets.size(),
                restored_ok ? "byte-identical" : "MISMATCH",
                static_cast<double>(spill.high_water_payload_bytes) /
                    1024.0,
                static_cast<unsigned long long>(spill.slab_allocations),
                static_cast<unsigned long long>(spill.reused_slots),
                static_cast<unsigned long long>(spill.stored_shards));

    // In smoke mode the integrity gate is the whole point: rerun the
    // round trip on a faulty link and make the exit code depend on the
    // retry machinery actually firing and masking every fault.
    if (fault_smoke)
        return runFaultSmoke(net, records);

    // 3. Describe the live network and simulate an iteration with the
    //    measured ratios.
    const NetworkDesc desc = describeNetwork(
        "ScaledAlexNet", net, Shape4D{1, 3, 32, 32}, config.batch);
    VdnnMemoryManager manager(desc, config.batch);
    CdmaEngine engine(CdmaConfig{});
    PerfModel perf;
    StepSimulator sim(manager, engine, perf, CudnnVersion::V5);
    const StepResult oracle = sim.run(StepMode::Oracle);
    const StepResult vdnn = sim.run(StepMode::Vdnn);
    const StepResult cdma = sim.run(StepMode::Cdma, zv_ratios);

    // The same iteration with compression latency priced explicitly:
    // TimingMode::Overlapped runs every cDMA transfer through the
    // Section V-C double-buffered pipeline instead of the seed's
    // compression-free model.
    CdmaConfig overlapped_config;
    overlapped_config.transfer.timing_mode = TimingMode::Overlapped;
    CdmaEngine overlapped_engine(overlapped_config);
    StepSimulator overlapped_sim(manager, overlapped_engine, perf,
                                 CudnnVersion::V5);
    const StepResult cdma_ovl =
        overlapped_sim.run(StepMode::Cdma, zv_ratios);

    std::printf("\nval accuracy %.1f%%; simulated iteration "
                "(micro-scale): oracle %.3f ms, cDMA-ZV %.3f ms, "
                "vDNN %.3f ms -> cDMA speedup %.0f%%\n",
                100.0 * accuracy, oracle.total_seconds * 1e3,
                cdma.total_seconds * 1e3, vdnn.total_seconds * 1e3,
                100.0 * (cdma.speedupOver(vdnn) - 1.0));
    std::printf("overlapped pipeline (explicit compression latency): "
                "cDMA-ZV %.3f ms, %+.2f%% vs the compression-free "
                "model, speedup over vDNN %.0f%%\n",
                cdma_ovl.total_seconds * 1e3,
                100.0 * (cdma_ovl.total_seconds / cdma.total_seconds -
                         1.0),
                100.0 * (cdma_ovl.speedupOver(vdnn) - 1.0));
    std::printf("(absolute times are tiny at 32x32 scale; the point is "
                "the pipeline runs on real trained data end to end)\n");
    return 0;
}
