/**
 * @file
 * Figure 7 reproduction: training loss (left axis in the paper) plotted
 * against the per-layer activation density of the convolutional layers
 * (right axis) as training progresses. The signature structure: the loss
 * plunge at the start of training coincides with the density drop, and
 * density partially recovers while the loss keeps improving slowly.
 */

#include <cstdio>

#include "common/harness.hh"

using namespace cdma;
using bench::Table;

int
main(int argc, char **argv)
{
    bench::ScaledRunConfig config;
    config.iterations = 300;
    config.snapshots = 12;
    bench::parseTrainArgs(argc, argv, config);

    std::printf("== Figure 7: loss vs conv-layer density over training "
                "==\n");
    const auto run = bench::trainScaledNetwork("AlexNet", config);

    // Pick the conv rows (the paper plots conv1-conv4).
    std::vector<size_t> conv_rows;
    std::vector<std::string> headers = {"progress", "loss", "accuracy"};
    const auto &first = run.snapshots.front().records;
    for (size_t i = 0; i < first.size(); ++i) {
        if (first[i].type == "conv" && conv_rows.size() < 5) {
            conv_rows.push_back(i);
            headers.push_back(first[i].label);
        }
    }

    Table table(headers);
    for (const auto &snap : run.snapshots) {
        std::vector<std::string> row = {
            Table::num(100.0 * snap.progress, 0) + "%",
            Table::num(snap.loss, 3),
            Table::num(snap.train_accuracy, 2),
        };
        for (size_t i : conv_rows)
            row.push_back(Table::num(snap.records[i].density, 2));
        table.addRow(row);
    }
    table.print();

    // Quantify the two Figure 7 regimes.
    const auto &start = run.snapshots.front();
    double trough = 1.0;
    for (const auto &snap : run.snapshots) {
        double mean = 0.0;
        for (size_t i : conv_rows)
            mean += snap.records[i].density;
        trough = std::min(trough, mean / conv_rows.size());
    }
    double end_mean = 0.0;
    for (size_t i : conv_rows)
        end_mean += run.snapshots.back().records[i].density;
    end_mean /= conv_rows.size();

    std::printf("\nloss: %.3f -> %.3f; conv density: start %.2f, "
                "trough %.2f, trained %.2f (U-shape: trough below both "
                "endpoints)\n",
                start.loss, run.snapshots.back().loss,
                [&] {
                    double mean = 0.0;
                    for (size_t i : conv_rows)
                        mean += start.records[i].density;
                    return mean / conv_rows.size();
                }(),
                trough, end_mean);
    return 0;
}
