/** @file Unit tests for individual layer forward/backward behaviour. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dnn/activation.hh"
#include "dnn/conv.hh"
#include "dnn/dropout.hh"
#include "dnn/fc.hh"
#include "dnn/lrn.hh"
#include "dnn/pool.hh"

namespace cdma {
namespace {

TEST(ReluLayer, ThresholdsNegativesToExactZero)
{
    ReLU relu("relu");
    Tensor4D in(Shape4D{1, 1, 2, 2});
    in.at(0, 0, 0, 0) = -1.5f;
    in.at(0, 0, 0, 1) = 2.0f;
    in.at(0, 0, 1, 0) = 0.0f;
    in.at(0, 0, 1, 1) = -0.1f;
    const Tensor4D out = relu.forward(in);
    EXPECT_EQ(out.at(0, 0, 0, 0), 0.0f);
    EXPECT_EQ(out.at(0, 0, 0, 1), 2.0f);
    EXPECT_EQ(out.at(0, 0, 1, 0), 0.0f);
    EXPECT_EQ(out.at(0, 0, 1, 1), 0.0f);
    EXPECT_DOUBLE_EQ(out.density(), 0.25);
}

TEST(ReluLayer, BackwardMasksGradient)
{
    ReLU relu("relu");
    Tensor4D in(Shape4D{1, 1, 1, 3});
    in.at(0, 0, 0, 0) = -1.0f;
    in.at(0, 0, 0, 1) = 3.0f;
    in.at(0, 0, 0, 2) = 0.0f;
    relu.forward(in);
    Tensor4D dy(in.shape());
    dy.fill(1.0f);
    const Tensor4D dx = relu.backward(dy);
    EXPECT_EQ(dx.at(0, 0, 0, 0), 0.0f);
    EXPECT_EQ(dx.at(0, 0, 0, 1), 1.0f);
    EXPECT_EQ(dx.at(0, 0, 0, 2), 0.0f);
}

TEST(ReluLayer, HalfDensityOnSymmetricInput)
{
    // Symmetric (zero-mean) pre-activations -> ~50% density, the paper's
    // conv0 observation.
    Rng rng(5);
    ReLU relu("relu");
    Tensor4D in(Shape4D{4, 16, 16, 16});
    for (float &v : in.data())
        v = static_cast<float>(rng.normal());
    const Tensor4D out = relu.forward(in);
    EXPECT_NEAR(out.density(), 0.5, 0.02);
}

TEST(SigmoidLayer, NeverProducesZeros)
{
    // Section III: sigmoid/tanh networks do not benefit from cDMA —
    // their activations are never exactly zero.
    Rng rng(6);
    Sigmoid sigmoid("sig");
    Tensor4D in(Shape4D{2, 4, 8, 8});
    for (float &v : in.data())
        v = static_cast<float>(rng.normal());
    const Tensor4D out = sigmoid.forward(in);
    EXPECT_DOUBLE_EQ(out.density(), 1.0);
}

TEST(TanhLayer, OutputBoundedAndDense)
{
    Rng rng(7);
    Tanh tanh_layer("tanh");
    Tensor4D in(Shape4D{1, 2, 4, 4});
    for (float &v : in.data())
        v = static_cast<float>(rng.normal(0.5, 2.0));
    const Tensor4D out = tanh_layer.forward(in);
    for (float v : out.data()) {
        EXPECT_GT(v, -1.0f);
        EXPECT_LT(v, 1.0f);
    }
    EXPECT_GT(out.density(), 0.99);
}

TEST(ConvLayer, IdentityKernelPassesThrough)
{
    Rng rng(8);
    Conv2D conv("conv", 1, ConvSpec{1, 1, 1, 0}, rng);
    // Overwrite random init with the identity kernel and zero bias.
    conv.params()[0]->value[0] = 1.0f;
    conv.params()[1]->value[0] = 0.0f;
    Tensor4D in(Shape4D{1, 1, 3, 3});
    for (int i = 0; i < 9; ++i)
        in.data()[static_cast<size_t>(i)] = static_cast<float>(i);
    const Tensor4D out = conv.forward(in);
    for (int i = 0; i < 9; ++i)
        EXPECT_FLOAT_EQ(out.data()[static_cast<size_t>(i)],
                        static_cast<float>(i));
}

TEST(ConvLayer, KnownConvolutionValue)
{
    Rng rng(9);
    Conv2D conv("conv", 1, ConvSpec{1, 3, 1, 0}, rng);
    auto params = conv.params();
    for (auto &w : params[0]->value)
        w = 1.0f; // box filter
    params[1]->value[0] = 0.5f;
    Tensor4D in(Shape4D{1, 1, 3, 3});
    in.fill(2.0f);
    const Tensor4D out = conv.forward(in);
    ASSERT_EQ(out.shape(), (Shape4D{1, 1, 1, 1}));
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 9 * 2.0f + 0.5f);
}

TEST(ConvLayer, StrideAndPadShapes)
{
    Rng rng(10);
    Conv2D conv("conv", 3, ConvSpec{8, 3, 2, 1}, rng);
    EXPECT_EQ(conv.outputShape(Shape4D{2, 3, 32, 32}),
              (Shape4D{2, 8, 16, 16}));
    EXPECT_EQ(Conv2D::forwardMacs(Shape4D{2, 3, 32, 32},
                                  ConvSpec{8, 3, 2, 1}),
              2ull * 8 * 16 * 16 * 3 * 3 * 3);
}

TEST(PoolLayer, MaxPicksWindowMaximum)
{
    Pool2D pool("pool", PoolSpec{2, 2, PoolMode::Max});
    Tensor4D in(Shape4D{1, 1, 2, 2});
    in.at(0, 0, 0, 0) = 1.0f;
    in.at(0, 0, 0, 1) = 4.0f;
    in.at(0, 0, 1, 0) = -2.0f;
    in.at(0, 0, 1, 1) = 3.0f;
    const Tensor4D out = pool.forward(in);
    ASSERT_EQ(out.elements(), 1);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 4.0f);
}

TEST(PoolLayer, AvgComputesWindowMean)
{
    Pool2D pool("pool", PoolSpec{2, 2, PoolMode::Avg});
    Tensor4D in(Shape4D{1, 1, 2, 2});
    in.at(0, 0, 0, 0) = 1.0f;
    in.at(0, 0, 0, 1) = 2.0f;
    in.at(0, 0, 1, 0) = 3.0f;
    in.at(0, 0, 1, 1) = 6.0f;
    const Tensor4D out = pool.forward(in);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 3.0f);
}

TEST(PoolLayer, MaxPoolIncreasesDensity)
{
    // Section IV-A: "pooling layers always increase activation density".
    Rng rng(11);
    Tensor4D in(Shape4D{2, 8, 16, 16});
    for (float &v : in.data())
        v = rng.bernoulli(0.4)
            ? static_cast<float>(std::abs(rng.normal())) : 0.0f;
    Pool2D pool("pool", PoolSpec{2, 2, PoolMode::Max});
    const Tensor4D out = pool.forward(in);
    EXPECT_GT(out.density(), in.density());
}

TEST(PoolLayer, MaxBackwardRoutesToArgmax)
{
    Pool2D pool("pool", PoolSpec{2, 2, PoolMode::Max});
    Tensor4D in(Shape4D{1, 1, 2, 2});
    in.at(0, 0, 0, 0) = 1.0f;
    in.at(0, 0, 0, 1) = 4.0f;
    in.at(0, 0, 1, 0) = -2.0f;
    in.at(0, 0, 1, 1) = 3.0f;
    pool.forward(in);
    Tensor4D dy(Shape4D{1, 1, 1, 1});
    dy.fill(5.0f);
    const Tensor4D dx = pool.backward(dy);
    EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 1), 5.0f);
    EXPECT_FLOAT_EQ(dx.at(0, 0, 0, 0), 0.0f);
    EXPECT_FLOAT_EQ(dx.at(0, 0, 1, 0), 0.0f);
    EXPECT_FLOAT_EQ(dx.at(0, 0, 1, 1), 0.0f);
}

TEST(PoolLayer, CeilModePartialWindows)
{
    Pool2D pool("pool", PoolSpec{3, 2, PoolMode::Max});
    // 5x5 with k3 s2 ceil mode -> 2x2 output.
    EXPECT_EQ(pool.outputShape(Shape4D{1, 1, 5, 5}),
              (Shape4D{1, 1, 2, 2}));
    // 6x6 -> ceil((6-3)/2)+1 = 3.
    EXPECT_EQ(pool.outputShape(Shape4D{1, 1, 6, 6}),
              (Shape4D{1, 1, 3, 3}));
}

TEST(FcLayer, KnownAffineTransform)
{
    Rng rng(12);
    FullyConnected fc("fc", 3, 2, rng);
    auto params = fc.params();
    // W = [[1,2,3],[4,5,6]], b = [0.5, -0.5]
    for (int i = 0; i < 6; ++i)
        params[0]->value[static_cast<size_t>(i)] =
            static_cast<float>(i + 1);
    params[1]->value[0] = 0.5f;
    params[1]->value[1] = -0.5f;
    Tensor4D in(Shape4D{1, 3, 1, 1});
    in.at(0, 0, 0, 0) = 1.0f;
    in.at(0, 1, 0, 0) = 1.0f;
    in.at(0, 2, 0, 0) = 1.0f;
    const Tensor4D out = fc.forward(in);
    EXPECT_FLOAT_EQ(out.at(0, 0, 0, 0), 6.5f);
    EXPECT_FLOAT_EQ(out.at(0, 1, 0, 0), 14.5f);
}

TEST(FcLayer, FlattensSpatialInput)
{
    Rng rng(13);
    FullyConnected fc("fc", 2 * 3 * 3, 4, rng);
    Tensor4D in(Shape4D{2, 2, 3, 3});
    in.fill(1.0f);
    const Tensor4D out = fc.forward(in);
    EXPECT_EQ(out.shape(), (Shape4D{2, 4, 1, 1}));
}

TEST(DropoutLayer, TrainingZerosApproximatelyRate)
{
    Rng rng(14);
    Dropout dropout("drop", 0.5f, rng);
    dropout.setTraining(true);
    Tensor4D in(Shape4D{1, 1, 100, 100});
    in.fill(1.0f);
    const Tensor4D out = dropout.forward(in);
    EXPECT_NEAR(out.density(), 0.5, 0.05);
}

TEST(DropoutLayer, InferenceIsIdentity)
{
    Rng rng(15);
    Dropout dropout("drop", 0.5f, rng);
    dropout.setTraining(false);
    Tensor4D in(Shape4D{1, 1, 4, 4});
    in.fill(2.0f);
    const Tensor4D out = dropout.forward(in);
    for (float v : out.data())
        EXPECT_FLOAT_EQ(v, 2.0f);
}

TEST(DropoutLayer, InvertedScalingPreservesExpectation)
{
    Rng rng(16);
    Dropout dropout("drop", 0.5f, rng);
    dropout.setTraining(true);
    Tensor4D in(Shape4D{1, 1, 128, 128});
    in.fill(1.0f);
    const Tensor4D out = dropout.forward(in);
    double sum = 0.0;
    for (float v : out.data())
        sum += v;
    // E[output] = input with inverted dropout.
    EXPECT_NEAR(sum / static_cast<double>(out.elements()), 1.0, 0.06);
}

TEST(LrnLayer, PreservesZerosAndShape)
{
    // LRN rescales by a positive factor, so zero stays exactly zero —
    // the property that lets us treat it as sparsity-transparent.
    Lrn lrn("lrn");
    Tensor4D in(Shape4D{1, 8, 4, 4});
    Rng rng(17);
    for (float &v : in.data())
        v = rng.bernoulli(0.5)
            ? static_cast<float>(std::abs(rng.normal())) : 0.0f;
    const Tensor4D out = lrn.forward(in);
    EXPECT_EQ(out.shape(), in.shape());
    EXPECT_EQ(out.zeroCount(), in.zeroCount());
}

TEST(LrnLayer, NormalizesLargeActivityDown)
{
    Lrn lrn("lrn");
    Tensor4D in(Shape4D{1, 5, 1, 1});
    in.fill(10.0f);
    const Tensor4D out = lrn.forward(in);
    // Denominator > 1 -> outputs shrink.
    for (float v : out.data())
        EXPECT_LT(v, 10.0f);
}

} // namespace
} // namespace cdma
