/** @file Unit tests for the bandwidth-limited FIFO and duplex channels. */

#include <vector>

#include <gtest/gtest.h>

#include "sim/channel.hh"

namespace cdma {
namespace {

using Direction = DuplexChannel::Direction;

TEST(Channel, SingleTransferTakesBytesOverBandwidth)
{
    EventQueue queue;
    Channel link(queue, "pcie", 16e9);
    double done_at = -1.0;
    link.submit(16'000'000'000ull, [&] { done_at = queue.now(); });
    queue.run();
    EXPECT_NEAR(done_at, 1.0, 1e-9);
}

TEST(Channel, TransfersServiceFifo)
{
    EventQueue queue;
    Channel link(queue, "link", 100.0); // 100 B/s
    std::vector<int> order;
    double second_done = -1.0;
    link.submit(100, [&] { order.push_back(1); });
    link.submit(50, [&] {
        order.push_back(2);
        second_done = queue.now();
    });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_NEAR(second_done, 1.5, 1e-12);
}

TEST(Channel, ExtraLatencyAddsToService)
{
    EventQueue queue;
    Channel link(queue, "link", 100.0);
    double done_at = -1.0;
    link.submit(100, [&] { done_at = queue.now(); }, 0.25);
    queue.run();
    EXPECT_NEAR(done_at, 1.25, 1e-12);
}

TEST(Channel, TracksTotals)
{
    EventQueue queue;
    Channel link(queue, "link", 1000.0);
    link.submit(500, nullptr);
    link.submit(250, nullptr);
    queue.run();
    EXPECT_EQ(link.totalBytes(), 750u);
    EXPECT_NEAR(link.busySeconds(), 0.75, 1e-12);
}

TEST(Channel, UtilizationReflectsIdleTime)
{
    EventQueue queue;
    Channel link(queue, "link", 100.0);
    link.submit(100, nullptr); // busy [0, 1]
    queue.run();
    // Idle until t=3, then busy one more second.
    queue.scheduleAt(3.0, [&] { link.submit(100, nullptr); });
    queue.run();
    EXPECT_NEAR(link.utilization(), 2.0 / 4.0, 1e-12);
}

TEST(Channel, SubmitAfterIdleStartsImmediately)
{
    EventQueue queue;
    Channel link(queue, "link", 100.0);
    double done_at = -1.0;
    queue.scheduleAt(5.0, [&] {
        link.submit(100, [&] { done_at = queue.now(); });
    });
    queue.run();
    EXPECT_NEAR(done_at, 6.0, 1e-12);
}

TEST(DuplexChannel, FullDuplexDirectionsAreIndependent)
{
    EventQueue queue;
    DuplexChannel link(queue, "pcie", 100.0, DuplexMode::Full);
    double out_done = -1.0, in_done = -1.0;
    link.submit(Direction::Out, 100,
                [&](const DuplexChannel::Grant &g) {
                    out_done = g.end;
                    EXPECT_DOUBLE_EQ(g.opposing_wait, 0.0);
                });
    link.submit(Direction::In, 200,
                [&](const DuplexChannel::Grant &g) {
                    in_done = g.end;
                    EXPECT_DOUBLE_EQ(g.opposing_wait, 0.0);
                });
    queue.run();
    // Both directions at the full rate simultaneously: no interaction.
    EXPECT_NEAR(out_done, 1.0, 1e-12);
    EXPECT_NEAR(in_done, 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(link.blockedSeconds(Direction::Out), 0.0);
    EXPECT_DOUBLE_EQ(link.blockedSeconds(Direction::In), 0.0);
}

TEST(DuplexChannel, HalfDuplexSerializesBothDirections)
{
    EventQueue queue;
    DuplexChannel link(queue, "pcie", 100.0, DuplexMode::Half);
    double out_done = -1.0, in_done = -1.0;
    double in_wait = -1.0;
    link.submit(Direction::Out, 100,
                [&](const DuplexChannel::Grant &g) { out_done = g.end; });
    link.submit(Direction::In, 200,
                [&](const DuplexChannel::Grant &g) {
                    in_done = g.end;
                    in_wait = g.opposing_wait;
                });
    queue.run();
    // One shared link: the In transfer waits out the full Out service.
    EXPECT_NEAR(out_done, 1.0, 1e-12);
    EXPECT_NEAR(in_done, 3.0, 1e-12);
    EXPECT_NEAR(in_wait, 1.0, 1e-12);
    EXPECT_NEAR(link.blockedSeconds(Direction::In), 1.0, 1e-12);
    EXPECT_NEAR(link.contentionSeconds(Direction::In), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(link.contentionSeconds(Direction::Out), 0.0);
}

TEST(DuplexChannel, SingleDirectionDegeneratesToFifoChannel)
{
    // With the opposing direction idle, both duplex modes must
    // reproduce the plain Channel's FIFO timeline exactly.
    for (const DuplexMode mode : {DuplexMode::Full, DuplexMode::Half}) {
        EventQueue queue;
        Channel reference(queue, "ref", 100.0);
        DuplexChannel link(queue, "pcie", 100.0, mode);
        std::vector<double> ref_ends, dup_ends;
        for (const uint64_t bytes : {100ull, 50ull, 250ull, 1ull}) {
            reference.submit(bytes,
                             [&] { ref_ends.push_back(queue.now()); });
            link.submit(Direction::Out, bytes,
                        [&](const DuplexChannel::Grant &g) {
                            dup_ends.push_back(g.end);
                            EXPECT_DOUBLE_EQ(g.opposing_wait, 0.0);
                        });
        }
        queue.run();
        ASSERT_EQ(ref_ends.size(), dup_ends.size());
        for (size_t i = 0; i < ref_ends.size(); ++i)
            EXPECT_DOUBLE_EQ(dup_ends[i], ref_ends[i]) << i;
        EXPECT_DOUBLE_EQ(link.busySeconds(Direction::Out),
                         reference.busySeconds());
    }
}

TEST(DuplexChannel, RoundRobinAlternatesUnderSymmetricLoad)
{
    EventQueue queue;
    DuplexChannel link(queue, "pcie", 100.0, DuplexMode::Half,
                       LinkArbiter::RoundRobin);
    std::vector<Direction> served;
    for (int i = 0; i < 3; ++i) {
        link.submit(Direction::Out, 100,
                    [&](const DuplexChannel::Grant &) {
                        served.push_back(Direction::Out);
                    });
        link.submit(Direction::In, 100,
                    [&](const DuplexChannel::Grant &) {
                        served.push_back(Direction::In);
                    });
    }
    queue.run();
    // Strict alternation, Out first (the arbiter's initial tie-break).
    const std::vector<Direction> expected = {
        Direction::Out, Direction::In,  Direction::Out,
        Direction::In,  Direction::Out, Direction::In};
    EXPECT_EQ(served, expected);
    // Fairness: symmetric load, symmetric service.
    EXPECT_DOUBLE_EQ(link.busySeconds(Direction::Out),
                     link.busySeconds(Direction::In));
}

TEST(DuplexChannel, PriorityArbiterDrainsTheNamedDirectionFirst)
{
    for (const LinkArbiter arbiter :
         {LinkArbiter::OffloadFirst, LinkArbiter::PrefetchFirst}) {
        EventQueue queue;
        DuplexChannel link(queue, "pcie", 100.0, DuplexMode::Half,
                           arbiter);
        std::vector<Direction> served;
        // Seed one transfer per direction, then two more per direction
        // while the link is busy: the favored direction drains fully
        // before the other gets a second grant.
        for (int i = 0; i < 3; ++i) {
            link.submit(Direction::Out, 100,
                        [&](const DuplexChannel::Grant &) {
                            served.push_back(Direction::Out);
                        });
            link.submit(Direction::In, 100,
                        [&](const DuplexChannel::Grant &) {
                            served.push_back(Direction::In);
                        });
        }
        queue.run();
        // The very first Out starts the moment it is submitted (link
        // idle, nothing else pending); from then on every grant goes to
        // the favored direction until its queue drains.
        const std::vector<Direction> expected =
            arbiter == LinkArbiter::OffloadFirst
            ? std::vector<Direction>{Direction::Out, Direction::Out,
                                     Direction::Out, Direction::In,
                                     Direction::In, Direction::In}
            : std::vector<Direction>{Direction::Out, Direction::In,
                                     Direction::In, Direction::In,
                                     Direction::Out, Direction::Out};
        EXPECT_EQ(served, expected) << linkArbiterName(arbiter);
    }
}

TEST(DuplexChannel, ConservationBusyTimeBoundedByMakespan)
{
    // Half duplex: one link, so the two directions' busy seconds sum to
    // at most the makespan. Full duplex: each direction alone is
    // bounded by the makespan (2 directions x makespan in total).
    for (const DuplexMode mode : {DuplexMode::Half, DuplexMode::Full}) {
        EventQueue queue;
        DuplexChannel link(queue, "pcie", 100.0, mode);
        for (int i = 0; i < 7; ++i) {
            link.submit(Direction::Out, 50 + 30 * i, nullptr);
            link.submit(Direction::In, 200 - 20 * i, nullptr);
        }
        queue.run();
        const double makespan = link.lastDrain();
        // The occupancy union (the utilization numerator) never
        // exceeds wall time in either mode.
        EXPECT_LE(link.occupiedSeconds(), makespan + 1e-12);
        if (mode == DuplexMode::Half) {
            EXPECT_LE(link.busySeconds(), makespan + 1e-12);
            // One serial link: occupancy equals total service time.
            EXPECT_NEAR(link.occupiedSeconds(), link.busySeconds(),
                        1e-12);
        } else {
            EXPECT_LE(link.busySeconds(Direction::Out), makespan + 1e-12);
            EXPECT_LE(link.busySeconds(Direction::In), makespan + 1e-12);
            EXPECT_LE(link.busySeconds(), 2.0 * makespan + 1e-12);
            // Both directions busy from t=0 here: the union is the
            // slower direction alone, strictly less than the sum.
            EXPECT_LT(link.occupiedSeconds(), link.busySeconds());
        }
    }
}

} // namespace
} // namespace cdma
