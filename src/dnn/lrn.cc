#include "dnn/lrn.hh"

#include <algorithm>
#include <cmath>

namespace cdma {

Lrn::Lrn(std::string name, const LrnSpec &spec)
    : Layer(std::move(name)), spec_(spec)
{
}

Shape4D
Lrn::outputShape(const Shape4D &input) const
{
    return input;
}

Tensor4D
Lrn::forward(const Tensor4D &input)
{
    cached_input_ = input;
    const Shape4D &shape = input.shape();
    Tensor4D output(shape);
    cached_scale_ = Tensor4D(shape);

    const int64_t half = spec_.local_size / 2;
    const float alpha_over_n =
        spec_.alpha / static_cast<float>(spec_.local_size);

    for (int64_t n = 0; n < shape.n; ++n) {
        for (int64_t c = 0; c < shape.c; ++c) {
            const int64_t c0 = std::max<int64_t>(0, c - half);
            const int64_t c1 = std::min(shape.c - 1, c + half);
            for (int64_t h = 0; h < shape.h; ++h) {
                for (int64_t w = 0; w < shape.w; ++w) {
                    float sumsq = 0.0f;
                    for (int64_t cc = c0; cc <= c1; ++cc) {
                        const float v = input.at(n, cc, h, w);
                        sumsq += v * v;
                    }
                    const float scale = spec_.k + alpha_over_n * sumsq;
                    cached_scale_.at(n, c, h, w) = scale;
                    output.at(n, c, h, w) = input.at(n, c, h, w) *
                        std::pow(scale, -spec_.beta);
                }
            }
        }
    }
    return output;
}

Tensor4D
Lrn::backward(const Tensor4D &output_grad)
{
    // Diagonal-only approximation of the LRN Jacobian: exact for the
    // self-term, omitting the (small, O(alpha)) cross-channel terms. This
    // keeps the backward pass O(N*C*H*W) and is a standard shortcut for
    // small-alpha LRN; gradients remain descent directions.
    const Shape4D &shape = cached_input_.shape();
    Tensor4D input_grad(shape);
    auto dy = output_grad.data();
    auto scale = cached_scale_.data();
    auto dx = input_grad.data();
    for (size_t i = 0; i < dy.size(); ++i)
        dx[i] = dy[i] * std::pow(scale[i], -spec_.beta);
    return input_grad;
}

} // namespace cdma
