/**
 * @file
 * Softmax + cross-entropy loss head. Computes the loss value the paper
 * plots in Figure 7 and produces the initial gradient for backward
 * propagation.
 */

#ifndef CDMA_DNN_LOSS_HH
#define CDMA_DNN_LOSS_HH

#include <vector>

#include "tensor/tensor.hh"

namespace cdma {

/** Fused softmax + cross-entropy over (N, classes, 1, 1) logits. */
class SoftmaxCrossEntropy
{
  public:
    /**
     * Forward: compute per-batch mean loss.
     *
     * @param logits (N, classes, 1, 1) tensor.
     * @param labels One class index per sample. @pre labels.size() == N.
     * @return Mean cross-entropy loss.
     */
    double forward(const Tensor4D &logits,
                   const std::vector<int> &labels);

    /** Gradient of the mean loss w.r.t. the logits. */
    Tensor4D backward() const;

    /** Class predictions (argmax) from the last forward pass. */
    const std::vector<int> &predictions() const { return predictions_; }

    /** Top-1 accuracy of the last forward pass. */
    double accuracy() const { return accuracy_; }

  private:
    Tensor4D probabilities_;
    std::vector<int> labels_;
    std::vector<int> predictions_;
    double accuracy_ = 0.0;
};

} // namespace cdma

#endif // CDMA_DNN_LOSS_HH
