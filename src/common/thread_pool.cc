#include "common/thread_pool.hh"

#include <atomic>
#include <exception>

#include "common/logging.hh"

namespace cdma {

ThreadPool::ThreadPool(unsigned lanes)
{
    if (lanes == 0) {
        lanes = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(lanes - 1);
    for (unsigned i = 0; i + 1 < lanes; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_cv_.wait(lock,
                          [this] { return stopping_ || !tasks_.empty(); });
            if (tasks_.empty())
                return; // stopping and drained
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::submitDetached(std::function<void()> task)
{
    CDMA_ASSERT(hasWorkers(),
                "detached tasks need worker threads (lanes > 1)");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
    }
    work_cv_.notify_one();
}

void
ThreadPool::parallelFor(uint64_t count,
                        const std::function<void(uint64_t)> &fn)
{
    if (count == 0)
        return;
    if (workers_.empty() || count == 1) {
        for (uint64_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    // Dynamic scheduling: every lane pulls the next unclaimed index, so
    // unevenly sized shards (e.g. the last partial window group) cannot
    // leave a lane idle while another is overloaded. A throwing fn must
    // not escape a worker thread (std::terminate); the first exception
    // is captured, the index space is abandoned so every lane exits its
    // pull loop promptly, and the rendezvous below rethrows it on the
    // calling thread once all lanes have stopped touching this frame.
    std::atomic<uint64_t> next{0};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    auto drain = [&] {
        for (;;) {
            const uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                break;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                next.store(count, std::memory_order_relaxed);
            }
        }
    };

    // One queued task per worker that could usefully participate; each
    // task loops until the index space is exhausted, so completion of all
    // queued tasks plus the inline drain implies completion of all work.
    const uint64_t helpers =
        std::min<uint64_t>(workers_.size(), count - 1);
    std::atomic<uint64_t> exited{0};
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (uint64_t i = 0; i < helpers; ++i) {
            tasks_.push([&] {
                drain();
                if (exited.fetch_add(1) + 1 == helpers) {
                    std::lock_guard<std::mutex> inner(mutex_);
                    done_cv_.notify_all();
                }
            });
        }
    }
    work_cv_.notify_all();

    drain();

    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] { return exited.load() == helpers; });
    }
    // All lanes have left their pull loops: safe to rethrow (no lock
    // needed — the join above is the synchronization point).
    if (first_error)
        std::rethrow_exception(first_error);
}

} // namespace cdma
