/**
 * @file
 * Unit tests for the full-size network descriptors: layer shapes must
 * match the published architectures (several are printed verbatim in the
 * paper's Figure 5), and aggregate MAC/byte counts must land in the known
 * ballparks.
 */

#include <gtest/gtest.h>

#include "models/desc.hh"

namespace cdma {
namespace {

const LayerDesc &
findLayer(const NetworkDesc &network, const std::string &name)
{
    for (const auto &layer : network.layers) {
        if (layer.name == name)
            return layer;
    }
    ADD_FAILURE() << "layer " << name << " not found in " << network.name;
    static LayerDesc dummy;
    return dummy;
}

TEST(AlexNetDesc, ShapesMatchFigure5)
{
    const NetworkDesc net = alexNetDesc();
    // Figure 5 annotates (C, H, W) for every AlexNet layer.
    EXPECT_EQ(findLayer(net, "conv0").shape(1), (Shape4D{1, 96, 55, 55}));
    EXPECT_EQ(findLayer(net, "pool0").shape(1), (Shape4D{1, 96, 27, 27}));
    EXPECT_EQ(findLayer(net, "conv1").shape(1),
              (Shape4D{1, 256, 27, 27}));
    EXPECT_EQ(findLayer(net, "pool1").shape(1),
              (Shape4D{1, 256, 13, 13}));
    EXPECT_EQ(findLayer(net, "conv2").shape(1),
              (Shape4D{1, 384, 13, 13}));
    EXPECT_EQ(findLayer(net, "conv3").shape(1),
              (Shape4D{1, 384, 13, 13}));
    EXPECT_EQ(findLayer(net, "conv4").shape(1),
              (Shape4D{1, 256, 13, 13}));
    EXPECT_EQ(findLayer(net, "pool2").shape(1), (Shape4D{1, 256, 6, 6}));
    EXPECT_EQ(findLayer(net, "fc1").shape(1), (Shape4D{1, 4096, 1, 1}));
    EXPECT_EQ(findLayer(net, "fc2").shape(1), (Shape4D{1, 4096, 1, 1}));
}

TEST(AlexNetDesc, MacsInKnownBallpark)
{
    // AlexNet forward is ~0.7 GMAC/image (single-tower grouping).
    const NetworkDesc net = alexNetDesc();
    const double gmacs =
        static_cast<double>(net.totalMacsPerImage()) / 1e9;
    EXPECT_GT(gmacs, 0.5);
    EXPECT_LT(gmacs, 1.3);
}

TEST(AlexNetDesc, TableOneBatch)
{
    EXPECT_EQ(alexNetDesc().default_batch, 256);
    EXPECT_EQ(ninDesc().default_batch, 128);
    EXPECT_EQ(vggDesc().default_batch, 128);
    EXPECT_EQ(squeezeNetDesc().default_batch, 512);
    EXPECT_EQ(googLeNetDesc().default_batch, 256);
    EXPECT_EQ(overFeatDesc().default_batch, 256);
}

TEST(VggDesc, ShapesMatchArchitecture)
{
    const NetworkDesc net = vggDesc();
    EXPECT_EQ(findLayer(net, "conv1_2").shape(1),
              (Shape4D{1, 64, 224, 224}));
    EXPECT_EQ(findLayer(net, "conv3_3").shape(1),
              (Shape4D{1, 256, 56, 56}));
    EXPECT_EQ(findLayer(net, "conv5_3").shape(1),
              (Shape4D{1, 512, 14, 14}));
    EXPECT_EQ(findLayer(net, "pool5").shape(1), (Shape4D{1, 512, 7, 7}));
    EXPECT_EQ(findLayer(net, "fc6").shape(1), (Shape4D{1, 4096, 1, 1}));
}

TEST(VggDesc, MacsAreLargest)
{
    // VGG-16 forward is ~15.5 GMAC/image, the heaviest of the six.
    const NetworkDesc vgg = vggDesc();
    const double gmacs =
        static_cast<double>(vgg.totalMacsPerImage()) / 1e9;
    EXPECT_GT(gmacs, 13.0);
    EXPECT_LT(gmacs, 18.0);
    for (const auto &other : allNetworkDescs()) {
        if (other.name != "VGG") {
            EXPECT_GT(vgg.totalMacsPerImage(),
                      other.totalMacsPerImage());
        }
    }
}

TEST(GoogLeNetDesc, InceptionChannelArithmetic)
{
    const NetworkDesc net = googLeNetDesc();
    EXPECT_EQ(findLayer(net, "3a").channels, 256);
    EXPECT_EQ(findLayer(net, "3b").channels, 480);
    EXPECT_EQ(findLayer(net, "4e").channels, 832);
    EXPECT_EQ(findLayer(net, "5b").channels, 1024);
    EXPECT_EQ(findLayer(net, "3a").shape(1).h, 28);
    EXPECT_EQ(findLayer(net, "5b").shape(1).h, 7);
}

TEST(SqueezeNetDesc, FireModuleShapes)
{
    const NetworkDesc net = squeezeNetDesc();
    EXPECT_EQ(findLayer(net, "fire2").channels, 128);
    EXPECT_EQ(findLayer(net, "fire2/squeeze").channels, 16);
    EXPECT_EQ(findLayer(net, "fire9").channels, 512);
    EXPECT_EQ(findLayer(net, "fire9").shape(1).h, 13);
    // conv1 7x7 stride 2 on 227 -> 111.
    EXPECT_EQ(findLayer(net, "conv1").shape(1),
              (Shape4D{1, 96, 111, 111}));
}

TEST(NinDesc, CccpLayersPreserveShape)
{
    const NetworkDesc net = ninDesc();
    EXPECT_EQ(findLayer(net, "conv1").shape(1), (Shape4D{1, 96, 55, 55}));
    EXPECT_EQ(findLayer(net, "cccp1").shape(1), (Shape4D{1, 96, 55, 55}));
    EXPECT_EQ(findLayer(net, "cccp8").channels, 1000);
    EXPECT_EQ(findLayer(net, "gap").shape(1), (Shape4D{1, 1000, 1, 1}));
}

TEST(OverFeatDesc, WideLateConvs)
{
    const NetworkDesc net = overFeatDesc();
    EXPECT_EQ(findLayer(net, "conv1").shape(1), (Shape4D{1, 96, 56, 56}));
    EXPECT_EQ(findLayer(net, "conv5").shape(1),
              (Shape4D{1, 1024, 12, 12}));
    EXPECT_EQ(findLayer(net, "fc6").channels, 3072);
}

class DescInvariants : public ::testing::TestWithParam<int>
{
};

TEST_P(DescInvariants, EveryLayerWellFormed)
{
    const NetworkDesc net =
        allNetworkDescs()[static_cast<size_t>(GetParam())];
    ASSERT_FALSE(net.layers.empty());
    double prev_depth = -1.0;
    for (const auto &layer : net.layers) {
        EXPECT_GT(layer.channels, 0) << layer.name;
        EXPECT_GT(layer.height, 0) << layer.name;
        EXPECT_GT(layer.width, 0) << layer.name;
        EXPECT_GT(layer.depth_fraction, prev_depth) << layer.name;
        prev_depth = layer.depth_fraction;
    }
    EXPECT_DOUBLE_EQ(net.layers.front().depth_fraction, 0.0);
    EXPECT_DOUBLE_EQ(net.layers.back().depth_fraction, 1.0);
    EXPECT_GT(net.totalMacsPerImage(), 0u);
    EXPECT_GT(net.totalActivationBytesPerImage(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllNetworks, DescInvariants,
                         ::testing::Range(0, 6),
                         [](const auto &info) {
                             return allNetworkDescs()
                                 [static_cast<size_t>(info.param)].name;
                         });

TEST(DescAggregate, ActivationsDominateWeights)
{
    // Section III: activations are >90% of memory for training; at Table
    // I batch sizes, activation bytes dwarf the per-image MAC-derived
    // weight sizes for the conv-heavy networks.
    const NetworkDesc vgg = vggDesc();
    const uint64_t act =
        vgg.totalActivationBytesPerImage() *
        static_cast<uint64_t>(vgg.default_batch);
    EXPECT_GT(act, 10ull * 1024 * 1024 * 1024 / 4); // > 2.5 GiB
}

} // namespace
} // namespace cdma
