/** @file Unit tests for the discrete-event queue. */

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace cdma {
namespace {

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.scheduleAt(3.0, [&] { order.push_back(3); });
    queue.scheduleAt(1.0, [&] { order.push_back(1); });
    queue.scheduleAt(2.0, [&] { order.push_back(2); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsAreFifo)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        queue.scheduleAt(1.0, [&order, i] { order.push_back(i); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents)
{
    EventQueue queue;
    int fired = 0;
    std::function<void()> chain = [&]() {
        ++fired;
        if (fired < 10)
            queue.scheduleAfter(1.0, chain);
    };
    queue.scheduleAfter(1.0, chain);
    const uint64_t executed = queue.run();
    EXPECT_EQ(executed, 10u);
    EXPECT_DOUBLE_EQ(queue.now(), 10.0);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue queue;
    double fired_at = -1.0;
    queue.scheduleAt(5.0, [&] {
        queue.scheduleAfter(2.5, [&] { fired_at = queue.now(); });
    });
    queue.run();
    EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(EventQueue, MaxEventsGuardStopsRunaway)
{
    EventQueue queue;
    std::function<void()> forever = [&]() {
        queue.scheduleAfter(1.0, forever);
    };
    queue.scheduleAfter(1.0, forever);
    const uint64_t executed = queue.run(100);
    EXPECT_EQ(executed, 100u);
    EXPECT_EQ(queue.pending(), 1u);
}

TEST(EventQueue, ResetClearsStateAndClock)
{
    EventQueue queue;
    queue.scheduleAt(10.0, [] {});
    queue.reset();
    EXPECT_EQ(queue.pending(), 0u);
    EXPECT_DOUBLE_EQ(queue.now(), 0.0);
}

TEST(EventQueueDeathTest, SchedulingIntoThePastPanics)
{
    EventQueue queue;
    queue.scheduleAt(5.0, [] {});
    queue.run();
    EXPECT_DEATH(queue.scheduleAt(1.0, [] {}), "past");
}

} // namespace
} // namespace cdma
