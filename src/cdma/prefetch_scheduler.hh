/**
 * @file
 * Async double-buffered prefetch pipeline — the mirror image of
 * OffloadScheduler for the backward pass. When backpropagation needs a
 * layer's input activations back, the compressed shards cross PCIe into
 * a staging buffer while the decompression engine (the paper's DPE
 * replicas, Section V-B) re-inflates the previously landed shard into
 * GPU DRAM, so shard k+1's wire time overlaps shard k's decompression.
 *
 * Since the full-duplex refactor this scheduler is a thin facade over
 * TransferEngine: the real-bytes flows and the DES both run on the
 * unified duplex engine with the offload direction idle, which
 * degenerates exactly to the single-direction pipeline modeled here.
 * The PrefetchTiming type and the allocation-free closed form
 * (modelFromRatio) are kept as that degenerate case; for uniform shards
 * (wire time w, decompression time d, n shards) the makespan keeps the
 * closed form
 *
 *     overlapped = n * max(w, d) + min(w, d)
 *
 * which tests/cdma/prefetch_scheduler_test.cc pins against the duplex
 * DES to 1e-9 relative error.
 */

#ifndef CDMA_CDMA_PREFETCH_SCHEDULER_HH
#define CDMA_CDMA_PREFETCH_SCHEDULER_HH

#include <span>
#include <vector>

#include "cdma/transfer_engine.hh"

namespace cdma {

/**
 * Drives decompression and models the double-buffered transfer/expand
 * pipeline for one cDMA engine (the prefetch-only view of the duplex
 * TransferEngine).
 */
class PrefetchScheduler
{
  public:
    explicit PrefetchScheduler(const CdmaEngine &engine);

    /** Windows per staging shard (>= 1), from CdmaConfig::shard_bytes. */
    uint64_t shardWindows() const { return engine_.shardWindows(); }

    /**
     * Prefetch @p buffer: reconstruct it shard-by-shard on the engine's
     * lanes (consumed in deterministic shard order, while later shards
     * are still expanding) and model the double-buffered pipeline over
     * the measured per-shard sizes. Decode errors on a corrupt or
     * truncated payload propagate as a non-OK Status.
     */
    StatusOr<PrefetchResult> prefetch(const CompressedBuffer &buffer) const;

    /**
     * Prefetch a spilled buffer straight out of @p arena's shard slots
     * (no stitched CompressedBuffer in between). The ticket stays live;
     * the caller releases it once the restored bytes are consumed.
     * Shard payloads are CRC-verified before expansion, and a
     * configured fault injector is sampled per crossing (see
     * TransferEngine::prefetch).
     */
    StatusOr<PrefetchResult> prefetch(const SpillArena &arena,
                                      SpillTicket ticket) const;

    /**
     * Pipeline timing for a prefetch of @p raw_bytes at a known
     * compression ratio (the analytic path): uniform staging shards at
     * ratio, a trailing partial shard when raw_bytes is not a multiple
     * of the shard size. Allocation-free closed form mirroring
     * OffloadScheduler::modelFromRatio with the stages swapped; the
     * duplex DES (pipelineTiming) is the reference and the tests pin
     * equality to 1e-9 relative error.
     */
    PrefetchTiming modelFromRatio(uint64_t raw_bytes, double ratio) const;

    /**
     * The single-direction pipeline reference: the duplex DES
     * (TransferEngine::pipelineTiming) with the offload direction idle.
     * Shard k's wire transfer starts when the (FIFO) channel is free
     * AND a staging buffer is free (shard k - staging_buffers + 1 has
     * been re-inflated); its decompression starts when its last wire
     * byte lands and the serial decompression engine is free.
     */
    static PrefetchTiming pipelineTiming(
        std::span<const ShardTransfer> shards, double wire_bandwidth,
        double decompress_bandwidth, unsigned staging_buffers = 2);

  private:
    TransferEngine engine_;
};

} // namespace cdma

#endif // CDMA_CDMA_PREFETCH_SCHEDULER_HH
