#include "cdma/transfer_engine.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <queue>

#include "common/bits.hh"
#include "common/logging.hh"
#include "compress/kernels/kernels.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/channel.hh"
#include "sim/event_queue.hh"
#include "sim/fault_injector.hh"

namespace cdma {

namespace {

/** Total exponential backoff of a shard that took @p attempts
 *  crossings: base, 2*base, ... summing to base * (2^(attempts-1) - 1). */
double
backoffSeconds(uint32_t attempts, double base)
{
    if (attempts <= 1 || base <= 0.0)
        return 0.0;
    return base * (std::ldexp(1.0, static_cast<int>(attempts) - 1) - 1.0);
}

/**
 * Receiver-side view of one sampled crossing: applies @p outcome to a
 * scratch copy of @p payload and runs the same length + CRC-32C framing
 * checks a clean landing passes, charging the appropriate counter for
 * rejected crossings. Returns true when the payload landed usable.
 * (A lost or short crossing is rejected by the framing length before
 * any CRC work; bit flips are what the CRC catches — CRC-32C detects
 * every error of fewer than 4 flipped bits at these payload sizes, so
 * the fall-through "damage evaded detection" arm is unreachable in
 * practice but kept honest.)
 */
bool
crossingLanded(const sim::FaultOutcome &outcome,
               std::span<const uint8_t> payload, uint32_t expected_crc,
               const KernelOps &kernels, TransferIntegrity &integrity)
{
    if (outcome.clean())
        return true;
    if (outcome.link_failed || outcome.truncated) {
        ++integrity.link_faults;
        return false;
    }
    ByteVec scratch(payload.begin(), payload.end());
    for (size_t i = 0; i < outcome.flip_offsets.size(); ++i)
        scratch[outcome.flip_offsets[i]] ^= outcome.flip_masks[i];
    if (kernels.crc32(0, scratch.data(), scratch.size()) !=
        expected_crc) {
        ++integrity.crc_failures;
        return false;
    }
    return true;
}

/**
 * Downgrade @p shard to raw framing: the payload becomes the shard's
 * uncompressed source bytes (no decode step can fail on the far side),
 * the per-window sizes become raw sizes, and the CRC is re-framed over
 * the new payload — the robustness analogue of store-raw.
 */
void
degradeToRaw(CompressedShard &shard, std::span<const uint8_t> data,
             uint64_t window_bytes, const KernelOps &kernels)
{
    const uint64_t begin = shard.first_window * window_bytes;
    shard.payload.assign(
        data.begin() + static_cast<ptrdiff_t>(begin),
        data.begin() + static_cast<ptrdiff_t>(begin + shard.raw_bytes));
    uint64_t remaining = shard.raw_bytes;
    for (uint32_t &size : shard.window_sizes) {
        size = static_cast<uint32_t>(
            std::min<uint64_t>(window_bytes, remaining));
        remaining -= size;
    }
    shard.raw_framed = true;
    shard.crc32c =
        kernels.crc32(0, shard.payload.data(), shard.payload.size());
}

/**
 * Emit the pseudo-clock instant of one rejected crossing on the arena
 * flows (no DES timeline exists there); no-op without a recorder. The
 * cause mirrors crossingLanded()'s rejection order: lost/short
 * crossings are link faults, surviving damage is a CRC failure.
 */
void
traceRejectedCrossing(obs::TraceRecorder *trace, const char *flow,
                      const sim::FaultOutcome &outcome, size_t shard,
                      uint32_t attempt)
{
    if (trace == nullptr)
        return;
    const uint32_t track = trace->track("integrity", flow);
    const char *cause = (outcome.link_failed || outcome.truncated)
        ? "link_fault"
        : "crc_failure";
    trace->instant(track, cause, trace->tick(),
                   obs::TraceArgs{{"shard", shard}, {"attempt", attempt}});
}

/** Spill-completion hook of the arena flows: a plain SpillArena has no
 *  notion of completion; a tiered one seals the spill, making it
 *  eligible for eviction to its backing tier. */
void
sealSpill(SpillArena &, SpillTicket)
{
}

void
sealSpill(TieredSpillArena &arena, SpillTicket ticket)
{
    arena.seal(ticket);
}

} // namespace

TransferEngine::TransferEngine(const CdmaEngine &engine)
    : engine_(engine)
{
    const CdmaConfig &config = engine.config();
    const uint64_t shard_bytes = config.transfer.shard_bytes > 0
        ? config.transfer.shard_bytes
        : config.gpu.dmaBufferBytes();
    shard_windows_ = std::max<uint64_t>(1, shard_bytes /
                                               config.compression.window_bytes);
    CDMA_ASSERT(config.transfer.staging_buffers >= 1,
                "the transfer pipelines need at least one staging buffer");
}

OffloadResult
TransferEngine::offload(std::span<const uint8_t> data,
                        std::optional<Codec> codec_override) const
{
    const CdmaConfig &config = engine_.config();
    const ParallelCompressor &compressor = codec_override
        ? engine_.compressorFor(*codec_override)
        : engine_.compressor();
    OffloadResult result;
    result.buffer.original_bytes = data.size();
    result.buffer.window_bytes = config.compression.window_bytes;
    result.buffer.codec = compressor.codecTag();

    const uint64_t windows = ceilDiv(data.size(), config.compression.window_bytes);
    result.buffer.window_sizes.reserve(windows);
    result.shards.reserve(ceilDiv(windows, shard_windows_));
    // Whole-buffer worst case reserved once, so the per-shard payload
    // appends below never reallocate (mirrors Compressor::compress).
    if (windows > 0) {
        const Compressor &codec = compressor.serial();
        result.buffer.payload.reserve(
            (windows - 1) * codec.compressedBound(config.compression.window_bytes) +
            codec.compressedBound(data.size() -
                                  (windows - 1) * config.compression.window_bytes));
    }

    // The consumer is the staging drain: it runs on this thread in shard
    // order while the lanes compress later shards, appending each shard's
    // payload to the stitched buffer and recording its wire size for the
    // pipeline model.
    compressor.compressShards(
        data, shard_windows_, [&](CompressedShard &&shard) {
            result.shards.push_back(
                {shard.raw_bytes,
                 shard.effectiveBytes(config.compression.window_bytes)});
            result.buffer.payload.insert(result.buffer.payload.end(),
                                         shard.payload.begin(),
                                         shard.payload.end());
            result.buffer.window_sizes.insert(
                result.buffer.window_sizes.end(),
                shard.window_sizes.begin(), shard.window_sizes.end());
        });

    // The stitched buffer carries no per-shard CRC framing, so a
    // configured fault process is priced in expectation here; the
    // arena flow (offloadInto) samples it crossing by crossing.
    applyExpectedFaults(result.shards);
    result.integrity = trainIntegrity(result.shards);
    result.timing = timingFor(result.shards, {}).offload;
    result.integrity.retry_stall_seconds =
        result.timing.retry_stall_seconds;
    return result;
}

namespace {

/**
 * The streaming offload drain, generic over the spill store (plain
 * SpillArena or the two-tier TieredSpillArena — both expose the same
 * beginSpill / appendShard / release surface). Uses only the engine's
 * public API so the template can live at file scope.
 */
template <typename Arena>
StatusOr<SpilledOffload>
offloadIntoArena(const TransferEngine &te, std::span<const uint8_t> data,
                 Arena &arena, std::optional<Codec> codec_override)
{
    const CdmaEngine &engine = te.cdma();
    const CdmaConfig &config = engine.config();
    const ParallelCompressor &compressor = codec_override
        ? engine.compressorFor(*codec_override)
        : engine.compressor();
    sim::FaultInjector *injector = config.transfer.fault_injector;
    const RetryPolicy &retry = config.transfer.retry;
    const KernelOps &kernels = compressor.serial().kernels();
    const uint64_t shard_windows = te.shardWindows();

    SpilledOffload result;
    result.ticket = arena.beginSpill(data.size(), config.compression.window_bytes);
    result.shards.reserve(
        ceilDiv(ceilDiv(data.size(), config.compression.window_bytes),
                shard_windows));

    // Same drain as offload(), but each shard lands in a recycled arena
    // slot instead of growing a stitched payload vector. The drain is
    // also where the shard crosses the wire, so the fault process (if
    // any) is sampled here, crossing by crossing: a damaged crossing is
    // caught by the length/CRC framing checks and re-sent, degrading to
    // raw framing and finally giving up per the RetryPolicy. The drain
    // runs serially on this thread in shard order, which keeps the
    // injector's draw sequence deterministic.
    Status fault_error;
    compressor.compressShards(
        data, shard_windows, [&](CompressedShard &&shard) {
            if (!fault_error.ok())
                return; // an earlier shard burned its retry budget
            ShardTransfer xfer;
            xfer.raw_bytes = shard.raw_bytes;
            xfer.wire_bytes = shard.effectiveBytes(config.compression.window_bytes);
            uint32_t attempts = 0;
            while (injector != nullptr) {
                ++attempts;
                const sim::FaultOutcome outcome =
                    injector->sample(shard.payload.size());
                if (crossingLanded(outcome, shard.payload, shard.crc32c,
                                   kernels, result.integrity)) {
                    break;
                }
                traceRejectedCrossing(config.obs.integrity_trace,
                                      "offload", outcome, shard.index,
                                      attempts);
                xfer.failed_wire_bytes += xfer.wire_bytes;
                if (attempts >= retry.max_attempts) {
                    fault_error = Status::retryExhausted(
                        "offload shard %llu dropped after %u crossings",
                        static_cast<unsigned long long>(shard.index),
                        attempts);
                    return;
                }
                ++result.integrity.retries;
                if (!shard.raw_framed &&
                    attempts >= retry.raw_fallback_after) {
                    degradeToRaw(shard, data, config.compression.window_bytes,
                                 kernels);
                    xfer.wire_bytes =
                        shard.effectiveBytes(config.compression.window_bytes);
                    xfer.degraded = true;
                    ++result.integrity.degraded_shards;
                }
            }
            xfer.attempts = std::max<uint32_t>(1, attempts);
            result.integrity.attempts += xfer.attempts;
            result.integrity.failed_wire_bytes += xfer.failed_wire_bytes;
            result.shards.push_back(xfer);
            arena.appendShard(result.ticket, shard);
        });

    if (!fault_error.ok()) {
        // The partially filled spill is useless to the caller; return
        // its slots so the error path leaks nothing.
        arena.release(result.ticket);
        return fault_error;
    }
    sealSpill(arena, result.ticket);
    result.timing = te.duplexTiming(result.shards, {}).offload;
    result.integrity.retry_stall_seconds =
        result.timing.retry_stall_seconds;
    return result;
}

} // namespace

StatusOr<SpilledOffload>
TransferEngine::offloadInto(std::span<const uint8_t> data,
                            SpillArena &arena,
                            std::optional<Codec> codec) const
{
    return offloadIntoArena(*this, data, arena, codec);
}

StatusOr<SpilledOffload>
TransferEngine::offloadInto(std::span<const uint8_t> data,
                            TieredSpillArena &arena,
                            std::optional<Codec> codec) const
{
    return offloadIntoArena(*this, data, arena, codec);
}

StatusOr<PrefetchResult>
TransferEngine::prefetch(const CompressedBuffer &buffer) const
{
    PrefetchResult result;
    result.data.resize(buffer.original_bytes);
    result.shards.reserve(ceilDiv(buffer.window_sizes.size(),
                                  shard_windows_));

    // The consumer is the expand drain: notifications arrive on this
    // thread in shard order while the lanes reconstruct later shards,
    // recording each shard's byte counts for the pipeline model (the
    // raw bytes themselves land directly in the output region). The
    // buffer's codec tag picks the decoder, so an adaptive peer's
    // choice round-trips (Fixed engines have no bank and keep their
    // single configured codec).
    const Status status = engine_.compressorFor(buffer.codec).decompressShards(
        buffer, shard_windows_, result.data.data(),
        [&](const ParallelCompressor::DecompressedShard &shard) {
            result.shards.push_back({shard.raw_bytes, shard.wire_bytes});
        });
    if (!status.ok())
        return status;

    applyExpectedFaults(result.shards);
    result.integrity = trainIntegrity(result.shards);
    result.timing = timingFor({}, result.shards).prefetch;
    result.integrity.retry_stall_seconds =
        result.timing.retry_stall_seconds;
    return result;
}

namespace {

/**
 * The arena expand drain, generic over the spill store's read surface
 * (SpillArena or TieredSpillArena — a tiered spill must already be
 * host-resident; the public tiered overload promotes first).
 */
template <typename Arena>
StatusOr<PrefetchResult>
prefetchFromArena(const TransferEngine &te, const Arena &arena,
                  SpillTicket ticket)
{
    const CdmaEngine &engine = te.cdma();
    const CdmaConfig &config = engine.config();
    sim::FaultInjector *injector = config.transfer.fault_injector;
    const RetryPolicy &retry = config.transfer.retry;
    const uint64_t original_bytes = arena.originalBytes(ticket);
    const uint64_t window_bytes = arena.windowBytes(ticket);
    const KernelOps &kernels = engine.compressor().serial().kernels();

    PrefetchResult result;
    result.data.resize(original_bytes);
    result.shards.reserve(arena.shardCount(ticket));

    // Shards expand in store order straight out of the arena slots —
    // no stitched payload copy. The drain is serial here: the arena
    // path models the steady-state training loop, where the prefetch
    // engine walks one spilled layer at a time.
    for (size_t s = 0; s < arena.shardCount(ticket); ++s) {
        const SpillShardView view = arena.shard(ticket, s);
        ShardTransfer xfer;
        xfer.raw_bytes = view.raw_bytes;
        xfer.wire_bytes = view.wire_bytes;
        xfer.degraded = view.raw_framed;

        // GPU-bound wire crossing(s): a faulted crossing re-reads the
        // pristine arena slot, so once a crossing lands clean the
        // landed bytes are exactly the stored bytes.
        uint32_t attempts = 0;
        while (injector != nullptr) {
            ++attempts;
            const sim::FaultOutcome outcome =
                injector->sample(view.payload.size());
            if (crossingLanded(outcome, view.payload, view.crc32c,
                               kernels, result.integrity)) {
                break;
            }
            traceRejectedCrossing(config.obs.integrity_trace, "prefetch",
                                  outcome, s, attempts);
            xfer.failed_wire_bytes += view.wire_bytes;
            if (attempts >= retry.max_attempts) {
                return Status::retryExhausted(
                    "prefetch shard %zu dropped after %u crossings", s,
                    attempts);
            }
            ++result.integrity.retries;
        }
        xfer.attempts = std::max<uint32_t>(1, attempts);
        result.integrity.attempts += xfer.attempts;
        result.integrity.failed_wire_bytes += xfer.failed_wire_bytes;

        // End-to-end verify: the landed payload against the CRC framed
        // at compress time, before any decode work touches it.
        const uint32_t crc =
            kernels.crc32(0, view.payload.data(), view.payload.size());
        if (crc != view.crc32c) {
            return Status::integrityError(
                "spilled shard %zu CRC mismatch (framed %08x, landed "
                "%08x)",
                s, view.crc32c, crc);
        }

        if (view.raw_framed || view.codec == Codec::Raw) {
            // Degraded or policy-chosen raw shard: the payload IS the
            // raw bytes (identity framing), one bounded copy.
            std::memcpy(result.data.data() +
                            view.first_window * window_bytes,
                        view.payload.data(), view.payload.size());
        } else {
            // Per-shard decoder dispatch: under the adaptive policy a
            // spill's shards can carry different codecs (the choice
            // changed between offloads); each stored tag names the
            // decoder that inverts it.
            const Compressor &codec = engine.serialCodec(view.codec);
            uint64_t cursor = 0;
            uint64_t window = view.first_window;
            for (const uint32_t size : view.window_sizes) {
                const uint64_t out_offset = window * window_bytes;
                const uint64_t raw = std::min<uint64_t>(
                    window_bytes, original_bytes - out_offset);
                const Status status = codec.decompressWindowInto(
                    view.payload.subspan(cursor, size), raw,
                    result.data.data() + out_offset);
                if (!status.ok()) {
                    return status.withContext(
                        "spilled shard %zu window %llu", s,
                        static_cast<unsigned long long>(window));
                }
                cursor += size;
                ++window;
            }
            CDMA_ASSERT(cursor == view.payload.size(),
                        "spilled shard payload not fully consumed");
        }
        result.shards.push_back(xfer);
    }

    result.timing = te.duplexTiming({}, result.shards).prefetch;
    result.integrity.retry_stall_seconds =
        result.timing.retry_stall_seconds;
    return result;
}

} // namespace

StatusOr<PrefetchResult>
TransferEngine::prefetch(const SpillArena &arena, SpillTicket ticket) const
{
    return prefetchFromArena(*this, arena, ticket);
}

StatusOr<PrefetchResult>
TransferEngine::prefetch(TieredSpillArena &arena, SpillTicket ticket) const
{
    // An evicted spill crosses the SSD -> host edge first (counted in
    // the arena's tierStats); the expand drain then reads host slots.
    arena.promote(ticket);
    return prefetchFromArena(*this, arena, ticket);
}

StatusOr<TransferEngine::DuplexResult>
TransferEngine::transfer(std::span<const uint8_t> offload_data,
                         SpillArena &arena,
                         SpillTicket prefetch_ticket) const
{
    StatusOr<SpilledOffload> offloaded =
        offloadInto(offload_data, arena);
    if (!offloaded.ok())
        return offloaded.status();
    StatusOr<PrefetchResult> prefetched =
        prefetch(arena, prefetch_ticket);
    if (!prefetched.ok())
        return prefetched.status();

    DuplexResult result;
    result.offload = std::move(offloaded.value());
    result.prefetch = std::move(prefetched.value());
    // Re-time both measured shard trains as one race on the shared
    // link: the per-direction breakdowns pick up any contention the
    // independent flows above could not see.
    result.timing = timingFor(result.offload.shards,
                              result.prefetch.shards);
    result.offload.timing = result.timing.offload;
    result.prefetch.timing = result.timing.prefetch;
    return result;
}

DuplexTiming
TransferEngine::timingFor(std::span<const ShardTransfer> offload_shards,
                          std::span<const ShardTransfer> prefetch_shards)
    const
{
    const CdmaConfig &config = engine_.config();
    PipelineSpec spec;
    spec.compress_bandwidth = config.gpu.comp_bandwidth;
    spec.decompress_bandwidth = config.gpu.comp_bandwidth;
    spec.staging_buffers = config.transfer.staging_buffers;
    spec.backoff_base_seconds = config.transfer.retry.backoff_seconds;

    DuplexTiming timing;
    timing.offload.shard_count = offload_shards.size();
    timing.prefetch.shard_count = prefetch_shards.size();
    if (offload_shards.empty() && prefetch_shards.empty())
        return timing;

    // The wire legs always ride the topology graph: the configured one,
    // or the degenerate two-node GPU—host link built from the GpuSpec
    // (identical event timeline to the historical single channel).
    std::shared_ptr<const Topology> topo = config.topology.graph;
    NodeId gpu_node = config.topology.gpu_node;
    NodeId host_node = config.topology.host_node;
    if (topo == nullptr) {
        topo = Topology::pcieLink(config.gpu.pcie_effective_bandwidth,
                                  config.transfer.duplex_mode,
                                  config.transfer.link_arbiter);
        gpu_node = topo->firstNode(NodeKind::Gpu);
        host_node = topo->firstNode(NodeKind::HostDram);
    }
    EventQueue queue;
    LinkNetwork network(queue, *topo);
    DuplexPipeline pipeline(
        network, topo->route(gpu_node, host_node),
        {offload_shards.begin(), offload_shards.end()},
        {prefetch_shards.begin(), prefetch_shards.end()}, spec,
        config.topology.source);
    // Metrics only: every call here opens a fresh t=0 event queue, so a
    // trace recorder (one coherent timeline) cannot attach at this
    // level — but shard latency histograms are origin-agnostic.
    pipeline.setObservers(nullptr, config.obs.metrics, "");
    pipeline.start();
    queue.run();
    return pipeline.collect();
}

DuplexTiming
TransferEngine::duplexTiming(
    std::span<const ShardTransfer> offload_shards,
    std::span<const ShardTransfer> prefetch_shards) const
{
    return timingFor(offload_shards, prefetch_shards);
}

std::vector<ShardTransfer>
TransferEngine::shardTrain(uint64_t raw_bytes, double ratio) const
{
    std::vector<ShardTransfer> shards = uniformShardTrain(
        raw_bytes, ratio,
        shard_windows_ * engine_.config().compression.window_bytes);
    applyExpectedFaults(shards);
    return shards;
}

std::vector<ShardTransfer>
TransferEngine::uniformShardTrain(uint64_t raw_bytes, double ratio,
                                  uint64_t shard_raw_bytes)
{
    CDMA_ASSERT(ratio >= 1.0, "ratio %f below store-raw floor", ratio);
    CDMA_ASSERT(shard_raw_bytes > 0, "shards need a positive raw size");
    std::vector<ShardTransfer> shards;
    shards.reserve(ceilDiv(raw_bytes, shard_raw_bytes));
    uint64_t remaining = raw_bytes;
    while (remaining > 0) {
        const uint64_t raw = std::min(remaining, shard_raw_bytes);
        shards.push_back({raw, static_cast<uint64_t>(
                                   static_cast<double>(raw) / ratio)});
        remaining -= raw;
    }
    return shards;
}

void
TransferEngine::applyExpectedFaults(
    std::vector<ShardTransfer> &shards) const
{
    const sim::FaultInjector *injector = engine_.config().transfer.fault_injector;
    if (injector == nullptr)
        return;
    const RetryPolicy &retry = engine_.config().transfer.retry;
    // Integerize the per-shard expectation with a running remainder so
    // the train-level totals track the closed form: at E[attempts] of,
    // say, 1.25, independent rounding would give every shard 1 attempt
    // and erase the fold entirely, whereas the carry hands every fourth
    // shard the retry.
    double carry = 0.0;
    for (ShardTransfer &shard : shards) {
        const double expected = injector->expectedAttempts(
            shard.wire_bytes, retry.max_attempts);
        carry += expected;
        const auto attempts =
            std::max<uint32_t>(1, static_cast<uint32_t>(carry));
        carry -= attempts;
        shard.attempts = attempts;
        shard.failed_wire_bytes = static_cast<uint64_t>(std::llround(
            (expected - 1.0) * static_cast<double>(shard.wire_bytes)));
    }
}

TransferIntegrity
TransferEngine::trainIntegrity(std::span<const ShardTransfer> shards)
{
    TransferIntegrity integrity;
    for (const ShardTransfer &shard : shards) {
        integrity.attempts += shard.attempts;
        integrity.retries += shard.attempts - 1;
        integrity.failed_wire_bytes += shard.failed_wire_bytes;
        integrity.degraded_shards += shard.degraded ? 1 : 0;
    }
    return integrity;
}

DuplexTiming
TransferEngine::modelFromRatio(uint64_t offload_raw, double offload_ratio,
                               uint64_t prefetch_raw,
                               double prefetch_ratio) const
{
    return timingFor(shardTrain(offload_raw, offload_ratio),
                     shardTrain(prefetch_raw, prefetch_ratio));
}

DuplexTiming
TransferEngine::pipelineTiming(
    std::span<const ShardTransfer> offload_shards,
    std::span<const ShardTransfer> prefetch_shards,
    double compress_bandwidth, double wire_bandwidth,
    double decompress_bandwidth, unsigned staging_buffers,
    DuplexMode mode, LinkArbiter arbiter, double backoff_base_seconds)
{
    CDMA_ASSERT(compress_bandwidth > 0.0 && wire_bandwidth > 0.0 &&
                    decompress_bandwidth > 0.0,
                "pipeline model needs positive bandwidths");
    CDMA_ASSERT(staging_buffers >= 1, "need at least one staging buffer");

    DuplexTiming timing;
    timing.offload.shard_count = offload_shards.size();
    timing.prefetch.shard_count = prefetch_shards.size();
    if (offload_shards.empty() && prefetch_shards.empty())
        return timing;

    // The explicit-bandwidth entry point rides the degenerate two-node
    // graph: one GPU—host edge, whose routed timeline reproduces the
    // historical direct-channel submission event for event.
    const std::shared_ptr<const Topology> topo =
        Topology::pcieLink(wire_bandwidth, mode, arbiter);
    EventQueue queue;
    LinkNetwork network(queue, *topo);
    PipelineSpec spec;
    spec.compress_bandwidth = compress_bandwidth;
    spec.decompress_bandwidth = decompress_bandwidth;
    spec.staging_buffers = staging_buffers;
    spec.backoff_base_seconds = backoff_base_seconds;
    DuplexPipeline pipeline(
        network,
        topo->route(topo->firstNode(NodeKind::Gpu),
                    topo->firstNode(NodeKind::HostDram)),
        {offload_shards.begin(), offload_shards.end()},
        {prefetch_shards.begin(), prefetch_shards.end()}, spec);
    pipeline.start();
    queue.run();
    return pipeline.collect();
}

DuplexPipeline::DuplexPipeline(LinkNetwork &network, Route offload_route,
                               std::vector<ShardTransfer> offload_shards,
                               std::vector<ShardTransfer> prefetch_shards,
                               const PipelineSpec &spec, unsigned source)
    : network_(network), offload_route_(std::move(offload_route)),
      prefetch_route_(offload_route_.reversed()),
      offload_shards_(std::move(offload_shards)),
      prefetch_shards_(std::move(prefetch_shards)), spec_(spec),
      source_(source)
{
    CDMA_ASSERT(spec_.compress_bandwidth > 0.0 &&
                    spec_.decompress_bandwidth > 0.0,
                "pipeline model needs positive engine bandwidths");
    CDMA_ASSERT(spec_.staging_buffers >= 1,
                "need at least one staging buffer");
}

void
DuplexPipeline::setObservers(obs::TraceRecorder *trace,
                             obs::MetricsRegistry *metrics,
                             const std::string &name)
{
    trace_ = trace;
    if (trace_ != nullptr) {
        compress_track_ = trace_->track(name, "compress");
        wire_out_track_ = trace_->track(name, "wire.out");
        wire_in_track_ = trace_->track(name, "wire.in");
        expand_track_ = trace_->track(name, "expand");
    }
    if (metrics != nullptr) {
        off_latency_hist_ = &metrics->histogram(
            "transfer.offload.shard_latency_seconds");
        pre_latency_hist_ = &metrics->histogram(
            "transfer.prefetch.shard_latency_seconds");
    } else {
        off_latency_hist_ = nullptr;
        pre_latency_hist_ = nullptr;
    }
}

void
DuplexPipeline::start()
{
    startCompress();
    startWire();
}

bool
DuplexPipeline::done() const
{
    return off_done_ == offload_shards_.size() &&
        pre_done_ == prefetch_shards_.size();
}

void
DuplexPipeline::startCompress()
{
    if (off_next_ >= offload_shards_.size() || compressing_ ||
        off_in_flight_ >= spec_.staging_buffers) {
        return;
    }
    const size_t k = off_next_++;
    compressing_ = true;
    ++off_in_flight_;
    const SimTime compress_time =
        static_cast<double>(offload_shards_[k].raw_bytes) /
        spec_.compress_bandwidth;
    const SimTime t0 = network_.queue().now();
    network_.queue().scheduleAfter(compress_time, [this, k, t0] {
        // Shard k staged: hand it to the DMA unit (it queues on the
        // route's first edge behind that edge's arbiter) and start
        // compressing the next shard into the other buffer.
        compressing_ = false;
        CDMA_TRACE_SPAN(trace_, compress_track_, "compress", t0,
                        network_.queue().now(),
                        (obs::TraceArgs{
                            {"shard", k},
                            {"raw_bytes", offload_shards_[k].raw_bytes},
                        }));
        // The wire leg carries the shard's failed crossings too, and
        // the retry backoff rides as extra latency: the retry sequence
        // holds the shard's DMA transaction slot (and, under half
        // duplex, the link) until the shard lands.
        network_.submit(
            offload_route_,
            offload_shards_[k].wire_bytes +
                offload_shards_[k].failed_wire_bytes,
            [this, k](const RouteGrant &grant) {
                --off_in_flight_;
                ++off_done_;
                last_off_drain_ = network_.queue().now();
                off_wire_seconds_ += grant.service_seconds;
                off_contention_ += grant.opposing_wait;
                cross_source_wait_ += grant.cross_source_wait;
                traceWireGrant(wire_out_track_, k,
                               offload_shards_[k], grant);
                if (off_latency_hist_ != nullptr) {
                    off_latency_hist_->record(grant.end -
                                              grant.queued_at);
                }
                startCompress();
            },
            backoffSeconds(offload_shards_[k].attempts,
                           spec_.backoff_base_seconds),
            source_);
        startCompress();
    });
}

void
DuplexPipeline::startExpand()
{
    if (expanding_ || landed_.empty())
        return;
    const size_t k = landed_.front();
    landed_.pop();
    expanding_ = true;
    const SimTime expand_time =
        static_cast<double>(prefetch_shards_[k].raw_bytes) /
        spec_.decompress_bandwidth;
    const SimTime t0 = network_.queue().now();
    network_.queue().scheduleAfter(expand_time, [this, k, t0] {
        // Shard re-inflated: its staging buffer frees, so the next
        // shard may enter the wire while the engine picks up the next
        // landed shard.
        expanding_ = false;
        --pre_in_flight_;
        ++pre_done_;
        last_expand_ = network_.queue().now();
        CDMA_TRACE_SPAN(trace_, expand_track_, "expand", t0,
                        network_.queue().now(),
                        (obs::TraceArgs{
                            {"shard", k},
                            {"raw_bytes", prefetch_shards_[k].raw_bytes},
                        }));
        startExpand();
        startWire();
    });
}

void
DuplexPipeline::traceWireGrant(uint32_t track, size_t shard,
                               const ShardTransfer &xfer,
                               const RouteGrant &grant)
{
    if (trace_ == nullptr)
        return;
    trace_->instant(track, "landed", grant.end,
                    obs::TraceArgs{
                        {"shard", shard},
                        {"bytes", xfer.wire_bytes + xfer.failed_wire_bytes},
                        {"latency_us", (grant.end - grant.queued_at) * 1e6},
                        {"opposing_wait_us", grant.opposing_wait * 1e6},
                        {"cross_source_wait_us",
                         grant.cross_source_wait * 1e6},
                    });
    if (xfer.attempts > 1) {
        trace_->instant(
            track, "retry", grant.queued_at,
            obs::TraceArgs{
                {"shard", shard},
                {"attempts", xfer.attempts},
                {"failed_wire_bytes", xfer.failed_wire_bytes},
                {"backoff_us",
                 backoffSeconds(xfer.attempts,
                                spec_.backoff_base_seconds) * 1e6},
            });
    }
}

void
DuplexPipeline::startWire()
{
    if (pre_next_ >= prefetch_shards_.size() ||
        pre_in_flight_ >= spec_.staging_buffers) {
        return;
    }
    const size_t k = pre_next_++;
    ++pre_in_flight_;
    network_.submit(
        prefetch_route_,
        prefetch_shards_[k].wire_bytes +
            prefetch_shards_[k].failed_wire_bytes,
        [this, k](const RouteGrant &grant) {
            pre_wire_seconds_ += grant.service_seconds;
            pre_contention_ += grant.opposing_wait;
            cross_source_wait_ += grant.cross_source_wait;
            traceWireGrant(wire_in_track_, k, prefetch_shards_[k], grant);
            if (pre_latency_hist_ != nullptr)
                pre_latency_hist_->record(grant.end - grant.queued_at);
            landed_.push(k);
            startExpand();
            startWire();
        },
        backoffSeconds(prefetch_shards_[k].attempts,
                       spec_.backoff_base_seconds),
        source_);
    startWire();
}

DuplexTiming
DuplexPipeline::collect() const
{
    CDMA_ASSERT(done(), "pipeline not drained — run the event queue");
    DuplexTiming timing;
    timing.offload.shard_count = offload_shards_.size();
    timing.prefetch.shard_count = prefetch_shards_.size();

    for (const ShardTransfer &shard : offload_shards_) {
        timing.offload.compress_seconds +=
            static_cast<double>(shard.raw_bytes) /
            spec_.compress_bandwidth;
        timing.offload.retry_stall_seconds +=
            static_cast<double>(shard.failed_wire_bytes) /
                network_.topology().link(offload_route_.hops.front().link)
                    .props.bytes_per_second +
            backoffSeconds(shard.attempts, spec_.backoff_base_seconds);
    }
    timing.offload.wire_seconds = off_wire_seconds_;
    timing.offload.overlapped_seconds = last_off_drain_;
    finalizeOverlapFraction(timing.offload);

    timing.prefetch.wire_seconds = pre_wire_seconds_;
    for (const ShardTransfer &shard : prefetch_shards_) {
        timing.prefetch.decompress_seconds +=
            static_cast<double>(shard.raw_bytes) /
            spec_.decompress_bandwidth;
        timing.prefetch.retry_stall_seconds +=
            static_cast<double>(shard.failed_wire_bytes) /
                network_.topology().link(offload_route_.hops.front().link)
                    .props.bytes_per_second +
            backoffSeconds(shard.attempts, spec_.backoff_base_seconds);
    }
    timing.prefetch.overlapped_seconds = last_expand_;
    finalizeOverlapFraction(timing.prefetch);

    timing.makespan_seconds = std::max(last_off_drain_, last_expand_);
    timing.offload_contention_seconds = off_contention_;
    timing.prefetch_contention_seconds = pre_contention_;
    return timing;
}

// ---------------------------------------------------------------------
// Single-direction scheduler facades (historically their own .cc files).
// ---------------------------------------------------------------------

OffloadScheduler::OffloadScheduler(const CdmaEngine &engine)
    : engine_(engine)
{
}

OffloadResult
OffloadScheduler::offload(std::span<const uint8_t> data) const
{
    return engine_.offload(data);
}

StatusOr<SpilledOffload>
OffloadScheduler::offloadInto(std::span<const uint8_t> data,
                              SpillArena &arena) const
{
    return engine_.offloadInto(data, arena);
}

OffloadTiming
OffloadScheduler::modelFromRatio(uint64_t raw_bytes, double ratio) const
{
    CDMA_ASSERT(ratio >= 1.0, "ratio %f below store-raw floor", ratio);
    const CdmaConfig &config = engine_.cdma().config();
    const double comp_bw = config.gpu.comp_bandwidth;
    const double wire_bw = config.gpu.pcie_effective_bandwidth;
    const unsigned buffers = config.transfer.staging_buffers;
    const uint64_t shard_raw =
        shardWindows() * config.compression.window_bytes;

    OffloadTiming timing;
    if (raw_bytes == 0)
        return timing;

    // Closed form over the shard shape the DES would replay: `full`
    // uniform shards of shard_raw bytes plus at most one partial tail.
    // The per-shard wire bytes reproduce the DES arithmetic exactly
    // (store-raw-floored truncation per shard).
    const uint64_t full = raw_bytes / shard_raw;
    const uint64_t tail_raw = raw_bytes % shard_raw;
    timing.shard_count = full + (tail_raw != 0 ? 1 : 0);

    const double c = static_cast<double>(shard_raw) / comp_bw;
    const double w = static_cast<double>(static_cast<uint64_t>(
                         static_cast<double>(shard_raw) / ratio)) /
        wire_bw;
    const double tail_c = static_cast<double>(tail_raw) / comp_bw;
    const double tail_w = static_cast<double>(static_cast<uint64_t>(
                              static_cast<double>(tail_raw) / ratio)) /
        wire_bw;

    const double n = static_cast<double>(full);
    timing.compress_seconds = n * c + tail_c;
    timing.wire_seconds = n * w + tail_w;

    if (buffers == 1) {
        // A single staging buffer serializes every shard end to end.
        timing.overlapped_seconds =
            timing.compress_seconds + timing.wire_seconds;
    } else if (full == 0) {
        // Tail-only transfer: one shard, nothing to overlap with.
        timing.overlapped_seconds = tail_c + tail_w;
    } else if (w >= c) {
        // Wire-bound: one compression fill, then the wire never starves
        // (the tail's compression hides under the previous shard's wire
        // time because tail_c <= c <= w).
        timing.overlapped_seconds = c + n * w + tail_w;
    } else {
        // Compression-bound (fetch-capped): the serial compression
        // engine paces the pipeline; the tail's wire leg waits for
        // whichever of its own compression or the previous shard's
        // drain finishes last.
        timing.overlapped_seconds =
            n * c + std::max(tail_c, w) + tail_w;
    }
    finalizeOverlapFraction(timing);
    return timing;
}

OffloadTiming
OffloadScheduler::pipelineTiming(std::span<const ShardTransfer> shards,
                                 double compress_bandwidth,
                                 double wire_bandwidth,
                                 unsigned staging_buffers)
{
    // The duplex DES with the prefetch direction idle: the shared link
    // degenerates to a single-direction FIFO, reproducing the original
    // offload-only event timeline exactly.
    return TransferEngine::pipelineTiming(
               shards, {}, compress_bandwidth, wire_bandwidth,
               /*decompress_bandwidth=*/compress_bandwidth,
               staging_buffers, DuplexMode::Half,
               LinkArbiter::RoundRobin)
        .offload;
}

PrefetchScheduler::PrefetchScheduler(const CdmaEngine &engine)
    : engine_(engine)
{
}

StatusOr<PrefetchResult>
PrefetchScheduler::prefetch(const CompressedBuffer &buffer) const
{
    return engine_.prefetch(buffer);
}

StatusOr<PrefetchResult>
PrefetchScheduler::prefetch(const SpillArena &arena,
                            SpillTicket ticket) const
{
    return engine_.prefetch(arena, ticket);
}

PrefetchTiming
PrefetchScheduler::modelFromRatio(uint64_t raw_bytes, double ratio) const
{
    CDMA_ASSERT(ratio >= 1.0, "ratio %f below store-raw floor", ratio);
    const CdmaConfig &config = engine_.cdma().config();
    const double wire_bw = config.gpu.pcie_effective_bandwidth;
    const double decomp_bw = config.gpu.comp_bandwidth;
    const unsigned buffers = config.transfer.staging_buffers;
    const uint64_t shard_raw =
        shardWindows() * config.compression.window_bytes;

    PrefetchTiming timing;
    if (raw_bytes == 0)
        return timing;

    // Closed form over the shard shape the DES would replay: `full`
    // uniform shards of shard_raw bytes plus at most one partial tail,
    // with the per-shard wire bytes reproducing the DES arithmetic
    // exactly (store-raw-floored truncation per shard). Stage one is
    // the wire, stage two the serial decompression engine — the
    // offload closed form with the roles swapped.
    const uint64_t full = raw_bytes / shard_raw;
    const uint64_t tail_raw = raw_bytes % shard_raw;
    timing.shard_count = full + (tail_raw != 0 ? 1 : 0);

    const double d = static_cast<double>(shard_raw) / decomp_bw;
    const double w = static_cast<double>(static_cast<uint64_t>(
                         static_cast<double>(shard_raw) / ratio)) /
        wire_bw;
    const double tail_d = static_cast<double>(tail_raw) / decomp_bw;
    const double tail_w = static_cast<double>(static_cast<uint64_t>(
                              static_cast<double>(tail_raw) / ratio)) /
        wire_bw;

    const double n = static_cast<double>(full);
    timing.wire_seconds = n * w + tail_w;
    timing.decompress_seconds = n * d + tail_d;

    if (buffers == 1) {
        // A single staging buffer serializes every shard end to end.
        timing.overlapped_seconds =
            timing.wire_seconds + timing.decompress_seconds;
    } else if (full == 0) {
        // Tail-only transfer: one shard, nothing to overlap with.
        timing.overlapped_seconds = tail_w + tail_d;
    } else if (d >= w) {
        // Decompression-bound (fetch-capped layers land here: high
        // ratios make the wire leg short): one wire fill, then the
        // serial decompression engine never starves (the tail's wire
        // time hides under the previous shard's expansion because
        // tail_w <= w <= d).
        timing.overlapped_seconds = w + n * d + tail_d;
    } else {
        // Wire-bound: the FIFO link paces the pipeline; the tail's
        // expansion waits for whichever of its own wire transfer or
        // the previous shard's expansion finishes last.
        timing.overlapped_seconds =
            n * w + std::max(tail_w, d) + tail_d;
    }
    finalizeOverlapFraction(timing);
    return timing;
}

PrefetchTiming
PrefetchScheduler::pipelineTiming(std::span<const ShardTransfer> shards,
                                  double wire_bandwidth,
                                  double decompress_bandwidth,
                                  unsigned staging_buffers)
{
    // The duplex DES with the offload direction idle: the shared link
    // degenerates to a single-direction FIFO, reproducing the original
    // prefetch-only event timeline exactly.
    return TransferEngine::pipelineTiming(
               {}, shards, /*compress_bandwidth=*/decompress_bandwidth,
               wire_bandwidth, decompress_bandwidth, staging_buffers,
               DuplexMode::Half, LinkArbiter::RoundRobin)
        .prefetch;
}

} // namespace cdma
