/**
 * @file
 * Discrete-event simulation of one training iteration under virtualized
 * memory, reproducing the overlap semantics of Figure 2(b): during
 * forward propagation, layer n's input activation map is offloaded over
 * PCIe concurrently with layer n's computation, and layer n+1 may not
 * start until both finish; during backward propagation, the prefetch of
 * layer n's input overlaps layer n+1's backward computation, and layer
 * n's backward waits for its prefetch. Both directions ride ONE duplex
 * PCIe link (the memory manager's unified direction-tagged schedule):
 * the backward phase launches as soon as the last layer's forward
 * compute finishes, so the tail offloads (layer n+1's input still
 * draining out) race the head prefetches (layer n-1's input coming
 * back) on the link — independent sub-channels under full duplex, a
 * shared arbitrated link under half duplex, where the contention stall
 * each direction pays is reported per layer and in aggregate. A layer's
 * prefetch never enters the wire before its own offload has drained.
 * The same simulator runs the vDNN baseline (raw transfers), cDMA
 * (compressed transfers with the COMP_BW inflation), and the oracle
 * (transfers always hidden), producing Figures 3(b) and 13.
 */

#ifndef CDMA_PERF_STEP_SIM_HH
#define CDMA_PERF_STEP_SIM_HH

#include <string>
#include <vector>

#include "cdma/engine.hh"
#include "perf/timing.hh"
#include "vdnn/memory_manager.hh"

namespace cdma {

namespace obs {
class TraceRecorder;
} // namespace obs

/** Virtualization mode of a simulated step. */
enum class StepMode {
    Baseline, ///< no offloading at all (not memory-scalable)
    Vdnn,     ///< offload-all with raw transfers
    Cdma,     ///< offload-all with compressed transfers
    Oracle,   ///< offload-all, transfers always hidden
};

/** Display name of a step mode. */
std::string stepModeName(StepMode mode);

/** Per-layer outcome of a simulated step. */
struct LayerStepStats {
    std::string label;
    double forward_seconds = 0.0;
    double backward_seconds = 0.0;
    double offload_seconds = 0.0;  ///< modeled latency of this layer's input
    /** Modeled latency of restoring this layer's input (equals
     *  offload_seconds except under TimingMode::Overlapped, where the
     *  prefetch pipeline is priced separately). */
    double prefetch_seconds = 0.0;
    double forward_stall = 0.0;    ///< forward wait on the offload
    double backward_stall = 0.0;   ///< backward wait on the prefetch
    /** Time this layer's offload waited on the link while it served
     *  prefetch traffic (nonzero only under DuplexMode::Half). */
    double offload_contention = 0.0;
    /** Time this layer's prefetch waited on the link while it served
     *  offload traffic (nonzero only under DuplexMode::Half). */
    double prefetch_contention = 0.0;
    /** Compress/wire pipeline breakdown of the input's offload (all
     *  zeros unless the engine runs TimingMode::Overlapped). */
    OffloadTiming offload;
    /** Wire/decompress pipeline breakdown of the input's prefetch (all
     *  zeros unless the engine runs TimingMode::Overlapped). */
    PrefetchTiming prefetch;
    /** Codec the offload of this layer's input used (the policy's pick
     *  under runAdaptive(); the engine's fixed codec otherwise). */
    Codec codec = Codec::Zvc;
    /** The adaptive policy's predicted offload cost (compress + wire)
     *  for this layer's input; 0 when no policy decided the transfer. */
    double policy_predicted_seconds = 0.0;
    /** The DES-priced offload cost the prediction is compared against:
     *  the pipeline makespan plus the contention wait the duplex link
     *  charged (offload_seconds + offload_contention). */
    double policy_actual_seconds = 0.0;

    /** Fraction of this layer's transfer time lost to link contention,
     *  clamped to [0,1] (a short transfer can wait out an opposing
     *  transfer longer than itself). */
    double contentionStallFraction() const
    {
        const double transfer = offload_seconds + prefetch_seconds;
        return transfer > 0.0
            ? std::min(1.0, (offload_contention + prefetch_contention) /
                                transfer)
            : 0.0;
    }
};

/** Result of one simulated training iteration. */
struct StepResult {
    double total_seconds = 0.0;
    double forward_seconds = 0.0;
    double backward_seconds = 0.0;
    double compute_seconds = 0.0; ///< oracle lower bound (sum of compute)
    double stall_seconds = 0.0;   ///< total - compute
    uint64_t raw_transfer_bytes = 0;  ///< per direction
    uint64_t wire_transfer_bytes = 0; ///< after compression
    double pcie_utilization = 0.0;
    /** Total time offloads waited while the link served prefetches. */
    double offload_contention_seconds = 0.0;
    /** Total time prefetches waited while the link served offloads. */
    double prefetch_contention_seconds = 0.0;
    /** Aggregate fault/retry accounting over every scheduled transfer's
     *  round trip (all zeros unless the engine carries a fault
     *  injector; attempts counts clean crossings too). */
    TransferIntegrity integrity;
    std::vector<LayerStepStats> layers;

    /** Throughput relative to another result (other/self). */
    double speedupOver(const StepResult &other) const
    {
        return other.total_seconds / total_seconds;
    }

    /** Fraction of the iteration lost to cross-direction contention
     *  on the duplex link (zero under DuplexMode::Full). */
    double contentionStallFraction() const
    {
        return total_seconds > 0.0
            ? (offload_contention_seconds +
               prefetch_contention_seconds) / total_seconds
            : 0.0;
    }
};

/** DES driver for one training iteration. */
class StepSimulator
{
  public:
    /**
     * @param manager vDNN transfer schedule + memory accounting.
     * @param engine cDMA engine (supplies transfer times; for Vdnn mode
     *        its compression is bypassed).
     * @param perf Layer timing model.
     * @param version cuDNN version for compute times.
     */
    StepSimulator(const VdnnMemoryManager &manager, const CdmaEngine &engine,
                  const PerfModel &perf, CudnnVersion version);

    /**
     * Simulate one iteration.
     *
     * @param mode Virtualization mode.
     * @param output_ratios Compression ratio of each descriptor row's
     *        *output* activation map. The simulator aligns them with the
     *        offload schedule itself: the transfer paired with row i
     *        carries row i-1's output (row 0's input is the raw image
     *        batch, which never compresses). Required for Cdma mode;
     *        ignored otherwise.
     */
    StepResult run(StepMode mode,
                   const std::vector<double> &output_ratios = {}) const;

    /**
     * Simulate one Cdma-mode iteration with the engine's adaptive codec
     * policy choosing each transfer's codec from the per-row output
     * activation *densities* (nonzero-value fraction, one entry per
     * descriptor row, aligned like output_ratios). Requires the engine
     * to run CodecMode::Adaptive with a configured policy engine. Each
     * layer's LayerStepStats carries the chosen codec plus the policy's
     * predicted-vs-DES-priced offload cost, and the relative prediction
     * error is recorded into the engine's metrics registry (histogram
     * "policy.predicted_error") when one is attached.
     */
    StepResult runAdaptive(const std::vector<double> &output_densities)
        const;

    /**
     * Attach a trace recorder: subsequent run() calls emit per-layer
     * compute spans on (@p process, "compute.forward" / "compute.backward")
     * and per-transfer wire spans on (@p process, "pcie.out" / "pcie.in")
     * — the step's single duplex link serves each direction FIFO, so the
     * per-direction spans are disjoint. Baseline/Oracle runs simulate no
     * events and emit nothing. Because every run()'s timeline starts at
     * t = 0, one recorder should observe at most one traced run.
     */
    void setTrace(obs::TraceRecorder *trace, std::string process);

  private:
    /** Shared DES core: run one iteration over pre-built transfer
     *  plans (one per offload-schedule entry, forward order). */
    StepResult runWithPlans(StepMode mode,
                            const std::vector<TransferPlan> &plans) const;

    const VdnnMemoryManager &manager_;
    const CdmaEngine &engine_;
    const PerfModel &perf_;
    CudnnVersion version_;
    obs::TraceRecorder *trace_ = nullptr;
    std::string trace_process_;
};

} // namespace cdma

#endif // CDMA_PERF_STEP_SIM_HH
