/**
 * @file
 * Physical-unit helpers for the memory-system models: bytes, bandwidths and
 * times. Kept as plain doubles with explicit naming rather than a full
 * dimensional-analysis type system; the simulator's unit discipline is
 * "seconds and bytes everywhere, convert at the edges".
 */

#ifndef CDMA_COMMON_UNITS_HH
#define CDMA_COMMON_UNITS_HH

#include <cstdint>

namespace cdma {

/** Bytes in one binary kilobyte. */
inline constexpr uint64_t kKiB = 1024ull;
/** Bytes in one binary megabyte. */
inline constexpr uint64_t kMiB = 1024ull * kKiB;
/** Bytes in one binary gigabyte. */
inline constexpr uint64_t kGiB = 1024ull * kMiB;

/** Bytes per second corresponding to 1 GB/s (decimal, as in link specs). */
inline constexpr double kGBps = 1e9;

/** Seconds in one nanosecond. */
inline constexpr double kNanosecond = 1e-9;
/** Seconds in one microsecond. */
inline constexpr double kMicrosecond = 1e-6;
/** Seconds in one millisecond. */
inline constexpr double kMillisecond = 1e-3;

/** Convert a byte count and a bandwidth (B/s) into a transfer time (s). */
inline double
transferSeconds(uint64_t bytes, double bytes_per_second)
{
    return static_cast<double>(bytes) / bytes_per_second;
}

/** Gigabytes (decimal) represented by a byte count. */
inline double
toGB(uint64_t bytes)
{
    return static_cast<double>(bytes) / 1e9;
}

/** Mebibytes represented by a byte count. */
inline double
toMiB(uint64_t bytes)
{
    return static_cast<double>(bytes) / static_cast<double>(kMiB);
}

} // namespace cdma

#endif // CDMA_COMMON_UNITS_HH
