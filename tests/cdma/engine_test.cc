/** @file Unit tests for the cDMA engine model. */

#include <cstring>

#include <gtest/gtest.h>

#include "cdma/engine.hh"
#include "common/rng.hh"

namespace cdma {
namespace {

CdmaConfig
defaultConfig(Algorithm algorithm = Algorithm::Zvc)
{
    CdmaConfig config;
    config.compression.algorithm = algorithm;
    return config;
}

TEST(CdmaEngine, CapRatioIsCompOverPcie)
{
    CdmaEngine engine(defaultConfig());
    // 200 GB/s / 16 GB/s = 12.5.
    EXPECT_DOUBLE_EQ(engine.capRatio(), 12.5);
}

TEST(CdmaEngine, UncappedTransferTimeIsWireOverPcie)
{
    CdmaEngine engine(defaultConfig());
    const auto plan = engine.planFromRatio("layer", 160'000'000, 2.0);
    EXPECT_EQ(plan.wire_bytes, 80'000'000u);
    // Transfer time uses the achieved 12.8 GB/s copy rate.
    EXPECT_NEAR(plan.seconds, 80e6 / 12.8e9, 1e-12);
    EXPECT_FALSE(plan.fetch_capped);
}

TEST(CdmaEngine, HighRatioTriggersFetchCap)
{
    // Section VI: a layer at ratio 13.8 needs 13.8 x 16 = 220.8 GB/s of
    // fetch bandwidth, above the 200 GB/s COMP_BW; latency inflates by
    // 220.8 / 200.
    CdmaEngine engine(defaultConfig());
    const auto plan = engine.planFromRatio("sparse", 138'000'000, 13.8);
    EXPECT_TRUE(plan.fetch_capped);
    const double uncapped = 1e7 / 12.8e9;
    EXPECT_NEAR(plan.seconds, uncapped * (13.8 * 16.0 / 200.0), 1e-12);
}

TEST(CdmaEngine, CappedTransferStillFasterThanLowerRatio)
{
    // Even with the inflation, more compression never hurts: the
    // effective drain rate caps at COMP_BW, not below it.
    CdmaEngine engine(defaultConfig());
    const uint64_t raw = 320'000'000;
    const auto r12 = engine.planFromRatio("a", raw, 12.5);
    const auto r20 = engine.planFromRatio("b", raw, 20.0);
    EXPECT_LE(r20.seconds, r12.seconds * 1.0 + 1e-12);
}

TEST(CdmaEngine, DisabledCompressionMatchesVdnn)
{
    CdmaConfig config = defaultConfig();
    config.compression.enabled = false;
    CdmaEngine engine(config);
    const auto plan = engine.planFromRatio("layer", 64'000'000, 4.0);
    EXPECT_EQ(plan.wire_bytes, 64'000'000u);
    EXPECT_DOUBLE_EQ(plan.ratio, 1.0);
    EXPECT_NEAR(plan.seconds, 64e6 / 12.8e9, 1e-12);
}

TEST(CdmaEngine, PlanTransferCompressesRealData)
{
    Rng rng(99);
    std::vector<float> words(1 << 16);
    for (auto &w : words)
        w = rng.bernoulli(0.4)
            ? static_cast<float>(std::abs(rng.normal())) : 0.0f;
    std::vector<uint8_t> bytes(words.size() * 4);
    std::memcpy(bytes.data(), words.data(), bytes.size());

    CdmaEngine engine(defaultConfig());
    const auto plan = engine.planTransfer("conv1", bytes);
    EXPECT_EQ(plan.raw_bytes, bytes.size());
    EXPECT_LT(plan.wire_bytes, plan.raw_bytes);
    EXPECT_NEAR(plan.ratio, 1.0 / (0.4 + 1.0 / 32.0), 0.1);
    EXPECT_GT(plan.seconds, 0.0);
}

TEST(CdmaEngine, AlgorithmSelectionRespected)
{
    Rng rng(100);
    // Clustered zeros: RLE and ZVC should both work, zlib best.
    std::vector<uint8_t> bytes(1 << 18, 0);
    for (size_t i = 0; i < bytes.size() / 2; ++i)
        bytes[i] = static_cast<uint8_t>(1 + rng.uniformInt(254));

    const auto rle_plan =
        CdmaEngine(defaultConfig(Algorithm::Rle)).planTransfer("x", bytes);
    const auto zvc_plan =
        CdmaEngine(defaultConfig(Algorithm::Zvc)).planTransfer("x", bytes);
    const auto zl_plan =
        CdmaEngine(defaultConfig(Algorithm::Zlib)).planTransfer("x",
                                                                bytes);
    EXPECT_GT(rle_plan.ratio, 1.0);
    EXPECT_GT(zvc_plan.ratio, 1.0);
    EXPECT_GT(zl_plan.ratio, zvc_plan.ratio);
}

TEST(CdmaEngineDeathTest, RejectsSubUnityRatio)
{
    CdmaEngine engine(defaultConfig());
    EXPECT_DEATH(engine.planFromRatio("bad", 100, 0.5), "store-raw");
}

// The flat config survives one release as a deprecated alias; this
// pins its field-for-field conversion into the nested sub-structs.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(CdmaConfig, FlatAliasConvertsFieldForField)
{
    FlatCdmaConfig flat;
    flat.algorithm = Algorithm::Rle;
    flat.window_bytes = 8192;
    flat.compression_enabled = false;
    flat.compression_lanes = 4;
    flat.timing_mode = TimingMode::Overlapped;
    flat.shard_bytes = 1 << 20;
    flat.staging_buffers = 3;
    flat.duplex_mode = DuplexMode::Half;
    flat.link_arbiter = LinkArbiter::PrefetchFirst;
    flat.retry.max_attempts = 7;

    const CdmaConfig config = flat;
    EXPECT_EQ(config.compression.algorithm, Algorithm::Rle);
    EXPECT_EQ(config.compression.window_bytes, 8192u);
    EXPECT_FALSE(config.compression.enabled);
    EXPECT_EQ(config.compression.lanes, 4u);
    EXPECT_EQ(config.transfer.timing_mode, TimingMode::Overlapped);
    EXPECT_EQ(config.transfer.shard_bytes, uint64_t{1} << 20);
    EXPECT_EQ(config.transfer.staging_buffers, 3u);
    EXPECT_EQ(config.transfer.duplex_mode, DuplexMode::Half);
    EXPECT_EQ(config.transfer.link_arbiter, LinkArbiter::PrefetchFirst);
    EXPECT_EQ(config.transfer.retry.max_attempts, 7u);
    // No topology override: engines route the degenerate two-node graph.
    EXPECT_EQ(config.topology.graph, nullptr);

    // A converted config drives an engine like a hand-nested one.
    const CdmaEngine engine{CdmaConfig(flat)};
    EXPECT_EQ(engine.config().compression.algorithm, Algorithm::Rle);
}
#pragma GCC diagnostic pop

} // namespace
} // namespace cdma
