/**
 * @file
 * Example: "what would cDMA buy me on this network?" Walks the full
 * modeling pipeline for one network (default VGG-16 at its Table I
 * batch): vDNN offload schedule and memory footprint, per-layer
 * compression ratios on synthetic trained activations, and the simulated
 * training iteration under vDNN / cDMA / oracle with a per-layer stall
 * breakdown.
 *
 * Run: ./build/examples/offload_pipeline [AlexNet|OverFeat|NiN|VGG|
 *                                         SqueezeNet|GoogLeNet]
 */

#include <algorithm>
#include <cstdio>
#include <string>

#include "common/rng.hh"
#include "compress/parallel.hh"
#include "perf/step_sim.hh"
#include "sparsity/generator.hh"
#include "sparsity/schedule.hh"

using namespace cdma;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "VGG";
    NetworkDesc net;
    bool found = false;
    for (const auto &candidate : allNetworkDescs()) {
        if (candidate.name == name) {
            net = candidate;
            found = true;
        }
    }
    if (!found) {
        std::fprintf(stderr, "unknown network '%s'\n", name.c_str());
        return 1;
    }

    // 1. vDNN memory accounting.
    VdnnMemoryManager manager(net, net.default_batch);
    const MemoryFootprint fp = manager.footprint();
    std::printf("== %s, batch %lld ==\n", net.name.c_str(),
                static_cast<long long>(net.default_batch));
    std::printf("baseline GPU memory: %.2f GB (activations+gradients "
                "%.0f%%)\n",
                static_cast<double>(fp.baseline_total) / 1e9,
                100.0 * fp.activationFraction());
    std::printf("vDNN working set:    %.2f GB\n",
                static_cast<double>(fp.vdnn_peak) / 1e9);
    std::printf("offload traffic:     %.2f GB per direction per "
                "iteration\n\n",
                static_cast<double>(manager.totalOffloadBytes()) / 1e9);

    // 2. Per-layer ZVC ratios from synthetic trained activations,
    //    compressed with the parallel window fan-out (one lane per
    //    hardware thread), the same path CdmaEngine::planTransfer uses
    //    when configured with compression_lanes != 1.
    const DensitySchedule schedule(net);
    const ActivationGenerator generator;
    const ParallelCompressor zvc(Algorithm::Zvc,
                                 Compressor::kDefaultWindowBytes,
                                 /*lanes=*/0);
    std::vector<double> ratios;
    for (size_t i = 0; i < net.layers.size(); ++i) {
        const LayerDesc &layer = net.layers[i];
        if (!layer.relu_follows) {
            ratios.push_back(1.0);
            continue;
        }
        const double density = schedule.density(i, 1.0);
        const int64_t max_c = std::max<int64_t>(
            1, (1 << 19) / (layer.height * layer.width));
        Rng rng(500 + i);
        const Tensor4D sample = generator.generate(
            Shape4D{1, std::min(layer.channels, max_c), layer.height,
                    layer.width},
            Layout::NCHW, density, rng);
        ratios.push_back(zvc.measureRatio(sample.rawBytes()));
    }

    // 3. Simulated iteration under each mode.
    CdmaConfig engine_config;
    engine_config.compression_lanes = 0; // all hardware threads
    CdmaEngine engine(engine_config);
    PerfModel perf;
    StepSimulator sim(manager, engine, perf, CudnnVersion::V5);
    const StepResult oracle = sim.run(StepMode::Oracle);
    const StepResult vdnn = sim.run(StepMode::Vdnn);
    const StepResult cdma = sim.run(StepMode::Cdma, ratios);

    std::printf("iteration time: oracle %.1f ms | cDMA-ZV %.1f ms | "
                "vDNN %.1f ms\n",
                oracle.total_seconds * 1e3, cdma.total_seconds * 1e3,
                vdnn.total_seconds * 1e3);
    std::printf("cDMA speedup over vDNN: %.0f%%; PCIe wire traffic "
                "%.2f GB -> %.2f GB\n\n",
                100.0 * (cdma.speedupOver(vdnn) - 1.0),
                static_cast<double>(vdnn.wire_transfer_bytes) / 1e9,
                static_cast<double>(cdma.wire_transfer_bytes) / 1e9);

    // 4. The five worst stalling layers under vDNN, and their fate under
    //    cDMA.
    std::printf("worst vDNN stalls (layer: fwd stall -> cDMA fwd "
                "stall, ms):\n");
    std::vector<size_t> order(vdnn.layers.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return vdnn.layers[a].forward_stall >
            vdnn.layers[b].forward_stall;
    });
    for (size_t k = 0; k < std::min<size_t>(5, order.size()); ++k) {
        const auto &v = vdnn.layers[order[k]];
        const auto &c = cdma.layers[order[k]];
        if (v.forward_stall <= 0.0)
            break;
        std::printf("  %-12s %7.2f -> %7.2f\n", v.label.c_str(),
                    v.forward_stall * 1e3, c.forward_stall * 1e3);
    }
    return 0;
}
