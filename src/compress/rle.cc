#include "compress/rle.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"
#include "compress/kernels/kernels.hh"

namespace cdma {

namespace {

// Token byte: bit 7 set -> zero-run, clear -> literal-run; bits 6..0 hold
// (run length - 1), so a token covers 1..128 words.
constexpr uint8_t kZeroRunFlag = 0x80;

bool
isZeroWord(const uint8_t *p)
{
    uint32_t value;
    std::memcpy(&value, p, 4);
    return value == 0;
}

} // namespace

RleCompressor::RleCompressor(uint64_t window_bytes,
                             const KernelOps *kernels)
    : Compressor(window_bytes, kernels)
{
}

uint64_t
RleCompressor::compressedBound(uint64_t raw_len) const
{
    // Worst case: every word its own literal run (1 token byte + 4 data
    // bytes per word) plus the raw sub-word tail.
    return raw_len + raw_len / kWordBytes + kWordBytes;
}

void
RleCompressor::compressWindowInto(std::span<const uint8_t> window,
                                  ByteVec &out) const
{
    const uint64_t words = window.size() / kWordBytes;
    const uint64_t tail_bytes = window.size() % kWordBytes;
    const uint8_t *src = window.data();

    // Worst case sized up front and trimmed once at the end (ByteVec:
    // no zero-fill of the staging bytes), so the token/literal emission
    // below is raw pointer writes with zero reallocation. Run boundaries
    // come from the kernel backend's scans — the token stream they
    // produce is backend-invariant by construction (a run ends at the
    // first word of the other kind, however it was found).
    const KernelOps &kernel = kernels();
    const size_t base = out.size();
    out.resize(base + compressedBound(window.size()));
    uint8_t *out_base = out.data() + base;
    uint8_t *dst = out_base;

    uint64_t i = 0;
    while (i < words) {
        const uint64_t cap = std::min<uint64_t>(kMaxRun, words - i);
        const uint8_t *p = src + i * kWordBytes;
        if (isZeroWord(p)) {
            const uint64_t run = kernel.zeroRunWords(p, cap);
            *dst++ = kZeroRunFlag | static_cast<uint8_t>(run - 1);
            i += run;
        } else {
            const uint64_t run = kernel.literalRunWords(p, cap);
            *dst++ = static_cast<uint8_t>(run - 1);
            kernel.copyBytes(dst, p,
                             static_cast<size_t>(run) * kWordBytes);
            dst += run * kWordBytes;
            i += run;
        }
    }

    // Sub-word tail stored raw (prefixed by a literal token of one word
    // would mis-size it; the framing knows the original size so raw bytes
    // at the end are unambiguous). At most 3 bytes: plain memcpy.
    if (tail_bytes) {
        std::memcpy(dst, src + words * kWordBytes, tail_bytes);
        dst += tail_bytes;
    }
    out.resize(base + static_cast<size_t>(dst - out_base));
}

Status
RleCompressor::decompressWindowInto(std::span<const uint8_t> payload,
                                    uint64_t original_bytes,
                                    uint8_t *out) const
{
    const uint64_t words = original_bytes / kWordBytes;
    const uint64_t tail_bytes = original_bytes % kWordBytes;

    // Run reconstruction goes through the kernel backend: zero tokens
    // are the zero-fill op, literal tokens the bulk byte copy — the
    // prefetch-side mirror of the scan/copy ops compression uses. Every
    // bound is checked before the kernel call, so a truncated or
    // bit-flipped token stream surfaces as a Status, never an OOB read.
    const KernelOps &kernel = kernels();
    size_t cursor = 0;
    uint64_t produced = 0;
    while (produced < words) {
        if (cursor >= payload.size()) {
            return Status::truncated(
                "RL: payload truncated before token at byte %zu "
                "(%llu of %llu words decoded)", cursor,
                static_cast<unsigned long long>(produced),
                static_cast<unsigned long long>(words));
        }
        const uint8_t token = payload[cursor++];
        const uint64_t run = static_cast<uint64_t>(token & 0x7F) + 1;
        if (produced + run > words) {
            return Status::corrupt(
                "RL: run of %llu words at byte %zu overflows the "
                "original window (%llu of %llu words decoded)",
                static_cast<unsigned long long>(run), cursor - 1,
                static_cast<unsigned long long>(produced),
                static_cast<unsigned long long>(words));
        }
        uint8_t *dst = out + produced * kWordBytes;
        if (token & kZeroRunFlag) {
            kernel.zeroFillBytes(dst, run * kWordBytes);
        } else {
            if (cursor + run * kWordBytes > payload.size()) {
                return Status::truncated(
                    "RL: payload truncated in literal run at byte %zu "
                    "(run of %llu words, payload %zu bytes)", cursor,
                    static_cast<unsigned long long>(run),
                    payload.size());
            }
            kernel.copyBytes(dst, payload.data() + cursor,
                             run * kWordBytes);
            cursor += run * kWordBytes;
        }
        produced += run;
    }

    if (tail_bytes) {
        if (cursor + tail_bytes > payload.size()) {
            return Status::truncated(
                "RL: payload truncated in raw tail at byte %zu "
                "(payload %zu bytes)", cursor, payload.size());
        }
        std::memcpy(out + words * kWordBytes, payload.data() + cursor,
                    tail_bytes);
        cursor += tail_bytes;
    }
    if (cursor != payload.size()) {
        return Status::corrupt("RL: payload has %zu trailing bytes",
                               payload.size() - cursor);
    }
    return Status();
}

} // namespace cdma
