/**
 * @file
 * Status/termination reporting in the gem5 tradition: panic() for internal
 * invariant violations (simulator bugs), fatal() for user/configuration
 * errors, warn()/inform() for non-fatal notices.
 */

#ifndef CDMA_COMMON_LOGGING_HH
#define CDMA_COMMON_LOGGING_HH

#include <cstdarg>
#include <cstdint>
#include <functional>
#include <string>

namespace cdma {

/**
 * Severity of a log message. Ordered so that a verbosity threshold can
 * filter the stream.
 */
enum class LogLevel {
    Debug,
    Info,
    Warn,
    Error,
};

/** Set the global minimum level that is actually emitted. */
void setLogLevel(LogLevel level);

/** Current global minimum level. */
LogLevel logLevel();

/**
 * Parse a level name ("debug", "info", "warn", "error", case-insensitive)
 * into @p out. Returns false (leaving @p out untouched) on anything else.
 */
bool parseLogLevel(const std::string &name, LogLevel &out);

/**
 * Level requested by the `CDMA_LOG_LEVEL` environment variable, or Info
 * when unset. An unrecognized value earns a warning and falls back to
 * Info. Evaluated once at startup to seed the global level; re-callable
 * so tests can exercise the parsing against a modified environment.
 */
LogLevel logLevelFromEnv();

/**
 * Destination for formatted log lines. The level is the message's
 * severity (already past the global filter); the string is the fully
 * formatted body without the "[level] " tag or trailing newline.
 */
using LogSink = std::function<void(LogLevel, const std::string &)>;

/**
 * Redirect log output (including fatal/panic last words) to @p sink
 * instead of stderr. Pass an empty function to restore stderr. Intended
 * for tests and for embedding the library in a host with its own logger.
 */
void setLogSink(LogSink sink);

/**
 * Emit a formatted message at the given level to stderr. Used by the
 * convenience wrappers below; rarely called directly.
 *
 * @param level Message severity.
 * @param fmt printf-style format string.
 */
void logMessage(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Informative message the user should see but not worry about. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Something may be mis-modeled but the run can continue. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Diagnostic detail, suppressed unless CDMA_LOG_LEVEL=debug. */
void debug(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Budget for a warning that can fire once per event on a hot path (CRC
 * failure, link fault, arena eviction). Declare one per call site —
 * usually `static` — and pass it to warnRateLimited().
 */
struct WarnRateLimit {
    /** Warnings emitted before the site goes quiet. */
    uint64_t max_emitted = 10;
    /** Times the site has fired (emitted or suppressed). */
    uint64_t seen = 0;
};

/**
 * Emit a warning unless @p limit is exhausted. The first `max_emitted`
 * calls log normally; the call that crosses the budget appends a single
 * "further warnings suppressed" notice; later calls only count.
 *
 * @return Whether the warning body was actually emitted.
 */
bool warnRateLimited(WarnRateLimit &limit, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/**
 * Terminate because of a user error (bad configuration, invalid argument).
 * Exits with status 1; does not dump core.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Terminate because of an internal invariant violation (a bug in this
 * library). Aborts so a core dump / debugger trap is possible.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assert an invariant with a formatted explanation. Compiled in all build
 * types: simulators must not silently continue past a broken invariant.
 */
#define CDMA_ASSERT(cond, fmt, ...)                                         \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::cdma::panic("assertion '%s' failed at %s:%d: " fmt, #cond,    \
                          __FILE__, __LINE__ __VA_OPT__(, ) __VA_ARGS__);   \
        }                                                                   \
    } while (0)

} // namespace cdma

#endif // CDMA_COMMON_LOGGING_HH
