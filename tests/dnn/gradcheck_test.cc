/**
 * @file
 * Numerical gradient verification: central-difference gradients of a
 * scalar loss w.r.t. layer parameters and inputs must match the analytic
 * backward pass. This is the ground-truth correctness check for the
 * training framework — if these pass, the sparsity the framework produces
 * comes from genuine SGD dynamics, not from broken math.
 */

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dnn/activation.hh"
#include "dnn/composite.hh"
#include "dnn/conv.hh"
#include "dnn/fc.hh"
#include "dnn/loss.hh"
#include "dnn/pool.hh"

namespace cdma {
namespace {

/** Scalar objective: sum of 0.5 * y^2 over the layer output. */
double
halfSquaredSum(const Tensor4D &y)
{
    double total = 0.0;
    for (float v : y.data())
        total += 0.5 * static_cast<double>(v) * static_cast<double>(v);
    return total;
}

/** dLoss/dY for the objective above is simply Y. */
Tensor4D
halfSquaredGrad(const Tensor4D &y)
{
    Tensor4D g(y.shape(), y.layout());
    auto src = y.data();
    auto dst = g.data();
    for (size_t i = 0; i < src.size(); ++i)
        dst[i] = src[i];
    return g;
}

/**
 * Check the analytic input gradient of @p layer on @p input against
 * central differences.
 */
void
checkInputGradient(Layer &layer, Tensor4D input, double tolerance)
{
    const Tensor4D y = layer.forward(input);
    const Tensor4D analytic = layer.backward(halfSquaredGrad(y));

    const float eps = 1e-3f;
    auto data = input.data();
    for (size_t i = 0; i < data.size(); ++i) {
        const float saved = data[i];
        data[i] = saved + eps;
        const double plus = halfSquaredSum(layer.forward(input));
        data[i] = saved - eps;
        const double minus = halfSquaredSum(layer.forward(input));
        data[i] = saved;
        const double numeric = (plus - minus) / (2.0 * eps);
        EXPECT_NEAR(analytic.data()[i], numeric, tolerance)
            << "input element " << i;
    }
}

/** Check analytic parameter gradients against central differences. */
void
checkParamGradient(Layer &layer, const Tensor4D &input, double tolerance)
{
    for (ParamBlob *blob : layer.params())
        blob->clearGrad();
    const Tensor4D y = layer.forward(input);
    layer.backward(halfSquaredGrad(y));

    const float eps = 1e-3f;
    for (ParamBlob *blob : layer.params()) {
        for (size_t i = 0; i < blob->value.size(); ++i) {
            const float saved = blob->value[i];
            blob->value[i] = saved + eps;
            const double plus = halfSquaredSum(layer.forward(input));
            blob->value[i] = saved - eps;
            const double minus = halfSquaredSum(layer.forward(input));
            blob->value[i] = saved;
            const double numeric = (plus - minus) / (2.0 * eps);
            EXPECT_NEAR(blob->grad[i], numeric, tolerance)
                << "param element " << i;
        }
    }
}

Tensor4D
randomInput(const Shape4D &shape, uint64_t seed)
{
    Rng rng(seed);
    Tensor4D t(shape);
    for (float &v : t.data())
        v = static_cast<float>(rng.normal(0.0, 0.5));
    return t;
}

TEST(GradCheck, ConvInputGradient)
{
    Rng rng(100);
    Conv2D conv("conv", 2, ConvSpec{3, 3, 1, 1}, rng);
    checkInputGradient(conv, randomInput({2, 2, 5, 5}, 1), 2e-2);
}

TEST(GradCheck, ConvParamGradient)
{
    Rng rng(101);
    Conv2D conv("conv", 2, ConvSpec{2, 3, 2, 0}, rng);
    checkParamGradient(conv, randomInput({2, 2, 6, 6}, 2), 2e-2);
}

TEST(GradCheck, FcInputGradient)
{
    Rng rng(102);
    FullyConnected fc("fc", 12, 5, rng);
    checkInputGradient(fc, randomInput({3, 3, 2, 2}, 3), 2e-2);
}

TEST(GradCheck, FcParamGradient)
{
    Rng rng(103);
    FullyConnected fc("fc", 8, 4, rng);
    checkParamGradient(fc, randomInput({2, 2, 2, 2}, 4), 2e-2);
}

TEST(GradCheck, ReluInputGradient)
{
    ReLU relu("relu");
    // Offset inputs away from the kink at zero.
    Tensor4D input = randomInput({2, 3, 4, 4}, 5);
    for (float &v : input.data()) {
        if (std::abs(v) < 0.05f)
            v = 0.2f;
    }
    checkInputGradient(relu, input, 1e-2);
}

TEST(GradCheck, AvgPoolInputGradient)
{
    Pool2D pool("pool", PoolSpec{2, 2, PoolMode::Avg});
    checkInputGradient(pool, randomInput({2, 2, 4, 4}, 6), 1e-2);
}

TEST(GradCheck, MaxPoolInputGradient)
{
    Pool2D pool("pool", PoolSpec{2, 2, PoolMode::Max});
    // Perturb-safe input: make window elements well separated so the
    // argmax does not flip under +/- eps.
    Rng rng(7);
    Tensor4D input(Shape4D{1, 2, 4, 4});
    for (float &v : input.data())
        v = static_cast<float>(rng.uniform(0.0, 1.0)) * 10.0f;
    checkInputGradient(pool, input, 1e-2);
}

TEST(GradCheck, ParallelConcatGradients)
{
    Rng rng(104);
    std::vector<Branch> branches(2);
    branches[0].push_back(std::make_unique<Conv2D>(
        "b0", 2, ConvSpec{2, 1, 1, 0}, rng));
    branches[1].push_back(std::make_unique<Conv2D>(
        "b1", 2, ConvSpec{3, 3, 1, 1}, rng));
    ParallelConcat concat("concat", std::move(branches));
    checkInputGradient(concat, randomInput({1, 2, 4, 4}, 8), 2e-2);
    checkParamGradient(concat, randomInput({1, 2, 4, 4}, 9), 2e-2);
}

TEST(GradCheck, SoftmaxCrossEntropyGradient)
{
    SoftmaxCrossEntropy loss;
    Tensor4D logits = randomInput({3, 5, 1, 1}, 10);
    const std::vector<int> labels = {1, 4, 0};

    loss.forward(logits, labels);
    const Tensor4D analytic = loss.backward();

    const float eps = 1e-3f;
    auto data = logits.data();
    for (size_t i = 0; i < data.size(); ++i) {
        const float saved = data[i];
        data[i] = saved + eps;
        const double plus = loss.forward(logits, labels);
        data[i] = saved - eps;
        const double minus = loss.forward(logits, labels);
        data[i] = saved;
        const double numeric = (plus - minus) / (2.0 * eps);
        EXPECT_NEAR(analytic.data()[i], numeric, 1e-3)
            << "logit " << i;
    }
}

} // namespace
} // namespace cdma
