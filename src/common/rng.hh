/**
 * @file
 * Deterministic pseudo-random number generation for reproducible
 * experiments. Implements xoshiro256** (Blackman & Vigna) plus the
 * SplitMix64 seeder, with convenience distributions used throughout the
 * workload generators.
 */

#ifndef CDMA_COMMON_RNG_HH
#define CDMA_COMMON_RNG_HH

#include <cstdint>

namespace cdma {

/**
 * xoshiro256** generator. All experiment randomness flows through this so
 * that runs are exactly reproducible from a single 64-bit seed, independent
 * of the standard library implementation.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound). @pre bound > 0. */
    uint64_t uniformInt(uint64_t bound);

    /** Standard normal via Box-Muller (cached second variate). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /**
     * Fork an independent child stream. Children seeded from distinct draws
     * of this generator remain decorrelated in practice, which is all the
     * synthetic workloads require.
     */
    Rng fork();

  private:
    uint64_t s_[4];
    double cached_normal_ = 0.0;
    bool has_cached_normal_ = false;
};

} // namespace cdma

#endif // CDMA_COMMON_RNG_HH
