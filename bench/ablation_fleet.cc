/**
 * @file
 * Fleet scaling ablation: N data-parallel GPUs offloading through one
 * shared PCIe-switch uplink. The paper prices cDMA on a single GPU; a
 * DGX-style node multiplexes 4-8 GPUs behind a switch, so the effective
 * per-GPU host link is the uplink divided by whoever is draining at
 * once. The sweep reports, per fleet size, the modeled makespan, the
 * mean contention-stall fraction (share of a GPU's wall time spent
 * queued behind OTHER GPUs' grants on the uplink), the uplink
 * utilization, and the aggregate raw goodput — showing exactly how fast
 * compression's effective-bandwidth win erodes as ranks are added.
 *
 * --fleet-smoke: tiny sweep (N = 1, 2, 4) that exits nonzero if the
 * fleet DES degenerates — nonzero contention for a fleet of one, or
 * contention that fails to strictly increase with fleet size. This is
 * the CI leg that keeps the shared-uplink model honest.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "cdma/fleet_sim.hh"
#include "common/harness.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

using namespace cdma;
using bench::Table;

namespace {

FleetSpec
sweepSpec(unsigned gpus)
{
    FleetSpec spec;
    spec.gpu_count = gpus;
    // Gen3 x16-class legs and uplink: the uplink bandwidth is FIXED
    // while N scales, which is the whole point of the sweep.
    spec.gpu_link_bandwidth = 12.8e9;
    spec.uplink_bandwidth = 12.8e9;
    spec.offload_raw_bytes = 64ull << 20;
    spec.offload_ratio = 2.5; // ZV-class
    spec.prefetch_raw_bytes = 64ull << 20;
    spec.prefetch_ratio = 2.5;
    spec.shard_raw_bytes = 4ull << 20;
    return spec;
}

int
fleetSmoke()
{
    double previous = -1.0;
    for (unsigned gpus : {1u, 2u, 4u}) {
        FleetSpec spec = sweepSpec(gpus);
        spec.offload_raw_bytes = 16ull << 20;
        spec.prefetch_raw_bytes = 0;
        spec.shard_raw_bytes = 2ull << 20;
        const FleetResult result = FleetSimulator(spec).run();
        const double stall = result.mean_contention_stall_fraction;
        std::printf("fleet-smoke: N=%u contention=%.4f makespan=%.3f ms\n",
                    gpus, stall, result.makespan_seconds * 1e3);
        if (gpus == 1 && stall > 1e-12) {
            std::fprintf(stderr,
                         "fleet-smoke: FAIL: a fleet of one reported "
                         "contention %.6f on its private uplink\n",
                         stall);
            return 1;
        }
        if (gpus > 1 && stall <= previous) {
            std::fprintf(stderr,
                         "fleet-smoke: FAIL: contention did not "
                         "strictly increase at N=%u (%.6f <= %.6f) — "
                         "the shared-uplink DES degenerated\n",
                         gpus, stall, previous);
            return 1;
        }
        previous = stall;
    }
    std::printf("fleet-smoke: OK\n");
    return 0;
}

/**
 * With --trace-out / --metrics-out: one dedicated, observed N=4 run (a
 * TraceRecorder may observe at most one FleetSimulator::run, because
 * every run's timeline starts at t = 0). Deterministic spec, so the
 * exported trace is byte-stable across invocations.
 */
void
writeObservability(const std::string &trace_out,
                   const std::string &metrics_out)
{
    if (trace_out.empty() && metrics_out.empty())
        return;
    obs::TraceRecorder trace;
    obs::MetricsRegistry metrics;
    FleetSpec spec = sweepSpec(4);
    spec.trace = trace_out.empty() ? nullptr : &trace;
    spec.metrics = &metrics;
    FleetSimulator(spec).run();

    const obs::HistogramMetric &latency =
        metrics.histogram("transfer.offload.shard_latency_seconds");
    std::printf("\nobserved N=4 run: offload shard latency p50 %.3f ms / "
                "p95 %.3f ms / p99 %.3f ms over %llu shards\n",
                latency.percentile(0.50) * 1e3,
                latency.percentile(0.95) * 1e3,
                latency.percentile(0.99) * 1e3,
                static_cast<unsigned long long>(latency.count()));
    if (!trace_out.empty()) {
        trace.writeFileOrDie(trace_out);
        std::printf("wrote trace: %s (%zu events)\n", trace_out.c_str(),
                    trace.eventCount());
    }
    if (!metrics_out.empty()) {
        metrics.writeFileOrDie(metrics_out);
        std::printf("wrote metrics: %s\n", metrics_out.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string trace_out =
        obs::extractFlag(argc, argv, "trace-out");
    const std::string metrics_out =
        obs::extractFlag(argc, argv, "metrics-out");
    if (argc > 1 && std::strcmp(argv[1], "--fleet-smoke") == 0) {
        const int rc = fleetSmoke();
        if (rc == 0)
            writeObservability(trace_out, metrics_out);
        return rc;
    }

    std::printf("== Ablation: fleet size behind one switch uplink "
                "(64 MiB offload + prefetch per GPU, ZV 2.5x) ==\n");
    Table table({"GPUs", "makespan ms", "contention", "uplink util",
                 "agg raw GB/s"});
    for (unsigned gpus : {1u, 2u, 4u, 8u, 16u}) {
        const FleetSpec spec = sweepSpec(gpus);
        const FleetResult result = FleetSimulator(spec).run();
        const double raw_total = static_cast<double>(gpus) *
            static_cast<double>(spec.offload_raw_bytes +
                                spec.prefetch_raw_bytes);
        table.addRow({
            std::to_string(gpus),
            Table::num(result.makespan_seconds * 1e3, 2),
            Table::num(result.mean_contention_stall_fraction, 3),
            Table::num(result.uplink_utilization, 3),
            Table::num(raw_total / result.makespan_seconds / 1e9, 1),
        });
    }
    table.print();

    // NVLink sidebar: peer links do not relieve the host uplink (the
    // spill path still crosses the switch), which is the Section IX
    // argument for why compression stays relevant on NVLink parts.
    std::printf("\n== Same sweep with a 50 GB/s NVLink ring ==\n");
    Table nvlink({"GPUs", "makespan ms", "contention"});
    for (unsigned gpus : {2u, 4u, 8u}) {
        FleetSpec spec = sweepSpec(gpus);
        spec.nvlink_bandwidth = 50.0e9;
        const FleetResult result = FleetSimulator(spec).run();
        nvlink.addRow({
            std::to_string(gpus),
            Table::num(result.makespan_seconds * 1e3, 2),
            Table::num(result.mean_contention_stall_fraction, 3),
        });
    }
    nvlink.print();
    writeObservability(trace_out, metrics_out);
    return 0;
}
