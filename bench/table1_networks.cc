/**
 * @file
 * Table I reproduction: the evaluated networks with their minibatch
 * sizes, plus our scaled-training outcome (validation accuracy on the
 * synthetic 10-class task standing in for ImageNet top-1; see DESIGN.md
 * substitution table) and the full-size model statistics the memory
 * experiments use.
 */

#include <cstdio>

#include "common/harness.hh"
#include "vdnn/memory_manager.hh"

using namespace cdma;
using bench::Table;

int
main(int argc, char **argv)
{
    bench::ScaledRunConfig config;
    config.iterations = 200;
    bench::parseTrainArgs(argc, argv, config);

    std::printf("== Table I: networks, batch sizes, training outcome ==\n");
    std::printf("(accuracy: scaled variant on the synthetic 10-class "
                "task, chance = 10%%)\n\n");
    Table table({"network", "batch", "GMACs/img", "act MB/img",
                 "scaled val acc", "iters"});
    for (const auto &net : allNetworkDescs()) {
        const auto run = bench::trainScaledNetwork(net.name, config);
        table.addRow({
            net.name,
            std::to_string(net.default_batch),
            Table::num(static_cast<double>(net.totalMacsPerImage()) / 1e9,
                       2),
            Table::num(static_cast<double>(
                           net.totalActivationBytesPerImage()) / 1e6, 1),
            Table::num(100.0 * run.val_accuracy, 1) + "%",
            std::to_string(config.iterations),
        });
    }
    table.print();

    std::printf("\n== GPU memory footprint at Table I batch sizes ==\n");
    Table mem({"network", "weights MB", "acts+grads GB", "baseline GB",
               "vDNN peak GB", "fits 12GB?"});
    for (const auto &net : allNetworkDescs()) {
        VdnnMemoryManager manager(net, net.default_batch);
        const MemoryFootprint fp = manager.footprint();
        mem.addRow({
            net.name,
            Table::num(static_cast<double>(fp.weights_bytes) / 1e6, 0),
            Table::num(static_cast<double>(fp.activations_bytes +
                                           fp.gradients_bytes) / 1e9, 2),
            Table::num(static_cast<double>(fp.baseline_total) / 1e9, 2),
            Table::num(static_cast<double>(fp.vdnn_peak) / 1e9, 2),
            fp.vdnn_peak < 12ull * 1024 * 1024 * 1024 ? "yes (vDNN)"
                                                      : "no",
        });
    }
    mem.print();
    return 0;
}
