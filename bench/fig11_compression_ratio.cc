/**
 * @file
 * Figure 11 reproduction: average (network-wide, byte-weighted) and
 * maximum (per-layer) compression ratio for each compression algorithm
 * (RL = run-length, ZV = zero-value, ZL = DEFLATE/zlib-class) under each
 * activation data layout (NCHW, NHWC, CHWN), for all six networks.
 *
 * Expected shape (paper): ZVC ~2.6x average, layout-insensitive, max
 * per-layer ~13.8x; RLE worst and strongly layout-sensitive (best on
 * NCHW); zlib best average on NCHW (~2.76x) but within a few percent of
 * ZVC elsewhere.
 *
 * As in the paper, the measurement spans the training process: the
 * average is the mean over three training checkpoints (t = 0.35, 0.65,
 * 1.0 — trough, recovery, trained) of the byte-weighted network ratio;
 * the per-layer maximum is taken over all checkpoints, which is where
 * the paper's 13.8x occurs (FC layers at the mid-training trough).
 */

#include <cstdio>
#include <cstdlib>

#include "common/harness.hh"
#include "common/stats.hh"

using namespace cdma;
using bench::Table;

int
main(int argc, char **argv)
{
    bench::RatioMeasureConfig config;
    if (argc > 1) {
        // Optional element cap override for quick runs.
        config.max_elements = std::atoll(argv[1]);
    }

    std::printf("== Figure 11: compression ratio by algorithm and "
                "layout ==\n");
    std::printf("(avg = byte-weighted network average over training "
                "checkpoints; max = per-layer max over checkpoints)\n\n");

    Accumulator zvc_overall;
    Accumulator zl_nchw_overall;
    double global_max = 0.0;

    for (const auto &net : allNetworkDescs()) {
        Table table({"layout", "RL avg", "RL max", "ZV avg", "ZV max",
                     "ZL avg", "ZL max"});
        for (Layout layout : kAllLayouts) {
            std::vector<std::string> row = {layoutName(layout)};
            for (Algorithm algorithm : kAllAlgorithms) {
                const auto result = bench::measureTimeAveragedRatios(
                    net, algorithm, layout, {0.35, 0.65, 1.0}, config);
                row.push_back(Table::num(result.average, 2));
                row.push_back(Table::num(result.max, 1));
                if (layout == Layout::NCHW) {
                    if (algorithm == Algorithm::Zvc) {
                        zvc_overall.add(result.average);
                        global_max = std::max(global_max, result.max);
                    } else if (algorithm == Algorithm::Zlib) {
                        zl_nchw_overall.add(result.average);
                    }
                }
            }
            table.addRow(row);
        }
        std::printf("-- %s --\n", net.name.c_str());
        table.print();
        std::printf("\n");
    }

    std::printf("ZVC overall average: %.2fx (paper: 2.6x), "
                "max per-layer: %.1fx (paper: 13.8x)\n",
                zvc_overall.mean(), global_max);
    std::printf("zlib overall average on NCHW: %.2fx (paper: 2.76x)\n",
                zl_nchw_overall.mean());
    return 0;
}
