/**
 * @file
 * Figure 12 reproduction: size of the activation maps offloaded to CPU
 * memory (PCIe traffic), normalized to the uncompressed vDNN baseline,
 * for RL / ZV / ZL under the NCHW layout. The normalized size is the
 * reciprocal of the byte-weighted network compression ratio.
 */

#include <cstdio>

#include "common/harness.hh"

using namespace cdma;
using bench::Table;

int
main()
{
    std::printf("== Figure 12: offloaded bytes normalized to vDNN "
                "(lower is better) ==\n");
    Table table({"network", "vDNN", "RL", "ZV", "ZL"});
    double zv_sum = 0.0, zl_sum = 0.0;
    for (const auto &net : allNetworkDescs()) {
        std::vector<std::string> row = {net.name, "1.000"};
        double zv = 1.0, zl = 1.0;
        for (Algorithm algorithm : kAllAlgorithms) {
            const auto result = bench::measureTimeAveragedRatios(
                net, algorithm, Layout::NCHW);
            const double normalized = 1.0 / result.average;
            row.push_back(Table::num(normalized, 3));
            if (algorithm == Algorithm::Zvc)
                zv = normalized;
            if (algorithm == Algorithm::Zlib)
                zl = normalized;
        }
        zv_sum += zv;
        zl_sum += zl;
        table.addRow(row);
    }
    table.print();
    std::printf("\nZL reduces traffic by an average %.0f%% over ZV "
                "(paper: ~3%%)\n",
                100.0 * (zv_sum - zl_sum) / zv_sum);
    return 0;
}
