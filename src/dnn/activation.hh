/**
 * @file
 * Element-wise activation layers. ReLU is the source of all the sparsity
 * this paper exploits (Section III): it thresholds negative pre-
 * activations to exactly zero, so roughly half or more of every ReLU
 * output is zero-valued.
 */

#ifndef CDMA_DNN_ACTIVATION_HH
#define CDMA_DNN_ACTIVATION_HH

#include "dnn/layer.hh"

namespace cdma {

/** Rectified linear unit: y = max(0, x). */
class ReLU : public Layer
{
  public:
    explicit ReLU(std::string name);

    std::string type() const override { return "relu"; }
    Shape4D outputShape(const Shape4D &input) const override;
    Tensor4D forward(const Tensor4D &input) override;
    Tensor4D backward(const Tensor4D &output_grad) override;

  private:
    // 1 where the input was positive; backward multiplies by this mask.
    std::vector<uint8_t> mask_;
    Shape4D cached_shape_;
};

/**
 * Sigmoid activation: y = 1 / (1 + exp(-x)). Included for completeness —
 * the paper notes cDMA is *not* effective for sigmoid/tanh RNNs
 * (Section III) because their outputs are never exactly zero; a unit test
 * demonstrates exactly that.
 */
class Sigmoid : public Layer
{
  public:
    explicit Sigmoid(std::string name);

    std::string type() const override { return "sigmoid"; }
    Shape4D outputShape(const Shape4D &input) const override;
    Tensor4D forward(const Tensor4D &input) override;
    Tensor4D backward(const Tensor4D &output_grad) override;

  private:
    Tensor4D cached_output_;
};

/** Hyperbolic tangent activation. */
class Tanh : public Layer
{
  public:
    explicit Tanh(std::string name);

    std::string type() const override { return "tanh"; }
    Shape4D outputShape(const Shape4D &input) const override;
    Tensor4D forward(const Tensor4D &input) override;
    Tensor4D backward(const Tensor4D &output_grad) override;

  private:
    Tensor4D cached_output_;
};

} // namespace cdma

#endif // CDMA_DNN_ACTIVATION_HH
