#include "sparsity/generator.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "common/logging.hh"

namespace cdma {

ActivationGenerator::ActivationGenerator(const ActivationGenConfig &config)
    : config_(config)
{
    CDMA_ASSERT(config.cluster_scale >= 1.0,
                "cluster scale must be at least one activation");
}

Tensor4D
ActivationGenerator::generate(const Shape4D &shape, Layout layout,
                              double density, Rng &rng) const
{
    CDMA_ASSERT(density >= 0.0 && density <= 1.0,
                "density %f out of range", density);

    // Smooth per-plane fields: coarse Gaussian grid, bilinear upsampling.
    const auto total = static_cast<size_t>(shape.elements());
    std::vector<float> field(total);

    const int64_t grid_h = std::max<int64_t>(
        2, static_cast<int64_t>(std::ceil(
               static_cast<double>(shape.h) / config_.cluster_scale)) + 1);
    const int64_t grid_w = std::max<int64_t>(
        2, static_cast<int64_t>(std::ceil(
               static_cast<double>(shape.w) / config_.cluster_scale)) + 1);

    std::vector<float> grid(
        static_cast<size_t>(grid_h * grid_w));

    size_t cursor = 0;
    for (int64_t n = 0; n < shape.n; ++n) {
        for (int64_t c = 0; c < shape.c; ++c) {
            const auto bias = static_cast<float>(
                rng.normal(0.0, config_.channel_bias_stddev));
            for (auto &g : grid)
                g = static_cast<float>(rng.normal());

            const double sy = shape.h > 1
                ? static_cast<double>(grid_h - 1) /
                    static_cast<double>(shape.h - 1)
                : 0.0;
            const double sx = shape.w > 1
                ? static_cast<double>(grid_w - 1) /
                    static_cast<double>(shape.w - 1)
                : 0.0;

            for (int64_t y = 0; y < shape.h; ++y) {
                const double gy = static_cast<double>(y) * sy;
                const auto y0 = static_cast<int64_t>(gy);
                const int64_t y1 = std::min(y0 + 1, grid_h - 1);
                const auto fy = static_cast<float>(gy - static_cast<double>(
                    y0));
                for (int64_t x = 0; x < shape.w; ++x) {
                    const double gx = static_cast<double>(x) * sx;
                    const auto x0 = static_cast<int64_t>(gx);
                    const int64_t x1 = std::min(x0 + 1, grid_w - 1);
                    const auto fx = static_cast<float>(
                        gx - static_cast<double>(x0));

                    const float v00 =
                        grid[static_cast<size_t>(y0 * grid_w + x0)];
                    const float v01 =
                        grid[static_cast<size_t>(y0 * grid_w + x1)];
                    const float v10 =
                        grid[static_cast<size_t>(y1 * grid_w + x0)];
                    const float v11 =
                        grid[static_cast<size_t>(y1 * grid_w + x1)];
                    const float top = v00 + (v01 - v00) * fx;
                    const float bottom = v10 + (v11 - v10) * fx;
                    field[cursor++] = bias + top + (bottom - top) * fy;
                }
            }
        }
    }
    CDMA_ASSERT(cursor == total, "field fill mismatch");

    // Exact-quantile threshold: the (1 - density) fraction of the field
    // falls below tau and becomes zero.
    float tau;
    if (density >= 1.0) {
        // Everything stays live; rectify against a finite threshold just
        // below the field minimum so values remain finite and positive.
        tau = *std::min_element(field.begin(), field.end()) - 1.0f;
    } else if (density <= 0.0) {
        tau = std::numeric_limits<float>::infinity();
    } else {
        std::vector<float> sorted(field);
        const auto k = static_cast<size_t>(
            std::min<double>(static_cast<double>(total - 1),
                             (1.0 - density) *
                                 static_cast<double>(total)));
        std::nth_element(sorted.begin(),
                         sorted.begin() + static_cast<int64_t>(k),
                         sorted.end());
        tau = sorted[k];
    }

    // ReLU-style rectification around the threshold: smooth positive
    // values over the live clusters, exact zeros elsewhere.
    Tensor4D out(shape, layout);
    cursor = 0;
    const auto scale = static_cast<float>(config_.value_scale);
    const int drop_bits = std::clamp(23 - config_.mantissa_bits, 0, 23);
    auto quantize = [drop_bits](float v) {
        if (drop_bits == 0 || v == 0.0f)
            return v;
        uint32_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        bits &= ~((1u << drop_bits) - 1);
        float q;
        std::memcpy(&q, &bits, sizeof(q));
        // Never let quantization manufacture a zero (losslessness of the
        // codecs is tested against exact zero counts).
        return q != 0.0f ? q : v;
    };
    for (int64_t n = 0; n < shape.n; ++n) {
        for (int64_t c = 0; c < shape.c; ++c) {
            for (int64_t y = 0; y < shape.h; ++y) {
                for (int64_t x = 0; x < shape.w; ++x) {
                    const float v = field[cursor++];
                    out.at(n, c, y, x) =
                        v > tau ? quantize((v - tau) * scale) : 0.0f;
                }
            }
        }
    }
    return out;
}

} // namespace cdma
