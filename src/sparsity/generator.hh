/**
 * @file
 * Synthetic activation-map generator with the spatial statistics the paper
 * documents in Figure 5: zeros cluster spatially within a channel plane
 * (smooth receptive fields go inactive over contiguous regions), some
 * channels go almost entirely dead, and non-zero values are positive
 * (post-ReLU) with smooth spatial variation. These statistics are what
 * make RLE/zlib layout-sensitive while leaving ZVC untouched — the
 * Figure 11 result. The generator produces full-size layer activations
 * for the compression experiments when real ImageNet training data is
 * unavailable (DESIGN.md substitution table).
 */

#ifndef CDMA_SPARSITY_GENERATOR_HH
#define CDMA_SPARSITY_GENERATOR_HH

#include "common/rng.hh"
#include "tensor/tensor.hh"

namespace cdma {

/** Tuning of the clustered activation generator. */
struct ActivationGenConfig {
    /** Spatial correlation length in activations (cluster diameter). */
    double cluster_scale = 6.0;
    /** Std-dev of the per-channel activity bias (dead-channel knob). */
    double channel_bias_stddev = 0.7;
    /** Peak magnitude scale of non-zero activations. */
    double value_scale = 1.0;
    /**
     * Mantissa bits retained in non-zero values (the rest are zeroed).
     * Real trained activations carry less value entropy than white
     * noise — neighboring values share exponents and high mantissa
     * bits — which is what gives zlib its modest edge over ZVC in the
     * paper's Figure 11. 14 bits calibrates that edge; 23 disables
     * quantization.
     */
    int mantissa_bits = 14;
};

/**
 * Generates activation tensors with a target density and spatially
 * clustered zeros.
 *
 * Mechanism: each (sample, channel) plane gets a smooth random field
 * (bilinearly interpolated coarse Gaussian grid) plus a per-channel bias;
 * a global threshold is chosen at the exact quantile that achieves the
 * requested density; activations are ReLU-style shifted field values
 * above the threshold and zero below.
 */
class ActivationGenerator
{
  public:
    explicit ActivationGenerator(const ActivationGenConfig &config = {});

    /**
     * Generate a tensor of the given logical shape and physical layout
     * whose density is @p density (exact up to ties in the field).
     *
     * @param shape Logical (N, C, H, W) extents.
     * @param layout Physical layout of the result.
     * @param density Target fraction of non-zero activations in [0, 1].
     * @param rng Randomness stream (pass the same seeded stream to get
     *        identical logical contents across layouts).
     */
    Tensor4D generate(const Shape4D &shape, Layout layout, double density,
                      Rng &rng) const;

  private:
    ActivationGenConfig config_;
};

} // namespace cdma

#endif // CDMA_SPARSITY_GENERATOR_HH
