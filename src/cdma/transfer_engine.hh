/**
 * @file
 * Unified full-duplex transfer engine — one DMA engine arbitrating both
 * directions of the PCIe link, the way the paper's Figure 2(b) overlaps
 * the offload of layer n+1's input with the prefetch of layer n-1's and
 * the Figure 13 speedups assume the cDMA unit services both
 * concurrently. The engine owns one sim::EventQueue and one duplex
 * sim::Channel and runs BOTH double-buffered pipelines on it:
 *
 *   offload:  serial compression engine (COMP_BW) -> staging buffer ->
 *             wire out (DuplexChannel Direction::Out)
 *   prefetch: wire in (Direction::In) -> staging buffer ->
 *             serial decompression engine (COMP_BW)
 *
 * The compression and decompression engines are provisioned separately
 * (the paper's CPE vs DPE replicas, Section V-B), so they never contend
 * with each other — only the wire is shared, and only under
 * DuplexMode::Half, where the link arbiter (round-robin or fixed
 * priority) picks which pending direction's shard crosses next. With
 * the opposing direction idle the duplex DES degenerates exactly to the
 * single-direction pipelines that OffloadScheduler / PrefetchScheduler
 * model (their closed forms are pinned against it at 1e-9), so the two
 * direction schedulers are now thin facades over this engine.
 */

#ifndef CDMA_CDMA_TRANSFER_ENGINE_HH
#define CDMA_CDMA_TRANSFER_ENGINE_HH

#include <span>
#include <vector>

#include "cdma/engine.hh"
#include "cdma/spill_arena.hh"
#include "common/status.hh"

namespace cdma {

/** Byte counts of one staging shard entering the pipeline model. */
struct ShardTransfer {
    uint64_t raw_bytes = 0;  ///< uncompressed bytes the shard covers
    uint64_t wire_bytes = 0; ///< store-raw-floored bytes put on the wire
    /** Wire crossings the shard took (1 = landed clean first try). */
    uint32_t attempts = 1;
    /** Wire bytes of the failed crossings (re-sent under RetryPolicy). */
    uint64_t failed_wire_bytes = 0;
    /** Shard was downgraded to raw framing after repeated faults. */
    bool degraded = false;
};

/** Outcome of one scheduled offload: data and modeled timing. */
struct OffloadResult {
    /** Compressed buffer, byte-identical to ParallelCompressor::compress. */
    CompressedBuffer buffer;
    /** Pipeline timing over the real per-shard compressed sizes. */
    OffloadTiming timing;
    /** Per-shard byte counts, in drain order. */
    std::vector<ShardTransfer> shards;
    /** Fault/retry accounting (expectation-priced on this flow). */
    TransferIntegrity integrity;
};

/** Outcome of an offload spilled into an arena instead of a buffer. */
struct SpilledOffload {
    /** Arena reference to the stored shards (caller releases it). */
    SpillTicket ticket = 0;
    /** Pipeline timing over the real per-shard compressed sizes. */
    OffloadTiming timing;
    /** Per-shard byte counts, in drain order. */
    std::vector<ShardTransfer> shards;
    /** Fault/retry accounting (sampled per crossing on this flow). */
    TransferIntegrity integrity;
};

/** Outcome of one scheduled prefetch: restored data and modeled timing. */
struct PrefetchResult {
    /** Reconstructed bytes, identical to the original offloaded buffer. */
    ByteVec data;
    /** Pipeline timing over the real per-shard compressed sizes. */
    PrefetchTiming timing;
    /** Per-shard byte counts, in arrival order. */
    std::vector<ShardTransfer> shards;
    /** Fault/retry accounting (sampled on the arena flow,
     *  expectation-priced on the buffer flow). */
    TransferIntegrity integrity;
};

/**
 * Drives real compression/decompression for both PCIe directions and
 * models them racing on one (possibly shared) link.
 */
class TransferEngine
{
  public:
    explicit TransferEngine(const CdmaEngine &engine);

    /** Windows per staging shard (>= 1), from CdmaConfig::shard_bytes. */
    uint64_t shardWindows() const { return shard_windows_; }

    /** The cDMA engine this transfer engine drives. */
    const CdmaEngine &cdma() const { return engine_; }

    // ---- Real-bytes flows (the direction schedulers delegate here) ----

    /**
     * Offload @p data: compress it shard-by-shard on the engine's lanes,
     * stitch the shards into a CompressedBuffer as they drain (in shard
     * order, while later shards are still compressing), and model the
     * double-buffered pipeline over the measured per-shard sizes.
     */
    OffloadResult offload(std::span<const uint8_t> data) const;

    /**
     * Offload @p data into @p arena: shards stream from the compression
     * lanes straight into recycled arena slots (no stitched
     * CompressedBuffer, no per-layer payload allocation in steady
     * state). The returned ticket holds the compressed activations
     * until the backward pass prefetches and releases them.
     *
     * With a fault injector configured, each shard's host-bound wire
     * crossing samples the fault process: damaged crossings are caught
     * by the length/CRC-32C framing checks and re-sent under the
     * engine's RetryPolicy (degrading to raw framing after repeated
     * failures). Returns Status::retryExhausted — with the partially
     * filled ticket released — when a shard burns every attempt.
     */
    StatusOr<SpilledOffload> offloadInto(std::span<const uint8_t> data,
                                         SpillArena &arena) const;

    /**
     * Prefetch @p buffer: reconstruct it shard-by-shard on the engine's
     * lanes (consumed in deterministic shard order) and model the
     * double-buffered pipeline over the measured per-shard sizes.
     * Decode errors (a corrupt or truncated payload) propagate as a
     * non-OK Status instead of crashing. The stitched buffer carries no
     * per-shard CRC framing, so a configured fault injector is priced
     * in expectation on this flow rather than sampled.
     */
    StatusOr<PrefetchResult> prefetch(const CompressedBuffer &buffer) const;

    /**
     * Prefetch a spilled buffer straight out of @p arena's shard slots
     * (no stitched CompressedBuffer in between). The ticket stays live;
     * the caller releases it once the restored bytes are consumed.
     *
     * Every shard's payload is verified against its stored CRC-32C
     * before expansion (Status::integrityError on mismatch). With a
     * fault injector configured, each GPU-bound crossing samples the
     * fault process; faulted crossings re-read the pristine arena slot
     * under the RetryPolicy, so the restored bytes stay byte-identical
     * to the offloaded data whenever the prefetch succeeds.
     */
    StatusOr<PrefetchResult> prefetch(const SpillArena &arena,
                                      SpillTicket ticket) const;

    /** Outcome of one full-duplex step: both real flows + the race. */
    struct DuplexResult {
        SpilledOffload offload;   ///< @p offload_data spilled to the arena
        PrefetchResult prefetch;  ///< @p prefetch_ticket restored
        /** Both measured shard trains raced on the configured link. */
        DuplexTiming timing;
    };

    /**
     * One steady-state training-loop step on the unified ticket flow:
     * compress and spill @p offload_data into @p arena while prefetching
     * (and expanding) @p prefetch_ticket out of it, with both measured
     * shard trains racing on the configured duplex link. The caller
     * releases the prefetched ticket once the restored bytes are
     * consumed. Fault handling follows the two underlying flows; the
     * first leg to exhaust its retries surfaces its Status.
     */
    StatusOr<DuplexResult> transfer(std::span<const uint8_t> offload_data,
                                    SpillArena &arena,
                                    SpillTicket prefetch_ticket) const;

    // ---- Timing models ----

    /**
     * The duplex race of two measured shard trains under this engine's
     * configuration (bandwidths, staging depth, duplex mode, arbiter).
     * Either train may be empty (single-direction degenerate case).
     */
    DuplexTiming duplexTiming(
        std::span<const ShardTransfer> offload_shards,
        std::span<const ShardTransfer> prefetch_shards) const;

    /**
     * Analytic duplex model: both directions cut into uniform staging
     * shards (plus a trailing partial) at their known compression
     * ratios, then raced through the duplex DES. Either direction may
     * be empty (raw_bytes = 0).
     */
    DuplexTiming modelFromRatio(uint64_t offload_raw, double offload_ratio,
                                uint64_t prefetch_raw,
                                double prefetch_ratio) const;

    /**
     * The core duplex DES: both double-buffered pipelines run on one
     * event queue, wire transfers of both directions submitted to a
     * DuplexChannel. Offload shard k's compression starts when the
     * serial compression engine AND an offload staging buffer are free;
     * its wire leg queues on Direction::Out. Prefetch shard k's wire
     * leg (Direction::In) starts when a prefetch staging buffer is
     * free; its expansion queues on the serial decompression engine.
     * Under DuplexMode::Half both directions serialize on the link and
     * @p arbiter breaks ties; under Full they never interact. The
     * per-direction staging pools are independent (@p staging_buffers
     * each).
     *
     * Retry pricing: a shard's wire leg carries its failed crossings
     * too (wire_bytes + failed_wire_bytes on the link) plus the
     * exponential backoff @p backoff_base_seconds * (2^(attempts-1) - 1)
     * as extra latency — the retry sequence holds the shard's DMA
     * transaction slot until it lands. Shards with attempts == 1 price
     * exactly as before, which keeps the schedulers' closed forms
     * pinned to this DES on fault-free trains.
     */
    static DuplexTiming pipelineTiming(
        std::span<const ShardTransfer> offload_shards,
        std::span<const ShardTransfer> prefetch_shards,
        double compress_bandwidth, double wire_bandwidth,
        double decompress_bandwidth, unsigned staging_buffers,
        DuplexMode mode, LinkArbiter arbiter,
        double backoff_base_seconds = 0.0);

    /**
     * Shard train of a raw_bytes transfer at ratio (uniform + tail).
     * With a fault injector configured the train carries the fault
     * process in expectation (see applyExpectedFaults()).
     */
    std::vector<ShardTransfer> shardTrain(uint64_t raw_bytes,
                                          double ratio) const;

    /**
     * Fold the configured fault process into @p shards analytically:
     * each shard's attempts / failed_wire_bytes become the expectation
     * under the injector's per-crossing failure probability and the
     * engine's RetryPolicy. No RNG draws — the sampled streams of the
     * arena flows are untouched. No-op without an injector.
     */
    void applyExpectedFaults(std::vector<ShardTransfer> &shards) const;

    /** Sum a shard train's attempts / retries / failed wire bytes. */
    static TransferIntegrity trainIntegrity(
        std::span<const ShardTransfer> shards);

  private:
    DuplexTiming timingFor(std::span<const ShardTransfer> offload_shards,
                           std::span<const ShardTransfer> prefetch_shards)
        const;

    const CdmaEngine &engine_;
    uint64_t shard_windows_;
};

} // namespace cdma

#endif // CDMA_CDMA_TRANSFER_ENGINE_HH
