/**
 * @file
 * vDNN memory manager reconstruction (Rhu et al., MICRO 2016), the
 * baseline system the paper accelerates. Implements the offload-all
 * policy the paper evaluates ("vDNN is configured to offload all the
 * layer's activation maps for memory-scalability and to maximally stress
 * the PCIe channel", Section VI): every layer's input activation map is
 * copied to CPU memory during forward propagation and prefetched back
 * during backward propagation. The manager derives the transfer schedule
 * and the GPU-memory accounting from a network descriptor.
 */

#ifndef CDMA_VDNN_MEMORY_MANAGER_HH
#define CDMA_VDNN_MEMORY_MANAGER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cdma/engine.hh"
#include "models/desc.hh"

namespace cdma {

/**
 * Which activation maps are offloaded. The paper evaluates vDNN_all
 * ("offload all the layer's activation maps for memory-scalability and
 * to maximally stress the PCIe channel", Section VI); the original vDNN
 * also proposed a cheaper conv-only policy that keeps non-conv inputs
 * resident, trading memory savings for less PCIe traffic.
 */
enum class OffloadPolicy {
    All,      ///< offload every layer's input (the paper's setting)
    ConvOnly, ///< offload only inputs of convolution-like layers
};

/** Display name of an offload policy. */
std::string offloadPolicyName(OffloadPolicy policy);

/** One scheduled activation transfer (offload or prefetch). */
struct TransferOp {
    size_t layer_index = 0;  ///< descriptor row whose *input* this is
    std::string label;       ///< producing layer name
    uint64_t bytes = 0;      ///< raw activation bytes (batch applied)
};

/** Direction of a scheduled transfer on the duplex PCIe link. */
enum class TransferDirection {
    Offload,  ///< forward pass: GPU -> host
    Prefetch, ///< backward pass: host -> GPU
};

/** Display name of a transfer direction. */
std::string transferDirectionName(TransferDirection direction);

/** One entry of the unified (direction-tagged) transfer schedule. */
struct DirectedTransferOp {
    TransferDirection direction = TransferDirection::Offload;
    TransferOp op;
};

/** GPU memory accounting for one network + batch. */
struct MemoryFootprint {
    uint64_t weights_bytes = 0;      ///< parameters + weight gradients
    uint64_t activations_bytes = 0;  ///< all retained activation maps
    uint64_t gradients_bytes = 0;    ///< activation-gradient maps
    uint64_t baseline_total = 0;     ///< no virtualization: all resident
    uint64_t vdnn_peak = 0;          ///< offload-all: per-layer working set
    /** cDMA staging buffers resident in GPU DRAM (0 without an engine). */
    uint64_t staging_bytes = 0;

    /** Fraction of baseline memory that is activation (+gradient) maps. */
    double activationFraction() const
    {
        return baseline_total > 0
            ? static_cast<double>(activations_bytes + gradients_bytes) /
                static_cast<double>(baseline_total)
            : 0.0;
    }

    /**
     * GPU bytes the offload-all policy freed relative to keeping every
     * map resident (baseline_total - vdnn_peak, floored at 0) — the
     * working set prefetched maps can land back into, i.e. the natural
     * value for TransferConfig::prefetch_lookahead_bytes.
     */
    uint64_t freedBytes() const
    {
        return baseline_total > vdnn_peak ? baseline_total - vdnn_peak
                                          : 0;
    }
};

/** Offload-all vDNN memory manager over a static network descriptor. */
class VdnnMemoryManager
{
  public:
    /**
     * @param network Full-size network descriptor.
     * @param batch Minibatch size (Table I values by default).
     * @param policy Offload policy (the paper evaluates All).
     */
    VdnnMemoryManager(const NetworkDesc &network, int64_t batch,
                      OffloadPolicy policy = OffloadPolicy::All);

    /** Offload policy in effect. */
    OffloadPolicy policy() const { return policy_; }

    /** The managed network. */
    const NetworkDesc &network() const { return network_; }

    /** Minibatch size the schedule was built for. */
    int64_t batch() const { return batch_; }

    /**
     * Offload schedule in forward order: entry k is the input activation
     * map of descriptor row offloads()[k].layer_index (row 0's input is
     * the network input batch). Under OffloadPolicy::All there is one
     * entry per row; under ConvOnly only conv-like rows appear.
     */
    const std::vector<TransferOp> &offloadSchedule() const
    {
        return offloads_;
    }

    /**
     * Prefetch schedule in backward order (reverse of the offloads):
     * entry k is the activation map backward step k needs restored.
     */
    std::vector<TransferOp> prefetchSchedule() const;

    /**
     * The unified transfer schedule of one iteration on the duplex
     * link: every offload (forward order, direction Offload) followed
     * by every prefetch (backward order, direction Prefetch), as ONE
     * direction-tagged list instead of two independent ones. List
     * order is submission order, not serialization: around the
     * forward/backward boundary the tail offloads (layer n+1's input
     * still draining out) race the head prefetches (layer n-1's input
     * coming back) on the same link, and the duplex DES — not the list
     * — decides how they interleave. A prefetch may never enter the
     * wire before its own offload has drained; consumers
     * (StepSimulator) enforce that dependency per layer.
     */
    std::vector<DirectedTransferOp> duplexSchedule() const;

    /** Total bytes moved across PCIe in one direction per iteration. */
    uint64_t totalOffloadBytes() const;

    /**
     * Transfer plans for the offload schedule under @p engine: entry k is
     * the plan for offloadSchedule()[k], timed by the engine's
     * TimingMode (under TimingMode::Overlapped each plan carries the
     * double-buffered pipeline breakdown in plan.offload).
     *
     * @param output_ratios Per-descriptor-row compression ratio of the
     *        row's *output* activation map, aligned the way the step
     *        simulator consumes them: the transfer paired with row i
     *        carries row i-1's output, and row 0's input (the raw image
     *        batch) never compresses. Empty = raw transfers (ratio 1).
     * @param raw_dma Plan plain vDNN DMA copies instead: ratio 1 and no
     *        compression pipeline regardless of the engine's timing mode
     *        (the vDNN baseline has no cDMA engine in the path).
     */
    std::vector<TransferPlan>
    plannedOffloads(const CdmaEngine &engine,
                    const std::vector<double> &output_ratios = {},
                    bool raw_dma = false) const;

    /**
     * plannedOffloads() driven by per-row activation *densities* instead
     * of pre-baked ratios: each transfer's codec and ratio come from the
     * engine's adaptive policy (CdmaEngine::planFromDensity), aligned
     * the same way as output_ratios — the transfer paired with row i
     * carries row i-1's output, and row 0's input (the raw image batch)
     * never compresses (ratio 1, no policy consult). Requires the
     * engine to run CodecMode::Adaptive with a configured policy.
     *
     * @param output_densities Nonzero-value fraction of each descriptor
     *        row's output activation map, one entry per layer.
     */
    std::vector<TransferPlan>
    plannedAdaptiveOffloads(const CdmaEngine &engine,
                            const std::vector<double> &output_densities)
        const;

    /**
     * plannedOffloads() in prefetch (backward, i.e. reverse) order,
     * timed for that direction: under TimingMode::Overlapped each
     * plan's seconds becomes the prefetch pipeline's makespan
     * (plan.prefetch.overlapped_seconds — wire in, then decompress)
     * instead of the offload makespan; other timing modes price both
     * directions identically, so seconds is unchanged there.
     */
    std::vector<TransferPlan>
    plannedPrefetches(const CdmaEngine &engine,
                      const std::vector<double> &output_ratios = {},
                      bool raw_dma = false) const;

    /** GPU memory accounting with and without vDNN. */
    MemoryFootprint footprint() const;

    /**
     * footprint() plus the GPU-resident cDMA staging buffers of
     * @p engine's offload pipeline (CdmaConfig::staging_buffers shards,
     * Section V-C sizes them at the bandwidth-delay product), counted
     * into vdnn_peak.
     */
    MemoryFootprint footprint(const CdmaEngine &engine) const;

    /** Parameter bytes of one descriptor row (weights only). */
    static uint64_t weightBytes(const LayerDesc &layer);

  private:
    NetworkDesc network_;
    int64_t batch_;
    OffloadPolicy policy_;
    std::vector<TransferOp> offloads_;
};

} // namespace cdma

#endif // CDMA_VDNN_MEMORY_MANAGER_HH
