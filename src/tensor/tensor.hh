/**
 * @file
 * Dense fp32 4-D tensor with an explicit physical layout. This is the data
 * structure whose contents the cDMA engine compresses: activation maps of
 * shape (N, C, H, W) stored in NCHW, NHWC or CHWN order.
 */

#ifndef CDMA_TENSOR_TENSOR_HH
#define CDMA_TENSOR_TENSOR_HH

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/layout.hh"

namespace cdma {

/**
 * Dense single-precision tensor of logical shape (N, C, H, W) with a
 * selectable physical layout. Element accessors take logical coordinates
 * and translate through the layout, so algorithms can be written once and
 * evaluated under every layout — exactly what the Figure 11 sweep needs.
 */
class Tensor4D
{
  public:
    /** Empty tensor (shape (1,1,1,1), one zero element, NCHW). */
    Tensor4D();

    /** Zero-initialized tensor of the given shape and layout. */
    explicit Tensor4D(const Shape4D &shape, Layout layout = Layout::NCHW);

    /** Logical shape. */
    const Shape4D &shape() const { return shape_; }

    /** Physical layout of the backing storage. */
    Layout layout() const { return layout_; }

    /** Total number of elements. */
    int64_t elements() const { return shape_.elements(); }

    /** Size of the raw buffer in bytes. */
    int64_t bytes() const { return shape_.bytes(); }

    /** Mutable element at logical coordinate (n, c, h, w). */
    float &at(int64_t n, int64_t c, int64_t h, int64_t w);

    /** Const element at logical coordinate (n, c, h, w). */
    float at(int64_t n, int64_t c, int64_t h, int64_t w) const;

    /** Raw linear storage (layout order). */
    std::span<float> data() { return data_; }
    /** Raw linear storage (layout order). */
    std::span<const float> data() const { return data_; }

    /** Raw storage reinterpreted as bytes (what the DMA engine sees). */
    std::span<const uint8_t> rawBytes() const;

    /** Set every element to @p value. */
    void fill(float value);

    /**
     * Return a copy of this tensor converted to @p target layout. Logical
     * contents are identical; only the physical ordering changes.
     */
    Tensor4D toLayout(Layout target) const;

    /**
     * Fraction of non-zero elements (the paper's "activation density",
     * AVGdensity in Section IV-A). Sparsity is 1 - density.
     */
    double density() const;

    /** Number of zero-valued elements. */
    int64_t zeroCount() const;

  private:
    Shape4D shape_;
    Layout layout_;
    std::vector<float> data_;
};

} // namespace cdma

#endif // CDMA_TENSOR_TENSOR_HH
