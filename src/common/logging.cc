#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>

namespace cdma {

namespace {

LogLevel g_level = LogLevel::Info;

const char *
levelTag(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info:  return "info";
      case LogLevel::Warn:  return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

void
vlogMessage(LogLevel level, const char *fmt, va_list ap)
{
    if (level < g_level)
        return;
    std::fprintf(stderr, "[%s] ", levelTag(level));
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
}

} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

void
logMessage(LogLevel level, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlogMessage(level, fmt, ap);
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlogMessage(LogLevel::Info, fmt, ap);
    va_end(ap);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    vlogMessage(LogLevel::Warn, fmt, ap);
    va_end(ap);
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "[fatal] ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    std::exit(1);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::fprintf(stderr, "[panic] ");
    std::vfprintf(stderr, fmt, ap);
    std::fputc('\n', stderr);
    va_end(ap);
    std::abort();
}

} // namespace cdma
