#include "cdma/transfer_engine.hh"

#include <algorithm>
#include <functional>
#include <queue>

#include "common/bits.hh"
#include "common/logging.hh"
#include "sim/channel.hh"
#include "sim/event_queue.hh"

namespace cdma {

TransferEngine::TransferEngine(const CdmaEngine &engine)
    : engine_(engine)
{
    const CdmaConfig &config = engine.config();
    const uint64_t shard_bytes = config.shard_bytes > 0
        ? config.shard_bytes
        : config.gpu.dmaBufferBytes();
    shard_windows_ = std::max<uint64_t>(1, shard_bytes /
                                               config.window_bytes);
    CDMA_ASSERT(config.staging_buffers >= 1,
                "the transfer pipelines need at least one staging buffer");
}

OffloadResult
TransferEngine::offload(std::span<const uint8_t> data) const
{
    const CdmaConfig &config = engine_.config();
    OffloadResult result;
    result.buffer.original_bytes = data.size();
    result.buffer.window_bytes = config.window_bytes;

    const uint64_t windows = ceilDiv(data.size(), config.window_bytes);
    result.buffer.window_sizes.reserve(windows);
    result.shards.reserve(ceilDiv(windows, shard_windows_));
    // Whole-buffer worst case reserved once, so the per-shard payload
    // appends below never reallocate (mirrors Compressor::compress).
    if (windows > 0) {
        const Compressor &codec = engine_.compressor().serial();
        result.buffer.payload.reserve(
            (windows - 1) * codec.compressedBound(config.window_bytes) +
            codec.compressedBound(data.size() -
                                  (windows - 1) * config.window_bytes));
    }

    // The consumer is the staging drain: it runs on this thread in shard
    // order while the lanes compress later shards, appending each shard's
    // payload to the stitched buffer and recording its wire size for the
    // pipeline model.
    engine_.compressor().compressShards(
        data, shard_windows_, [&](CompressedShard &&shard) {
            result.shards.push_back(
                {shard.raw_bytes,
                 shard.effectiveBytes(config.window_bytes)});
            result.buffer.payload.insert(result.buffer.payload.end(),
                                         shard.payload.begin(),
                                         shard.payload.end());
            result.buffer.window_sizes.insert(
                result.buffer.window_sizes.end(),
                shard.window_sizes.begin(), shard.window_sizes.end());
        });

    result.timing = timingFor(result.shards, {}).offload;
    return result;
}

SpilledOffload
TransferEngine::offloadInto(std::span<const uint8_t> data,
                            SpillArena &arena) const
{
    const CdmaConfig &config = engine_.config();
    SpilledOffload result;
    result.ticket = arena.beginSpill(data.size(), config.window_bytes);
    result.shards.reserve(
        ceilDiv(ceilDiv(data.size(), config.window_bytes),
                shard_windows_));

    // Same drain as offload(), but each shard lands in a recycled arena
    // slot instead of growing a stitched payload vector.
    engine_.compressor().compressShards(
        data, shard_windows_, [&](CompressedShard &&shard) {
            result.shards.push_back(
                {shard.raw_bytes,
                 shard.effectiveBytes(config.window_bytes)});
            arena.appendShard(result.ticket, shard);
        });

    result.timing = timingFor(result.shards, {}).offload;
    return result;
}

PrefetchResult
TransferEngine::prefetch(const CompressedBuffer &buffer) const
{
    PrefetchResult result;
    result.data.resize(buffer.original_bytes);
    result.shards.reserve(ceilDiv(buffer.window_sizes.size(),
                                  shard_windows_));

    // The consumer is the expand drain: notifications arrive on this
    // thread in shard order while the lanes reconstruct later shards,
    // recording each shard's byte counts for the pipeline model (the
    // raw bytes themselves land directly in the output region).
    engine_.compressor().decompressShards(
        buffer, shard_windows_, result.data.data(),
        [&](const ParallelCompressor::DecompressedShard &shard) {
            result.shards.push_back({shard.raw_bytes, shard.wire_bytes});
        });

    result.timing = timingFor({}, result.shards).prefetch;
    return result;
}

PrefetchResult
TransferEngine::prefetch(const SpillArena &arena, SpillTicket ticket) const
{
    const uint64_t original_bytes = arena.originalBytes(ticket);
    const uint64_t window_bytes = arena.windowBytes(ticket);
    const Compressor &codec = engine_.compressor().serial();

    PrefetchResult result;
    result.data.resize(original_bytes);
    result.shards.reserve(arena.shardCount(ticket));

    // Shards expand in store order straight out of the arena slots —
    // no stitched payload copy. The drain is serial here: the arena
    // path models the steady-state training loop, where the prefetch
    // engine walks one spilled layer at a time.
    for (size_t s = 0; s < arena.shardCount(ticket); ++s) {
        const SpillShardView view = arena.shard(ticket, s);
        uint64_t cursor = 0;
        uint64_t window = view.first_window;
        for (const uint32_t size : view.window_sizes) {
            const uint64_t out_offset = window * window_bytes;
            const uint64_t raw = std::min<uint64_t>(
                window_bytes, original_bytes - out_offset);
            codec.decompressWindowInto(
                view.payload.subspan(cursor, size), raw,
                result.data.data() + out_offset);
            cursor += size;
            ++window;
        }
        CDMA_ASSERT(cursor == view.payload.size(),
                    "spilled shard payload not fully consumed");
        result.shards.push_back({view.raw_bytes, view.wire_bytes});
    }

    result.timing = timingFor({}, result.shards).prefetch;
    return result;
}

TransferEngine::DuplexResult
TransferEngine::transfer(std::span<const uint8_t> offload_data,
                         SpillArena &arena,
                         SpillTicket prefetch_ticket) const
{
    DuplexResult result;
    result.offload = offloadInto(offload_data, arena);
    result.prefetch = prefetch(arena, prefetch_ticket);
    // Re-time both measured shard trains as one race on the shared
    // link: the per-direction breakdowns pick up any contention the
    // independent flows above could not see.
    result.timing = timingFor(result.offload.shards,
                              result.prefetch.shards);
    result.offload.timing = result.timing.offload;
    result.prefetch.timing = result.timing.prefetch;
    return result;
}

DuplexTiming
TransferEngine::timingFor(std::span<const ShardTransfer> offload_shards,
                          std::span<const ShardTransfer> prefetch_shards)
    const
{
    const CdmaConfig &config = engine_.config();
    return pipelineTiming(offload_shards, prefetch_shards,
                          config.gpu.comp_bandwidth,
                          config.gpu.pcie_effective_bandwidth,
                          config.gpu.comp_bandwidth,
                          config.staging_buffers, config.duplex_mode,
                          config.link_arbiter);
}

DuplexTiming
TransferEngine::duplexTiming(
    std::span<const ShardTransfer> offload_shards,
    std::span<const ShardTransfer> prefetch_shards) const
{
    return timingFor(offload_shards, prefetch_shards);
}

std::vector<ShardTransfer>
TransferEngine::shardTrain(uint64_t raw_bytes, double ratio) const
{
    CDMA_ASSERT(ratio >= 1.0, "ratio %f below store-raw floor", ratio);
    const uint64_t shard_raw =
        shard_windows_ * engine_.config().window_bytes;
    std::vector<ShardTransfer> shards;
    shards.reserve(ceilDiv(raw_bytes, shard_raw));
    uint64_t remaining = raw_bytes;
    while (remaining > 0) {
        const uint64_t raw = std::min(remaining, shard_raw);
        shards.push_back({raw, static_cast<uint64_t>(
                                   static_cast<double>(raw) / ratio)});
        remaining -= raw;
    }
    return shards;
}

DuplexTiming
TransferEngine::modelFromRatio(uint64_t offload_raw, double offload_ratio,
                               uint64_t prefetch_raw,
                               double prefetch_ratio) const
{
    return timingFor(shardTrain(offload_raw, offload_ratio),
                     shardTrain(prefetch_raw, prefetch_ratio));
}

DuplexTiming
TransferEngine::pipelineTiming(
    std::span<const ShardTransfer> offload_shards,
    std::span<const ShardTransfer> prefetch_shards,
    double compress_bandwidth, double wire_bandwidth,
    double decompress_bandwidth, unsigned staging_buffers,
    DuplexMode mode, LinkArbiter arbiter)
{
    CDMA_ASSERT(compress_bandwidth > 0.0 && wire_bandwidth > 0.0 &&
                    decompress_bandwidth > 0.0,
                "pipeline model needs positive bandwidths");
    CDMA_ASSERT(staging_buffers >= 1, "need at least one staging buffer");

    DuplexTiming timing;
    timing.offload.shard_count = offload_shards.size();
    timing.prefetch.shard_count = prefetch_shards.size();
    if (offload_shards.empty() && prefetch_shards.empty())
        return timing;

    EventQueue queue;
    DuplexChannel wire(queue, "pcie", wire_bandwidth, mode, arbiter);
    using Direction = DuplexChannel::Direction;

    // ---- Offload pipeline state (compress -> staging -> wire out) ----
    size_t off_next = 0;
    size_t off_in_flight = 0;     // shards holding an offload buffer
    bool compressing = false;     // the compression engine is serial
    SimTime last_off_drain = 0.0;

    std::function<void()> startCompress = [&] {
        if (off_next >= offload_shards.size() || compressing ||
            off_in_flight >= staging_buffers) {
            return;
        }
        const size_t k = off_next++;
        compressing = true;
        ++off_in_flight;
        const SimTime compress_time =
            static_cast<double>(offload_shards[k].raw_bytes) /
            compress_bandwidth;
        queue.scheduleAfter(compress_time, [&, k] {
            // Shard k staged: hand it to the DMA unit (it queues on the
            // shared link behind the arbiter) and start compressing the
            // next shard into the other buffer.
            compressing = false;
            wire.submit(Direction::Out, offload_shards[k].wire_bytes,
                        [&](const DuplexChannel::Grant &) {
                            --off_in_flight;
                            last_off_drain = queue.now();
                            startCompress();
                        });
            startCompress();
        });
    };

    // ---- Prefetch pipeline state (wire in -> staging -> expand) ----
    size_t pre_next = 0;
    size_t pre_in_flight = 0;     // shards holding a prefetch buffer
    bool expanding = false;       // the decompression engine is serial
    std::queue<size_t> landed;    // wired shards awaiting decompression
    SimTime last_expand = 0.0;

    std::function<void()> startWire;
    std::function<void()> startExpand = [&] {
        if (expanding || landed.empty())
            return;
        const size_t k = landed.front();
        landed.pop();
        expanding = true;
        const SimTime expand_time =
            static_cast<double>(prefetch_shards[k].raw_bytes) /
            decompress_bandwidth;
        queue.scheduleAfter(expand_time, [&] {
            // Shard re-inflated: its staging buffer frees, so the next
            // shard may enter the wire while the engine picks up the
            // next landed shard.
            expanding = false;
            --pre_in_flight;
            last_expand = queue.now();
            startExpand();
            startWire();
        });
    };
    startWire = [&] {
        if (pre_next >= prefetch_shards.size() ||
            pre_in_flight >= staging_buffers) {
            return;
        }
        const size_t k = pre_next++;
        ++pre_in_flight;
        wire.submit(Direction::In, prefetch_shards[k].wire_bytes,
                    [&, k](const DuplexChannel::Grant &) {
                        landed.push(k);
                        startExpand();
                        startWire();
                    });
        startWire();
    };

    startCompress();
    startWire();
    queue.run();

    for (const ShardTransfer &shard : offload_shards) {
        timing.offload.compress_seconds +=
            static_cast<double>(shard.raw_bytes) / compress_bandwidth;
    }
    timing.offload.wire_seconds = wire.busySeconds(Direction::Out);
    timing.offload.overlapped_seconds = last_off_drain;
    finalizeOverlapFraction(timing.offload);

    timing.prefetch.wire_seconds = wire.busySeconds(Direction::In);
    for (const ShardTransfer &shard : prefetch_shards) {
        timing.prefetch.decompress_seconds +=
            static_cast<double>(shard.raw_bytes) / decompress_bandwidth;
    }
    timing.prefetch.overlapped_seconds = last_expand;
    finalizeOverlapFraction(timing.prefetch);

    timing.makespan_seconds = std::max(last_off_drain, last_expand);
    timing.offload_contention_seconds =
        wire.contentionSeconds(Direction::Out);
    timing.prefetch_contention_seconds =
        wire.contentionSeconds(Direction::In);
    return timing;
}

} // namespace cdma
