/**
 * @file
 * Layer abstraction for the from-scratch CNN training framework. The
 * framework exists to *reproduce the paper's data source*: training runs
 * whose ReLU outputs provide the sparse activation maps that vDNN offloads
 * and cDMA compresses. It implements exactly the layer types the paper's
 * six networks use (Section II-A): convolution, ReLU activation, max/avg
 * pooling, fully-connected, LRN, dropout, softmax loss, and the composite
 * inception/fire modules.
 */

#ifndef CDMA_DNN_LAYER_HH
#define CDMA_DNN_LAYER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace cdma {

/** Hyper-parameters of one optimizer step. */
struct SgdConfig {
    float learning_rate = 0.01f;
    float momentum = 0.9f;
    float weight_decay = 0.0005f;
};

/**
 * One learnable parameter blob with its gradient and momentum buffer.
 * Layers register their blobs so the optimizer update is uniform.
 */
struct ParamBlob {
    std::vector<float> value;
    std::vector<float> grad;
    std::vector<float> momentum;

    explicit ParamBlob(size_t size = 0)
        : value(size, 0.0f), grad(size, 0.0f), momentum(size, 0.0f)
    {
    }

    /** Zero the gradient before accumulating a new minibatch. */
    void clearGrad();

    /** SGD with momentum and L2 weight decay. */
    void apply(const SgdConfig &config);
};

/**
 * Base class for all layers. Layers are stateful across a
 * forward()/backward() pair: forward() caches whatever backward() needs
 * (inputs, masks, column buffers), mirroring how real frameworks hold
 * activations alive between the passes — the very memory pressure vDNN
 * exists to relieve.
 */
class Layer
{
  public:
    explicit Layer(std::string name);
    virtual ~Layer() = default;

    Layer(const Layer &) = delete;
    Layer &operator=(const Layer &) = delete;

    /** Layer instance name ("conv1", "pool2", ...). */
    const std::string &name() const { return name_; }

    /** Short type tag ("conv", "relu", "pool", "fc", ...). */
    virtual std::string type() const = 0;

    /** Output shape produced for a given input shape. */
    virtual Shape4D outputShape(const Shape4D &input) const = 0;

    /** Forward propagation; caches state for backward(). */
    virtual Tensor4D forward(const Tensor4D &input) = 0;

    /**
     * Backward propagation: consumes the gradient w.r.t. this layer's
     * output and returns the gradient w.r.t. its input, accumulating
     * parameter gradients along the way.
     */
    virtual Tensor4D backward(const Tensor4D &output_grad) = 0;

    /** Learnable parameters (empty for ReLU/pool/...). */
    virtual std::vector<ParamBlob *> params() { return {}; }

    /**
     * Forward multiply-accumulate count for a single-image input of the
     * given shape (n is treated as 1). Zero for element-wise layers; the
     * performance model uses this to time described networks.
     */
    virtual uint64_t forwardMacsPerImage(const Shape4D &input) const
    {
        (void)input;
        return 0;
    }

    /**
     * True when this layer's output feeds a ReLU (set by the network
     * builder). The paper only reports activation density for such layers
     * since others are never sparse.
     */
    bool reluFollows() const { return relu_follows_; }

    /** Mark that a ReLU consumes this layer's output. */
    void setReluFollows(bool value) { relu_follows_ = value; }

    /** Switch between training and inference behaviour (dropout). */
    virtual void setTraining(bool training) { training_ = training; }

  protected:
    bool training_ = true;

  private:
    std::string name_;
    bool relu_follows_ = false;
};

using LayerPtr = std::unique_ptr<Layer>;

} // namespace cdma

#endif // CDMA_DNN_LAYER_HH
