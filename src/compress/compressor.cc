#include "compress/compressor.hh"

#include <algorithm>
#include <cstring>

#include "common/bits.hh"
#include "common/logging.hh"
#include "compress/deflate.hh"
#include "compress/kernels/kernels.hh"
#include "compress/rle.hh"
#include "compress/zvc.hh"

namespace cdma {

double
CompressedBuffer::ratio() const
{
    if (payload.empty())
        return 1.0;
    return static_cast<double>(original_bytes) /
        static_cast<double>(payload.size());
}

uint64_t
storeRawFlooredBytes(const std::vector<uint32_t> &window_sizes,
                     uint64_t raw_bytes, uint64_t window_bytes)
{
    uint64_t total = 0;
    uint64_t remaining = raw_bytes;
    for (uint32_t compressed : window_sizes) {
        const uint64_t raw = std::min<uint64_t>(remaining, window_bytes);
        total += std::min<uint64_t>(compressed, raw);
        remaining -= raw;
    }
    return total;
}

uint64_t
CompressedBuffer::effectiveBytes() const
{
    return storeRawFlooredBytes(window_sizes, original_bytes,
                                window_bytes);
}

double
CompressedBuffer::effectiveRatio() const
{
    const uint64_t bytes = effectiveBytes();
    if (bytes == 0)
        return 1.0;
    return static_cast<double>(original_bytes) / static_cast<double>(bytes);
}

Compressor::Compressor(uint64_t window_bytes, const KernelOps *kernels)
    : window_bytes_(window_bytes),
      kernels_(kernels != nullptr ? kernels : &activeKernels())
{
    CDMA_ASSERT(window_bytes > 0, "compression window must be positive");
}

uint64_t
Compressor::compressedBound(uint64_t raw_len) const
{
    // Conservative generic bound; the concrete codecs override with their
    // exact worst case. Only affects reserve(), never correctness.
    return 2 * raw_len + 64;
}

CompressedBuffer
Compressor::compress(std::span<const uint8_t> input) const
{
    CompressedBuffer out;
    out.original_bytes = input.size();
    out.window_bytes = window_bytes_;
    out.codec = codecFromName(name());

    const uint64_t windows = ceilDiv(input.size(), window_bytes_);
    out.window_sizes.reserve(windows);
    // Reserve the whole-buffer worst case once so the per-window streaming
    // appends below never reallocate or copy previous windows.
    if (windows > 0) {
        const uint64_t full = (windows - 1) * compressedBound(window_bytes_);
        const uint64_t last = compressedBound(
            input.size() - (windows - 1) * window_bytes_);
        out.payload.reserve(full + last);
    }

    for (uint64_t offset = 0; offset < input.size();
         offset += window_bytes_) {
        const uint64_t len =
            std::min<uint64_t>(window_bytes_, input.size() - offset);
        const size_t before = out.payload.size();
        compressWindowInto(input.subspan(offset, len), out.payload);
        out.window_sizes.push_back(
            static_cast<uint32_t>(out.payload.size() - before));
    }
    return out;
}

StatusOr<ByteVec>
Compressor::decompress(const CompressedBuffer &buffer) const
{
    // Pre-sized output: every window decompresses straight into its slot,
    // so stitching is free (no insert-at-end growth or copies). ByteVec
    // leaves the bytes uninitialized; decompressWindowInto() writes every
    // byte of every slot, zeros included. Framing inconsistencies are
    // data errors (the framing crosses the wire too), not invariants.
    ByteVec out(buffer.original_bytes);

    uint64_t payload_offset = 0;
    uint64_t out_offset = 0;
    uint64_t remaining = buffer.original_bytes;
    uint64_t window = 0;
    for (uint32_t size : buffer.window_sizes) {
        const uint64_t raw =
            std::min<uint64_t>(remaining, buffer.window_bytes);
        if (payload_offset + size > buffer.payload.size()) {
            return Status::truncated(
                "window %llu payload overruns compressed buffer "
                "(%llu + %u > %zu)",
                static_cast<unsigned long long>(window),
                static_cast<unsigned long long>(payload_offset), size,
                buffer.payload.size());
        }
        std::span<const uint8_t> payload(
            buffer.payload.data() + payload_offset, size);
        const Status status =
            decompressWindowInto(payload, raw, out.data() + out_offset);
        if (!status.ok()) {
            return status.withContext(
                "window %llu", static_cast<unsigned long long>(window));
        }
        payload_offset += size;
        out_offset += raw;
        remaining -= raw;
        ++window;
    }
    if (remaining != 0) {
        return Status::truncated(
            "compressed buffer missing %llu bytes",
            static_cast<unsigned long long>(remaining));
    }
    return out;
}

double
Compressor::measureRatio(std::span<const uint8_t> input) const
{
    return compress(input).effectiveRatio();
}

std::string
algorithmName(Algorithm algorithm)
{
    switch (algorithm) {
      case Algorithm::Rle:  return "RL";
      case Algorithm::Zvc:  return "ZV";
      case Algorithm::Zlib: return "ZL";
    }
    panic("unreachable algorithm value %d", static_cast<int>(algorithm));
}

std::string
codecName(Codec codec)
{
    switch (codec) {
      case Codec::Raw:  return "raw";
      case Codec::Rle:  return "RL";
      case Codec::Zvc:  return "ZV";
      case Codec::Zlib: return "ZL";
    }
    panic("unreachable codec value %d", static_cast<int>(codec));
}

Codec
codecFor(Algorithm algorithm)
{
    switch (algorithm) {
      case Algorithm::Rle:  return Codec::Rle;
      case Algorithm::Zvc:  return Codec::Zvc;
      case Algorithm::Zlib: return Codec::Zlib;
    }
    panic("unreachable algorithm value %d", static_cast<int>(algorithm));
}

Algorithm
algorithmFor(Codec codec)
{
    switch (codec) {
      case Codec::Rle:  return Algorithm::Rle;
      case Codec::Zvc:  return Algorithm::Zvc;
      case Codec::Zlib: return Algorithm::Zlib;
      case Codec::Raw:
        break;
    }
    panic("Codec::Raw has no compression algorithm");
}

Codec
codecFromName(const std::string &name)
{
    if (name == "raw")
        return Codec::Raw;
    if (name == "RL")
        return Codec::Rle;
    if (name == "ZV")
        return Codec::Zvc;
    if (name == "ZL")
        return Codec::Zlib;
    panic("unknown codec tag \"%s\"", name.c_str());
}

void
RawCompressor::compressWindowInto(std::span<const uint8_t> window,
                                  ByteVec &out) const
{
    out.insert(out.end(), window.begin(), window.end());
}

Status
RawCompressor::decompressWindowInto(std::span<const uint8_t> payload,
                                    uint64_t original_bytes,
                                    uint8_t *out) const
{
    if (payload.size() != original_bytes) {
        return Status::truncated(
            "raw window is %zu bytes, expected %llu", payload.size(),
            static_cast<unsigned long long>(original_bytes));
    }
    std::memcpy(out, payload.data(), payload.size());
    return Status();
}

std::unique_ptr<Compressor>
makeCodecCompressor(Codec codec, uint64_t window_bytes,
                    const KernelOps *kernels)
{
    if (codec == Codec::Raw)
        return std::make_unique<RawCompressor>(window_bytes, kernels);
    return makeCompressor(algorithmFor(codec), window_bytes, kernels);
}

std::unique_ptr<Compressor>
makeCompressor(Algorithm algorithm, uint64_t window_bytes,
               const KernelOps *kernels)
{
    switch (algorithm) {
      case Algorithm::Rle:
        return std::make_unique<RleCompressor>(window_bytes, kernels);
      case Algorithm::Zvc:
        return std::make_unique<ZvcCompressor>(window_bytes, kernels);
      case Algorithm::Zlib:
        return std::make_unique<DeflateCompressor>(window_bytes,
                                                   Lz77Config{}, kernels);
    }
    panic("unreachable algorithm value %d", static_cast<int>(algorithm));
}

} // namespace cdma
