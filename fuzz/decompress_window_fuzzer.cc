/**
 * @file
 * Fuzz harness for the window decoders — the code that consumes hostile
 * wire bytes. Input format (harness-owned, shared with fuzz/corpus/):
 *
 *   byte 0      codec selector (mod 3: RL, ZV, ZL)
 *   bytes 1-2   claimed original_bytes, little-endian, taken mod 4097
 *   bytes 3..   window payload handed to decompressWindowInto()
 *
 * The target property is the Status contract: any payload either
 * decodes cleanly or returns Truncated/Corrupt — never a crash, never
 * a read outside the payload span, never an out-of-bounds store into
 * the original_bytes-sized output region (guard bytes checked here;
 * ASan covers the rest when available).
 *
 * Built two ways by fuzz/CMakeLists.txt:
 *  - clang with libFuzzer: -fsanitize=fuzzer provides main().
 *  - CDMA_FUZZ_STANDALONE (gcc or libFuzzer-less hosts): a built-in
 *    driver replays the corpus, then runs a seeded random-mutation
 *    loop (-runs=N, default 100000) over it — the CI fuzz smoke.
 *    --gen-corpus DIR regenerates the seed corpus from the real codecs.
 */

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "common/rng.hh"
#include "compress/compressor.hh"

namespace {

using namespace cdma;

constexpr uint64_t kWindowBytes = 4096;
constexpr uint8_t kGuard = 0xA5;

const Compressor &
codecFor(uint8_t selector)
{
    static const std::unique_ptr<Compressor> codecs[3] = {
        makeCompressor(Algorithm::Rle, kWindowBytes),
        makeCompressor(Algorithm::Zvc, kWindowBytes),
        makeCompressor(Algorithm::Zlib, kWindowBytes),
    };
    return *codecs[selector % 3];
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t *data, size_t size)
{
    if (size < 3)
        return 0;
    const Compressor &codec = codecFor(data[0]);
    const uint64_t original =
        (static_cast<uint64_t>(data[1]) |
         (static_cast<uint64_t>(data[2]) << 8)) %
        (kWindowBytes + 1);

    // Guard bytes bracket the output region so an out-of-bounds store
    // is caught even without ASan.
    std::vector<uint8_t> out(original + 16, kGuard);
    const std::span<const uint8_t> payload(data + 3, size - 3);
    const Status status =
        codec.decompressWindowInto(payload, original, out.data() + 8);
    (void)status; // Ok and Truncated/Corrupt are both in-contract.
    for (size_t i = 0; i < 8; ++i) {
        if (out[i] != kGuard || out[out.size() - 1 - i] != kGuard)
            __builtin_trap();
    }
    return 0;
}

#ifdef CDMA_FUZZ_STANDALONE

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

std::vector<uint8_t>
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

/** Activation-like fp32 words at the given density. */
std::vector<uint8_t>
makeWords(double density, size_t bytes, uint64_t seed)
{
    Rng rng(seed);
    std::vector<uint8_t> input(bytes, 0);
    for (size_t i = 0; i + 4 <= bytes; i += 4) {
        if (density > 0.0 && rng.bernoulli(density)) {
            const float value =
                0.5f + static_cast<float>(std::abs(rng.normal()));
            std::memcpy(input.data() + i, &value, 4);
        }
    }
    return input;
}

/**
 * Regenerate the seed corpus: one well-formed harness input per codec
 * and density, so mutations start from payloads that reach deep decode
 * paths instead of dying in the first framing check.
 */
int
generateCorpus(const std::filesystem::path &dir)
{
    std::filesystem::create_directories(dir);
    int written = 0;
    for (uint8_t selector = 0; selector < 3; ++selector) {
        const Compressor &codec = codecFor(selector);
        for (const double density : {0.0, 0.1, 0.5, 1.0}) {
            for (const size_t bytes :
                 {size_t{64}, size_t{1000}, size_t{4096}}) {
                const auto input = makeWords(
                    density, bytes,
                    1000 + selector * 100 + written);
                ByteVec payload;
                codec.compressWindowInto(input, payload);
                std::vector<uint8_t> entry;
                entry.push_back(selector);
                entry.push_back(static_cast<uint8_t>(bytes & 0xFF));
                entry.push_back(static_cast<uint8_t>(bytes >> 8));
                entry.insert(entry.end(), payload.begin(), payload.end());
                char name[64];
                std::snprintf(name, sizeof(name), "seed_%c_d%02d_%zu",
                              "rzl"[selector],
                              static_cast<int>(density * 100), bytes);
                std::ofstream ofs(dir / name, std::ios::binary);
                ofs.write(reinterpret_cast<const char *>(entry.data()),
                          static_cast<std::streamsize>(entry.size()));
                ++written;
            }
        }
    }
    std::printf("wrote %d corpus seeds to %s\n", written,
                dir.string().c_str());
    return 0;
}

/** One random structural mutation of a harness input. */
void
mutate(std::vector<uint8_t> &entry, Rng &rng)
{
    if (entry.size() < 3)
        entry.resize(3, 0);
    switch (rng.uniformInt(6)) {
      case 0: // single-bit flip anywhere (selector and length included)
        entry[rng.uniformInt(entry.size())] ^=
            static_cast<uint8_t>(1u << rng.uniformInt(8));
        break;
      case 1: // random byte overwrite
        entry[rng.uniformInt(entry.size())] =
            static_cast<uint8_t>(rng.uniformInt(256));
        break;
      case 2: // truncate the payload
        entry.resize(3 + rng.uniformInt(entry.size() - 2));
        break;
      case 3: // append garbage
        for (uint64_t n = 1 + rng.uniformInt(16); n-- > 0;)
            entry.push_back(static_cast<uint8_t>(rng.uniformInt(256)));
        break;
      case 4: // rewrite the claimed original size
        entry[1] = static_cast<uint8_t>(rng.uniformInt(256));
        entry[2] = static_cast<uint8_t>(rng.uniformInt(256));
        break;
      default: // burst corruption: a short run of random bytes
        if (entry.size() > 3) {
            const uint64_t start = 3 + rng.uniformInt(entry.size() - 3);
            for (uint64_t i = start;
                 i < entry.size() && i < start + 8; ++i)
                entry[i] = static_cast<uint8_t>(rng.uniformInt(256));
        }
        break;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    uint64_t runs = 100000;
    uint64_t seed = 0xF022DEAD;
    std::vector<std::filesystem::path> corpus_paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("-runs=", 0) == 0)
            runs = std::strtoull(arg.c_str() + 6, nullptr, 10);
        else if (arg.rfind("-seed=", 0) == 0)
            seed = std::strtoull(arg.c_str() + 6, nullptr, 10);
        else if (arg == "--gen-corpus" && i + 1 < argc)
            return generateCorpus(argv[++i]);
        else
            corpus_paths.emplace_back(arg);
    }

    // Load the corpus (files or directories of files).
    std::vector<std::vector<uint8_t>> corpus;
    for (const auto &path : corpus_paths) {
        if (std::filesystem::is_directory(path)) {
            for (const auto &entry :
                 std::filesystem::directory_iterator(path))
                corpus.push_back(readFile(entry.path()));
        } else {
            corpus.push_back(readFile(path));
        }
    }
    if (corpus.empty()) {
        std::fprintf(stderr,
                     "usage: %s [corpus dir/files] [-runs=N] [-seed=N]\n"
                     "       %s --gen-corpus DIR\n",
                     argv[0], argv[0]);
        return 2;
    }

    // Replay the corpus verbatim, then the mutation loop.
    for (const auto &entry : corpus)
        LLVMFuzzerTestOneInput(entry.data(), entry.size());
    Rng rng(seed);
    for (uint64_t i = 0; i < runs; ++i) {
        std::vector<uint8_t> entry =
            corpus[rng.uniformInt(corpus.size())];
        for (uint64_t m = 1 + rng.uniformInt(4); m-- > 0;)
            mutate(entry, rng);
        LLVMFuzzerTestOneInput(entry.data(), entry.size());
    }
    std::printf("fuzz smoke: %zu corpus seeds + %llu mutated runs, "
                "no crashes, no guard-byte violations\n",
                corpus.size(), static_cast<unsigned long long>(runs));
    return 0;
}

#endif // CDMA_FUZZ_STANDALONE
